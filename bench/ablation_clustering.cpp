// Clustering ablation (supports the §IV claims): DTW vs lock-step Euclidean
// distance for grouping time-shifted workload families; the LB_Kim/LB_Keogh
// cascade's pruning effectiveness; Ball-Tree recall under the non-metric
// DTW distance; plus google-benchmark microbenchmarks of the distance
// kernels.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>

#include "cluster/ball_tree.h"
#include "cluster/descender.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "dtw/dtw.h"
#include "workloads/generators.h"

using namespace dbaugur;

namespace {

// Rand index of a labeling against ground-truth family membership.
double RandIndex(const std::vector<int>& labels,
                 const std::vector<int>& truth) {
  size_t agree = 0, total = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    for (size_t j = i + 1; j < labels.size(); ++j) {
      bool same_l = labels[i] == labels[j];
      bool same_t = truth[i] == truth[j];
      if (same_l == same_t) ++agree;
      ++total;
    }
  }
  return total ? static_cast<double>(agree) / static_cast<double>(total) : 1.0;
}

// Builds three warped families plus ground truth. Geometry: period 32, so
// the three phases sit ~10.7 steps apart; member shifts are <= 2 steps, so a
// DTW band of 4 absorbs every intra-family shift while leaving >= 2.7 steps
// of irreducible cross-family misalignment.
void MakeFamilies(std::vector<ts::Series>* traces, std::vector<int>* truth) {
  for (int fam = 0; fam < 3; ++fam) {
    workloads::WarpedFamilyOptions opts;
    opts.members = 10;
    opts.max_shift = 2.0;
    opts.phase = fam * 2.0 * M_PI / 3.0;
    opts.seed = 100 + static_cast<uint64_t>(fam);
    for (auto& s : workloads::GenerateWarpedFamily(opts)) {
      traces->push_back(std::move(s));
      truth->push_back(fam);
    }
  }
}

void ClusteringQuality() {
  std::vector<ts::Series> traces;
  std::vector<int> truth;
  MakeFamilies(&traces, &truth);

  std::printf("=== Ablation: DTW vs Euclidean clustering quality ===\n");
  std::printf("30 traces = 3 latent families with time shifts <= 2 steps\n\n");
  TablePrinter table({"distance", "radius", "clusters(dense)", "Rand index"});
  for (double radius : {2.0, 3.0, 4.0}) {
    // DTW (Descender default).
    cluster::DescenderOptions dopts;
    dopts.radius = radius;
    dopts.min_size = 3;
    dopts.dtw.window = 4;
    cluster::Descender dtw_desc(dopts);
    if (!dtw_desc.AddTraces(traces).ok()) continue;
    std::vector<int> dtw_labels(traces.size());
    for (size_t i = 0; i < traces.size(); ++i) dtw_labels[i] = dtw_desc.label(i);
    table.AddRow({"DTW(w=4)", TablePrinter::Fmt(radius, 1),
                  std::to_string(dtw_desc.density_cluster_count()),
                  TablePrinter::Fmt(RandIndex(dtw_labels, truth), 3)});
    // Euclidean = DTW with window 0 (lock-step alignment only).
    cluster::DescenderOptions eopts = dopts;
    eopts.dtw.window = 0;
    cluster::Descender euc_desc(eopts);
    if (!euc_desc.AddTraces(traces).ok()) continue;
    std::vector<int> euc_labels(traces.size());
    for (size_t i = 0; i < traces.size(); ++i) euc_labels[i] = euc_desc.label(i);
    table.AddRow({"Euclidean", TablePrinter::Fmt(radius, 1),
                  std::to_string(euc_desc.density_cluster_count()),
                  TablePrinter::Fmt(RandIndex(euc_labels, truth), 3)});
  }
  table.Print();
  std::printf("\n");
}

void CascadeStats() {
  std::printf("=== Ablation: lower-bound cascade pruning ===\n");
  // Structured candidates: 30 phase families x level offsets, as a real
  // workload-trace collection would look. LB_Kim rejects level-shifted
  // traces from the endpoints; LB_Keogh rejects phase-mismatched ones; only
  // genuinely close traces pay for a full DTW.
  std::vector<std::vector<double>> candidates;
  for (int k = 0; k < 30; ++k) {
    workloads::WarpedFamilyOptions opts;
    opts.members = 10;
    opts.max_shift = 2.0;
    opts.phase = k * 2.0 * M_PI / 30.0;
    opts.seed = 200 + static_cast<uint64_t>(k);
    for (auto& s : workloads::GenerateWarpedFamily(opts)) {
      std::vector<double> v = s.values();
      for (double& x : v) x += 0.15 * k;  // per-family level offset
      candidates.push_back(std::move(v));
    }
  }
  std::vector<dtw::Envelope> envs;
  envs.reserve(candidates.size());
  for (auto& c : candidates) envs.push_back(dtw::BuildEnvelope(c, 4));
  dtw::CascadingDtw cascade({4});
  const std::vector<double>& query = candidates[0];
  size_t neighbors = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    auto within = cascade.WithinRadius(query, candidates[i], envs[i], 3.0);
    if (within.ok() && *within) ++neighbors;
  }
  TablePrinter t({"tier", "decided"});
  t.AddRow({"LB_Kim rejections", std::to_string(cascade.kim_rejections())});
  t.AddRow({"LB_Keogh rejections", std::to_string(cascade.keogh_rejections())});
  t.AddRow({"full DTW computations", std::to_string(cascade.full_computations())});
  t.AddRow({"neighbors found", std::to_string(neighbors)});
  t.Print();
  std::printf("\n");
}

// Batch AddTraces vs a sequential AddTrace loop on one seeded workload:
// wall-clock, full-DTW count, and a label-identity check. The batch path
// must win on full DTW evaluations (symmetric two-sided LB_Keogh) without
// changing a single label.
void BatchVsSequential() {
  std::printf("=== Ablation: batch vs sequential ingestion ===\n");
  std::vector<ts::Series> traces;
  for (int fam = 0; fam < 6; ++fam) {
    workloads::WarpedFamilyOptions opts;
    opts.members = 15;
    opts.max_shift = 2.0;
    opts.phase = fam * 2.0 * M_PI / 6.0;
    opts.seed = 300 + static_cast<uint64_t>(fam);
    for (auto& s : workloads::GenerateWarpedFamily(opts)) {
      traces.push_back(std::move(s));
    }
  }
  std::printf("%zu traces = 6 warped families, radius 3, band 4\n\n",
              traces.size());

  cluster::DescenderOptions base;
  base.radius = 3.0;
  base.min_size = 3;
  base.dtw.window = 4;

  using Clock = std::chrono::steady_clock;
  auto run_ms = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  };

  cluster::DescenderOptions seq_opts = base;
  seq_opts.threads = 1;
  cluster::Descender seq(seq_opts);
  auto t0 = Clock::now();
  for (const auto& s : traces) {
    if (!seq.AddTrace(s).ok()) return;
  }
  double seq_ms = run_ms(t0);

  auto labels_match = [&](const cluster::Descender& d) {
    for (size_t i = 0; i < traces.size(); ++i) {
      if (d.label(i) != seq.label(i)) return false;
    }
    return true;
  };

  TablePrinter table({"ingestion", "wall ms", "full DTW", "LB_Kim rej",
                      "LB_Keogh rej", "labels==seq"});
  auto add_row = [&](const char* name, double ms,
                     const cluster::Descender& d) {
    const dtw::PruningStats& st = d.pruning_stats();
    table.AddRow({name, TablePrinter::Fmt(ms, 1),
                  std::to_string(st.full_dtw),
                  std::to_string(st.kim_rejections),
                  std::to_string(st.keogh_rejections),
                  labels_match(d) ? "yes" : "NO"});
  };
  add_row("sequential AddTrace", seq_ms, seq);

  std::vector<size_t> thread_counts{1};
  if (DefaultThreadCount() > 1) thread_counts.push_back(DefaultThreadCount());
  for (size_t threads : thread_counts) {
    cluster::DescenderOptions bopts = base;
    bopts.threads = threads;
    cluster::Descender batch(bopts);
    t0 = Clock::now();
    if (!batch.AddTraces(traces).ok()) return;
    double ms = run_ms(t0);
    std::string name = "batch AddTraces (threads=" + std::to_string(threads) + ")";
    add_row(name.c_str(), ms, batch);
  }
  table.Print();
  std::printf(
      "(Batch's win on full DTW comes from the symmetric two-sided LB_Keogh:\n"
      "both envelopes exist up front, so each pair gets the tighter bound.\n"
      "Sequential relabels after every insert on top of that.)\n\n");
}

void BallTreeRecall() {
  std::printf("=== Ablation: Ball-Tree under DTW (non-metric) ===\n");
  std::vector<ts::Series> traces;
  std::vector<int> truth;
  MakeFamilies(&traces, &truth);
  std::vector<std::vector<double>> pts;
  for (auto& t : traces) pts.push_back(t.values());
  dtw::DtwOptions dopts{8};
  auto dist = [dopts](const std::vector<double>& a,
                      const std::vector<double>& b) {
    auto d = dtw::DtwDistance(a, b, dopts);
    return d.ok() ? *d : 1e300;
  };
  auto tree = cluster::BallTree::Build(pts, dist, {4});
  if (!tree.ok()) return;
  size_t found = 0, expected = 0;
  for (size_t q = 0; q < pts.size(); ++q) {
    auto got = tree->RangeQuery(pts[q], 3.0);
    std::set<size_t> got_set(got.begin(), got.end());
    for (size_t i = 0; i < pts.size(); ++i) {
      if (dist(pts[q], pts[i]) <= 3.0) {
        ++expected;
        if (got_set.count(i)) ++found;
      }
    }
  }
  std::printf("range-query recall vs exact scan: %zu/%zu = %.3f\n",
              found, expected,
              expected ? static_cast<double>(found) / expected : 1.0);
  std::printf(
      "(DTW violates the triangle inequality, so Ball-Tree pruning is\n"
      "heuristic; Descender's default exact cascade has recall 1.)\n\n");
}

// ---- google-benchmark microbenchmarks of the distance kernels ----

std::vector<double> BenchSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Gaussian();
  return v;
}

void BM_DtwFull(benchmark::State& state) {
  auto a = BenchSeries(static_cast<size_t>(state.range(0)), 1);
  auto b = BenchSeries(static_cast<size_t>(state.range(0)), 2);
  dtw::DtwOptions opts{static_cast<int>(state.range(1))};
  for (auto _ : state) {
    auto d = dtw::DtwDistance(a, b, opts);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_DtwFull)->Args({96, 8})->Args({96, -1})->Args({512, 16});

void BM_LbKeogh(benchmark::State& state) {
  auto a = BenchSeries(static_cast<size_t>(state.range(0)), 1);
  auto b = BenchSeries(static_cast<size_t>(state.range(0)), 2);
  auto env = dtw::BuildEnvelope(b, 8);
  for (auto _ : state) {
    double lb = dtw::LbKeogh(a, env);
    benchmark::DoNotOptimize(lb);
  }
}
BENCHMARK(BM_LbKeogh)->Arg(96)->Arg(512);

void BM_CascadeReject(benchmark::State& state) {
  // Far-apart traces: the cascade should reject in ~constant time.
  std::vector<double> a(96, 0.0), b(96, 50.0);
  auto env = dtw::BuildEnvelope(b, 8);
  dtw::CascadingDtw cascade({8});
  for (auto _ : state) {
    auto d = cascade.Distance(a, b, env, 1.0);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_CascadeReject);

}  // namespace

int main(int argc, char** argv) {
  ClusteringQuality();
  CascadeStats();
  BatchVsSequential();
  BallTreeRecall();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// WFGAN ablation (supports the §V design choices): temporal attention
// on/off, adversarial training on/off, saturating (paper Eq. 5) vs
// non-saturating generator loss, and single-task vs multi-task training on
// correlated query + resource traces.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "models/wfgan.h"
#include "models/wfgan_multitask.h"

using namespace dbaugur;
using namespace dbaugur::bench;

namespace {

double ScoreVariant(const Dataset& ds, const models::ForecasterOptions& opts,
                    const models::WfganOptions& gopts) {
  models::WfganForecaster model(opts, gopts);
  CheckOk(model.Fit(ds.train()), "fit");
  auto eval = models::EvaluateForecaster(model, ds.values, ds.train_size,
                                         opts.window, opts.horizon);
  CheckOk(eval.status(), "eval");
  return *ts::MSE(eval->predicted, eval->actual);
}

}  // namespace

int main() {
  Dataset ali = MakeAlibabaDataset();
  models::ForecasterOptions opts = BenchOptions(/*horizon=*/6, /*epochs=*/12);

  std::printf("=== WFGAN ablation on AliCluster (horizon 6 steps) ===\n");
  TablePrinter table({"variant", "test MSE"});
  {
    models::WfganOptions g;  // full model
    table.AddRow({"full WFGAN", TablePrinter::Fmt(ScoreVariant(ali, opts, g), 6)});
  }
  {
    models::WfganOptions g;
    g.use_attention = false;
    table.AddRow({"- temporal attention (Eq. 2-3)",
                  TablePrinter::Fmt(ScoreVariant(ali, opts, g), 6)});
  }
  {
    models::WfganOptions g;
    g.adversarial = false;
    table.AddRow({"- adversarial training (supervised only)",
                  TablePrinter::Fmt(ScoreVariant(ali, opts, g), 6)});
  }
  {
    models::WfganOptions g;
    g.saturating_g_loss = true;
    table.AddRow({"saturating G loss (paper Eq. 5)",
                  TablePrinter::Fmt(ScoreVariant(ali, opts, g), 6)});
  }
  {
    models::WfganOptions g;  // pure min-max game, no supervised term
    g.supervised_weight = 0.0;
    g.adversarial_weight = 1.0;
    table.AddRow({"pure adversarial (no supervised term)",
                  TablePrinter::Fmt(ScoreVariant(ali, opts, g), 6)});
  }
  table.Print();
  std::printf(
      "(the supervised MSE term dominates WFGAN's objective on this trace;\n"
      "the adversarial term nudges the final decimals, and removing the\n"
      "supervised term entirely shows why pure adversarial training of a\n"
      "point forecaster is impractical)\n");

  // --- Multi-task learning: joint query+resource training (paper §V-A).
  std::printf("\n=== Multi-task learning ablation ===\n");
  Dataset bus = MakeBusTrackerDataset(7);
  // A resource trace correlated with the query trace (CPU tracks load).
  Rng rng(77);
  std::vector<double> resource(bus.values.size());
  double peak = *std::max_element(bus.values.begin(), bus.values.end());
  for (size_t i = 0; i < resource.size(); ++i) {
    resource[i] = 0.2 + 0.6 * bus.values[i] / peak + rng.Gaussian(0.0, 0.02);
  }
  Dataset res{"cpu", resource, bus.train_size};

  models::ForecasterOptions mopts = BenchOptions(1, /*epochs=*/12);
  // Single-task WFGANs.
  double single_q = ScoreVariant(bus, mopts, models::WfganOptions{});
  double single_r = ScoreVariant(res, mopts, models::WfganOptions{});
  // Multi-task WFGAN sharing the generator trunk.
  models::MultiTaskWfgan mtl(mopts, models::WfganOptions{});
  CheckOk(mtl.Fit(bus.train(), res.train()), "mtl fit");
  auto eval_task = [&](models::WorkloadTask task, const Dataset& ds) {
    std::vector<double> pred, actual;
    for (size_t t = ds.train_size; t < ds.values.size(); ++t) {
      if (t < mopts.window + mopts.horizon - 1) continue;
      size_t end = t - mopts.horizon;
      std::vector<double> window(
          ds.values.begin() + static_cast<ptrdiff_t>(end + 1 - mopts.window),
          ds.values.begin() + static_cast<ptrdiff_t>(end + 1));
      auto p = mtl.Predict(task, window);
      if (!p.ok()) continue;
      pred.push_back(*p);
      actual.push_back(ds.values[t]);
    }
    return *ts::MSE(pred, actual);
  };
  double mtl_q = eval_task(models::WorkloadTask::kQuery, bus);
  double mtl_r = eval_task(models::WorkloadTask::kResource, res);

  TablePrinter mt({"training", "query MSE", "resource MSE"});
  mt.AddRow({"single-task WFGAN x2", TablePrinter::Fmt(single_q, 2),
             TablePrinter::Fmt(single_r, 5)});
  mt.AddRow({"multi-task WFGAN (shared trunk)", TablePrinter::Fmt(mtl_q, 2),
             TablePrinter::Fmt(mtl_r, 5)});
  mt.Print();
  std::printf(
      "\nExpected: attention and adversarial terms each help on the bursty\n"
      "trace; the saturating Eq. 5 loss is no better than non-saturating;\n"
      "multi-task training is competitive with (or better than) two\n"
      "independently trained models while sharing trunk parameters.\n");
  return 0;
}

// Shared plumbing for the paper-reproduction benches: the two evaluation
// datasets (synthetic stand-ins calibrated per DESIGN.md §3), model
// construction, and MSE evaluation helpers.
//
// Sizes are chosen so the full bench suite completes in minutes on one core
// while preserving the paper's qualitative shapes; scale `days`/`epochs` up
// for tighter curves.

#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/simd.h"
#include "ensemble/presets.h"
#include "ensemble/shared_member.h"
#include "ensemble/time_sensitive_ensemble.h"
#include "models/factory.h"
#include "models/forecaster.h"
#include "ts/metrics.h"
#include "ts/window_dataset.h"
#include "workloads/generators.h"

namespace dbaugur::bench {

/// One evaluation dataset: raw values plus the 70/30 split point.
struct Dataset {
  std::string name;
  std::vector<double> values;
  size_t train_size = 0;

  std::vector<double> train() const {
    return std::vector<double>(values.begin(),
                               values.begin() + static_cast<ptrdiff_t>(train_size));
  }
};

/// BusTracker-like query counts aggregated to the paper's 10-minute
/// forecasting interval.
inline Dataset MakeBusTrackerDataset(size_t days = 14) {
  workloads::BusTrackerOptions opts;
  opts.days = days;
  auto per_minute = workloads::GenerateBusTracker(opts);
  auto agg = per_minute.AggregateSum(10);
  Dataset d;
  d.name = "BusTracker";
  d.values = agg->values();
  d.train_size = d.values.size() * 7 / 10;
  return d;
}

/// Alibaba-like disk utilization, aggregated from 5-minute samples to the
/// 10-minute interval.
inline Dataset MakeAlibabaDataset(size_t days = 6) {
  workloads::AlibabaOptions opts;
  opts.days = days;
  auto s = workloads::GenerateAlibabaDisk(opts);
  auto agg = s.AggregateMean(2);
  Dataset d;
  d.name = "AliCluster";
  d.values = agg->values();
  d.train_size = d.values.size() * 7 / 10;
  return d;
}

/// Writes the SIMD provenance fields every bench JSON carries: the host CPU's
/// feature set and the dispatch tier the process is actually running (env
/// caps and forced tiers included), so committed BENCH_*.json results are
/// comparable across machines. Emits two complete `"key": "value",` lines at
/// two-space indent.
inline void WriteSimdProvenance(std::FILE* out) {
  std::fprintf(out, "  \"cpu_features\": \"%s\",\n  \"simd_tier\": \"%s\",\n",
               simd::CpuFeatures().c_str(),
               simd::TierName(simd::ActiveTier()));
}

/// Default bench hyper-parameters (paper: window 30, lr 1e-3; epochs reduced
/// for single-core runtime — see file header).
inline models::ForecasterOptions BenchOptions(size_t horizon,
                                              size_t epochs = 10) {
  models::ForecasterOptions opts;
  opts.window = 30;
  opts.horizon = horizon;
  opts.epochs = epochs;
  return opts;
}

/// Fits a fresh model of `name` on the dataset's training split and returns
/// (model, test MSE).
inline StatusOr<std::pair<std::unique_ptr<models::Forecaster>, double>>
FitAndScore(const std::string& name, const Dataset& ds,
            const models::ForecasterOptions& opts) {
  auto model = models::MakeForecaster(name, opts);
  if (!model.ok()) return model.status();
  DBAUGUR_RETURN_IF_ERROR((*model)->Fit(ds.train()));
  auto eval = models::EvaluateForecaster(**model, ds.values, ds.train_size,
                                         opts.window, opts.horizon);
  if (!eval.ok()) return eval.status();
  auto mse = ts::MSE(eval->predicted, eval->actual);
  if (!mse.ok()) return mse.status();
  return std::make_pair(std::move(model).value(), *mse);
}

/// Builds an ensemble over already-fitted shared members and returns its
/// online-evaluated test MSE.
inline StatusOr<double> EnsembleScore(
    const std::vector<const models::Forecaster*>& members, bool dynamic,
    const Dataset& ds, const models::ForecasterOptions& opts,
    double delta = 0.9) {
  ensemble::EnsembleOptions eopts;
  eopts.dynamic = dynamic;
  eopts.delta = delta;
  ensemble::TimeSensitiveEnsemble ens(opts, eopts);
  for (const models::Forecaster* m : members) {
    ens.AddMember(std::make_unique<ensemble::SharedMember>(m));
  }
  DBAUGUR_RETURN_IF_ERROR(ens.Fit(ds.train()));
  auto eval = ensemble::EvaluateOnline(ens, ds.values, ds.train_size,
                                       opts.window, opts.horizon);
  if (!eval.ok()) return eval.status();
  auto mse = ts::MSE(eval->predicted, eval->actual);
  if (!mse.ok()) return mse.status();
  return *mse;
}

/// Aborts the bench with a message when a Status is not OK.
inline void CheckOk(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace dbaugur::bench

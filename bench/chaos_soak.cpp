// Chaos harness driver: deterministic repro, CI smoke, and open-ended soak.
//
// Three modes:
//   repro:  chaos_soak --seed=N --profile=P [--full] [--replay] [--shards=N]
//           Runs exactly the (seed, profile) a failing test or soak printed;
//           exits 1 with the full report if the failure reproduces.
//   smoke:  chaos_soak --smoke
//           A fixed mini-matrix across all four profiles plus one
//           full-service and one replay run, with a wall-clock budget so CI
//           notices when the harness gets slow. JSON summary on stdout.
//   soak:   chaos_soak --soak [--seconds=S] [--start-seed=N]
//           Randomized open-ended mode: sweeps fresh seeds (wall-clock
//           derived unless pinned) round-robin over the profiles, mixing in
//           full-service and replay legs, until the time budget runs out. On
//           failure it prints the repro + a ready-to-paste corpus line,
//           writes soak_failure.txt, and exits 1.
//
// A DBAUGUR_FAULT_SPEC in the environment arms the same fault storms the
// tests use; the harness then checks conservation/invariant oracles instead
// of exact differential equality.

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "chaos/harness.h"

namespace dbaugur::bench {
namespace {

// Throughput regression net (ROADMAP: "the harness doubles as a perf
// regression net"): --smoke fails when measured events/s collapses more than
// 30% below this stored floor. The floor is set well under the reference
// single-core rate with vector dispatch active, so machine-to-machine noise
// doesn't trip it but an order-of-magnitude kernel regression does.
// Sanitizer builds skip the check (instrumentation overhead is not a
// regression); DBAUGUR_CHAOS_FLOOR=<events/s> overrides it (0 disables).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DBAUGUR_CHAOS_SANITIZED 1
#endif
#if !defined(DBAUGUR_CHAOS_SANITIZED) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define DBAUGUR_CHAOS_SANITIZED 1
#endif
#endif

double SmokeEventsPerSecFloor() {
#if defined(DBAUGUR_CHAOS_SANITIZED)
  double floor = 0.0;
#else
  double floor = 20000.0;
#endif
  if (const char* env = std::getenv("DBAUGUR_CHAOS_FLOOR")) {
    floor = std::strtod(env, nullptr);
  }
  return floor;
}

using chaos::ChaosOptions;
using chaos::ChaosReport;
using chaos::StreamProfile;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ChaosOptions MatrixOptions(uint64_t seed, StreamProfile profile) {
  ChaosOptions o;
  o.stream.seed = seed;
  o.stream.profile = profile;
  o.stream.bins = 36;
  o.stream.templates = 6;
  o.stream.mean_rate = 2.5;
  return o;
}

std::string CorpusLine(const ChaosOptions& o) {
  std::string line = std::to_string(o.stream.seed);
  line += " ";
  line += chaos::ProfileName(o.stream.profile);
  if (o.full_service) line += " full";
  if (o.replay) line += " replay";
  if (o.service_shards > 1) {
    line += " shards=" + std::to_string(o.service_shards);
  }
  if (o.service_workers > 1) {
    line += " workers=" + std::to_string(o.service_workers);
  }
  if (o.retrain_deadline_seconds > 0.0) {
    line += " deadline=" + std::to_string(o.retrain_deadline_seconds);
  }
  if (o.retrain_budget > 0) {
    line += " budget=" + std::to_string(o.retrain_budget);
  }
  return line;
}

/// Runs one configuration; on failure prints the report and the corpus line.
/// Accumulates the run's parsed-event count into *events_out when given, so
/// the smoke/soak modes can report throughput.
bool RunOne(const ChaosOptions& opts, uint64_t* events_out = nullptr) {
  const ChaosReport report = chaos::RunChaos(opts);
  if (events_out != nullptr) *events_out += report.events;
  if (report.ok) return true;
  std::fprintf(stderr, "%s\n", report.Summary().c_str());
  std::fprintf(stderr, "corpus line: %s\n", CorpusLine(opts).c_str());
  return false;
}

int ReproMode(uint64_t seed, StreamProfile profile, bool full, bool replay,
              size_t shards, size_t workers, double deadline, size_t budget) {
  ChaosOptions o = MatrixOptions(seed, profile);
  o.full_service = full;
  o.replay = replay;
  o.service_shards = shards;
  o.service_workers = workers;
  o.retrain_deadline_seconds = deadline;
  o.retrain_budget = budget;
  const double t0 = NowSeconds();
  const bool ok = RunOne(o);
  std::printf("{\n");
  WriteSimdProvenance(stdout);
  std::printf(
      "  \"benchmark\": \"chaos_soak\",\n  \"mode\": \"repro\",\n"
      "  \"seed\": %" PRIu64 ",\n  \"profile\": \"%s\",\n  \"ok\": %s,\n"
      "  \"seconds\": %.3f\n}\n",
      seed, chaos::ProfileName(profile), ok ? "true" : "false",
      NowSeconds() - t0);
  if (ok) std::fprintf(stderr, "chaos ok (repro %s)\n", CorpusLine(o).c_str());
  return ok ? 0 : 1;
}

int SmokeMode() {
  // Budget is deliberately generous (CI machines vary); the point is to fail
  // loudly if the harness regresses from seconds to minutes.
  constexpr double kBudgetSeconds = 120.0;
  const double t0 = NowSeconds();
  int runs = 0;
  int failures = 0;
  uint64_t events = 0;
  for (StreamProfile p : chaos::AllProfiles()) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      ++runs;
      if (!RunOne(MatrixOptions(seed, p), &events)) ++failures;
    }
  }
  {
    ChaosOptions o = MatrixOptions(42, StreamProfile::kSteady);
    o.stream.bins = 28;
    o.stream.templates = 4;
    o.full_service = true;
    ++runs;
    if (!RunOne(o, &events)) ++failures;
  }
  {
    ChaosOptions o = MatrixOptions(7, StreamProfile::kTemplateChurn);
    o.stream.bins = 24;
    o.replay = true;
    ++runs;
    if (!RunOne(o, &events)) ++failures;
  }
  {
    ChaosOptions o = MatrixOptions(17, StreamProfile::kSteady);
    o.service_shards = 3;
    ++runs;
    if (!RunOne(o, &events)) ++failures;
  }
  {
    // Concurrent retrain drain: 2 workers over 3 shards, a deadline wide
    // enough that only a genuine hang would trip the watchdog, and a unit
    // budget so the scheduler carries a backlog across cycles.
    ChaosOptions o = MatrixOptions(23, StreamProfile::kBurstySkewed);
    o.service_shards = 3;
    o.service_workers = 2;
    o.retrain_deadline_seconds = 30.0;
    o.retrain_budget = 1;
    ++runs;
    if (!RunOne(o, &events)) ++failures;
  }
  const double seconds = NowSeconds() - t0;
  const bool over_budget = seconds > kBudgetSeconds;
  const double events_per_sec =
      seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
  const double floor = SmokeEventsPerSecFloor();
  // >30% collapse below the stored floor fails the smoke: the floor already
  // sits well under the reference rate, so tripping 0.7× of it means the
  // pipeline lost most of its throughput, not that the machine is slow.
  const bool under_floor = floor > 0.0 && events_per_sec < 0.7 * floor;
  std::printf("{\n");
  WriteSimdProvenance(stdout);
  std::printf(
      "  \"benchmark\": \"chaos_soak\",\n  \"mode\": \"smoke\",\n"
      "  \"runs\": %d,\n  \"failures\": %d,\n  \"events\": %" PRIu64 ",\n"
      "  \"events_per_sec\": %.1f,\n  \"events_per_sec_floor\": %.1f,\n"
      "  \"seconds\": %.3f,\n  \"budget_seconds\": %.1f\n}\n",
      runs, failures, events, events_per_sec, floor, seconds, kBudgetSeconds);
  std::fprintf(stderr,
               "chaos smoke: %d runs, %d failures, %.2fs, %.0f events/s\n",
               runs, failures, seconds, events_per_sec);
  if (over_budget) {
    std::fprintf(stderr,
                 "chaos_soak: smoke took %.1fs, budget %.1fs — the harness "
                 "got an order of magnitude slower\n",
                 seconds, kBudgetSeconds);
    return 1;
  }
  if (under_floor) {
    std::fprintf(stderr,
                 "chaos_soak: smoke throughput %.0f events/s is more than "
                 "30%% below the stored floor %.0f events/s — a perf "
                 "regression, not noise (override: DBAUGUR_CHAOS_FLOOR)\n",
                 events_per_sec, floor);
    return 1;
  }
  return failures == 0 ? 0 : 1;
}

int SoakMode(double seconds, uint64_t start_seed, bool have_start_seed) {
  if (!have_start_seed) {
    // Fresh seeds every nightly run; print the start so any failure is
    // reproducible even if the repro line were lost.
    start_seed = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    start_seed = start_seed * 0x9E3779B97F4A7C15ULL >> 16;
  }
  std::fprintf(stderr,
               "chaos soak: %.0fs budget, start seed %" PRIu64 "\n",
               seconds, start_seed);
  const double t0 = NowSeconds();
  const auto profiles = chaos::AllProfiles();
  uint64_t runs = 0;
  uint64_t events = 0;
  while (NowSeconds() - t0 < seconds) {
    ChaosOptions o =
        MatrixOptions(start_seed + runs, profiles[runs % profiles.size()]);
    // Mix the expensive legs in at a steady cadence.
    o.full_service = runs % 7 == 3;
    o.replay = runs % 11 == 5;
    if (runs % 5 == 2) o.service_shards = 2 + runs % 3;
    // Every other sharded run also exercises the concurrent drain path
    // (multiple workers, a generous deadline, a tight per-cycle budget).
    if (o.service_shards > 1 && runs % 10 == 7) {
      o.service_workers = 2;
      o.retrain_deadline_seconds = 30.0;
      o.retrain_budget = 1;
    }
    const double iter_t0 = NowSeconds();
    uint64_t iter_events = 0;
    if (!RunOne(o, &iter_events)) {
      const std::string line = CorpusLine(o);
      std::FILE* f = std::fopen("soak_failure.txt", "w");
      if (f != nullptr) {
        std::fprintf(f, "%s\n", line.c_str());
        std::fprintf(f, "%s\n", chaos::RunChaos(o).Summary().c_str());
        std::fclose(f);
      }
      std::printf("{\n");
      WriteSimdProvenance(stdout);
      std::printf(
          "  \"benchmark\": \"chaos_soak\",\n  \"mode\": \"soak\",\n"
          "  \"runs\": %" PRIu64 ",\n  \"failures\": 1,\n"
          "  \"failing_corpus_line\": \"%s\",\n  \"seconds\": %.3f\n}\n",
          runs + 1, line.c_str(), NowSeconds() - t0);
      return 1;
    }
    events += iter_events;
    const double iter_s = NowSeconds() - iter_t0;
    std::fprintf(stderr,
                 "soak run %" PRIu64 " (%s): %" PRIu64
                 " events, %.0f events/s\n",
                 runs, CorpusLine(o).c_str(), iter_events,
                 iter_s > 0.0 ? static_cast<double>(iter_events) / iter_s
                              : 0.0);
    ++runs;
  }
  const double total_s = NowSeconds() - t0;
  std::printf("{\n");
  WriteSimdProvenance(stdout);
  std::printf(
      "  \"benchmark\": \"chaos_soak\",\n  \"mode\": \"soak\",\n"
      "  \"runs\": %" PRIu64 ",\n  \"failures\": 0,\n  \"start_seed\": "
      "%" PRIu64 ",\n  \"events\": %" PRIu64 ",\n"
      "  \"events_per_sec\": %.1f,\n  \"seconds\": %.3f\n}\n",
      runs, start_seed, events,
      total_s > 0.0 ? static_cast<double>(events) / total_s : 0.0, total_s);
  std::fprintf(stderr,
               "chaos soak: %" PRIu64 " runs clean in %.1fs, %.0f events/s\n",
               runs, total_s,
               total_s > 0.0 ? static_cast<double>(events) / total_s : 0.0);
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: chaos_soak --seed=N --profile=P [--full] [--replay] "
               "[--shards=N] [--workers=N] [--deadline=S] [--budget=N]\n"
               "       chaos_soak --smoke\n"
               "       chaos_soak --soak [--seconds=S] [--start-seed=N]\n");
  return 2;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  bool soak = false;
  bool full = false;
  bool replay = false;
  bool have_seed = false;
  bool have_start_seed = false;
  uint64_t seed = 0;
  uint64_t start_seed = 0;
  size_t shards = 1;
  size_t workers = 1;
  double deadline = 0.0;
  size_t budget = 0;
  double seconds = 60.0;
  StreamProfile profile = StreamProfile::kSteady;
  bool have_profile = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(a, "--soak") == 0) {
      soak = true;
    } else if (std::strcmp(a, "--full") == 0) {
      full = true;
    } else if (std::strcmp(a, "--replay") == 0) {
      replay = true;
    } else if (std::strncmp(a, "--shards=", 9) == 0) {
      shards = static_cast<size_t>(std::strtoull(a + 9, nullptr, 10));
      if (shards < 1) return Usage();
    } else if (std::strncmp(a, "--workers=", 10) == 0) {
      workers = static_cast<size_t>(std::strtoull(a + 10, nullptr, 10));
      if (workers < 1) return Usage();
    } else if (std::strncmp(a, "--deadline=", 11) == 0) {
      deadline = std::strtod(a + 11, nullptr);
    } else if (std::strncmp(a, "--budget=", 9) == 0) {
      budget = static_cast<size_t>(std::strtoull(a + 9, nullptr, 10));
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      seed = std::strtoull(a + 7, nullptr, 10);
      have_seed = true;
    } else if (std::strncmp(a, "--start-seed=", 13) == 0) {
      start_seed = std::strtoull(a + 13, nullptr, 10);
      have_start_seed = true;
    } else if (std::strncmp(a, "--seconds=", 10) == 0) {
      seconds = std::strtod(a + 10, nullptr);
    } else if (std::strncmp(a, "--profile=", 10) == 0) {
      auto parsed = chaos::ParseProfile(a + 10);
      if (!parsed.ok()) {
        std::fprintf(stderr, "chaos_soak: %s\n",
                     parsed.status().message().c_str());
        return 2;
      }
      profile = *parsed;
      have_profile = true;
    } else {
      return Usage();
    }
  }

  if (smoke) return SmokeMode();
  if (soak) return SoakMode(seconds, start_seed, have_start_seed);
  if (have_seed && have_profile) {
    return ReproMode(seed, profile, full, replay, shards, workers, deadline,
                     budget);
  }
  return Usage();
}

}  // namespace
}  // namespace dbaugur::bench

int main(int argc, char** argv) { return dbaugur::bench::Main(argc, argv); }

// Chaos harness driver: deterministic repro, CI smoke, and open-ended soak.
//
// Three modes:
//   repro:  chaos_soak --seed=N --profile=P [--full] [--replay]
//           Runs exactly the (seed, profile) a failing test or soak printed;
//           exits 1 with the full report if the failure reproduces.
//   smoke:  chaos_soak --smoke
//           A fixed mini-matrix across all four profiles plus one
//           full-service and one replay run, with a wall-clock budget so CI
//           notices when the harness gets slow. JSON summary on stdout.
//   soak:   chaos_soak --soak [--seconds=S] [--start-seed=N]
//           Randomized open-ended mode: sweeps fresh seeds (wall-clock
//           derived unless pinned) round-robin over the profiles, mixing in
//           full-service and replay legs, until the time budget runs out. On
//           failure it prints the repro + a ready-to-paste corpus line,
//           writes soak_failure.txt, and exits 1.
//
// A DBAUGUR_FAULT_SPEC in the environment arms the same fault storms the
// tests use; the harness then checks conservation/invariant oracles instead
// of exact differential equality.

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos/harness.h"

namespace dbaugur::bench {
namespace {

using chaos::ChaosOptions;
using chaos::ChaosReport;
using chaos::StreamProfile;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ChaosOptions MatrixOptions(uint64_t seed, StreamProfile profile) {
  ChaosOptions o;
  o.stream.seed = seed;
  o.stream.profile = profile;
  o.stream.bins = 36;
  o.stream.templates = 6;
  o.stream.mean_rate = 2.5;
  return o;
}

std::string CorpusLine(const ChaosOptions& o) {
  std::string line = std::to_string(o.stream.seed);
  line += " ";
  line += chaos::ProfileName(o.stream.profile);
  if (o.full_service) line += " full";
  if (o.replay) line += " replay";
  return line;
}

/// Runs one configuration; on failure prints the report and the corpus line.
bool RunOne(const ChaosOptions& opts) {
  const ChaosReport report = chaos::RunChaos(opts);
  if (report.ok) return true;
  std::fprintf(stderr, "%s\n", report.Summary().c_str());
  std::fprintf(stderr, "corpus line: %s\n", CorpusLine(opts).c_str());
  return false;
}

int ReproMode(uint64_t seed, StreamProfile profile, bool full, bool replay) {
  ChaosOptions o = MatrixOptions(seed, profile);
  o.full_service = full;
  o.replay = replay;
  const double t0 = NowSeconds();
  const bool ok = RunOne(o);
  std::printf(
      "{\n  \"benchmark\": \"chaos_soak\",\n  \"mode\": \"repro\",\n"
      "  \"seed\": %" PRIu64 ",\n  \"profile\": \"%s\",\n  \"ok\": %s,\n"
      "  \"seconds\": %.3f\n}\n",
      seed, chaos::ProfileName(profile), ok ? "true" : "false",
      NowSeconds() - t0);
  if (ok) std::fprintf(stderr, "chaos ok (repro %s)\n", CorpusLine(o).c_str());
  return ok ? 0 : 1;
}

int SmokeMode() {
  // Budget is deliberately generous (CI machines vary); the point is to fail
  // loudly if the harness regresses from seconds to minutes.
  constexpr double kBudgetSeconds = 120.0;
  const double t0 = NowSeconds();
  int runs = 0;
  int failures = 0;
  for (StreamProfile p : chaos::AllProfiles()) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      ++runs;
      if (!RunOne(MatrixOptions(seed, p))) ++failures;
    }
  }
  {
    ChaosOptions o = MatrixOptions(42, StreamProfile::kSteady);
    o.stream.bins = 28;
    o.stream.templates = 4;
    o.full_service = true;
    ++runs;
    if (!RunOne(o)) ++failures;
  }
  {
    ChaosOptions o = MatrixOptions(7, StreamProfile::kTemplateChurn);
    o.stream.bins = 24;
    o.replay = true;
    ++runs;
    if (!RunOne(o)) ++failures;
  }
  const double seconds = NowSeconds() - t0;
  const bool over_budget = seconds > kBudgetSeconds;
  std::printf(
      "{\n  \"benchmark\": \"chaos_soak\",\n  \"mode\": \"smoke\",\n"
      "  \"runs\": %d,\n  \"failures\": %d,\n  \"seconds\": %.3f,\n"
      "  \"budget_seconds\": %.1f\n}\n",
      runs, failures, seconds, kBudgetSeconds);
  std::fprintf(stderr, "chaos smoke: %d runs, %d failures, %.2fs\n", runs,
               failures, seconds);
  if (over_budget) {
    std::fprintf(stderr,
                 "chaos_soak: smoke took %.1fs, budget %.1fs — the harness "
                 "got an order of magnitude slower\n",
                 seconds, kBudgetSeconds);
    return 1;
  }
  return failures == 0 ? 0 : 1;
}

int SoakMode(double seconds, uint64_t start_seed, bool have_start_seed) {
  if (!have_start_seed) {
    // Fresh seeds every nightly run; print the start so any failure is
    // reproducible even if the repro line were lost.
    start_seed = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    start_seed = start_seed * 0x9E3779B97F4A7C15ULL >> 16;
  }
  std::fprintf(stderr,
               "chaos soak: %.0fs budget, start seed %" PRIu64 "\n",
               seconds, start_seed);
  const double t0 = NowSeconds();
  const auto profiles = chaos::AllProfiles();
  uint64_t runs = 0;
  while (NowSeconds() - t0 < seconds) {
    ChaosOptions o =
        MatrixOptions(start_seed + runs, profiles[runs % profiles.size()]);
    // Mix the expensive legs in at a steady cadence.
    o.full_service = runs % 7 == 3;
    o.replay = runs % 11 == 5;
    if (!RunOne(o)) {
      const std::string line = CorpusLine(o);
      std::FILE* f = std::fopen("soak_failure.txt", "w");
      if (f != nullptr) {
        std::fprintf(f, "%s\n", line.c_str());
        std::fprintf(f, "%s\n", chaos::RunChaos(o).Summary().c_str());
        std::fclose(f);
      }
      std::printf(
          "{\n  \"benchmark\": \"chaos_soak\",\n  \"mode\": \"soak\",\n"
          "  \"runs\": %" PRIu64 ",\n  \"failures\": 1,\n"
          "  \"failing_corpus_line\": \"%s\",\n  \"seconds\": %.3f\n}\n",
          runs + 1, line.c_str(), NowSeconds() - t0);
      return 1;
    }
    ++runs;
  }
  std::printf(
      "{\n  \"benchmark\": \"chaos_soak\",\n  \"mode\": \"soak\",\n"
      "  \"runs\": %" PRIu64 ",\n  \"failures\": 0,\n  \"start_seed\": "
      "%" PRIu64 ",\n  \"seconds\": %.3f\n}\n",
      runs, start_seed, NowSeconds() - t0);
  std::fprintf(stderr, "chaos soak: %" PRIu64 " runs clean in %.1fs\n", runs,
               NowSeconds() - t0);
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: chaos_soak --seed=N --profile=P [--full] [--replay]\n"
               "       chaos_soak --smoke\n"
               "       chaos_soak --soak [--seconds=S] [--start-seed=N]\n");
  return 2;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  bool soak = false;
  bool full = false;
  bool replay = false;
  bool have_seed = false;
  bool have_start_seed = false;
  uint64_t seed = 0;
  uint64_t start_seed = 0;
  double seconds = 60.0;
  StreamProfile profile = StreamProfile::kSteady;
  bool have_profile = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(a, "--soak") == 0) {
      soak = true;
    } else if (std::strcmp(a, "--full") == 0) {
      full = true;
    } else if (std::strcmp(a, "--replay") == 0) {
      replay = true;
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      seed = std::strtoull(a + 7, nullptr, 10);
      have_seed = true;
    } else if (std::strncmp(a, "--start-seed=", 13) == 0) {
      start_seed = std::strtoull(a + 13, nullptr, 10);
      have_start_seed = true;
    } else if (std::strncmp(a, "--seconds=", 10) == 0) {
      seconds = std::strtod(a + 10, nullptr);
    } else if (std::strncmp(a, "--profile=", 10) == 0) {
      auto parsed = chaos::ParseProfile(a + 10);
      if (!parsed.ok()) {
        std::fprintf(stderr, "chaos_soak: %s\n",
                     parsed.status().message().c_str());
        return 2;
      }
      profile = *parsed;
      have_profile = true;
    } else {
      return Usage();
    }
  }

  if (smoke) return SmokeMode();
  if (soak) return SoakMode(seconds, start_seed, have_start_seed);
  if (have_seed && have_profile) return ReproMode(seed, profile, full, replay);
  return Usage();
}

}  // namespace
}  // namespace dbaugur::bench

int main(int argc, char** argv) { return dbaugur::bench::Main(argc, argv); }

// Fig. 2 — Workload Patterns: prints the two evaluation traces (BusTracker
// query counts, Alibaba disk utilization) as series plus the summary
// statistics that characterize their published shapes: one-day cycle with
// crests/troughs vs a longer faint period with strong local linearity and
// bursts.

#include <cstdio>

#include "bench_util.h"
#include "common/math_utils.h"
#include "common/table_printer.h"

using namespace dbaugur;
using namespace dbaugur::bench;

namespace {

double Autocorrelation(const std::vector<double>& v, size_t lag) {
  double mean = Mean(v);
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i + lag < v.size(); ++i) {
    num += (v[i] - mean) * (v[i + lag] - mean);
  }
  for (double x : v) den += (x - mean) * (x - mean);
  return den > 0 ? num / den : 0.0;
}

void Summarize(const Dataset& ds, size_t day_steps) {
  const auto& v = ds.values;
  double mean = Mean(v), sd = StdDev(v);
  double mx = v[0];
  size_t bursts = 0;
  for (double x : v) {
    mx = std::max(mx, x);
    if (x > mean + 3 * sd) ++bursts;
  }
  TablePrinter t({"stat", "value"});
  t.AddRow({"samples (10-min bins)", std::to_string(v.size())});
  t.AddRow({"mean", TablePrinter::Fmt(mean, 3)});
  t.AddRow({"stddev", TablePrinter::Fmt(sd, 3)});
  t.AddRow({"max / mean", TablePrinter::Fmt(mx / mean, 2)});
  t.AddRow({"lag-1 autocorrelation", TablePrinter::Fmt(Autocorrelation(v, 1), 3)});
  t.AddRow({"one-day autocorrelation",
            TablePrinter::Fmt(Autocorrelation(v, day_steps), 3)});
  t.AddRow({"samples > mean+3sd (bursts)", std::to_string(bursts)});
  t.Print();

  // A coarse ASCII series so the shape is visible in terminal output.
  std::printf("series (each char = %zu bins, height ~ mean of chunk):\n",
              v.size() / 72 + 1);
  size_t chunk = v.size() / 72 + 1;
  double lo = 1e300, hi = -1e300;
  std::vector<double> chunks;
  for (size_t i = 0; i < v.size(); i += chunk) {
    double s = 0;
    size_t n = std::min(chunk, v.size() - i);
    for (size_t j = 0; j < n; ++j) s += v[i + j];
    chunks.push_back(s / static_cast<double>(n));
    lo = std::min(lo, chunks.back());
    hi = std::max(hi, chunks.back());
  }
  for (int row = 5; row >= 0; --row) {
    std::printf("  ");
    for (double c : chunks) {
      double level = (c - lo) / std::max(1e-12, hi - lo) * 6.0;
      std::printf("%c", level >= row ? '#' : ' ');
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Fig. 2(a): BusTracker-like query counts ===\n");
  Summarize(MakeBusTrackerDataset(), 144);
  std::printf("=== Fig. 2(b): Alibaba-cluster-like disk utilization ===\n");
  Summarize(MakeAlibabaDataset(), 144);
  std::printf(
      "Expected (paper): (a) clear one-day cycle with crests/troughs;\n"
      "(b) weaker/longer periodicity, near-1 lag-1 autocorrelation (local\n"
      "linearity), and visible bursts.\n");
  return 0;
}

// Fig. 5 — Forecasting Model Evaluation: test MSE vs forecasting horizon on
// the BusTracker-like and Alibaba-cluster-like traces for LR, ARIMA, MLP,
// LSTM, TCN, QB5000, WFGAN, and DBAugur (forecasting interval: 10 minutes).
//
// Expected shapes (paper §VI-B): accuracy degrades with horizon everywhere;
// LR/ARIMA fall off fastest on BusTracker; LR (and hence QB5000) is strong
// at small horizons on the locally-linear Alibaba trace; WFGAN ~ TCN on
// BusTracker but ahead on the bursty Alibaba trace; DBAugur best or
// tied-best throughout.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/table_printer.h"

using namespace dbaugur;
using namespace dbaugur::bench;

namespace {

void RunDataset(const Dataset& ds, const std::vector<size_t>& horizons) {
  std::printf("=== Fig. 5: %s (interval 10 min, %zu train / %zu test) ===\n",
              ds.name.c_str(), ds.train_size, ds.values.size() - ds.train_size);
  TablePrinter table({"horizon (steps)", "LR", "ARIMA", "MLP", "LSTM", "TCN",
                      "QB5000", "WFGAN", "DBAugur"});
  for (size_t h : horizons) {
    models::ForecasterOptions opts = BenchOptions(h);
    // Fit each base model once; ensembles share the trained members.
    std::map<std::string, std::unique_ptr<models::Forecaster>> fitted;
    std::map<std::string, double> mse;
    for (const char* name :
         {"LR", "ARIMA", "MLP", "LSTM", "TCN", "KR", "WFGAN"}) {
      // WFGAN's generator+discriminator pair needs more epochs to converge
      // than the point forecasters (the paper trains everything for 50).
      models::ForecasterOptions mopts =
          std::string(name) == "WFGAN" ? BenchOptions(h, 20) : opts;
      auto fs = FitAndScore(name, ds, mopts);
      CheckOk(fs.status(), name);
      mse[name] = fs->second;
      fitted[name] = std::move(fs->first);
    }
    auto qb = EnsembleScore(
        {fitted["LR"].get(), fitted["LSTM"].get(), fitted["KR"].get()},
        /*dynamic=*/false, ds, opts);
    CheckOk(qb.status(), "QB5000");
    auto dba = EnsembleScore(
        {fitted["WFGAN"].get(), fitted["TCN"].get(), fitted["MLP"].get()},
        /*dynamic=*/true, ds, opts);
    CheckOk(dba.status(), "DBAugur");
    table.AddRow({std::to_string(h), TablePrinter::Fmt(mse["LR"]),
                  TablePrinter::Fmt(mse["ARIMA"]), TablePrinter::Fmt(mse["MLP"]),
                  TablePrinter::Fmt(mse["LSTM"]), TablePrinter::Fmt(mse["TCN"]),
                  TablePrinter::Fmt(*qb), TablePrinter::Fmt(mse["WFGAN"]),
                  TablePrinter::Fmt(*dba)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  // Horizons in 10-minute steps: 10 min, 1 h, 3 h, 6 h.
  RunDataset(MakeBusTrackerDataset(), {1, 6, 18, 36});
  RunDataset(MakeAlibabaDataset(), {1, 6, 18, 36});
  std::printf(
      "MSE in raw units (queries/interval for BusTracker; utilization ratio\n"
      "for AliCluster) — compare shapes across a row/column, not across\n"
      "datasets.\n");
  return 0;
}

// Fig. 6 — Forecasting Horizon Evaluation: predicted vs actual BusTracker
// workload under 60-minute, 12-hour, and 1-day horizons (interval 10 min).
// Prints aligned (time, actual, predicted) rows per horizon; the expected
// shape is a close match at 60 minutes that progressively loses the sudden
// spikes as the horizon grows.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"

using namespace dbaugur;
using namespace dbaugur::bench;

int main() {
  Dataset ds = MakeBusTrackerDataset();
  struct Config {
    const char* label;
    size_t horizon;  // in 10-minute steps
  };
  const Config configs[] = {{"60-minutes", 6}, {"12-hours", 72}, {"1-day", 144}};
  for (const Config& cfg : configs) {
    models::ForecasterOptions opts = BenchOptions(cfg.horizon);
    // DBAugur full ensemble: WFGAN (more epochs, see fig5) + TCN + MLP.
    auto wfgan = FitAndScore("WFGAN", ds, BenchOptions(cfg.horizon, 20));
    auto tcn = FitAndScore("TCN", ds, opts);
    auto mlp = FitAndScore("MLP", ds, opts);
    CheckOk(wfgan.status(), "WFGAN");
    CheckOk(tcn.status(), "TCN");
    CheckOk(mlp.status(), "MLP");
    ensemble::EnsembleOptions eopts;
    ensemble::TimeSensitiveEnsemble ens(opts, eopts);
    ens.AddMember(std::make_unique<ensemble::SharedMember>(wfgan->first.get()));
    ens.AddMember(std::make_unique<ensemble::SharedMember>(tcn->first.get()));
    ens.AddMember(std::make_unique<ensemble::SharedMember>(mlp->first.get()));
    CheckOk(ens.Fit(ds.train()), "ensemble fit");
    auto eval = ensemble::EvaluateOnline(ens, ds.values, ds.train_size,
                                         opts.window, cfg.horizon);
    CheckOk(eval.status(), "evaluate");
    auto mse = ts::MSE(eval->predicted, eval->actual);
    std::printf("=== Fig. 6: horizon %s (MSE %.1f) ===\n", cfg.label, *mse);
    TablePrinter table({"t (hours into test)", "actual", "DBAugur predicted"});
    // Print every 6th point (hourly) over the first two test days.
    for (size_t i = 0; i < eval->predicted.size() && i < 288; i += 6) {
      double hours = static_cast<double>(i) / 6.0;
      table.AddRow({TablePrinter::Fmt(hours, 1),
                    TablePrinter::Fmt(eval->actual[i], 0),
                    TablePrinter::Fmt(eval->predicted[i], 0)});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "Expected (paper Fig. 6): tight tracking incl. spikes at 60 min;\n"
      "stable trend but sluggish response to sudden changes at 12 h; shape\n"
      "only at 1 day.\n");
  return 0;
}

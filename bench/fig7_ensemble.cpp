// Fig. 7 — Ensemble Method Evaluation: dynamic time-sensitive weights
// (δ = 0.9, Eq. 7-8) vs fixed equal weights over the same member models
// (WFGAN + TCN + MLP) on the BusTracker trace, across horizons.
//
// Expected shape: the dynamic ensemble's MSE is at or below the fixed
// ensemble's at every horizon.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"

using namespace dbaugur;
using namespace dbaugur::bench;

int main() {
  Dataset ds = MakeBusTrackerDataset();
  std::printf("=== Fig. 7: dynamic vs fixed ensemble (BusTracker) ===\n");
  TablePrinter table(
      {"horizon (steps)", "fixed weights", "dynamic (delta=0.9)", "winner"});
  for (size_t h : {1, 6, 18, 36}) {
    models::ForecasterOptions opts = BenchOptions(h);
    auto wfgan = FitAndScore("WFGAN", ds, BenchOptions(h, 20));
    auto tcn = FitAndScore("TCN", ds, opts);
    auto mlp = FitAndScore("MLP", ds, opts);
    CheckOk(wfgan.status(), "WFGAN");
    CheckOk(tcn.status(), "TCN");
    CheckOk(mlp.status(), "MLP");
    std::vector<const models::Forecaster*> members = {
        wfgan->first.get(), tcn->first.get(), mlp->first.get()};
    auto fixed = EnsembleScore(members, /*dynamic=*/false, ds, opts);
    auto dynamic = EnsembleScore(members, /*dynamic=*/true, ds, opts);
    CheckOk(fixed.status(), "fixed");
    CheckOk(dynamic.status(), "dynamic");
    table.AddRow({std::to_string(h), TablePrinter::Fmt(*fixed, 1),
                  TablePrinter::Fmt(*dynamic, 1),
                  *dynamic <= *fixed ? "dynamic" : "fixed"});
  }
  table.Print();
  std::printf(
      "\nExpected (paper Fig. 7): dynamic at or below fixed at every\n"
      "horizon — the time-sensitive weights shift toward whichever member\n"
      "currently forecasts best.\n");
  return 0;
}

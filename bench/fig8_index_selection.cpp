// Fig. 8 — Case Study: Index Selection. Replays day 2 of a two-day
// BusTracker query log against the mini relational engine under three
// physical-design strategies:
//
//   Static          — AutoAdmin once, on day-1's *observed* aggregate
//                     workload; indexes exist from the start of day 2.
//   Auto (QB5000)   — starts with no indexes; from 08:00, re-advises every
//                     4 h with per-template arrival rates *forecast* by the
//                     QB5000 ensemble (trained on day 1).
//   Auto (DBAugur)  — same protocol with the DBAugur ensemble.
//
// Expected shape (paper Fig. 8): Static is strong early; Auto throughput is
// low at first (no indexes, then build cost), then overtakes Static once the
// forecast-driven indexes match the shifted evening mix; DBAugur >= QB5000.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/table_printer.h"
#include "dbsim/advisor.h"
#include "dbsim/bustracker_db.h"
#include "dbsim/replay.h"
#include "trace/extractor.h"
#include "workloads/query_log.h"

using namespace dbaugur;
using namespace dbaugur::bench;

namespace {

constexpr int64_t kDay = 86400;
constexpr int64_t kInterval = 600;  // 10-minute bins
constexpr size_t kAdvisorBudget = 2;

// Per-template representative QuerySpec (for the advisor) keyed by the
// extractor's template id.
std::map<size_t, dbsim::QuerySpec> TemplateSpecs(
    const trace::TraceExtractor& extractor,
    const std::vector<workloads::QueryTemplateSpec>& specs) {
  std::map<size_t, dbsim::QuerySpec> out;
  Rng rng(1);
  for (const auto& spec : specs) {
    std::string sample = spec.make_sql(rng);
    auto tmpl = sql::ToTemplate(sample);
    if (!tmpl.ok()) continue;
    auto id = extractor.registry().Lookup(*tmpl);
    if (!id.ok()) continue;
    auto parsed = dbsim::ParseQuery(sample);
    if (!parsed.ok()) continue;
    out[*id] = *parsed;
  }
  return out;
}

// Builds index actions for an Auto strategy: at each re-advise time, weight
// each template by its forecast arrival rate one hour ahead and run the
// advisor; emit creates/drops to match the recommendation.
std::vector<dbsim::IndexAction> PlanAutoActions(
    const dbsim::Database& db, const std::vector<ts::Series>& traces,
    const std::map<size_t, dbsim::QuerySpec>& specs,
    const std::vector<std::unique_ptr<models::Forecaster>>& forecasters,
    const models::ForecasterOptions& fopts) {
  std::vector<dbsim::IndexAction> actions;
  std::set<dbsim::HypotheticalIndex> current;
  for (int64_t when = kDay + 8 * 3600; when < 2 * kDay; when += 4 * 3600) {
    size_t bin = static_cast<size_t>(when / kInterval);
    std::vector<dbsim::WeightedQuery> workload;
    for (const auto& [id, spec] : specs) {
      const auto& v = traces[id].values();
      if (bin > v.size() || bin < fopts.window) continue;
      std::vector<double> window(
          v.begin() + static_cast<ptrdiff_t>(bin - fopts.window),
          v.begin() + static_cast<ptrdiff_t>(bin));
      auto pred = forecasters[id]->Predict(window);
      double rate = pred.ok() ? std::max(0.0, *pred) : 0.0;
      workload.push_back({spec, rate});
    }
    auto rec = dbsim::RecommendIndexes(db, workload, {kAdvisorBudget});
    if (!rec.ok()) continue;
    std::set<dbsim::HypotheticalIndex> want(rec->indexes.begin(),
                                            rec->indexes.end());
    dbsim::IndexAction act;
    act.when = when;
    for (const auto& idx : want) {
      if (!current.count(idx)) act.create.push_back(idx);
    }
    for (const auto& idx : current) {
      if (!want.count(idx)) act.drop.push_back(idx);
    }
    if (!act.create.empty() || !act.drop.empty()) actions.push_back(act);
    current = want;
  }
  return actions;
}

struct StrategyResult {
  std::string name;
  std::vector<dbsim::WindowStats> windows;
};

}  // namespace

int main() {
  auto specs = workloads::BusTrackerTemplates();
  workloads::QueryLogOptions lopts;
  lopts.days = 2;
  lopts.seed = 17;
  auto log = workloads::GenerateQueryLog(specs, lopts);

  // Per-template arrival-rate traces over both days.
  trace::ExtractionOptions eopts;
  eopts.interval_seconds = kInterval;
  trace::TraceExtractor extractor(eopts);
  CheckOk(extractor.IngestLog(log), "ingest");
  auto traces_or = extractor.TemplateTraces();
  CheckOk(traces_or.status(), "traces");
  auto traces = std::move(traces_or).value();

  // Day-2 slice of the log for replay.
  std::vector<trace::LogEntry> day2;
  for (const auto& e : log) {
    if (e.timestamp >= kDay) day2.push_back(e);
  }
  std::printf("day-2 replay: %zu queries, %zu templates\n\n", day2.size(),
              traces.size());

  models::ForecasterOptions fopts;
  fopts.window = 24;
  fopts.horizon = 6;  // one hour ahead
  fopts.epochs = 8;

  // Train per-template forecasters on day 1.
  auto train_models = [&](bool dbaugur_flavor)
      -> std::vector<std::unique_ptr<models::Forecaster>> {
    std::vector<std::unique_ptr<models::Forecaster>> out;
    for (auto& t : traces) {
      std::vector<double> day1(t.values().begin(),
                               t.values().begin() + kDay / kInterval);
      auto ens = dbaugur_flavor ? ensemble::MakeDBAugur(fopts)
                                : ensemble::MakeQB5000(fopts);
      CheckOk(ens.status(), "ensemble");
      CheckOk((*ens)->Fit(day1), "template model fit");
      out.push_back(std::move(ens).value());
    }
    return out;
  };

  dbsim::BusTrackerDbOptions db_opts;  // default scale
  auto tmpl_specs_db = dbsim::MakeBusTrackerDatabase(db_opts);
  CheckOk(tmpl_specs_db.status(), "db");
  auto tmpl_specs = TemplateSpecs(extractor, specs);

  dbsim::ReplayOptions ropts;
  ropts.window_seconds = 3600;

  std::vector<StrategyResult> results;

  // --- Static: advisor on day-1 observed workload, indexes pre-built.
  {
    auto db = dbsim::MakeBusTrackerDatabase(db_opts);
    CheckOk(db.status(), "db");
    std::vector<dbsim::WeightedQuery> day1_workload;
    for (const auto& [id, spec] : tmpl_specs) {
      double total = 0.0;
      for (size_t b = 0; b < static_cast<size_t>(kDay / kInterval); ++b) {
        total += traces[id][b];
      }
      day1_workload.push_back({spec, total});
    }
    auto rec = dbsim::RecommendIndexes(*db, day1_workload, {kAdvisorBudget});
    CheckOk(rec.status(), "static advisor");
    std::printf("Static indexes (from day-1 history): ");
    for (const auto& idx : rec->indexes) {
      std::printf("%s.%s ", idx.table.c_str(), idx.column.c_str());
      CheckOk(db->CreateIndex(idx.table, idx.column), "create");
    }
    std::printf("\n");
    auto stats = dbsim::ReplayWorkload(&*db, day2, {}, ropts);
    CheckOk(stats.status(), "replay static");
    results.push_back({"Static", std::move(stats).value()});
  }

  // --- Auto strategies.
  for (bool dbaugur_flavor : {false, true}) {
    auto db = dbsim::MakeBusTrackerDatabase(db_opts);
    CheckOk(db.status(), "db");
    auto forecasters = train_models(dbaugur_flavor);
    auto actions =
        PlanAutoActions(*db, traces, tmpl_specs, forecasters, fopts);
    std::printf("Auto(%s): %zu re-advise actions\n",
                dbaugur_flavor ? "DBAugur" : "QB5000", actions.size());
    auto stats = dbsim::ReplayWorkload(&*db, day2, actions, ropts);
    CheckOk(stats.status(), "replay auto");
    results.push_back(
        {dbaugur_flavor ? "Auto(DBAugur)" : "Auto(QB5000)",
         std::move(stats).value()});
  }

  // --- Fig. 8(a): throughput over the day; Fig. 8(b): latency.
  std::printf("\n=== Fig. 8(a): query throughput (qps) over day 2 ===\n");
  TablePrinter tput({"hour", results[0].name, results[1].name, results[2].name});
  size_t windows = results[0].windows.size();
  for (size_t w = 0; w < windows; ++w) {
    tput.AddRow({std::to_string(w).append(":00"),
                 TablePrinter::Fmt(results[0].windows[w].throughput_qps, 3),
                 TablePrinter::Fmt(results[1].windows[w].throughput_qps, 3),
                 TablePrinter::Fmt(results[2].windows[w].throughput_qps, 3)});
  }
  tput.Print();
  std::printf("\n=== Fig. 8(b): average latency (ms) over day 2 ===\n");
  TablePrinter lat({"hour", results[0].name, results[1].name, results[2].name});
  for (size_t w = 0; w < windows; ++w) {
    lat.AddRow({std::to_string(w).append(":00"),
                TablePrinter::Fmt(results[0].windows[w].avg_latency_ms, 2),
                TablePrinter::Fmt(results[1].windows[w].avg_latency_ms, 2),
                TablePrinter::Fmt(results[2].windows[w].avg_latency_ms, 2)});
  }
  lat.Print();

  // Summary: mean latency before/after the first re-advise (08:00).
  std::printf("\nmean latency (ms) before / after 08:00:\n");
  for (const auto& r : results) {
    double before = 0, after = 0;
    int nb = 0, na = 0;
    for (const auto& w : r.windows) {
      if (w.queries == 0) continue;
      if (w.start < kDay + 8 * 3600) {
        before += w.avg_latency_ms;
        ++nb;
      } else {
        after += w.avg_latency_ms;
        ++na;
      }
    }
    std::printf("  %-14s %8.2f / %8.2f\n", r.name.c_str(),
                nb ? before / nb : 0.0, na ? after / na : 0.0);
  }
  return 0;
}

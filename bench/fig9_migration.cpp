// Fig. 9 — Case Study: Data Region Migration. Simulates region migration on
// the paper's two synthetic workloads — (a) periodic, (b) complex (trend +
// white noise + seasonal + holiday + weekday) — with a rotating hotspot
// across 8 regions on 4 servers. Strategies plan each period's migrations
// from:
//   Static        — last period's observed region loads,
//   QB5000        — per-region QB5000 forecasts,
//   DBAugur       — per-region DBAugur forecasts.
// Metric: load-balance difference (max-min)/mean per period; lower is
// better. Expected shape: Static worst; both forecast-driven strategies far
// better; DBAugur <= QB5000.

#include <cstdio>
#include <numeric>

#include "bench_util.h"
#include "common/table_printer.h"
#include "migrate/load_balancer.h"

using namespace dbaugur;
using namespace dbaugur::bench;

namespace {

constexpr size_t kRegions = 8;
constexpr size_t kServers = 4;
constexpr size_t kMaxMoves = 2;

struct StrategyCurve {
  std::string name;
  std::vector<double> balance;
  double mean = 0.0;
};

StrategyCurve Run(const std::string& name,
                  const std::vector<ts::Series>& regions, size_t eval_start,
                  const migrate::RegionPredictor& pred) {
  auto bal = migrate::SimulateMigration(regions, kServers, eval_start, pred,
                                        kMaxMoves);
  CheckOk(bal.status(), name.c_str());
  StrategyCurve out{name, std::move(bal).value(), 0.0};
  out.mean = std::accumulate(out.balance.begin(), out.balance.end(), 0.0) /
             static_cast<double>(out.balance.size());
  return out;
}

void RunWorkload(const char* label, const ts::Series& base) {
  // Hotspot advances 1.3 regions per period: fast enough that planning on
  // last period's loads (Static) is consistently one step behind, while the
  // rotation is periodic and therefore learnable by the forecasters.
  auto regions = migrate::MakeRotatingRegionLoads(base, kRegions, 1.3, 3.0);
  size_t eval_start = base.size() * 6 / 10;

  models::ForecasterOptions fopts;
  fopts.window = 24;
  fopts.horizon = 1;
  fopts.epochs = 20;

  // Per-region forecast ensembles trained on the pre-evaluation history.
  auto fit_models = [&](bool dbaugur_flavor) {
    std::vector<std::unique_ptr<ensemble::TimeSensitiveEnsemble>> out;
    for (size_t r = 0; r < kRegions; ++r) {
      auto ens = dbaugur_flavor ? ensemble::MakeDBAugur(fopts)
                                : ensemble::MakeQB5000(fopts);
      CheckOk(ens.status(), "ensemble");
      std::vector<double> train(
          regions[r].values().begin(),
          regions[r].values().begin() + static_cast<ptrdiff_t>(eval_start));
      CheckOk((*ens)->Fit(train), "region fit");
      out.push_back(std::move(ens).value());
    }
    return out;
  };
  auto qb_models = fit_models(false);
  auto dba_models = fit_models(true);

  auto model_pred = [&](auto& ms) {
    return [&regions, &ms, &fopts](size_t r, size_t p) -> StatusOr<double> {
      const auto& v = regions[r].values();
      // Feed back the PREVIOUS period's realized value first (it is known by
      // now) so the time-sensitive weights adapt causally.
      if (p >= fopts.window + 1) {
        std::vector<double> prev_window(
            v.begin() + static_cast<ptrdiff_t>(p - 1 - fopts.window),
            v.begin() + static_cast<ptrdiff_t>(p - 1));
        (void)ms[r]->Observe(prev_window, v[p - 1]);
      }
      std::vector<double> window(
          v.begin() + static_cast<ptrdiff_t>(p - fopts.window),
          v.begin() + static_cast<ptrdiff_t>(p));
      return ms[r]->Predict(window);
    };
  };

  auto static_curve = Run("Static", regions, eval_start,
                          [&](size_t r, size_t p) -> StatusOr<double> {
                            return regions[r][p - 1];
                          });
  auto qb_curve = Run("QB5000", regions, eval_start, model_pred(qb_models));
  auto dba_curve = Run("DBAugur", regions, eval_start, model_pred(dba_models));

  std::printf("=== Fig. 9: %s workload (%zu evaluated periods) ===\n", label,
              static_curve.balance.size());
  TablePrinter table({"period", "Static", "QB5000", "DBAugur"});
  size_t stride = std::max<size_t>(1, static_curve.balance.size() / 24);
  for (size_t p = 0; p < static_curve.balance.size(); p += stride) {
    table.AddRow({std::to_string(p), TablePrinter::Fmt(static_curve.balance[p], 3),
                  TablePrinter::Fmt(qb_curve.balance[p], 3),
                  TablePrinter::Fmt(dba_curve.balance[p], 3)});
  }
  table.Print();
  std::printf("mean balance difference:  Static %.4f  QB5000 %.4f  DBAugur %.4f\n\n",
              static_curve.mean, qb_curve.mean, dba_curve.mean);
}

}  // namespace

int main() {
  workloads::PeriodicOptions popts;
  popts.periods = 20;
  popts.steps_per_period = 12;
  RunWorkload("periodic", workloads::GeneratePeriodic(popts));

  workloads::ComplexOptions copts;
  copts.days = 20;
  copts.steps_per_day = 12;
  RunWorkload("complex", workloads::GenerateComplex(copts));

  std::printf(
      "Expected (paper Fig. 9): Static (historical loads) lags the rotating\n"
      "hotspot and balances poorly; forecast-driven migration is markedly\n"
      "better on both workloads, with DBAugur at or below QB5000.\n");
  return 0;
}

// GEMM kernel and training-hot-path benchmark with machine-readable output.
//
// Two families of cases:
//   1. Microkernels: each fused GEMM variant vs the pre-PR naive kernel
//      (nn::ref) including the fresh-allocation-per-call behavior of the old
//      Matrix wrappers, at the shapes the WFGAN/LSTM/MLP hot paths hit.
//   2. wfgan_lstm_epoch: one WFGAN-shaped training epoch worth of LSTM
//      forward+backward passes. The legacy side is a faithful replica of the
//      pre-PR LSTM (per-step allocations, unfused gate loops, naive kernels);
//      the fused side runs the current nn::LSTM workspaces.
//
// Output is a single JSON object (stdout, or --out FILE). `--smoke` shrinks
// rep counts so CI can run it in seconds.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "nn/gemm.h"
#include "nn/lstm.h"
#include "nn/matrix.h"

namespace dbaugur::bench {
namespace {

using nn::Matrix;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng->Uniform(-1.0, 1.0);
  }
  return m;
}

// --- Legacy Matrix-op replicas: fresh allocation per call + naive kernel,
// exactly what the pre-PR Matrix::MatMul family did.

Matrix LegacyMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols(), 0.0);
  nn::ref::MatMul(a.rows(), a.cols(), b.cols(), a.data(), b.data(), c.data());
  return c;
}

Matrix LegacyTransposeMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols(), 0.0);
  nn::ref::TransposeMatMul(a.rows(), a.cols(), b.cols(), a.data(), b.data(),
                           c.data());
  return c;
}

Matrix LegacyMatMulTranspose(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows(), 0.0);
  nn::ref::MatMulTranspose(a.rows(), a.cols(), b.rows(), a.data(), b.data(),
                           c.data());
  return c;
}

// --- Microkernel cases.

struct KernelCase {
  const char* name;  // which hot-path GEMM this shape comes from
  const char* op;    // nn | tn | nt
  size_t m, k, n;
};

// Shapes taken from the WFGAN (batch 32, input 1, hidden 30 -> 4H=120,
// attn 16), the MLP (30->32->16), and one large square that crosses the
// parallel-dispatch threshold.
const KernelCase kKernelCases[] = {
    {"lstm_z_recurrent", "nn", 32, 30, 120},
    {"lstm_z_input", "nn", 32, 1, 120},
    {"lstm_dwh", "tn", 32, 30, 120},
    {"lstm_dh_next", "nt", 32, 120, 30},
    {"attention_u", "nn", 32, 30, 16},
    {"mlp_l1", "nn", 32, 30, 32},
    {"large_square", "nn", 256, 256, 256},
};

struct CaseResult {
  std::string name;
  size_t m = 0, k = 0, n = 0;
  int reps = 0;
  double naive_ns = 0.0;
  double fused_ns = 0.0;
  double speedup = 0.0;
};

// Picks a rep count so each timed side runs ~`budget_s`.
int RepsForFlops(double flops, bool smoke) {
  double budget_s = smoke ? 0.02 : 0.4;
  double est_s = flops / 1e9;  // ~1 GFLOP/s floor for the naive kernel
  int reps = static_cast<int>(budget_s / (est_s > 1e-9 ? est_s : 1e-9));
  if (reps < 3) reps = 3;
  if (reps > 200000) reps = 200000;
  return reps;
}

CaseResult RunKernelCase(const KernelCase& kc, bool smoke, Rng* rng) {
  CaseResult r;
  r.name = kc.name;
  r.m = kc.m;
  r.k = kc.k;
  r.n = kc.n;
  r.reps = RepsForFlops(2.0 * static_cast<double>(kc.m) *
                            static_cast<double>(kc.k) *
                            static_cast<double>(kc.n),
                        smoke);

  const bool tn = std::strcmp(kc.op, "tn") == 0;
  const bool nt = std::strcmp(kc.op, "nt") == 0;
  // a is always (m x k). b depends on the op: nn multiplies a*b with b
  // (k x n); tn computes a^T*b with b (m x n); nt computes a*b^T with b
  // (n x k).
  Matrix a = RandomMatrix(kc.m, kc.k, rng);
  Matrix b = RandomMatrix(tn ? kc.m : (nt ? kc.n : kc.k),
                          tn ? kc.n : (nt ? kc.k : kc.n), rng);

  double sink = 0.0;  // defeats dead-code elimination

  double t0 = NowSeconds();
  for (int i = 0; i < r.reps; ++i) {
    Matrix c = tn   ? LegacyTransposeMatMul(a, b)
               : nt ? LegacyMatMulTranspose(a, b)
                    : LegacyMatMul(a, b);
    sink += c.data()[0];
  }
  double t1 = NowSeconds();

  Matrix c;  // persistent workspace, like the layer code
  for (int warm = 0; warm < 2; ++warm) {
    if (tn) {
      c.TransposeMatMulInto(a, b);
    } else if (nt) {
      c.MatMulTransposeInto(a, b);
    } else {
      c.MatMulInto(a, b);
    }
  }
  double t2 = NowSeconds();
  for (int i = 0; i < r.reps; ++i) {
    if (tn) {
      c.TransposeMatMulInto(a, b);
    } else if (nt) {
      c.MatMulTransposeInto(a, b);
    } else {
      c.MatMulInto(a, b);
    }
    sink += c.data()[0];
  }
  double t3 = NowSeconds();

  if (sink == 12345.6789) std::fprintf(stderr, "~");
  r.naive_ns = (t1 - t0) * 1e9 / r.reps;
  r.fused_ns = (t3 - t2) * 1e9 / r.reps;
  r.speedup = r.fused_ns > 0.0 ? r.naive_ns / r.fused_ns : 0.0;
  return r;
}

// --- Legacy LSTM replica (verbatim structure of the pre-PR nn::LSTM:
// std::vector caches rebuilt per pass, six unfused gate loops, operator()
// indexing, naive kernels, fresh result matrices everywhere).

struct LegacyLstm {
  size_t input, hidden;
  Matrix wx, wh, b, dwx, dwh, db;

  struct StepCache {
    Matrix x, h_prev, c_prev, i, f, g, o, c, tanh_c;
  };
  std::vector<StepCache> cache;

  LegacyLstm(size_t in, size_t hid, Rng* rng)
      : input(in),
        hidden(hid),
        wx(RandomMatrix(in, 4 * hid, rng)),
        wh(RandomMatrix(hid, 4 * hid, rng)),
        b(RandomMatrix(1, 4 * hid, rng)),
        dwx(in, 4 * hid),
        dwh(hid, 4 * hid),
        db(1, 4 * hid) {}

  std::vector<Matrix> ForwardSequence(const std::vector<Matrix>& xs) {
    cache.clear();
    cache.reserve(xs.size());
    std::vector<Matrix> hs;
    hs.reserve(xs.size());
    size_t batch = xs[0].rows();
    Matrix h(batch, hidden), c(batch, hidden);
    for (const Matrix& x : xs) {
      StepCache sc;
      sc.x = x;
      sc.h_prev = h;
      sc.c_prev = c;
      Matrix z = LegacyMatMul(x, wx);
      z.Add(LegacyMatMul(h, wh));
      z.AddRowVector(b);
      sc.i = Matrix(batch, hidden);
      sc.f = Matrix(batch, hidden);
      sc.g = Matrix(batch, hidden);
      sc.o = Matrix(batch, hidden);
      for (size_t r = 0; r < batch; ++r) {
        const double* zr = z.row(r);
        for (size_t j = 0; j < hidden; ++j) {
          sc.i(r, j) = Sigmoid(zr[j]);
          sc.f(r, j) = Sigmoid(zr[hidden + j]);
          sc.g(r, j) = std::tanh(zr[2 * hidden + j]);
          sc.o(r, j) = Sigmoid(zr[3 * hidden + j]);
        }
      }
      sc.c = Matrix(batch, hidden);
      sc.tanh_c = Matrix(batch, hidden);
      Matrix h_new(batch, hidden);
      for (size_t r = 0; r < batch; ++r) {
        for (size_t j = 0; j < hidden; ++j) {
          sc.c(r, j) = sc.f(r, j) * c(r, j) + sc.i(r, j) * sc.g(r, j);
          sc.tanh_c(r, j) = std::tanh(sc.c(r, j));
          h_new(r, j) = sc.o(r, j) * sc.tanh_c(r, j);
        }
      }
      c = sc.c;
      h = h_new;
      hs.push_back(h);
      cache.push_back(std::move(sc));
    }
    return hs;
  }

  std::vector<Matrix> BackwardSequence(const std::vector<Matrix>& grad_hs) {
    size_t steps = cache.size();
    std::vector<Matrix> dxs(steps);
    size_t batch = cache[0].x.rows();
    Matrix dh_next(batch, hidden);
    Matrix dc_next(batch, hidden);
    for (size_t t = steps; t-- > 0;) {
      const StepCache& sc = cache[t];
      Matrix dh = grad_hs[t];
      dh.Add(dh_next);
      Matrix do_gate(batch, hidden), dc(batch, hidden);
      for (size_t r = 0; r < batch; ++r) {
        for (size_t j = 0; j < hidden; ++j) {
          double tc = sc.tanh_c(r, j);
          do_gate(r, j) = dh(r, j) * tc;
          dc(r, j) = dh(r, j) * sc.o(r, j) * (1.0 - tc * tc) + dc_next(r, j);
        }
      }
      Matrix di(batch, hidden), df(batch, hidden), dg(batch, hidden);
      Matrix dc_prev(batch, hidden);
      for (size_t r = 0; r < batch; ++r) {
        for (size_t j = 0; j < hidden; ++j) {
          di(r, j) = dc(r, j) * sc.g(r, j);
          df(r, j) = dc(r, j) * sc.c_prev(r, j);
          dg(r, j) = dc(r, j) * sc.i(r, j);
          dc_prev(r, j) = dc(r, j) * sc.f(r, j);
        }
      }
      Matrix dz(batch, 4 * hidden);
      for (size_t r = 0; r < batch; ++r) {
        for (size_t j = 0; j < hidden; ++j) {
          double iv = sc.i(r, j), fv = sc.f(r, j), gv = sc.g(r, j),
                 ov = sc.o(r, j);
          dz(r, j) = di(r, j) * iv * (1.0 - iv);
          dz(r, hidden + j) = df(r, j) * fv * (1.0 - fv);
          dz(r, 2 * hidden + j) = dg(r, j) * (1.0 - gv * gv);
          dz(r, 3 * hidden + j) = do_gate(r, j) * ov * (1.0 - ov);
        }
      }
      dwx.Add(LegacyTransposeMatMul(sc.x, dz));
      dwh.Add(LegacyTransposeMatMul(sc.h_prev, dz));
      db.Add(dz.ColSum());
      dxs[t] = LegacyMatMulTranspose(dz, wx);
      dh_next = LegacyMatMulTranspose(dz, wh);
      dc_next = dc_prev;
    }
    return dxs;
  }
};

struct EpochResult {
  int reps = 0;
  int batches = 0;
  int seq_passes = 0;
  size_t batch = 0, steps = 0, hidden = 0;
  double naive_ms = 0.0;
  double fused_ms = 0.0;
  double speedup = 0.0;
  double fused_f32_ms = 0.0;  // same epoch through the f32 training path
  double speedup_f32 = 0.0;
};

// One WFGAN training batch runs the generator trunk fwd+bwd once and the
// discriminator trunk fwd+bwd three times (two D-step passes, one G-step
// pass); both trunks are the same LSTM shape, so a batch is 4 sequence
// passes through an LSTM(1, hidden).
EpochResult RunWfganEpochCase(bool smoke, Rng* rng) {
  EpochResult r;
  r.batch = 32;
  r.steps = 30;  // paper window
  r.hidden = 30;
  r.seq_passes = 4;
  r.batches = smoke ? 2 : 16;  // full: ~500 samples / batch 32
  r.reps = smoke ? 1 : 3;

  std::vector<Matrix> xs, grads;
  for (size_t t = 0; t < r.steps; ++t) {
    xs.push_back(RandomMatrix(r.batch, 1, rng));
    grads.push_back(RandomMatrix(r.batch, r.hidden, rng));
  }

  double sink = 0.0;
  LegacyLstm legacy(1, r.hidden, rng);
  // Warm one pass so both sides start with faulted-in pages.
  sink += legacy.ForwardSequence(xs)[0].data()[0];
  double t0 = NowSeconds();
  for (int rep = 0; rep < r.reps; ++rep) {
    for (int bi = 0; bi < r.batches; ++bi) {
      for (int p = 0; p < r.seq_passes; ++p) {
        auto hs = legacy.ForwardSequence(xs);
        auto dxs = legacy.BackwardSequence(grads);
        sink += hs.back().data()[0] + dxs[0].data()[0];
      }
    }
  }
  double t1 = NowSeconds();

  nn::LSTM fused(1, r.hidden, rng);
  fused.ForwardSequence(xs);
  fused.BackwardSequence(grads);
  double t2 = NowSeconds();
  for (int rep = 0; rep < r.reps; ++rep) {
    for (int bi = 0; bi < r.batches; ++bi) {
      for (int p = 0; p < r.seq_passes; ++p) {
        const std::vector<Matrix>& hs = fused.ForwardSequence(xs);
        const std::vector<Matrix>& dxs = fused.BackwardSequence(grads);
        sink += hs.back().data()[0] + dxs[0].data()[0];
      }
    }
  }
  double t3 = NowSeconds();

  // f32 leg: the same epoch through the single-precision training path a
  // model opts into with Precision::kF32.
  std::vector<nn::MatrixF> xs32, grads32;
  xs32.reserve(xs.size());
  grads32.reserve(grads.size());
  for (const Matrix& x : xs) {
    nn::MatrixF m(x.rows(), x.cols());
    for (size_t i = 0; i < x.size(); ++i) {
      m.data()[i] = static_cast<float>(x.data()[i]);
    }
    xs32.push_back(std::move(m));
  }
  for (const Matrix& g : grads) {
    nn::MatrixF m(g.rows(), g.cols());
    for (size_t i = 0; i < g.size(); ++i) {
      m.data()[i] = static_cast<float>(g.data()[i]);
    }
    grads32.push_back(std::move(m));
  }
  nn::LSTMF fused32(1, r.hidden, rng);
  fused32.ForwardSequence(xs32);
  fused32.BackwardSequence(grads32);
  double t4 = NowSeconds();
  for (int rep = 0; rep < r.reps; ++rep) {
    for (int bi = 0; bi < r.batches; ++bi) {
      for (int p = 0; p < r.seq_passes; ++p) {
        const std::vector<nn::MatrixF>& hs = fused32.ForwardSequence(xs32);
        const std::vector<nn::MatrixF>& dxs = fused32.BackwardSequence(grads32);
        sink += static_cast<double>(hs.back().data()[0]) +
                static_cast<double>(dxs[0].data()[0]);
      }
    }
  }
  double t5 = NowSeconds();

  if (sink == 12345.6789) std::fprintf(stderr, "~");
  r.naive_ms = (t1 - t0) * 1e3 / r.reps;
  r.fused_ms = (t3 - t2) * 1e3 / r.reps;
  r.speedup = r.fused_ms > 0.0 ? r.naive_ms / r.fused_ms : 0.0;
  r.fused_f32_ms = (t5 - t4) * 1e3 / r.reps;
  r.speedup_f32 = r.fused_f32_ms > 0.0 ? r.naive_ms / r.fused_f32_ms : 0.0;
  return r;
}

void WriteJson(std::FILE* out, bool smoke,
               const std::vector<CaseResult>& cases, const EpochResult& ep) {
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"nn_kernels\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(out, "  \"threads\": 1,\n");
  WriteSimdProvenance(out);
  std::fprintf(out, "  \"kernels\": [\n");
  for (size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"m\": %zu, \"k\": %zu, \"n\": %zu, "
                 "\"reps\": %d, \"naive_ns\": %.1f, \"fused_ns\": %.1f, "
                 "\"speedup\": %.3f}%s\n",
                 c.name.c_str(), c.m, c.k, c.n, c.reps, c.naive_ns, c.fused_ns,
                 c.speedup, i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"wfgan_lstm_epoch\": {\"batch\": %zu, \"steps\": %zu, "
               "\"hidden\": %zu, \"batches\": %d, \"seq_passes\": %d, "
               "\"reps\": %d, \"naive_ms\": %.2f, \"fused_ms\": %.2f, "
               "\"speedup\": %.3f, \"fused_f32_ms\": %.2f, "
               "\"speedup_f32\": %.3f}\n",
               ep.batch, ep.steps, ep.hidden, ep.batches, ep.seq_passes,
               ep.reps, ep.naive_ms, ep.fused_ms, ep.speedup, ep.fused_f32_ms,
               ep.speedup_f32);
  std::fprintf(out, "}\n");
}

int Main(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: nn_kernels [--smoke] [--out FILE]\n");
      return 2;
    }
  }

  Rng rng(20230817);
  std::vector<CaseResult> cases;
  for (const KernelCase& kc : kKernelCases) {
    cases.push_back(RunKernelCase(kc, smoke, &rng));
    std::fprintf(stderr, "%-18s naive %10.0f ns  fused %10.0f ns  %5.2fx\n",
                 cases.back().name.c_str(), cases.back().naive_ns,
                 cases.back().fused_ns, cases.back().speedup);
  }
  EpochResult ep = RunWfganEpochCase(smoke, &rng);
  std::fprintf(stderr, "wfgan_lstm_epoch   naive %10.2f ms  fused %10.2f ms  %5.2fx\n",
               ep.naive_ms, ep.fused_ms, ep.speedup);
  std::fprintf(stderr, "wfgan_lstm_epoch   f32 fused %10.2f ms  %5.2fx\n",
               ep.fused_f32_ms, ep.speedup_f32);

  std::FILE* out = stdout;
  if (out_path != nullptr) {
    out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
  }
  WriteJson(out, smoke, cases, ep);
  if (out != stdout) std::fclose(out);
  return 0;
}

}  // namespace
}  // namespace dbaugur::bench

int main(int argc, char** argv) { return dbaugur::bench::Main(argc, argv); }

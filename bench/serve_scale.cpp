// Sharded serving scale benchmark: >= 100k clusters pushed through
// ShardedForecastService at shard counts {1, 4, 16, 64}, with
// machine-readable output.
//
// Each template carries a distinct 4-level step waveform (two bits of
// Mix64(id) per bin), so under z-normalized DTW with a tight radius nearly
// every template is its own singleton cluster — the full run therefore trains
// and serves >= 100k clusters, the paper's "diversified workloads" pushed to
// scale. Per shard-count configuration the bench measures:
//   1. ingest: single-producer Offer() throughput through the hash router
//      (aggregate events/s across all shards, plus drops).
//   2. reads under retrain: a reader sweeps every shard round-robin timing
//      snapshot()->ForecastCluster() reads while one scheduler cycle retrains
//      every shard; per-shard p50/p99 latency (strided-subsampled over the
//      whole cycle) and the count of reads that completed while the retrain
//      cycle was in flight. The run FAILS (exit 1) if any shard's reads
//      stall (zero reads during the in-flight cycle) — the shard read path
//      must never block on training — and, in full mode, if any leg's worst
//      p99 exceeds 2x the single-shard p99 measured by this same process
//      (a self-relative baseline; the committed JSON is provenance, not a
//      gate).
//   3. retrain lag: each shard's drain->train->publish duration; the maximum
//      over shards is the staleness a reader can see. More shards means less
//      history per retrain, so max lag must decrease monotonically from 1 to
//      16 shards (enforced in full mode, where durations dwarf noise).
//   4. worker scaling: at a fixed 16 shards the cycle is re-run with retrain
//      worker pools of 1, 2, and 4; in full mode (on >= 4 cores) the
//      workers=4 cycle wall time must be < 0.5x the workers=1 cycle.
//
// Output is a single JSON object (stdout, or --out FILE). `--smoke` shrinks
// the template count so CI can run it in seconds.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "common/hashing.h"
#include "serve/sharded_service.h"

namespace dbaugur::bench {
namespace {

constexpr int64_t kInterval = 600;
constexpr size_t kShardCounts[] = {1, 4, 16, 64};
/// Worker-scaling legs: fixed shard count, varying retrain worker counts.
/// 16 shards gives each of 4 workers four retrains per cycle — enough
/// parallel slack that the workers=4 < 0.5x workers=1 wall-time gate (full
/// mode) measures the pool, not scheduling remainder effects.
constexpr size_t kWorkerLegShards = 16;
constexpr size_t kWorkerCounts[] = {1, 2, 4};
/// Read-p99 gate: self-relative. The shard_count=1 leg measured in THIS
/// process is the baseline; every other leg's worst shard p99 must stay
/// within 2x of it. (The committed JSON's numbers are provenance of past
/// runs, not a gate — a constant budget derived from another machine's run
/// made the gate trip on hardware it never calibrated for.)
constexpr double kReadP99BudgetMultiple = 2.0;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ScaleParams {
  size_t templates = 0;
  int64_t bins_per_wave = 0;  ///< Two waves: warm-up train, measured cycle.
};

/// Template `id`'s count at bin `b`: two bits of Mix64(id) select one of four
/// levels, giving ~4^bins distinct step shapes. Adjacent levels sit ~0.9
/// z-units apart — any single-bin difference already exceeds the clustering
/// radius — and with four symbols, distinct patterns that are warp-equivalent
/// under the one-step DTW band are vanishingly rare (binary patterns are
/// not: entire run-length families collapse).
double CountAt(uint32_t id, int64_t b, int64_t total_bins) {
  uint64_t level = (Mix64(id) >> (2 * (b % total_bins))) & 3;
  return 10.0 + 30.0 * static_cast<double>(level);
}

/// Bounded-memory uniform subsampler: keeps at most `cap` samples spread
/// evenly over the whole stream by doubling the sampling stride (decimating
/// the retained samples) whenever the buffer fills. "First N" sampling is
/// wrong for this bench: the measured cycle's earliest reads carry a
/// cold-cache tail, and at high shard counts a small per-shard cap confines
/// the window to exactly that transient (observed at 64 shards: p99 162 ns
/// from the first ~13% of the cycle vs 77 ns over the whole cycle).
class StridedSampler {
 public:
  explicit StridedSampler(size_t cap) : cap_(cap) { samples_.reserve(cap); }
  void Add(double x) {
    if (n_++ % stride_ != 0) return;
    if (samples_.size() == cap_) {
      for (size_t j = 1; 2 * j < samples_.size(); ++j) {
        samples_[j] = samples_[2 * j];
      }
      samples_.resize((samples_.size() + 1) / 2);
      stride_ *= 2;
    }
    samples_.push_back(x);
  }
  std::vector<double>& samples() { return samples_; }

 private:
  std::vector<double> samples_;
  size_t cap_;
  uint64_t stride_ = 1;
  uint64_t n_ = 0;
};

struct ShardReadStats {
  uint64_t reads = 0;
  uint64_t reads_during_retrain = 0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double retrain_s = 0.0;   ///< This shard's drain->publish duration.
  size_t clusters = 0;      ///< Distinct cluster ids in the shard's snapshot.
};

struct ConfigResult {
  size_t shard_count = 0;
  size_t workers = 1;  ///< Retrain workers draining the measured cycle.
  size_t clusters_total = 0;
  uint64_t ingest_events = 0;
  uint64_t ingest_dropped = 0;
  double ingest_seconds = 0.0;
  double ingest_events_per_sec = 0.0;
  double cycle_seconds = 0.0;        ///< Wall time of the measured cycle.
  double max_retrain_lag_s = 0.0;    ///< Max per-shard retrain duration.
  double max_p99_ns = 0.0;           ///< Worst shard's read p99.
  std::vector<ShardReadStats> shards;
};

serve::ShardedServeOptions MakeOptions(const ScaleParams& p, size_t shards,
                                       size_t workers) {
  serve::ShardedServeOptions so;
  so.shard_count = shards;
  so.retrain_workers = workers;
  serve::ServeOptions& o = so.shard;
  // Tight radius + tiny band: identical patterns merge (distance 0), distinct
  // bit patterns stay apart, so cluster count tracks template count.
  o.pipeline.clustering.radius = 0.5;
  o.pipeline.clustering.min_size = 2;
  o.pipeline.clustering.dtw.window = 1;
  o.pipeline.top_k = 4;
  o.pipeline.forecaster.window = 6;
  o.pipeline.forecaster.horizon = 1;
  o.pipeline.forecaster.epochs = 2;
  o.pipeline.forecaster.batch_size = 16;
  o.bin_interval_seconds = kInterval;
  o.max_templates = p.templates;
  // One wave of events sits queued per shard before each cycle drains it.
  o.queue_capacity =
      (p.templates * static_cast<size_t>(p.bins_per_wave)) / shards * 2 + 4096;
  return so;
}

/// Offers one wave of bins for every template; returns elapsed seconds.
double OfferWave(serve::ShardedForecastService* svc, const ScaleParams& p,
                 int64_t first_bin, uint64_t* dropped) {
  int64_t total_bins = 2 * p.bins_per_wave;
  double t0 = NowSeconds();
  for (int64_t b = first_bin; b < first_bin + p.bins_per_wave; ++b) {
    for (uint32_t id = 0; id < p.templates; ++id) {
      serve::TraceEvent e;
      e.template_id = id;
      e.timestamp = b * kInterval + 30;
      e.count = CountAt(id, b, total_bins);
      if (!svc->Offer(e)) ++*dropped;
    }
  }
  return NowSeconds() - t0;
}

ConfigResult RunConfig(const ScaleParams& p, size_t shard_count,
                       size_t workers = 1) {
  ConfigResult r;
  r.shard_count = shard_count;
  r.workers = workers;
  serve::ShardedForecastService svc(MakeOptions(p, shard_count, workers));

  // Wave 1 + warm-up cycle: every shard publishes a trained snapshot so the
  // measured reads exercise real forecasts, and the measured cycle below is
  // a steady-state retrain, not a cold start.
  r.ingest_seconds += OfferWave(&svc, p, 0, &r.ingest_dropped);
  (void)svc.RetrainCycle();

  // Wave 2: every shard pending again (the scheduler is work-conserving).
  r.ingest_seconds += OfferWave(&svc, p, p.bins_per_wave, &r.ingest_dropped);
  for (size_t s = 0; s < shard_count; ++s) {
    r.ingest_events += svc.shard(s).events_accepted();
  }
  r.ingest_events_per_sec =
      r.ingest_seconds > 0.0
          ? static_cast<double>(r.ingest_events) / r.ingest_seconds
          : 0.0;

  // Measured cycle: reader sweeps all shards round-robin while the scheduler
  // retrains every one of them. Latency samples are strided-subsampled per
  // shard over the whole cycle under a fixed memory cap (every read still
  // counts toward reads/reads_during_retrain).
  const size_t sample_cap =
      std::max<size_t>(8192, (size_t{1} << 22) / shard_count);
  std::vector<StridedSampler> lat(shard_count, StridedSampler(sample_cap));
  r.shards.assign(shard_count, ShardReadStats{});

  std::atomic<bool> retrain_active{false};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> sweeps{0};
  std::thread reader([&] {
    double sink = 0.0;
    for (uint64_t i = 0; !done.load(std::memory_order_acquire); ++i) {
      size_t s = i % shard_count;
      bool in_retrain = retrain_active.load(std::memory_order_acquire);
      double t0 = NowSeconds();
      auto snap = svc.snapshot(s);
      auto f = snap->ForecastCluster(0);
      double t1 = NowSeconds();
      if (f.ok()) sink += *f;
      ++r.shards[s].reads;
      if (in_retrain) ++r.shards[s].reads_during_retrain;
      lat[s].Add((t1 - t0) * 1e9);
      if (s == shard_count - 1) sweeps.fetch_add(1, std::memory_order_release);
    }
    if (sink == 12345.6789) std::fprintf(stderr, "~");
  });
  // Don't start the cycle until the reader has demonstrably swept every
  // shard once — guarantees it is live while the retrain is in flight.
  while (sweeps.load(std::memory_order_acquire) == 0) std::this_thread::yield();

  double c0 = NowSeconds();
  retrain_active.store(true, std::memory_order_release);
  std::vector<size_t> order = svc.RetrainCycle();
  retrain_active.store(false, std::memory_order_release);
  r.cycle_seconds = NowSeconds() - c0;
  done.store(true, std::memory_order_release);
  reader.join();
  if (order.size() != shard_count) {
    std::fprintf(stderr,
                 "serve_scale: cycle scheduled %zu/%zu shards (every shard "
                 "had pending events)\n",
                 order.size(), shard_count);
  }

  for (size_t s = 0; s < shard_count; ++s) {
    ShardReadStats& st = r.shards[s];
    std::vector<double>& samples = lat[s].samples();
    std::sort(samples.begin(), samples.end());
    if (!samples.empty()) {
      st.p50_ns = samples[samples.size() / 2];
      st.p99_ns = samples[samples.size() * 99 / 100];
    }
    st.retrain_s = svc.shard(s).last_retrain_seconds();
    auto snap = svc.snapshot(s);
    std::unordered_set<int> ids(snap->trace_cluster.begin(),
                                snap->trace_cluster.end());
    st.clusters = ids.size();
    r.clusters_total += st.clusters;
    r.max_retrain_lag_s = std::max(r.max_retrain_lag_s, st.retrain_s);
    r.max_p99_ns = std::max(r.max_p99_ns, st.p99_ns);
  }
  return r;
}

void WriteConfigs(std::FILE* out, const char* key,
                  const std::vector<ConfigResult>& configs, bool trailing) {
  std::fprintf(out, "  \"%s\": [\n", key);
  for (size_t c = 0; c < configs.size(); ++c) {
    const ConfigResult& r = configs[c];
    std::fprintf(out, "    {\n");
    std::fprintf(out, "      \"shard_count\": %zu,\n", r.shard_count);
    std::fprintf(out, "      \"workers\": %zu,\n", r.workers);
    std::fprintf(out, "      \"clusters_total\": %zu,\n", r.clusters_total);
    std::fprintf(out,
                 "      \"ingest\": {\"events\": %llu, \"dropped\": %llu, "
                 "\"seconds\": %.3f, \"events_per_sec\": %.0f},\n",
                 static_cast<unsigned long long>(r.ingest_events),
                 static_cast<unsigned long long>(r.ingest_dropped),
                 r.ingest_seconds, r.ingest_events_per_sec);
    std::fprintf(out,
                 "      \"retrain\": {\"cycle_seconds\": %.3f, "
                 "\"max_retrain_lag_s\": %.4f},\n",
                 r.cycle_seconds, r.max_retrain_lag_s);
    std::fprintf(out, "      \"max_p99_ns\": %.0f,\n", r.max_p99_ns);
    std::fprintf(out, "      \"shards\": [\n");
    for (size_t s = 0; s < r.shards.size(); ++s) {
      const ShardReadStats& st = r.shards[s];
      std::fprintf(out,
                   "        {\"shard\": %zu, \"clusters\": %zu, "
                   "\"reads\": %llu, \"reads_during_retrain\": %llu, "
                   "\"p50_ns\": %.0f, \"p99_ns\": %.0f, "
                   "\"retrain_s\": %.4f}%s\n",
                   s, st.clusters,
                   static_cast<unsigned long long>(st.reads),
                   static_cast<unsigned long long>(st.reads_during_retrain),
                   st.p50_ns, st.p99_ns, st.retrain_s,
                   s + 1 < r.shards.size() ? "," : "");
    }
    std::fprintf(out, "      ]\n");
    std::fprintf(out, "    }%s\n", c + 1 < configs.size() ? "," : "");
  }
  std::fprintf(out, "  ]%s\n", trailing ? "," : "");
}

void WriteJson(std::FILE* out, bool smoke, const ScaleParams& p,
               double read_p99_baseline_ns,
               const std::vector<ConfigResult>& configs,
               const std::vector<ConfigResult>& worker_configs) {
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"serve_scale\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  WriteSimdProvenance(out);
  std::fprintf(out, "  \"templates\": %zu,\n", p.templates);
  std::fprintf(out, "  \"bins\": %lld,\n",
               static_cast<long long>(2 * p.bins_per_wave));
  // Self-relative gate provenance: the single-shard p99 measured in this
  // process, and the multiple every other leg is held to.
  std::fprintf(out, "  \"read_p99_baseline_ns\": %.0f,\n",
               read_p99_baseline_ns);
  std::fprintf(out, "  \"read_p99_budget_multiple\": %.1f,\n",
               kReadP99BudgetMultiple);
  WriteConfigs(out, "configs", configs, /*trailing=*/!worker_configs.empty());
  if (!worker_configs.empty()) {
    WriteConfigs(out, "worker_configs", worker_configs, /*trailing=*/false);
  }
  std::fprintf(out, "}\n");
}

int Main(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = nullptr;
  size_t only_shards = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      // Run a single shard-count configuration (iterating on one config
      // without paying for the whole sweep). Cross-config gates are skipped.
      only_shards = static_cast<size_t>(std::strtoull(argv[i] + 9, nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: serve_scale [--smoke] [--out FILE] [--shards=N]\n");
      return 2;
    }
  }

  ScaleParams p;
  p.templates = smoke ? 4096 : 104'000;
  p.bins_per_wave = smoke ? 8 : 10;

  std::vector<ConfigResult> configs;
  std::vector<ConfigResult> worker_configs;
  auto run_leg = [&](size_t shard_count, size_t workers,
                     std::vector<ConfigResult>* into) -> bool {
    ConfigResult r = RunConfig(p, shard_count, workers);
    std::fprintf(stderr,
                 "shards=%-3zu workers=%zu clusters=%-7zu ingest %11.0f ev/s  "
                 "cycle %8.4f s  max_lag %8.4f s  max_p99 %6.0f ns\n",
                 r.shard_count, r.workers, r.clusters_total,
                 r.ingest_events_per_sec, r.cycle_seconds, r.max_retrain_lag_s,
                 r.max_p99_ns);
    for (const ShardReadStats& st : r.shards) {
      if (st.reads_during_retrain == 0) {
        std::fprintf(stderr,
                     "serve_scale: a shard completed zero reads during the "
                     "in-flight retrain cycle at shard_count=%zu workers=%zu "
                     "— the shard read path blocked on training\n",
                     shard_count, workers);
        return false;
      }
    }
    into->push_back(std::move(r));
    return true;
  };

  for (size_t shard_count : kShardCounts) {
    if (only_shards != 0 && shard_count != only_shards) continue;
    if (!run_leg(shard_count, /*workers=*/1, &configs)) return 1;
  }
  // Worker-scaling legs: same template load at a fixed shard count, varying
  // only the retrain worker pool. Skipped when iterating on one shard count.
  if (only_shards == 0) {
    for (size_t workers : kWorkerCounts) {
      if (!run_leg(kWorkerLegShards, workers, &worker_configs)) return 1;
    }
  }

  // Self-relative read-latency baseline: this process's shard_count=1 leg.
  double read_p99_baseline_ns = configs.empty() ? 0.0 : configs[0].max_p99_ns;

  if (!smoke && only_shards == 0) {
    // Headline claims of the committed full run, enforced.
    if (configs[0].clusters_total < 100'000) {
      std::fprintf(stderr,
                   "serve_scale: full run produced %zu clusters (< 100000)\n",
                   configs[0].clusters_total);
      return 1;
    }
    // Max retrain lag must fall monotonically 1 -> 4 -> 16 shards: each shard
    // retrains over ~1/S of the history, and the pairwise clustering sweep is
    // quadratic in it. (64 shards sit past the knee where per-shard fixed
    // costs dominate, so the criterion stops at 16.)
    for (size_t c = 0; c + 1 < configs.size(); ++c) {
      if (configs[c + 1].shard_count > 16) break;
      if (configs[c + 1].max_retrain_lag_s >= configs[c].max_retrain_lag_s) {
        std::fprintf(stderr,
                     "serve_scale: max retrain lag did not decrease from "
                     "%zu to %zu shards (%.4f s -> %.4f s)\n",
                     configs[c].shard_count, configs[c + 1].shard_count,
                     configs[c].max_retrain_lag_s,
                     configs[c + 1].max_retrain_lag_s);
        return 1;
      }
    }
    // Sharding (and concurrent retraining) must not tax the read path: every
    // leg's worst shard p99 stays within 2x the single-shard p99 measured by
    // THIS process — a same-machine, same-build baseline, so the gate tracks
    // the hardware it runs on instead of a committed constant.
    const double budget_ns = kReadP99BudgetMultiple * read_p99_baseline_ns;
    auto check_p99 = [&](const std::vector<ConfigResult>& legs) -> bool {
      for (const ConfigResult& r : legs) {
        if (r.max_p99_ns > budget_ns) {
          std::fprintf(stderr,
                       "serve_scale: worst shard read p99 %.0f ns at "
                       "shard_count=%zu workers=%zu exceeds %.1fx the "
                       "single-shard baseline (%.0f ns budget)\n",
                       r.max_p99_ns, r.shard_count, r.workers,
                       kReadP99BudgetMultiple, budget_ns);
          return false;
        }
      }
      return true;
    };
    if (!check_p99(configs) || !check_p99(worker_configs)) return 1;
    // Concurrent drain speedup: at 16 shards x 100k-scale clusters, 4 workers
    // must finish the retrain cycle in under half the 1-worker wall time.
    // Gated on the machine actually having >= 4 cores to parallelize over.
    if (std::thread::hardware_concurrency() >= 4) {
      const ConfigResult* w1 = nullptr;
      const ConfigResult* w4 = nullptr;
      for (const ConfigResult& r : worker_configs) {
        if (r.workers == 1) w1 = &r;
        if (r.workers == 4) w4 = &r;
      }
      if (w1 != nullptr && w4 != nullptr &&
          w4->cycle_seconds >= 0.5 * w1->cycle_seconds) {
        std::fprintf(stderr,
                     "serve_scale: workers=4 retrain cycle %.4f s is not "
                     "< 0.5x the workers=1 cycle %.4f s at %zu shards\n",
                     w4->cycle_seconds, w1->cycle_seconds, kWorkerLegShards);
        return 1;
      }
    }
  }

  std::FILE* out = stdout;
  if (out_path != nullptr) {
    out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
  }
  WriteJson(out, smoke, p, read_p99_baseline_ns, configs, worker_configs);
  if (out != stdout) std::fclose(out);
  return 0;
}

}  // namespace
}  // namespace dbaugur::bench

int main(int argc, char** argv) { return dbaugur::bench::Main(argc, argv); }

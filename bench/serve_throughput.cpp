// Online serving benchmark: ingest throughput and read latency under an
// active retrain, with machine-readable output.
//
// Two measurements:
//   1. ingest: N producer threads Offer() synthetic events into a
//      TraceIngestor while one consumer drains, reporting sustained
//      events/sec and the drop count under the bounded queue.
//   2. reads_under_retrain: a reader hammers snapshot()->ForecastCluster()
//      while a trainer thread runs back-to-back RetrainOnce() cycles. Every
//      read is timed; p50/p99 come from the full distribution and the count
//      of reads completed *while a retrain was in flight* demonstrates that
//      the snapshot read path never blocks on training.
//   3. fault_hook: per-iteration cost of a DBAUGUR_FAULT_POINT with no
//      schedule installed, against an identical loop without the hook. The
//      run FAILS (exit 1) if the disabled hook costs more than
//      kMaxHookOverheadNs per call — the hooks on the ingest/retrain/save
//      paths must stay one relaxed load + a predicted branch, never a lock.
//
// Output is a single JSON object (stdout, or --out FILE). `--smoke` shrinks
// the workload so CI can run it in seconds.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/fault_injection.h"
#include "serve/ingestor.h"
#include "serve/service.h"

namespace dbaugur::bench {
namespace {

constexpr int64_t kInterval = 600;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct IngestResult {
  int producers = 0;
  uint64_t events = 0;
  uint64_t dropped = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
};

IngestResult RunIngestCase(bool smoke) {
  IngestResult r;
  r.producers = 2;
  const uint64_t per_producer = smoke ? 50'000 : 2'000'000;
  serve::IngestorOptions qopts;
  qopts.capacity = 65536;
  qopts.max_templates = 64;
  serve::TraceIngestor queue(qopts);

  std::atomic<bool> done{false};
  std::thread consumer([&queue, &done] {
    std::vector<serve::TraceEvent> batch;
    while (!done.load(std::memory_order_acquire)) {
      batch.clear();
      if (queue.Drain(&batch) == 0) std::this_thread::yield();
    }
    queue.Drain(&batch);  // leftovers
  });

  double t0 = NowSeconds();
  std::vector<std::thread> producers;
  for (int p = 0; p < r.producers; ++p) {
    producers.emplace_back([&queue, per_producer, p] {
      for (uint64_t i = 0; i < per_producer; ++i) {
        serve::TraceEvent e;
        e.template_id = static_cast<uint32_t>(i % 8);
        e.timestamp = static_cast<int64_t>(i / 8) * kInterval + p;
        e.count = 1.0;
        queue.Offer(e);
      }
    });
  }
  for (auto& t : producers) t.join();
  double t1 = NowSeconds();
  done.store(true, std::memory_order_release);
  consumer.join();

  r.events = queue.accepted();
  r.dropped = queue.dropped();
  r.seconds = t1 - t0;
  r.events_per_sec = r.seconds > 0.0
                         ? static_cast<double>(r.events) / r.seconds
                         : 0.0;
  return r;
}

struct ReadResult {
  uint64_t reads = 0;
  uint64_t reads_during_retrain = 0;
  int retrains = 0;
  double retrain_mean_ms = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
};

ReadResult RunReadsUnderRetrain(bool smoke) {
  ReadResult r;
  serve::ServeOptions opts;
  opts.pipeline.clustering.radius = 6.0;
  opts.pipeline.clustering.min_size = 2;
  opts.pipeline.clustering.dtw.window = 4;
  opts.pipeline.top_k = 3;
  opts.pipeline.forecaster.window = smoke ? 6 : 24;
  opts.pipeline.forecaster.horizon = 1;
  opts.pipeline.forecaster.epochs = smoke ? 2 : 8;
  opts.pipeline.forecaster.batch_size = 16;
  opts.bin_interval_seconds = kInterval;
  serve::ForecastService svc(opts);

  // Seed enough history to train, then publish generation 1 synchronously.
  const int64_t bins = smoke ? 16 : 48;
  for (int64_t b = 0; b < bins; ++b) {
    for (uint32_t t = 0; t < 3; ++t) {
      double phase = static_cast<double>(b) * 0.4 + t;
      svc.Offer({t, b * kInterval, 50.0 + 20.0 * std::sin(phase)});
    }
  }
  if (!svc.RetrainOnce().ok() || svc.generation() == 0) {
    std::fprintf(stderr, "serve_throughput: warm-up retrain failed\n");
    return r;
  }

  const int retrain_cycles = smoke ? 2 : 6;
  std::atomic<bool> retrain_active{false};
  std::atomic<bool> done{false};
  double retrain_total_s = 0.0;
  std::thread trainer([&] {
    for (int i = 0; i < retrain_cycles; ++i) {
      double t0 = NowSeconds();
      retrain_active.store(true, std::memory_order_release);
      Status st = svc.RetrainOnce();
      retrain_active.store(false, std::memory_order_release);
      retrain_total_s += NowSeconds() - t0;
      if (!st.ok()) break;
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<double> latencies_ns;
  latencies_ns.reserve(1 << 20);
  double sink = 0.0;
  while (!done.load(std::memory_order_acquire)) {
    bool in_retrain = retrain_active.load(std::memory_order_acquire);
    double t0 = NowSeconds();
    auto snap = svc.snapshot();
    auto f = snap->ForecastCluster(0);
    double t1 = NowSeconds();
    if (f.ok()) sink += *f;
    latencies_ns.push_back((t1 - t0) * 1e9);
    if (in_retrain) ++r.reads_during_retrain;
  }
  trainer.join();
  if (sink == 12345.6789) std::fprintf(stderr, "~");

  r.reads = latencies_ns.size();
  r.retrains = retrain_cycles;
  r.retrain_mean_ms = retrain_total_s * 1e3 / retrain_cycles;
  std::sort(latencies_ns.begin(), latencies_ns.end());
  if (!latencies_ns.empty()) {
    r.p50_ns = latencies_ns[latencies_ns.size() / 2];
    r.p99_ns = latencies_ns[latencies_ns.size() * 99 / 100];
  }
  return r;
}

// Inactive fault hooks must be unmeasurable against real work. An xorshift
// dependency chain (~a few cycles per step) stands in for the cheapest hot
// path a hook sits on; anything lock-shaped sneaking into DBAUGUR_FAULT_POINT
// shows up as tens of nanoseconds against this baseline.
constexpr double kMaxHookOverheadNs = 10.0;

struct HookResult {
  uint64_t iters = 0;
  double baseline_ns = 0.0;  // ns per iteration, plain loop
  double hook_ns = 0.0;      // ns per iteration, loop + disabled fault point
  double overhead_ns = 0.0;  // max(0, hook - baseline)
};

__attribute__((noinline)) uint64_t SpinBaseline(uint64_t iters) {
  uint64_t x = 0x9E3779B97F4A7C15ULL;
  for (uint64_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

__attribute__((noinline)) uint64_t SpinWithHook(uint64_t iters) {
  uint64_t x = 0x9E3779B97F4A7C15ULL;
  for (uint64_t i = 0; i < iters; ++i) {
    if (DBAUGUR_FAULT_POINT("bench.serve.hook")) ++x;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

HookResult RunFaultHookCase(bool smoke) {
  HookResult r;
  r.iters = smoke ? 8'000'000 : 64'000'000;
  // Measure the production configuration: hooks compiled in, nothing armed.
  fault::Reset();

  uint64_t sink = 0;
  double best_base = 1e300, best_hook = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    double t0 = NowSeconds();
    sink ^= SpinBaseline(r.iters);
    double t1 = NowSeconds();
    sink ^= SpinWithHook(r.iters);
    double t2 = NowSeconds();
    best_base = std::min(best_base, t1 - t0);
    best_hook = std::min(best_hook, t2 - t1);
  }
  if (sink == 12345) std::fprintf(stderr, "~");

  r.baseline_ns = best_base * 1e9 / static_cast<double>(r.iters);
  r.hook_ns = best_hook * 1e9 / static_cast<double>(r.iters);
  r.overhead_ns = std::max(0.0, r.hook_ns - r.baseline_ns);
  return r;
}

void WriteJson(std::FILE* out, bool smoke, const IngestResult& ing,
               const ReadResult& rd, const HookResult& hk) {
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"serve_throughput\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  WriteSimdProvenance(out);
  std::fprintf(out,
               "  \"ingest\": {\"producers\": %d, \"events\": %llu, "
               "\"dropped\": %llu, \"seconds\": %.3f, "
               "\"events_per_sec\": %.0f},\n",
               ing.producers, static_cast<unsigned long long>(ing.events),
               static_cast<unsigned long long>(ing.dropped), ing.seconds,
               ing.events_per_sec);
  std::fprintf(out,
               "  \"reads_under_retrain\": {\"reads\": %llu, "
               "\"reads_during_retrain\": %llu, \"retrains\": %d, "
               "\"retrain_mean_ms\": %.2f, \"p50_ns\": %.0f, "
               "\"p99_ns\": %.0f},\n",
               static_cast<unsigned long long>(rd.reads),
               static_cast<unsigned long long>(rd.reads_during_retrain),
               rd.retrains, rd.retrain_mean_ms, rd.p50_ns, rd.p99_ns);
  std::fprintf(out,
               "  \"fault_hook\": {\"iters\": %llu, "
               "\"baseline_ns_per_op\": %.3f, \"hook_ns_per_op\": %.3f, "
               "\"overhead_ns_per_op\": %.3f}\n",
               static_cast<unsigned long long>(hk.iters), hk.baseline_ns,
               hk.hook_ns, hk.overhead_ns);
  std::fprintf(out, "}\n");
}

int Main(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: serve_throughput [--smoke] [--out FILE]\n");
      return 2;
    }
  }

  IngestResult ing = RunIngestCase(smoke);
  std::fprintf(stderr, "ingest             %12.0f events/s  (%llu dropped)\n",
               ing.events_per_sec,
               static_cast<unsigned long long>(ing.dropped));
  ReadResult rd = RunReadsUnderRetrain(smoke);
  std::fprintf(stderr,
               "reads_under_retrain p50 %8.0f ns  p99 %8.0f ns  "
               "%llu reads during %d retrains\n",
               rd.p50_ns, rd.p99_ns,
               static_cast<unsigned long long>(rd.reads_during_retrain),
               rd.retrains);
  if (rd.reads_during_retrain == 0) {
    std::fprintf(stderr,
                 "serve_throughput: no reads completed during a retrain — "
                 "the snapshot read path blocked on training\n");
    return 1;
  }
  HookResult hk = RunFaultHookCase(smoke);
  std::fprintf(stderr,
               "fault_hook          baseline %5.2f ns/op  with hook %5.2f "
               "ns/op  overhead %5.2f ns/op\n",
               hk.baseline_ns, hk.hook_ns, hk.overhead_ns);
  if (hk.overhead_ns > kMaxHookOverheadNs) {
    std::fprintf(stderr,
                 "serve_throughput: disabled fault hook costs %.2f ns/op "
                 "(budget %.1f) — the hot-path hook grew a lock or lookup\n",
                 hk.overhead_ns, kMaxHookOverheadNs);
    return 1;
  }

  std::FILE* out = stdout;
  if (out_path != nullptr) {
    out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
  }
  WriteJson(out, smoke, ing, rd, hk);
  if (out != stdout) std::fclose(out);
  return 0;
}

}  // namespace
}  // namespace dbaugur::bench

int main(int argc, char** argv) { return dbaugur::bench::Main(argc, argv); }

// Table II — Computation and Storage Efficiency: per-epoch training CPU
// time on both datasets, single-prediction inference latency, and serialized
// model storage for LR, MLP, LSTM, TCN, and WFGAN. (As in the paper, ARIMA
// and the ensembles are omitted — ARIMA is fit-once, ensembles derive from
// the listed models.)
//
// Expected shape: LR < MLP << LSTM < TCN <= WFGAN on training time;
// inference in the low milliseconds everywhere; storage tens of KB with TCN
// largest among the compact models.

#include <chrono>
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "common/table_printer.h"
#include "models/linear_regression.h"
#include "models/lstm_forecaster.h"
#include "models/mlp.h"
#include "models/tcn.h"
#include "models/wfgan.h"

using namespace dbaugur;
using namespace dbaugur::bench;

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct Row {
  std::string name;
  double epoch_bustracker = 0.0;
  double epoch_alicluster = 0.0;
  double inference_ms = 0.0;
  int64_t storage = 0;
};

// Times one training epoch after a warm-up epoch (so lazily-initialized
// optimizer state doesn't pollute the measurement).
template <typename Model>
double TimeEpoch(Model& model, const Dataset& ds) {
  CheckOk(model.PrepareTraining(ds.train()), "prepare");
  (void)model.TrainEpoch();  // warm-up
  auto t0 = Clock::now();
  (void)model.TrainEpoch();
  return Seconds(t0, Clock::now());
}

double TimeInference(const models::Forecaster& model, const Dataset& ds) {
  std::vector<double> window(ds.values.end() - 30, ds.values.end());
  // Warm-up.
  (void)model.Predict(window);
  const int kReps = 200;
  auto t0 = Clock::now();
  for (int i = 0; i < kReps; ++i) (void)model.Predict(window);
  return Seconds(t0, Clock::now()) / kReps * 1000.0;
}

}  // namespace

int main() {
  Dataset bus = MakeBusTrackerDataset();
  Dataset ali = MakeAlibabaDataset();
  models::ForecasterOptions opts = BenchOptions(1, /*epochs=*/1);
  std::vector<Row> rows;

  {
    // LR has no epochs; report full fit time (closest analogue).
    Row r{"LR"};
    models::LinearRegressionForecaster lr_bus(opts), lr_ali(opts);
    auto t0 = Clock::now();
    CheckOk(lr_bus.Fit(bus.train()), "LR fit");
    r.epoch_bustracker = Seconds(t0, Clock::now());
    t0 = Clock::now();
    CheckOk(lr_ali.Fit(ali.train()), "LR fit");
    r.epoch_alicluster = Seconds(t0, Clock::now());
    r.inference_ms = TimeInference(lr_bus, bus);
    r.storage = lr_bus.StorageBytes();
    rows.push_back(r);
  }
  {
    Row r{"MLP"};
    models::MlpForecaster bus_m(opts), ali_m(opts);
    r.epoch_bustracker = TimeEpoch(bus_m, bus);
    r.epoch_alicluster = TimeEpoch(ali_m, ali);
    CheckOk(bus_m.Fit(bus.train()), "MLP fit");
    r.inference_ms = TimeInference(bus_m, bus);
    r.storage = bus_m.StorageBytes();
    rows.push_back(r);
  }
  {
    Row r{"LSTM"};
    models::LstmForecaster bus_m(opts), ali_m(opts);
    r.epoch_bustracker = TimeEpoch(bus_m, bus);
    r.epoch_alicluster = TimeEpoch(ali_m, ali);
    CheckOk(bus_m.Fit(bus.train()), "LSTM fit");
    r.inference_ms = TimeInference(bus_m, bus);
    r.storage = bus_m.StorageBytes();
    rows.push_back(r);
  }
  {
    Row r{"TCN"};
    models::TcnForecaster bus_m(opts), ali_m(opts);
    r.epoch_bustracker = TimeEpoch(bus_m, bus);
    r.epoch_alicluster = TimeEpoch(ali_m, ali);
    CheckOk(bus_m.Fit(bus.train()), "TCN fit");
    r.inference_ms = TimeInference(bus_m, bus);
    r.storage = bus_m.StorageBytes();
    rows.push_back(r);
  }
  {
    Row r{"WFGAN"};
    models::WfganForecaster bus_m(opts), ali_m(opts);
    CheckOk(bus_m.PrepareTraining(bus.train()), "prepare");
    (void)bus_m.TrainEpoch();
    auto t0 = Clock::now();
    (void)bus_m.TrainEpoch();
    r.epoch_bustracker = Seconds(t0, Clock::now());
    CheckOk(ali_m.PrepareTraining(ali.train()), "prepare");
    (void)ali_m.TrainEpoch();
    t0 = Clock::now();
    (void)ali_m.TrainEpoch();
    r.epoch_alicluster = Seconds(t0, Clock::now());
    CheckOk(bus_m.Fit(bus.train()), "WFGAN fit");
    r.inference_ms = TimeInference(bus_m, bus);
    r.storage = bus_m.StorageBytes();
    rows.push_back(r);
  }

  std::printf("=== Table II: Computation and Storage Efficiency ===\n");
  TablePrinter table({"model", "epoch CPU (BusTrac)", "epoch CPU (AliClus)",
                      "inference", "storage"});
  for (const Row& r : rows) {
    table.AddRow({r.name, TablePrinter::Fmt(r.epoch_bustracker, 3) + "s",
                  TablePrinter::Fmt(r.epoch_alicluster, 3) + "s",
                  TablePrinter::Fmt(r.inference_ms, 3) + "ms",
                  TablePrinter::Fmt(static_cast<double>(r.storage) / 1024.0, 1) +
                      "KB"});
  }
  table.Print();
  std::printf(
      "\nLR row reports the full closed-form fit (it has no epochs). WFGAN\n"
      "storage covers generator + discriminator.\n");
  return 0;
}

// Table II — Computation and Storage Efficiency: per-epoch training CPU
// time on both datasets, single-prediction inference latency, and serialized
// model storage for LR, MLP, LSTM, TCN, and WFGAN. (As in the paper, ARIMA
// and the ensembles are omitted — ARIMA is fit-once, ensembles derive from
// the listed models.)
//
// Expected shape: LR < MLP << LSTM < TCN <= WFGAN on training time;
// inference in the low milliseconds everywhere; storage tens of KB with TCN
// largest among the compact models.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "cluster/descender.h"
#include "common/table_printer.h"
#include "core/dbaugur.h"
#include "models/linear_regression.h"
#include "models/lstm_forecaster.h"
#include "models/mlp.h"
#include "models/tcn.h"
#include "models/wfgan.h"

using namespace dbaugur;
using namespace dbaugur::bench;

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct Row {
  std::string name;
  double epoch_bustracker = 0.0;
  double epoch_alicluster = 0.0;
  double inference_ms = 0.0;
  int64_t storage = 0;
};

// Times one training epoch after a warm-up epoch (so lazily-initialized
// optimizer state doesn't pollute the measurement).
template <typename Model>
double TimeEpoch(Model& model, const Dataset& ds) {
  CheckOk(model.PrepareTraining(ds.train()), "prepare");
  (void)model.TrainEpoch();  // warm-up
  auto t0 = Clock::now();
  (void)model.TrainEpoch();
  return Seconds(t0, Clock::now());
}

double TimeInference(const models::Forecaster& model, const Dataset& ds) {
  std::vector<double> window(ds.values.end() - 30, ds.values.end());
  // Warm-up.
  (void)model.Predict(window);
  const int kReps = 200;
  auto t0 = Clock::now();
  for (int i = 0; i < kReps; ++i) (void)model.Predict(window);
  return Seconds(t0, Clock::now()) / kReps * 1000.0;
}

std::vector<ts::Series> MakeWarpedTraces(size_t members) {
  std::vector<ts::Series> traces;
  for (int fam = 0; fam < 4; ++fam) {
    workloads::WarpedFamilyOptions wopts;
    wopts.members = members;
    wopts.max_shift = 2.0;
    wopts.phase = fam * 2.0 * M_PI / 4.0;
    wopts.seed = 400 + static_cast<uint64_t>(fam);
    for (auto& s : workloads::GenerateWarpedFamily(wopts)) {
      traces.push_back(std::move(s));
    }
  }
  return traces;
}

// Clustering-stage efficiency: the core::DBAugurSystem batch ingest (one
// AddTraces per Train) against a sequential AddTrace loop over the same
// seeded traces, with the pruning telemetry now threaded up from Descender.
void ClusteringEfficiency() {
  std::vector<ts::Series> traces = MakeWarpedTraces(/*members=*/10);

  cluster::DescenderOptions copts;
  copts.radius = 3.0;
  copts.min_size = 3;
  copts.dtw.window = 4;

  // Sequential baseline straight against Descender.
  cluster::DescenderOptions seq_opts = copts;
  seq_opts.threads = 1;
  cluster::Descender seq(seq_opts);
  auto t0 = Clock::now();
  for (const auto& s : traces) CheckOk(seq.AddTrace(s).status(), "AddTrace");
  double seq_s = Seconds(t0, Clock::now());

  // Batch path through the full system (Train = one AddTraces call).
  core::DBAugurOptions sys_opts;
  sys_opts.clustering = copts;
  sys_opts.top_k = 4;
  sys_opts.forecaster = BenchOptions(1, /*epochs=*/1);
  core::DBAugurSystem sys(sys_opts);
  for (const auto& s : traces) sys.AddResourceTrace(s);
  t0 = Clock::now();
  CheckOk(sys.Train(), "Train");
  double train_s = Seconds(t0, Clock::now());

  std::printf("\n=== Clustering ingest efficiency (%zu traces) ===\n",
              traces.size());
  TablePrinter table({"path", "wall", "full DTW", "LB_Kim rej", "LB_Keogh rej"});
  const dtw::PruningStats seq_st = seq.pruning_stats();
  const dtw::PruningStats sys_st = sys.clustering_pruning_stats();
  table.AddRow({"sequential AddTrace", TablePrinter::Fmt(seq_s, 3) + "s",
                std::to_string(seq_st.full_dtw),
                std::to_string(seq_st.kim_rejections),
                std::to_string(seq_st.keogh_rejections)});
  table.AddRow({"DBAugurSystem::Train (batch)",
                TablePrinter::Fmt(train_s, 3) + "s",
                std::to_string(sys_st.full_dtw),
                std::to_string(sys_st.kim_rejections),
                std::to_string(sys_st.keogh_rejections)});
  table.Print();
  std::printf(
      "(Train's wall-clock also covers model fitting; the full-DTW column is\n"
      "the clustering-only comparison — batch must be strictly lower.)\n");
}

// DTW-cascade SIMD dispatch: the identical clustering workload under the
// forced-scalar tier vs the host's best tier. The vectorized band DTW and
// envelope are bit-identical to the scalar DP (and LB_Keogh is admissible to
// a few ULPs), so the cluster labels must not move; the wall-clock ratio is
// the cascade's measured SIMD speedup.
void DtwSimdEfficiency() {
  std::vector<ts::Series> traces = MakeWarpedTraces(/*members=*/16);

  cluster::DescenderOptions copts;
  copts.radius = 3.0;
  copts.min_size = 3;
  copts.dtw.window = 4;
  copts.threads = 1;

  auto run = [&](std::vector<int>* labels) {
    cluster::Descender d(copts);
    auto t0 = Clock::now();
    for (const auto& s : traces) CheckOk(d.AddTrace(s).status(), "AddTrace");
    const double wall = Seconds(t0, Clock::now());
    labels->clear();
    for (size_t i = 0; i < d.trace_count(); ++i) labels->push_back(d.label(i));
    return wall;
  };

  std::vector<int> scalar_labels, simd_labels;
  (void)simd::ForceTier(simd::Tier::kScalar);  // scalar is always supported
  const double scalar_s = run(&scalar_labels);
  simd::ResetForcedTier();
  const double simd_s = run(&simd_labels);

  const bool labels_match = scalar_labels == simd_labels;
  std::printf("\n=== DTW cascade: scalar vs SIMD dispatch (%zu traces) ===\n",
              traces.size());
  TablePrinter table({"tier", "wall", "speedup", "labels"});
  table.AddRow({"scalar (forced)", TablePrinter::Fmt(scalar_s, 3) + "s",
                "1.00x", "-"});
  table.AddRow({simd::TierName(simd::ActiveTier()),
                TablePrinter::Fmt(simd_s, 3) + "s",
                TablePrinter::Fmt(simd_s > 0.0 ? scalar_s / simd_s : 0.0, 2) +
                    "x",
                labels_match ? "identical" : "DIVERGED"});
  table.Print();
  if (!labels_match) {
    std::printf("ERROR: cluster labels changed under SIMD dispatch\n");
    std::exit(1);
  }
}

}  // namespace

int main() {
  Dataset bus = MakeBusTrackerDataset();
  Dataset ali = MakeAlibabaDataset();
  models::ForecasterOptions opts = BenchOptions(1, /*epochs=*/1);
  std::vector<Row> rows;

  {
    // LR has no epochs; report full fit time (closest analogue).
    Row r{"LR"};
    models::LinearRegressionForecaster lr_bus(opts), lr_ali(opts);
    auto t0 = Clock::now();
    CheckOk(lr_bus.Fit(bus.train()), "LR fit");
    r.epoch_bustracker = Seconds(t0, Clock::now());
    t0 = Clock::now();
    CheckOk(lr_ali.Fit(ali.train()), "LR fit");
    r.epoch_alicluster = Seconds(t0, Clock::now());
    r.inference_ms = TimeInference(lr_bus, bus);
    r.storage = lr_bus.StorageBytes();
    rows.push_back(r);
  }
  {
    Row r{"MLP"};
    models::MlpForecaster bus_m(opts), ali_m(opts);
    r.epoch_bustracker = TimeEpoch(bus_m, bus);
    r.epoch_alicluster = TimeEpoch(ali_m, ali);
    CheckOk(bus_m.Fit(bus.train()), "MLP fit");
    r.inference_ms = TimeInference(bus_m, bus);
    r.storage = bus_m.StorageBytes();
    rows.push_back(r);
  }
  {
    Row r{"LSTM"};
    models::LstmForecaster bus_m(opts), ali_m(opts);
    r.epoch_bustracker = TimeEpoch(bus_m, bus);
    r.epoch_alicluster = TimeEpoch(ali_m, ali);
    CheckOk(bus_m.Fit(bus.train()), "LSTM fit");
    r.inference_ms = TimeInference(bus_m, bus);
    r.storage = bus_m.StorageBytes();
    rows.push_back(r);
  }
  {
    Row r{"TCN"};
    models::TcnForecaster bus_m(opts), ali_m(opts);
    r.epoch_bustracker = TimeEpoch(bus_m, bus);
    r.epoch_alicluster = TimeEpoch(ali_m, ali);
    CheckOk(bus_m.Fit(bus.train()), "TCN fit");
    r.inference_ms = TimeInference(bus_m, bus);
    r.storage = bus_m.StorageBytes();
    rows.push_back(r);
  }
  {
    Row r{"WFGAN"};
    models::WfganForecaster bus_m(opts), ali_m(opts);
    CheckOk(bus_m.PrepareTraining(bus.train()), "prepare");
    (void)bus_m.TrainEpoch();
    auto t0 = Clock::now();
    (void)bus_m.TrainEpoch();
    r.epoch_bustracker = Seconds(t0, Clock::now());
    CheckOk(ali_m.PrepareTraining(ali.train()), "prepare");
    (void)ali_m.TrainEpoch();
    t0 = Clock::now();
    (void)ali_m.TrainEpoch();
    r.epoch_alicluster = Seconds(t0, Clock::now());
    CheckOk(bus_m.Fit(bus.train()), "WFGAN fit");
    r.inference_ms = TimeInference(bus_m, bus);
    r.storage = bus_m.StorageBytes();
    rows.push_back(r);
  }

  std::printf("=== Table II: Computation and Storage Efficiency ===\n");
  TablePrinter table({"model", "epoch CPU (BusTrac)", "epoch CPU (AliClus)",
                      "inference", "storage"});
  for (const Row& r : rows) {
    table.AddRow({r.name, TablePrinter::Fmt(r.epoch_bustracker, 3) + "s",
                  TablePrinter::Fmt(r.epoch_alicluster, 3) + "s",
                  TablePrinter::Fmt(r.inference_ms, 3) + "ms",
                  TablePrinter::Fmt(static_cast<double>(r.storage) / 1024.0, 1) +
                      "KB"});
  }
  table.Print();
  std::printf(
      "\nLR row reports the full closed-form fit (it has no epochs). WFGAN\n"
      "storage covers generator + discriminator.\n");
  ClusteringEfficiency();
  DtwSimdEfficiency();
  return 0;
}

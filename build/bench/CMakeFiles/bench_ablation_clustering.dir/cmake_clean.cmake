file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_clustering.dir/ablation_clustering.cpp.o"
  "CMakeFiles/bench_ablation_clustering.dir/ablation_clustering.cpp.o.d"
  "ablation_clustering"
  "ablation_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_clustering.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wfgan.dir/ablation_wfgan.cpp.o"
  "CMakeFiles/bench_ablation_wfgan.dir/ablation_wfgan.cpp.o.d"
  "ablation_wfgan"
  "ablation_wfgan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wfgan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_wfgan.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_workload_patterns.dir/fig2_workload_patterns.cpp.o"
  "CMakeFiles/bench_fig2_workload_patterns.dir/fig2_workload_patterns.cpp.o.d"
  "fig2_workload_patterns"
  "fig2_workload_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_workload_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig2_workload_patterns.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_forecast_accuracy.dir/fig5_forecast_accuracy.cpp.o"
  "CMakeFiles/bench_fig5_forecast_accuracy.dir/fig5_forecast_accuracy.cpp.o.d"
  "fig5_forecast_accuracy"
  "fig5_forecast_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_forecast_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

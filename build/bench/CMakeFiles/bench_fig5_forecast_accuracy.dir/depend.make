# Empty dependencies file for bench_fig5_forecast_accuracy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_horizon.dir/fig6_horizon.cpp.o"
  "CMakeFiles/bench_fig6_horizon.dir/fig6_horizon.cpp.o.d"
  "fig6_horizon"
  "fig6_horizon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_horizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig6_horizon.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_ensemble.dir/fig7_ensemble.cpp.o"
  "CMakeFiles/bench_fig7_ensemble.dir/fig7_ensemble.cpp.o.d"
  "fig7_ensemble"
  "fig7_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

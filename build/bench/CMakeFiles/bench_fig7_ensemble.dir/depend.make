# Empty dependencies file for bench_fig7_ensemble.
# This may be replaced when dependencies are built.

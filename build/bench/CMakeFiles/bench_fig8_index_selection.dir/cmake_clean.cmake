file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_index_selection.dir/fig8_index_selection.cpp.o"
  "CMakeFiles/bench_fig8_index_selection.dir/fig8_index_selection.cpp.o.d"
  "fig8_index_selection"
  "fig8_index_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_index_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

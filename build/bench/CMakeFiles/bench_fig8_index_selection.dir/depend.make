# Empty dependencies file for bench_fig8_index_selection.
# This may be replaced when dependencies are built.

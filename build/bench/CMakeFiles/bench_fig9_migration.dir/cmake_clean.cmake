file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_migration.dir/fig9_migration.cpp.o"
  "CMakeFiles/bench_fig9_migration.dir/fig9_migration.cpp.o.d"
  "fig9_migration"
  "fig9_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_efficiency.dir/table2_efficiency.cpp.o"
  "CMakeFiles/bench_table2_efficiency.dir/table2_efficiency.cpp.o.d"
  "table2_efficiency"
  "table2_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

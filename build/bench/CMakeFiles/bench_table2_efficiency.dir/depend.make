# Empty dependencies file for bench_table2_efficiency.
# This may be replaced when dependencies are built.

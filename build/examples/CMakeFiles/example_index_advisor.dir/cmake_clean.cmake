file(REMOVE_RECURSE
  "CMakeFiles/example_index_advisor.dir/index_advisor.cpp.o"
  "CMakeFiles/example_index_advisor.dir/index_advisor.cpp.o.d"
  "index_advisor"
  "index_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_index_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

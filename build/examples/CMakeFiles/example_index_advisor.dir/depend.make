# Empty dependencies file for example_index_advisor.
# This may be replaced when dependencies are built.

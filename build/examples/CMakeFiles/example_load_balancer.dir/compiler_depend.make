# Empty compiler generated dependencies file for example_load_balancer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_sql_templates.dir/sql_templates.cpp.o"
  "CMakeFiles/example_sql_templates.dir/sql_templates.cpp.o.d"
  "sql_templates"
  "sql_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sql_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_sql_templates.
# This may be replaced when dependencies are built.

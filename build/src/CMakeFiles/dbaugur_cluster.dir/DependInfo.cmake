
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/ball_tree.cpp" "src/CMakeFiles/dbaugur_cluster.dir/cluster/ball_tree.cpp.o" "gcc" "src/CMakeFiles/dbaugur_cluster.dir/cluster/ball_tree.cpp.o.d"
  "/root/repo/src/cluster/descender.cpp" "src/CMakeFiles/dbaugur_cluster.dir/cluster/descender.cpp.o" "gcc" "src/CMakeFiles/dbaugur_cluster.dir/cluster/descender.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbaugur_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_dtw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/dbaugur_cluster.dir/cluster/ball_tree.cpp.o"
  "CMakeFiles/dbaugur_cluster.dir/cluster/ball_tree.cpp.o.d"
  "CMakeFiles/dbaugur_cluster.dir/cluster/descender.cpp.o"
  "CMakeFiles/dbaugur_cluster.dir/cluster/descender.cpp.o.d"
  "libdbaugur_cluster.a"
  "libdbaugur_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbaugur_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdbaugur_cluster.a"
)

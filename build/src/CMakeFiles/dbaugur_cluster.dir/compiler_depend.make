# Empty compiler generated dependencies file for dbaugur_cluster.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dbaugur_common.dir/common/logging.cpp.o"
  "CMakeFiles/dbaugur_common.dir/common/logging.cpp.o.d"
  "CMakeFiles/dbaugur_common.dir/common/math_utils.cpp.o"
  "CMakeFiles/dbaugur_common.dir/common/math_utils.cpp.o.d"
  "CMakeFiles/dbaugur_common.dir/common/rng.cpp.o"
  "CMakeFiles/dbaugur_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/dbaugur_common.dir/common/status.cpp.o"
  "CMakeFiles/dbaugur_common.dir/common/status.cpp.o.d"
  "CMakeFiles/dbaugur_common.dir/common/table_printer.cpp.o"
  "CMakeFiles/dbaugur_common.dir/common/table_printer.cpp.o.d"
  "libdbaugur_common.a"
  "libdbaugur_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbaugur_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

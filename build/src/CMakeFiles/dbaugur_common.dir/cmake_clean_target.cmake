file(REMOVE_RECURSE
  "libdbaugur_common.a"
)

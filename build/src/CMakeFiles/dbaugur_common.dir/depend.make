# Empty dependencies file for dbaugur_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dbaugur_core.dir/core/dbaugur.cpp.o"
  "CMakeFiles/dbaugur_core.dir/core/dbaugur.cpp.o.d"
  "libdbaugur_core.a"
  "libdbaugur_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbaugur_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdbaugur_core.a"
)

# Empty dependencies file for dbaugur_core.
# This may be replaced when dependencies are built.

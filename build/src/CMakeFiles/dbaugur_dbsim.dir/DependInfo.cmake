
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dbsim/advisor.cpp" "src/CMakeFiles/dbaugur_dbsim.dir/dbsim/advisor.cpp.o" "gcc" "src/CMakeFiles/dbaugur_dbsim.dir/dbsim/advisor.cpp.o.d"
  "/root/repo/src/dbsim/bustracker_db.cpp" "src/CMakeFiles/dbaugur_dbsim.dir/dbsim/bustracker_db.cpp.o" "gcc" "src/CMakeFiles/dbaugur_dbsim.dir/dbsim/bustracker_db.cpp.o.d"
  "/root/repo/src/dbsim/engine.cpp" "src/CMakeFiles/dbaugur_dbsim.dir/dbsim/engine.cpp.o" "gcc" "src/CMakeFiles/dbaugur_dbsim.dir/dbsim/engine.cpp.o.d"
  "/root/repo/src/dbsim/query.cpp" "src/CMakeFiles/dbaugur_dbsim.dir/dbsim/query.cpp.o" "gcc" "src/CMakeFiles/dbaugur_dbsim.dir/dbsim/query.cpp.o.d"
  "/root/repo/src/dbsim/replay.cpp" "src/CMakeFiles/dbaugur_dbsim.dir/dbsim/replay.cpp.o" "gcc" "src/CMakeFiles/dbaugur_dbsim.dir/dbsim/replay.cpp.o.d"
  "/root/repo/src/dbsim/table.cpp" "src/CMakeFiles/dbaugur_dbsim.dir/dbsim/table.cpp.o" "gcc" "src/CMakeFiles/dbaugur_dbsim.dir/dbsim/table.cpp.o.d"
  "/root/repo/src/dbsim/value.cpp" "src/CMakeFiles/dbaugur_dbsim.dir/dbsim/value.cpp.o" "gcc" "src/CMakeFiles/dbaugur_dbsim.dir/dbsim/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbaugur_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/dbaugur_dbsim.dir/dbsim/advisor.cpp.o"
  "CMakeFiles/dbaugur_dbsim.dir/dbsim/advisor.cpp.o.d"
  "CMakeFiles/dbaugur_dbsim.dir/dbsim/bustracker_db.cpp.o"
  "CMakeFiles/dbaugur_dbsim.dir/dbsim/bustracker_db.cpp.o.d"
  "CMakeFiles/dbaugur_dbsim.dir/dbsim/engine.cpp.o"
  "CMakeFiles/dbaugur_dbsim.dir/dbsim/engine.cpp.o.d"
  "CMakeFiles/dbaugur_dbsim.dir/dbsim/query.cpp.o"
  "CMakeFiles/dbaugur_dbsim.dir/dbsim/query.cpp.o.d"
  "CMakeFiles/dbaugur_dbsim.dir/dbsim/replay.cpp.o"
  "CMakeFiles/dbaugur_dbsim.dir/dbsim/replay.cpp.o.d"
  "CMakeFiles/dbaugur_dbsim.dir/dbsim/table.cpp.o"
  "CMakeFiles/dbaugur_dbsim.dir/dbsim/table.cpp.o.d"
  "CMakeFiles/dbaugur_dbsim.dir/dbsim/value.cpp.o"
  "CMakeFiles/dbaugur_dbsim.dir/dbsim/value.cpp.o.d"
  "libdbaugur_dbsim.a"
  "libdbaugur_dbsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbaugur_dbsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdbaugur_dbsim.a"
)

# Empty compiler generated dependencies file for dbaugur_dbsim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dbaugur_dtw.dir/dtw/dtw.cpp.o"
  "CMakeFiles/dbaugur_dtw.dir/dtw/dtw.cpp.o.d"
  "libdbaugur_dtw.a"
  "libdbaugur_dtw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbaugur_dtw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

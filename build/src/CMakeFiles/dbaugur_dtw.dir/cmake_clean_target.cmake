file(REMOVE_RECURSE
  "libdbaugur_dtw.a"
)

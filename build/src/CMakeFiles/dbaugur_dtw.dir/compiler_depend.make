# Empty compiler generated dependencies file for dbaugur_dtw.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dbaugur_ensemble.dir/ensemble/presets.cpp.o"
  "CMakeFiles/dbaugur_ensemble.dir/ensemble/presets.cpp.o.d"
  "CMakeFiles/dbaugur_ensemble.dir/ensemble/time_sensitive_ensemble.cpp.o"
  "CMakeFiles/dbaugur_ensemble.dir/ensemble/time_sensitive_ensemble.cpp.o.d"
  "libdbaugur_ensemble.a"
  "libdbaugur_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbaugur_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

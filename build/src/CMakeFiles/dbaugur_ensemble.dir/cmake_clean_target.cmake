file(REMOVE_RECURSE
  "libdbaugur_ensemble.a"
)

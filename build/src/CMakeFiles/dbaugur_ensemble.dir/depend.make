# Empty dependencies file for dbaugur_ensemble.
# This may be replaced when dependencies are built.

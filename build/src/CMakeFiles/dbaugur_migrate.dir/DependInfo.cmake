
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/migrate/load_balancer.cpp" "src/CMakeFiles/dbaugur_migrate.dir/migrate/load_balancer.cpp.o" "gcc" "src/CMakeFiles/dbaugur_migrate.dir/migrate/load_balancer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbaugur_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_ensemble.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/dbaugur_migrate.dir/migrate/load_balancer.cpp.o"
  "CMakeFiles/dbaugur_migrate.dir/migrate/load_balancer.cpp.o.d"
  "libdbaugur_migrate.a"
  "libdbaugur_migrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbaugur_migrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

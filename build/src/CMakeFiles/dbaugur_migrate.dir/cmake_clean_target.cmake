file(REMOVE_RECURSE
  "libdbaugur_migrate.a"
)

# Empty compiler generated dependencies file for dbaugur_migrate.
# This may be replaced when dependencies are built.

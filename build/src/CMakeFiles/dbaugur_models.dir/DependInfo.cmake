
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/arima.cpp" "src/CMakeFiles/dbaugur_models.dir/models/arima.cpp.o" "gcc" "src/CMakeFiles/dbaugur_models.dir/models/arima.cpp.o.d"
  "/root/repo/src/models/factory.cpp" "src/CMakeFiles/dbaugur_models.dir/models/factory.cpp.o" "gcc" "src/CMakeFiles/dbaugur_models.dir/models/factory.cpp.o.d"
  "/root/repo/src/models/forecaster.cpp" "src/CMakeFiles/dbaugur_models.dir/models/forecaster.cpp.o" "gcc" "src/CMakeFiles/dbaugur_models.dir/models/forecaster.cpp.o.d"
  "/root/repo/src/models/grid_search.cpp" "src/CMakeFiles/dbaugur_models.dir/models/grid_search.cpp.o" "gcc" "src/CMakeFiles/dbaugur_models.dir/models/grid_search.cpp.o.d"
  "/root/repo/src/models/kernel_regression.cpp" "src/CMakeFiles/dbaugur_models.dir/models/kernel_regression.cpp.o" "gcc" "src/CMakeFiles/dbaugur_models.dir/models/kernel_regression.cpp.o.d"
  "/root/repo/src/models/linear_regression.cpp" "src/CMakeFiles/dbaugur_models.dir/models/linear_regression.cpp.o" "gcc" "src/CMakeFiles/dbaugur_models.dir/models/linear_regression.cpp.o.d"
  "/root/repo/src/models/lstm_forecaster.cpp" "src/CMakeFiles/dbaugur_models.dir/models/lstm_forecaster.cpp.o" "gcc" "src/CMakeFiles/dbaugur_models.dir/models/lstm_forecaster.cpp.o.d"
  "/root/repo/src/models/mlp.cpp" "src/CMakeFiles/dbaugur_models.dir/models/mlp.cpp.o" "gcc" "src/CMakeFiles/dbaugur_models.dir/models/mlp.cpp.o.d"
  "/root/repo/src/models/neural_common.cpp" "src/CMakeFiles/dbaugur_models.dir/models/neural_common.cpp.o" "gcc" "src/CMakeFiles/dbaugur_models.dir/models/neural_common.cpp.o.d"
  "/root/repo/src/models/tcn.cpp" "src/CMakeFiles/dbaugur_models.dir/models/tcn.cpp.o" "gcc" "src/CMakeFiles/dbaugur_models.dir/models/tcn.cpp.o.d"
  "/root/repo/src/models/wfgan.cpp" "src/CMakeFiles/dbaugur_models.dir/models/wfgan.cpp.o" "gcc" "src/CMakeFiles/dbaugur_models.dir/models/wfgan.cpp.o.d"
  "/root/repo/src/models/wfgan_multitask.cpp" "src/CMakeFiles/dbaugur_models.dir/models/wfgan_multitask.cpp.o" "gcc" "src/CMakeFiles/dbaugur_models.dir/models/wfgan_multitask.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbaugur_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

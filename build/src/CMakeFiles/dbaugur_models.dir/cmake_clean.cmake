file(REMOVE_RECURSE
  "CMakeFiles/dbaugur_models.dir/models/arima.cpp.o"
  "CMakeFiles/dbaugur_models.dir/models/arima.cpp.o.d"
  "CMakeFiles/dbaugur_models.dir/models/factory.cpp.o"
  "CMakeFiles/dbaugur_models.dir/models/factory.cpp.o.d"
  "CMakeFiles/dbaugur_models.dir/models/forecaster.cpp.o"
  "CMakeFiles/dbaugur_models.dir/models/forecaster.cpp.o.d"
  "CMakeFiles/dbaugur_models.dir/models/grid_search.cpp.o"
  "CMakeFiles/dbaugur_models.dir/models/grid_search.cpp.o.d"
  "CMakeFiles/dbaugur_models.dir/models/kernel_regression.cpp.o"
  "CMakeFiles/dbaugur_models.dir/models/kernel_regression.cpp.o.d"
  "CMakeFiles/dbaugur_models.dir/models/linear_regression.cpp.o"
  "CMakeFiles/dbaugur_models.dir/models/linear_regression.cpp.o.d"
  "CMakeFiles/dbaugur_models.dir/models/lstm_forecaster.cpp.o"
  "CMakeFiles/dbaugur_models.dir/models/lstm_forecaster.cpp.o.d"
  "CMakeFiles/dbaugur_models.dir/models/mlp.cpp.o"
  "CMakeFiles/dbaugur_models.dir/models/mlp.cpp.o.d"
  "CMakeFiles/dbaugur_models.dir/models/neural_common.cpp.o"
  "CMakeFiles/dbaugur_models.dir/models/neural_common.cpp.o.d"
  "CMakeFiles/dbaugur_models.dir/models/tcn.cpp.o"
  "CMakeFiles/dbaugur_models.dir/models/tcn.cpp.o.d"
  "CMakeFiles/dbaugur_models.dir/models/wfgan.cpp.o"
  "CMakeFiles/dbaugur_models.dir/models/wfgan.cpp.o.d"
  "CMakeFiles/dbaugur_models.dir/models/wfgan_multitask.cpp.o"
  "CMakeFiles/dbaugur_models.dir/models/wfgan_multitask.cpp.o.d"
  "libdbaugur_models.a"
  "libdbaugur_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbaugur_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdbaugur_models.a"
)

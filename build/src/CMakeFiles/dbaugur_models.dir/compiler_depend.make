# Empty compiler generated dependencies file for dbaugur_models.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cpp" "src/CMakeFiles/dbaugur_nn.dir/nn/attention.cpp.o" "gcc" "src/CMakeFiles/dbaugur_nn.dir/nn/attention.cpp.o.d"
  "/root/repo/src/nn/conv1d.cpp" "src/CMakeFiles/dbaugur_nn.dir/nn/conv1d.cpp.o" "gcc" "src/CMakeFiles/dbaugur_nn.dir/nn/conv1d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/CMakeFiles/dbaugur_nn.dir/nn/dense.cpp.o" "gcc" "src/CMakeFiles/dbaugur_nn.dir/nn/dense.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/CMakeFiles/dbaugur_nn.dir/nn/layer.cpp.o" "gcc" "src/CMakeFiles/dbaugur_nn.dir/nn/layer.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/dbaugur_nn.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/dbaugur_nn.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/CMakeFiles/dbaugur_nn.dir/nn/lstm.cpp.o" "gcc" "src/CMakeFiles/dbaugur_nn.dir/nn/lstm.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "src/CMakeFiles/dbaugur_nn.dir/nn/matrix.cpp.o" "gcc" "src/CMakeFiles/dbaugur_nn.dir/nn/matrix.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/dbaugur_nn.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/dbaugur_nn.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/CMakeFiles/dbaugur_nn.dir/nn/serialize.cpp.o" "gcc" "src/CMakeFiles/dbaugur_nn.dir/nn/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbaugur_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

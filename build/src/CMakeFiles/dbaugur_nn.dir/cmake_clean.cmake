file(REMOVE_RECURSE
  "CMakeFiles/dbaugur_nn.dir/nn/attention.cpp.o"
  "CMakeFiles/dbaugur_nn.dir/nn/attention.cpp.o.d"
  "CMakeFiles/dbaugur_nn.dir/nn/conv1d.cpp.o"
  "CMakeFiles/dbaugur_nn.dir/nn/conv1d.cpp.o.d"
  "CMakeFiles/dbaugur_nn.dir/nn/dense.cpp.o"
  "CMakeFiles/dbaugur_nn.dir/nn/dense.cpp.o.d"
  "CMakeFiles/dbaugur_nn.dir/nn/layer.cpp.o"
  "CMakeFiles/dbaugur_nn.dir/nn/layer.cpp.o.d"
  "CMakeFiles/dbaugur_nn.dir/nn/loss.cpp.o"
  "CMakeFiles/dbaugur_nn.dir/nn/loss.cpp.o.d"
  "CMakeFiles/dbaugur_nn.dir/nn/lstm.cpp.o"
  "CMakeFiles/dbaugur_nn.dir/nn/lstm.cpp.o.d"
  "CMakeFiles/dbaugur_nn.dir/nn/matrix.cpp.o"
  "CMakeFiles/dbaugur_nn.dir/nn/matrix.cpp.o.d"
  "CMakeFiles/dbaugur_nn.dir/nn/optimizer.cpp.o"
  "CMakeFiles/dbaugur_nn.dir/nn/optimizer.cpp.o.d"
  "CMakeFiles/dbaugur_nn.dir/nn/serialize.cpp.o"
  "CMakeFiles/dbaugur_nn.dir/nn/serialize.cpp.o.d"
  "libdbaugur_nn.a"
  "libdbaugur_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbaugur_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

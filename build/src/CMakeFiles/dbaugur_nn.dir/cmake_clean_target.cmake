file(REMOVE_RECURSE
  "libdbaugur_nn.a"
)

# Empty compiler generated dependencies file for dbaugur_nn.
# This may be replaced when dependencies are built.

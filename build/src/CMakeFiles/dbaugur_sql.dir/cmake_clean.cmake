file(REMOVE_RECURSE
  "CMakeFiles/dbaugur_sql.dir/sql/templater.cpp.o"
  "CMakeFiles/dbaugur_sql.dir/sql/templater.cpp.o.d"
  "CMakeFiles/dbaugur_sql.dir/sql/tokenizer.cpp.o"
  "CMakeFiles/dbaugur_sql.dir/sql/tokenizer.cpp.o.d"
  "libdbaugur_sql.a"
  "libdbaugur_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbaugur_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

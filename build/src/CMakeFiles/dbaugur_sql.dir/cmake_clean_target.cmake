file(REMOVE_RECURSE
  "libdbaugur_sql.a"
)

# Empty compiler generated dependencies file for dbaugur_sql.
# This may be replaced when dependencies are built.

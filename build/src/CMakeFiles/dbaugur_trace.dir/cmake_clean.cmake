file(REMOVE_RECURSE
  "CMakeFiles/dbaugur_trace.dir/trace/extractor.cpp.o"
  "CMakeFiles/dbaugur_trace.dir/trace/extractor.cpp.o.d"
  "libdbaugur_trace.a"
  "libdbaugur_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbaugur_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdbaugur_trace.a"
)

# Empty compiler generated dependencies file for dbaugur_trace.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ts/analysis.cpp" "src/CMakeFiles/dbaugur_ts.dir/ts/analysis.cpp.o" "gcc" "src/CMakeFiles/dbaugur_ts.dir/ts/analysis.cpp.o.d"
  "/root/repo/src/ts/metrics.cpp" "src/CMakeFiles/dbaugur_ts.dir/ts/metrics.cpp.o" "gcc" "src/CMakeFiles/dbaugur_ts.dir/ts/metrics.cpp.o.d"
  "/root/repo/src/ts/scaler.cpp" "src/CMakeFiles/dbaugur_ts.dir/ts/scaler.cpp.o" "gcc" "src/CMakeFiles/dbaugur_ts.dir/ts/scaler.cpp.o.d"
  "/root/repo/src/ts/series.cpp" "src/CMakeFiles/dbaugur_ts.dir/ts/series.cpp.o" "gcc" "src/CMakeFiles/dbaugur_ts.dir/ts/series.cpp.o.d"
  "/root/repo/src/ts/window_dataset.cpp" "src/CMakeFiles/dbaugur_ts.dir/ts/window_dataset.cpp.o" "gcc" "src/CMakeFiles/dbaugur_ts.dir/ts/window_dataset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbaugur_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

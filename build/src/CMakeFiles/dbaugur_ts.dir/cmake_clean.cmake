file(REMOVE_RECURSE
  "CMakeFiles/dbaugur_ts.dir/ts/analysis.cpp.o"
  "CMakeFiles/dbaugur_ts.dir/ts/analysis.cpp.o.d"
  "CMakeFiles/dbaugur_ts.dir/ts/metrics.cpp.o"
  "CMakeFiles/dbaugur_ts.dir/ts/metrics.cpp.o.d"
  "CMakeFiles/dbaugur_ts.dir/ts/scaler.cpp.o"
  "CMakeFiles/dbaugur_ts.dir/ts/scaler.cpp.o.d"
  "CMakeFiles/dbaugur_ts.dir/ts/series.cpp.o"
  "CMakeFiles/dbaugur_ts.dir/ts/series.cpp.o.d"
  "CMakeFiles/dbaugur_ts.dir/ts/window_dataset.cpp.o"
  "CMakeFiles/dbaugur_ts.dir/ts/window_dataset.cpp.o.d"
  "libdbaugur_ts.a"
  "libdbaugur_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbaugur_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdbaugur_ts.a"
)

# Empty compiler generated dependencies file for dbaugur_ts.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dbaugur_workloads.dir/workloads/generators.cpp.o"
  "CMakeFiles/dbaugur_workloads.dir/workloads/generators.cpp.o.d"
  "CMakeFiles/dbaugur_workloads.dir/workloads/query_log.cpp.o"
  "CMakeFiles/dbaugur_workloads.dir/workloads/query_log.cpp.o.d"
  "libdbaugur_workloads.a"
  "libdbaugur_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbaugur_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

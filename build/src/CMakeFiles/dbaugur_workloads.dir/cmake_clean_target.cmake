file(REMOVE_RECURSE
  "libdbaugur_workloads.a"
)

# Empty dependencies file for dbaugur_workloads.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/analysis_test.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbaugur_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_dtw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_dbsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_migrate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_ensemble.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbaugur_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

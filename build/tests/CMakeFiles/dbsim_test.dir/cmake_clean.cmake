file(REMOVE_RECURSE
  "CMakeFiles/dbsim_test.dir/dbsim_test.cpp.o"
  "CMakeFiles/dbsim_test.dir/dbsim_test.cpp.o.d"
  "dbsim_test"
  "dbsim_test.pdb"
  "dbsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

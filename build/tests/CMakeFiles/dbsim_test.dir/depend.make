# Empty dependencies file for dbsim_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dtw_test.dir/dtw_test.cpp.o"
  "CMakeFiles/dtw_test.dir/dtw_test.cpp.o.d"
  "dtw_test"
  "dtw_test.pdb"
  "dtw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

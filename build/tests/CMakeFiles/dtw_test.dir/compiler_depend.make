# Empty compiler generated dependencies file for dtw_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ensemble_test.dir/ensemble_test.cpp.o"
  "CMakeFiles/ensemble_test.dir/ensemble_test.cpp.o.d"
  "ensemble_test"
  "ensemble_test.pdb"
  "ensemble_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/migrate_test.dir/migrate_test.cpp.o"
  "CMakeFiles/migrate_test.dir/migrate_test.cpp.o.d"
  "migrate_test"
  "migrate_test.pdb"
  "migrate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

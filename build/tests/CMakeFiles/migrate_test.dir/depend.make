# Empty dependencies file for migrate_test.
# This may be replaced when dependencies are built.

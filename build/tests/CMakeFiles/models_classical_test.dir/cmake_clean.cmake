file(REMOVE_RECURSE
  "CMakeFiles/models_classical_test.dir/models_classical_test.cpp.o"
  "CMakeFiles/models_classical_test.dir/models_classical_test.cpp.o.d"
  "models_classical_test"
  "models_classical_test.pdb"
  "models_classical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_classical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for models_classical_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/models_neural_test.dir/models_neural_test.cpp.o"
  "CMakeFiles/models_neural_test.dir/models_neural_test.cpp.o.d"
  "models_neural_test"
  "models_neural_test.pdb"
  "models_neural_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_neural_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

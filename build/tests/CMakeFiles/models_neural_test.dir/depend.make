# Empty dependencies file for models_neural_test.
# This may be replaced when dependencies are built.

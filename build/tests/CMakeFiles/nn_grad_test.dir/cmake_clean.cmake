file(REMOVE_RECURSE
  "CMakeFiles/nn_grad_test.dir/nn_grad_test.cpp.o"
  "CMakeFiles/nn_grad_test.dir/nn_grad_test.cpp.o.d"
  "nn_grad_test"
  "nn_grad_test.pdb"
  "nn_grad_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_grad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for nn_matrix_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sql_test.dir/sql_test.cpp.o"
  "CMakeFiles/sql_test.dir/sql_test.cpp.o.d"
  "sql_test"
  "sql_test.pdb"
  "sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sql_test.
# This may be replaced when dependencies are built.

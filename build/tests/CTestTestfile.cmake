# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/dbsim_test[1]_include.cmake")
include("/root/repo/build/tests/dtw_test[1]_include.cmake")
include("/root/repo/build/tests/ensemble_test[1]_include.cmake")
include("/root/repo/build/tests/migrate_test[1]_include.cmake")
include("/root/repo/build/tests/models_classical_test[1]_include.cmake")
include("/root/repo/build/tests/models_neural_test[1]_include.cmake")
include("/root/repo/build/tests/nn_grad_test[1]_include.cmake")
include("/root/repo/build/tests/nn_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/nn_training_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/ts_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")

// Forecast-driven index selection walk-through (the Fig. 8 scenario, small).
//
// Replays a day of BusTracker queries against the mini relational engine,
// compares the indexes AutoAdmin recommends from (a) the morning's observed
// workload and (b) the forecasted evening workload, and shows the per-query
// cost under each physical design.
//
//   ./index_advisor

#include <cstdio>
#include <map>

#include "common/table_printer.h"
#include "dbsim/advisor.h"
#include "dbsim/bustracker_db.h"
#include "dbsim/replay.h"
#include "workloads/query_log.h"

using namespace dbaugur;

namespace {

// Sums estimated cost of `workload` under a hypothetical index set.
double Cost(const dbsim::Database& db,
            const std::vector<dbsim::WeightedQuery>& workload,
            const std::vector<dbsim::HypotheticalIndex>& indexes) {
  std::set<dbsim::HypotheticalIndex> config(indexes.begin(), indexes.end());
  double total = 0.0;
  for (const auto& wq : workload) {
    auto c = db.EstimateCost(wq.spec, config);
    if (c.ok()) total += wq.weight * (*c);
  }
  return total;
}

std::vector<std::string> SqlsBetween(const std::vector<trace::LogEntry>& log,
                                     int64_t lo, int64_t hi) {
  std::vector<std::string> out;
  for (const auto& e : log) {
    if (e.timestamp >= lo && e.timestamp < hi) out.push_back(e.sql);
  }
  return out;
}

}  // namespace

int main() {
  auto db = dbsim::MakeBusTrackerDatabase({});
  if (!db.ok()) {
    std::fprintf(stderr, "db: %s\n", db.status().ToString().c_str());
    return 1;
  }
  workloads::QueryLogOptions lopts;
  lopts.days = 1;
  lopts.seed = 11;
  auto log =
      workloads::GenerateQueryLog(workloads::BusTrackerTemplates(), lopts);
  std::printf("replaying %zu queries against the BusTracker database\n\n",
              log.size());

  // Workloads: what actually ran in the morning vs the full evening mix.
  auto morning = dbsim::BuildWorkload(SqlsBetween(log, 0, 43200));
  auto evening = dbsim::BuildWorkload(SqlsBetween(log, 43200, 86400));

  dbsim::AdvisorOptions aopts;
  aopts.max_indexes = 2;
  auto morning_rec = dbsim::RecommendIndexes(*db, morning, aopts);
  auto evening_rec = dbsim::RecommendIndexes(*db, evening, aopts);
  if (!morning_rec.ok() || !evening_rec.ok()) {
    std::fprintf(stderr, "advisor failed\n");
    return 1;
  }

  auto render = [](const std::vector<dbsim::HypotheticalIndex>& idx) {
    std::string out;
    for (const auto& i : idx) out += i.table + "." + i.column + " ";
    return out.empty() ? std::string("(none)") : out;
  };
  std::printf("AutoAdmin on the MORNING workload picks:  %s\n",
              render(morning_rec->indexes).c_str());
  std::printf("AutoAdmin on the EVENING workload picks:  %s\n\n",
              render(evening_rec->indexes).c_str());

  // How each design fares on the evening workload — this cost gap is exactly
  // why Fig. 8's Static strategy loses once the query mix shifts.
  TablePrinter table({"design", "evening workload cost (pages)"});
  table.AddRow({"no indexes", TablePrinter::Fmt(Cost(*db, evening, {}), 0)});
  table.AddRow({"indexes from morning (Static)",
                TablePrinter::Fmt(Cost(*db, evening, morning_rec->indexes), 0)});
  table.AddRow({"indexes from evening forecast (Auto)",
                TablePrinter::Fmt(Cost(*db, evening, evening_rec->indexes), 0)});
  table.Print();

  // Execute a few statements to show access-path selection end to end.
  std::printf("\naccess paths after building the evening indexes:\n");
  for (const auto& idx : evening_rec->indexes) {
    if (Status st = db->CreateIndex(idx.table, idx.column); !st.ok()) {
      std::fprintf(stderr, "create index: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  Rng rng(3);
  for (auto& spec : workloads::BusTrackerTemplates()) {
    std::string sql = spec.make_sql(rng);
    auto res = db->Execute(sql);
    if (!res.ok()) continue;
    std::printf("  %-22s %-12s %6.0f pages  %zu rows\n", spec.name.c_str(),
                res->access_path.c_str(), res->cost_pages, res->matched_rows);
  }
  return 0;
}

// Forecast-driven data-region migration walk-through (the Fig. 9 scenario).
//
// A periodic workload with a rotating hotspot is partitioned into regions on
// four servers. Compares the load-balance difference when migrations are
// planned from last period's loads (Static) vs a forecaster's predicted
// loads (Auto) vs perfect knowledge (Oracle).
//
//   ./load_balancer

#include <cstdio>
#include <numeric>

#include "common/table_printer.h"
#include "migrate/load_balancer.h"
#include "models/linear_regression.h"
#include "workloads/generators.h"

using namespace dbaugur;

int main() {
  // Per-region load traces: periodic base + hotspot rotating one region
  // every ~3 periods.
  workloads::PeriodicOptions popts;
  popts.periods = 4;
  popts.steps_per_period = 48;
  auto base = workloads::GeneratePeriodic(popts);
  auto regions = migrate::MakeRotatingRegionLoads(base, 8, 0.3, 3.0);
  size_t total_periods = base.size();
  size_t eval_start = total_periods / 2;
  std::printf("8 regions on 4 servers, %zu periods (%zu evaluated)\n\n",
              total_periods, total_periods - eval_start);

  // Static: plan with last period's observed loads.
  auto static_pred = [&](size_t r, size_t p) -> StatusOr<double> {
    return regions[r][p - 1];
  };
  // Auto: a per-region linear autoregressive forecaster trained on the
  // history before the evaluation window (swap in MakeDBAugur for the full
  // ensemble — see bench/fig9_migration for that configuration).
  models::ForecasterOptions fopts;
  fopts.window = 16;
  fopts.horizon = 1;
  std::vector<models::LinearRegressionForecaster> models;
  for (size_t r = 0; r < regions.size(); ++r) {
    models.emplace_back(fopts);
    std::vector<double> train(
        regions[r].values().begin(),
        regions[r].values().begin() + static_cast<ptrdiff_t>(eval_start));
    if (Status st = models.back().Fit(train); !st.ok()) {
      std::fprintf(stderr, "fit region %zu: %s\n", r, st.ToString().c_str());
      return 1;
    }
  }
  auto auto_pred = [&](size_t r, size_t p) -> StatusOr<double> {
    const auto& v = regions[r].values();
    std::vector<double> window(v.begin() + static_cast<ptrdiff_t>(p - 16),
                               v.begin() + static_cast<ptrdiff_t>(p));
    return models[r].Predict(window);
  };
  auto oracle_pred = [&](size_t r, size_t p) -> StatusOr<double> {
    return regions[r][p];
  };

  auto run = [&](const migrate::RegionPredictor& pred) -> double {
    auto balance =
        migrate::SimulateMigration(regions, 4, eval_start, pred, 2);
    if (!balance.ok()) return -1.0;
    return std::accumulate(balance->begin(), balance->end(), 0.0) /
           static_cast<double>(balance->size());
  };

  TablePrinter table({"strategy", "mean load-balance difference"});
  table.AddRow({"Static (last period)", TablePrinter::Fmt(run(static_pred), 4)});
  table.AddRow({"Auto (LR forecast)", TablePrinter::Fmt(run(auto_pred), 4)});
  table.AddRow({"Oracle (perfect)", TablePrinter::Fmt(run(oracle_pred), 4)});
  table.Print();
  std::printf(
      "\nlower is better; the forecast-driven planner anticipates the\n"
      "hotspot instead of chasing it one period late.\n");
  return 0;
}

// Quickstart: the full DBAugur pipeline in ~80 lines.
//
// Generates a synthetic two-day query log for a BusTracker-style transit
// application, feeds it (plus a disk-utilization trace) through the complete
// system — SQL2Template, DTW-based Descender clustering, per-cluster
// time-sensitive ensembles (WFGAN + TCN + MLP) — and prints the forecasts.
//
//   ./quickstart

#include <cstdio>

#include "common/table_printer.h"
#include "core/dbaugur.h"
#include "workloads/generators.h"
#include "workloads/query_log.h"

using namespace dbaugur;

int main() {
  // 1. A raw query log: timestamped SQL statements (normally parsed from the
  //    DBMS log files; here synthesized so the example is self-contained).
  workloads::QueryLogOptions log_opts;
  log_opts.days = 2;
  log_opts.seed = 7;
  auto log =
      workloads::GenerateQueryLog(workloads::BusTrackerTemplates(), log_opts);
  std::printf("query log: %zu statements over %zu days\n\n", log.size(),
              log_opts.days);

  // 2. Configure the system: 10-minute forecasting interval, DTW clustering,
  //    top-4 clusters forecast one step ahead.
  core::DBAugurOptions opts;
  opts.extraction.interval_seconds = 600;
  opts.clustering.radius = 6.0;
  opts.clustering.min_size = 2;
  opts.clustering.dtw.window = 6;
  opts.top_k = 4;
  opts.forecaster.window = 24;
  opts.forecaster.horizon = 1;
  opts.forecaster.epochs = 8;

  core::DBAugurSystem sys(opts);
  if (Status st = sys.IngestQueryLog(log); !st.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Resource-utilization trace from runtime statistics, binned at the
  //    same interval (paper: both query and resource traces define W).
  workloads::AlibabaOptions disk_opts;
  disk_opts.days = 2;
  disk_opts.interval_seconds = 600;
  sys.AddResourceTrace(workloads::GenerateAlibabaDisk(disk_opts));

  // 4. Train: extract template traces, cluster, fit one ensemble per top-K
  //    cluster. (Takes a couple of minutes: three neural nets per cluster.)
  std::printf("training (templates -> clusters -> ensembles)...\n");
  if (Status st = sys.Train(); !st.ok()) {
    std::fprintf(stderr, "train failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("processor produced %zu traces, %zu forecasted clusters\n\n",
              sys.trace_count(), sys.forecast_count());

  // 5. Per-cluster forecasts.
  TablePrinter clusters({"rank", "cluster", "members", "volume", "next value"});
  for (size_t rank = 0; rank < sys.forecast_count(); ++rank) {
    const auto& cf = sys.forecast(rank);
    auto pred = sys.ForecastCluster(rank);
    clusters.AddRow({std::to_string(rank), std::to_string(cf.cluster_id),
                     std::to_string(cf.member_count),
                     TablePrinter::Fmt(cf.volume, 0),
                     pred.ok() ? TablePrinter::Fmt(*pred, 2)
                               : pred.status().ToString()});
  }
  clusters.Print();
  std::printf("\n");

  // 6. Per-trace forecasts (cluster forecast scaled by volume proportion).
  TablePrinter traces({"trace", "kind", "forecast"});
  for (size_t i = 0; i < sys.trace_count(); ++i) {
    const auto& ref = sys.trace_ref(i);
    auto pred = sys.ForecastTrace(i);
    std::string name = ref.name.substr(0, 48);
    traces.AddRow({name,
                   ref.kind == core::TraceRef::Kind::kQueryTemplate
                       ? "query"
                       : "resource",
                   pred.ok() ? TablePrinter::Fmt(*pred, 2) : "outside top-K"});
  }
  traces.Print();
  return 0;
}

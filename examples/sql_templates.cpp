// SQL2Template + clustering inspection tool.
//
// Shows how raw statements collapse into templates (including the paper's
// semantic-equivalence examples), then clusters the per-template arrival
// traces of a generated log with Descender and prints the cluster map.
//
//   ./sql_templates

#include <cstdio>

#include "cluster/descender.h"
#include "common/table_printer.h"
#include "sql/templater.h"
#include "trace/extractor.h"
#include "workloads/query_log.h"

using namespace dbaugur;

int main() {
  // --- Part 1: templating on the paper's own examples.
  const char* statements[] = {
      "SELECT * FROM Stu WHERE id=5 and age>21 and height<180",
      "SELECT * FROM Stu WHERE id=77 and age>30 and height<200",
      "SELECT a, b FROM foo",
      "SELECT b, a FROM foo",
      "SELECT * FROM A JOIN B on A.id=B.id",
      "SELECT * FROM B JOIN A on B.id=A.id",
      "SELECT * FROM t WHERE id IN (1, 2, 3)",
      "SELECT * FROM t WHERE id IN (9)",
  };
  std::printf("-- SQL2Template --\n");
  sql::TemplateRegistry registry;
  for (const char* s : statements) {
    auto id = registry.Record(s);
    if (!id.ok()) {
      std::fprintf(stderr, "template failed: %s\n", id.status().ToString().c_str());
      return 1;
    }
    std::printf("  [T%zu] %s\n", *id, s);
  }
  std::printf("\n%zu statements -> %zu templates:\n", std::size(statements),
              registry.size());
  for (size_t id = 0; id < registry.size(); ++id) {
    std::printf("  T%zu (x%lld): %s\n", id,
                static_cast<long long>(registry.count(id)),
                registry.template_text(id).c_str());
  }

  // --- Part 2: template traces from a generated log, clustered with DTW.
  std::printf("\n-- Trace clustering --\n");
  workloads::QueryLogOptions lopts;
  lopts.days = 2;
  lopts.seed = 21;
  auto log =
      workloads::GenerateQueryLog(workloads::BusTrackerTemplates(), lopts);
  trace::ExtractionOptions eopts;
  eopts.interval_seconds = 600;
  trace::TraceExtractor extractor(eopts);
  if (Status st = extractor.IngestLog(log); !st.ok()) {
    std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
    return 1;
  }
  auto traces = extractor.TemplateTraces();
  if (!traces.ok()) {
    std::fprintf(stderr, "traces: %s\n", traces.status().ToString().c_str());
    return 1;
  }
  cluster::DescenderOptions copts;
  copts.radius = 6.0;
  copts.min_size = 2;
  copts.dtw.window = 6;
  cluster::Descender desc(copts);
  if (Status st = desc.AddTraces(*traces); !st.ok()) {
    std::fprintf(stderr, "cluster: %s\n", st.ToString().c_str());
    return 1;
  }

  TablePrinter table({"template", "cluster", "core", "share"});
  for (size_t i = 0; i < desc.trace_count(); ++i) {
    auto share = desc.TraceProportion(i);
    table.AddRow({extractor.registry().template_text(i).substr(0, 52),
                  std::to_string(desc.label(i)), desc.is_core(i) ? "yes" : "no",
                  share.ok() ? TablePrinter::Fmt(*share, 2) : "?"});
  }
  table.Print();
  std::printf(
      "\n%zu templates -> %zu clusters (%zu dense); note the ticket price and\n"
      "seats-left lookups land together despite their time shift — the DTW\n"
      "win over lock-step distances.\n",
      desc.trace_count(), desc.cluster_count(), desc.density_cluster_count());
  std::printf("DTW/LB distance evaluations: %lld\n",
              static_cast<long long>(desc.distance_evals()));
  return 0;
}

#include "chaos/harness.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "chaos/oracle.h"
#include "chaos/partition.h"
#include "cluster/descender.h"
#include "common/fault_injection.h"
#include "dbsim/bustracker_db.h"
#include "dbsim/query.h"
#include "dbsim/replay.h"
#include "migrate/load_balancer.h"
#include "serve/service.h"
#include "serve/sharded_service.h"
#include "trace/extractor.h"

namespace dbaugur::chaos {

size_t MinimizeFailingPrefix(size_t n,
                             const std::function<bool(size_t)>& fails_at) {
  if (n == 0) return 0;
  size_t lo = 1;
  size_t hi = n;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (fails_at(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  // The bisection assumed a failing prefix stays failing as it grows. Verify
  // the boundary it found; a non-monotone predicate (possible when a fault
  // storm moves with the number of production calls) falls back to the first
  // failing prefix by linear scan.
  if (fails_at(lo) && (lo == 1 || !fails_at(lo - 1))) return lo;
  for (size_t i = 1; i <= n; ++i) {
    if (fails_at(i)) return i;
  }
  return n;
}

std::string FormatEventWindow(const std::vector<serve::TraceEvent>& events,
                              size_t end, size_t max_window) {
  if (end > events.size()) end = events.size();
  const size_t begin = end > max_window ? end - max_window : 0;
  std::string out = "  event window [" + std::to_string(begin) + ", " +
                    std::to_string(end) + ") of " +
                    std::to_string(events.size()) + ":";
  for (size_t i = begin; i < end; ++i) {
    const serve::TraceEvent& e = events[i];
    out += "\n    #" + std::to_string(i) +
           " template=" + std::to_string(e.template_id) +
           " ts=" + std::to_string(e.timestamp) +
           " count=" + std::to_string(e.count);
  }
  return out;
}

std::string ChaosReport::Summary() const {
  if (ok) return "chaos ok (" + repro + ")";
  std::string out = "chaos FAILURE [stage " + stage + "] " + failure;
  out += "\n  repro: " + repro;
  if (!window.empty()) {
    out += "\n";
    out += window;
  }
  return out;
}

namespace {

Status Fail(const std::string& what) { return Status::Internal(what); }

/// One chaos run; stages share state through the members below.
class ChaosRun {
 public:
  explicit ChaosRun(const ChaosOptions& opts) : opts_(opts) {}

  ChaosReport Run() {
    report_.repro = "--seed=" + std::to_string(opts_.stream.seed) +
                    " --profile=" + ProfileName(opts_.stream.profile);
    if (opts_.full_service) report_.repro += " --full";
    if (opts_.replay) report_.repro += " --replay";
    if (opts_.service_shards > 1) {
      report_.repro += " --shards=" + std::to_string(opts_.service_shards);
    }
    if (opts_.service_workers > 1) {
      report_.repro += " --workers=" + std::to_string(opts_.service_workers);
    }
    if (opts_.retrain_deadline_seconds > 0.0) {
      report_.repro +=
          " --deadline=" + std::to_string(opts_.retrain_deadline_seconds);
    }
    if (opts_.retrain_budget > 0) {
      report_.repro += " --budget=" + std::to_string(opts_.retrain_budget);
    }

    stream_ = GenerateStream(opts_.stream);
    if (!Stage("text", TextLeg())) return report_;
    if (!Stage("template", TemplateLeg())) return report_;
    if (!Stage("events", EventsLeg())) return report_;
    if (!Stage("cluster", ClusterLeg())) return report_;
    if (opts_.full_service && !Stage("service", ServiceLeg())) return report_;
    if (opts_.service_shards > 1 && !Stage("sharded", ShardedLeg())) {
      return report_;
    }
    if (opts_.replay && !Stage("replay", ReplayLeg())) return report_;
    if (!Stage("migrate", MigrateLeg())) return report_;
    return report_;
  }

 private:
  bool Stage(const char* name, const Status& st) {
    if (st.ok()) return true;
    report_.ok = false;
    report_.stage = name;
    report_.failure = st.message();
    return false;
  }

  // ---- text: raw log lines through the lenient + strict log parsers -------

  Status TextLeg() {
    parsed_ = trace::ParseQueryLogLenient(stream_.Text());
    const StreamGroundTruth& t = stream_.truth;
    if (parsed_.rejected.no_sql != t.malformed_no_sql) {
      return Fail("log parser rejected " +
                  std::to_string(parsed_.rejected.no_sql) +
                  " no-SQL lines, stream injected " +
                  std::to_string(t.malformed_no_sql));
    }
    if (parsed_.rejected.bad_timestamp != t.malformed_bad_timestamp) {
      return Fail("log parser rejected " +
                  std::to_string(parsed_.rejected.bad_timestamp) +
                  " bad-timestamp lines, stream injected " +
                  std::to_string(t.malformed_bad_timestamp));
    }
    const uint64_t want_entries = t.well_formed + t.bad_statements;
    if (parsed_.entries.size() != want_entries) {
      return Fail("log parser kept " + std::to_string(parsed_.entries.size()) +
                  " entries, stream emitted " + std::to_string(want_entries) +
                  " parseable lines");
    }
    if (parsed_.rejected.total() > 0 &&
        (parsed_.first_bad_line == 0 || parsed_.first_error.empty())) {
      return Fail("lines were rejected but first-error diagnostics are empty");
    }
    // Strict/lenient differential: the strict parser fails iff the lenient
    // one rejected anything.
    auto strict = trace::ParseQueryLog(stream_.Text());
    if (strict.ok() != (parsed_.rejected.total() == 0)) {
      return Fail(std::string("strict parse ") +
                  (strict.ok() ? "succeeded" : "failed") + " but lenient saw " +
                  std::to_string(parsed_.rejected.total()) + " rejections");
    }
    return Status::OK();
  }

  // ---- template: SQL2Template counts against ground truth -----------------

  Status TemplateLeg() {
    trace::ExtractionOptions xopts;
    xopts.interval_seconds = opts_.stream.interval_seconds;
    trace::TraceExtractor ex(xopts);
    for (const trace::LogEntry& e : parsed_.entries) ex.IngestLenient(e);
    const StreamGroundTruth& t = stream_.truth;
    if (ex.rejected_statements() != t.bad_statements) {
      return Fail("templater rejected " +
                  std::to_string(ex.rejected_statements()) +
                  " statements, stream injected " +
                  std::to_string(t.bad_statements));
    }
    if (ex.entry_count() != t.well_formed) {
      return Fail("templater ingested " + std::to_string(ex.entry_count()) +
                  " statements, stream emitted " +
                  std::to_string(t.well_formed));
    }
    // Aggregate by canonical template text on both sides so two grammar
    // slots canonicalizing to the same template stay comparable.
    std::map<std::string, int64_t> got;
    const sql::TemplateRegistry& reg = ex.registry();
    for (size_t id = 0; id < reg.size(); ++id) {
      got[reg.template_text(id)] += reg.count(id);
    }
    std::map<std::string, int64_t> want;
    for (size_t s = 0; s < t.template_text.size(); ++s) {
      if (t.template_counts[s] > 0) {
        want[t.template_text[s]] +=
            static_cast<int64_t>(t.template_counts[s]);
      }
    }
    if (got != want) {
      for (const auto& [tmpl, n] : want) {
        auto it = got.find(tmpl);
        if (it == got.end()) {
          return Fail("template never registered: \"" + tmpl + "\" (expected " +
                      std::to_string(n) + " occurrences)");
        }
        if (it->second != n) {
          return Fail("template \"" + tmpl + "\" counted " +
                      std::to_string(it->second) + " times, stream emitted " +
                      std::to_string(n));
        }
      }
      for (const auto& [tmpl, n] : got) {
        if (want.find(tmpl) == want.end()) {
          return Fail("unexpected template registered: \"" + tmpl + "\" (" +
                      std::to_string(n) + " occurrences)");
        }
      }
    }
    // Replayability cross-check: the catalog's static flag must agree with
    // dbsim's parser on every rendered statement.
    for (const StreamItem& item : stream_.items) {
      if (item.kind != StreamItem::Kind::kQuery) continue;
      const size_t sp = item.line.find(' ');
      const std::string sql = item.line.substr(sp + 1);
      const bool parses = dbsim::ParseQuery(sql).ok();
      if (parses != t.replayable[item.template_index]) {
        return Fail("slot " + std::to_string(item.template_index) +
                    (parses ? " parses under dbsim but is marked"
                              " non-replayable"
                            : " is marked replayable but dbsim rejects it") +
                    ": " + sql);
      }
    }
    return Status::OK();
  }

  // ---- events: production ingest vs the sequential reference -------------

  void RunProduction(size_t n, serve::TraceIngestor* ing,
                     serve::TraceBinner* bin) const {
    std::vector<serve::TraceEvent> drained;
    size_t since_drain = 0;
    for (size_t i = 0; i < n; ++i) {
      ing->Offer(events_[i]);
      if (++since_drain >= 256) {
        since_drain = 0;
        drained.clear();
        ing->Drain(&drained);
        for (const serve::TraceEvent& e : drained) bin->Fold(e);
      }
    }
    drained.clear();
    ing->Drain(&drained);
    for (const serve::TraceEvent& e : drained) bin->Fold(e);
  }

  serve::IngestorOptions ProductionIngestOptions() const {
    return serve::IngestorOptions{opts_.queue_capacity, opts_.max_templates,
                                  opts_.max_lateness_seconds,
                                  opts_.min_timestamp_seconds,
                                  opts_.max_timestamp_seconds};
  }

  Status EventsLeg() {
    events_.clear();
    for (const StreamItem& item : stream_.items) {
      if (item.has_event) events_.push_back(item.event);
    }
    report_.events = events_.size();
    if (events_.empty()) return Status::OK();

    const ReferenceOptions ropts{opts_.max_templates,
                                 opts_.max_lateness_seconds,
                                 opts_.min_timestamp_seconds,
                                 opts_.max_timestamp_seconds,
                                 opts_.stream.interval_seconds};
    ing_ = std::make_unique<serve::TraceIngestor>(ProductionIngestOptions());
    bin_ = std::make_unique<serve::TraceBinner>(opts_.stream.interval_seconds);
    RunProduction(events_.size(), ing_.get(), bin_.get());
    const ReferenceResult ref = RunSequentialReference(events_, ropts);

    // Exact differential when no fault storm is armed; conservation always.
    Status diff = fault::Active()
                      ? CheckIngestConservation(events_.size(), *ing_)
                      : CompareIngest(ref, *ing_, *bin_);
    if (!diff.ok()) {
      auto fails_at = [&](size_t n) {
        serve::TraceIngestor ing(ProductionIngestOptions());
        serve::TraceBinner bin(opts_.stream.interval_seconds);
        RunProduction(n, &ing, &bin);
        const std::vector<serve::TraceEvent> prefix(events_.begin(),
                                                    events_.begin() + n);
        const ReferenceResult r = RunSequentialReference(prefix, ropts);
        const Status st = fault::Active() ? CheckIngestConservation(n, ing)
                                          : CompareIngest(r, ing, bin);
        return !st.ok();
      };
      const size_t min_len = MinimizeFailingPrefix(events_.size(), fails_at);
      report_.window = FormatEventWindow(events_, min_len);
      return Fail(diff.message() + " (minimized to the first " +
                  std::to_string(min_len) + " of " +
                  std::to_string(events_.size()) + " events)");
    }
    if (!fault::Active()) {
      // Ground-truth reconciliation: every event the stream injected lands in
      // exactly the category it was built for.
      const StreamGroundTruth& t = stream_.truth;
      if (ref.drops.template_id != t.bad_template_events) {
        return Fail("quarantined " + std::to_string(ref.drops.template_id) +
                    " bad-template events, stream injected " +
                    std::to_string(t.bad_template_events));
      }
      if (ref.drops.nonfinite != 0 || ref.drops.negative != 0 ||
          ref.drops.full != 0) {
        return Fail("clean stream hit unexpected drop categories (nonfinite " +
                    std::to_string(ref.drops.nonfinite) + ", negative " +
                    std::to_string(ref.drops.negative) + ", full " +
                    std::to_string(ref.drops.full) + ")");
      }
      const uint64_t skew_outcomes =
          ref.drops.pre_epoch + ref.drops.future + ref.drops.stale;
      if (ref.accepted + skew_outcomes !=
          t.well_formed + t.skewed_events) {
        return Fail("accepted " + std::to_string(ref.accepted) + " + skewed " +
                    std::to_string(skew_outcomes) +
                    " does not reconcile with " +
                    std::to_string(t.well_formed) + " well-formed + " +
                    std::to_string(t.skewed_events) + " skewed events");
      }
    }
    return Status::OK();
  }

  // ---- cluster: sequential AddTrace vs threaded AddTraces batch -----------

  Status ClusterLeg() {
    if (bin_ == nullptr || bin_->template_count() < 2) return Status::OK();
    auto traces = bin_->Traces();
    if (!traces.ok()) {
      return Fail("binner refuses to materialize: " +
                  traces.status().message());
    }
    cluster::DescenderOptions dopts;
    dopts.radius = 6.0;
    dopts.min_size = 2;
    dopts.dtw.window = 4;
    dopts.threads = 1;
    cluster::Descender seq(dopts);
    for (const ts::Series& tr : *traces) {
      auto added = seq.AddTrace(tr);
      if (!added.ok()) {
        return Fail("sequential AddTrace failed: " + added.status().message());
      }
    }
    dopts.threads = 2;
    cluster::Descender batch(dopts);
    Status st = batch.AddTraces(*traces);
    if (!st.ok()) return Fail("batch AddTraces failed: " + st.message());

    const size_t n = traces->size();
    std::vector<int> seq_labels(n);
    std::vector<int> batch_labels(n);
    for (size_t i = 0; i < n; ++i) {
      seq_labels[i] = seq.label(i);
      batch_labels[i] = batch.label(i);
      if (seq.is_core(i) != batch.is_core(i)) {
        return Fail("core flag diverges at trace " + std::to_string(i) +
                    ": sequential " + std::to_string(seq.is_core(i)) +
                    ", batch " + std::to_string(batch.is_core(i)));
      }
    }
    // AddTraces documents label identity with the AddTrace loop; check that
    // first, then the relabel-invariant comparison as the weaker oracle the
    // corpus would fall back to if the contract ever loosened.
    for (size_t i = 0; i < n; ++i) {
      if (seq_labels[i] != batch_labels[i]) {
        return Fail("label diverges at trace " + std::to_string(i) +
                    ": sequential " + std::to_string(seq_labels[i]) +
                    ", batch " + std::to_string(batch_labels[i]));
      }
    }
    std::string mismatch;
    if (!PartitionsEquivalent(seq_labels, batch_labels, &mismatch)) {
      return Fail("partitions not equivalent: " + mismatch);
    }
    return Status::OK();
  }

  // ---- service: full ForecastService with save → load → resume ------------

  serve::ServeOptions MakeServeOptions() const {
    serve::ServeOptions so;
    so.pipeline.clustering.radius = 6.0;
    so.pipeline.clustering.min_size = 2;
    so.pipeline.clustering.dtw.window = 4;
    so.pipeline.clustering.threads = 1;
    so.pipeline.top_k = 3;
    so.pipeline.forecaster.window = 6;
    so.pipeline.forecaster.horizon = 1;
    so.pipeline.forecaster.epochs = 2;  // harness smoke, not accuracy
    so.pipeline.forecaster.batch_size = 8;
    so.queue_capacity = opts_.queue_capacity;
    so.max_templates = opts_.max_templates;
    so.bin_interval_seconds = opts_.stream.interval_seconds;
    so.retrain_interval_seconds = 0.005;
    so.max_lateness_seconds = opts_.max_lateness_seconds;
    so.min_timestamp_seconds = opts_.min_timestamp_seconds;
    so.max_timestamp_seconds = opts_.max_timestamp_seconds;
    so.seed = opts_.stream.seed;
    return so;
  }

  /// Per-publish invariants: generation never goes backwards, no NaN/Inf
  /// escapes the published snapshot.
  Status ServiceInvariants(const serve::ForecastService& svc,
                           uint64_t* last_gen) const {
    const uint64_t gen = svc.generation();
    if (gen < *last_gen) {
      return Fail("snapshot generation went backwards: " +
                  std::to_string(*last_gen) + " -> " + std::to_string(gen));
    }
    *last_gen = gen;
    auto snap = svc.snapshot();
    if (snap == nullptr) return Fail("service published a null snapshot");
    return CheckSnapshotFinite(*snap);
  }

  /// Offers events [begin, end), retraining every `chunk` events and after
  /// the last one; checks invariants after every retrain. Retrain failures
  /// are tolerated (not ignored: invariants still run) only under a fault
  /// storm, where they are the injected behavior.
  Status FeedService(serve::ForecastService* svc, size_t begin, size_t end,
                     size_t chunk, uint64_t* last_gen,
                     uint64_t* offered) const {
    size_t since = 0;
    for (size_t i = begin; i < end; ++i) {
      svc->Offer(events_[i]);
      if (offered != nullptr) ++*offered;
      if (++since >= chunk) {
        since = 0;
        Status st = svc->RetrainOnce();
        if (!st.ok() && !fault::Active()) {
          return Fail("retrain failed without a fault storm: " + st.message());
        }
        DBAUGUR_RETURN_IF_ERROR(ServiceInvariants(*svc, last_gen));
      }
    }
    Status st = svc->RetrainOnce();
    if (!st.ok() && !fault::Active()) {
      return Fail("retrain failed without a fault storm: " + st.message());
    }
    return ServiceInvariants(*svc, last_gen);
  }

  Status ServiceLeg() {
    if (events_.empty()) return Status::OK();
    const serve::ServeOptions so = MakeServeOptions();
    const size_t chunk = std::max<size_t>(1, events_.size() / 6);
    const size_t mid = events_.size() / 2;

    serve::ForecastService svc(so);
    uint64_t last_gen = 0;
    uint64_t offered = 0;
    DBAUGUR_RETURN_IF_ERROR(
        FeedService(&svc, 0, mid, chunk, &last_gen, &offered));
    {
      const serve::ServeStats stats = svc.stats();
      if (stats.events_accepted + stats.events_dropped != offered) {
        return Fail("service conservation: accepted " +
                    std::to_string(stats.events_accepted) + " + dropped " +
                    std::to_string(stats.events_dropped) + " != offered " +
                    std::to_string(offered));
      }
    }

    // Save at the midpoint, load into a second service, then feed both the
    // identical tail with the identical retrain cadence.
    auto blob = svc.Save();
    if (!blob.ok()) {
      if (fault::Active()) return Status::OK();  // injected save failure
      return Fail("Save failed: " + blob.status().message());
    }
    serve::ForecastService restored(so);
    Status load = restored.Load(*blob);
    if (!load.ok()) {
      if (fault::Active()) return Status::OK();  // injected load failure
      return Fail("Load failed: " + load.message());
    }
    uint64_t restored_gen = restored.generation();
    DBAUGUR_RETURN_IF_ERROR(
        FeedService(&svc, mid, events_.size(), chunk, &last_gen, &offered));
    DBAUGUR_RETURN_IF_ERROR(FeedService(&restored, mid, events_.size(), chunk,
                                        &restored_gen, nullptr));
    {
      const serve::ServeStats stats = svc.stats();
      if (stats.events_accepted + stats.events_dropped != offered) {
        return Fail("service conservation after resume: accepted " +
                    std::to_string(stats.events_accepted) + " + dropped " +
                    std::to_string(stats.events_dropped) + " != offered " +
                    std::to_string(offered));
      }
    }

    // Resume equality: an uninterrupted run and a save→load→resume run must
    // serve identical forecasts. Needs a fault-free run, and no stale-class
    // skew in the stream: the ingestor's in-memory lateness reference is
    // deliberately not part of the blob, so bursty-skewed streams may
    // legitimately diverge on post-restore stale drops.
    if (fault::Active() ||
        opts_.stream.profile == StreamProfile::kBurstySkewed) {
      return Status::OK();
    }
    auto a = svc.snapshot();
    auto b = restored.snapshot();
    if (a->generation != b->generation) {
      return Fail("resume generation " + std::to_string(b->generation) +
                  " != uninterrupted " + std::to_string(a->generation));
    }
    if (a->trace_names != b->trace_names) {
      return Fail("resume trace names differ from the uninterrupted run");
    }
    if (a->trace_cluster != b->trace_cluster) {
      return Fail("resume trace->cluster assignment differs from the"
                  " uninterrupted run");
    }
    if (a->trace_proportion != b->trace_proportion) {
      return Fail("resume trace proportions differ from the uninterrupted"
                  " run");
    }
    if (a->clusters.size() != b->clusters.size()) {
      return Fail("resume cluster count " +
                  std::to_string(b->clusters.size()) + " != uninterrupted " +
                  std::to_string(a->clusters.size()));
    }
    for (size_t r = 0; r < a->clusters.size(); ++r) {
      const serve::SnapshotCluster& ca = a->clusters[r];
      const serve::SnapshotCluster& cb = b->clusters[r];
      if (ca.cluster_id != cb.cluster_id || ca.member_count != cb.member_count ||
          ca.degraded != cb.degraded) {
        return Fail("resume cluster rank " + std::to_string(r) +
                    " provenance differs from the uninterrupted run");
      }
      if (ca.volume != cb.volume || ca.next_value != cb.next_value) {
        return Fail("resume cluster rank " + std::to_string(r) +
                    " forecast differs: next " + std::to_string(cb.next_value) +
                    " != " + std::to_string(ca.next_value) + ", volume " +
                    std::to_string(cb.volume) + " != " +
                    std::to_string(ca.volume));
      }
    }
    return Status::OK();
  }

  // ---- sharded: ShardedForecastService vs the single-stream reference -----

  Status ShardedLeg() {
    if (events_.empty()) return Status::OK();
    serve::ShardedServeOptions sso;
    sso.shard = MakeServeOptions();
    sso.shard_count = opts_.service_shards;
    sso.retrain_workers = std::max<size_t>(1, opts_.service_workers);
    sso.retrain_deadline_seconds = opts_.retrain_deadline_seconds;
    sso.retrain_budget = opts_.retrain_budget;
    serve::ShardedForecastService svc(sso);

    // Same cadence as the single-service leg: retrain cycles every `chunk`
    // events, per-shard invariants (generation monotone, snapshot finite)
    // after every cycle.
    const size_t chunk = std::max<size_t>(1, events_.size() / 6);
    std::vector<uint64_t> last_gen(sso.shard_count, 0);
    auto invariants = [&]() -> Status {
      for (size_t s = 0; s < sso.shard_count; ++s) {
        const uint64_t gen = svc.shard(s).generation();
        if (gen < last_gen[s]) {
          return Fail("shard " + std::to_string(s) +
                      " generation went backwards: " +
                      std::to_string(last_gen[s]) + " -> " +
                      std::to_string(gen));
        }
        last_gen[s] = gen;
        auto snap = svc.snapshot(s);
        if (snap == nullptr) {
          return Fail("shard " + std::to_string(s) +
                      " published a null snapshot");
        }
        DBAUGUR_RETURN_IF_ERROR(CheckSnapshotFinite(*snap));
      }
      return Status::OK();
    };
    size_t since = 0;
    for (const serve::TraceEvent& e : events_) {
      svc.Offer(e);
      if (++since >= chunk) {
        since = 0;
        (void)svc.RetrainCycle();
        DBAUGUR_RETURN_IF_ERROR(invariants());
      }
    }
    // Drain to quiescence: the overload controller may shed shards from any
    // one cycle (a bursty stream can grow the backlog long enough to step
    // the ladder up even with an unbounded budget), so one final cycle is
    // not enough for the exact oracle below. With no new traffic the
    // backlog stops growing, the ladder steps back down, and every cycle
    // retrains at least one pending shard — so the loop is bounded.
    for (size_t extra = 0;; ++extra) {
      (void)svc.RetrainCycle();
      DBAUGUR_RETURN_IF_ERROR(invariants());
      bool drained = true;
      for (size_t s = 0; s < sso.shard_count; ++s) {
        if (svc.shard(s).queue_depth() != 0) drained = false;
      }
      if (drained || extra >= 4 + 4 * sso.shard_count) break;
    }

    // Conservation across the router: every offered event accepted or
    // dropped by exactly one shard (holds with or without fault storms).
    uint64_t accounted = 0;
    for (size_t s = 0; s < sso.shard_count; ++s) {
      accounted +=
          svc.shard(s).events_accepted() + svc.shard(s).drop_stats().total();
      // An armed deadline can legitimately cancel a slow (but healthy)
      // retrain on a loaded machine, so the no-failures invariant only
      // applies when neither faults nor a watchdog are in play.
      if (!fault::Active() && opts_.retrain_deadline_seconds <= 0.0 &&
          svc.shard(s).retrains_failed() != 0) {
        return Fail("shard " + std::to_string(s) +
                    " retrain failed without a fault storm: " +
                    svc.stats().last_error);
      }
    }
    if (accounted != events_.size()) {
      return Fail("sharded conservation: shards accounted " +
                  std::to_string(accounted) + " events, offered " +
                  std::to_string(events_.size()));
    }

    // Exact sharded ≡ single-stream differential. Per-shard lateness
    // watermarks legitimately diverge from the global reference once the
    // stream trips the stale cutoff (each shard only sees its own templates'
    // timestamps), so the exact oracle self-gates on stale-free streams;
    // fault storms gate it off entirely.
    const ReferenceOptions ropts{opts_.max_templates,
                                 opts_.max_lateness_seconds,
                                 opts_.min_timestamp_seconds,
                                 opts_.max_timestamp_seconds,
                                 opts_.stream.interval_seconds};
    const ReferenceResult ref = RunSequentialReference(events_, ropts);
    // A per-cycle budget leaves unscheduled shards' queues undrained at the
    // end of the run, so their binned histories legitimately lag the
    // reference — the exact oracle only applies to unbounded budgets.
    if (fault::Active() || opts_.retrain_budget > 0 || ref.drops.stale != 0) {
      return Status::OK();
    }
    std::vector<ShardIngestView> views(sso.shard_count);
    for (size_t s = 0; s < sso.shard_count; ++s) {
      views[s].accepted = svc.shard(s).events_accepted();
      views[s].drops = svc.shard(s).drop_stats();
      views[s].bins = svc.shard(s).BinContents();
    }
    return CompareShardedIngest(ref, views);
  }

  // ---- replay: dbsim execution of the replayable subset, twice ------------

  Status ReplayLeg() {
    const StreamGroundTruth& t = stream_.truth;
    std::vector<trace::LogEntry> log;
    for (const trace::LogEntry& e : parsed_.entries) {
      if (dbsim::ParseQuery(e.sql).ok()) log.push_back(e);
    }
    uint64_t want = 0;
    for (size_t s = 0; s < t.replayable.size(); ++s) {
      if (t.replayable[s]) want += t.template_counts[s];
    }
    if (log.size() != want) {
      return Fail("replayable subset has " + std::to_string(log.size()) +
                  " statements, ground truth expects " + std::to_string(want));
    }
    if (log.empty()) return Status::OK();
    std::stable_sort(log.begin(), log.end(),
                     [](const trace::LogEntry& a, const trace::LogEntry& b) {
                       return a.timestamp < b.timestamp;
                     });

    dbsim::BusTrackerDbOptions dbo;
    dbo.positions = 2000;
    dbo.schedules = 3000;
    dbo.tickets = 2000;
    dbo.trips = 1500;
    auto db1 = dbsim::MakeBusTrackerDatabase(dbo);
    auto db2 = dbsim::MakeBusTrackerDatabase(dbo);
    if (!db1.ok() || !db2.ok()) {
      return Fail("MakeBusTrackerDatabase failed: " +
                  (db1.ok() ? db2.status() : db1.status()).message());
    }
    const dbsim::ReplayOptions ropts;
    auto s1 = dbsim::ReplayWorkload(&*db1, log, {}, ropts);
    if (!s1.ok()) return Fail("replay failed: " + s1.status().message());
    auto s2 = dbsim::ReplayWorkload(&*db2, log, {}, ropts);
    if (!s2.ok()) return Fail("second replay failed: " + s2.status().message());
    if (s1->size() != s2->size()) {
      return Fail("replay window counts differ: " + std::to_string(s1->size()) +
                  " vs " + std::to_string(s2->size()));
    }
    size_t replayed = 0;
    for (size_t w = 0; w < s1->size(); ++w) {
      const dbsim::WindowStats& wa = (*s1)[w];
      const dbsim::WindowStats& wb = (*s2)[w];
      replayed += wa.queries;
      if (wa.start != wb.start || wa.queries != wb.queries ||
          wa.demand_pages != wb.demand_pages ||
          wa.throughput_qps != wb.throughput_qps ||
          wa.avg_latency_ms != wb.avg_latency_ms) {
        return Fail("replay window " + std::to_string(w) +
                    " differs between identically-seeded databases");
      }
      if (!std::isfinite(wa.throughput_qps) ||
          !std::isfinite(wa.avg_latency_ms) ||
          !std::isfinite(wa.demand_pages)) {
        return Fail("replay window " + std::to_string(w) +
                    " has non-finite stats");
      }
    }
    if (replayed != log.size()) {
      return Fail("replay executed " + std::to_string(replayed) +
                  " queries, the log holds " + std::to_string(log.size()));
    }
    return Status::OK();
  }

  // ---- migrate: deterministic rebalancing over the binned total trace -----

  Status MigrateLeg() {
    if (bin_ == nullptr || bin_->template_count() == 0) return Status::OK();
    auto traces = bin_->Traces();
    if (!traces.ok()) {
      return Fail("binner refuses to materialize for migrate: " +
                  traces.status().message());
    }
    const size_t len = (*traces)[0].size();
    if (len < 8) return Status::OK();
    std::vector<double> total(len, 0.0);
    for (const ts::Series& tr : *traces) {
      for (size_t b = 0; b < len; ++b) total[b] += tr[b];
    }
    const ts::Series base((*traces)[0].start(), opts_.stream.interval_seconds,
                          std::move(total), "total");
    const std::vector<ts::Series> regions =
        migrate::MakeRotatingRegionLoads(base, 4, 0.5, 2.0);
    const migrate::RegionPredictor perfect =
        [&regions](size_t region, size_t period) -> StatusOr<double> {
      return regions[region][period];
    };
    auto r1 = migrate::SimulateMigration(regions, 2, len / 2, perfect, 2);
    if (!r1.ok()) return Fail("migration failed: " + r1.status().message());
    auto r2 = migrate::SimulateMigration(regions, 2, len / 2, perfect, 2);
    if (!r2.ok()) {
      return Fail("second migration failed: " + r2.status().message());
    }
    if (r1->size() != r2->size()) {
      return Fail("migration period counts differ: " +
                  std::to_string(r1->size()) + " vs " +
                  std::to_string(r2->size()));
    }
    for (size_t p = 0; p < r1->size(); ++p) {
      if ((*r1)[p] != (*r2)[p]) {
        return Fail("migration balance diverges at period " +
                    std::to_string(p) + ": " + std::to_string((*r1)[p]) +
                    " vs " + std::to_string((*r2)[p]));
      }
      if (!std::isfinite((*r1)[p]) || (*r1)[p] < 0.0) {
        return Fail("migration balance at period " + std::to_string(p) +
                    " is not a finite non-negative number: " +
                    std::to_string((*r1)[p]));
      }
    }
    return Status::OK();
  }

  ChaosOptions opts_;
  ChaosReport report_;
  GeneratedStream stream_;
  trace::ParsedQueryLog parsed_;
  std::vector<serve::TraceEvent> events_;
  std::unique_ptr<serve::TraceIngestor> ing_;
  std::unique_ptr<serve::TraceBinner> bin_;
};

}  // namespace

ChaosReport RunChaos(const ChaosOptions& opts) {
  return ChaosRun(opts).Run();
}

}  // namespace dbaugur::chaos

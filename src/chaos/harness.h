// End-to-end chaos harness: generates a seeded grammar stream
// (chaos/stream_gen.h), drives it through the full pipeline — raw text
// through the log parser and SQL2Template, pre-parsed events through the
// production serve ingest, clustering, optionally the whole ForecastService
// (with save → load → resume) and the dbsim replay / migrate consumers — and
// checks every leg against ground truth and the differential oracles
// (chaos/oracle.h).
//
// Any failure yields a ChaosReport whose repro line ("--seed=N --profile=P")
// regenerates the identical stream, plus — for event-differential failures —
// a minimized failing prefix and the window of events around the divergence.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chaos/stream_gen.h"
#include "serve/ingestor.h"

namespace dbaugur::chaos {

/// One chaos run's configuration.
struct ChaosOptions {
  StreamOptions stream;
  /// Also run the ForecastService leg: chunked ingest with periodic retrains,
  /// snapshot-finiteness + generation-monotonicity invariants, and the
  /// save → load → resume equality oracle.
  bool full_service = false;
  /// Also run the dbsim replay + migrate legs over the replayable subset.
  bool replay = false;
  /// When > 1, also run the sharded-service leg: the identical event stream
  /// through a ShardedForecastService with this many shards, checked against
  /// the single-stream sequential reference (routing, union of per-shard
  /// binned histories, drop-class conservation — chaos/oracle.h's
  /// CompareShardedIngest) plus per-shard snapshot invariants.
  size_t service_shards = 1;
  /// Retrain workers for the sharded leg (>= 1). With > 1, scheduled shards
  /// retrain concurrently; the leg's invariants (generation monotonicity,
  /// snapshot finiteness, router conservation) must hold at any worker count.
  size_t service_workers = 1;
  /// Per-retrain watchdog deadline for the sharded leg; <= 0 disables. Arm
  /// together with a `serve.retrain.hang` fault storm to exercise the
  /// cancel → degraded-stale → recover path under chaos streams.
  double retrain_deadline_seconds = 0.0;
  /// Per-cycle retrain budget for the sharded leg (0 = unbounded). A small
  /// budget plus a steady stream keeps the scheduler backlogged, driving the
  /// overload controller through its degradation ladder.
  size_t retrain_budget = 0;
  /// Production ingest settings (mirrored into the sequential reference).
  size_t queue_capacity = 1 << 15;
  size_t max_templates = 512;
  int64_t max_lateness_seconds = 6 * 3600;
  int64_t min_timestamp_seconds = 0;
  int64_t max_timestamp_seconds = 4102444800;
};

/// Outcome of one chaos run.
struct ChaosReport {
  bool ok = true;
  std::string stage;    ///< First failing stage name; empty when ok.
  std::string failure;  ///< First failure description; empty when ok.
  std::string repro;    ///< One-line reproducer: "--seed=N --profile=P ...".
  std::string window;   ///< Minimized event window (events stage only).
  size_t events = 0;    ///< Parsed events the run ingested (throughput
                        ///< accounting for the soak/smoke perf net).

  /// One-line success, or a multi-line failure block with the repro line.
  std::string Summary() const;
};

/// Runs the full harness once. Deterministic in ChaosOptions (and in the
/// armed fault spec, whose site counters are process-global: arm the same
/// spec from a fresh Configure to reproduce a fault-storm run).
ChaosReport RunChaos(const ChaosOptions& opts);

/// Smallest prefix length in [1, n] for which fails_at() returns true, given
/// that fails_at(n) is true. Binary-searches assuming monotonicity (a failing
/// prefix stays failing as it grows), then verifies the answer is a true
/// boundary; if the predicate turns out non-monotone, falls back to a linear
/// scan from the front. fails_at is invoked O(log n) times (O(n) fallback).
size_t MinimizeFailingPrefix(size_t n,
                             const std::function<bool(size_t)>& fails_at);

/// Renders the last `max_window` events of the prefix [0, end) — the window
/// a minimized divergence points at — one event per line.
std::string FormatEventWindow(const std::vector<serve::TraceEvent>& events,
                              size_t end, size_t max_window = 8);

}  // namespace dbaugur::chaos

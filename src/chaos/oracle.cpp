#include "chaos/oracle.h"

#include <cmath>
#include <string>

#include "common/hashing.h"

namespace dbaugur::chaos {

namespace {

// Independent floor division (do not share the production helper: the whole
// point of a differential oracle is two implementations of the contract).
int64_t RefFloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

Status Mismatch(const std::string& what) {
  return Status::Internal("differential mismatch: " + what);
}

}  // namespace

ReferenceResult RunSequentialReference(
    const std::vector<serve::TraceEvent>& events,
    const ReferenceOptions& opts) {
  ReferenceResult r;
  int64_t max_ts = 0;
  bool any_accepted = false;
  for (const serve::TraceEvent& e : events) {
    ++r.offered;
    if (e.template_id >= opts.max_templates) {
      ++r.drops.template_id;
      continue;
    }
    if (!std::isfinite(e.count)) {
      ++r.drops.nonfinite;
      continue;
    }
    if (e.count < 0.0) {
      ++r.drops.negative;
      continue;
    }
    if (opts.min_timestamp_seconds >= 0 &&
        e.timestamp < opts.min_timestamp_seconds) {
      ++r.drops.pre_epoch;
      continue;
    }
    if (opts.max_timestamp_seconds >= 0 &&
        e.timestamp > opts.max_timestamp_seconds) {
      ++r.drops.future;
      continue;
    }
    if (opts.max_lateness_seconds >= 0 && any_accepted) {
      // Overflow-aware cutoff, mirrored from the contract: a wrapped
      // subtraction means nothing can be stale.
      int64_t cutoff = 0;
      if (!__builtin_sub_overflow(max_ts, opts.max_lateness_seconds,
                                  &cutoff) &&
          e.timestamp < cutoff) {
        ++r.drops.stale;
        continue;
      }
    }
    ++r.accepted;
    if (!any_accepted || e.timestamp > max_ts) max_ts = e.timestamp;
    any_accepted = true;
    int64_t bin = RefFloorDiv(e.timestamp, opts.interval_seconds);
    r.bins[e.template_id][bin] += e.count;
    if (!r.any) {
      r.any = true;
      r.min_bin = r.max_bin = bin;
    } else {
      if (bin < r.min_bin) r.min_bin = bin;
      if (bin > r.max_bin) r.max_bin = bin;
    }
  }
  return r;
}

Status CompareIngest(const ReferenceResult& ref,
                     const serve::TraceIngestor& ingestor,
                     const serve::TraceBinner& binner) {
  const serve::IngestDropStats got = ingestor.drop_stats();
  if (got.full != 0 || ref.drops.full != 0) {
    return Mismatch("queue-full drops in a differential run (production " +
                    std::to_string(got.full) +
                    ") — drain cadence too slow for the queue capacity");
  }
  if (ingestor.accepted() != ref.accepted) {
    return Mismatch("accepted " + std::to_string(ingestor.accepted()) +
                    " != reference " + std::to_string(ref.accepted));
  }
  auto check_drop = [&](const char* name, uint64_t got_n,
                        uint64_t want) -> Status {
    if (got_n != want) {
      return Mismatch(std::string("drop[") + name + "] " +
                      std::to_string(got_n) + " != reference " +
                      std::to_string(want));
    }
    return Status::OK();
  };
  DBAUGUR_RETURN_IF_ERROR(
      check_drop("template_id", got.template_id, ref.drops.template_id));
  DBAUGUR_RETURN_IF_ERROR(
      check_drop("nonfinite", got.nonfinite, ref.drops.nonfinite));
  DBAUGUR_RETURN_IF_ERROR(
      check_drop("negative", got.negative, ref.drops.negative));
  DBAUGUR_RETURN_IF_ERROR(check_drop("stale", got.stale, ref.drops.stale));
  DBAUGUR_RETURN_IF_ERROR(
      check_drop("pre_epoch", got.pre_epoch, ref.drops.pre_epoch));
  DBAUGUR_RETURN_IF_ERROR(check_drop("future", got.future, ref.drops.future));

  if (!ref.any) {
    if (binner.template_count() != 0) {
      return Mismatch("binner holds " +
                      std::to_string(binner.template_count()) +
                      " templates, reference accepted nothing");
    }
    return Status::OK();
  }
  auto traces = binner.Traces();
  if (!traces.ok()) {
    return Mismatch("binner refuses to materialize: " +
                    traces.status().message());
  }
  if (traces->size() != ref.bins.size()) {
    return Mismatch("binner has " + std::to_string(traces->size()) +
                    " templates, reference " +
                    std::to_string(ref.bins.size()));
  }
  const size_t len = static_cast<size_t>(ref.max_bin - ref.min_bin + 1);
  // Both sides iterate template ids in ascending order (std::map).
  size_t i = 0;
  for (const auto& [tid, tbins] : ref.bins) {
    const ts::Series& got_trace = (*traces)[i++];
    const std::string want_name = "template" + std::to_string(tid);
    if (got_trace.name() != want_name) {
      return Mismatch("trace " + std::to_string(i - 1) + " named '" +
                      got_trace.name() + "', reference '" + want_name + "'");
    }
    if (got_trace.size() != len ||
        got_trace.start() != ref.min_bin * binner.interval_seconds()) {
      return Mismatch(want_name + ": shape/start differs (got " +
                      std::to_string(got_trace.size()) + " bins from " +
                      std::to_string(got_trace.start()) + ")");
    }
    for (size_t b = 0; b < len; ++b) {
      const auto it = tbins.find(ref.min_bin + static_cast<int64_t>(b));
      const double want = it == tbins.end() ? 0.0 : it->second;
      if (got_trace[b] != want) {
        return Mismatch(want_name + " bin " + std::to_string(b) + ": " +
                        std::to_string(got_trace[b]) + " != reference " +
                        std::to_string(want));
      }
    }
  }
  return Status::OK();
}

Status CheckIngestConservation(uint64_t offered,
                               const serve::TraceIngestor& ingestor) {
  const uint64_t accepted = ingestor.accepted();
  const uint64_t dropped = ingestor.drop_stats().total();
  if (accepted + dropped != offered) {
    return Mismatch("conservation: accepted " + std::to_string(accepted) +
                    " + dropped " + std::to_string(dropped) +
                    " != offered " + std::to_string(offered));
  }
  return Status::OK();
}

Status CompareShardedIngest(const ReferenceResult& ref,
                            const std::vector<ShardIngestView>& shards) {
  uint64_t accepted = 0;
  serve::IngestDropStats drops;
  std::map<uint32_t, std::map<int64_t, double>> merged;
  for (size_t s = 0; s < shards.size(); ++s) {
    const ShardIngestView& v = shards[s];
    accepted += v.accepted;
    drops.full += v.drops.full;
    drops.template_id += v.drops.template_id;
    drops.nonfinite += v.drops.nonfinite;
    drops.negative += v.drops.negative;
    drops.stale += v.drops.stale;
    drops.pre_epoch += v.drops.pre_epoch;
    drops.future += v.drops.future;
    for (const auto& [tmpl, bins] : v.bins) {
      const size_t owner = ShardOfKey(tmpl, shards.size());
      if (owner != s) {
        return Mismatch("template " + std::to_string(tmpl) +
                        " binned on shard " + std::to_string(s) +
                        ", the routing hash names shard " +
                        std::to_string(owner));
      }
      if (!merged.emplace(tmpl, bins).second) {
        return Mismatch("template " + std::to_string(tmpl) +
                        " binned on more than one shard");
      }
    }
  }
  if (drops.full != 0 || ref.drops.full != 0) {
    return Mismatch("queue-full drops in a sharded differential run (" +
                    std::to_string(drops.full) +
                    ") — drain cadence too slow for the queue capacity");
  }
  if (ref.drops.stale != 0 || drops.stale != 0) {
    return Mismatch(
        "stale drops in a sharded differential run (reference " +
        std::to_string(ref.drops.stale) + ", shards " +
        std::to_string(drops.stale) +
        ") — per-shard lateness watermarks make exact equality undefined");
  }
  if (accepted != ref.accepted) {
    return Mismatch("sharded accepted sum " + std::to_string(accepted) +
                    " != reference " + std::to_string(ref.accepted));
  }
  auto check_drop = [](const char* name, uint64_t got_n,
                       uint64_t want) -> Status {
    if (got_n != want) {
      return Mismatch(std::string("sharded drop[") + name + "] sum " +
                      std::to_string(got_n) + " != reference " +
                      std::to_string(want));
    }
    return Status::OK();
  };
  DBAUGUR_RETURN_IF_ERROR(
      check_drop("template_id", drops.template_id, ref.drops.template_id));
  DBAUGUR_RETURN_IF_ERROR(
      check_drop("nonfinite", drops.nonfinite, ref.drops.nonfinite));
  DBAUGUR_RETURN_IF_ERROR(
      check_drop("negative", drops.negative, ref.drops.negative));
  DBAUGUR_RETURN_IF_ERROR(
      check_drop("pre_epoch", drops.pre_epoch, ref.drops.pre_epoch));
  DBAUGUR_RETURN_IF_ERROR(check_drop("future", drops.future, ref.drops.future));
  if (merged != ref.bins) {
    // Name the first diverging template for the repro hunt.
    for (const auto& [tmpl, bins] : ref.bins) {
      auto it = merged.find(tmpl);
      if (it == merged.end()) {
        return Mismatch("template " + std::to_string(tmpl) +
                        " in the reference but on no shard");
      }
      if (it->second != bins) {
        return Mismatch("template " + std::to_string(tmpl) +
                        " binned history diverges between its shard and the "
                        "reference");
      }
    }
    return Mismatch("sharded union holds " + std::to_string(merged.size()) +
                    " templates, reference " + std::to_string(ref.bins.size()));
  }
  return Status::OK();
}

Status CheckSnapshotFinite(const serve::ServiceSnapshot& snap) {
  for (size_t c = 0; c < snap.clusters.size(); ++c) {
    const serve::SnapshotCluster& cl = snap.clusters[c];
    if (!std::isfinite(cl.next_value)) {
      return Status::Internal("snapshot cluster rank " + std::to_string(c) +
                              " forecast is not finite");
    }
    if (!std::isfinite(cl.volume)) {
      return Status::Internal("snapshot cluster rank " + std::to_string(c) +
                              " volume is not finite");
    }
    for (size_t v = 0; v < cl.representative.size(); ++v) {
      if (!std::isfinite(cl.representative[v])) {
        return Status::Internal("snapshot cluster rank " + std::to_string(c) +
                                " representative[" + std::to_string(v) +
                                "] is not finite");
      }
    }
  }
  for (size_t t = 0; t < snap.trace_proportion.size(); ++t) {
    const double p = snap.trace_proportion[t];
    if (!std::isfinite(p) || p < 0.0 || p > 1.0 + 1e-9) {
      return Status::Internal("snapshot trace proportion " +
                              std::to_string(t) + " out of [0,1]: " +
                              std::to_string(p));
    }
  }
  return Status::OK();
}

}  // namespace dbaugur::chaos

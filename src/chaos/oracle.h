// Differential oracles for the chaos harness.
//
// RunSequentialReference is a deliberately independent, single-threaded,
// fault-free reimplementation of the serve ingest semantics (validation
// order, quarantine bounds, lateness cutoff, epoch-origin binning). The
// production path — serve::TraceIngestor + serve::TraceBinner, with their
// locks, atomics and fault hooks — must agree with it event for event on the
// identical stream; CompareIngest checks counters and binned totals exactly.
//
// Under an armed DBAUGUR_FAULT_SPEC storm exact equality is forfeit (an
// injected corruption legitimately moves events between categories), so the
// harness falls back to the conservation law every configuration must obey:
// offered == accepted + sum(drop categories). CheckSnapshotFinite is the
// "no NaN/Inf escapes a snapshot" invariant.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/ingestor.h"
#include "serve/snapshot.h"

namespace dbaugur::chaos {

/// Ingest semantics mirrored by the reference (see serve::IngestorOptions).
/// No queue capacity: the reference consumer is always caught up, so a
/// production run being compared must drain often enough to never drop on a
/// full queue.
struct ReferenceOptions {
  size_t max_templates = 512;
  int64_t max_lateness_seconds = 6 * 3600;
  int64_t min_timestamp_seconds = 0;
  int64_t max_timestamp_seconds = 4102444800;
  int64_t interval_seconds = 600;
};

/// What the reference computed from an event stream.
struct ReferenceResult {
  uint64_t offered = 0;
  uint64_t accepted = 0;
  serve::IngestDropStats drops;  ///< Per-category quarantine counts.
  bool any = false;              ///< Any event accepted (bins valid below).
  int64_t min_bin = 0;
  int64_t max_bin = 0;
  /// template id -> (epoch-origin bin index -> summed count).
  std::map<uint32_t, std::map<int64_t, double>> bins;
};

/// Folds `events` in order through the reference semantics.
ReferenceResult RunSequentialReference(
    const std::vector<serve::TraceEvent>& events, const ReferenceOptions& opts);

/// Exact differential check: the production ingestor's counters and the
/// production binner's materialized traces must match the reference —
/// accepted count, every drop category, template set, bin range, and every
/// binned value. The first divergence found is described in the error.
Status CompareIngest(const ReferenceResult& ref,
                     const serve::TraceIngestor& ingestor,
                     const serve::TraceBinner& binner);

/// Conservation law that must hold with or without fault storms:
/// offered == accepted + total drops (every event is accounted exactly once).
Status CheckIngestConservation(uint64_t offered,
                               const serve::TraceIngestor& ingestor);

/// One shard's ingest outcome, sampled after its queue fully drained.
struct ShardIngestView {
  uint64_t accepted = 0;
  serve::IngestDropStats drops;
  /// template id -> (bin -> summed count); ServiceShard::BinContents().
  std::map<uint32_t, std::map<int64_t, double>> bins;
};

/// Exact differential check for a sharded run against the single-stream
/// reference: every template must live on exactly the shard the routing hash
/// names, the union of per-shard binned histories must equal the reference's
/// bins value-for-value, the accepted counts must sum to the reference's, and
/// every drop class must sum to the reference's class count. Valid only when
/// per-shard state cannot legitimately diverge from the global view: no fault
/// storm, no queue-full drops, and no stale-class drops (each shard tracks
/// its own lateness watermark over the subset of events it sees, so a stream
/// that trips the global stale cutoff may be accepted by a lagging shard —
/// callers gate on ref.drops.stale == 0).
Status CompareShardedIngest(const ReferenceResult& ref,
                            const std::vector<ShardIngestView>& shards);

/// No NaN/Inf escapes a published snapshot: cluster forecasts, volumes,
/// representatives and trace proportions must all be finite (and proportions
/// within [0, 1]).
Status CheckSnapshotFinite(const serve::ServiceSnapshot& snap);

}  // namespace dbaugur::chaos

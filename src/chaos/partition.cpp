#include "chaos/partition.h"

#include <map>

namespace dbaugur::chaos {

bool PartitionsEquivalent(const std::vector<int>& a, const std::vector<int>& b,
                          std::string* mismatch) {
  if (a.size() != b.size()) {
    if (mismatch != nullptr) {
      *mismatch = "size mismatch: " + std::to_string(a.size()) + " vs " +
                  std::to_string(b.size());
    }
    return false;
  }
  // A bijection must exist in both directions: each a-label maps to exactly
  // one b-label and vice versa. One forward pass with two maps finds the
  // first witness index on failure.
  std::map<int, int> fwd;  // a label -> b label
  std::map<int, int> rev;  // b label -> a label
  for (size_t i = 0; i < a.size(); ++i) {
    auto [fit, finserted] = fwd.emplace(a[i], b[i]);
    if (!finserted && fit->second != b[i]) {
      if (mismatch != nullptr) {
        *mismatch = "label " + std::to_string(a[i]) +
                    " in a maps to both b-labels " +
                    std::to_string(fit->second) + " and " +
                    std::to_string(b[i]) + " (index " + std::to_string(i) +
                    ")";
      }
      return false;
    }
    auto [rit, rinserted] = rev.emplace(b[i], a[i]);
    if (!rinserted && rit->second != a[i]) {
      if (mismatch != nullptr) {
        *mismatch = "label " + std::to_string(b[i]) +
                    " in b maps to both a-labels " +
                    std::to_string(rit->second) + " and " +
                    std::to_string(a[i]) + " (index " + std::to_string(i) +
                    ")";
      }
      return false;
    }
  }
  return true;
}

}  // namespace dbaugur::chaos

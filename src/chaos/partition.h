// Relabel-invariant comparison of cluster partitions.
//
// Two clusterings of the same traces are equivalent when they induce the
// same partition, even if the integer labels differ (online insertion and
// the heuristic Ball-Tree index may number clusters in a different order
// than a batch run). The chaos differential oracle and the cluster batch
// tests share this one comparator so "same partition" means the same thing
// everywhere.

#pragma once

#include <string>
#include <vector>

namespace dbaugur::chaos {

/// True iff `a` and `b` describe the same partition up to a relabeling —
/// i.e. there is a bijection f with f(a[i]) == b[i] for every i. Sizes must
/// match. On failure, when `mismatch` is non-null it receives a one-line
/// description of the first witness found (size mismatch, or a pair of
/// indices the two partitions disagree about).
bool PartitionsEquivalent(const std::vector<int>& a, const std::vector<int>& b,
                          std::string* mismatch = nullptr);

}  // namespace dbaugur::chaos

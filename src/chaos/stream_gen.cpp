#include "chaos/stream_gen.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/contracts.h"
#include "common/rng.h"
#include "sql/templater.h"

namespace dbaugur::chaos {

const char* ProfileName(StreamProfile profile) {
  switch (profile) {
    case StreamProfile::kSteady:
      return "steady";
    case StreamProfile::kTemplateChurn:
      return "template-churn";
    case StreamProfile::kBurstySkewed:
      return "bursty-skewed";
    case StreamProfile::kMalformedHeavy:
      return "malformed-heavy";
  }
  return "unknown";
}

StatusOr<StreamProfile> ParseProfile(const std::string& name) {
  for (StreamProfile p : AllProfiles()) {
    if (name == ProfileName(p)) return p;
  }
  return Status::InvalidArgument("unknown stream profile: " + name);
}

std::vector<StreamProfile> AllProfiles() {
  return {StreamProfile::kSteady, StreamProfile::kTemplateChurn,
          StreamProfile::kBurstySkewed, StreamProfile::kMalformedHeavy};
}

namespace {

// Gaussian bump on the day fraction, wrapping midnight (same shape as the
// workloads::BusTrackerTemplates diurnal rates).
double Bump(double day_frac, double center, double sd) {
  double d = day_frac - center;
  if (d > 0.5) d -= 1.0;
  if (d < -0.5) d += 1.0;
  return std::exp(-d * d / (2.0 * sd * sd));
}

std::string Int(Rng& rng, int64_t lo, int64_t hi) {
  return std::to_string(rng.UniformInt(lo, hi));
}

// IN-list with churning arity in [1, max_len] — fresh literals each render.
std::string InList(Rng& rng, int64_t lo, int64_t hi, size_t max_len) {
  int64_t len = rng.UniformInt(1, static_cast<int64_t>(max_len));
  std::string out = "(";
  for (int64_t i = 0; i < len; ++i) {
    if (i > 0) out += ", ";
    out += Int(rng, lo, hi);
  }
  out += ")";
  return out;
}

// One grammar slot: a SQL statement family over the BusTracker schema whose
// structure is fixed (so every render canonicalizes to one template) while
// its literals — and for IN slots, the list arity — churn per render.
struct SlotSpec {
  const char* name;
  /// Statements of this slot parse under dbsim's restricted SQL (single
  /// table, conjunctive int/float predicates) and execute against
  /// MakeBusTrackerDatabase. The harness cross-checks this flag against
  /// dbsim::ParseQuery on every rendered statement.
  bool replayable;
  double rate_scale;   ///< Multiplier on StreamOptions::mean_rate.
  double bump_center;  ///< Diurnal peak as a day fraction; < 0 = flat rate.
  std::string (*make)(Rng& rng, size_t in_max);
};

const std::vector<SlotSpec>& Catalog() {
  static const std::vector<SlotSpec> kCatalog = {
      {"positions_by_route", true, 1.0, 0.33,
       [](Rng& rng, size_t) {
         return "SELECT * FROM positions WHERE route_id = " + Int(rng, 1, 400);
       }},
      {"ticket_prices", true, 0.8, 0.75,
       [](Rng& rng, size_t) {
         return "SELECT price, seats FROM tickets WHERE trip_id = " +
                Int(rng, 1, 2000);
       }},
      {"position_update", true, 0.7, -1.0,
       [](Rng& rng, size_t) {
         return "UPDATE positions SET lat = " +
                std::to_string(rng.Uniform(40.0, 41.0)) + ", lon = " +
                std::to_string(rng.Uniform(-80.1, -79.8)) +
                " WHERE bus_id = " + Int(rng, 1, 1200);
       }},
      {"departures_range", true, 0.6, 0.5,
       [](Rng& rng, size_t) {
         int64_t start = rng.UniformInt(0, 80000);
         return "SELECT * FROM trips WHERE depart_time > " +
                std::to_string(start) + " AND depart_time < " +
                std::to_string(start + 3600);
       }},
      {"schedules_in_stops", false, 0.9, 0.4,
       [](Rng& rng, size_t in_max) {
         return "SELECT * FROM schedules WHERE stop_id IN " +
                InList(rng, 1, 5000, in_max);
       }},
      {"tickets_in_trips", false, 0.5, 0.7,
       [](Rng& rng, size_t in_max) {
         return "SELECT trip_id FROM tickets WHERE trip_id IN " +
                InList(rng, 1, 2000, in_max) + " AND price < " +
                Int(rng, 5, 80);
       }},
      {"positions_page", false, 0.6, 0.3,
       [](Rng& rng, size_t) {
         return "SELECT * FROM positions WHERE route_id = " + Int(rng, 1, 400) +
                " ORDER BY bus_id LIMIT " + Int(rng, 10, 200);
       }},
      {"rider_search", false, 0.4, 0.55,
       [](Rng& rng, size_t) {
         // String-literal churn, sometimes with a ''-escaped quote.
         std::string who = rng.Bernoulli(0.3) ? "o''brien-" + Int(rng, 1, 99)
                                              : "rider-" + Int(rng, 1, 500);
         return "SELECT * FROM riders WHERE name LIKE '" + who + "%'";
       }},
      {"ticket_insert", false, 0.5, -1.0,
       [](Rng& rng, size_t) {
         return "INSERT INTO tickets VALUES (" + Int(rng, 2001, 4000) + ", " +
                std::to_string(rng.Uniform(5.0, 80.0)) + ", " +
                Int(rng, 0, 60) + ")";
       }},
      {"schedule_cleanup", false, 0.3, 0.1,
       [](Rng& rng, size_t) {
         return "DELETE FROM schedules WHERE arrival < " + Int(rng, 0, 86400);
       }},
      {"price_histogram", false, 0.4, 0.5,
       [](Rng& rng, size_t) {
         int64_t lo = rng.UniformInt(0, 40);
         return "SELECT COUNT(*) FROM tickets WHERE price BETWEEN " +
                std::to_string(lo) + " AND " + std::to_string(lo + 20);
       }},
      {"position_scan_or", false, 0.3, 0.6,
       [](Rng& rng, size_t) {
         // Disjunction keeps this outside dbsim's conjunctive subset; the
         // trailing comment exercises comment stripping in templating.
         return "SELECT bus_id FROM positions WHERE lat > " +
                std::to_string(rng.Uniform(40.0, 41.0)) + " OR lon < " +
                std::to_string(rng.Uniform(-80.1, -79.8)) +
                " -- hot path probe";
       }},
  };
  return kCatalog;
}

// Guaranteed "no SQL after timestamp": a single token survives trimming.
std::string MakeNoSqlLine(Rng& rng, ts::Timestamp ts) {
  switch (rng.UniformInt(0, 2)) {
    case 0:
      return std::to_string(ts);  // bare timestamp, statement truncated away
    case 1:
      return "####" + Int(rng, 0, 999);  // one junk token
    default:
      return std::to_string(ts) + "\t";  // trailing tab is trimmed
  }
}

// Guaranteed "bad timestamp": neither one- nor two-field prefix parses.
std::string MakeBadTimestampLine(Rng& rng) {
  switch (rng.UniformInt(0, 3)) {
    case 0:
      return "not-a-time SELECT * FROM positions WHERE route_id = " +
             Int(rng, 1, 400);
    case 1:
      // Digit string overflowing int64: must reject cleanly, never throw.
      return "99999999999999999999999 SELECT * FROM positions";
    case 2:
      return std::string("\x01\x02") + " SELECT 1";  // control bytes
    default:
      return "13:37 late SELECT * FROM trips";  // two unparseable fields
  }
}

// A statement the tokenizer must reject (the *line* still parses).
std::string MakeBadStatementSql(Rng& rng) {
  switch (rng.UniformInt(0, 4)) {
    case 0:
      return "SELECT * FROM tickets WHERE note = 'truncat";  // cut in string
    case 1:
      return "SELECT * FROM trips /* cut mid-comment";
    case 2:
      return "SELECT @@rowcount FROM positions";  // unexpected character
    case 3: {
      std::string s = "SELECT ";
      s += '\0';  // embedded NUL from a torn write
      s += "FROM tickets";
      return s;
    }
    default: {
      std::string s = "SELECT * FROM tickets WHERE note = 'a";
      s += '\0';  // NUL smuggled inside a string literal
      s += "b'";
      return s;
    }
  }
}

// A clock-skewed event timestamp. Which quarantine counter (pre_epoch,
// future, stale) — or, for the mildly-stale case early in the stream, which
// acceptance — results is decided by the oracle's sequential reference, not
// here: the generator only promises the value is skewed.
ts::Timestamp SkewedTimestamp(Rng& rng, ts::Timestamp now) {
  switch (rng.UniformInt(0, 6)) {
    case 0:
      return std::numeric_limits<int64_t>::min();
    case 1:
      return std::numeric_limits<int64_t>::min() + 3;
    case 2:
      return -1;
    case 3:
      return std::numeric_limits<int64_t>::max();
    case 4:
      return std::numeric_limits<int64_t>::max() - 5;
    case 5:
      return 4102444801;  // one past the default far-future bound
    default:
      return now - 30 * 86400;  // a month behind the stream clock
  }
}

}  // namespace

std::string GeneratedStream::Text() const {
  std::string out;
  for (const StreamItem& item : items) {
    if (item.line.empty()) continue;
    out += item.line;
    out += '\n';
  }
  return out;
}

GeneratedStream GenerateStream(const StreamOptions& opts) {
  DBAUGUR_CHECK(opts.bins >= 1, "GenerateStream needs bins >= 1");
  DBAUGUR_CHECK(opts.interval_seconds > 0,
                "GenerateStream interval_seconds must be positive, got ",
                opts.interval_seconds);
  DBAUGUR_CHECK(opts.templates >= 1, "GenerateStream needs templates >= 1");
  const std::vector<SlotSpec>& catalog = Catalog();
  const size_t slots = std::min(opts.templates, catalog.size());
  const size_t in_max =
      opts.profile == StreamProfile::kTemplateChurn ? 200 : 8;

  GeneratedStream out;
  out.opts = opts;
  StreamGroundTruth& truth = out.truth;

  // Canonical template per slot from a sample render: placeholdering makes
  // the text independent of the literals (and IN-list arity) drawn.
  truth.template_text.resize(slots);
  truth.replayable.resize(slots);
  truth.template_counts.assign(slots, 0);
  for (size_t s = 0; s < slots; ++s) {
    Rng sample_rng(opts.seed ^ (0x5EED0000ULL + s));
    auto tmpl = sql::ToTemplate(catalog[s].make(sample_rng, in_max));
    DBAUGUR_CHECK(tmpl.ok(), "chaos catalog slot ", s,
                  " does not template: ", tmpl.status().message());
    truth.template_text[s] = *tmpl;
    truth.replayable[s] = catalog[s].replayable;
  }

  Rng rng(opts.seed * 0x9E3779B97F4A7C15ULL +
          static_cast<uint64_t>(opts.profile) + 1);

  // Birth/death schedules: under template churn, all but two anchor slots
  // may appear late and/or vanish early.
  truth.birth_bin.assign(slots, 0);
  truth.death_bin.assign(slots, opts.bins);
  if (opts.profile == StreamProfile::kTemplateChurn && opts.bins >= 8) {
    for (size_t s = 2; s < slots; ++s) {
      if (rng.Bernoulli(0.6)) {
        truth.birth_bin[s] = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(opts.bins / 2)));
      }
      if (rng.Bernoulli(0.6)) {
        int64_t min_death = static_cast<int64_t>(truth.birth_bin[s]) + 2;
        truth.death_bin[s] = static_cast<size_t>(std::min(
            static_cast<int64_t>(opts.bins),
            rng.UniformInt(min_death, static_cast<int64_t>(opts.bins))));
      }
    }
  }

  // Burst schedule: a few bins run several times the base rate.
  std::vector<bool> burst(opts.bins, false);
  if (opts.profile == StreamProfile::kBurstySkewed) {
    size_t n_bursts = std::max<size_t>(1, opts.bins / 12);
    for (size_t b = 0; b < n_bursts; ++b) {
      burst[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(opts.bins) - 1))] = true;
    }
  }

  ts::Timestamp last_query_ts = 0;
  bool have_last_ts = false;
  for (size_t bin = 0; bin < opts.bins; ++bin) {
    const int64_t bin_start =
        opts.start_seconds + static_cast<int64_t>(bin) * opts.interval_seconds;
    const double day_frac =
        static_cast<double>(((bin_start % 86400) + 86400) % 86400) / 86400.0;
    const double burst_mul = burst[bin] ? 6.0 : 1.0;
    for (size_t s = 0; s < slots; ++s) {
      if (bin < truth.birth_bin[s] || bin >= truth.death_bin[s]) continue;
      const SlotSpec& spec = catalog[s];
      double rate = opts.mean_rate * spec.rate_scale * burst_mul;
      if (spec.bump_center >= 0.0) {
        rate *= 0.5 + 1.5 * Bump(day_frac, spec.bump_center, 0.08);
      }
      int64_t count = rng.Poisson(rate);
      for (int64_t q = 0; q < count; ++q) {
        ts::Timestamp ts = bin_start + rng.UniformInt(0, opts.interval_seconds - 1);
        if (opts.profile == StreamProfile::kBurstySkewed && have_last_ts &&
            rng.Bernoulli(0.35)) {
          ts = last_query_ts;  // duplicated timestamp (bursty log shipper)
          ++truth.duplicate_timestamps;
        }
        last_query_ts = ts;
        have_last_ts = true;
        StreamItem item;
        item.kind = StreamItem::Kind::kQuery;
        item.timestamp = ts;
        item.line = std::to_string(ts) + " " + spec.make(rng, in_max);
        item.event =
            serve::TraceEvent{static_cast<uint32_t>(s), ts, 1.0};
        item.has_event = true;
        item.template_index = s;
        out.items.push_back(std::move(item));
        ++truth.template_counts[s];
        ++truth.well_formed;
      }
    }

    // Dirty-input injections, per profile.
    double p_malformed = 0.0;
    double p_skew = 0.0;
    double p_bad_template = 0.0;
    int64_t n_malformed = 0;
    switch (opts.profile) {
      case StreamProfile::kSteady:
        break;
      case StreamProfile::kTemplateChurn:
        p_malformed = 0.05;
        break;
      case StreamProfile::kBurstySkewed:
        p_malformed = 0.03;
        p_skew = 0.5;
        p_bad_template = 0.3;
        break;
      case StreamProfile::kMalformedHeavy:
        n_malformed =
            rng.Poisson(opts.mean_rate * static_cast<double>(slots) * 0.5);
        p_bad_template = 0.2;
        break;
    }
    if (n_malformed == 0 && p_malformed > 0.0 && rng.Bernoulli(p_malformed)) {
      n_malformed = 1;
    }
    for (int64_t m = 0; m < n_malformed; ++m) {
      ts::Timestamp ts = bin_start + rng.UniformInt(0, opts.interval_seconds - 1);
      StreamItem item;
      item.timestamp = ts;
      switch (rng.UniformInt(0, 2)) {
        case 0:
          item.kind = StreamItem::Kind::kMalformedLine;
          item.line_reject = StreamItem::LineReject::kNoSql;
          item.line = MakeNoSqlLine(rng, ts);
          ++truth.malformed_no_sql;
          break;
        case 1:
          item.kind = StreamItem::Kind::kMalformedLine;
          item.line_reject = StreamItem::LineReject::kBadTimestamp;
          item.line = MakeBadTimestampLine(rng);
          ++truth.malformed_bad_timestamp;
          break;
        default:
          item.kind = StreamItem::Kind::kBadStatement;
          item.line = std::to_string(ts) + " " + MakeBadStatementSql(rng);
          ++truth.bad_statements;
          break;
      }
      out.items.push_back(std::move(item));
    }
    if (p_skew > 0.0 && rng.Bernoulli(p_skew)) {
      StreamItem item;
      item.kind = StreamItem::Kind::kSkewedEvent;
      item.timestamp = bin_start;
      item.event =
          serve::TraceEvent{0, SkewedTimestamp(rng, bin_start), 1.0};
      item.has_event = true;
      out.items.push_back(std::move(item));
      ++truth.skewed_events;
    }
    if (p_bad_template > 0.0 && rng.Bernoulli(p_bad_template)) {
      ts::Timestamp ts = bin_start + rng.UniformInt(0, opts.interval_seconds - 1);
      StreamItem item;
      item.kind = StreamItem::Kind::kBadTemplateEvent;
      item.timestamp = ts;
      item.event = serve::TraceEvent{
          kBadTemplateId + static_cast<uint32_t>(rng.UniformInt(0, 7)), ts,
          1.0};
      item.has_event = true;
      out.items.push_back(std::move(item));
      ++truth.bad_template_events;
    }
  }
  return out;
}

}  // namespace dbaugur::chaos

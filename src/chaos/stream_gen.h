// Seeded grammar-driven query-log stream generator for the end-to-end chaos
// harness (TxCheck-style: a grammar produces diverse realistic inputs, a
// differential oracle checks the system against a sequential reference).
//
// A generated stream is a time-ordered mix of:
//   - well-formed "<epoch> <sql>" log lines drawn from a catalog of SQL
//     template slots over the BusTracker schema (literal churn, IN-list
//     arity churn, diurnal + bursty arrival rates, template birth/death
//     schedules, duplicated timestamps), each paired with the pre-parsed
//     serve::TraceEvent a log shipper would emit for it;
//   - malformed lines with a *guaranteed* rejection class (no SQL after the
//     timestamp; unparseable / overflowing timestamp field);
//   - well-formed lines whose statement the tokenizer must reject
//     (truncated string literal, unterminated comment, embedded NUL,
//     control bytes, unexpected characters);
//   - event-only items: clock-skewed timestamps (pre-epoch, far-future,
//     INT64 extremes, stale) and out-of-range template ids, which must land
//     in the ingest quarantine counters, never in the binner.
//
// Everything is derived from StreamOptions::seed, so any failure reproduces
// from its (seed, profile) pair alone.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/ingestor.h"
#include "ts/series.h"

namespace dbaugur::chaos {

/// Stream shapes the harness sweeps over.
enum class StreamProfile {
  kSteady,         ///< All templates alive, mild diurnal rates, clean input.
  kTemplateChurn,  ///< Templates born/dying mid-stream, IN-lists up to ~200.
  kBurstySkewed,   ///< Burst bins, duplicated timestamps, clock-skewed and
                   ///< bad-template events.
  kMalformedHeavy, ///< ~1/3 of text items malformed or tokenizer-rejected.
};

/// Stable lowercase name ("steady", "template-churn", ...), used in repro
/// lines and the seed corpus.
const char* ProfileName(StreamProfile profile);

/// Inverse of ProfileName; InvalidArgument on unknown names.
StatusOr<StreamProfile> ParseProfile(const std::string& name);

/// All four profiles, in declaration order.
std::vector<StreamProfile> AllProfiles();

/// Generator configuration. Everything is deterministic in (seed, profile).
struct StreamOptions {
  uint64_t seed = 1;
  StreamProfile profile = StreamProfile::kSteady;
  size_t bins = 48;                ///< Stream length in forecast intervals.
  int64_t interval_seconds = 600;  ///< Forecast interval (bin width).
  size_t templates = 8;            ///< Grammar slots used (clamped to catalog).
  double mean_rate = 3.0;          ///< Mean events per template per bin.
  int64_t start_seconds = 0;       ///< Timestamp of the stream's first bin.
};

/// One generated item: a log line, a pre-parsed event, or both.
struct StreamItem {
  enum class Kind {
    kQuery,            ///< Well-formed line + matching event.
    kMalformedLine,    ///< Text only; the log parser must reject the line.
    kBadStatement,     ///< Text only; the line parses but the SQL must not.
    kSkewedEvent,      ///< Event only; clock-skewed timestamp.
    kBadTemplateEvent, ///< Event only; template_id out of range.
  };
  /// For kMalformedLine: which rejection counter the line must hit.
  enum class LineReject { kNone, kNoSql, kBadTimestamp };

  Kind kind = Kind::kQuery;
  LineReject line_reject = LineReject::kNone;
  ts::Timestamp timestamp = 0;  ///< Nominal stream position (ordering only).
  std::string line;             ///< Raw log line; empty for event-only items.
  serve::TraceEvent event;      ///< Pre-parsed event; valid iff has_event.
  bool has_event = false;
  size_t template_index = 0;    ///< Grammar slot; meaningful for kQuery.
};

/// Ground truth the differential oracles check against.
struct StreamGroundTruth {
  uint64_t well_formed = 0;             ///< kQuery items.
  uint64_t malformed_no_sql = 0;        ///< kMalformedLine / kNoSql.
  uint64_t malformed_bad_timestamp = 0; ///< kMalformedLine / kBadTimestamp.
  uint64_t bad_statements = 0;          ///< kBadStatement items.
  uint64_t skewed_events = 0;           ///< kSkewedEvent items.
  uint64_t bad_template_events = 0;     ///< kBadTemplateEvent items.
  uint64_t duplicate_timestamps = 0;    ///< kQuery items reusing the previous
                                        ///< item's exact timestamp.
  /// Per grammar slot (parallel vectors, one entry per active slot):
  std::vector<std::string> template_text;  ///< Canonical sql::ToTemplate text.
  std::vector<bool> replayable;   ///< Slot parses under dbsim's restricted SQL.
  std::vector<uint64_t> template_counts;  ///< kQuery items emitted per slot.
  std::vector<size_t> birth_bin;  ///< First bin the slot is active in.
  std::vector<size_t> death_bin;  ///< One past the last active bin (<= bins).
};

/// A generated stream plus its ground truth.
struct GeneratedStream {
  StreamOptions opts;
  std::vector<StreamItem> items;  ///< Bin-major, ascending nominal timestamp.
  StreamGroundTruth truth;

  /// The raw query-log text: every text-bearing item's line, '\n'-joined.
  std::string Text() const;
};

/// The template id every kBadTemplateEvent carries — far above any harness
/// max_templates setting.
inline constexpr uint32_t kBadTemplateId = 1u << 20;

/// Generates one stream. Aborts (DBAUGUR_CHECK) on bins == 0,
/// interval_seconds <= 0, templates == 0, or a catalog statement the
/// templater itself rejects (a generator bug, not an input condition).
GeneratedStream GenerateStream(const StreamOptions& opts);

}  // namespace dbaugur::chaos

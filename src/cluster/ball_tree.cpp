#include "cluster/ball_tree.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace dbaugur::cluster {

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  double s = 0.0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

StatusOr<BallTree> BallTree::Build(std::vector<std::vector<double>> points,
                                   DistanceFn distance, BallTreeOptions opts) {
  if (!distance) return Status::InvalidArgument("BallTree: null distance fn");
  for (const auto& p : points) {
    if (p.size() != points[0].size()) {
      return Status::InvalidArgument("BallTree: inconsistent dimensionality");
    }
  }
  BallTree tree;
  tree.points_ = std::move(points);
  tree.distance_ = std::move(distance);
  if (!tree.points_.empty()) {
    std::vector<size_t> idx(tree.points_.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    tree.root_ = tree.BuildNode(std::move(idx), std::max<size_t>(1, opts.leaf_size));
  }
  return tree;
}

std::unique_ptr<BallTree::Node> BallTree::BuildNode(std::vector<size_t> idx,
                                                    size_t leaf_size) {
  DBAUGUR_CHECK(!idx.empty(), "BallTree::BuildNode on an empty partition");
  DBAUGUR_CHECK_GE(leaf_size, 1u, "BallTree leaf size must be positive");
  auto node = std::make_unique<Node>();
  node->count = idx.size();
  // Centroid = coordinate-wise mean (fine even for non-Euclidean distances:
  // it only needs to be *some* pivot; correctness comes from the radius).
  size_t dim = points_[idx[0]].size();
  node->centroid.assign(dim, 0.0);
  for (size_t i : idx) {
    for (size_t d = 0; d < dim; ++d) node->centroid[d] += points_[i][d];
  }
  for (double& c : node->centroid) c /= static_cast<double>(idx.size());
  node->radius = 0.0;
  for (size_t i : idx) {
    node->radius = std::max(node->radius, distance_(node->centroid, points_[i]));
  }
  // A NaN or negative radius breaks the pruning bound in RangeSearch; catch a
  // broken user distance function here instead of silently dropping matches.
  DBAUGUR_CHECK(node->radius >= 0.0,
                "BallTree: distance function produced invalid ball radius ",
                node->radius);
  if (idx.size() <= leaf_size) {
    node->indices = std::move(idx);
    return node;
  }
  // Split along the dimension of greatest spread at its median.
  size_t best_dim = 0;
  double best_spread = -1.0;
  for (size_t d = 0; d < dim; ++d) {
    double mn = points_[idx[0]][d], mx = mn;
    for (size_t i : idx) {
      mn = std::min(mn, points_[i][d]);
      mx = std::max(mx, points_[i][d]);
    }
    if (mx - mn > best_spread) {
      best_spread = mx - mn;
      best_dim = d;
    }
  }
  if (best_spread <= 0.0) {
    // All points identical: make a leaf regardless of size.
    node->indices = std::move(idx);
    return node;
  }
  size_t mid = idx.size() / 2;
  std::nth_element(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(mid),
                   idx.end(), [&](size_t a, size_t b) {
                     return points_[a][best_dim] < points_[b][best_dim];
                   });
  std::vector<size_t> left(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(mid));
  std::vector<size_t> right(idx.begin() + static_cast<ptrdiff_t>(mid), idx.end());
  if (left.empty() || right.empty()) {
    node->indices = std::move(idx);
    return node;
  }
  DBAUGUR_DCHECK_EQ(left.size() + right.size(), idx.size(),
                    "BallTree: split lost or duplicated points");
  node->left = BuildNode(std::move(left), leaf_size);
  node->right = BuildNode(std::move(right), leaf_size);
  return node;
}

std::vector<size_t> BallTree::RangeQuery(const std::vector<double>& query,
                                         double radius) const {
  std::vector<size_t> out;
  if (root_) RangeSearch(root_.get(), query, radius, &out);
  std::sort(out.begin(), out.end());
  return out;
}

void BallTree::RangeSearch(const Node* node, const std::vector<double>& query,
                           double radius, std::vector<size_t>* out) const {
  ++distance_evals_;
  double dc = distance_(query, node->centroid);
  if (dc > radius + node->radius) {  // ball cannot intersect query ball
    pruned_points_ += static_cast<int64_t>(node->count);
    return;
  }
  if (node->is_leaf()) {
    for (size_t i : node->indices) {
      ++distance_evals_;
      if (distance_(query, points_[i]) <= radius) out->push_back(i);
    }
    return;
  }
  RangeSearch(node->left.get(), query, radius, out);
  RangeSearch(node->right.get(), query, radius, out);
}

StatusOr<std::pair<size_t, double>> BallTree::Nearest(
    const std::vector<double>& query) const {
  if (!root_) return Status::NotFound("BallTree: empty tree");
  size_t best_idx = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  NearestSearch(root_.get(), query, &best_idx, &best_dist);
  return std::make_pair(best_idx, best_dist);
}

void BallTree::NearestSearch(const Node* node, const std::vector<double>& query,
                             size_t* best_idx, double* best_dist) const {
  ++distance_evals_;
  double dc = distance_(query, node->centroid);
  if (dc - node->radius > *best_dist) return;
  if (node->is_leaf()) {
    for (size_t i : node->indices) {
      ++distance_evals_;
      double d = distance_(query, points_[i]);
      if (d < *best_dist) {
        *best_dist = d;
        *best_idx = i;
      }
    }
    return;
  }
  // Visit the closer child first for tighter pruning.
  ++distance_evals_;
  double dl = distance_(query, node->left->centroid);
  ++distance_evals_;
  double dr = distance_(query, node->right->centroid);
  const Node* first = dl <= dr ? node->left.get() : node->right.get();
  const Node* second = dl <= dr ? node->right.get() : node->left.get();
  NearestSearch(first, query, best_idx, best_dist);
  NearestSearch(second, query, best_idx, best_dist);
}

}  // namespace dbaugur::cluster

// Ball-Tree (Omohundro 1989) for accelerated neighbor search over workload
// traces (paper §IV-C: "Ball-Tree is integrated in this clustering method to
// accelerate the nearest neighbor search").
//
// The tree is built with a pluggable distance function. With a true metric
// (Euclidean) the triangle-inequality pruning is exact. DTW violates the
// triangle inequality, so the paper's Ball-Tree-over-DTW search is inherently
// heuristic; Descender therefore supports both this index and an exact
// LB_Keogh-cascade linear scan, and the ablation bench quantifies the recall
// difference.

#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"

namespace dbaugur::cluster {

/// Distance callable over stored points.
using DistanceFn =
    std::function<double(const std::vector<double>&, const std::vector<double>&)>;

/// Plain Euclidean distance (the exact-metric default).
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Options controlling Ball-tree construction.
struct BallTreeOptions {
  size_t leaf_size = 8;  ///< Max points per leaf.
};

/// Ball-tree over a fixed point set.
class BallTree {
 public:
  /// Builds the tree. Points must all share one dimensionality.
  static StatusOr<BallTree> Build(std::vector<std::vector<double>> points,
                                  DistanceFn distance,
                                  BallTreeOptions opts = BallTreeOptions());

  /// Indices of all points within `radius` of `query` (pruned search; exact
  /// when `distance` is a metric).
  std::vector<size_t> RangeQuery(const std::vector<double>& query,
                                 double radius) const;

  /// Index and distance of the nearest point (brute-force fallback when the
  /// tree is empty returns NotFound).
  StatusOr<std::pair<size_t, double>> Nearest(
      const std::vector<double>& query) const;

  size_t size() const { return points_.size(); }
  const std::vector<double>& point(size_t i) const { return points_[i]; }

  /// Distance computations performed by queries so far (pruning telemetry).
  int64_t distance_evals() const { return distance_evals_; }

  /// Points skipped by ball pruning across all range queries so far: whenever
  /// a node's ball provably cannot intersect the query ball, its whole
  /// subtree's point count is added here. Descender reports this as
  /// PruningStats::tree_rejections.
  int64_t pruned_points() const { return pruned_points_; }

 private:
  struct Node {
    std::vector<double> centroid;
    double radius = 0.0;
    size_t count = 0;  ///< Points in this subtree (pruning telemetry).
    // Leaf: point indices. Internal: children.
    std::vector<size_t> indices;
    std::unique_ptr<Node> left, right;
    bool is_leaf() const { return !left; }
  };

  BallTree() = default;
  std::unique_ptr<Node> BuildNode(std::vector<size_t> idx, size_t leaf_size);
  void RangeSearch(const Node* node, const std::vector<double>& query,
                   double radius, std::vector<size_t>* out) const;
  void NearestSearch(const Node* node, const std::vector<double>& query,
                     size_t* best_idx, double* best_dist) const;

  std::vector<std::vector<double>> points_;
  DistanceFn distance_;
  std::unique_ptr<Node> root_;
  mutable int64_t distance_evals_ = 0;
  mutable int64_t pruned_points_ = 0;
};

}  // namespace dbaugur::cluster

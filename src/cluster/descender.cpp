#include "cluster/descender.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

namespace dbaugur::cluster {

std::vector<double> Descender::DistanceValues(const ts::Series& trace) const {
  if (!opts_.znormalize) return trace.values();
  const std::vector<double>& v = trace.values();
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double var = 0.0;
  for (double x : v) var += (x - mean) * (x - mean);
  double sd = std::sqrt(var / static_cast<double>(v.size()));
  if (sd <= 0.0) sd = 1.0;
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = (v[i] - mean) / sd;
  return out;
}

StatusOr<std::vector<size_t>> Descender::Neighbors(
    const std::vector<double>& values) {
  std::vector<size_t> out;
  if (traces_.empty()) return out;
  if (opts_.search == NeighborSearch::kBallTree) {
    // Heuristic mode: ball tree with DTW as the distance. Rebuilding per
    // query batch would defeat the point; the tree is rebuilt lazily here
    // only because insertion invalidates it. Exact mode is the default.
    std::vector<std::vector<double>> pts(distance_values_);
    dtw::DtwOptions dtw_opts = opts_.dtw;
    auto tree = BallTree::Build(
        std::move(pts),
        [dtw_opts](const std::vector<double>& a, const std::vector<double>& b) {
          auto d = dtw::DtwDistance(a, b, dtw_opts);
          return d.ok() ? *d : std::numeric_limits<double>::infinity();
        },
        {opts_.ball_tree_leaf});
    if (!tree.ok()) return tree.status();
    out = tree->RangeQuery(values, opts_.radius);
    distance_evals_ += tree->distance_evals();
    return out;
  }
  // Exact cascade: LB_Kim -> LB_Keogh -> early-abandoning DTW.
  dtw::CascadingDtw cascade(opts_.dtw);
  for (size_t i = 0; i < traces_.size(); ++i) {
    ++distance_evals_;
    auto within = cascade.WithinRadius(values, distance_values_[i],
                                       envelopes_[i], opts_.radius);
    if (!within.ok()) return within.status();
    if (*within) out.push_back(i);
  }
  return out;
}

StatusOr<size_t> Descender::AddTrace(ts::Series trace) {
  if (trace.empty()) return Status::InvalidArgument("Descender: empty trace");
  if (!traces_.empty() && trace.size() != traces_[0].size()) {
    return Status::InvalidArgument("Descender: trace length mismatch");
  }
  std::vector<double> dvalues = DistanceValues(trace);
  auto nbrs = Neighbors(dvalues);
  if (!nbrs.ok()) return nbrs.status();
  size_t idx = traces_.size();
  envelopes_.push_back(dtw::BuildEnvelope(dvalues, opts_.dtw.window));
  distance_values_.push_back(std::move(dvalues));
  double vol = 0.0;
  for (double v : trace.values()) vol += v;
  volumes_.push_back(vol);
  traces_.push_back(std::move(trace));
  adjacency_.emplace_back(*nbrs);
  for (size_t n : *nbrs) adjacency_[n].push_back(idx);
  Relabel();
  return idx;
}

Status Descender::AddTraces(std::vector<ts::Series> traces) {
  for (auto& t : traces) {
    if (t.empty()) return Status::InvalidArgument("Descender: empty trace");
    if (!traces_.empty() && t.size() != traces_[0].size()) {
      return Status::InvalidArgument("Descender: trace length mismatch");
    }
    std::vector<double> dvalues = DistanceValues(t);
    auto nbrs = Neighbors(dvalues);
    if (!nbrs.ok()) return nbrs.status();
    size_t idx = traces_.size();
    envelopes_.push_back(dtw::BuildEnvelope(dvalues, opts_.dtw.window));
    distance_values_.push_back(std::move(dvalues));
    double vol = 0.0;
    for (double v : t.values()) vol += v;
    volumes_.push_back(vol);
    traces_.push_back(std::move(t));
    adjacency_.emplace_back(*nbrs);
    for (size_t n : *nbrs) adjacency_[n].push_back(idx);
  }
  Relabel();
  return Status::OK();
}

void Descender::Relabel() {
  size_t n = traces_.size();
  core_.assign(n, false);
  for (size_t i = 0; i < n; ++i) {
    core_[i] = adjacency_[i].size() + 1 >= opts_.min_size;
  }
  labels_.assign(n, -1);
  int next = 0;
  // BFS from each unlabeled core: density-reachable expansion.
  for (size_t seed = 0; seed < n; ++seed) {
    if (!core_[seed] || labels_[seed] != -1) continue;
    int cid = next++;
    std::deque<size_t> frontier{seed};
    labels_[seed] = cid;
    while (!frontier.empty()) {
      size_t cur = frontier.front();
      frontier.pop_front();
      for (size_t nb : adjacency_[cur]) {
        if (labels_[nb] == -1) {
          labels_[nb] = cid;  // border or core, first cluster wins
          if (core_[nb]) frontier.push_back(nb);
        }
      }
    }
  }
  // Remaining noise traces become singleton clusters (paper's online rule).
  for (size_t i = 0; i < n; ++i) {
    if (labels_[i] == -1) labels_[i] = next++;
  }
}

size_t Descender::cluster_count() const {
  int mx = -1;
  for (int l : labels_) mx = std::max(mx, l);
  return static_cast<size_t>(mx + 1);
}

size_t Descender::density_cluster_count() const {
  size_t count = 0;
  std::vector<size_t> sizes(cluster_count(), 0);
  for (int l : labels_) ++sizes[static_cast<size_t>(l)];
  std::vector<bool> has_core(sizes.size(), false);
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (core_[i]) has_core[static_cast<size_t>(labels_[i])] = true;
  }
  for (size_t c = 0; c < sizes.size(); ++c) {
    if (has_core[c]) ++count;
  }
  return count;
}

std::vector<ClusterInfo> Descender::TopKClusters(size_t k) const {
  std::vector<ClusterInfo> infos(cluster_count());
  for (size_t c = 0; c < infos.size(); ++c) infos[c].id = static_cast<int>(c);
  for (size_t i = 0; i < labels_.size(); ++i) {
    auto& info = infos[static_cast<size_t>(labels_[i])];
    info.members.push_back(i);
    info.volume += volumes_[i];
  }
  for (auto& info : infos) {
    info.singleton_outlier =
        info.members.size() == 1 && !core_[info.members[0]];
  }
  std::sort(infos.begin(), infos.end(),
            [](const ClusterInfo& a, const ClusterInfo& b) {
              return a.volume > b.volume;
            });
  if (infos.size() > k) infos.resize(k);
  return infos;
}

StatusOr<ts::Series> Descender::ClusterRepresentative(int cluster_id) const {
  std::vector<ts::Series> members;
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == cluster_id) members.push_back(traces_[i]);
  }
  if (members.empty()) {
    return Status::NotFound("Descender: no such cluster");
  }
  auto avg = ts::Series::Average(members);
  if (!avg.ok()) return avg.status();
  avg->set_name("cluster_" + std::to_string(cluster_id));
  return avg;
}

StatusOr<double> Descender::TraceProportion(size_t i) const {
  if (i >= traces_.size()) return Status::OutOfRange("Descender: bad index");
  double cluster_volume = 0.0;
  for (size_t j = 0; j < labels_.size(); ++j) {
    if (labels_[j] == labels_[i]) cluster_volume += volumes_[j];
  }
  if (cluster_volume <= 0.0) {
    // Zero-volume cluster: split evenly among members.
    size_t count = 0;
    for (int l : labels_) {
      if (l == labels_[i]) ++count;
    }
    return 1.0 / static_cast<double>(count);
  }
  return volumes_[i] / cluster_volume;
}

}  // namespace dbaugur::cluster

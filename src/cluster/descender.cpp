#include "cluster/descender.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <numeric>

#include "common/contracts.h"

namespace dbaugur::cluster {

Descender::Descender(const DescenderOptions& opts) : opts_(opts) {
  DBAUGUR_CHECK_GE(opts.radius, 0.0,
                   "Descender: neighborhood radius must be non-negative");
  DBAUGUR_CHECK_GE(opts.threads, size_t{1},
                   "Descender: thread count must be at least 1");
}

std::vector<double> Descender::DistanceValues(const ts::Series& trace) const {
  if (!opts_.znormalize) return trace.values();
  const std::vector<double>& v = trace.values();
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double var = 0.0;
  for (double x : v) var += (x - mean) * (x - mean);
  double sd = std::sqrt(var / static_cast<double>(v.size()));
  if (sd <= 0.0) sd = 1.0;
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = (v[i] - mean) / sd;
  return out;
}

Status Descender::EnsureTreeFresh() {
  size_t n = traces_.size();
  if (n - tree_covered_ <= opts_.ball_tree_rebuild_pending) return Status::OK();
  // Rebuild over every current trace; until the pending budget is exceeded
  // again, new traces are searched exactly via the cascade instead.
  std::vector<std::vector<double>> pts(distance_values_);
  dtw::DtwOptions dtw_opts = opts_.dtw;
  auto tree = BallTree::Build(
      std::move(pts),
      [dtw_opts](const std::vector<double>& a, const std::vector<double>& b) {
        auto d = dtw::DtwDistance(a, b, dtw_opts);
        return d.ok() ? *d : std::numeric_limits<double>::infinity();
      },
      {opts_.ball_tree_leaf});
  if (!tree.ok()) return tree.status();
  tree_ = std::make_unique<BallTree>(std::move(*tree));
  tree_covered_ = n;
  return Status::OK();
}

StatusOr<std::vector<size_t>> Descender::Neighbors(
    const std::vector<double>& values) {
  std::vector<size_t> out;
  if (traces_.empty()) return out;
  size_t scan_begin = 0;
  if (opts_.search == NeighborSearch::kBallTree) {
    // Heuristic mode: ball tree with DTW as the distance, maintained with a
    // pending-insert buffer — traces past tree_covered_ are scanned exactly
    // below, and the tree is only rebuilt once the pending budget is spent.
    // Exact mode is the default.
    DBAUGUR_RETURN_IF_ERROR(EnsureTreeFresh());
    if (tree_) {
      int64_t evals_before = tree_->distance_evals();
      int64_t pruned_before = tree_->pruned_points();
      out = tree_->RangeQuery(values, opts_.radius);
      // Every non-pruned tree probe pays for a full DTW.
      stats_.full_dtw += tree_->distance_evals() - evals_before;
      stats_.tree_rejections += tree_->pruned_points() - pruned_before;
      distance_evals_ += tree_->distance_evals() - evals_before;
    }
    scan_begin = tree_covered_;
  }
  // Exact cascade: LB_Kim -> LB_Keogh -> early-abandoning DTW.
  dtw::CascadingDtw cascade(opts_.dtw);
  for (size_t i = scan_begin; i < traces_.size(); ++i) {
    ++distance_evals_;
    auto within = cascade.WithinRadius(values, distance_values_[i],
                                       envelopes_[i], opts_.radius);
    if (!within.ok()) return within.status();
    if (*within) out.push_back(i);
  }
  stats_ += cascade.stats();
  return out;
}

StatusOr<size_t> Descender::AddTrace(ts::Series trace) {
  if (trace.empty()) return Status::InvalidArgument("Descender: empty trace");
  if (!traces_.empty() && trace.size() != traces_[0].size()) {
    return Status::InvalidArgument("Descender: trace length mismatch");
  }
  std::vector<double> dvalues = DistanceValues(trace);
  auto nbrs = Neighbors(dvalues);
  if (!nbrs.ok()) return nbrs.status();
  size_t idx = traces_.size();
  envelopes_.push_back(dtw::BuildEnvelope(dvalues, opts_.dtw.window));
  distance_values_.push_back(std::move(dvalues));
  double vol = 0.0;
  for (double v : trace.values()) vol += v;
  volumes_.push_back(vol);
  traces_.push_back(std::move(trace));
  adjacency_.emplace_back(*nbrs);
  for (size_t n : *nbrs) adjacency_[n].push_back(idx);
  Relabel();
  return idx;
}

Status Descender::AddTraces(std::vector<ts::Series> traces) {
  // Atomic validation: reject the whole batch up front so a bad trace in the
  // middle cannot leave the clustering half-updated.
  size_t len = traces_.empty()
                   ? (traces.empty() ? 0 : traces[0].size())
                   : traces_[0].size();
  for (const auto& t : traces) {
    if (t.empty()) return Status::InvalidArgument("Descender: empty trace");
    if (t.size() != len) {
      return Status::InvalidArgument("Descender: trace length mismatch");
    }
  }
  const size_t old_n = traces_.size();
  const size_t batch = traces.size();

  // Ball-Tree mode: refresh the index over the pre-batch traces at most once
  // per batch. The batch itself is covered by the exact symmetric sweep
  // below, so the per-insert rebuilds of the old code disappear entirely.
  size_t sweep_begin = 0;
  if (opts_.search == NeighborSearch::kBallTree) {
    DBAUGUR_RETURN_IF_ERROR(EnsureTreeFresh());
    sweep_begin = tree_covered_;
  }

  // Precompute every envelope and distance series up front; the sweep then
  // reads distance_values_/envelopes_ concurrently without any mutation.
  for (auto& t : traces) {
    std::vector<double> dvalues = DistanceValues(t);
    envelopes_.push_back(dtw::BuildEnvelope(dvalues, opts_.dtw.window));
    distance_values_.push_back(std::move(dvalues));
    double vol = 0.0;
    for (double v : t.values()) vol += v;
    volumes_.push_back(vol);
    traces_.push_back(std::move(t));
    adjacency_.emplace_back();
  }

  // Old-trace neighbors via the Ball-Tree index (serial: queries mutate the
  // tree's telemetry counters, and this part is cheap next to the sweep).
  std::vector<std::vector<size_t>> tree_nbrs;
  if (opts_.search == NeighborSearch::kBallTree && tree_) {
    tree_nbrs.resize(batch);
    for (size_t bi = 0; bi < batch; ++bi) {
      int64_t evals_before = tree_->distance_evals();
      int64_t pruned_before = tree_->pruned_points();
      tree_nbrs[bi] =
          tree_->RangeQuery(distance_values_[old_n + bi], opts_.radius);
      stats_.full_dtw += tree_->distance_evals() - evals_before;
      stats_.tree_rejections += tree_->pruned_points() - pruned_before;
      distance_evals_ += tree_->distance_evals() - evals_before;
    }
  }

  // Pairwise half-matrix sweep: row bi decides every pair (old_n + bi, j)
  // for j in [sweep_begin, old_n + bi) exactly once, with the symmetric
  // two-sided LB_Keogh (both envelopes are available, unlike the incremental
  // path). Rows write disjoint slots, so any schedule yields the same
  // result; the merge below runs in index order regardless.
  std::vector<std::vector<size_t>> row_nbrs(batch);
  std::vector<dtw::PruningStats> row_stats(batch);
  std::vector<Status> row_status(batch);
  {
    ThreadPool pool(opts_.threads);
    pool.ParallelFor(batch, 1, [&](size_t row_begin, size_t row_end) {
      for (size_t bi = row_begin; bi < row_end; ++bi) {
        size_t gi = old_n + bi;
        dtw::CascadingDtw cascade(opts_.dtw);
        for (size_t j = sweep_begin; j < gi; ++j) {
          auto within =
              cascade.WithinRadius(distance_values_[gi], distance_values_[j],
                                   envelopes_[j], opts_.radius, &envelopes_[gi]);
          if (!within.ok()) {
            row_status[bi] = within.status();
            break;
          }
          if (*within) row_nbrs[bi].push_back(j);
        }
        row_stats[bi] = cascade.stats();
      }
    });
  }
  for (const Status& st : row_status) {
    if (!st.ok()) {
      // Roll the appended per-trace state back so a failure stays atomic.
      traces_.resize(old_n);
      distance_values_.resize(old_n);
      envelopes_.resize(old_n);
      volumes_.resize(old_n);
      adjacency_.resize(old_n);
      return st;
    }
  }

  // Deterministic merge in index order: each adjacency list is built sorted
  // ascending (tree hits < sweep_begin first, then sweep hits), and the
  // symmetric back-fill appends strictly increasing indices — exactly the
  // lists the sequential AddTrace loop produces, so Relabel's BFS emits
  // identical labels.
  for (size_t bi = 0; bi < batch; ++bi) {
    size_t gi = old_n + bi;
    std::vector<size_t>& adj = adjacency_[gi];
    if (!tree_nbrs.empty()) {
      adj.insert(adj.end(), tree_nbrs[bi].begin(), tree_nbrs[bi].end());
    }
    adj.insert(adj.end(), row_nbrs[bi].begin(), row_nbrs[bi].end());
    for (size_t j : adj) adjacency_[j].push_back(gi);
    stats_ += row_stats[bi];
    distance_evals_ += static_cast<int64_t>(gi - sweep_begin);
  }
  Relabel();
  return Status::OK();
}

void Descender::Relabel() {
  size_t n = traces_.size();
  core_.assign(n, false);
  for (size_t i = 0; i < n; ++i) {
    core_[i] = adjacency_[i].size() + 1 >= opts_.min_size;
  }
  labels_.assign(n, -1);
  int next = 0;
  // BFS from each unlabeled core: density-reachable expansion.
  for (size_t seed = 0; seed < n; ++seed) {
    if (!core_[seed] || labels_[seed] != -1) continue;
    int cid = next++;
    std::deque<size_t> frontier{seed};
    labels_[seed] = cid;
    while (!frontier.empty()) {
      size_t cur = frontier.front();
      frontier.pop_front();
      for (size_t nb : adjacency_[cur]) {
        if (labels_[nb] == -1) {
          labels_[nb] = cid;  // border or core, first cluster wins
          if (core_[nb]) frontier.push_back(nb);
        }
      }
    }
  }
  // Remaining noise traces become singleton clusters (paper's online rule).
  for (size_t i = 0; i < n; ++i) {
    if (labels_[i] == -1) labels_[i] = next++;
  }
}

size_t Descender::cluster_count() const {
  int mx = -1;
  for (int l : labels_) mx = std::max(mx, l);
  return static_cast<size_t>(mx + 1);
}

size_t Descender::density_cluster_count() const {
  size_t count = 0;
  std::vector<size_t> sizes(cluster_count(), 0);
  for (int l : labels_) ++sizes[static_cast<size_t>(l)];
  std::vector<bool> has_core(sizes.size(), false);
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (core_[i]) has_core[static_cast<size_t>(labels_[i])] = true;
  }
  for (size_t c = 0; c < sizes.size(); ++c) {
    if (has_core[c]) ++count;
  }
  return count;
}

std::vector<ClusterInfo> Descender::TopKClusters(size_t k) const {
  std::vector<ClusterInfo> infos(cluster_count());
  for (size_t c = 0; c < infos.size(); ++c) infos[c].id = static_cast<int>(c);
  for (size_t i = 0; i < labels_.size(); ++i) {
    auto& info = infos[static_cast<size_t>(labels_[i])];
    info.members.push_back(i);
    info.volume += volumes_[i];
  }
  for (auto& info : infos) {
    info.singleton_outlier =
        info.members.size() == 1 && !core_[info.members[0]];
  }
  std::sort(infos.begin(), infos.end(),
            [](const ClusterInfo& a, const ClusterInfo& b) {
              return a.volume > b.volume;
            });
  if (infos.size() > k) infos.resize(k);
  return infos;
}

StatusOr<ts::Series> Descender::ClusterRepresentative(int cluster_id) const {
  std::vector<ts::Series> members;
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == cluster_id) members.push_back(traces_[i]);
  }
  if (members.empty()) {
    return Status::NotFound("Descender: no such cluster");
  }
  auto avg = ts::Series::Average(members);
  if (!avg.ok()) return avg.status();
  avg->set_name("cluster_" + std::to_string(cluster_id));
  return avg;
}

StatusOr<double> Descender::TraceProportion(size_t i) const {
  if (i >= traces_.size()) return Status::OutOfRange("Descender: bad index");
  double cluster_volume = 0.0;
  for (size_t j = 0; j < labels_.size(); ++j) {
    if (labels_[j] == labels_[i]) cluster_volume += volumes_[j];
  }
  if (cluster_volume <= 0.0) {
    // Zero-volume cluster: split evenly among members.
    size_t count = 0;
    for (int l : labels_) {
      if (l == labels_[i]) ++count;
    }
    return 1.0 / static_cast<double>(count);
  }
  return volumes_[i] / cluster_volume;
}

}  // namespace dbaugur::cluster

// Descender — Density basEd Spatial ClustEriNg with Dynamic timE waRping
// (paper §IV-C): DBSCAN over workload traces with DTW as the similarity
// measure, supporting online insertion of new traces, top-K cluster
// selection, per-cluster representative traces, and per-trace proportions.
//
// The implementation maintains the full ρ-neighborhood adjacency, so after
// every insertion the labeling is exactly what batch DBSCAN would produce on
// the same data (the paper's "merge or split the clusters based on the
// current clustering density"). Non-core traces outside every cluster are
// materialized as singleton clusters, matching the paper's online rule ("we
// will create a new cluster with that trace as its sole member").

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/ball_tree.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "dtw/dtw.h"
#include "ts/series.h"

namespace dbaugur::cluster {

/// How ρ-neighborhoods are searched.
enum class NeighborSearch {
  /// Linear scan with the LB_Kim/LB_Keogh/early-abandon cascade — exact.
  kExactCascade,
  /// Ball-tree built over the traces with the DTW distance — faster but
  /// heuristic because DTW violates the triangle inequality.
  kBallTree,
};

/// Descender configuration.
struct DescenderOptions {
  double radius = 1.0;          ///< ρ — neighborhood radius (DTW distance).
  size_t min_size = 3;          ///< MinSize — neighbors (incl. self) to be core.
  dtw::DtwOptions dtw;          ///< DTW band window.
  NeighborSearch search = NeighborSearch::kExactCascade;
  size_t ball_tree_leaf = 8;
  /// Ball-Tree staleness budget: the index tolerates this many traces not yet
  /// folded into the tree (searched exactly via the LB cascade instead)
  /// before AddTrace triggers a full rebuild. 0 restores the old
  /// rebuild-on-every-insert behavior.
  size_t ball_tree_rebuild_pending = 32;
  /// Compute distances on z-normalized copies of the traces. Query-count and
  /// utilization-ratio traces live on wildly different scales; normalizing
  /// lets one radius ρ group by *shape*, which is what the paper's pattern
  /// clustering is after. Volumes/representatives still use raw values.
  bool znormalize = true;
  /// Worker lanes for the batch AddTraces pairwise sweep. Results are
  /// deterministic for any value; 1 runs fully inline (no threads spawned).
  size_t threads = DefaultThreadCount();
};

/// Summary of one cluster for top-K selection.
struct ClusterInfo {
  int id = 0;
  std::vector<size_t> members;  ///< Trace indices.
  double volume = 0.0;          ///< Total workload (sum of member values).
  bool singleton_outlier = false;
};

class Descender {
 public:
  /// Aborts (DBAUGUR_CHECK) when opts.radius < 0 or opts.threads == 0.
  explicit Descender(const DescenderOptions& opts);

  /// Inserts one trace and incrementally updates the clustering. All traces
  /// must share one length. Returns the trace's index.
  StatusOr<size_t> AddTrace(ts::Series trace);

  /// Batch fast path: inserts every trace, then relabels once. Produces the
  /// same labels/core flags/adjacency as an equivalent AddTrace loop but
  /// much cheaper — envelopes are precomputed up front, the pairwise
  /// neighbor sweep runs over the half-matrix with the symmetric two-sided
  /// LB_Keogh bound (d(i,j) decided once, adjacency filled both ways), rows
  /// are distributed over opts.threads lanes with a deterministic merge, and
  /// in Ball-Tree mode the index is rebuilt at most once per batch.
  /// Validation is atomic: on error no trace is added.
  Status AddTraces(std::vector<ts::Series> traces);

  size_t trace_count() const { return traces_.size(); }
  const ts::Series& trace(size_t i) const { return traces_[i]; }

  /// Cluster id of trace i (every trace has one; outliers are singletons).
  int label(size_t i) const { return labels_[i]; }
  /// True iff trace i is a core point.
  bool is_core(size_t i) const { return core_[i]; }
  /// Number of clusters including singleton outliers.
  size_t cluster_count() const;
  /// Number of non-singleton (density) clusters.
  size_t density_cluster_count() const;

  /// Clusters ordered by descending volume, truncated to k.
  std::vector<ClusterInfo> TopKClusters(size_t k) const;

  /// Average trace of a cluster's members (the forecasting model's training
  /// data for that cluster).
  StatusOr<ts::Series> ClusterRepresentative(int cluster_id) const;

  /// Trace i's share of its cluster's volume — used to scale a cluster-level
  /// forecast back to the individual trace (paper: "we also track each trace
  /// and its proportion in the corresponding cluster").
  StatusOr<double> TraceProportion(size_t i) const;

  /// Total DTW/LB evaluations (telemetry for the clustering ablation).
  int64_t distance_evals() const { return distance_evals_; }

  /// Per-tier pruning telemetry accumulated over every insertion: LB_Kim /
  /// LB_Keogh / Ball-Tree rejections and full DTW computations.
  const dtw::PruningStats& pruning_stats() const { return stats_; }

 private:
  /// Indices within ρ of `values` among current traces.
  StatusOr<std::vector<size_t>> Neighbors(const std::vector<double>& values);
  /// Ball-Tree maintenance: rebuilds the index over all current traces when
  /// more than opts.ball_tree_rebuild_pending traces sit outside it.
  Status EnsureTreeFresh();
  /// Recomputes core flags and labels from the adjacency lists (exact DBSCAN
  /// semantics, then singletons for leftover noise).
  void Relabel();

  /// The values used for distance computation (z-normalized when enabled).
  std::vector<double> DistanceValues(const ts::Series& trace) const;

  DescenderOptions opts_;
  std::vector<ts::Series> traces_;
  std::vector<std::vector<double>> distance_values_;
  std::vector<dtw::Envelope> envelopes_;
  std::vector<std::vector<size_t>> adjacency_;  // ρ-neighbors, excl. self
  std::vector<bool> core_;
  std::vector<int> labels_;
  std::vector<double> volumes_;
  int64_t distance_evals_ = 0;
  dtw::PruningStats stats_;
  // Ball-Tree mode: persistent index over traces [0, tree_covered_); traces
  // past that point are pending (searched exactly until the next rebuild).
  std::unique_ptr<BallTree> tree_;
  size_t tree_covered_ = 0;
};

}  // namespace dbaugur::cluster

#include "common/binio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstring>

#include "common/fault_injection.h"

namespace dbaugur {

void BufWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void BufWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void BufWriter::F64(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void BufWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BufWriter::Bytes(const std::vector<uint8_t>& b) {
  U32(static_cast<uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

bool BufReader::U8(uint8_t* v) {
  if (pos_ + 1 > buf_.size()) return false;
  *v = buf_[pos_++];
  return true;
}

bool BufReader::U32(uint32_t* v) {
  if (pos_ + 4 > buf_.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(buf_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += 4;
  return true;
}

bool BufReader::U64(uint64_t* v) {
  if (pos_ + 8 > buf_.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(buf_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += 8;
  return true;
}

bool BufReader::I32(int32_t* v) {
  uint32_t u = 0;
  if (!U32(&u)) return false;
  *v = static_cast<int32_t>(u);
  return true;
}

bool BufReader::I64(int64_t* v) {
  uint64_t u = 0;
  if (!U64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool BufReader::F64(double* v) {
  uint64_t bits = 0;
  if (!U64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool BufReader::Str(std::string* s) {
  uint32_t n = 0;
  if (!U32(&n)) return false;
  if (pos_ + n > buf_.size()) return false;
  s->assign(reinterpret_cast<const char*>(buf_.data()) + pos_, n);
  pos_ += n;
  return true;
}

bool BufReader::Bytes(std::vector<uint8_t>* b) {
  uint32_t n = 0;
  if (!U32(&n)) return false;
  if (pos_ + n > buf_.size()) return false;
  b->assign(buf_.begin() + static_cast<ptrdiff_t>(pos_),
            buf_.begin() + static_cast<ptrdiff_t>(pos_ + n));
  pos_ += n;
  return true;
}

namespace {

// Reflected CRC-32 lookup table for the IEEE 802.3 polynomial 0xEDB88320,
// generated once on first use.
const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      table[i] = c;
    }
    return true;
  }();
  (void)init;
  return table;
}

constexpr uint32_t kFileMagic = 0xDBA6F11E;
constexpr uint32_t kFileVersion = 1;
// magic + version + u64 payload length; CRC32 footer follows the payload.
constexpr size_t kFileHeaderBytes = 4 + 4 + 8;
constexpr size_t kFileFooterBytes = 4;

// strerror() hands back a static buffer and is not thread-safe
// (concurrency-mt-unsafe) — checkpoint saves can fail concurrently from the
// retrain thread and a caller's SaveToFile. strerror_r is safe but has two
// signatures (XSI returns int and fills the buffer, GNU returns the message
// pointer); overload resolution on the return type handles either libc.
[[maybe_unused]] const char* StrerrorResult(const char* r,
                                            const char* /*buf*/) {
  return r;
}
[[maybe_unused]] const char* StrerrorResult(int /*r*/, const char* buf) {
  return buf;
}

std::string ErrnoMessage(const std::string& op, const std::string& path) {
  char buf[256];
  buf[0] = '\0';
  const char* msg = StrerrorResult(strerror_r(errno, buf, sizeof(buf)), buf);
  return op + " failed for " + path + ": " + msg;
}

// Writes the whole buffer, retrying short writes. False on any write error.
bool WriteAll(int fd, const uint8_t* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

// Reads the whole file into *out. False on open/read error.
bool ReadAll(const std::string& path, std::vector<uint8_t>* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  out->clear();
  uint8_t buf[1 << 16];
  for (;;) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (r == 0) break;
    out->insert(out->end(), buf, buf + r);
  }
  ::close(fd);
  return true;
}

// Verifies one framed file image in memory; on success copies the payload to
// *payload. Returns a describing error otherwise.
Status VerifyFrame(const std::string& path, const std::vector<uint8_t>& image,
                   std::vector<uint8_t>* payload) {
  if (image.size() < kFileHeaderBytes + kFileFooterBytes) {
    return Status::InvalidArgument(path + ": file shorter than frame header");
  }
  BufReader r(image);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t length = 0;
  if (!r.U32(&magic) || !r.U32(&version) || !r.U64(&length)) {
    return Status::InvalidArgument(path + ": truncated frame header");
  }
  if (magic != kFileMagic) {
    return Status::InvalidArgument(path + ": bad file magic");
  }
  if (version != kFileVersion) {
    return Status::InvalidArgument(path + ": unsupported file version");
  }
  if (length != image.size() - kFileHeaderBytes - kFileFooterBytes) {
    return Status::InvalidArgument(path +
                                   ": payload length does not match file size "
                                   "(torn write)");
  }
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(image[image.size() - 4 +
                                              static_cast<size_t>(i)])
                  << (8 * i);
  }
  uint32_t actual_crc = Crc32(image.data(), image.size() - kFileFooterBytes);
  if (stored_crc != actual_crc) {
    return Status::InvalidArgument(path + ": CRC32 mismatch (corrupt file)");
  }
  payload->assign(image.begin() + static_cast<ptrdiff_t>(kFileHeaderBytes),
                  image.end() - static_cast<ptrdiff_t>(kFileFooterBytes));
  return Status::OK();
}

// fsyncs the directory containing `path` so the renames themselves are
// durable. Best-effort: some filesystems reject directory fsync.
void SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t n) {
  const uint32_t* table = Crc32Table();
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Status SaveToFile(const std::string& path, const std::vector<uint8_t>& blob) {
  BufWriter w;
  w.U32(kFileMagic);
  w.U32(kFileVersion);
  w.U64(blob.size());
  std::vector<uint8_t> image = w.Take();
  image.insert(image.end(), blob.begin(), blob.end());
  uint32_t crc = Crc32(image.data(), image.size());
  for (int i = 0; i < 4; ++i) {
    image.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }

  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::Internal(ErrnoMessage("open", tmp));
  if (DBAUGUR_FAULT_POINT("binio.save.write")) {
    // Simulated crash / ENOSPC mid-write: leave a torn temp file behind. The
    // installed `path` is untouched, so last-good recovery still works.
    WriteAll(fd, image.data(), image.size() / 2);
    ::close(fd);
    return Status::Internal("injected write failure for " + tmp);
  }
  if (!WriteAll(fd, image.data(), image.size())) {
    Status st = Status::Internal(ErrnoMessage("write", tmp));
    ::close(fd);
    return st;
  }
  if (DBAUGUR_FAULT_POINT("binio.save.sync")) {
    ::close(fd);
    return Status::Internal("injected fsync failure for " + tmp);
  }
  if (::fsync(fd) != 0) {
    Status st = Status::Internal(ErrnoMessage("fsync", tmp));
    ::close(fd);
    return st;
  }
  if (::close(fd) != 0) return Status::Internal(ErrnoMessage("close", tmp));

  // Preserve the previous good file, then install the new one atomically.
  // A crash between the two renames leaves only `.bak`, which LoadFromFile
  // falls back to.
  if (::access(path.c_str(), F_OK) == 0) {
    if (::rename(path.c_str(), (path + ".bak").c_str()) != 0) {
      return Status::Internal(ErrnoMessage("rename to .bak", path));
    }
  }
  if (DBAUGUR_FAULT_POINT("binio.save.rename") ||
      ::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("rename failed for " + tmp + " -> " + path);
  }
  SyncParentDir(path);
  return Status::OK();
}

StatusOr<FileLoadResult> LoadFromFile(const std::string& path) {
  FileLoadResult out;
  std::vector<uint8_t> image;
  Status primary = Status::OK();
  if (ReadAll(path, &image)) {
    primary = VerifyFrame(path, image, &out.blob);
    if (primary.ok()) return out;
  } else {
    primary = Status::NotFound(ErrnoMessage("open/read", path));
  }
  const std::string bak = path + ".bak";
  Status backup = Status::OK();
  if (ReadAll(bak, &image)) {
    backup = VerifyFrame(bak, image, &out.blob);
    if (backup.ok()) {
      out.recovered_from_backup = true;
      return out;
    }
  } else {
    backup = Status::NotFound(ErrnoMessage("open/read", bak));
  }
  return Status::InvalidArgument("no loadable blob: [" + primary.ToString() +
                                 "] and [" + backup.ToString() + "]");
}

}  // namespace dbaugur

#include "common/binio.h"

#include <cstddef>
#include <cstring>

namespace dbaugur {

void BufWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void BufWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void BufWriter::F64(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void BufWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BufWriter::Bytes(const std::vector<uint8_t>& b) {
  U32(static_cast<uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

bool BufReader::U8(uint8_t* v) {
  if (pos_ + 1 > buf_.size()) return false;
  *v = buf_[pos_++];
  return true;
}

bool BufReader::U32(uint32_t* v) {
  if (pos_ + 4 > buf_.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(buf_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += 4;
  return true;
}

bool BufReader::U64(uint64_t* v) {
  if (pos_ + 8 > buf_.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(buf_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += 8;
  return true;
}

bool BufReader::I32(int32_t* v) {
  uint32_t u = 0;
  if (!U32(&u)) return false;
  *v = static_cast<int32_t>(u);
  return true;
}

bool BufReader::I64(int64_t* v) {
  uint64_t u = 0;
  if (!U64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool BufReader::F64(double* v) {
  uint64_t bits = 0;
  if (!U64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool BufReader::Str(std::string* s) {
  uint32_t n = 0;
  if (!U32(&n)) return false;
  if (pos_ + n > buf_.size()) return false;
  s->assign(reinterpret_cast<const char*>(buf_.data()) + pos_, n);
  pos_ += n;
  return true;
}

bool BufReader::Bytes(std::vector<uint8_t>* b) {
  uint32_t n = 0;
  if (!U32(&n)) return false;
  if (pos_ + n > buf_.size()) return false;
  b->assign(buf_.begin() + static_cast<ptrdiff_t>(pos_),
            buf_.begin() + static_cast<ptrdiff_t>(pos_ + n));
  pos_ += n;
  return true;
}

}  // namespace dbaugur

// Little-endian byte-stream writer/reader for snapshot persistence, plus
// crash-safe blob-file I/O.
//
// Every multi-byte scalar is written least-significant-byte first regardless
// of host endianness, so blobs are portable across machines. The reader is
// bounds-checked: each Get* returns false on truncation instead of reading
// past the end, and callers turn that into a Status at the format layer.
//
// SaveToFile/LoadFromFile wrap a blob in a CRC32-checked container and write
// it with the classic crash-safe sequence (write temp → fsync → atomic
// rename), keeping the previous good file as `<path>.bak` so a torn or
// bit-flipped blob recovers to last-good instead of erroring out.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dbaugur {

/// Appends scalars/strings/blobs to a growing byte buffer.
class BufWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  /// Bit-exact double transport (round-trips NaN payloads and -0.0).
  void F64(double v);
  /// u32 length prefix + raw bytes.
  void Str(const std::string& s);
  /// u32 length prefix + raw bytes (nested blobs, e.g. model states).
  void Bytes(const std::vector<uint8_t>& b);

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked sequential reader over a byte buffer (not owned).
class BufReader {
 public:
  explicit BufReader(const std::vector<uint8_t>& buf) : buf_(buf) {}

  bool U8(uint8_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool I32(int32_t* v);
  bool I64(int64_t* v);
  bool F64(double* v);
  bool Str(std::string* s);
  bool Bytes(std::vector<uint8_t>* b);

  size_t pos() const { return pos_; }
  size_t remaining() const { return buf_.size() - pos_; }
  bool AtEnd() const { return pos_ == buf_.size(); }

 private:
  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3 / zlib polynomial, reflected) of `n` bytes.
uint32_t Crc32(const uint8_t* data, size_t n);

/// Result of LoadFromFile: the verified payload plus whether it came from the
/// `.bak` fallback rather than the primary file.
struct FileLoadResult {
  std::vector<uint8_t> blob;
  bool recovered_from_backup = false;
};

/// Writes `blob` to `path` crash-safely: the framed payload (magic, version,
/// length, bytes, CRC32 footer) goes to `path.tmp`, is fsync'd, the previous
/// `path` (if any) is preserved as `path.bak`, and `path.tmp` is atomically
/// renamed into place. A crash or injected failure at any step leaves either
/// the old `path` or its `.bak` intact and verifiable.
Status SaveToFile(const std::string& path, const std::vector<uint8_t>& blob);

/// Reads and verifies `path` (magic + declared length + CRC32). On a missing,
/// truncated, or corrupt primary file it falls back to `path.bak`; only when
/// both fail does it return an error describing each. Never partially
/// succeeds: the returned blob always passed the checksum.
StatusOr<FileLoadResult> LoadFromFile(const std::string& path);

}  // namespace dbaugur

#include "common/cancellation.h"

namespace dbaugur {

void CancelToken::Cancel(const std::string& reason) {
  MutexLock lock(&mu_);
  // First cancel wins: a racing caller that already latched keeps its reason
  // (the original trigger is what Health()/logs should surface). The release
  // store happens inside the lock, after the reason is written, so a worker
  // seeing cancelled() true reads the reason through the same mutex without
  // racing the writer.
  if (cancelled_.load(std::memory_order_relaxed)) return;
  reason_ = reason;
  cancelled_.store(true, std::memory_order_release);
}

std::string CancelToken::reason() const {
  MutexLock lock(&mu_);
  return reason_;
}

void CancelToken::Reset() {
  MutexLock lock(&mu_);
  reason_.clear();
  cancelled_.store(false, std::memory_order_release);
}

Status CancelledStatus(const CancelToken& token, const std::string& what) {
  std::string reason = token.reason();
  std::string msg = what + " cancelled";
  if (!reason.empty()) {
    msg += ": ";
    msg += reason;
  }
  return Status::Cancelled(std::move(msg));
}

}  // namespace dbaugur

// Cooperative cancellation primitive.
//
// A CancelToken is a one-way latch shared between a controller (the retrain
// watchdog, a deadline enforcer, a shutdown path) and a worker running a long
// computation. The controller calls Cancel(reason) once; the worker polls
// cancelled() at natural checkpoints — cluster-fit boundaries, loop
// iterations, fault-point sleeps — and unwinds with Status::Cancelled when it
// observes the latch. Cancellation is advisory, never preemptive: a worker
// that ignores the token simply finishes late, and a worker that honors it
// leaves all externally visible state exactly as it was before the cancelled
// operation started (the serving layer relies on this: a cancelled retrain
// never disturbs the published snapshot).
//
//   CancelToken token;                    // controller + worker share this
//   // worker, inside the hot loop:
//   if (token.cancelled()) return CancelledStatus(token, "retrain");
//   // controller, on deadline overrun:
//   token.Cancel("watchdog: shard 3 exceeded 0.5s deadline");
//
// cancelled() is a single acquire load — cheap enough to poll per cluster
// fit. The reason string is guarded by a leaf mutex (never held across any
// other lock) so Cancel can race with reason() safely; the first Cancel wins
// and later calls are no-ops, so the surfaced reason names the original
// trigger, not the last writer.

#pragma once

#include <atomic>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dbaugur {

/// One-way cancellation latch with a human-readable reason. Thread-safe;
/// reusable via Reset() between operations (caller must guarantee no worker
/// still polls the token across a Reset).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Latches the token. The first call records `reason`; later calls are
  /// no-ops (the original trigger stays visible). Safe from any thread.
  void Cancel(const std::string& reason) DBAUGUR_EXCLUDES(mu_);

  /// True once Cancel has been called (acquire load; pairs with the release
  /// store in Cancel, so a true result also publishes the reason).
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// The first Cancel's reason; empty while not cancelled.
  std::string reason() const DBAUGUR_EXCLUDES(mu_);

  /// Re-arms the token for a new operation. Not synchronized against
  /// concurrent Cancel/cancelled — callers sequence it between operations
  /// (the retrain worker pool resets per-task tokens between cycles, after
  /// every worker has quiesced).
  void Reset() DBAUGUR_EXCLUDES(mu_);

 private:
  std::atomic<bool> cancelled_{false};
  /// Leaf lock guarding only the reason string; never held while calling out.
  mutable Mutex mu_;
  std::string reason_ DBAUGUR_GUARDED_BY(mu_);
};

/// Builds the Status a worker returns when it observes a cancelled token:
/// "Cancelled: <what> cancelled: <token reason>".
Status CancelledStatus(const CancelToken& token, const std::string& what);

}  // namespace dbaugur

#include "common/contracts.h"

#include <cstdlib>

#include "common/logging.h"

namespace dbaugur::contracts_internal {

void ContractFailure(const char* file, int line, const char* condition,
                     const std::string& details) {
  std::ostringstream oss;
  oss << "CHECK failed: " << condition << " at " << file << ":" << line;
  if (!details.empty()) oss << " | " << details;
  // Bypass the level filter: a contract violation must be visible even when
  // the caller silenced logging (e.g. tests default to kWarn or kOff).
  internal::LogMessage(LogLevel::kError, oss.str());
  std::abort();
}

}  // namespace dbaugur::contracts_internal

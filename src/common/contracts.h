// Runtime contracts for DBAugur (CHECK/DCHECK tiers, RocksDB/Abseil idiom).
//
// The forecasting pipeline chains numerically fragile stages (DTW band math →
// Ball-Tree pruning → clustering → NN training → ensemble weighting), and a
// shape mismatch that slips through becomes silent memory corruption. Bare
// `assert()` is compiled out by `-DNDEBUG` — i.e. in exactly the Release
// configuration users run — so library invariants use these macros instead.
//
// Tier policy:
//  - DBAUGUR_CHECK*  — always on, every build type. Use for API-boundary
//    preconditions and invariants whose violation corrupts memory or state
//    (shape mismatches, error-Status value() access, bad configuration).
//    Cost must be O(1) per call, not per element.
//  - DBAUGUR_DCHECK* — on in non-NDEBUG builds and when the build sets
//    `-DDBAUGUR_ENABLE_DCHECKS` (the sanitizer presets do). Use for hot-path
//    checks (per-element index bounds) and redundant postconditions.
//
// On failure both tiers log through common/logging (bypassing the level
// filter) with file:line, the stringified condition, both operands for the
// comparison forms, and any extra message operands, then abort().

#pragma once

#include <sstream>
#include <string>
#include <utility>

namespace dbaugur::contracts_internal {

/// Logs the failure through common/logging and aborts. Never returns.
[[noreturn]] void ContractFailure(const char* file, int line,
                                  const char* condition,
                                  const std::string& details);

/// Streams every argument into one string ("x=", x, " y=", y → "x=3 y=4").
template <typename... Args>
std::string FormatArgs(Args&&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return std::string();
  } else {
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
  }
}

}  // namespace dbaugur::contracts_internal

/// Always-on contract: aborts with file:line and the formatted message
/// operands when `cond` is false. Usage:
///   DBAUGUR_CHECK(n > 0, "need positive n, got ", n);
#define DBAUGUR_CHECK(cond, ...)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::dbaugur::contracts_internal::ContractFailure(                    \
          __FILE__, __LINE__, #cond,                                     \
          ::dbaugur::contracts_internal::FormatArgs(__VA_ARGS__));       \
    }                                                                    \
  } while (0)

// Comparison form: evaluates each operand once and prints both values on
// failure, e.g. "CHECK failed: rows() == o.rows() ... lhs=3 rhs=4".
#define DBAUGUR_CHECK_OP_(a, op, b, ...)                                 \
  do {                                                                   \
    auto&& dbaugur_check_a_ = (a);                                       \
    auto&& dbaugur_check_b_ = (b);                                       \
    if (!(dbaugur_check_a_ op dbaugur_check_b_)) {                       \
      ::dbaugur::contracts_internal::ContractFailure(                    \
          __FILE__, __LINE__, #a " " #op " " #b,                         \
          ::dbaugur::contracts_internal::FormatArgs(                     \
              "lhs=", dbaugur_check_a_, " rhs=",                         \
              dbaugur_check_b_ __VA_OPT__(, " | ", ) __VA_ARGS__));      \
    }                                                                    \
  } while (0)

#define DBAUGUR_CHECK_EQ(a, b, ...) DBAUGUR_CHECK_OP_(a, ==, b, __VA_ARGS__)
#define DBAUGUR_CHECK_NE(a, b, ...) DBAUGUR_CHECK_OP_(a, !=, b, __VA_ARGS__)
#define DBAUGUR_CHECK_LT(a, b, ...) DBAUGUR_CHECK_OP_(a, <, b, __VA_ARGS__)
#define DBAUGUR_CHECK_LE(a, b, ...) DBAUGUR_CHECK_OP_(a, <=, b, __VA_ARGS__)
#define DBAUGUR_CHECK_GT(a, b, ...) DBAUGUR_CHECK_OP_(a, >, b, __VA_ARGS__)
#define DBAUGUR_CHECK_GE(a, b, ...) DBAUGUR_CHECK_OP_(a, >=, b, __VA_ARGS__)

#if !defined(NDEBUG) || defined(DBAUGUR_ENABLE_DCHECKS)
#define DBAUGUR_DCHECKS_ENABLED 1
#else
#define DBAUGUR_DCHECKS_ENABLED 0
#endif

#if DBAUGUR_DCHECKS_ENABLED
#define DBAUGUR_DCHECK(cond, ...) DBAUGUR_CHECK(cond, __VA_ARGS__)
#define DBAUGUR_DCHECK_EQ(a, b, ...) DBAUGUR_CHECK_EQ(a, b, __VA_ARGS__)
#define DBAUGUR_DCHECK_NE(a, b, ...) DBAUGUR_CHECK_NE(a, b, __VA_ARGS__)
#define DBAUGUR_DCHECK_LT(a, b, ...) DBAUGUR_CHECK_LT(a, b, __VA_ARGS__)
#define DBAUGUR_DCHECK_LE(a, b, ...) DBAUGUR_CHECK_LE(a, b, __VA_ARGS__)
#define DBAUGUR_DCHECK_GT(a, b, ...) DBAUGUR_CHECK_GT(a, b, __VA_ARGS__)
#define DBAUGUR_DCHECK_GE(a, b, ...) DBAUGUR_CHECK_GE(a, b, __VA_ARGS__)
#else
// Compiled out, but the operands stay type-checked so a DCHECK cannot rot in
// Release-only code paths. The dead branch is removed by the optimizer.
#define DBAUGUR_DCHECK(cond, ...) \
  do {                            \
    if (false) {                  \
      (void)(cond);               \
    }                             \
  } while (0)
#define DBAUGUR_DCHECK_OP_OFF_(a, b) \
  do {                               \
    if (false) {                     \
      (void)(a);                     \
      (void)(b);                     \
    }                                \
  } while (0)
#define DBAUGUR_DCHECK_EQ(a, b, ...) DBAUGUR_DCHECK_OP_OFF_(a, b)
#define DBAUGUR_DCHECK_NE(a, b, ...) DBAUGUR_DCHECK_OP_OFF_(a, b)
#define DBAUGUR_DCHECK_LT(a, b, ...) DBAUGUR_DCHECK_OP_OFF_(a, b)
#define DBAUGUR_DCHECK_LE(a, b, ...) DBAUGUR_DCHECK_OP_OFF_(a, b)
#define DBAUGUR_DCHECK_GT(a, b, ...) DBAUGUR_DCHECK_OP_OFF_(a, b)
#define DBAUGUR_DCHECK_GE(a, b, ...) DBAUGUR_DCHECK_OP_OFF_(a, b)
#endif

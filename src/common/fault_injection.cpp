#include "common/fault_injection.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <random>
#include <set>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dbaugur::fault {

namespace {

/// One installed schedule. `kind` selects which fields apply.
struct Schedule {
  enum class Kind { kFirstN, kAtIndices, kProbabilistic };
  Kind kind = Kind::kFirstN;
  uint64_t first_n = 0;             // kFirstN
  std::set<uint64_t> at;            // kAtIndices
  double probability = 0.0;         // kProbabilistic
  std::mt19937_64 rng{42};          // kProbabilistic (deterministic per site)
  SiteStats stats;
};

struct Registry {
  Mutex mu;
  // Scheduled sites plus bare counters for sites hit while active.
  std::map<std::string, Schedule> sites DBAUGUR_GUARDED_BY(mu);
  bool has_schedule DBAUGUR_GUARDED_BY(mu) = false;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaked: usable during shutdown
  return *r;
}

// Parses "kind:args" into *out. Returns false on malformed input.
bool ParseSchedule(const std::string& body, Schedule* out) {
  size_t colon = body.find(':');
  if (colon == std::string::npos) return false;
  std::string kind = body.substr(0, colon);
  std::string args = body.substr(colon + 1);
  if (args.empty()) return false;
  try {
    if (kind == "n") {
      out->kind = Schedule::Kind::kFirstN;
      size_t used = 0;
      out->first_n = std::stoull(args, &used);
      return used == args.size();
    }
    if (kind == "at") {
      out->kind = Schedule::Kind::kAtIndices;
      size_t pos = 0;
      while (pos < args.size()) {
        size_t comma = args.find(',', pos);
        std::string tok = args.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        size_t used = 0;
        out->at.insert(std::stoull(tok, &used));
        if (used != tok.size()) return false;
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      return !out->at.empty();
    }
    if (kind == "p") {
      out->kind = Schedule::Kind::kProbabilistic;
      uint64_t seed = 42;
      size_t used = 0;
      size_t colon2 = args.find(':');
      std::string prob = args.substr(0, colon2);
      out->probability = std::stod(prob, &used);
      if (used != prob.size()) return false;
      if (out->probability < 0.0 || out->probability > 1.0) return false;
      if (colon2 != std::string::npos) {
        std::string seed_str = args.substr(colon2 + 1);
        seed = std::stoull(seed_str, &used);
        if (used != seed_str.size()) return false;
      }
      out->rng.seed(seed);
      return true;
    }
  } catch (...) {  // std::stoull/stod reject non-numeric or overflow input
    return false;
  }
  return false;
}

// Applies DBAUGUR_FAULT_SPEC once at process start so any binary (tests,
// benches, chaos runs) can enable sites without code changes. Errors go to
// stderr directly: logging may not be constructed yet during static init.
struct EnvInit {
  EnvInit() {
    // getenv is single-threaded-safe here: this runs during static init,
    // before main() can spawn threads or call setenv.
    const char* spec = std::getenv("DBAUGUR_FAULT_SPEC");  // NOLINT(concurrency-mt-unsafe)
    if (spec == nullptr || *spec == '\0') return;
    Status st = Configure(spec);
    if (!st.ok()) {
      std::fprintf(stderr, "dbaugur: ignoring bad DBAUGUR_FAULT_SPEC: %s\n",
                   st.ToString().c_str());
    }
  }
};
// Reading the env var must happen at static-init time by design; the ctor's
// only throw path is bad_alloc on the spec strings, where terminating is fine.
const EnvInit g_env_init;  // NOLINT(cert-err58-cpp)

}  // namespace

namespace internal {

std::atomic<bool> g_active{false};

bool Hit(const char* site) {
  Registry& reg = GetRegistry();
  MutexLock lock(&reg.mu);
  Schedule& s = reg.sites[site];  // creates a bare counter for unknown sites
  uint64_t index = s.stats.hits++;
  bool fire = false;
  switch (s.kind) {
    case Schedule::Kind::kFirstN:
      fire = index < s.first_n;
      break;
    case Schedule::Kind::kAtIndices:
      fire = s.at.count(index) != 0;
      break;
    case Schedule::Kind::kProbabilistic:
      fire = s.probability > 0.0 &&
             std::uniform_real_distribution<double>(0.0, 1.0)(s.rng) <
                 s.probability;
      break;
  }
  if (fire) ++s.stats.fires;
  return fire;
}

}  // namespace internal

Status Configure(const std::string& spec) {
  std::map<std::string, Schedule> parsed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t semi = spec.find(';', pos);
    std::string entry = spec.substr(
        pos, semi == std::string::npos ? std::string::npos : semi - pos);
    if (!entry.empty()) {
      size_t eq = entry.find('=');
      if (eq == std::string::npos || eq == 0) {
        return Status::InvalidArgument("fault spec entry missing '=': " +
                                       entry);
      }
      Schedule s;
      if (!ParseSchedule(entry.substr(eq + 1), &s)) {
        return Status::InvalidArgument("bad fault schedule: " + entry);
      }
      parsed[entry.substr(0, eq)] = std::move(s);
    }
    if (semi == std::string::npos) break;
    pos = semi + 1;
  }
  Registry& reg = GetRegistry();
  MutexLock lock(&reg.mu);
  reg.sites = std::move(parsed);
  reg.has_schedule = !reg.sites.empty();
  internal::g_active.store(reg.has_schedule, std::memory_order_release);
  return Status::OK();
}

void Reset() {
  Registry& reg = GetRegistry();
  MutexLock lock(&reg.mu);
  reg.sites.clear();
  reg.has_schedule = false;
  internal::g_active.store(false, std::memory_order_release);
}

bool Active() {
  Registry& reg = GetRegistry();
  MutexLock lock(&reg.mu);
  return reg.has_schedule;
}

StatusOr<SiteStats> Stats(const std::string& site) {
  Registry& reg = GetRegistry();
  MutexLock lock(&reg.mu);
  auto it = reg.sites.find(site);
  if (it == reg.sites.end()) {
    return Status::NotFound("fault site never configured or hit: " + site);
  }
  return it->second.stats;
}

std::vector<std::pair<std::string, SiteStats>> AllStats() {
  Registry& reg = GetRegistry();
  MutexLock lock(&reg.mu);
  std::vector<std::pair<std::string, SiteStats>> out;
  out.reserve(reg.sites.size());
  for (const auto& [name, sched] : reg.sites) {
    out.emplace_back(name, sched.stats);
  }
  return out;
}

}  // namespace dbaugur::fault

// Deterministic fault injection for robustness testing.
//
// Production code marks failure-prone spots with named *sites*:
//
//   if (DBAUGUR_FAULT_POINT("serve.retrain.build")) {
//     return Status::Internal("injected retrain failure");
//   }
//
// A site does nothing until a *schedule* is installed for its name, either
// programmatically (fault::Configure) or through the DBAUGUR_FAULT_SPEC
// environment variable (read once at process start). Schedules are fully
// deterministic so injected failures reproduce run-to-run:
//
//   site=n:3          fire on the first 3 hits of the site
//   site=at:0,4,5     fire on hit indices 0, 4 and 5 (0-based, per site)
//   site=p:0.25:99    fire each hit with probability 0.25 from a PRNG
//                     seeded with 99 (seed defaults to 42) — deterministic
//                     given the site's hit order
//
// Multiple sites are ';'-separated: "a.b=n:1;c.d=p:0.5:7".
//
// Cost model: when no schedule is installed the hook is one relaxed atomic
// load and a predicted-not-taken branch (sub-nanosecond; measured by
// bench/serve_throughput). Compiling with -DDBAUGUR_FAULT_INJECTION=0
// replaces every hook with the constant `false`, a branch-free no-op the
// optimizer deletes entirely.
//
// Thread safety: Configure/Reset/Stats serialize on an internal mutex; the
// hot-path gate is an atomic flag. Hits on an *active* registry also take the
// mutex — acceptable because faults are only ever enabled in tests and chaos
// runs, never in production serving.
//
// Known sites (grep for DBAUGUR_FAULT_POINT):
//   serve.ingest.corrupt   TraceIngestor::Offer — corrupts the event's count
//                          to NaN before validation (garbage-row simulation)
//   serve.retrain.build    serve::Retrainer::Rebuild — fails the cycle
//   serve.retrain.hang     serve::Retrainer::Rebuild — the cycle never
//                          finishes until its CancelToken fires (watchdog
//                          exercise); with no token it fails fast instead of
//                          deadlocking the caller
//   serve.retrain.slow     serve::Retrainer::Rebuild — stalls the cycle
//                          ~200ms (deadline-overrun exercise), completing
//                          normally unless cancelled first
//   serve.retrain.diverge  snapshot build — marks one cluster's fit diverged
//   binio.save.write       binio::SaveToFile — torn half-write, then error
//   binio.save.sync        binio::SaveToFile — fsync failure before rename
//   binio.save.rename      binio::SaveToFile — rename failure (tmp left)

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

#ifndef DBAUGUR_FAULT_INJECTION
#define DBAUGUR_FAULT_INJECTION 1
#endif

namespace dbaugur::fault {

/// Per-site counters since the last Configure/Reset.
struct SiteStats {
  uint64_t hits = 0;   ///< Times the site was evaluated while faults active.
  uint64_t fires = 0;  ///< Times the site reported "fail now".
};

/// Installs the schedules described by `spec` (grammar above), replacing any
/// previous configuration and zeroing all counters. An empty spec is
/// equivalent to Reset(). On a parse error nothing is installed and the
/// previous configuration stays in force.
Status Configure(const std::string& spec);

/// Removes every schedule and zeroes all counters; hooks go back to the
/// single-load fast path.
void Reset();

/// True when at least one schedule is installed.
bool Active();

/// Counters for one site (NotFound when the site has never been hit while
/// active and has no schedule).
StatusOr<SiteStats> Stats(const std::string& site);

/// All known sites (scheduled or hit-while-active) with their counters.
std::vector<std::pair<std::string, SiteStats>> AllStats();

namespace internal {

extern std::atomic<bool> g_active;

/// Slow path: records a hit for `site` and returns the schedule's verdict.
bool Hit(const char* site);

}  // namespace internal
}  // namespace dbaugur::fault

#if DBAUGUR_FAULT_INJECTION
#define DBAUGUR_FAULT_POINT(site)                                        \
  (::dbaugur::fault::internal::g_active.load(std::memory_order_acquire) \
       ? ::dbaugur::fault::internal::Hit(site)                           \
       : false)
#else
#define DBAUGUR_FAULT_POINT(site) (false)
#endif

// Deterministic integer mixing + shard routing.
//
// Mix64 is the SplitMix64 finalizer: one well-mixed word from one input word,
// with no RNG state to carry. It backs two contracts that must stay pure
// functions so tests can recompute them exactly:
//   - the serve-layer backoff jitter (ForecastService::ComputeBackoffSeconds),
//   - shard routing (ShardOfKey): which shard owns a template/cluster key.
// Changing these constants silently re-routes every persisted shard and
// reshuffles every backoff schedule — treat them as part of the on-disk
// format.

#pragma once

#include <cstddef>
#include <cstdint>

namespace dbaugur {

/// SplitMix64 finalizer (Steele/Lea/Flood). Bijective on uint64_t.
inline uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// The shard owning `key` among `shard_count` shards. Deterministic across
/// runs, hosts, and save/load; mixing first means sequential template ids
/// spread uniformly instead of striping (id % N would put every hot
/// low-numbered template on the same few shards under skewed id assignment).
/// shard_count must be >= 1 (callers validate; a 0 count would divide by 0).
inline size_t ShardOfKey(uint64_t key, size_t shard_count) {
  return static_cast<size_t>(Mix64(key) % static_cast<uint64_t>(shard_count));
}

}  // namespace dbaugur

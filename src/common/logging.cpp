#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace dbaugur {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {
void LogMessage(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[dbaugur %s] %s\n", LevelName(level), msg.c_str());
}
}  // namespace internal

}  // namespace dbaugur

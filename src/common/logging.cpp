#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dbaugur {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

// Guards the sink pointer and every sink invocation: one message in, one
// complete line out, with no interleaving between concurrent writers.
// Mutex's constexpr constructor makes this constant-initialized, so it is
// safe to lock even from code running during static initialization.
Mutex g_sink_mu;
LogSinkFn g_sink DBAUGUR_GUARDED_BY(g_sink_mu) = nullptr;  // null => stderr
void* g_sink_user DBAUGUR_GUARDED_BY(g_sink_mu) = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void SetLogSink(LogSinkFn sink, void* user) {
  MutexLock lock(&g_sink_mu);
  g_sink = sink;
  g_sink_user = user;
}

namespace internal {
void LogMessage(LogLevel level, const std::string& msg) {
  // Format outside the lock; emit under it in a single sink call.
  std::string line;
  line.reserve(msg.size() + 24);
  line += "[dbaugur ";
  line += LevelName(level);
  line += "] ";
  line += msg;
  line += '\n';
  MutexLock lock(&g_sink_mu);
  if (g_sink != nullptr) {
    g_sink(level, line, g_sink_user);
  } else {
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}
}  // namespace internal

}  // namespace dbaugur

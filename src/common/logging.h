// Minimal leveled logging for library diagnostics.
//
// Defaults to kWarn so tests and benches stay quiet; callers can raise the
// level to trace training progress (examples do this).
//
// Thread safety: the serving layer logs concurrently from ingest, retrain,
// and query threads. Each message is formatted into one complete line first
// and then handed to the sink under a global mutex in a single write, so
// concurrent messages can interleave only at line granularity — never within
// a line. SetLogSink swaps the sink under the same mutex (tests capture
// lines; the default sink writes to stderr).

#pragma once

#include <sstream>
#include <string>

namespace dbaugur {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is emitted to the sink.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Receives one complete, newline-terminated log line per message. Called
/// under the logging mutex: implementations must not log re-entrantly.
using LogSinkFn = void (*)(LogLevel level, const std::string& line, void* user);

/// Replaces the sink (nullptr restores the default stderr sink). The swap is
/// serialized against in-flight messages.
void SetLogSink(LogSinkFn sink, void* user);

namespace internal {
void LogMessage(LogLevel level, const std::string& msg);
}  // namespace internal

}  // namespace dbaugur

#define DBAUGUR_LOG(level, expr)                                        \
  do {                                                                  \
    if (static_cast<int>(level) >=                                      \
        static_cast<int>(::dbaugur::GetLogLevel())) {                   \
      std::ostringstream _oss;                                          \
      _oss << expr;                                                     \
      ::dbaugur::internal::LogMessage(level, _oss.str());               \
    }                                                                   \
  } while (0)

#define DBAUGUR_DEBUG(expr) DBAUGUR_LOG(::dbaugur::LogLevel::kDebug, expr)
#define DBAUGUR_INFO(expr) DBAUGUR_LOG(::dbaugur::LogLevel::kInfo, expr)
#define DBAUGUR_WARN(expr) DBAUGUR_LOG(::dbaugur::LogLevel::kWarn, expr)
#define DBAUGUR_ERROR(expr) DBAUGUR_LOG(::dbaugur::LogLevel::kError, expr)

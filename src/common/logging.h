// Minimal leveled logging for library diagnostics.
//
// Defaults to kWarn so tests and benches stay quiet; callers can raise the
// level to trace training progress (examples do this).

#pragma once

#include <sstream>
#include <string>

namespace dbaugur {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is emitted to stderr.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void LogMessage(LogLevel level, const std::string& msg);
}  // namespace internal

}  // namespace dbaugur

#define DBAUGUR_LOG(level, expr)                                        \
  do {                                                                  \
    if (static_cast<int>(level) >=                                      \
        static_cast<int>(::dbaugur::GetLogLevel())) {                   \
      std::ostringstream _oss;                                          \
      _oss << expr;                                                     \
      ::dbaugur::internal::LogMessage(level, _oss.str());               \
    }                                                                   \
  } while (0)

#define DBAUGUR_DEBUG(expr) DBAUGUR_LOG(::dbaugur::LogLevel::kDebug, expr)
#define DBAUGUR_INFO(expr) DBAUGUR_LOG(::dbaugur::LogLevel::kInfo, expr)
#define DBAUGUR_WARN(expr) DBAUGUR_LOG(::dbaugur::LogLevel::kWarn, expr)
#define DBAUGUR_ERROR(expr) DBAUGUR_LOG(::dbaugur::LogLevel::kError, expr)

#include "common/math_utils.h"

#include <algorithm>
#include <cmath>

namespace dbaugur {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  size_t mid = (v.size() - 1) / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(mid), v.end());
  return v[mid];
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  double ma = Mean(a), mb = Mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  double denom = std::sqrt(da * db);
  if (denom <= 0.0) return 0.0;
  return num / denom;
}

StatusOr<std::vector<double>> SolveLinearSystem(std::vector<double> a,
                                                std::vector<double> b,
                                                size_t n) {
  if (a.size() != n * n || b.size() != n) {
    return Status::InvalidArgument("SolveLinearSystem: dimension mismatch");
  }
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    double best = std::fabs(a[col * n + col]);
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::fabs(a[r * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return Status::Internal("SolveLinearSystem: singular matrix");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    double inv = 1.0 / a[col * n + col];
    for (size_t r = col + 1; r < n; ++r) {
      double factor = a[r * n + col] * inv;
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) a[r * n + c] -= factor * a[col * n + c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double s = b[ri];
    for (size_t c = ri + 1; c < n; ++c) s -= a[ri * n + c] * x[c];
    x[ri] = s / a[ri * n + ri];
  }
  return x;
}

StatusOr<std::vector<double>> LeastSquares(const std::vector<double>& x,
                                           const std::vector<double>& y,
                                           size_t rows, size_t cols,
                                           double ridge) {
  if (x.size() != rows * cols || y.size() != rows) {
    return Status::InvalidArgument("LeastSquares: dimension mismatch");
  }
  if (rows < cols) {
    return Status::InvalidArgument("LeastSquares: underdetermined system");
  }
  // Normal equations: (X^T X + ridge I) beta = X^T y.
  std::vector<double> xtx(cols * cols, 0.0);
  std::vector<double> xty(cols, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    const double* row = &x[r * cols];
    for (size_t i = 0; i < cols; ++i) {
      xty[i] += row[i] * y[r];
      for (size_t j = i; j < cols; ++j) xtx[i * cols + j] += row[i] * row[j];
    }
  }
  for (size_t i = 0; i < cols; ++i) {
    for (size_t j = 0; j < i; ++j) xtx[i * cols + j] = xtx[j * cols + i];
    xtx[i * cols + i] += ridge;
  }
  return SolveLinearSystem(std::move(xtx), std::move(xty), cols);
}

std::vector<double> Softmax(const std::vector<double>& v) {
  std::vector<double> out(v.size(), 0.0);
  if (v.empty()) return out;
  double mx = *std::max_element(v.begin(), v.end());
  double sum = 0.0;
  for (size_t i = 0; i < v.size(); ++i) {
    out[i] = std::exp(v[i] - mx);
    sum += out[i];
  }
  for (double& o : out) o /= sum;
  return out;
}

}  // namespace dbaugur

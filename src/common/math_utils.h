// Small shared math helpers used across modules.

#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/status.h"

namespace dbaugur {

/// Mean of a vector (0 for empty input).
double Mean(const std::vector<double>& v);

/// Population variance (0 for fewer than 2 elements).
double Variance(const std::vector<double>& v);

/// Population standard deviation.
double StdDev(const std::vector<double>& v);

/// Pearson correlation of two equal-length vectors; 0 when undefined.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Median (0 for empty input). Takes a copy: selection reorders elements.
/// Even-length inputs use the lower middle element, which keeps the result an
/// actual sample value — what the MAD-based outlier clamp wants.
double Median(std::vector<double> v);

/// Numerically stable sigmoid.
inline double Sigmoid(double x) {
  if (x >= 0) {
    double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  double z = std::exp(x);
  return z / (1.0 + z);
}

/// f32 twin of Sigmoid: the same stable two-branch form at float width
/// (used by the opt-in f32 neural training path).
inline float Sigmoid(float x) {
  if (x >= 0.0f) {
    float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  float z = std::exp(x);
  return z / (1.0f + z);
}

/// Hyperbolic tangent passthrough (kept for symmetry with Sigmoid).
inline double Tanh(double x) { return std::tanh(x); }

/// Clamps x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Solves the linear system A x = b for a dense square matrix A (row-major,
/// n x n) via Gaussian elimination with partial pivoting. Returns
/// InvalidArgument on dimension mismatch and Internal when A is singular.
StatusOr<std::vector<double>> SolveLinearSystem(std::vector<double> a,
                                                std::vector<double> b,
                                                size_t n);

/// Ordinary least squares: finds beta minimizing ||X beta - y||^2 where X is
/// row-major (rows x cols). Adds `ridge` * I to the normal equations for
/// numerical stability (ridge >= 0). Returns the coefficient vector.
StatusOr<std::vector<double>> LeastSquares(const std::vector<double>& x,
                                           const std::vector<double>& y,
                                           size_t rows, size_t cols,
                                           double ridge = 1e-8);

/// Softmax over a vector (numerically stable).
std::vector<double> Softmax(const std::vector<double>& v);

}  // namespace dbaugur

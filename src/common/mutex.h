// Capability-annotated mutex / scoped-lock / condition-variable wrappers.
//
// Thin, zero-overhead shims over std::mutex / std::condition_variable whose
// only job is to carry the Clang thread-safety annotations that std:: types
// lack. Every mutex in src/serve and src/common is one of these, and every
// field it protects is tagged DBAUGUR_GUARDED_BY, so the locking contracts
// that used to live in comments ("guarded by mu_", "caller holds
// retrain_mu_") are now compile errors when violated — see
// common/thread_annotations.h for the guarantee and its limits.
//
// Usage:
//
//   class Account {
//     Mutex mu_;
//     int64_t balance_ DBAUGUR_GUARDED_BY(mu_) = 0;
//    public:
//     void Deposit(int64_t n) {
//       MutexLock lock(&mu_);
//       balance_ += n;          // OK: lock held for the scope
//     }
//     void Broken(int64_t n) {
//       balance_ += n;          // -Werror=thread-safety under Clang
//     }
//   };
//
// Condition waits: CondVar::Wait/WaitUntil require the mutex to be held
// (DBAUGUR_REQUIRES) and re-hold it on return, exactly like
// std::condition_variable, but without needing a std::unique_lock — callers
// keep using MutexLock and write the predicate loop explicitly:
//
//   MutexLock lock(&mu_);
//   while (!ready_) cv_.Wait(&mu_);
//
// (Explicit loops instead of lambda predicates on purpose: the analysis
// checks lambda bodies as unannotated functions, so a `[&]{ return ready_; }`
// predicate reading a guarded field would be rejected.)

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace dbaugur {

class CondVar;

/// Standard exclusive mutex, annotated as a Clang capability. Constexpr
/// constructor (inherited from std::mutex) so namespace-scope instances are
/// constant-initialized and safe to lock during static initialization.
class DBAUGUR_CAPABILITY("mutex") Mutex {
 public:
  constexpr Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DBAUGUR_ACQUIRE() { mu_.lock(); }
  void Unlock() DBAUGUR_RELEASE() { mu_.unlock(); }
  bool TryLock() DBAUGUR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // needs the native handle for the wait protocol
  std::mutex mu_;
};

/// RAII scoped lock (the only way code in this repo should hold a Mutex).
class DBAUGUR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DBAUGUR_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() DBAUGUR_RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with Mutex. Waits atomically release the mutex
/// and re-acquire it before returning (std::condition_variable semantics via
/// the adopt/release protocol on the wrapped native mutex).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken). `mu` must be held; it is
  /// released for the duration of the wait and held again on return.
  void Wait(Mutex* mu) DBAUGUR_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // the caller's MutexLock still owns the mutex
  }

  /// Wait with a deadline. Returns true when the deadline passed without a
  /// notification (timeout), false when woken. Same lock protocol as Wait.
  bool WaitUntil(Mutex* mu, std::chrono::steady_clock::time_point deadline)
      DBAUGUR_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    std::cv_status st = cv_.wait_until(native, deadline);
    native.release();
    return st == std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dbaugur

#include "common/rng.h"

#include <algorithm>
#include <numeric>

namespace dbaugur {

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::shuffle(idx.begin(), idx.end(), engine_);
  return idx;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> idx = Permutation(n);
  if (k < idx.size()) idx.resize(k);
  return idx;
}

}  // namespace dbaugur

// Deterministic random number generation.
//
// All stochastic components (weight init, minibatch sampling, synthetic
// workload generators) draw from an explicitly seeded Rng so experiments,
// tests, and benches are reproducible run-to-run.

#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace dbaugur {

/// A seeded pseudo-random source wrapping std::mt19937_64 with the handful of
/// distributions the library needs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean / standard deviation.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Poisson draw with the given rate (clamped to >= 0).
  int64_t Poisson(double lambda) {
    if (lambda <= 0.0) return 0;
    return std::poisson_distribution<int64_t>(lambda)(engine_);
  }

  /// Bernoulli draw.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponential draw with the given rate.
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Returns a random permutation of {0, ..., n-1}.
  std::vector<size_t> Permutation(size_t n);

  /// Samples `k` distinct indices from {0, ..., n-1} (k <= n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dbaugur

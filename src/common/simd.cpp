#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace dbaugur::simd {
namespace {

// Widest tier this *build* contains kernels for. The per-tier TUs are only
// compiled when CMake verifies the compiler accepts the -m<isa> flags
// (DBAUGUR_SIMD_HAS_* are PUBLIC defines on dbaugur_common), so dispatch must
// never select a tier whose symbols were not emitted.
Tier MaxCompiledTier() {
#if defined(DBAUGUR_SIMD_HAS_AVX512)
  return Tier::kAvx512;
#elif defined(DBAUGUR_SIMD_HAS_AVX2)
  return Tier::kAvx2;
#elif defined(DBAUGUR_SIMD_HAS_SSE2)
  return Tier::kSse2;
#else
  return Tier::kScalar;
#endif
}

Tier MaxCpuTier() {
#if DBAUGUR_SIMD_X86
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    return Tier::kAvx512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Tier::kAvx2;
  }
  if (__builtin_cpu_supports("sse2")) {
    return Tier::kSse2;
  }
#endif
  return Tier::kScalar;
}

// Parses DBAUGUR_SIMD. Returns the cap, or kAvx512 (no cap) when unset;
// unknown values warn once and impose no cap.
Tier EnvCap() {
  const char* env = std::getenv("DBAUGUR_SIMD");
  if (env == nullptr || *env == '\0') return Tier::kAvx512;
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0) {
    return Tier::kScalar;
  }
  if (std::strcmp(env, "sse2") == 0) return Tier::kSse2;
  if (std::strcmp(env, "avx2") == 0) return Tier::kAvx2;
  if (std::strcmp(env, "avx512") == 0) return Tier::kAvx512;
  DBAUGUR_WARN("ignoring unknown DBAUGUR_SIMD value '"
               << env << "' (want off|scalar|sse2|avx2|avx512)");
  return Tier::kAvx512;
}

// -1 = no override; otherwise the forced tier. Relaxed is enough: the value
// is set once by test/bench setup before kernels run on other threads.
std::atomic<int> g_forced_tier{-1};

}  // namespace

Tier MaxSupportedTier() {
  static const Tier tier = [] {
    const Tier cpu = MaxCpuTier();
    const Tier compiled = MaxCompiledTier();
    return cpu < compiled ? cpu : compiled;
  }();
  return tier;
}

Tier ActiveTier() {
  const int forced = g_forced_tier.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Tier>(forced);
  static const Tier auto_tier = [] {
    const Tier cap = EnvCap();
    const Tier max = MaxSupportedTier();
    return cap < max ? cap : max;
  }();
  return auto_tier;
}

bool ForceTier(Tier t) {
  if (t < Tier::kScalar || t > MaxSupportedTier()) return false;
  g_forced_tier.store(static_cast<int>(t), std::memory_order_relaxed);
  return true;
}

void ResetForcedTier() {
  g_forced_tier.store(-1, std::memory_order_relaxed);
}

int SupportedTiers(Tier out[4]) {
  const int max = static_cast<int>(MaxSupportedTier());
  for (int t = 0; t <= max; ++t) out[t] = static_cast<Tier>(t);
  return max + 1;
}

const char* TierName(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse2:
      return "sse2";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::string CpuFeatures() {
  std::string features;
  auto add = [&features](bool has, const char* name) {
    if (!has) return;
    if (!features.empty()) features += ' ';
    features += name;
  };
#if DBAUGUR_SIMD_X86
  add(__builtin_cpu_supports("sse2"), "sse2");
  add(__builtin_cpu_supports("sse4.2"), "sse4.2");
  add(__builtin_cpu_supports("avx"), "avx");
  add(__builtin_cpu_supports("avx2"), "avx2");
  add(__builtin_cpu_supports("fma"), "fma");
  add(__builtin_cpu_supports("avx512f"), "avx512f");
  add(__builtin_cpu_supports("avx512dq"), "avx512dq");
  add(__builtin_cpu_supports("avx512vl"), "avx512vl");
  add(__builtin_cpu_supports("avx512bw"), "avx512bw");
#else
  add(true, "non-x86");
#endif
  if (features.empty()) features = "none";
  return features;
}

}  // namespace dbaugur::simd

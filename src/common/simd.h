#ifndef DBAUGUR_COMMON_SIMD_H_
#define DBAUGUR_COMMON_SIMD_H_

// Portable SIMD layer: runtime-dispatched tiers + compile-time ISA wrappers.
//
// This header is the ONLY place in the tree where raw x86 intrinsics may
// appear (enforced by tools/lint.py rule `raw-simd-intrinsics`). Kernels are
// written once against the `VecD` / `VecF` wrapper types and compiled into
// per-tier translation units (src/nn/simd_tier_*.cpp, src/dtw/simd_tier_*.cpp)
// with the matching -m<isa> flags; a function-pointer dispatch keyed on
// `ActiveTier()` picks the widest tier the host CPU, the build, and the
// `DBAUGUR_SIMD` environment override all allow.
//
// Two distinct things live here:
//
//  1. The runtime tier API (Tier, ActiveTier, ForceTier, ...). Declared here,
//     defined in simd.cpp, compiled with baseline flags — safe to call from
//     anywhere.
//
//  2. The ISA wrapper types. Each supported ISA gets its own namespace
//     (isa_sse2 / isa_avx2 / isa_avx512 / isa_scalar) so that per-tier TUs
//     compiled with different -m flags never share mangled symbol names: an
//     inline helper emitted with AVX-512 codegen must not be ODR-merged into
//     a binary that runs on an AVX2-only host. `DBAUGUR_SIMD_ISA` names the
//     widest namespace the current TU's flags permit; tier TUs use it via the
//     `best` alias below.
//
// Numerics contract (see README "SIMD kernels & runtime dispatch"):
//  - Min/Max follow the x86 semantics (second operand returned on NaN).
//  - Fmadd(a,b,c) is a*b+c, fused (single rounding) on FMA-capable tiers and
//    two-rounding on SSE2/scalar. Kernels that must stay bit-identical to the
//    scalar tier (DTW) use explicit `a*b + c` instead.
//  - Exp/Sigmoid/Tanh are Cephes-style polynomial approximations, within a
//    few ULP of libm; inputs outside ±709 (f64) / ±87 (f32) saturate.

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#define DBAUGUR_SIMD_X86 1
#include <immintrin.h>
#else
#define DBAUGUR_SIMD_X86 0
#endif

namespace dbaugur::simd {

// Dispatch tiers, widest last. On x86-64 kSse2 is always reachable (SSE2 is
// baseline); kScalar runs the original untouched C++ kernels and is the
// bit-exactness reference.
enum class Tier : int { kScalar = 0, kSse2 = 1, kAvx2 = 2, kAvx512 = 3 };

// Widest tier the host CPU *and* this build support (env override ignored).
Tier MaxSupportedTier();

// Tier the dispatch tables use right now: ForceTier() override if set, else
// min(MaxSupportedTier(), DBAUGUR_SIMD env cap). DBAUGUR_SIMD accepts
// off|scalar|sse2|avx2|avx512 (unknown values warn once and are ignored).
Tier ActiveTier();

// Test/bench hook: pin the dispatch tier. Returns false (and changes nothing)
// if `t` exceeds MaxSupportedTier(). ResetForcedTier() restores auto.
bool ForceTier(Tier t);
void ResetForcedTier();

// All tiers from kScalar up to MaxSupportedTier(), for test sweeps.
// Writes up to 4 entries into `out`, returns the count.
int SupportedTiers(Tier out[4]);

const char* TierName(Tier t);

// Host CPU feature summary (e.g. "sse2 avx2 fma avx512f avx512dq avx512vl"),
// for bench JSON provenance. Reflects the CPU, not the build or env cap.
std::string CpuFeatures();

// ---------------------------------------------------------------------------
// ISA selection for the current translation unit.
// ---------------------------------------------------------------------------

#if DBAUGUR_SIMD_X86 && defined(__AVX512F__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__)
#define DBAUGUR_SIMD_ISA isa_avx512
#elif DBAUGUR_SIMD_X86 && defined(__AVX2__) && defined(__FMA__)
#define DBAUGUR_SIMD_ISA isa_avx2
#elif DBAUGUR_SIMD_X86 && defined(__SSE2__)
#define DBAUGUR_SIMD_ISA isa_sse2
#else
#define DBAUGUR_SIMD_ISA isa_scalar
#endif

// ---------------------------------------------------------------------------
// Generic transcendental bodies (shared across ISA namespaces; the Vec ops
// they call resolve by ADL into the namespace of V at instantiation).
// ---------------------------------------------------------------------------

namespace detail {

// Cephes exp() for f64 lanes: range-reduce by ln2 with an extended-precision
// split, then a degree-2/3 rational approximation. ~1-2 ULP vs libm.
template <typename V>
inline V ExpPoly64(V x) {
  x = Min(Max(x, V::Broadcast(-708.3964185322641)), V::Broadcast(709.436));
  const V n = RoundNearest(x * V::Broadcast(1.4426950408889634073599));
  x = x - n * V::Broadcast(6.93145751953125e-1);
  x = x - n * V::Broadcast(1.42860682030941723212e-6);
  const V xx = x * x;
  const V px =
      x * Fmadd(Fmadd(V::Broadcast(1.26177193074810590878e-4), xx,
                      V::Broadcast(3.02994407707441961300e-2)),
                xx, V::Broadcast(9.99999999999999999910e-1));
  const V qx =
      Fmadd(Fmadd(Fmadd(V::Broadcast(3.00198505138664455042e-6), xx,
                        V::Broadcast(2.52448340349684104192e-3)),
                  xx, V::Broadcast(2.27265548208155028766e-1)),
            xx, V::Broadcast(2.0));
  const V e = Fmadd(V::Broadcast(2.0), px / (qx - px), V::Broadcast(1.0));
  return e * Pow2(n);
}

// Cephes expf() for f32 lanes: degree-5 polynomial after ln2 reduction.
template <typename V>
inline V ExpPoly32(V x) {
  x = Min(Max(x, V::Broadcast(-87.3365447504019f)),
          V::Broadcast(88.3762626647949f));
  const V n = RoundNearest(x * V::Broadcast(1.44269504088896341f));
  x = x - n * V::Broadcast(0.693359375f);
  x = x - n * V::Broadcast(-2.12194440e-4f);
  V y = V::Broadcast(1.9875691500e-4f);
  y = Fmadd(y, x, V::Broadcast(1.3981999507e-3f));
  y = Fmadd(y, x, V::Broadcast(8.3334519073e-3f));
  y = Fmadd(y, x, V::Broadcast(4.1665795894e-2f));
  y = Fmadd(y, x, V::Broadcast(1.6666665459e-1f));
  y = Fmadd(y, x, V::Broadcast(5.0000001201e-1f));
  y = Fmadd(y, x * x, x + V::Broadcast(1.0f));
  return y * Pow2(n);
}

template <typename V>
inline V ExpImpl(V x) {
  if constexpr (sizeof(typename V::Elem) == 8) {
    return ExpPoly64(x);
  } else {
    return ExpPoly32(x);
  }
}

// Numerically stable logistic, mirroring the two-branch scalar
// dbaugur::Sigmoid: both branches share e = exp(-|x|) in (0, 1].
template <typename V>
inline V SigmoidImpl(V x) {
  using E = typename V::Elem;
  const V one = V::Broadcast(E(1));
  const V e = Exp(V::Zero() - Abs(x));
  const V denom = one + e;
  return Select(CmpGe(x, V::Zero()), one / denom, e / denom);
}

// tanh(x) = sign(x) * (1 - 2 / (exp(2|x|) + 1)). Exact at ±0, saturates to
// ±1 for large |x|; for |x| << 1 the subtraction cancels, leaving an absolute
// error of ~1 machine epsilon (documented in the kernel ULP policy).
template <typename V>
inline V TanhImpl(V x) {
  using E = typename V::Elem;
  const V one = V::Broadcast(E(1));
  const V two = V::Broadcast(E(2));
  const E clamp = sizeof(E) == 8 ? E(708) : E(87);
  const V a = Min(two * Abs(x), V::Broadcast(clamp));
  const V e = Exp(a);
  const V t = one - two / (e + one);
  return Or(t, And(x, V::SignMask()));
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Pure-scalar fallback "vectors" (width 1). Never dispatched on x86 — the
// scalar *tier* runs the original kernels — but keeps the generic kernel
// sources compilable on any architecture.
// ---------------------------------------------------------------------------

namespace isa_scalar {

struct MaskD {
  bool m;
};
struct MaskF {
  bool m;
};

struct VecD {
  using Elem = double;
  static constexpr std::size_t kWidth = 1;
  double v;
  static VecD Load(const double* p) { return {p[0]}; }
  static VecD LoadReversed(const double* p) { return {p[0]}; }
  static VecD Broadcast(double x) { return {x}; }
  static VecD Zero() { return {0.0}; }
  static VecD SignMask() { return {-0.0}; }
  void Store(double* p) const { p[0] = v; }
  friend VecD operator+(VecD a, VecD b) { return {a.v + b.v}; }
  friend VecD operator-(VecD a, VecD b) { return {a.v - b.v}; }
  friend VecD operator*(VecD a, VecD b) { return {a.v * b.v}; }
  friend VecD operator/(VecD a, VecD b) { return {a.v / b.v}; }
};

struct VecF {
  using Elem = float;
  static constexpr std::size_t kWidth = 1;
  float v;
  static VecF Load(const float* p) { return {p[0]}; }
  static VecF Broadcast(float x) { return {x}; }
  static VecF Zero() { return {0.0f}; }
  static VecF SignMask() { return {-0.0f}; }
  void Store(float* p) const { p[0] = v; }
  friend VecF operator+(VecF a, VecF b) { return {a.v + b.v}; }
  friend VecF operator-(VecF a, VecF b) { return {a.v - b.v}; }
  friend VecF operator*(VecF a, VecF b) { return {a.v * b.v}; }
  friend VecF operator/(VecF a, VecF b) { return {a.v / b.v}; }
};

inline VecD Min(VecD a, VecD b) { return {b.v < a.v ? b.v : a.v}; }
inline VecD Max(VecD a, VecD b) { return {a.v < b.v ? b.v : a.v}; }
inline VecD Fmadd(VecD a, VecD b, VecD c) { return {a.v * b.v + c.v}; }
inline VecD Abs(VecD a) { return {std::fabs(a.v)}; }
inline VecD And(VecD a, VecD b) {
  return {std::bit_cast<double>(std::bit_cast<std::uint64_t>(a.v) &
                                std::bit_cast<std::uint64_t>(b.v))};
}
inline VecD Or(VecD a, VecD b) {
  return {std::bit_cast<double>(std::bit_cast<std::uint64_t>(a.v) |
                                std::bit_cast<std::uint64_t>(b.v))};
}
inline MaskD CmpGe(VecD a, VecD b) { return {a.v >= b.v}; }
inline MaskD CmpEq(VecD a, VecD b) { return {a.v == b.v}; }
inline VecD Select(MaskD m, VecD a, VecD b) { return m.m ? a : b; }
inline double ReduceAdd(VecD a) { return a.v; }
inline double ReduceMin(VecD a) { return a.v; }
inline VecD RoundNearest(VecD a) { return {std::nearbyint(a.v)}; }
inline VecD Pow2(VecD n) { return {std::ldexp(1.0, static_cast<int>(n.v))}; }

inline VecF Min(VecF a, VecF b) { return {b.v < a.v ? b.v : a.v}; }
inline VecF Max(VecF a, VecF b) { return {a.v < b.v ? b.v : a.v}; }
inline VecF Fmadd(VecF a, VecF b, VecF c) { return {a.v * b.v + c.v}; }
inline VecF Abs(VecF a) { return {std::fabs(a.v)}; }
inline VecF And(VecF a, VecF b) {
  return {std::bit_cast<float>(std::bit_cast<std::uint32_t>(a.v) &
                               std::bit_cast<std::uint32_t>(b.v))};
}
inline VecF Or(VecF a, VecF b) {
  return {std::bit_cast<float>(std::bit_cast<std::uint32_t>(a.v) |
                               std::bit_cast<std::uint32_t>(b.v))};
}
inline MaskF CmpGe(VecF a, VecF b) { return {a.v >= b.v}; }
inline MaskF CmpEq(VecF a, VecF b) { return {a.v == b.v}; }
inline VecF Select(MaskF m, VecF a, VecF b) { return m.m ? a : b; }
inline float ReduceAdd(VecF a) { return a.v; }
inline VecF RoundNearest(VecF a) { return {std::nearbyintf(a.v)}; }
inline VecF Pow2(VecF n) { return {std::ldexp(1.0f, static_cast<int>(n.v))}; }

// On non-x86 the dispatch never leaves the scalar tier, so accuracy beats
// polynomial-consistency here: defer to libm.
inline VecD Exp(VecD x) { return {std::exp(x.v)}; }
inline VecF Exp(VecF x) { return {std::exp(x.v)}; }
inline VecD Sigmoid(VecD x) {
  if (x.v >= 0.0) {
    const double z = std::exp(-x.v);
    return {1.0 / (1.0 + z)};
  }
  const double z = std::exp(x.v);
  return {z / (1.0 + z)};
}
inline VecF Sigmoid(VecF x) {
  if (x.v >= 0.0f) {
    const float z = std::exp(-x.v);
    return {1.0f / (1.0f + z)};
  }
  const float z = std::exp(x.v);
  return {z / (1.0f + z)};
}
inline VecD Tanh(VecD x) { return {std::tanh(x.v)}; }
inline VecF Tanh(VecF x) { return {std::tanh(x.v)}; }

}  // namespace isa_scalar

#if DBAUGUR_SIMD_X86 && defined(__SSE2__)

// ---------------------------------------------------------------------------
// SSE2: 2 × f64, 4 × f32. Baseline on x86-64, no FMA (Fmadd rounds twice).
// ---------------------------------------------------------------------------

namespace isa_sse2 {

struct MaskD {
  __m128d m;
};
struct MaskF {
  __m128 m;
};

struct VecD {
  using Elem = double;
  static constexpr std::size_t kWidth = 2;
  __m128d v;
  static VecD Load(const double* p) { return {_mm_loadu_pd(p)}; }
  // Lanes l = 0..kWidth-1 read p[-l] (descending memory order).
  static VecD LoadReversed(const double* p) {
    const __m128d raw = _mm_loadu_pd(p - 1);
    return {_mm_shuffle_pd(raw, raw, 0x1)};
  }
  static VecD Broadcast(double x) { return {_mm_set1_pd(x)}; }
  static VecD Zero() { return {_mm_setzero_pd()}; }
  static VecD SignMask() { return {_mm_set1_pd(-0.0)}; }
  void Store(double* p) const { _mm_storeu_pd(p, v); }
  friend VecD operator+(VecD a, VecD b) { return {_mm_add_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {_mm_sub_pd(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {_mm_mul_pd(a.v, b.v)}; }
  friend VecD operator/(VecD a, VecD b) { return {_mm_div_pd(a.v, b.v)}; }
};

struct VecF {
  using Elem = float;
  static constexpr std::size_t kWidth = 4;
  __m128 v;
  static VecF Load(const float* p) { return {_mm_loadu_ps(p)}; }
  static VecF Broadcast(float x) { return {_mm_set1_ps(x)}; }
  static VecF Zero() { return {_mm_setzero_ps()}; }
  static VecF SignMask() { return {_mm_set1_ps(-0.0f)}; }
  void Store(float* p) const { _mm_storeu_ps(p, v); }
  friend VecF operator+(VecF a, VecF b) { return {_mm_add_ps(a.v, b.v)}; }
  friend VecF operator-(VecF a, VecF b) { return {_mm_sub_ps(a.v, b.v)}; }
  friend VecF operator*(VecF a, VecF b) { return {_mm_mul_ps(a.v, b.v)}; }
  friend VecF operator/(VecF a, VecF b) { return {_mm_div_ps(a.v, b.v)}; }
};

inline VecD Min(VecD a, VecD b) { return {_mm_min_pd(a.v, b.v)}; }
inline VecD Max(VecD a, VecD b) { return {_mm_max_pd(a.v, b.v)}; }
inline VecD Fmadd(VecD a, VecD b, VecD c) {
  return {_mm_add_pd(_mm_mul_pd(a.v, b.v), c.v)};
}
inline VecD And(VecD a, VecD b) { return {_mm_and_pd(a.v, b.v)}; }
inline VecD Or(VecD a, VecD b) { return {_mm_or_pd(a.v, b.v)}; }
inline VecD Abs(VecD a) {
  return {_mm_andnot_pd(_mm_set1_pd(-0.0), a.v)};
}
inline MaskD CmpGe(VecD a, VecD b) { return {_mm_cmpge_pd(a.v, b.v)}; }
inline MaskD CmpEq(VecD a, VecD b) { return {_mm_cmpeq_pd(a.v, b.v)}; }
inline VecD Select(MaskD m, VecD a, VecD b) {
  return {_mm_or_pd(_mm_and_pd(m.m, a.v), _mm_andnot_pd(m.m, b.v))};
}
inline double ReduceAdd(VecD a) {
  return _mm_cvtsd_f64(_mm_add_sd(a.v, _mm_unpackhi_pd(a.v, a.v)));
}
inline double ReduceMin(VecD a) {
  return _mm_cvtsd_f64(_mm_min_sd(a.v, _mm_unpackhi_pd(a.v, a.v)));
}
inline VecD RoundNearest(VecD a) {
  // cvtpd_epi32 rounds to nearest-even under the default MXCSR; exact for
  // the |n| <= 1100 exponents Exp produces.
  return {_mm_cvtepi32_pd(_mm_cvtpd_epi32(a.v))};
}
inline VecD Pow2(VecD n) {
  const __m128i i32 = _mm_cvtpd_epi32(n.v);
  const __m128i biased = _mm_add_epi32(i32, _mm_set1_epi32(1023));
  const __m128i i64 = _mm_unpacklo_epi32(biased, _mm_setzero_si128());
  return {_mm_castsi128_pd(_mm_slli_epi64(i64, 52))};
}

inline VecF Min(VecF a, VecF b) { return {_mm_min_ps(a.v, b.v)}; }
inline VecF Max(VecF a, VecF b) { return {_mm_max_ps(a.v, b.v)}; }
inline VecF Fmadd(VecF a, VecF b, VecF c) {
  return {_mm_add_ps(_mm_mul_ps(a.v, b.v), c.v)};
}
inline VecF And(VecF a, VecF b) { return {_mm_and_ps(a.v, b.v)}; }
inline VecF Or(VecF a, VecF b) { return {_mm_or_ps(a.v, b.v)}; }
inline VecF Abs(VecF a) {
  return {_mm_andnot_ps(_mm_set1_ps(-0.0f), a.v)};
}
inline MaskF CmpGe(VecF a, VecF b) { return {_mm_cmpge_ps(a.v, b.v)}; }
inline MaskF CmpEq(VecF a, VecF b) { return {_mm_cmpeq_ps(a.v, b.v)}; }
inline VecF Select(MaskF m, VecF a, VecF b) {
  return {_mm_or_ps(_mm_and_ps(m.m, a.v), _mm_andnot_ps(m.m, b.v))};
}
inline float ReduceAdd(VecF a) {
  const __m128 hi = _mm_movehl_ps(a.v, a.v);
  const __m128 sum2 = _mm_add_ps(a.v, hi);
  const __m128 hi1 = _mm_shuffle_ps(sum2, sum2, 0x1);
  return _mm_cvtss_f32(_mm_add_ss(sum2, hi1));
}
inline VecF RoundNearest(VecF a) {
  return {_mm_cvtepi32_ps(_mm_cvtps_epi32(a.v))};
}
inline VecF Pow2(VecF n) {
  const __m128i i32 = _mm_cvtps_epi32(n.v);
  const __m128i biased = _mm_add_epi32(i32, _mm_set1_epi32(127));
  return {_mm_castsi128_ps(_mm_slli_epi32(biased, 23))};
}

inline VecD Exp(VecD x) { return detail::ExpImpl(x); }
inline VecF Exp(VecF x) { return detail::ExpImpl(x); }
inline VecD Sigmoid(VecD x) { return detail::SigmoidImpl(x); }
inline VecF Sigmoid(VecF x) { return detail::SigmoidImpl(x); }
inline VecD Tanh(VecD x) { return detail::TanhImpl(x); }
inline VecF Tanh(VecF x) { return detail::TanhImpl(x); }

}  // namespace isa_sse2

#endif  // __SSE2__

#if DBAUGUR_SIMD_X86 && defined(__AVX2__) && defined(__FMA__)

// ---------------------------------------------------------------------------
// AVX2 + FMA: 4 × f64, 8 × f32.
// ---------------------------------------------------------------------------

namespace isa_avx2 {

struct MaskD {
  __m256d m;
};
struct MaskF {
  __m256 m;
};

struct VecD {
  using Elem = double;
  static constexpr std::size_t kWidth = 4;
  __m256d v;
  static VecD Load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static VecD LoadReversed(const double* p) {
    const __m256d raw = _mm256_loadu_pd(p - 3);
    return {_mm256_permute4x64_pd(raw, _MM_SHUFFLE(0, 1, 2, 3))};
  }
  static VecD Broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static VecD Zero() { return {_mm256_setzero_pd()}; }
  static VecD SignMask() { return {_mm256_set1_pd(-0.0)}; }
  void Store(double* p) const { _mm256_storeu_pd(p, v); }
  friend VecD operator+(VecD a, VecD b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend VecD operator/(VecD a, VecD b) { return {_mm256_div_pd(a.v, b.v)}; }
};

struct VecF {
  using Elem = float;
  static constexpr std::size_t kWidth = 8;
  __m256 v;
  static VecF Load(const float* p) { return {_mm256_loadu_ps(p)}; }
  static VecF Broadcast(float x) { return {_mm256_set1_ps(x)}; }
  static VecF Zero() { return {_mm256_setzero_ps()}; }
  static VecF SignMask() { return {_mm256_set1_ps(-0.0f)}; }
  void Store(float* p) const { _mm256_storeu_ps(p, v); }
  friend VecF operator+(VecF a, VecF b) { return {_mm256_add_ps(a.v, b.v)}; }
  friend VecF operator-(VecF a, VecF b) { return {_mm256_sub_ps(a.v, b.v)}; }
  friend VecF operator*(VecF a, VecF b) { return {_mm256_mul_ps(a.v, b.v)}; }
  friend VecF operator/(VecF a, VecF b) { return {_mm256_div_ps(a.v, b.v)}; }
};

inline VecD Min(VecD a, VecD b) { return {_mm256_min_pd(a.v, b.v)}; }
inline VecD Max(VecD a, VecD b) { return {_mm256_max_pd(a.v, b.v)}; }
inline VecD Fmadd(VecD a, VecD b, VecD c) {
  return {_mm256_fmadd_pd(a.v, b.v, c.v)};
}
inline VecD And(VecD a, VecD b) { return {_mm256_and_pd(a.v, b.v)}; }
inline VecD Or(VecD a, VecD b) { return {_mm256_or_pd(a.v, b.v)}; }
inline VecD Abs(VecD a) {
  return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
}
inline MaskD CmpGe(VecD a, VecD b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)};
}
inline MaskD CmpEq(VecD a, VecD b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ)};
}
inline VecD Select(MaskD m, VecD a, VecD b) {
  return {_mm256_blendv_pd(b.v, a.v, m.m)};
}
inline double ReduceAdd(VecD a) {
  const __m128d lo = _mm256_castpd256_pd128(a.v);
  const __m128d hi = _mm256_extractf128_pd(a.v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}
inline double ReduceMin(VecD a) {
  const __m128d lo = _mm256_castpd256_pd128(a.v);
  const __m128d hi = _mm256_extractf128_pd(a.v, 1);
  const __m128d s = _mm_min_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_min_sd(s, _mm_unpackhi_pd(s, s)));
}
inline VecD RoundNearest(VecD a) {
  return {_mm256_round_pd(a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
}
inline VecD Pow2(VecD n) {
  const __m128i i32 = _mm256_cvtpd_epi32(n.v);
  const __m128i biased = _mm_add_epi32(i32, _mm_set1_epi32(1023));
  const __m256i i64 = _mm256_cvtepi32_epi64(biased);
  return {_mm256_castsi256_pd(_mm256_slli_epi64(i64, 52))};
}

inline VecF Min(VecF a, VecF b) { return {_mm256_min_ps(a.v, b.v)}; }
inline VecF Max(VecF a, VecF b) { return {_mm256_max_ps(a.v, b.v)}; }
inline VecF Fmadd(VecF a, VecF b, VecF c) {
  return {_mm256_fmadd_ps(a.v, b.v, c.v)};
}
inline VecF And(VecF a, VecF b) { return {_mm256_and_ps(a.v, b.v)}; }
inline VecF Or(VecF a, VecF b) { return {_mm256_or_ps(a.v, b.v)}; }
inline VecF Abs(VecF a) {
  return {_mm256_andnot_ps(_mm256_set1_ps(-0.0f), a.v)};
}
inline MaskF CmpGe(VecF a, VecF b) {
  return {_mm256_cmp_ps(a.v, b.v, _CMP_GE_OQ)};
}
inline MaskF CmpEq(VecF a, VecF b) {
  return {_mm256_cmp_ps(a.v, b.v, _CMP_EQ_OQ)};
}
inline VecF Select(MaskF m, VecF a, VecF b) {
  return {_mm256_blendv_ps(b.v, a.v, m.m)};
}
inline float ReduceAdd(VecF a) {
  const __m128 lo = _mm256_castps256_ps128(a.v);
  const __m128 hi = _mm256_extractf128_ps(a.v, 1);
  const __m128 s = _mm_add_ps(lo, hi);
  const __m128 s2 = _mm_add_ps(s, _mm_movehl_ps(s, s));
  return _mm_cvtss_f32(_mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0x1)));
}
inline VecF RoundNearest(VecF a) {
  return {_mm256_round_ps(a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
}
inline VecF Pow2(VecF n) {
  const __m256i i32 = _mm256_cvtps_epi32(n.v);
  const __m256i biased = _mm256_add_epi32(i32, _mm256_set1_epi32(127));
  return {_mm256_castsi256_ps(_mm256_slli_epi32(biased, 23))};
}

inline VecD Exp(VecD x) { return detail::ExpImpl(x); }
inline VecF Exp(VecF x) { return detail::ExpImpl(x); }
inline VecD Sigmoid(VecD x) { return detail::SigmoidImpl(x); }
inline VecF Sigmoid(VecF x) { return detail::SigmoidImpl(x); }
inline VecD Tanh(VecD x) { return detail::TanhImpl(x); }
inline VecF Tanh(VecF x) { return detail::TanhImpl(x); }

}  // namespace isa_avx2

#endif  // __AVX2__ && __FMA__

#if DBAUGUR_SIMD_X86 && defined(__AVX512F__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__)

// ---------------------------------------------------------------------------
// AVX-512 (F + DQ + VL): 8 × f64, 16 × f32. Masks are native __mmask.
// ---------------------------------------------------------------------------

namespace isa_avx512 {

struct MaskD {
  __mmask8 m;
};
struct MaskF {
  __mmask16 m;
};

struct VecD {
  using Elem = double;
  static constexpr std::size_t kWidth = 8;
  __m512d v;
  static VecD Load(const double* p) { return {_mm512_loadu_pd(p)}; }
  static VecD LoadReversed(const double* p) {
    const __m512i idx = _mm512_set_epi64(0, 1, 2, 3, 4, 5, 6, 7);
    return {_mm512_permutexvar_pd(idx, _mm512_loadu_pd(p - 7))};
  }
  static VecD Broadcast(double x) { return {_mm512_set1_pd(x)}; }
  static VecD Zero() { return {_mm512_setzero_pd()}; }
  static VecD SignMask() { return {_mm512_set1_pd(-0.0)}; }
  void Store(double* p) const { _mm512_storeu_pd(p, v); }
  friend VecD operator+(VecD a, VecD b) { return {_mm512_add_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {_mm512_sub_pd(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {_mm512_mul_pd(a.v, b.v)}; }
  friend VecD operator/(VecD a, VecD b) { return {_mm512_div_pd(a.v, b.v)}; }
};

struct VecF {
  using Elem = float;
  static constexpr std::size_t kWidth = 16;
  __m512 v;
  static VecF Load(const float* p) { return {_mm512_loadu_ps(p)}; }
  static VecF Broadcast(float x) { return {_mm512_set1_ps(x)}; }
  static VecF Zero() { return {_mm512_setzero_ps()}; }
  static VecF SignMask() { return {_mm512_set1_ps(-0.0f)}; }
  void Store(float* p) const { _mm512_storeu_ps(p, v); }
  friend VecF operator+(VecF a, VecF b) { return {_mm512_add_ps(a.v, b.v)}; }
  friend VecF operator-(VecF a, VecF b) { return {_mm512_sub_ps(a.v, b.v)}; }
  friend VecF operator*(VecF a, VecF b) { return {_mm512_mul_ps(a.v, b.v)}; }
  friend VecF operator/(VecF a, VecF b) { return {_mm512_div_ps(a.v, b.v)}; }
};

inline VecD Min(VecD a, VecD b) { return {_mm512_min_pd(a.v, b.v)}; }
inline VecD Max(VecD a, VecD b) { return {_mm512_max_pd(a.v, b.v)}; }
inline VecD Fmadd(VecD a, VecD b, VecD c) {
  return {_mm512_fmadd_pd(a.v, b.v, c.v)};
}
inline VecD And(VecD a, VecD b) { return {_mm512_and_pd(a.v, b.v)}; }
inline VecD Or(VecD a, VecD b) { return {_mm512_or_pd(a.v, b.v)}; }
inline VecD Abs(VecD a) {
  return {_mm512_andnot_pd(_mm512_set1_pd(-0.0), a.v)};
}
inline MaskD CmpGe(VecD a, VecD b) {
  return {_mm512_cmp_pd_mask(a.v, b.v, _CMP_GE_OQ)};
}
inline MaskD CmpEq(VecD a, VecD b) {
  return {_mm512_cmp_pd_mask(a.v, b.v, _CMP_EQ_OQ)};
}
inline VecD Select(MaskD m, VecD a, VecD b) {
  return {_mm512_mask_blend_pd(m.m, b.v, a.v)};
}
inline double ReduceAdd(VecD a) { return _mm512_reduce_add_pd(a.v); }
inline double ReduceMin(VecD a) { return _mm512_reduce_min_pd(a.v); }
inline VecD RoundNearest(VecD a) { return {_mm512_roundscale_pd(a.v, 0)}; }
inline VecD Pow2(VecD n) {
  const __m256i i32 = _mm512_cvtpd_epi32(n.v);
  const __m256i biased = _mm256_add_epi32(i32, _mm256_set1_epi32(1023));
  const __m512i i64 = _mm512_cvtepi32_epi64(biased);
  return {_mm512_castsi512_pd(_mm512_slli_epi64(i64, 52))};
}

inline VecF Min(VecF a, VecF b) { return {_mm512_min_ps(a.v, b.v)}; }
inline VecF Max(VecF a, VecF b) { return {_mm512_max_ps(a.v, b.v)}; }
inline VecF Fmadd(VecF a, VecF b, VecF c) {
  return {_mm512_fmadd_ps(a.v, b.v, c.v)};
}
inline VecF And(VecF a, VecF b) { return {_mm512_and_ps(a.v, b.v)}; }
inline VecF Or(VecF a, VecF b) { return {_mm512_or_ps(a.v, b.v)}; }
inline VecF Abs(VecF a) {
  return {_mm512_andnot_ps(_mm512_set1_ps(-0.0f), a.v)};
}
inline MaskF CmpGe(VecF a, VecF b) {
  return {_mm512_cmp_ps_mask(a.v, b.v, _CMP_GE_OQ)};
}
inline MaskF CmpEq(VecF a, VecF b) {
  return {_mm512_cmp_ps_mask(a.v, b.v, _CMP_EQ_OQ)};
}
inline VecF Select(MaskF m, VecF a, VecF b) {
  return {_mm512_mask_blend_ps(m.m, b.v, a.v)};
}
inline float ReduceAdd(VecF a) { return _mm512_reduce_add_ps(a.v); }
inline VecF RoundNearest(VecF a) { return {_mm512_roundscale_ps(a.v, 0)}; }
inline VecF Pow2(VecF n) {
  const __m512i i32 = _mm512_cvtps_epi32(n.v);
  const __m512i biased = _mm512_add_epi32(i32, _mm512_set1_epi32(127));
  return {_mm512_castsi512_ps(_mm512_slli_epi32(biased, 23))};
}

inline VecD Exp(VecD x) { return detail::ExpImpl(x); }
inline VecF Exp(VecF x) { return detail::ExpImpl(x); }
inline VecD Sigmoid(VecD x) { return detail::SigmoidImpl(x); }
inline VecF Sigmoid(VecF x) { return detail::SigmoidImpl(x); }
inline VecD Tanh(VecD x) { return detail::TanhImpl(x); }
inline VecF Tanh(VecF x) { return detail::TanhImpl(x); }

}  // namespace isa_avx512

#endif  // __AVX512F__ && __AVX512DQ__ && __AVX512VL__

// Widest ISA namespace this TU's compile flags allow. Tier TUs define their
// kernels against `best::VecD` / `best::VecF`.
namespace best = DBAUGUR_SIMD_ISA;

}  // namespace dbaugur::simd

#endif  // DBAUGUR_COMMON_SIMD_H_

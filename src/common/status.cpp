#include "common/status.h"

namespace dbaugur {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kCancelled: return "Cancelled";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace dbaugur

// Status / StatusOr error-handling primitives (RocksDB/Abseil idiom).
//
// Fallible operations in DBAugur return `Status` (or `StatusOr<T>` when they
// produce a value) instead of throwing. This keeps failure paths explicit and
// cheap, which matters inside training loops and clustering scans.

#pragma once

#include <optional>
#include <string>
#include <utility>

#include "common/contracts.h"

namespace dbaugur {

/// Broad failure categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  kCancelled,
};

/// Lightweight result type: a code plus a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  /// Cooperative cancellation (see common/cancellation.h): the operation was
  /// stopped at a checkpoint before completing, leaving prior state intact.
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Renders e.g. "InvalidArgument: window must be positive".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or an error Status. Access via `value()` only
/// after checking `ok()`.
///
/// Misuse (constructing from an OK status, or reading the value of an error
/// or moved-from StatusOr) aborts via DBAUGUR_CHECK in every build type —
/// these were previously `assert()`s that `-DNDEBUG` silently stripped,
/// turning the misuse into a read of a disengaged optional.
template <typename T>
class StatusOr {
 public:
  // Implicit conversion is the point of StatusOr: `return value;` must work
  // at every call site.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  // Likewise for errors: `return Status::Internal(...);` must work.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    DBAUGUR_CHECK(!status_.ok(),
                  "StatusOr constructed from OK status without a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    DBAUGUR_CHECK(ok(), "StatusOr::value() called on error: ",
                  status_.ToString());
    DBAUGUR_CHECK(value_.has_value(),
                  "StatusOr::value() called on moved-from object");
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace dbaugur

/// Propagates a non-OK Status to the caller.
#define DBAUGUR_RETURN_IF_ERROR(expr)               \
  do {                                              \
    ::dbaugur::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                      \
  } while (0)

#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dbaugur {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double v, int precision) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  oss << v;
  return oss.str();
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      oss << row[c];
      if (c + 1 < row.size()) {
        oss << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    oss << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  oss << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return oss.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace dbaugur

// Aligned plain-text table output used by the bench harness to print the
// rows/series of each paper table and figure.

#pragma once

#include <string>
#include <vector>

namespace dbaugur {

/// Accumulates rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one data row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string Fmt(double v, int precision = 4);

  /// Renders the header, a separator, and all rows.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dbaugur

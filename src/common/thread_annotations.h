// Clang thread-safety (capability) analysis annotations.
//
// These macros wire lock-discipline contracts into the type system: which
// mutex guards which field, which functions must (or must not) be called with
// a lock held, and which RAII types acquire/release capabilities. Under Clang
// with -Wthread-safety (the tree adds -Werror=thread-safety, see the
// top-level CMakeLists.txt) a violation is a compile error; under GCC and
// other compilers every macro expands to nothing, so the annotated code is
// exactly the unannotated code.
//
// The vocabulary mirrors the standard Clang/Abseil set, prefixed DBAUGUR_ per
// repo convention:
//
//   DBAUGUR_CAPABILITY("mutex")       class is a lockable capability
//   DBAUGUR_SCOPED_CAPABILITY         RAII type acquiring in ctor / releasing
//                                     in dtor (MutexLock)
//   DBAUGUR_GUARDED_BY(mu)            field may only be touched with mu held
//   DBAUGUR_PT_GUARDED_BY(mu)        *pointee* guarded; the pointer is free
//   DBAUGUR_REQUIRES(mu, ...)         caller must already hold mu
//   DBAUGUR_EXCLUDES(mu, ...)         caller must NOT hold mu (the function
//                                     takes it itself; prevents self-deadlock)
//   DBAUGUR_ACQUIRE(...) / DBAUGUR_RELEASE(...)
//                                     function leaves with / without the lock
//   DBAUGUR_TRY_ACQUIRE(bool, mu)     conditional acquire (try_lock)
//   DBAUGUR_ASSERT_CAPABILITY(mu)     runtime-asserted "I hold mu" escape
//   DBAUGUR_RETURN_CAPABILITY(mu)     accessor returning a reference to mu
//   DBAUGUR_ACQUIRED_BEFORE/AFTER     documents lock ordering (checked only
//                                     under -Wthread-safety-beta; kept as
//                                     machine-readable documentation)
//   DBAUGUR_NO_THREAD_SAFETY_ANALYSIS opt one function out — requires a
//                                     reason comment per the lint convention
//
// What the analysis guarantees vs what it cannot see: it is a compile-time,
// intra-procedural check of *annotated* mutexes and fields — it proves every
// touch of a GUARDED_BY field happens under its mutex, but it does not model
// std::atomic ordering, lambdas invoked on other threads, or code that opts
// out. TSan (tools/check.sh stage 3) remains the runtime backstop for those.

#pragma once

// clang-tidy and SWIG-style tooling parse attributes they do not implement;
// restrict to real Clang, where the capability analysis lives.
#if defined(__clang__) && defined(__has_attribute)
#define DBAUGUR_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DBAUGUR_THREAD_ANNOTATION_(x)  // no-op off-Clang
#endif

#define DBAUGUR_CAPABILITY(x) DBAUGUR_THREAD_ANNOTATION_(capability(x))
#define DBAUGUR_SCOPED_CAPABILITY DBAUGUR_THREAD_ANNOTATION_(scoped_lockable)
#define DBAUGUR_GUARDED_BY(x) DBAUGUR_THREAD_ANNOTATION_(guarded_by(x))
#define DBAUGUR_PT_GUARDED_BY(x) DBAUGUR_THREAD_ANNOTATION_(pt_guarded_by(x))
#define DBAUGUR_REQUIRES(...) \
  DBAUGUR_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define DBAUGUR_EXCLUDES(...) \
  DBAUGUR_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define DBAUGUR_ACQUIRE(...) \
  DBAUGUR_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define DBAUGUR_RELEASE(...) \
  DBAUGUR_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define DBAUGUR_TRY_ACQUIRE(...) \
  DBAUGUR_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define DBAUGUR_ASSERT_CAPABILITY(x) \
  DBAUGUR_THREAD_ANNOTATION_(assert_capability(x))
#define DBAUGUR_RETURN_CAPABILITY(x) \
  DBAUGUR_THREAD_ANNOTATION_(lock_returned(x))
#define DBAUGUR_ACQUIRED_BEFORE(...) \
  DBAUGUR_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define DBAUGUR_ACQUIRED_AFTER(...) \
  DBAUGUR_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define DBAUGUR_NO_THREAD_SAFETY_ANALYSIS \
  DBAUGUR_THREAD_ANNOTATION_(no_thread_safety_analysis)

#include "common/thread_pool.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/contracts.h"

namespace dbaugur {

size_t DefaultThreadCount() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

ThreadPool::ThreadPool(size_t threads) : size_(threads) {
  DBAUGUR_CHECK_GE(threads, size_t{1},
                   "ThreadPool needs at least one thread (the caller)");
  workers_.reserve(threads - 1);
  for (size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  // Explicit predicate loop: the thread-safety analysis can't see through a
  // lambda predicate reading guarded fields (see common/mutex.h).
  while (!queue_.empty() || in_flight_ != 0) idle_cv_.Wait(&mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) work_cv_.Wait(&mu_);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (workers_.empty()) {
    for (size_t b = 0; b < n; b += grain) body(b, std::min(n, b + grain));
    return;
  }
  // The contract "one ParallelFor at a time per pool" used to be a comment;
  // a nested call from a body would deadlock in Wait() below, so abort with
  // a readable message instead.
  DBAUGUR_CHECK(!in_parallel_for_.exchange(true, std::memory_order_acq_rel),
                "ThreadPool::ParallelFor is not reentrant (nested call on the "
                "same pool)");
  auto next = std::make_shared<std::atomic<size_t>>(0);
  // Each runner pulls chunks until the range is exhausted; `body` stays alive
  // until Wait() returns, so capturing it by reference is safe.
  auto runner = [next, n, grain, &body] {
    for (;;) {
      size_t b = next->fetch_add(grain, std::memory_order_relaxed);
      if (b >= n) return;
      body(b, std::min(n, b + grain));
    }
  };
  for (size_t i = 0; i < workers_.size(); ++i) Submit(runner);
  runner();  // the calling thread is one of the size() lanes
  Wait();
  in_parallel_for_.store(false, std::memory_order_release);
}

}  // namespace dbaugur

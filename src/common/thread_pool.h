// Small fixed-size thread pool used by the batch clustering sweep.
//
// Design constraints (see descender.cpp): the pool must be deterministic in
// its *results* regardless of scheduling — callers write to disjoint
// per-index slots and merge in index order — and a pool of size 1 must run
// everything inline on the calling thread, spawning nothing, so single-core
// configurations behave exactly like the pre-pool code.
//
// Locking discipline (compile-checked under Clang, see
// common/thread_annotations.h): mu_ guards the task queue, the in-flight
// count, and the stop flag; ParallelFor's non-reentrancy contract is enforced
// at runtime by a DBAUGUR_CHECK on in_parallel_for_.

#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dbaugur {

/// std::thread::hardware_concurrency() clamped to >= 1 (the standard allows
/// it to return 0 when the count is unknowable).
size_t DefaultThreadCount();

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers; the caller itself is the remaining lane
  /// (ParallelFor participates). Aborts via DBAUGUR_CHECK when threads == 0.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured parallelism (workers + calling thread).
  size_t size() const { return size_; }

  /// Enqueues one task for a worker thread.
  void Submit(std::function<void()> task) DBAUGUR_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished.
  void Wait() DBAUGUR_EXCLUDES(mu_);

  /// Runs body(begin, end) over chunks of `grain` indices covering [0, n).
  /// Chunks are claimed dynamically (rows of a triangular sweep have uneven
  /// cost), so bodies must not depend on execution order. With size() == 1
  /// the chunks run inline, in order, on the calling thread. Not reentrant:
  /// one ParallelFor at a time per pool — nesting (a body that calls back
  /// into ParallelFor on the same pool) aborts via DBAUGUR_CHECK instead of
  /// deadlocking in Wait().
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& body)
      DBAUGUR_EXCLUDES(mu_);

 private:
  void WorkerLoop() DBAUGUR_EXCLUDES(mu_);

  size_t size_;
  std::vector<std::thread> workers_;  // set in ctor, joined in dtor only
  Mutex mu_;
  std::deque<std::function<void()>> queue_ DBAUGUR_GUARDED_BY(mu_);
  CondVar work_cv_;
  CondVar idle_cv_;
  size_t in_flight_ DBAUGUR_GUARDED_BY(mu_) = 0;
  bool stop_ DBAUGUR_GUARDED_BY(mu_) = false;
  // Runtime guard for the documented non-reentrancy contract (only the
  // worker-backed path can deadlock; the size()==1 inline path is exempt).
  std::atomic<bool> in_parallel_for_{false};
};

}  // namespace dbaugur

// Small fixed-size thread pool used by the batch clustering sweep.
//
// Design constraints (see descender.cpp): the pool must be deterministic in
// its *results* regardless of scheduling — callers write to disjoint
// per-index slots and merge in index order — and a pool of size 1 must run
// everything inline on the calling thread, spawning nothing, so single-core
// configurations behave exactly like the pre-pool code.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dbaugur {

/// std::thread::hardware_concurrency() clamped to >= 1 (the standard allows
/// it to return 0 when the count is unknowable).
size_t DefaultThreadCount();

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers; the caller itself is the remaining lane
  /// (ParallelFor participates). Aborts via DBAUGUR_CHECK when threads == 0.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured parallelism (workers + calling thread).
  size_t size() const { return size_; }

  /// Enqueues one task for a worker thread.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs body(begin, end) over chunks of `grain` indices covering [0, n).
  /// Chunks are claimed dynamically (rows of a triangular sweep have uneven
  /// cost), so bodies must not depend on execution order. With size() == 1
  /// the chunks run inline, in order, on the calling thread. Not reentrant:
  /// one ParallelFor at a time per pool.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& body);

 private:
  void WorkerLoop();

  size_t size_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace dbaugur

// A tiny bounded FIFO of pre-ordered work indices, shared by a fixed set of
// worker threads. The retrain scheduler computes a deterministic priority
// order up front (see serve/retrain_scheduler.h); workers then Pop() indices
// in exactly that order, so "hot shards first" holds regardless of how many
// workers drain the queue. The queue is filled once at construction and only
// consumed afterwards — there is no producer side to synchronize.

#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dbaugur {

/// Multi-consumer index queue: constructed full, drained concurrently.
class IndexQueue {
 public:
  explicit IndexQueue(std::vector<size_t> items) : items_(std::move(items)) {}
  IndexQueue(const IndexQueue&) = delete;
  IndexQueue& operator=(const IndexQueue&) = delete;

  /// Pops the next index in construction order into *out. Returns false when
  /// the queue is exhausted. Thread-safe; never blocks beyond the pop itself.
  bool Pop(size_t* out) DBAUGUR_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (next_ >= items_.size()) return false;
    *out = items_[next_++];
    return true;
  }

  /// Indices not yet popped (point-in-time; takes the lock).
  size_t remaining() const DBAUGUR_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return items_.size() - next_;
  }

 private:
  mutable Mutex mu_;
  std::vector<size_t> items_ DBAUGUR_GUARDED_BY(mu_);
  size_t next_ DBAUGUR_GUARDED_BY(mu_) = 0;
};

}  // namespace dbaugur

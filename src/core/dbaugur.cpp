#include "core/dbaugur.h"

#include <algorithm>

#include "ensemble/presets.h"

namespace dbaugur::core {

Status DBAugurSystem::IngestQueryLog(
    const std::vector<trace::LogEntry>& entries) {
  if (!extractor_initialized_) {
    extractor_ = trace::TraceExtractor(opts_.extraction);
    extractor_initialized_ = true;
  }
  return extractor_.IngestLog(entries);
}

void DBAugurSystem::AddResourceTrace(ts::Series series) {
  resource_traces_.push_back(std::move(series));
}

Status DBAugurSystem::Train() {
  // 1. Materialize the workload collection W = W(Q) ∪ W(R).
  std::vector<ts::Series> traces;
  trace_refs_.clear();
  if (extractor_.entry_count() > 0) {
    auto templates = extractor_.TemplateTraces();
    if (!templates.ok()) return templates.status();
    for (size_t id = 0; id < templates->size(); ++id) {
      trace_refs_.push_back({TraceRef::Kind::kQueryTemplate, id,
                             extractor_.registry().template_text(id)});
      traces.push_back(std::move((*templates)[id]));
    }
  }
  for (size_t r = 0; r < resource_traces_.size(); ++r) {
    trace_refs_.push_back(
        {TraceRef::Kind::kResource, r, resource_traces_[r].name()});
    traces.push_back(resource_traces_[r]);
  }
  if (traces.empty()) {
    return Status::FailedPrecondition("DBAugur: no workload traces ingested");
  }
  size_t len = traces[0].size();
  for (const auto& t : traces) {
    if (t.size() != len) {
      return Status::InvalidArgument(
          "DBAugur: trace length mismatch between query and resource traces "
          "(bin resource samples at the same interval over the same range)");
    }
  }

  // 2. Cluster with Descender.
  descender_ = std::make_unique<cluster::Descender>(opts_.clustering);
  DBAUGUR_RETURN_IF_ERROR(descender_->AddTraces(traces));
  trace_cluster_.resize(traces.size());
  trace_proportion_.resize(traces.size());
  for (size_t i = 0; i < traces.size(); ++i) {
    trace_cluster_[i] = descender_->label(i);
    auto prop = descender_->TraceProportion(i);
    if (!prop.ok()) return prop.status();
    trace_proportion_[i] = *prop;
  }

  // 3. Fit one DBAugur ensemble per top-K cluster on its average trace.
  forecasts_.clear();
  for (const auto& info : descender_->TopKClusters(opts_.top_k)) {
    auto rep = descender_->ClusterRepresentative(info.id);
    if (!rep.ok()) return rep.status();
    auto model = ensemble::MakeDBAugur(opts_.forecaster, opts_.delta);
    if (!model.ok()) return model.status();
    Status st = (*model)->Fit(rep->values());
    if (!st.ok()) return st;
    ClusterForecast cf;
    cf.cluster_id = info.id;
    cf.volume = info.volume;
    cf.member_count = info.members.size();
    cf.representative = std::move(rep).value();
    cf.model = std::move(model).value();
    forecasts_.push_back(std::move(cf));
  }
  trained_ = true;
  return Status::OK();
}

dtw::PruningStats DBAugurSystem::clustering_pruning_stats() const {
  return descender_ ? descender_->pruning_stats() : dtw::PruningStats();
}

StatusOr<double> DBAugurSystem::ForecastCluster(size_t rank) const {
  if (!trained_) return Status::FailedPrecondition("DBAugur: Train not called");
  if (rank >= forecasts_.size()) {
    return Status::OutOfRange("DBAugur: cluster rank out of range");
  }
  const ClusterForecast& cf = forecasts_[rank];
  size_t w = opts_.forecaster.window;
  if (cf.representative.size() < w) {
    return Status::FailedPrecondition("DBAugur: representative shorter than window");
  }
  const auto& vals = cf.representative.values();
  std::vector<double> window(vals.end() - static_cast<ptrdiff_t>(w), vals.end());
  return cf.model->Predict(window);
}

StatusOr<double> DBAugurSystem::ForecastTrace(size_t trace_index) const {
  if (!trained_) return Status::FailedPrecondition("DBAugur: Train not called");
  if (trace_index >= trace_cluster_.size()) {
    return Status::OutOfRange("DBAugur: trace index out of range");
  }
  int cid = trace_cluster_[trace_index];
  for (size_t rank = 0; rank < forecasts_.size(); ++rank) {
    if (forecasts_[rank].cluster_id == cid) {
      auto cluster_pred = ForecastCluster(rank);
      if (!cluster_pred.ok()) return cluster_pred.status();
      // The representative is the cluster *average*; scale to the cluster
      // total, then to this trace via its volume proportion.
      double total = *cluster_pred *
                     static_cast<double>(forecasts_[rank].member_count);
      return total * trace_proportion_[trace_index];
    }
  }
  return Status::NotFound(
      "DBAugur: trace's cluster is outside the forecasted top-K");
}

}  // namespace dbaugur::core

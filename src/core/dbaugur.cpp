#include "core/dbaugur.h"

#include <algorithm>

#include "common/cancellation.h"
#include "common/thread_pool.h"
#include "ensemble/presets.h"
#include "nn/gemm.h"

namespace dbaugur::core {

Status DBAugurSystem::IngestQueryLog(
    const std::vector<trace::LogEntry>& entries) {
  if (!extractor_initialized_) {
    extractor_ = trace::TraceExtractor(opts_.extraction);
    extractor_initialized_ = true;
  }
  return extractor_.IngestLog(entries);
}

void DBAugurSystem::AddResourceTrace(ts::Series series) {
  resource_traces_.push_back(std::move(series));
}

StatusOr<TrainedState> BuildTrainedState(
    const DBAugurOptions& opts, const std::vector<ts::Series>& traces) {
  return BuildTrainedState(opts, traces, nullptr);
}

StatusOr<TrainedState> BuildTrainedState(const DBAugurOptions& opts,
                                         const std::vector<ts::Series>& traces,
                                         ThreadPool* fit_pool) {
  return BuildTrainedState(opts, traces, fit_pool, nullptr);
}

StatusOr<TrainedState> BuildTrainedState(const DBAugurOptions& opts,
                                         const std::vector<ts::Series>& traces,
                                         ThreadPool* fit_pool,
                                         const CancelToken* cancel) {
  if (cancel != nullptr && cancel->cancelled()) {
    return CancelledStatus(*cancel, "DBAugur: training");
  }
  if (traces.empty()) {
    return Status::FailedPrecondition("DBAugur: no workload traces ingested");
  }
  size_t len = traces[0].size();
  for (const auto& t : traces) {
    if (t.size() != len) {
      return Status::InvalidArgument(
          "DBAugur: trace length mismatch between query and resource traces "
          "(bin resource samples at the same interval over the same range)");
    }
  }

  TrainedState state;
  // 1. Cluster with Descender.
  state.descender = std::make_unique<cluster::Descender>(opts.clustering);
  DBAUGUR_RETURN_IF_ERROR(state.descender->AddTraces(traces));
  state.trace_cluster.resize(traces.size());
  state.trace_proportion.resize(traces.size());
  for (size_t i = 0; i < traces.size(); ++i) {
    state.trace_cluster[i] = state.descender->label(i);
    auto prop = state.descender->TraceProportion(i);
    if (!prop.ok()) return prop.status();
    state.trace_proportion[i] = *prop;
  }
  // Clustering is the first long stage: re-check between it and the fits so
  // a watchdog firing mid-cluster stops the build before any model trains.
  if (cancel != nullptr && cancel->cancelled()) {
    return CancelledStatus(*cancel, "DBAugur: training");
  }

  // 2. Fit one DBAugur ensemble per top-K cluster on its average trace.
  // Representatives are materialized serially; the independent per-cluster
  // ensemble fits then run on the clustering thread pool. Each ensemble is
  // seeded and self-contained, so results are identical at any lane count.
  // The parallel path is skipped when a global GEMM pool is installed
  // (ThreadPool::ParallelFor is not reentrant).
  std::vector<cluster::ClusterInfo> top = state.descender->TopKClusters(opts.top_k);
  state.forecasts.resize(top.size());
  for (size_t rank = 0; rank < top.size(); ++rank) {
    auto rep = state.descender->ClusterRepresentative(top[rank].id);
    if (!rep.ok()) return rep.status();
    ClusterForecast& cf = state.forecasts[rank];
    cf.cluster_id = top[rank].id;
    cf.volume = top[rank].volume;
    cf.member_count = top[rank].members.size();
    cf.representative = std::move(rep).value();
  }
  auto fit_one = [&](size_t rank) {
    ClusterForecast& cf = state.forecasts[rank];
    // Cluster-fit-granularity cancellation: a latched token skips every rank
    // not yet started. Fits mid-flight finish their cluster — cancellation is
    // cooperative, and a single ensemble fit is the polling quantum.
    if (cancel != nullptr && cancel->cancelled()) {
      cf.fit_status = Status::Cancelled("fit skipped: build cancelled");
      return;
    }
    auto model = ensemble::MakeDBAugur(opts.forecaster, opts.delta);
    if (!model.ok()) {
      cf.fit_status = model.status();
      return;
    }
    cf.fit_status = (*model)->Fit(cf.representative.values());
    if (cf.fit_status.ok()) cf.model = std::move(model).value();
  };
  size_t lanes = std::min(opts.clustering.threads, std::max<size_t>(top.size(), 1));
  if (fit_pool != nullptr && nn::GetGemmThreadPool() == nullptr) {
    // Caller-owned pool (one per retrain worker in the sharded service): the
    // spawn/join cost is amortized across every shard build on this worker.
    fit_pool->ParallelFor(top.size(), 1,
                          [&](size_t begin, size_t end) {
                            for (size_t rank = begin; rank < end; ++rank) {
                              fit_one(rank);
                            }
                          });
  } else if (lanes > 1 && nn::GetGemmThreadPool() == nullptr) {
    ThreadPool pool(lanes);
    pool.ParallelFor(top.size(), 1,
                     [&](size_t begin, size_t end) {
                       for (size_t rank = begin; rank < end; ++rank) fit_one(rank);
                     });
  } else {
    for (size_t rank = 0; rank < top.size(); ++rank) fit_one(rank);
  }
  // A cancellation observed during the fits outranks tolerate_fit_failures:
  // the caller asked the build to stop, so it must not publish a snapshot
  // built from whatever subset of clusters happened to finish.
  if (cancel != nullptr && cancel->cancelled()) {
    return CancelledStatus(*cancel, "DBAugur: training");
  }
  if (!opts.tolerate_fit_failures) {
    for (const ClusterForecast& cf : state.forecasts) {
      if (!cf.fit_status.ok()) return cf.fit_status;
    }
  }
  return state;
}

StatusOr<double> NextClusterValue(const ClusterForecast& cf, size_t window) {
  if (cf.representative.size() < window) {
    return Status::FailedPrecondition(
        "DBAugur: representative shorter than window");
  }
  const auto& vals = cf.representative.values();
  std::vector<double> w(vals.end() - static_cast<ptrdiff_t>(window),
                        vals.end());
  return cf.model->Predict(w);
}

Status DBAugurSystem::Train() {
  // Materialize the workload collection W = W(Q) ∪ W(R).
  std::vector<ts::Series> traces;
  trace_refs_.clear();
  if (extractor_.entry_count() > 0) {
    auto templates = extractor_.TemplateTraces();
    if (!templates.ok()) return templates.status();
    for (size_t id = 0; id < templates->size(); ++id) {
      trace_refs_.push_back({TraceRef::Kind::kQueryTemplate, id,
                             extractor_.registry().template_text(id)});
      traces.push_back(std::move((*templates)[id]));
    }
  }
  for (size_t r = 0; r < resource_traces_.size(); ++r) {
    trace_refs_.push_back(
        {TraceRef::Kind::kResource, r, resource_traces_[r].name()});
    traces.push_back(resource_traces_[r]);
  }
  auto state = BuildTrainedState(opts_, traces);
  if (!state.ok()) return state.status();
  descender_ = std::move(state->descender);
  forecasts_ = std::move(state->forecasts);
  trace_cluster_ = std::move(state->trace_cluster);
  trace_proportion_ = std::move(state->trace_proportion);
  trained_ = true;
  return Status::OK();
}

dtw::PruningStats DBAugurSystem::clustering_pruning_stats() const {
  return descender_ ? descender_->pruning_stats() : dtw::PruningStats();
}

StatusOr<double> DBAugurSystem::ForecastCluster(size_t rank) const {
  if (!trained_) return Status::FailedPrecondition("DBAugur: Train not called");
  if (rank >= forecasts_.size()) {
    return Status::OutOfRange("DBAugur: cluster rank out of range");
  }
  return NextClusterValue(forecasts_[rank], opts_.forecaster.window);
}

StatusOr<double> DBAugurSystem::ForecastTrace(size_t trace_index) const {
  if (!trained_) return Status::FailedPrecondition("DBAugur: Train not called");
  if (trace_index >= trace_cluster_.size()) {
    return Status::OutOfRange("DBAugur: trace index out of range");
  }
  int cid = trace_cluster_[trace_index];
  for (size_t rank = 0; rank < forecasts_.size(); ++rank) {
    if (forecasts_[rank].cluster_id == cid) {
      auto cluster_pred = ForecastCluster(rank);
      if (!cluster_pred.ok()) return cluster_pred.status();
      // The representative is the cluster *average*; scale to the cluster
      // total, then to this trace via its volume proportion.
      double total = *cluster_pred *
                     static_cast<double>(forecasts_[rank].member_count);
      return total * trace_proportion_[trace_index];
    }
  }
  return Status::NotFound(
      "DBAugur: trace's cluster is outside the forecasted top-K");
}

}  // namespace dbaugur::core

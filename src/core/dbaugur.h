// DBAugur end-to-end system (paper §III): Workload Processor (SQL2Template +
// Descender clustering) feeding the time-sensitive Ensemble Forecaster.
//
// Usage:
//   DBAugurSystem sys(options);
//   sys.IngestQueryLog(entries);          // raw timestamped SQL
//   sys.AddResourceTrace(disk_series);    // runtime statistics
//   sys.Train();                          // extract -> cluster -> fit top-K
//   sys.ForecastCluster(rank);            // next value per cluster
//   sys.ForecastTrace(trace_id);          // scaled by cluster proportion

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/descender.h"
#include "common/status.h"
#include "ensemble/time_sensitive_ensemble.h"
#include "models/forecaster.h"
#include "trace/extractor.h"
#include "ts/series.h"

namespace dbaugur {
class CancelToken;
class ThreadPool;
}  // namespace dbaugur

namespace dbaugur::core {

/// End-to-end configuration.
struct DBAugurOptions {
  trace::ExtractionOptions extraction;       ///< Log parsing + templating.
  cluster::DescenderOptions clustering;      ///< DTW density clustering.
  size_t top_k = 5;                          ///< Clusters to forecast.
  models::ForecasterOptions forecaster;      ///< Shared model hyper-params.
  double delta = 0.9;                        ///< Ensemble attenuation factor.
  /// When true, a cluster whose ensemble fails to fit does not abort
  /// BuildTrainedState; the failure is recorded in ClusterForecast::fit_status
  /// and the cluster's model is left null for the caller to substitute a
  /// fallback. The serving layer uses this for per-cluster degraded mode.
  bool tolerate_fit_failures = false;
};

/// Identifies a trace fed into the processor.
struct TraceRef {
  enum class Kind { kQueryTemplate, kResource } kind = Kind::kQueryTemplate;
  size_t index = 0;   ///< Template id or resource slot.
  std::string name;
};

/// One trained cluster forecaster with its provenance.
struct ClusterForecast {
  int cluster_id = 0;
  double volume = 0.0;
  size_t member_count = 0;
  ts::Series representative;
  std::unique_ptr<ensemble::TimeSensitiveEnsemble> model;
  /// OK when `model` fitted cleanly. Non-OK (with `model` null) only when
  /// DBAugurOptions::tolerate_fit_failures let the pipeline continue past a
  /// failed per-cluster fit.
  Status fit_status = Status::OK();
};

/// Everything the clustering + forecasting stages produce for one workload
/// collection. DBAugurSystem::Train wraps this; the online serving layer
/// (serve::Retrainer) builds one per retrain cycle and publishes it as an
/// immutable snapshot.
struct TrainedState {
  std::unique_ptr<cluster::Descender> descender;
  std::vector<ClusterForecast> forecasts;   ///< Top-K, descending volume.
  std::vector<int> trace_cluster;           ///< Cluster id per trace.
  std::vector<double> trace_proportion;     ///< Share of cluster volume.
};

/// Runs the processor + forecaster pipeline on already-materialized traces:
/// clusters with Descender, selects the top-K clusters by volume, and fits
/// one DBAugur ensemble per cluster on the cluster's average trace. All
/// traces must share one length (InvalidArgument otherwise).
StatusOr<TrainedState> BuildTrainedState(const DBAugurOptions& opts,
                                         const std::vector<ts::Series>& traces);

/// As above, but the independent per-cluster ensemble fits run on the
/// caller-owned `fit_pool` instead of a pool constructed per call. The sharded
/// serving layer passes one long-lived pool per retrain worker so concurrent
/// shard builds don't each pay thread spawn/join. Null falls back to the
/// default policy. Each ensemble is seeded and self-contained, so results are
/// bit-identical at any lane count and on any pool. The parallel path is
/// skipped when a global GEMM pool is installed (ThreadPool::ParallelFor is
/// not reentrant, and the fits may run GEMMs on that pool).
StatusOr<TrainedState> BuildTrainedState(const DBAugurOptions& opts,
                                         const std::vector<ts::Series>& traces,
                                         ThreadPool* fit_pool);

/// As above, plus cooperative cancellation: `cancel` (may be null) is polled
/// at cluster-fit granularity — before clustering, between clustering and the
/// fits, and at the top of every per-cluster ensemble fit. When the token is
/// observed latched the build returns Status::Cancelled (code kCancelled)
/// carrying the token's reason; any fits already running finish their current
/// cluster, later ranks are skipped, and no partial state escapes. The serve
/// watchdog uses this to bound how long a hung or overrunning retrain can
/// occupy a worker (see serve/retrain_workers.h).
StatusOr<TrainedState> BuildTrainedState(const DBAugurOptions& opts,
                                         const std::vector<ts::Series>& traces,
                                         ThreadPool* fit_pool,
                                         const CancelToken* cancel);

/// Predicts the representative trace's next value (H steps past its end):
/// the trailing `window` values feed the cluster's ensemble.
StatusOr<double> NextClusterValue(const ClusterForecast& cf, size_t window);

class DBAugurSystem {
 public:
  explicit DBAugurSystem(const DBAugurOptions& opts) : opts_(opts) {}

  /// Feeds raw query-log entries through SQL2Template.
  Status IngestQueryLog(const std::vector<trace::LogEntry>& entries);
  /// Adds an already-binned resource-utilization trace; it must match the
  /// query traces' length once extraction runs (Train validates).
  void AddResourceTrace(ts::Series series);

  /// Runs the full processor + forecaster pipeline: materializes template
  /// traces, merges with resource traces, clusters with Descender, selects
  /// the top-K clusters by volume, and fits one DBAugur ensemble per cluster
  /// on the cluster's average trace.
  Status Train();

  /// Number of traces the processor produced (templates + resources).
  size_t trace_count() const { return trace_refs_.size(); }
  const TraceRef& trace_ref(size_t i) const { return trace_refs_[i]; }
  const cluster::Descender* clustering() const { return descender_.get(); }
  const trace::TraceExtractor& extractor() const { return extractor_; }
  size_t forecast_count() const { return forecasts_.size(); }
  const ClusterForecast& forecast(size_t rank) const { return forecasts_[rank]; }

  /// Neighbor-search pruning telemetry from the clustering stage (LB_Kim /
  /// LB_Keogh / Ball-Tree rejections, full DTW count). Zeros before Train.
  dtw::PruningStats clustering_pruning_stats() const;

  /// Predicts the representative trace's next value (H steps past its end)
  /// for the rank-th largest cluster.
  StatusOr<double> ForecastCluster(size_t rank) const;

  /// Predicts trace i's next value: the cluster forecast scaled by the
  /// trace's proportion of cluster volume (paper §IV-C). NotFound if the
  /// trace's cluster is outside the top-K.
  StatusOr<double> ForecastTrace(size_t trace_index) const;

 private:
  DBAugurOptions opts_;
  trace::TraceExtractor extractor_{trace::ExtractionOptions()};
  bool extractor_initialized_ = false;
  std::vector<ts::Series> resource_traces_;
  std::vector<TraceRef> trace_refs_;
  std::unique_ptr<cluster::Descender> descender_;
  std::vector<ClusterForecast> forecasts_;
  std::vector<int> trace_cluster_;      // cluster id per trace
  std::vector<double> trace_proportion_;
  bool trained_ = false;
};

}  // namespace dbaugur::core

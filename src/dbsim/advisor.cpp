#include "dbsim/advisor.h"

#include <algorithm>
#include <map>

#include "sql/templater.h"

namespace dbaugur::dbsim {

namespace {

StatusOr<double> WorkloadCost(const Database& db,
                              const std::vector<WeightedQuery>& workload,
                              const std::set<HypotheticalIndex>& config) {
  double total = 0.0;
  for (const auto& wq : workload) {
    auto c = db.EstimateCost(wq.spec, config);
    if (!c.ok()) return c.status();
    total += wq.weight * (*c);
  }
  return total;
}

}  // namespace

StatusOr<Recommendation> RecommendIndexes(
    const Database& db, const std::vector<WeightedQuery>& workload,
    const AdvisorOptions& opts) {
  // Candidate set: every (table, predicate column) in the workload.
  std::set<HypotheticalIndex> candidates;
  for (const auto& wq : workload) {
    for (const auto& p : wq.spec.predicates) {
      candidates.insert({wq.spec.table, p.column});
    }
  }
  Recommendation rec;
  auto base = WorkloadCost(db, workload, {});
  if (!base.ok()) return base.status();
  rec.baseline_cost = *base;

  std::set<HypotheticalIndex> chosen;
  double current = rec.baseline_cost;
  while (chosen.size() < opts.max_indexes) {
    const HypotheticalIndex* best = nullptr;
    double best_cost = current;
    for (const auto& cand : candidates) {
      if (chosen.count(cand)) continue;
      std::set<HypotheticalIndex> trial = chosen;
      trial.insert(cand);
      auto cost = WorkloadCost(db, workload, trial);
      if (!cost.ok()) return cost.status();
      if (*cost < best_cost - 1e-9) {
        best_cost = *cost;
        best = &cand;
      }
    }
    if (best == nullptr) break;  // no candidate improves the workload
    chosen.insert(*best);
    current = best_cost;
  }
  rec.indexes.assign(chosen.begin(), chosen.end());
  rec.optimized_cost = current;
  return rec;
}

std::vector<WeightedQuery> BuildWorkload(const std::vector<std::string>& sqls,
                                         size_t* skipped) {
  // Merge statements by template so weights reflect occurrence counts.
  std::map<std::string, WeightedQuery> merged;
  size_t skip_count = 0;
  for (const auto& s : sqls) {
    auto spec = ParseQuery(s);
    if (!spec.ok()) {
      ++skip_count;
      continue;
    }
    auto tmpl = sql::ToTemplate(s);
    std::string key = tmpl.ok() ? *tmpl : s;
    auto it = merged.find(key);
    if (it == merged.end()) {
      merged.emplace(key, WeightedQuery{std::move(spec).value(), 1.0});
    } else {
      it->second.weight += 1.0;
    }
  }
  if (skipped != nullptr) *skipped = skip_count;
  std::vector<WeightedQuery> out;
  out.reserve(merged.size());
  for (auto& [key, wq] : merged) out.push_back(std::move(wq));
  return out;
}

}  // namespace dbaugur::dbsim

// AutoAdmin-style index advisor (Chaudhuri & Narasayya, VLDB'97): enumerates
// single-column index candidates from the workload's predicates and greedily
// selects the configuration that minimizes total what-if estimated cost,
// under a budget on the number of indexes.

#pragma once

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "dbsim/engine.h"

namespace dbaugur::dbsim {

/// One statement with its (possibly forecasted) weight in the workload.
struct WeightedQuery {
  QuerySpec spec;
  double weight = 1.0;  ///< Expected executions over the planning horizon.
};

/// Advisor configuration.
struct AdvisorOptions {
  size_t max_indexes = 3;  ///< Index-count budget.
};

/// Recommendation output.
struct Recommendation {
  std::vector<HypotheticalIndex> indexes;
  double baseline_cost = 0.0;   ///< Workload cost with current real indexes.
  double optimized_cost = 0.0;  ///< Cost with the recommendation applied.
};

/// Runs the greedy what-if search against `db`'s statistics. Does not create
/// any index — apply via Database::CreateIndex.
StatusOr<Recommendation> RecommendIndexes(const Database& db,
                                          const std::vector<WeightedQuery>& workload,
                                          const AdvisorOptions& opts);

/// Parses raw SQL statements into a weighted workload, merging duplicates by
/// template (statements dbsim can't parse are skipped and counted in
/// `skipped` if non-null).
std::vector<WeightedQuery> BuildWorkload(const std::vector<std::string>& sqls,
                                         size_t* skipped = nullptr);

}  // namespace dbaugur::dbsim

#include "dbsim/bustracker_db.h"

namespace dbaugur::dbsim {

StatusOr<Database> MakeBusTrackerDatabase(const BusTrackerDbOptions& opts) {
  Database db;
  Rng rng(opts.seed);
  DBAUGUR_RETURN_IF_ERROR(db.CreateTable(
      "positions", {{"bus_id", ColumnType::kInt},
                    {"route_id", ColumnType::kInt},
                    {"lat", ColumnType::kDouble},
                    {"lon", ColumnType::kDouble}}));
  DBAUGUR_RETURN_IF_ERROR(db.CreateTable(
      "schedules", {{"stop_id", ColumnType::kInt},
                    {"arrival", ColumnType::kInt},
                    {"route_id", ColumnType::kInt}}));
  DBAUGUR_RETURN_IF_ERROR(
      db.CreateTable("tickets", {{"trip_id", ColumnType::kInt},
                                 {"price", ColumnType::kDouble},
                                 {"seats", ColumnType::kInt}}));
  DBAUGUR_RETURN_IF_ERROR(
      db.CreateTable("trips", {{"trip_id", ColumnType::kInt},
                               {"depart_time", ColumnType::kInt},
                               {"route_id", ColumnType::kInt}}));
  for (size_t i = 0; i < opts.positions; ++i) {
    DBAUGUR_RETURN_IF_ERROR(db.Insert(
        "positions", {rng.UniformInt(1, 1200), rng.UniformInt(1, 400),
                      rng.Uniform(40.0, 41.0), rng.Uniform(-80.1, -79.8)}));
  }
  for (size_t i = 0; i < opts.schedules; ++i) {
    DBAUGUR_RETURN_IF_ERROR(db.Insert(
        "schedules", {rng.UniformInt(1, 5000), rng.UniformInt(0, 86400),
                      rng.UniformInt(1, 400)}));
  }
  for (size_t i = 0; i < opts.tickets; ++i) {
    DBAUGUR_RETURN_IF_ERROR(
        db.Insert("tickets", {rng.UniformInt(1, 2000), rng.Uniform(1.0, 8.0),
                              rng.UniformInt(0, 60)}));
  }
  for (size_t i = 0; i < opts.trips; ++i) {
    DBAUGUR_RETURN_IF_ERROR(
        db.Insert("trips", {rng.UniformInt(1, 2000), rng.UniformInt(0, 86400),
                            rng.UniformInt(1, 400)}));
  }
  return db;
}

}  // namespace dbaugur::dbsim

// The BusTracker application's schema and synthetic data population — the
// database instance the Fig. 8 case study replays its query log against.

#pragma once

#include "common/rng.h"
#include "common/status.h"
#include "dbsim/engine.h"

namespace dbaugur::dbsim {

/// Row-count scale for the synthetic BusTracker database.
struct BusTrackerDbOptions {
  size_t positions = 20000;
  size_t schedules = 50000;
  size_t tickets = 30000;
  size_t trips = 15000;
  uint64_t seed = 99;
};

/// Creates tables positions(bus_id, route_id, lat, lon),
/// schedules(stop_id, arrival, route_id), tickets(trip_id, price, seats),
/// trips(trip_id, depart_time, route_id) and fills them with synthetic rows
/// whose key domains match workloads::BusTrackerTemplates().
StatusOr<Database> MakeBusTrackerDatabase(const BusTrackerDbOptions& opts);

}  // namespace dbaugur::dbsim

#include "dbsim/engine.h"

#include <algorithm>
#include <cmath>

namespace dbaugur::dbsim {

Status Database::CreateTable(const std::string& name,
                             std::vector<Column> columns) {
  if (tables_.count(name)) {
    return Status::InvalidArgument("table exists: " + name);
  }
  tables_[name] = std::make_unique<Table>(name, std::move(columns));
  return Status::OK();
}

StatusOr<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table " + name);
  return it->second.get();
}

StatusOr<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table " + name);
  return static_cast<const Table*>(it->second.get());
}

Status Database::Insert(const std::string& table, std::vector<Value> row) {
  auto t = GetTable(table);
  if (!t.ok()) return t.status();
  return (*t)->Insert(std::move(row));
}

Status Database::CreateIndex(const std::string& table,
                             const std::string& column) {
  auto t = GetTable(table);
  if (!t.ok()) return t.status();
  return (*t)->CreateIndex(column);
}

Status Database::DropIndex(const std::string& table,
                           const std::string& column) {
  auto t = GetTable(table);
  if (!t.ok()) return t.status();
  return (*t)->DropIndex(column);
}

StatusOr<double> Database::IndexBuildCost(const std::string& table) const {
  auto t = GetTable(table);
  if (!t.ok()) return t.status();
  // Read the heap once and write ~rows/200 leaf pages.
  return (*t)->HeapPages() +
         std::ceil(static_cast<double>((*t)->row_count()) / 200.0);
}

StatusOr<double> Database::Selectivity(const Table& t,
                                       const Predicate& p) const {
  auto ci = t.ColumnIndex(p.column);
  if (!ci.ok()) return ci.status();
  if (t.row_count() == 0) return 0.0;
  if (p.op == CompareOp::kEq) {
    auto distinct = t.DistinctCount(p.column);
    if (!distinct.ok()) return distinct.status();
    return 1.0 / static_cast<double>(std::max<size_t>(1, *distinct));
  }
  // Range predicate: uniform assumption between column min and max.
  auto mm = t.MinMax(p.column);
  if (!mm.ok()) return 0.33;  // empty table handled above; default fallback
  auto as_double = [](const Value& v) -> double {
    if (const int64_t* i = std::get_if<int64_t>(&v)) {
      return static_cast<double>(*i);
    }
    if (const double* d = std::get_if<double>(&v)) return *d;
    return 0.0;
  };
  if (std::holds_alternative<std::string>(p.value)) return 0.33;
  double lo = as_double(mm->first), hi = as_double(mm->second);
  double v = as_double(p.value);
  if (hi <= lo) return 1.0;
  double frac = (v - lo) / (hi - lo);
  frac = std::clamp(frac, 0.0, 1.0);
  switch (p.op) {
    case CompareOp::kLt:
    case CompareOp::kLe:
      return std::max(frac, 1.0 / static_cast<double>(t.row_count()));
    case CompareOp::kGt:
    case CompareOp::kGe:
      return std::max(1.0 - frac, 1.0 / static_cast<double>(t.row_count()));
    default:
      return 0.33;
  }
}

StatusOr<double> Database::EstimateCost(
    const QuerySpec& spec, const std::set<HypotheticalIndex>& hypothetical) const {
  auto tp = GetTable(spec.table);
  if (!tp.ok()) return tp.status();
  const Table& t = **tp;
  double rows = static_cast<double>(t.row_count());
  double seq_cost = t.HeapPages();
  double best = seq_cost;
  // Consider an index scan per indexed (real or hypothetical) predicate
  // column; remaining predicates are applied as filters on fetched rows.
  for (const auto& p : spec.predicates) {
    bool usable = t.HasIndex(p.column) ||
                  hypothetical.count(HypotheticalIndex{spec.table, p.column});
    if (!usable) continue;
    auto sel = Selectivity(t, p);
    if (!sel.ok()) return sel.status();
    double fetched = rows * (*sel);
    // Descent (~log_200) + one heap page per fetched row.
    double descent = std::max(1.0, std::ceil(std::log(rows + 2.0) / std::log(200.0)));
    double cost = descent + fetched;
    best = std::min(best, cost);
  }
  double total = best;
  if (spec.kind == StatementKind::kUpdate) {
    // One page write per modified row, estimated via combined selectivity.
    double sel_all = 1.0;
    for (const auto& p : spec.predicates) {
      auto sel = Selectivity(t, p);
      if (!sel.ok()) return sel.status();
      sel_all *= *sel;
    }
    total += std::max(1.0, rows * sel_all);
  }
  return total;
}

StatusOr<std::vector<size_t>> Database::FindRows(
    Table& t, const std::vector<Predicate>& preds, double* cost,
    std::string* access_path) const {
  // Pick the cheapest usable index (by estimated selectivity), else seqscan.
  const Predicate* driver = nullptr;
  double best_sel = 2.0;
  for (const auto& p : preds) {
    if (!t.HasIndex(p.column)) continue;
    auto sel = Selectivity(t, p);
    if (!sel.ok()) return sel.status();
    if (*sel < best_sel) {
      best_sel = *sel;
      driver = &p;
    }
  }
  double rows = static_cast<double>(t.row_count());
  std::vector<size_t> candidates;
  if (driver != nullptr &&
      (rows * best_sel + 3.0) < t.HeapPages()) {  // index beats scan
    const Index* idx = t.GetIndex(driver->column);
    switch (driver->op) {
      case CompareOp::kEq:
        candidates = idx->EqualRange(driver->value);
        break;
      case CompareOp::kLt:
        candidates = idx->Range(nullptr, false, &driver->value, false);
        break;
      case CompareOp::kLe:
        candidates = idx->Range(nullptr, false, &driver->value, true);
        break;
      case CompareOp::kGt:
        candidates = idx->Range(&driver->value, false, nullptr, false);
        break;
      case CompareOp::kGe:
        candidates = idx->Range(&driver->value, true, nullptr, false);
        break;
    }
    *cost = idx->DescentCost() + static_cast<double>(candidates.size());
    *access_path = "index:" + driver->column;
  } else {
    candidates.resize(t.row_count());
    for (size_t i = 0; i < candidates.size(); ++i) candidates[i] = i;
    *cost = t.HeapPages();
    *access_path = "seqscan";
    driver = nullptr;
  }
  // Apply all predicates as filters.
  std::vector<size_t> out;
  for (size_t r : candidates) {
    bool ok = true;
    for (const auto& p : preds) {
      auto ci = t.ColumnIndex(p.column);
      if (!ci.ok()) return ci.status();
      if (!EvalPredicate(t.row(r)[*ci], p.op, p.value)) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(r);
  }
  return out;
}

StatusOr<ExecResult> Database::Execute(const QuerySpec& spec) {
  auto tp = GetTable(spec.table);
  if (!tp.ok()) return tp.status();
  Table& t = **tp;
  ExecResult res;
  auto rows = FindRows(t, spec.predicates, &res.cost_pages, &res.access_path);
  if (!rows.ok()) return rows.status();
  res.matched_rows = rows->size();
  if (spec.kind == StatementKind::kSelect) {
    std::vector<size_t> proj;
    for (const auto& col : spec.select_columns) {
      auto ci = t.ColumnIndex(col);
      if (!ci.ok()) return ci.status();
      proj.push_back(*ci);
    }
    for (size_t r : *rows) {
      if (proj.empty()) {
        res.rows.push_back(t.row(r));
      } else {
        std::vector<Value> row;
        row.reserve(proj.size());
        for (size_t c : proj) row.push_back(t.row(r)[c]);
        res.rows.push_back(std::move(row));
      }
    }
  } else {
    // UPDATE: apply assignments; one page write per modified row.
    for (size_t r : *rows) {
      for (const auto& a : spec.assignments) {
        auto ci = t.ColumnIndex(a.column);
        if (!ci.ok()) return ci.status();
        DBAUGUR_RETURN_IF_ERROR(t.UpdateCell(r, *ci, a.value));
      }
    }
    res.cost_pages += static_cast<double>(rows->size());
  }
  return res;
}

StatusOr<ExecResult> Database::Execute(const std::string& sql) {
  auto spec = ParseQuery(sql);
  if (!spec.ok()) return spec.status();
  return Execute(*spec);
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  for (const auto& [name, t] : tables_) out.push_back(name);
  return out;
}

}  // namespace dbaugur::dbsim

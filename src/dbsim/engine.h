// Execution engine with a page-I/O cost model and a what-if optimizer —
// the PostgreSQL stand-in for the index-selection case study (Fig. 8).
//
// Cost model (in simulated page reads):
//   seq scan:    heap pages
//   index scan:  B-tree descent + one heap page per fetched row
//   update:      access cost + one page write per modified row
// The optimizer picks the cheapest access path among the sequential scan and
// every usable (real or hypothetical) single-column index, using
// distinct-count / min-max statistics for selectivity.

#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "dbsim/query.h"
#include "dbsim/table.h"

namespace dbaugur::dbsim {

/// Result of executing one statement.
struct ExecResult {
  size_t matched_rows = 0;
  double cost_pages = 0.0;
  std::string access_path;  ///< "seqscan" or "index:<column>".
  std::vector<std::vector<Value>> rows;  ///< SELECT output (projected).
};

/// A hypothetical index for what-if costing.
struct HypotheticalIndex {
  std::string table;
  std::string column;
  bool operator<(const HypotheticalIndex& o) const {
    return std::tie(table, column) < std::tie(o.table, o.column);
  }
};

class Database {
 public:
  /// Creates a table; InvalidArgument if it already exists.
  Status CreateTable(const std::string& name, std::vector<Column> columns);
  StatusOr<Table*> GetTable(const std::string& name);
  StatusOr<const Table*> GetTable(const std::string& name) const;

  Status Insert(const std::string& table, std::vector<Value> row);
  Status CreateIndex(const std::string& table, const std::string& column);
  Status DropIndex(const std::string& table, const std::string& column);

  /// Pages written while building an index on `table.column` (charged to the
  /// Auto strategy while it catches up, per the paper's Fig. 8 narrative).
  StatusOr<double> IndexBuildCost(const std::string& table) const;

  /// Executes one parsed statement, returning rows (for SELECT) and cost.
  StatusOr<ExecResult> Execute(const QuerySpec& spec);
  /// Parses and executes.
  StatusOr<ExecResult> Execute(const std::string& sql);

  /// Estimated cost of `spec` given the real indexes plus `hypothetical`
  /// ones — no data access beyond statistics.
  StatusOr<double> EstimateCost(
      const QuerySpec& spec,
      const std::set<HypotheticalIndex>& hypothetical = {}) const;

  std::vector<std::string> TableNames() const;

 private:
  /// Selectivity of one predicate on a table in [0, 1].
  StatusOr<double> Selectivity(const Table& t, const Predicate& p) const;
  /// Row ids matching all predicates, choosing the best access path.
  StatusOr<std::vector<size_t>> FindRows(Table& t,
                                         const std::vector<Predicate>& preds,
                                         double* cost,
                                         std::string* access_path) const;

  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace dbaugur::dbsim

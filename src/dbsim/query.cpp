#include "dbsim/query.h"

#include "sql/tokenizer.h"

namespace dbaugur::dbsim {

namespace {

using sql::Token;
using sql::TokenType;

/// Token cursor with convenience checks.
class Cursor {
 public:
  explicit Cursor(const std::vector<Token>& tokens) : tokens_(tokens) {}

  bool Done() const { return pos_ >= tokens_.size(); }
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  bool ConsumeKeyword(const std::string& kw) {
    if (!Done() && Peek().type == TokenType::kKeyword && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeText(const std::string& text) {
    if (!Done() && Peek().text == text) {
      ++pos_;
      return true;
    }
    return false;
  }

 private:
  const std::vector<Token>& tokens_;
  size_t pos_ = 0;
};

StatusOr<Value> ParseLiteral(Cursor& cur, bool negative_allowed = true) {
  if (cur.Done()) return Status::InvalidArgument("expected literal");
  bool negative = false;
  if (negative_allowed && cur.Peek().type == TokenType::kOperator &&
      cur.Peek().text == "-") {
    negative = true;
    cur.Next();
  }
  if (cur.Done()) return Status::InvalidArgument("expected literal");
  const Token& t = cur.Next();
  if (t.type == TokenType::kNumber) {
    if (t.text.find('.') != std::string::npos ||
        t.text.find('e') != std::string::npos ||
        t.text.find('E') != std::string::npos) {
      double d = std::stod(t.text);
      return Value(negative ? -d : d);
    }
    int64_t i = std::stoll(t.text);
    return Value(negative ? -i : i);
  }
  if (t.type == TokenType::kString) {
    // Strip the surrounding quotes.
    std::string inner = t.text.substr(1, t.text.size() - 2);
    return Value(inner);
  }
  return Status::InvalidArgument("unsupported literal: " + t.text);
}

StatusOr<CompareOp> ParseOp(Cursor& cur) {
  if (cur.Done() || cur.Peek().type != TokenType::kOperator) {
    return Status::InvalidArgument("expected comparison operator");
  }
  std::string op = cur.Next().text;
  if (op == "=") return CompareOp::kEq;
  if (op == "<") return CompareOp::kLt;
  if (op == ">") return CompareOp::kGt;
  if (op == "<=") return CompareOp::kLe;
  if (op == ">=") return CompareOp::kGe;
  return Status::Unimplemented("operator not supported: " + op);
}

Status ParseWhere(Cursor& cur, std::vector<Predicate>* preds) {
  if (!cur.ConsumeKeyword("WHERE")) return Status::OK();  // no WHERE clause
  while (true) {
    if (cur.Done() || cur.Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected column in WHERE");
    }
    Predicate p;
    p.column = cur.Next().text;
    auto op = ParseOp(cur);
    if (!op.ok()) return op.status();
    p.op = *op;
    auto lit = ParseLiteral(cur);
    if (!lit.ok()) return lit.status();
    p.value = std::move(lit).value();
    preds->push_back(std::move(p));
    if (!cur.ConsumeKeyword("AND")) break;
  }
  return Status::OK();
}

}  // namespace

StatusOr<QuerySpec> ParseQuery(const std::string& sql) {
  auto tokens = sql::Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Cursor cur(*tokens);
  QuerySpec spec;
  if (cur.ConsumeKeyword("SELECT")) {
    spec.kind = StatementKind::kSelect;
    if (cur.ConsumeText("*")) {
      // all columns
    } else {
      while (true) {
        if (cur.Done() || cur.Peek().type != TokenType::kIdentifier) {
          return Status::Unimplemented("only plain column lists supported");
        }
        spec.select_columns.push_back(cur.Next().text);
        if (!cur.ConsumeText(",")) break;
      }
    }
    if (!cur.ConsumeKeyword("FROM")) {
      return Status::InvalidArgument("expected FROM");
    }
    if (cur.Done() || cur.Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected table name");
    }
    spec.table = cur.Next().text;
    DBAUGUR_RETURN_IF_ERROR(ParseWhere(cur, &spec.predicates));
  } else if (cur.ConsumeKeyword("UPDATE")) {
    spec.kind = StatementKind::kUpdate;
    if (cur.Done() || cur.Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected table name");
    }
    spec.table = cur.Next().text;
    if (!cur.ConsumeKeyword("SET")) return Status::InvalidArgument("expected SET");
    while (true) {
      if (cur.Done() || cur.Peek().type != TokenType::kIdentifier) {
        return Status::InvalidArgument("expected column in SET");
      }
      Assignment a;
      a.column = cur.Next().text;
      if (!cur.ConsumeText("=")) return Status::InvalidArgument("expected =");
      auto lit = ParseLiteral(cur);
      if (!lit.ok()) return lit.status();
      a.value = std::move(lit).value();
      spec.assignments.push_back(std::move(a));
      if (!cur.ConsumeText(",")) break;
    }
    DBAUGUR_RETURN_IF_ERROR(ParseWhere(cur, &spec.predicates));
  } else {
    return Status::Unimplemented("only SELECT/UPDATE supported by dbsim");
  }
  cur.ConsumeText(";");
  if (!cur.Done()) {
    return Status::Unimplemented("trailing tokens not supported: " +
                                 cur.Peek().text);
  }
  return spec;
}

bool EvalPredicate(const Value& v, CompareOp op, const Value& literal) {
  ValueLess less;
  switch (op) {
    case CompareOp::kEq: return ValueEquals(v, literal);
    case CompareOp::kLt: return less(v, literal);
    case CompareOp::kGt: return less(literal, v);
    case CompareOp::kLe: return !less(literal, v);
    case CompareOp::kGe: return !less(v, literal);
  }
  return false;
}

}  // namespace dbaugur::dbsim

// Restricted SQL parsing for the simulator: single-table SELECT/UPDATE with
// a conjunctive WHERE of <column> <op> <literal> predicates — exactly the
// statement shapes the synthetic BusTracker application emits.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "dbsim/value.h"

namespace dbaugur::dbsim {

/// Comparison operators the engine evaluates.
enum class CompareOp { kEq, kLt, kGt, kLe, kGe };

/// One WHERE conjunct.
struct Predicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value value;
};

/// Statement kinds supported.
enum class StatementKind { kSelect, kUpdate };

/// One SET assignment in an UPDATE.
struct Assignment {
  std::string column;
  Value value;
};

/// Parsed statement.
struct QuerySpec {
  StatementKind kind = StatementKind::kSelect;
  std::string table;
  std::vector<std::string> select_columns;  ///< Empty => '*'.
  std::vector<Predicate> predicates;        ///< AND-connected.
  std::vector<Assignment> assignments;      ///< UPDATE only.
};

/// Parses one statement; Unimplemented for shapes outside the subset.
StatusOr<QuerySpec> ParseQuery(const std::string& sql);

/// Evaluates `v op literal`.
bool EvalPredicate(const Value& v, CompareOp op, const Value& literal);

}  // namespace dbaugur::dbsim

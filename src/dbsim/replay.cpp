#include "dbsim/replay.h"

#include <algorithm>
#include <cmath>

namespace dbaugur::dbsim {

StatusOr<std::vector<WindowStats>> ReplayWorkload(
    Database* db, const std::vector<trace::LogEntry>& log,
    std::vector<IndexAction> actions, const ReplayOptions& opts) {
  if (db == nullptr) return Status::InvalidArgument("replay: null database");
  if (log.empty()) return Status::InvalidArgument("replay: empty log");
  if (opts.window_seconds <= 0 || opts.pages_per_second <= 0.0) {
    return Status::InvalidArgument("replay: bad capacity options");
  }
  std::sort(actions.begin(), actions.end(),
            [](const IndexAction& a, const IndexAction& b) {
              return a.when < b.when;
            });
  size_t next_action = 0;

  int64_t first_window = log.front().timestamp / opts.window_seconds;
  int64_t last_window = log.back().timestamp / opts.window_seconds;
  std::vector<WindowStats> out;
  out.reserve(static_cast<size_t>(last_window - first_window + 1));

  size_t li = 0;
  for (int64_t w = first_window; w <= last_window; ++w) {
    WindowStats stats;
    stats.start = w * opts.window_seconds;
    int64_t window_end = stats.start + opts.window_seconds;

    // Apply design changes that fall in this window; charge build cost here.
    while (next_action < actions.size() && actions[next_action].when < window_end) {
      const IndexAction& act = actions[next_action];
      for (const auto& d : act.drop) {
        Status st = db->DropIndex(d.table, d.column);
        if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
      }
      for (const auto& c : act.create) {
        auto t = db->GetTable(c.table);
        if (!t.ok()) return t.status();
        if (!(*t)->HasIndex(c.column)) {
          auto build = db->IndexBuildCost(c.table);
          if (!build.ok()) return build.status();
          stats.demand_pages += *build;
          DBAUGUR_RETURN_IF_ERROR(db->CreateIndex(c.table, c.column));
        }
      }
      ++next_action;
    }

    // Execute this window's queries.
    double query_pages = 0.0;
    while (li < log.size() && log[li].timestamp < window_end) {
      auto res = db->Execute(log[li].sql);
      if (!res.ok()) return res.status();
      query_pages += res->cost_pages;
      ++stats.queries;
      ++li;
    }
    stats.demand_pages += query_pages;
    double capacity =
        opts.pages_per_second * static_cast<double>(opts.window_seconds);
    double utilization = stats.demand_pages / capacity;
    stats.avg_cost_pages =
        stats.queries > 0 ? query_pages / static_cast<double>(stats.queries) : 0.0;
    double arrival_qps = static_cast<double>(stats.queries) /
                         static_cast<double>(opts.window_seconds);
    if (stats.queries > 0) {
      // Sustainable service rate under the capacity model. An open-loop log
      // replay would otherwise cap every strategy at the identical arrival
      // rate; the paper's closed-loop throughput corresponds to what the
      // server could serve, which is what physical design changes move.
      stats.throughput_qps = stats.avg_cost_pages > 0.0
                                 ? opts.pages_per_second / stats.avg_cost_pages
                                 : arrival_qps;
      // M/M/1-style queueing inflation, capped at 95% utilization.
      double u = std::min(utilization, 0.95);
      stats.avg_latency_ms = stats.avg_cost_pages * opts.page_time_ms / (1.0 - u);
    }
    out.push_back(stats);
  }
  return out;
}

}  // namespace dbaugur::dbsim

// Workload replay with a capacity model: executes a timestamped query log
// window by window, converting page costs into the throughput/latency
// series of Fig. 8. Index builds can be scheduled mid-replay; their build
// cost consumes window capacity, reproducing the paper's "Auto starts slow,
// then overtakes Static" dynamic.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "dbsim/engine.h"
#include "trace/extractor.h"

namespace dbaugur::dbsim {

/// Capacity / timing model.
struct ReplayOptions {
  int64_t window_seconds = 1800;
  double pages_per_second = 4000.0;  ///< Server I/O capacity.
  double page_time_ms = 0.25;        ///< Service time per page.
};

/// Per-window measurements.
struct WindowStats {
  int64_t start = 0;           ///< Window start timestamp.
  size_t queries = 0;
  double demand_pages = 0.0;   ///< Query pages + index-build pages.
  double avg_cost_pages = 0.0;
  double throughput_qps = 0.0;
  double avg_latency_ms = 0.0;
};

/// A scheduled physical-design change.
struct IndexAction {
  int64_t when = 0;
  std::vector<HypotheticalIndex> create;
  std::vector<HypotheticalIndex> drop;
};

/// Replays `log` against `db`, applying scheduled index actions at their
/// timestamps (build cost charged to that window) and aggregating per-window
/// stats. The log must be time-ordered.
StatusOr<std::vector<WindowStats>> ReplayWorkload(
    Database* db, const std::vector<trace::LogEntry>& log,
    std::vector<IndexAction> actions, const ReplayOptions& opts);

}  // namespace dbaugur::dbsim

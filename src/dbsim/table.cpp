#include "dbsim/table.h"

#include <algorithm>
#include <cmath>

namespace dbaugur::dbsim {

void Index::Erase(const Value& key, size_t row_id) {
  auto [lo, hi] = entries_.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == row_id) {
      entries_.erase(it);
      return;
    }
  }
}

std::vector<size_t> Index::EqualRange(const Value& v) const {
  std::vector<size_t> out;
  auto [lo, hi] = entries_.equal_range(v);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

std::vector<size_t> Index::Range(const Value* lo, bool lo_inclusive,
                                 const Value* hi, bool hi_inclusive) const {
  std::vector<size_t> out;
  auto it = lo == nullptr
                ? entries_.begin()
                : (lo_inclusive ? entries_.lower_bound(*lo)
                                : entries_.upper_bound(*lo));
  auto end = hi == nullptr
                 ? entries_.end()
                 : (hi_inclusive ? entries_.upper_bound(*hi)
                                 : entries_.lower_bound(*hi));
  for (; it != end; ++it) out.push_back(it->second);
  return out;
}

double Index::DescentCost() const {
  // ~200 keys per internal page.
  double n = static_cast<double>(entries_.size()) + 1.0;
  return std::max(1.0, std::ceil(std::log(n) / std::log(200.0)));
}

Table::Table(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {}

StatusOr<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column '" + name + "' in table " + name_);
}

Status Table::Insert(std::vector<Value> row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch for table " + name_);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    // Allow int literals into double columns.
    if (columns_[i].type == ColumnType::kDouble &&
        std::holds_alternative<int64_t>(row[i])) {
      row[i] = static_cast<double>(std::get<int64_t>(row[i]));
    }
    if (TypeOf(row[i]) != columns_[i].type) {
      return Status::InvalidArgument("type mismatch in column " +
                                     columns_[i].name);
    }
  }
  size_t row_id = rows_.size();
  for (auto& [col, idx] : indexes_) {
    auto ci = ColumnIndex(col);
    idx->Insert(row[*ci], row_id);
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::UpdateCell(size_t row_id, size_t col, Value v) {
  if (row_id >= rows_.size() || col >= columns_.size()) {
    return Status::OutOfRange("UpdateCell out of range");
  }
  if (columns_[col].type == ColumnType::kDouble &&
      std::holds_alternative<int64_t>(v)) {
    v = static_cast<double>(std::get<int64_t>(v));
  }
  if (TypeOf(v) != columns_[col].type) {
    return Status::InvalidArgument("type mismatch in UpdateCell");
  }
  auto it = indexes_.find(columns_[col].name);
  if (it != indexes_.end()) {
    it->second->Erase(rows_[row_id][col], row_id);
    it->second->Insert(v, row_id);
  }
  rows_[row_id][col] = std::move(v);
  return Status::OK();
}

Status Table::CreateIndex(const std::string& column) {
  auto ci = ColumnIndex(column);
  if (!ci.ok()) return ci.status();
  if (indexes_.count(column)) return Status::OK();
  auto idx = std::make_unique<Index>(column);
  for (size_t r = 0; r < rows_.size(); ++r) idx->Insert(rows_[r][*ci], r);
  indexes_[column] = std::move(idx);
  return Status::OK();
}

Status Table::DropIndex(const std::string& column) {
  if (indexes_.erase(column) == 0) {
    return Status::NotFound("no index on " + column);
  }
  return Status::OK();
}

bool Table::HasIndex(const std::string& column) const {
  return indexes_.count(column) > 0;
}

const Index* Table::GetIndex(const std::string& column) const {
  auto it = indexes_.find(column);
  return it == indexes_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Table::IndexedColumns() const {
  std::vector<std::string> out;
  for (const auto& [col, idx] : indexes_) out.push_back(col);
  return out;
}

StatusOr<size_t> Table::DistinctCount(const std::string& column) const {
  auto ci = ColumnIndex(column);
  if (!ci.ok()) return ci.status();
  std::set<Value, ValueLess> distinct;
  for (const auto& row : rows_) distinct.insert(row[*ci]);
  return distinct.size();
}

StatusOr<std::pair<Value, Value>> Table::MinMax(const std::string& column) const {
  auto ci = ColumnIndex(column);
  if (!ci.ok()) return ci.status();
  if (rows_.empty()) return Status::NotFound("empty table");
  ValueLess less;
  Value mn = rows_[0][*ci], mx = rows_[0][*ci];
  for (const auto& row : rows_) {
    if (less(row[*ci], mn)) mn = row[*ci];
    if (less(mx, row[*ci])) mx = row[*ci];
  }
  return std::make_pair(mn, mx);
}

double Table::HeapPages() const {
  return std::max(1.0, std::ceil(static_cast<double>(rows_.size()) / kRowsPerPage));
}

}  // namespace dbaugur::dbsim

// Tables and secondary B-tree indexes for the mini relational engine.

#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "dbsim/value.h"

namespace dbaugur::dbsim {

/// One column definition.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt;
};

/// B-tree-style secondary index (ordered multimap of key -> row id).
class Index {
 public:
  explicit Index(std::string column) : column_(std::move(column)) {}

  const std::string& column() const { return column_; }
  size_t size() const { return entries_.size(); }

  void Insert(const Value& key, size_t row_id) { entries_.emplace(key, row_id); }
  void Erase(const Value& key, size_t row_id);

  /// Row ids with key == v.
  std::vector<size_t> EqualRange(const Value& v) const;
  /// Row ids with lo < key (or <=) and key < hi (or <=); null bounds open.
  std::vector<size_t> Range(const Value* lo, bool lo_inclusive, const Value* hi,
                            bool hi_inclusive) const;

  /// Simulated page height of the B-tree (descent cost).
  double DescentCost() const;

 private:
  std::string column_;
  std::multimap<Value, size_t, ValueLess> entries_;
};

/// Heap table with optional secondary indexes.
class Table {
 public:
  Table(std::string name, std::vector<Column> columns);

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  size_t row_count() const { return rows_.size(); }
  const std::vector<Value>& row(size_t i) const { return rows_[i]; }

  /// Column position by name (NotFound if absent).
  StatusOr<size_t> ColumnIndex(const std::string& name) const;

  /// Appends a row (must match the schema arity and types).
  Status Insert(std::vector<Value> row);

  /// Overwrites one cell, maintaining indexes.
  Status UpdateCell(size_t row_id, size_t col, Value v);

  /// Creates a secondary index on `column`; AlreadyExists -> OK (idempotent).
  Status CreateIndex(const std::string& column);
  Status DropIndex(const std::string& column);
  bool HasIndex(const std::string& column) const;
  const Index* GetIndex(const std::string& column) const;
  std::vector<std::string> IndexedColumns() const;

  /// Distinct value count of a column (for selectivity estimation).
  StatusOr<size_t> DistinctCount(const std::string& column) const;
  /// Min/max of a column (NotFound when the table is empty).
  StatusOr<std::pair<Value, Value>> MinMax(const std::string& column) const;

  /// Simulated heap pages: ceil(rows / rows_per_page).
  double HeapPages() const;
  static constexpr double kRowsPerPage = 100.0;

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<std::vector<Value>> rows_;
  std::map<std::string, std::unique_ptr<Index>> indexes_;
};

}  // namespace dbaugur::dbsim

#include "dbsim/value.h"

namespace dbaugur::dbsim {

namespace {
// Rank: numbers (0) before strings (1).
int Rank(const Value& v) { return std::holds_alternative<std::string>(v) ? 1 : 0; }

double AsDouble(const Value& v) {
  if (const int64_t* i = std::get_if<int64_t>(&v)) return static_cast<double>(*i);
  return std::get<double>(v);
}
}  // namespace

bool ValueLess::operator()(const Value& a, const Value& b) const {
  int ra = Rank(a), rb = Rank(b);
  if (ra != rb) return ra < rb;
  if (ra == 1) return std::get<std::string>(a) < std::get<std::string>(b);
  return AsDouble(a) < AsDouble(b);
}

bool ValueEquals(const Value& a, const Value& b) {
  ValueLess less;
  return !less(a, b) && !less(b, a);
}

std::string ValueToString(const Value& v) {
  if (const int64_t* i = std::get_if<int64_t>(&v)) return std::to_string(*i);
  if (const double* d = std::get_if<double>(&v)) return std::to_string(*d);
  return "'" + std::get<std::string>(v) + "'";
}

ColumnType TypeOf(const Value& v) {
  if (std::holds_alternative<int64_t>(v)) return ColumnType::kInt;
  if (std::holds_alternative<double>(v)) return ColumnType::kDouble;
  return ColumnType::kString;
}

}  // namespace dbaugur::dbsim

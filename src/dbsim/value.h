// Typed cell values for the mini relational engine.

#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace dbaugur::dbsim {

/// Column types supported by the simulator.
enum class ColumnType { kInt, kDouble, kString };

/// One cell value.
using Value = std::variant<int64_t, double, std::string>;

/// Total order across same-type values; mixed int/double compare numerically,
/// numbers sort before strings (arbitrary but consistent).
struct ValueLess {
  bool operator()(const Value& a, const Value& b) const;
};

/// Equality consistent with ValueLess.
bool ValueEquals(const Value& a, const Value& b);

/// Human-readable rendering (for examples and debugging).
std::string ValueToString(const Value& v);

/// The ColumnType a Value currently holds.
ColumnType TypeOf(const Value& v);

}  // namespace dbaugur::dbsim

#include "dtw/dtw.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/contracts.h"
#include "common/simd.h"
#include "dtw/dtw_simd.h"

namespace dbaugur::dtw {

namespace {

#if defined(DBAUGUR_SIMD_HAS_SSE2) || defined(DBAUGUR_SIMD_HAS_AVX2) || \
    defined(DBAUGUR_SIMD_HAS_AVX512)
#define DBAUGUR_DTW_HAS_VECTOR_TIERS 1

// Dispatch table over the per-tier kernels (dtw_simd.h), mirroring
// ActiveKernels in nn/gemm.cpp. Null means "use the scalar code below",
// which is the untouched pre-SIMD implementation — the forced-scalar build
// therefore runs bit-identical to it by construction.
struct DtwKernels {
  void (*envelope)(const double*, size_t, size_t, double*, double*);
  double (*lb_keogh_sumsq)(const double*, const double*, const double*,
                           size_t);
  double (*dtw_band)(const double*, size_t, const double*, size_t, size_t,
                     double, double*, bool*);
};

const DtwKernels* ActiveDtwKernels() {
  switch (simd::ActiveTier()) {
#if defined(DBAUGUR_SIMD_HAS_AVX512)
    case simd::Tier::kAvx512: {
      static constexpr DtwKernels k = {&tier_avx512::EnvelopeD,
                                       &tier_avx512::LbKeoghSumSqD,
                                       &tier_avx512::DtwBandD};
      return &k;
    }
#endif
#if defined(DBAUGUR_SIMD_HAS_AVX2)
    case simd::Tier::kAvx2: {
      static constexpr DtwKernels k = {&tier_avx2::EnvelopeD,
                                       &tier_avx2::LbKeoghSumSqD,
                                       &tier_avx2::DtwBandD};
      return &k;
    }
#endif
#if defined(DBAUGUR_SIMD_HAS_SSE2)
    case simd::Tier::kSse2: {
      static constexpr DtwKernels k = {&tier_sse2::EnvelopeD,
                                       &tier_sse2::LbKeoghSumSqD,
                                       &tier_sse2::DtwBandD};
      return &k;
    }
#endif
    default:
      return nullptr;
  }
}

#endif  // any vector tier compiled

}  // namespace

StatusOr<double> DtwDistance(const std::vector<double>& a,
                             const std::vector<double>& b,
                             const DtwOptions& opts, double upper_bound) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("DTW: empty trace");
  }
  DBAUGUR_CHECK(upper_bound == kNoBound || upper_bound >= 0.0,
                "DTW: negative early-abandon bound ", upper_bound);
  size_t n = a.size(), m = b.size();
  // Widen the band so the corner (n-1, m-1) is reachable.
  size_t w;
  if (opts.window < 0) {
    w = std::max(n, m);
  } else {
    w = std::max<size_t>(static_cast<size_t>(opts.window),
                         n > m ? n - m : m - n);
  }
  DBAUGUR_DCHECK_GE(w, n > m ? n - m : m - n,
                    "DTW band narrower than the length gap");
  double ub2 = upper_bound == kNoBound ? kNoBound : upper_bound * upper_bound;
  constexpr double kInf = std::numeric_limits<double>::infinity();
#if defined(DBAUGUR_DTW_HAS_VECTOR_TIERS)
  if (const DtwKernels* kern = ActiveDtwKernels(); kern != nullptr) {
    // Anti-diagonal wavefront (dtw_simd.inc): bit-identical corner value,
    // and its two-consecutive-diagonal abandon rule fires only when the
    // result provably exceeds ub2 — so every return below matches the
    // scalar DP's output exactly.
    std::vector<double> ws(3 * (n + 3), kInf);
    bool abandoned = false;
    double sq = kern->dtw_band(a.data(), n, b.data(), m, w, ub2, ws.data(),
                               &abandoned);
    if (abandoned) return kInf;  // early abandon
    if (sq == kInf) {
      return Status::Internal("DTW: band excluded the alignment corner");
    }
    if (ub2 != kNoBound && sq > ub2) return kInf;
    return std::sqrt(sq);
  }
#endif
  // Two-row DP over the band.
  std::vector<double> prev(m + 1, kInf), cur(m + 1, kInf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), kInf);
    size_t lo = i > w ? i - w : 1;
    size_t hi = std::min(m, i + w);
    DBAUGUR_DCHECK_LE(lo, hi, "DTW band row ", i, " is empty");
    double row_min = kInf;
    for (size_t j = lo; j <= hi; ++j) {
      double d = a[i - 1] - b[j - 1];
      d *= d;
      double best = std::min({prev[j], cur[j - 1], prev[j - 1]});
      cur[j] = best == kInf ? kInf : d + best;
      row_min = std::min(row_min, cur[j]);
    }
    if (ub2 != kNoBound && row_min > ub2) return kInf;  // early abandon
    std::swap(prev, cur);
  }
  double result = prev[m];
  if (result == kInf) {
    return Status::Internal("DTW: band excluded the alignment corner");
  }
  if (ub2 != kNoBound && result > ub2) return kInf;
  return std::sqrt(result);
}

Envelope BuildEnvelope(const std::vector<double>& seq, int window) {
  size_t n = seq.size();
  size_t w = window < 0 ? n : static_cast<size_t>(window);
  Envelope env;
  env.lower.resize(n);
  env.upper.resize(n);
#if defined(DBAUGUR_DTW_HAS_VECTOR_TIERS)
  if (const DtwKernels* kern = ActiveDtwKernels();
      kern != nullptr && n != 0) {
    // Exact sliding min/max — bit-identical to the loop below on any tier.
    kern->envelope(seq.data(), n, w, env.lower.data(), env.upper.data());
    return env;
  }
#endif
  for (size_t i = 0; i < n; ++i) {
    size_t lo = i > w ? i - w : 0;
    size_t hi = std::min(n - 1, i + w);
    double mn = seq[lo], mx = seq[lo];
    for (size_t j = lo + 1; j <= hi; ++j) {
      mn = std::min(mn, seq[j]);
      mx = std::max(mx, seq[j]);
    }
    env.lower[i] = mn;
    env.upper[i] = mx;
  }
  return env;
}

double LbKeogh(const std::vector<double>& query, const Envelope& cand_env) {
  DBAUGUR_DCHECK_EQ(cand_env.lower.size(), cand_env.upper.size(),
                    "LbKeogh: malformed envelope");
  if (query.size() != cand_env.lower.size()) return 0.0;
#if defined(DBAUGUR_DTW_HAS_VECTOR_TIERS)
  if (const DtwKernels* kern = ActiveDtwKernels(); kern != nullptr) {
    // W-partial-sum reduction: a few ULP from the scalar sum (admissibility
    // is preserved to that tolerance; see dtw_simd.h).
    return std::sqrt(kern->lb_keogh_sumsq(query.data(), cand_env.lower.data(),
                                          cand_env.upper.data(),
                                          query.size()));
  }
#endif
  double s = 0.0;
  for (size_t i = 0; i < query.size(); ++i) {
    double q = query[i];
    if (q > cand_env.upper[i]) {
      double d = q - cand_env.upper[i];
      s += d * d;
    } else if (q < cand_env.lower[i]) {
      double d = cand_env.lower[i] - q;
      s += d * d;
    }
  }
  return std::sqrt(s);
}

double LbKeoghSymmetric(const std::vector<double>& a, const Envelope& env_a,
                        const std::vector<double>& b, const Envelope& env_b) {
  return std::max(LbKeogh(a, env_b), LbKeogh(b, env_a));
}

double LbKim(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.empty() || b.empty()) return 0.0;
  // Any warping path must match first-with-first and last-with-last.
  double df = std::fabs(a.front() - b.front());
  double dl = std::fabs(a.back() - b.back());
  if (a.size() == 1 && b.size() == 1) {
    // The path is the single cell (0,0): df and dl are the same cost, so
    // summing them would double-count. (When only one side has length 1 the
    // first and last cells are still distinct path cells — b.front() and
    // b.back() both align against a[0] — so the sqrt form below remains
    // admissible.)
    return std::max(df, dl);
  }
  return std::sqrt(df * df + dl * dl);
}

StatusOr<bool> CascadingDtw::WithinRadius(const std::vector<double>& query,
                                          const std::vector<double>& candidate,
                                          const Envelope& cand_env,
                                          double radius,
                                          const Envelope* query_env) {
  auto d = Distance(query, candidate, cand_env, radius, query_env);
  if (!d.ok()) return d.status();
  return *d <= radius;
}

StatusOr<double> CascadingDtw::Distance(const std::vector<double>& query,
                                        const std::vector<double>& candidate,
                                        const Envelope& cand_env,
                                        double upper_bound,
                                        const Envelope* query_env) {
  if (upper_bound != kNoBound) {
    if (LbKim(query, candidate) > upper_bound) {
      ++stats_.kim_rejections;
      return std::numeric_limits<double>::infinity();
    }
    double lb = LbKeogh(query, cand_env);
    if (query_env != nullptr) {
      lb = std::max(lb, LbKeogh(candidate, *query_env));
    }
    if (lb > upper_bound) {
      ++stats_.keogh_rejections;
      return std::numeric_limits<double>::infinity();
    }
  }
  ++stats_.full_dtw;
  return DtwDistance(query, candidate, opts_, upper_bound);
}

void CascadingDtw::ResetCounters() { stats_ = PruningStats(); }

}  // namespace dbaugur::dtw

// Dynamic Time Warping (paper §IV-B, Algorithm 1) with a Sakoe–Chiba window,
// early abandoning, and the LB_Kim / LB_Keogh lower-bound cascade
// (Ratanamahatana & Keogh 2004) that reduces the common case to linear time.
//
// DTW aligns two traces by warping the time axis, so similar workloads whose
// patterns are shifted or locally stretched (the paper's planetarium example)
// still measure as close — unlike lock-step Euclidean/cosine distance.

#pragma once

#include <limits>
#include <vector>

#include "common/status.h"

namespace dbaugur::dtw {

/// Sentinel for "no early-abandon threshold".
inline constexpr double kNoBound = std::numeric_limits<double>::infinity();

/// Options for DTW computation.
struct DtwOptions {
  /// Sakoe–Chiba band half-width in steps. Negative => unconstrained.
  /// For traces of different lengths the effective band is widened to at
  /// least |n - m| so an alignment always exists.
  int window = 10;
};

/// Exact windowed DTW distance between two traces (Algorithm 1 generalized to
/// unequal lengths). `upper_bound` enables early abandoning: if the distance
/// provably exceeds it, returns +infinity immediately.
/// Returns InvalidArgument for empty inputs.
StatusOr<double> DtwDistance(const std::vector<double>& a,
                             const std::vector<double>& b,
                             const DtwOptions& opts,
                             double upper_bound = kNoBound);

/// Per-position min/max of a trace over a sliding band of half-width
/// `window` — the Keogh envelope used by LB_Keogh.
struct Envelope {
  std::vector<double> lower;
  std::vector<double> upper;
};

/// Builds the Keogh envelope of `seq` for band half-width `window`.
Envelope BuildEnvelope(const std::vector<double>& seq, int window);

/// LB_Keogh lower bound of DTW(query, candidate) given the candidate's
/// envelope (equal lengths required; returns 0 — a trivially valid bound —
/// when lengths differ).
double LbKeogh(const std::vector<double>& query, const Envelope& cand_env);

/// LB_Kim-style constant-time lower bound from the first and last points.
double LbKim(const std::vector<double>& a, const std::vector<double>& b);

/// Cascading evaluator: LB_Kim → LB_Keogh → early-abandoning DTW. Used by
/// the clustering range queries; counts how often each tier decided, which
/// the ablation bench reports.
class CascadingDtw {
 public:
  explicit CascadingDtw(const DtwOptions& opts) : opts_(opts) {}

  /// True iff DTW(query, candidate) <= radius. `cand_env` must be the
  /// candidate's envelope for the same window.
  StatusOr<bool> WithinRadius(const std::vector<double>& query,
                              const std::vector<double>& candidate,
                              const Envelope& cand_env, double radius);

  /// Exact distance with the cascade used as a fast reject against
  /// `upper_bound`; returns +infinity if the bound proves distance > bound.
  StatusOr<double> Distance(const std::vector<double>& query,
                            const std::vector<double>& candidate,
                            const Envelope& cand_env, double upper_bound);

  int64_t kim_rejections() const { return kim_rejections_; }
  int64_t keogh_rejections() const { return keogh_rejections_; }
  int64_t full_computations() const { return full_computations_; }
  void ResetCounters();

 private:
  DtwOptions opts_;
  int64_t kim_rejections_ = 0;
  int64_t keogh_rejections_ = 0;
  int64_t full_computations_ = 0;
};

}  // namespace dbaugur::dtw

// Dynamic Time Warping (paper §IV-B, Algorithm 1) with a Sakoe–Chiba window,
// early abandoning, and the LB_Kim / LB_Keogh lower-bound cascade
// (Ratanamahatana & Keogh 2004) that reduces the common case to linear time.
//
// DTW aligns two traces by warping the time axis, so similar workloads whose
// patterns are shifted or locally stretched (the paper's planetarium example)
// still measure as close — unlike lock-step Euclidean/cosine distance.

#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/status.h"

namespace dbaugur::dtw {

/// Sentinel for "no early-abandon threshold".
inline constexpr double kNoBound = std::numeric_limits<double>::infinity();

/// Options for DTW computation.
struct DtwOptions {
  /// Sakoe–Chiba band half-width in steps. Negative => unconstrained.
  /// For traces of different lengths the effective band is widened to at
  /// least |n - m| so an alignment always exists.
  int window = 10;
};

/// Exact windowed DTW distance between two traces (Algorithm 1 generalized to
/// unequal lengths). `upper_bound` enables early abandoning: if the distance
/// provably exceeds it, returns +infinity immediately.
/// Returns InvalidArgument for empty inputs.
StatusOr<double> DtwDistance(const std::vector<double>& a,
                             const std::vector<double>& b,
                             const DtwOptions& opts,
                             double upper_bound = kNoBound);

/// Per-position min/max of a trace over a sliding band of half-width
/// `window` — the Keogh envelope used by LB_Keogh.
struct Envelope {
  std::vector<double> lower;
  std::vector<double> upper;
};

/// Builds the Keogh envelope of `seq` for band half-width `window`.
Envelope BuildEnvelope(const std::vector<double>& seq, int window);

/// LB_Keogh lower bound of DTW(query, candidate) given the candidate's
/// envelope (equal lengths required; returns 0 — a trivially valid bound —
/// when lengths differ).
double LbKeogh(const std::vector<double>& query, const Envelope& cand_env);

/// Two-sided LB_Keogh: the max of both directions (a against b's envelope
/// and b against a's). Each direction is an admissible lower bound of the
/// symmetric DTW distance, so their max is a tighter admissible bound.
double LbKeoghSymmetric(const std::vector<double>& a, const Envelope& env_a,
                        const std::vector<double>& b, const Envelope& env_b);

/// LB_Kim-style constant-time lower bound from the first and last points.
double LbKim(const std::vector<double>& a, const std::vector<double>& b);

/// Per-tier telemetry for the neighbor-search cascade: how many candidates
/// each lower-bound tier rejected and how many paid for a full DTW. Threaded
/// from CascadingDtw / BallTree through Descender and core::DBAugur into the
/// efficiency benches.
struct PruningStats {
  int64_t kim_rejections = 0;    ///< Candidates rejected by LB_Kim.
  int64_t keogh_rejections = 0;  ///< Candidates rejected by LB_Keogh.
  int64_t tree_rejections = 0;   ///< Points skipped by Ball-Tree ball pruning.
  int64_t full_dtw = 0;          ///< Full (possibly early-abandoned) DTW runs.

  PruningStats& operator+=(const PruningStats& o) {
    kim_rejections += o.kim_rejections;
    keogh_rejections += o.keogh_rejections;
    tree_rejections += o.tree_rejections;
    full_dtw += o.full_dtw;
    return *this;
  }
};

/// Cascading evaluator: LB_Kim → LB_Keogh → early-abandoning DTW. Used by
/// the clustering range queries; counts how often each tier decided, which
/// the ablation bench reports.
class CascadingDtw {
 public:
  explicit CascadingDtw(const DtwOptions& opts) : opts_(opts) {}

  /// True iff DTW(query, candidate) <= radius. `cand_env` must be the
  /// candidate's envelope for the same window. When `query_env` is supplied
  /// the Keogh tier uses the symmetric two-sided bound, which prunes
  /// strictly more candidates without changing any accept/reject decision.
  StatusOr<bool> WithinRadius(const std::vector<double>& query,
                              const std::vector<double>& candidate,
                              const Envelope& cand_env, double radius,
                              const Envelope* query_env = nullptr);

  /// Exact distance with the cascade used as a fast reject against
  /// `upper_bound`; returns +infinity if the bound proves distance > bound.
  StatusOr<double> Distance(const std::vector<double>& query,
                            const std::vector<double>& candidate,
                            const Envelope& cand_env, double upper_bound,
                            const Envelope* query_env = nullptr);

  const PruningStats& stats() const { return stats_; }
  int64_t kim_rejections() const { return stats_.kim_rejections; }
  int64_t keogh_rejections() const { return stats_.keogh_rejections; }
  int64_t full_computations() const { return stats_.full_dtw; }
  void ResetCounters();

 private:
  DtwOptions opts_;
  PruningStats stats_;
};

}  // namespace dbaugur::dtw

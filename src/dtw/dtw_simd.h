// Declarations of the per-tier vector kernels behind the DTW cascade
// dispatch (see dtw.cpp): Keogh envelope construction, the LB_Keogh
// exceedance sum, and the full band DTW recurrence as an anti-diagonal
// wavefront.
//
// The scheme mirrors src/nn/simd_kernels.h: each tier namespace is one
// translation unit (src/dtw/simd_tier_<isa>.cpp) compiled with that ISA's
// -m flags, with the bodies shared via dtw_simd.inc against the
// `simd::best` wrapper types. Distinct per-tier namespaces keep the scheme
// ODR-safe (an AVX-512-codegen'd helper can never be linker-merged into a
// binary that must run on an AVX2-only host).
//
// Numerics contract (relied on by dtw_simd_test):
//  * EnvelopeD and DtwBandD use only exact operations (subtract, multiply,
//    add of an exact chain, IEEE min/max, compare/blend) applied to the same
//    per-element expressions as the scalar code, so their results are
//    bit-identical to the scalar tier on every input without NaNs.
//  * LbKeoghSumSqD reduces with W partial sums (reassociation), so it may
//    differ from the scalar sum by a few ULP; LbKeogh stays an admissible
//    DTW lower bound to that tolerance.

#pragma once

#include <cstddef>

#if defined(DBAUGUR_SIMD_HAS_SSE2) || defined(DBAUGUR_SIMD_HAS_AVX2) || \
    defined(DBAUGUR_SIMD_HAS_AVX512)

// clang-format off
#define DBAUGUR_DTW_DECLARE_TIER(ns)                                           \
  namespace ns {                                                               \
  /* Keogh envelope: lower/upper[i] = min/max of seq over [i-w, i+w]       */  \
  /* clamped to [0, n). Bit-identical to the scalar loop in dtw.cpp.       */  \
  void EnvelopeD(const double* seq, std::size_t n, std::size_t w,              \
                 double* lower, double* upper);                                \
  /* Sum of squared envelope exceedances of q against [lo, up] (the        */  \
  /* LB_Keogh sum before the sqrt). Requires lo[i] <= up[i]. W partials.   */  \
  double LbKeoghSumSqD(const double* q, const double* lo, const double* up,    \
                       std::size_t n);                                         \
  /* Band DTW as an anti-diagonal wavefront. Returns the squared DP value  */  \
  /* at the corner (n, m), or +inf with *abandoned set when two            */  \
  /* consecutive anti-diagonal minima exceeded ub2 (which proves the true  */  \
  /* result > ub2; pass ub2 = +inf to disable). `ws` is caller-owned       */  \
  /* scratch of at least 3 * (n + 3) doubles, prefilled with +inf.         */  \
  double DtwBandD(const double* a, std::size_t n, const double* b,             \
                  std::size_t m, std::size_t w, double ub2, double* ws,        \
                  bool* abandoned);                                            \
  }
// clang-format on

namespace dbaugur::dtw {

#if defined(DBAUGUR_SIMD_HAS_SSE2)
DBAUGUR_DTW_DECLARE_TIER(tier_sse2)
#endif
#if defined(DBAUGUR_SIMD_HAS_AVX2)
DBAUGUR_DTW_DECLARE_TIER(tier_avx2)
#endif
#if defined(DBAUGUR_SIMD_HAS_AVX512)
DBAUGUR_DTW_DECLARE_TIER(tier_avx512)
#endif

}  // namespace dbaugur::dtw

#undef DBAUGUR_DTW_DECLARE_TIER

#endif  // any tier compiled

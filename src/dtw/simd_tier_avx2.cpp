// AVX2+FMA tier for the DTW cascade kernels. Compiled with -mavx2 -mfma
// -ffp-contract=off (explicit Fmadd only — no compiler-formed contractions;
// see src/CMakeLists.txt).

#include "common/simd.h"

#if defined(DBAUGUR_SIMD_HAS_AVX2)

#if !defined(__AVX2__) || !defined(__FMA__)
#error "dtw/simd_tier_avx2.cpp must be compiled with -mavx2 -mfma"
#endif

#define DBAUGUR_DTW_TIER_NS tier_avx2
#include "dtw/dtw_simd.inc"

#endif  // DBAUGUR_SIMD_HAS_AVX2

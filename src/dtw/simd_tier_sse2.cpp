// SSE2 tier for the DTW cascade kernels. Compiled with baseline x86-64
// flags plus -ffp-contract=off (no FMA on this tier; see src/CMakeLists.txt).

#include "common/simd.h"

#if defined(DBAUGUR_SIMD_HAS_SSE2)

#if !defined(__SSE2__)
#error "dtw/simd_tier_sse2.cpp must be compiled for an SSE2 target"
#endif

#define DBAUGUR_DTW_TIER_NS tier_sse2
#include "dtw/dtw_simd.inc"

#endif  // DBAUGUR_SIMD_HAS_SSE2

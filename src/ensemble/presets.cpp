#include "ensemble/presets.h"

#include "models/factory.h"

namespace dbaugur::ensemble {

namespace {
StatusOr<std::unique_ptr<TimeSensitiveEnsemble>> Build(
    const models::ForecasterOptions& opts, const EnsembleOptions& ens,
    const std::vector<std::string>& names) {
  auto out = std::make_unique<TimeSensitiveEnsemble>(opts, ens);
  for (const auto& name : names) {
    auto m = models::MakeForecaster(name, opts);
    if (!m.ok()) return m.status();
    out->AddMember(std::move(m).value());
  }
  return out;
}
}  // namespace

StatusOr<std::unique_ptr<TimeSensitiveEnsemble>> MakeDBAugur(
    const models::ForecasterOptions& opts, double delta) {
  EnsembleOptions ens;
  ens.delta = delta;
  ens.dynamic = true;
  return Build(opts, ens, {"WFGAN", "TCN", "MLP"});
}

StatusOr<std::unique_ptr<TimeSensitiveEnsemble>> MakeQB5000(
    const models::ForecasterOptions& opts) {
  EnsembleOptions ens;
  ens.dynamic = false;
  return Build(opts, ens, {"LR", "LSTM", "KR"});
}

StatusOr<std::unique_ptr<TimeSensitiveEnsemble>> MakeFixedDBAugur(
    const models::ForecasterOptions& opts) {
  EnsembleOptions ens;
  ens.dynamic = false;
  return Build(opts, ens, {"WFGAN", "TCN", "MLP"});
}

StatusOr<std::unique_ptr<TimeSensitiveEnsemble>> MakeKernelBaseline(
    const models::ForecasterOptions& opts) {
  EnsembleOptions ens;
  ens.dynamic = false;  // a single member always has weight 1
  return Build(opts, ens, {"KR"});
}

}  // namespace dbaugur::ensemble

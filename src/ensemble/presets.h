// Preset ensembles from the paper's evaluation:
//   * DBAugur  — dynamic time-sensitive fusion of WFGAN + TCN + MLP (δ=0.9)
//   * QB5000   — equal average of LR + LSTM + KR (Ma et al., SIGMOD'18)
//   * Fixed    — equal-weight fusion of WFGAN + TCN + MLP (Fig. 7 baseline)

#pragma once

#include <memory>

#include "ensemble/time_sensitive_ensemble.h"
#include "models/forecaster.h"

namespace dbaugur::ensemble {

/// DBAugur's forecaster: dynamic ensemble of WFGAN, TCN, and MLP.
StatusOr<std::unique_ptr<TimeSensitiveEnsemble>> MakeDBAugur(
    const models::ForecasterOptions& opts, double delta = 0.9);

/// The QB5000 baseline: fixed equal average of LR, LSTM, and KR.
StatusOr<std::unique_ptr<TimeSensitiveEnsemble>> MakeQB5000(
    const models::ForecasterOptions& opts);

/// Fixed-weight variant of DBAugur's member set (Fig. 7's "fixed" curve).
StatusOr<std::unique_ptr<TimeSensitiveEnsemble>> MakeFixedDBAugur(
    const models::ForecasterOptions& opts);

/// Single-member kernel-regression "ensemble": the serving layer's degraded-
/// mode baseline. KR predictions are kernel-weighted averages of observed
/// targets, so they are bounded by the training data by construction — the
/// property a fallback for a diverged adversarial fit needs.
StatusOr<std::unique_ptr<TimeSensitiveEnsemble>> MakeKernelBaseline(
    const models::ForecasterOptions& opts);

}  // namespace dbaugur::ensemble

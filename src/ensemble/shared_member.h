// Non-owning forecaster adapter: lets one trained model serve as a member of
// several ensembles (e.g. the LSTM inside QB5000 and the standalone LSTM
// baseline in Fig. 5) without retraining. Fit() is a no-op; the wrapped
// model must already be fitted and must outlive the wrapper.

#pragma once

#include "models/forecaster.h"

namespace dbaugur::ensemble {

class SharedMember : public models::Forecaster {
 public:
  /// `inner` must already be fitted and outlive this wrapper.
  explicit SharedMember(const models::Forecaster* inner) : inner_(inner) {}

  Status Fit(const std::vector<double>&) override { return Status::OK(); }
  StatusOr<double> Predict(const std::vector<double>& window) const override {
    return inner_->Predict(window);
  }
  std::string name() const override { return inner_->name(); }
  int64_t StorageBytes() const override { return inner_->StorageBytes(); }
  int64_t ParameterCount() const override { return inner_->ParameterCount(); }

 private:
  const models::Forecaster* inner_;
};

}  // namespace dbaugur::ensemble

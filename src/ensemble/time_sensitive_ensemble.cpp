#include "ensemble/time_sensitive_ensemble.h"

#include <cmath>

#include "common/binio.h"
#include "common/contracts.h"

namespace dbaugur::ensemble {

void TimeSensitiveEnsemble::AddMember(
    std::unique_ptr<models::Forecaster> member) {
  members_.push_back(std::move(member));
}

Status TimeSensitiveEnsemble::Fit(const std::vector<double>& series) {
  // δ outside (0,1) makes the forecasting-distance recurrence Γ_t = δΓ_{t-1} +
  // e_t diverge or ignore history entirely — a configuration bug, not a data
  // condition, so it is a contract rather than a Status.
  DBAUGUR_CHECK(ens_.delta > 0.0 && ens_.delta < 1.0,
                "ensemble attenuation delta must be in (0,1), got ",
                ens_.delta);
  if (members_.empty()) {
    return Status::FailedPrecondition("ensemble: no members added");
  }
  for (auto& m : members_) {
    DBAUGUR_RETURN_IF_ERROR(m->Fit(series));
  }
  gamma_.assign(members_.size(), 0.0);
  cached_window_.clear();
  cached_preds_.clear();
  fitted_ = true;
  return Status::OK();
}

StatusOr<std::vector<double>> TimeSensitiveEnsemble::MemberPredictions(
    const std::vector<double>& window) const {
  if (cached_window_ == window && cached_preds_.size() == members_.size()) {
    return cached_preds_;
  }
  std::vector<double> preds;
  preds.reserve(members_.size());
  for (const auto& m : members_) {
    auto p = m->Predict(window);
    if (!p.ok()) return p.status();
    preds.push_back(*p);
  }
  cached_window_ = window;
  cached_preds_ = preds;
  return preds;
}

namespace {
// True iff the weight vector is a normalized distribution (sums to 1 within
// floating-point tolerance). DCHECK-tier: O(n) per prediction.
bool WeightsNormalized(const std::vector<double>& w) {
  double sum = 0.0;
  for (double x : w) sum += x;
  return std::fabs(sum - 1.0) <= 1e-9;
}
}  // namespace

std::vector<double> TimeSensitiveEnsemble::CurrentWeights() const {
  size_t n = members_.size();
  std::vector<double> w(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  if (!ens_.dynamic || n < 2) return w;
  double sum = 0.0;
  for (double g : gamma_) sum += g;
  if (sum <= 1e-300) return w;  // no errors observed yet => equal weights
  for (size_t i = 0; i < n; ++i) {
    w[i] = (sum - gamma_[i]) / (static_cast<double>(n - 1) * sum);
  }
  DBAUGUR_DCHECK(WeightsNormalized(w),
                 "ensemble weights do not sum to 1 (Eq. 8 normalization)");
  return w;
}

StatusOr<double> TimeSensitiveEnsemble::Predict(
    const std::vector<double>& window) const {
  if (!fitted_) return Status::FailedPrecondition("ensemble: Fit not called");
  auto preds = MemberPredictions(window);
  if (!preds.ok()) return preds.status();
  std::vector<double> w = CurrentWeights();
  double out = 0.0;
  for (size_t i = 0; i < preds->size(); ++i) out += w[i] * (*preds)[i];
  return out;
}

Status TimeSensitiveEnsemble::Observe(const std::vector<double>& window,
                                      double actual) {
  if (!fitted_) return Status::FailedPrecondition("ensemble: Fit not called");
  auto preds = MemberPredictions(window);
  if (!preds.ok()) return preds.status();
  for (size_t i = 0; i < members_.size(); ++i) {
    double e = (*preds)[i] - actual;
    gamma_[i] = ens_.delta * gamma_[i] + e * e;
  }
  return Status::OK();
}

namespace {
constexpr uint32_t kEnsembleStateMagic = 0xDBA6E5B1;
}  // namespace

StatusOr<std::vector<uint8_t>> TimeSensitiveEnsemble::SaveState() const {
  if (!fitted_) {
    return Status::FailedPrecondition("ensemble: SaveState before Fit");
  }
  BufWriter w;
  w.U32(kEnsembleStateMagic);
  w.U32(static_cast<uint32_t>(members_.size()));
  for (const auto& m : members_) {
    auto state = m->SaveState();
    if (!state.ok()) return state.status();
    w.Str(m->name());
    w.Bytes(*state);
  }
  for (double g : gamma_) w.F64(g);
  return w.Take();
}

Status TimeSensitiveEnsemble::LoadState(const std::vector<uint8_t>& buffer) {
  BufReader r(buffer);
  uint32_t magic = 0, count = 0;
  if (!r.U32(&magic) || magic != kEnsembleStateMagic) {
    return Status::InvalidArgument("bad magic in ensemble state buffer");
  }
  if (!r.U32(&count) || count != members_.size()) {
    return Status::InvalidArgument("ensemble state member count mismatch");
  }
  // Parse everything before mutating any member, so a truncated tail cannot
  // leave the ensemble half-restored with stale caches.
  std::vector<std::vector<uint8_t>> states(members_.size());
  for (size_t i = 0; i < members_.size(); ++i) {
    std::string member_name;
    if (!r.Str(&member_name) || !r.Bytes(&states[i])) {
      return Status::InvalidArgument("truncated ensemble state member section");
    }
    if (member_name != members_[i]->name()) {
      return Status::InvalidArgument(
          "ensemble state member mismatch: expected " + members_[i]->name() +
          ", blob has " + member_name);
    }
  }
  std::vector<double> gamma(members_.size(), 0.0);
  for (double& g : gamma) {
    if (!r.F64(&g)) {
      return Status::InvalidArgument("truncated ensemble state gamma section");
    }
  }
  for (size_t i = 0; i < members_.size(); ++i) {
    DBAUGUR_RETURN_IF_ERROR(members_[i]->LoadState(states[i]));
  }
  gamma_ = std::move(gamma);
  cached_window_.clear();
  cached_preds_.clear();
  fitted_ = true;
  return Status::OK();
}

int64_t TimeSensitiveEnsemble::StorageBytes() const {
  int64_t bytes = static_cast<int64_t>(gamma_.size()) * 8;
  for (const auto& m : members_) bytes += m->StorageBytes();
  return bytes;
}

int64_t TimeSensitiveEnsemble::ParameterCount() const {
  int64_t n = 0;
  for (const auto& m : members_) n += m->ParameterCount();
  return n;
}

StatusOr<models::EvalResult> EvaluateOnline(TimeSensitiveEnsemble& model,
                                            const std::vector<double>& series,
                                            size_t train_size, size_t window,
                                            size_t horizon) {
  if (window == 0 || horizon == 0) {
    return Status::InvalidArgument("window and horizon must be positive");
  }
  if (train_size + horizon >= series.size() || train_size < window) {
    return Status::InvalidArgument("not enough data to evaluate");
  }
  models::EvalResult out;
  for (size_t target = train_size; target < series.size(); ++target) {
    if (target < window - 1 + horizon) continue;
    size_t window_end = target - horizon;
    size_t window_begin = window_end + 1 - window;
    DBAUGUR_DCHECK_LT(window_end, series.size(),
                      "EvaluateOnline window exceeds series");
    DBAUGUR_DCHECK_LE(window_begin, window_end,
                      "EvaluateOnline window inverted");
    std::vector<double> w(
        series.begin() + static_cast<ptrdiff_t>(window_begin),
        series.begin() + static_cast<ptrdiff_t>(window_end + 1));
    auto pred = model.Predict(w);
    if (!pred.ok()) return pred.status();
    out.predicted.push_back(*pred);
    out.actual.push_back(series[target]);
    out.target_index.push_back(target);
    // Realized value becomes available once time reaches `target`; feeding it
    // back immediately after recording the prediction keeps the walk causal.
    DBAUGUR_RETURN_IF_ERROR(model.Observe(w, series[target]));
  }
  if (out.predicted.empty()) {
    return Status::InvalidArgument("no evaluable targets");
  }
  return out;
}

}  // namespace dbaugur::ensemble

// Time-sensitive ensemble (paper §V-C, Eq. 7-8).
//
// Each member model i keeps a forecasting distance
//   Γ(e(i), t) = Σ_{j<=t} δ^{t-j} e_j(i)      (recurrence Γ_t = δΓ_{t-1} + e_t)
// over its squared one-shot errors. At prediction time the members are fused
// with normalized inverted distances
//   w_t(i) = (Σ_j Γ(e(j),t) − Γ(e(i),t)) / ((n−1) · Σ_j Γ(e(j),t)),
// which reduces to the paper's Eq. 8 for n = 3. With `dynamic = false` the
// ensemble uses fixed equal weights (the Fig. 7 baseline); the same class
// with members {LR, LSTM, KR} and fixed weights is QB5000.

#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "models/forecaster.h"

namespace dbaugur::ensemble {

/// Ensemble configuration.
struct EnsembleOptions {
  double delta = 0.9;    ///< Attenuation factor δ (paper uses 0.9).
  bool dynamic = true;   ///< false => fixed equal weights.
};

/// Fuses member forecasters with time-sensitive weights. Implements the
/// Forecaster interface so it can be evaluated exactly like a single model;
/// weights evolve as Observe() feeds back realized values.
class TimeSensitiveEnsemble : public models::Forecaster {
 public:
  TimeSensitiveEnsemble(const models::ForecasterOptions& opts,
                        const EnsembleOptions& ens)
      : opts_(opts), ens_(ens) {}

  /// Adds a member model (before Fit).
  void AddMember(std::unique_ptr<models::Forecaster> member);
  size_t member_count() const { return members_.size(); }
  const models::Forecaster& member(size_t i) const { return *members_[i]; }

  /// Fits every member on the training series and resets the error state.
  Status Fit(const std::vector<double>& series) override;

  /// Weighted fusion of member predictions using the current weights.
  StatusOr<double> Predict(const std::vector<double>& window) const override;

  /// Feeds back the realized value for the given condition window, updating
  /// each member's forecasting distance Γ. Call in time order: the realized
  /// value for a window becomes known H steps after the prediction, so the
  /// natural driver is Predict(w_t), ..., Observe(w_t, x_{t+H}).
  Status Observe(const std::vector<double>& window, double actual);

  /// Current ensemble weights (sums to 1; equal until errors accumulate).
  std::vector<double> CurrentWeights() const;
  /// Current forecasting distances Γ per member.
  const std::vector<double>& Distances() const { return gamma_; }

  std::string name() const override {
    return ens_.dynamic ? "DBAugurEnsemble" : "FixedEnsemble";
  }
  int64_t StorageBytes() const override;
  int64_t ParameterCount() const override;

  /// Serializes every member's state plus the forecasting-distance histories
  /// Γ, so a same-preset ensemble restores to identical weights and member
  /// forecasts without retraining. Fails with Unimplemented if any member
  /// cannot serialize (classical models).
  StatusOr<std::vector<uint8_t>> SaveState() const override;
  /// Restores a SaveState blob into an ensemble with the same member names
  /// in the same order; corrupt or mismatched blobs are rejected.
  Status LoadState(const std::vector<uint8_t>& buffer) override;

 private:
  StatusOr<std::vector<double>> MemberPredictions(
      const std::vector<double>& window) const;

  models::ForecasterOptions opts_;
  EnsembleOptions ens_;
  std::vector<std::unique_ptr<models::Forecaster>> members_;
  std::vector<double> gamma_;
  // Cache of the last window's member predictions so Observe doesn't
  // recompute them.
  mutable std::vector<double> cached_window_;
  mutable std::vector<double> cached_preds_;
  bool fitted_ = false;
};

/// Rolling online evaluation for ensembles: walks the tail of `series`
/// (targets >= train_size) in time order, predicting each target and then
/// observing the realized value so the weights adapt as in deployment.
StatusOr<models::EvalResult> EvaluateOnline(TimeSensitiveEnsemble& model,
                                            const std::vector<double>& series,
                                            size_t train_size, size_t window,
                                            size_t horizon);

}  // namespace dbaugur::ensemble

#include "migrate/load_balancer.h"

#include <algorithm>
#include <cmath>

namespace dbaugur::migrate {

double BalanceDifference(const std::vector<double>& server_loads) {
  if (server_loads.empty()) return 0.0;
  double mn = server_loads[0], mx = server_loads[0], sum = 0.0;
  for (double l : server_loads) {
    mn = std::min(mn, l);
    mx = std::max(mx, l);
    sum += l;
  }
  double mean = sum / static_cast<double>(server_loads.size());
  if (mean <= 0.0) return 0.0;
  return (mx - mn) / mean;
}

LoadBalancer::LoadBalancer(size_t servers, size_t regions)
    : servers_(std::max<size_t>(1, servers)), assignment_(regions) {
  for (size_t r = 0; r < regions; ++r) assignment_[r] = r % servers_;
}

std::vector<double> LoadBalancer::ServerLoads(
    const std::vector<double>& region_loads) const {
  std::vector<double> out(servers_, 0.0);
  for (size_t r = 0; r < assignment_.size() && r < region_loads.size(); ++r) {
    out[assignment_[r]] += region_loads[r];
  }
  return out;
}

std::vector<Move> LoadBalancer::Plan(
    const std::vector<double>& expected_region_loads, size_t max_moves) const {
  std::vector<size_t> assign = assignment_;
  std::vector<double> loads(servers_, 0.0);
  for (size_t r = 0; r < assign.size(); ++r) {
    loads[assign[r]] += expected_region_loads[r];
  }
  std::vector<Move> moves;
  for (size_t step = 0; step < max_moves; ++step) {
    size_t heavy = 0, light = 0;
    for (size_t s = 1; s < servers_; ++s) {
      if (loads[s] > loads[heavy]) heavy = s;
      if (loads[s] < loads[light]) light = s;
    }
    if (heavy == light) break;
    double gap = loads[heavy] - loads[light];
    // Best region to move: the one closest to half the gap (moving more than
    // the gap would just flip the imbalance).
    size_t best_region = assign.size();
    double best_score = 0.0;
    for (size_t r = 0; r < assign.size(); ++r) {
      if (assign[r] != heavy) continue;
      double l = expected_region_loads[r];
      if (l <= 0.0 || l >= gap) continue;
      double score = l * (gap - l);  // maximized at l = gap/2
      if (score > best_score) {
        best_score = score;
        best_region = r;
      }
    }
    if (best_region == assign.size()) break;  // no improving move
    moves.push_back({best_region, heavy, light});
    assign[best_region] = light;
    loads[heavy] -= expected_region_loads[best_region];
    loads[light] += expected_region_loads[best_region];
  }
  return moves;
}

void LoadBalancer::Apply(const std::vector<Move>& moves) {
  for (const Move& m : moves) {
    if (m.region < assignment_.size() && m.to_server < servers_) {
      assignment_[m.region] = m.to_server;
    }
  }
}

StatusOr<std::vector<double>> SimulateMigration(
    const std::vector<ts::Series>& region_loads, size_t servers,
    size_t eval_start, const RegionPredictor& predictor,
    size_t max_moves_per_period) {
  if (region_loads.empty()) {
    return Status::InvalidArgument("migration: no regions");
  }
  size_t periods = region_loads[0].size();
  for (const auto& s : region_loads) {
    if (s.size() != periods) {
      return Status::InvalidArgument("migration: region trace length mismatch");
    }
  }
  if (eval_start >= periods) {
    return Status::InvalidArgument("migration: eval_start beyond trace end");
  }
  LoadBalancer balancer(servers, region_loads.size());
  std::vector<double> out;
  out.reserve(periods - eval_start);
  for (size_t p = eval_start; p < periods; ++p) {
    // Plan with expected loads for period p (knowledge strictly before p).
    std::vector<double> expected(region_loads.size());
    for (size_t r = 0; r < region_loads.size(); ++r) {
      auto e = predictor(r, p);
      if (!e.ok()) return e.status();
      expected[r] = std::max(0.0, *e);
    }
    balancer.Apply(balancer.Plan(expected, max_moves_per_period));
    // Score with the actual loads of period p.
    std::vector<double> actual(region_loads.size());
    for (size_t r = 0; r < region_loads.size(); ++r) {
      actual[r] = region_loads[r][p];
    }
    out.push_back(BalanceDifference(balancer.ServerLoads(actual)));
  }
  return out;
}

std::vector<ts::Series> MakeRotatingRegionLoads(const ts::Series& base,
                                                size_t regions,
                                                double hotspot_speed,
                                                double hotspot_gain) {
  std::vector<ts::Series> out;
  out.reserve(regions);
  double r_count = static_cast<double>(regions);
  for (size_t r = 0; r < regions; ++r) {
    std::vector<double> v(base.size());
    for (size_t p = 0; p < base.size(); ++p) {
      double hotspot_pos =
          std::fmod(hotspot_speed * static_cast<double>(p), r_count);
      double d = std::fabs(hotspot_pos - static_cast<double>(r));
      d = std::min(d, r_count - d);  // circular distance
      double gain = 1.0 + hotspot_gain * std::exp(-d * d / 2.0);
      v[p] = base[p] * gain / r_count;
    }
    out.emplace_back(base.start(), base.interval_seconds(), std::move(v),
                     "region_" + std::to_string(r));
  }
  return out;
}

}  // namespace dbaugur::migrate

// Data-region migration / load balancing (paper §VI-G, Fig. 9).
//
// The database is horizontally partitioned into non-overlapping regions
// assigned to servers. Each period, a planner migrates regions from
// overloaded to lightly-loaded servers based on *expected* per-region loads
// for the next period; the quality metric is the load-balance difference of
// the *actual* loads, (max - min) / mean over servers. The Static strategy
// plans with last period's observed loads (lagging); Auto strategies plan
// with forecasted loads.

#pragma once

#include <functional>
#include <vector>

#include "common/status.h"
#include "ts/series.h"

namespace dbaugur::migrate {

/// One region move.
struct Move {
  size_t region = 0;
  size_t from_server = 0;
  size_t to_server = 0;
};

/// Load-balance difference: (max - min) / mean of per-server loads
/// (0 = perfectly balanced). Returns 0 for zero total load.
double BalanceDifference(const std::vector<double>& server_loads);

/// Region→server assignment with a greedy rebalancing planner.
class LoadBalancer {
 public:
  /// Regions are assigned round-robin initially.
  LoadBalancer(size_t servers, size_t regions);

  size_t servers() const { return servers_; }
  size_t regions() const { return assignment_.size(); }
  size_t server_of(size_t region) const { return assignment_[region]; }

  /// Per-server total of `region_loads` under the current assignment.
  std::vector<double> ServerLoads(const std::vector<double>& region_loads) const;

  /// Greedy plan: up to `max_moves` migrations, each moving a region from
  /// the currently heaviest server to the lightest one, maximizing the
  /// reduction in balance difference of the *expected* loads.
  std::vector<Move> Plan(const std::vector<double>& expected_region_loads,
                         size_t max_moves) const;

  void Apply(const std::vector<Move>& moves);

 private:
  size_t servers_;
  std::vector<size_t> assignment_;  // region -> server
};

/// Forecast callback: expected load of `region` at `period`, computed from
/// information strictly before `period`.
using RegionPredictor =
    std::function<StatusOr<double>(size_t region, size_t period)>;

/// Simulates periods [eval_start, P): each period plans migrations from the
/// predictor's expected loads, applies them, then records the balance
/// difference of the actual loads. Returns one balance value per evaluated
/// period.
StatusOr<std::vector<double>> SimulateMigration(
    const std::vector<ts::Series>& region_loads, size_t servers,
    size_t eval_start, const RegionPredictor& predictor,
    size_t max_moves_per_period);

/// Generates per-region load traces with a rotating hotspot over a shared
/// base pattern: region r's load peaks when the hotspot (which advances
/// `hotspot_speed` regions per period) passes it. The Static strategy lags
/// exactly this rotation, which is what Fig. 9 exercises.
std::vector<ts::Series> MakeRotatingRegionLoads(const ts::Series& base,
                                                size_t regions,
                                                double hotspot_speed,
                                                double hotspot_gain);

}  // namespace dbaugur::migrate

#include "models/arima.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"
#include "ts/series.h"

namespace dbaugur::models {

namespace {

// Fits an AR(m) model by least squares, returning {intercept, a_1..a_m}.
StatusOr<std::vector<double>> FitAR(const std::vector<double>& z, int m) {
  if (static_cast<int>(z.size()) <= m + 1) {
    return Status::InvalidArgument("ARIMA: series too short for AR fit");
  }
  size_t rows = z.size() - static_cast<size_t>(m);
  size_t cols = static_cast<size_t>(m) + 1;
  std::vector<double> x(rows * cols, 0.0);
  std::vector<double> y(rows, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    size_t t = r + static_cast<size_t>(m);
    x[r * cols] = 1.0;
    for (int j = 1; j <= m; ++j) {
      x[r * cols + static_cast<size_t>(j)] = z[t - static_cast<size_t>(j)];
    }
    y[r] = z[t];
  }
  return LeastSquares(x, y, rows, cols, 1e-6);
}

}  // namespace

Status ArimaForecaster::Fit(const std::vector<double>& series) {
  if (arima_.d < 0 || arima_.d > 2) {
    return Status::InvalidArgument("ARIMA: d must be in [0,2]");
  }
  if (arima_.p < 0 || arima_.q < 0 || arima_.p + arima_.q == 0) {
    return Status::InvalidArgument("ARIMA: need p+q > 0");
  }
  std::vector<double> z = ts::Difference(series, arima_.d);
  int m = std::max(20, arima_.p + arima_.q + 5);
  if (static_cast<int>(z.size()) < m + arima_.p + arima_.q + 10) {
    return Status::InvalidArgument("ARIMA: series too short");
  }
  // Stage 1: long AR to estimate innovations.
  auto ar = FitAR(z, m);
  if (!ar.ok()) return ar.status();
  std::vector<double> resid(z.size(), 0.0);
  for (size_t t = static_cast<size_t>(m); t < z.size(); ++t) {
    double pred = (*ar)[0];
    for (int j = 1; j <= m; ++j) {
      pred += (*ar)[static_cast<size_t>(j)] * z[t - static_cast<size_t>(j)];
    }
    resid[t] = z[t] - pred;
  }
  // Stage 2: regress z_t on AR lags and innovation lags.
  int start = m + std::max(arima_.p, arima_.q);
  size_t rows = z.size() - static_cast<size_t>(start);
  size_t cols = 1 + static_cast<size_t>(arima_.p + arima_.q);
  std::vector<double> x(rows * cols, 0.0);
  std::vector<double> y(rows, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    size_t t = r + static_cast<size_t>(start);
    size_t c = 0;
    x[r * cols + c++] = 1.0;
    for (int j = 1; j <= arima_.p; ++j) {
      x[r * cols + c++] = z[t - static_cast<size_t>(j)];
    }
    for (int j = 1; j <= arima_.q; ++j) {
      x[r * cols + c++] = resid[t - static_cast<size_t>(j)];
    }
    y[r] = z[t];
  }
  auto beta = LeastSquares(x, y, rows, cols, 1e-6);
  if (!beta.ok()) return beta.status();
  intercept_ = (*beta)[0];
  phi_.assign(beta->begin() + 1, beta->begin() + 1 + arima_.p);
  theta_.assign(beta->begin() + 1 + arima_.p, beta->end());
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> ArimaForecaster::Predict(
    const std::vector<double>& window) const {
  if (!fitted_) return Status::FailedPrecondition("ARIMA: Fit not called");
  if (window.size() != opts_.window) {
    return Status::InvalidArgument("ARIMA: window size mismatch");
  }
  if (static_cast<int>(window.size()) <= arima_.d + arima_.p + 1) {
    return Status::InvalidArgument("ARIMA: window too short for model order");
  }
  std::vector<double> z = ts::Difference(window, arima_.d);
  size_t n = z.size();
  // Reconstruct in-window innovations by running the one-step equation
  // forward (innovations before the window start are taken as zero).
  std::vector<double> resid(n, 0.0);
  size_t warm = static_cast<size_t>(std::max(arima_.p, arima_.q));
  for (size_t t = warm; t < n; ++t) {
    double pred = intercept_;
    for (int j = 1; j <= arima_.p; ++j) {
      pred += phi_[static_cast<size_t>(j - 1)] * z[t - static_cast<size_t>(j)];
    }
    for (int j = 1; j <= arima_.q; ++j) {
      pred +=
          theta_[static_cast<size_t>(j - 1)] * resid[t - static_cast<size_t>(j)];
    }
    resid[t] = z[t] - pred;
  }
  // Iterate H one-step forecasts with future innovations = 0.
  std::vector<double> zx = z;
  std::vector<double> rx = resid;
  for (size_t h = 0; h < opts_.horizon; ++h) {
    size_t t = zx.size();
    double pred = intercept_;
    for (int j = 1; j <= arima_.p; ++j) {
      pred += phi_[static_cast<size_t>(j - 1)] * zx[t - static_cast<size_t>(j)];
    }
    for (int j = 1; j <= arima_.q; ++j) {
      pred +=
          theta_[static_cast<size_t>(j - 1)] * rx[t - static_cast<size_t>(j)];
    }
    zx.push_back(pred);
    rx.push_back(0.0);
  }
  // Integrate the d differences back to the level scale.
  if (arima_.d == 0) return zx.back();
  if (arima_.d == 1) {
    double level = window.back();
    for (size_t h = z.size(); h < zx.size(); ++h) level += zx[h];
    return level;
  }
  // d == 2: integrate twice.
  double last_diff = window[window.size() - 1] - window[window.size() - 2];
  double level = window.back();
  for (size_t h = z.size(); h < zx.size(); ++h) {
    last_diff += zx[h];
    level += last_diff;
  }
  return level;
}

int64_t ArimaForecaster::StorageBytes() const {
  return static_cast<int64_t>(1 + phi_.size() + theta_.size()) * 4 + 8;
}

}  // namespace dbaugur::models

// ARIMA(p,d,q) fitted with the Hannan–Rissanen two-stage procedure:
//   1. fit a long autoregression to the d-times differenced series to
//      estimate innovations;
//   2. regress each value on p AR lags and q estimated-innovation lags.
// Multi-step forecasts iterate the one-step equation with future innovations
// set to their mean (zero). The paper uses ARIMA(2,1,2).

#pragma once

#include "models/forecaster.h"

namespace dbaugur::models {

/// ARIMA-specific knobs on top of the shared options.
struct ArimaOptions {
  int p = 2;  ///< AR order.
  int d = 1;  ///< Differencing order (0..2 supported).
  int q = 2;  ///< MA order.
};

class ArimaForecaster : public Forecaster {
 public:
  ArimaForecaster(const ForecasterOptions& opts, const ArimaOptions& arima)
      : opts_(opts), arima_(arima) {}
  explicit ArimaForecaster(const ForecasterOptions& opts)
      : ArimaForecaster(opts, ArimaOptions{}) {}

  Status Fit(const std::vector<double>& series) override;
  StatusOr<double> Predict(const std::vector<double>& window) const override;
  std::string name() const override { return "ARIMA"; }
  int64_t StorageBytes() const override;
  int64_t ParameterCount() const override {
    return static_cast<int64_t>(1 + phi_.size() + theta_.size());
  }

  const std::vector<double>& ar_coefficients() const { return phi_; }
  const std::vector<double>& ma_coefficients() const { return theta_; }
  double intercept() const { return intercept_; }

 private:
  ForecasterOptions opts_;
  ArimaOptions arima_;
  double intercept_ = 0.0;
  std::vector<double> phi_;    // AR coefficients, lag 1..p
  std::vector<double> theta_;  // MA coefficients, lag 1..q
  bool fitted_ = false;
};

}  // namespace dbaugur::models

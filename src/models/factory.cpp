#include "models/factory.h"

#include "models/arima.h"
#include "models/kernel_regression.h"
#include "models/linear_regression.h"
#include "models/lstm_forecaster.h"
#include "models/mlp.h"
#include "models/tcn.h"
#include "models/wfgan.h"

namespace dbaugur::models {

StatusOr<std::unique_ptr<Forecaster>> MakeForecaster(
    const std::string& name, const ForecasterOptions& opts) {
  std::unique_ptr<Forecaster> model;
  if (name == "LR") {
    model = std::make_unique<LinearRegressionForecaster>(opts);
  } else if (name == "ARIMA") {
    model = std::make_unique<ArimaForecaster>(opts);
  } else if (name == "KR") {
    model = std::make_unique<KernelRegressionForecaster>(opts);
  } else if (name == "MLP") {
    model = std::make_unique<MlpForecaster>(opts);
  } else if (name == "LSTM") {
    model = std::make_unique<LstmForecaster>(opts);
  } else if (name == "TCN") {
    model = std::make_unique<TcnForecaster>(opts);
  } else if (name == "WFGAN") {
    model = std::make_unique<WfganForecaster>(opts);
  } else {
    return Status::NotFound("unknown model name: " + name);
  }
  return model;
}

const std::vector<std::string>& KnownModelNames() {
  static const std::vector<std::string> kNames = {
      "LR", "ARIMA", "MLP", "LSTM", "TCN", "KR", "WFGAN"};
  return kNames;
}

}  // namespace dbaugur::models

// Name-based model construction used by benches and the core pipeline.

#pragma once

#include <memory>
#include <string>

#include "models/forecaster.h"

namespace dbaugur::models {

/// Builds a forecaster by name: "LR", "ARIMA", "KR", "MLP", "LSTM", "TCN",
/// "WFGAN" (paper default configurations). Returns NotFound for unknown
/// names.
StatusOr<std::unique_ptr<Forecaster>> MakeForecaster(
    const std::string& name, const ForecasterOptions& opts);

/// All model names MakeForecaster accepts, in the paper's baseline order.
const std::vector<std::string>& KnownModelNames();

}  // namespace dbaugur::models

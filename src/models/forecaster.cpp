#include "models/forecaster.h"

#include "common/contracts.h"

namespace dbaugur::models {

StatusOr<EvalResult> EvaluateForecaster(const Forecaster& model,
                                        const std::vector<double>& series,
                                        size_t train_size, size_t window,
                                        size_t horizon) {
  if (window == 0 || horizon == 0) {
    return Status::InvalidArgument("window and horizon must be positive");
  }
  if (train_size + horizon >= series.size() || train_size < window) {
    return Status::InvalidArgument("not enough data to evaluate");
  }
  EvalResult out;
  // First prediction targets index train_size + horizon - 1... we target every
  // index t in [train_size, series.size()) whose window fits.
  for (size_t target = train_size; target < series.size(); ++target) {
    if (target < window - 1 + horizon) continue;
    size_t window_end = target - horizon;  // inclusive index of last input
    size_t window_begin = window_end + 1 - window;
    DBAUGUR_DCHECK_LT(window_end, series.size(),
                      "EvaluateForecaster window exceeds series");
    DBAUGUR_DCHECK_LE(window_begin, window_end,
                      "EvaluateForecaster window inverted");
    std::vector<double> w(series.begin() + static_cast<ptrdiff_t>(window_begin),
                          series.begin() + static_cast<ptrdiff_t>(window_end + 1));
    auto pred = model.Predict(w);
    if (!pred.ok()) return pred.status();
    out.predicted.push_back(*pred);
    out.actual.push_back(series[target]);
    out.target_index.push_back(target);
  }
  if (out.predicted.empty()) {
    return Status::InvalidArgument("no evaluable targets");
  }
  return out;
}

}  // namespace dbaugur::models

// Forecaster interface (paper Def. 4: x̂_{T+H} = F(x_1..x_T)).
//
// Every model is constructed with a condition-window length T and a horizon H
// (in steps of the forecasting interval), fitted on a raw-scale training
// series, and queried with the trailing T raw values. Models scale inputs
// internally and always return raw-scale predictions so MSE is comparable
// across models.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace dbaugur::models {

/// Training/inference element width for models that support it (currently
/// the LSTM and MLP forecasters; other models ignore the option and stay
/// f64). kF32 doubles the SIMD lanes per vector on every dispatch tier at
/// the cost of ~7 decimal digits of precision; weight init draws the same
/// RNG stream at both widths, so an f32 model starts from the rounded
/// weights of its f64 twin.
enum class Precision { kF64, kF32 };

/// Shared hyper-parameters for all forecasting models.
struct ForecasterOptions {
  size_t window = 30;        ///< T — condition window length.
  size_t horizon = 1;        ///< H — steps ahead of the window's end.
  size_t epochs = 50;        ///< Training epochs (neural models).
  size_t batch_size = 32;    ///< Minibatch size (neural models).
  double learning_rate = 1e-3;
  uint64_t seed = 42;        ///< RNG seed for weight init & batch order.
  double grad_clip = 5.0;    ///< Global-norm gradient clip (0 disables).
  Precision precision = Precision::kF64;  ///< Neural training width.
};

/// Abstract single-trace forecaster.
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Trains on the given raw-scale series. Must be called before Predict.
  virtual Status Fit(const std::vector<double>& series) = 0;

  /// Predicts the raw-scale value H steps after the end of `window`
  /// (window.size() must equal the configured T).
  virtual StatusOr<double> Predict(const std::vector<double>& window) const = 0;

  /// Human-readable model name ("LR", "TCN", "WFGAN", ...).
  virtual std::string name() const = 0;

  /// Serialized model size in bytes (Table II's Storage column).
  virtual int64_t StorageBytes() const = 0;

  /// Number of trainable scalar parameters (0 for non-parametric models).
  virtual int64_t ParameterCount() const { return 0; }

  /// Serializes everything Predict depends on (weights in lossless float64
  /// plus scaler state) so a freshly constructed model with the same options
  /// can be restored to produce bit-identical forecasts without retraining.
  /// Default: Unimplemented (non-parametric / classical models).
  virtual StatusOr<std::vector<uint8_t>> SaveState() const {
    return Status::Unimplemented(name() + ": state serialization not supported");
  }

  /// Restores a SaveState blob into a model constructed with the same
  /// options. Rejects corrupt/mismatched blobs with InvalidArgument and
  /// leaves Predict usable afterwards (the model counts as fitted).
  virtual Status LoadState(const std::vector<uint8_t>& /*buffer*/) {
    return Status::Unimplemented(name() + ": state serialization not supported");
  }
};

/// Factory signature used by benches to build fresh models per configuration.
using ForecasterFactory =
    std::unique_ptr<Forecaster> (*)(const ForecasterOptions&);

/// Rolling evaluation: walks the test region of `series` (everything after
/// `train_size`), predicting each reachable target from its trailing window
/// and returning (predictions, actuals) pairs aligned by index.
struct EvalResult {
  std::vector<double> predicted;
  std::vector<double> actual;
  /// Index into `series` of each target.
  std::vector<size_t> target_index;
};

/// Evaluates a fitted forecaster over the tail of `series` starting at
/// `train_size` (windows may reach back into the training region, matching
/// standard rolling-origin evaluation).
StatusOr<EvalResult> EvaluateForecaster(const Forecaster& model,
                                        const std::vector<double>& series,
                                        size_t train_size, size_t window,
                                        size_t horizon);

}  // namespace dbaugur::models

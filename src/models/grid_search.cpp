#include "models/grid_search.h"

#include <algorithm>

#include "models/factory.h"
#include "ts/metrics.h"

namespace dbaugur::models {

namespace {
template <typename T>
std::vector<T> OrDefault(const std::vector<T>& candidates, T fallback) {
  if (candidates.empty()) return {fallback};
  return candidates;
}
}  // namespace

StatusOr<GridSearchResult> GridSearch(
    const std::function<StatusOr<std::unique_ptr<Forecaster>>(
        const ForecasterOptions&)>& factory,
    const std::vector<double>& series, const ForecasterOptions& base,
    const ParameterGrid& grid, const GridSearchOptions& opts) {
  if (!factory) return Status::InvalidArgument("GridSearch: null factory");
  if (opts.validation_fraction <= 0.0 || opts.validation_fraction >= 1.0) {
    return Status::InvalidArgument("GridSearch: bad validation fraction");
  }
  size_t fit_size = static_cast<size_t>(
      static_cast<double>(series.size()) * (1.0 - opts.validation_fraction));
  std::vector<double> fit(series.begin(),
                          series.begin() + static_cast<ptrdiff_t>(fit_size));

  GridSearchResult result;
  for (size_t w : OrDefault(grid.windows, base.window)) {
    for (size_t e : OrDefault(grid.epochs, base.epochs)) {
      for (double lr : OrDefault(grid.learning_rates, base.learning_rate)) {
        for (size_t b : OrDefault(grid.batch_sizes, base.batch_size)) {
          ForecasterOptions cand = base;
          cand.window = w;
          cand.epochs = e;
          cand.learning_rate = lr;
          cand.batch_size = b;
          auto model = factory(cand);
          if (!model.ok()) return model.status();
          Status st = (*model)->Fit(fit);
          if (!st.ok()) {
            // A grid point can be infeasible (e.g. window too large for the
            // fit split); skip it rather than failing the whole search.
            continue;
          }
          auto eval = EvaluateForecaster(**model, series, fit_size, cand.window,
                                         cand.horizon);
          if (!eval.ok()) continue;
          auto mse = ts::MSE(eval->predicted, eval->actual);
          if (!mse.ok()) continue;
          result.evaluated.push_back({cand, *mse});
        }
      }
    }
  }
  if (result.evaluated.empty()) {
    return Status::InvalidArgument("GridSearch: no feasible grid point");
  }
  std::sort(result.evaluated.begin(), result.evaluated.end(),
            [](const GridPoint& a, const GridPoint& b) {
              return a.validation_mse < b.validation_mse;
            });
  result.best = result.evaluated.front().options;
  result.best_mse = result.evaluated.front().validation_mse;
  return result;
}

StatusOr<GridSearchResult> GridSearch(const std::string& model_name,
                                      const std::vector<double>& series,
                                      const ForecasterOptions& base,
                                      const ParameterGrid& grid,
                                      const GridSearchOptions& opts) {
  return GridSearch(
      [&model_name](const ForecasterOptions& o) {
        return MakeForecaster(model_name, o);
      },
      series, base, grid, opts);
}

}  // namespace dbaugur::models

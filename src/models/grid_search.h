// Grid search for forecaster hyper-parameters (paper §VI-A: "The parameters
// of each model are determined by Grid Search"). Splits the training series
// into fit/validation portions, trains one model per grid point, and returns
// the configuration with the lowest validation MSE.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "models/forecaster.h"

namespace dbaugur::models {

/// The grid: candidate values per tunable dimension; empty dimension keeps
/// the base option's value.
struct ParameterGrid {
  std::vector<size_t> windows;
  std::vector<size_t> epochs;
  std::vector<double> learning_rates;
  std::vector<size_t> batch_sizes;
};

/// One evaluated grid point.
struct GridPoint {
  ForecasterOptions options;
  double validation_mse = 0.0;
};

/// Grid-search configuration.
struct GridSearchOptions {
  double validation_fraction = 0.25;  ///< Tail of the series held out.
};

/// Result: the winner plus every evaluated point (sorted by MSE ascending).
struct GridSearchResult {
  ForecasterOptions best;
  double best_mse = 0.0;
  std::vector<GridPoint> evaluated;
};

/// Builds a model per grid point via `factory` (typically MakeForecaster
/// bound to a model name), trains on the head of `series`, and scores
/// one-shot predictions over the validation tail. The horizon/seed of `base`
/// are preserved.
StatusOr<GridSearchResult> GridSearch(
    const std::function<StatusOr<std::unique_ptr<Forecaster>>(
        const ForecasterOptions&)>& factory,
    const std::vector<double>& series, const ForecasterOptions& base,
    const ParameterGrid& grid, const GridSearchOptions& opts = {});

/// Convenience overload for registry models ("LR", "TCN", ...).
StatusOr<GridSearchResult> GridSearch(const std::string& model_name,
                                      const std::vector<double>& series,
                                      const ForecasterOptions& base,
                                      const ParameterGrid& grid,
                                      const GridSearchOptions& opts = {});

}  // namespace dbaugur::models

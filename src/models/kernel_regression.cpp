#include "models/kernel_regression.h"

#include <algorithm>
#include <cmath>

#include "common/binio.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "ts/window_dataset.h"

namespace dbaugur::models {

namespace {
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}
}  // namespace

Status KernelRegressionForecaster::Fit(const std::vector<double>& series) {
  ts::WindowDatasetOptions wopts{opts_.window, opts_.horizon, 1};
  auto samples = ts::MakeWindows(series, wopts);
  if (!samples.ok()) return samples.status();

  windows_.clear();
  targets_.clear();
  if (samples->size() > kr_.max_samples) {
    Rng rng(opts_.seed);
    auto idx = rng.SampleWithoutReplacement(samples->size(), kr_.max_samples);
    std::sort(idx.begin(), idx.end());
    for (size_t i : idx) {
      windows_.push_back((*samples)[i].window);
      targets_.push_back((*samples)[i].target);
    }
  } else {
    for (auto& s : *samples) {
      windows_.push_back(std::move(s.window));
      targets_.push_back(s.target);
    }
  }
  fallback_ = Mean(targets_);

  if (kr_.bandwidth > 0.0) {
    bandwidth_ = kr_.bandwidth;
  } else {
    // Median heuristic over a bounded sample of pairwise distances.
    Rng rng(opts_.seed + 1);
    std::vector<double> dists;
    size_t pairs = std::min<size_t>(500, windows_.size() * 2);
    for (size_t k = 0; k < pairs && windows_.size() >= 2; ++k) {
      size_t i = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(windows_.size()) - 1));
      size_t j = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(windows_.size()) - 1));
      if (i == j) continue;
      dists.push_back(std::sqrt(SquaredDistance(windows_[i], windows_[j])));
    }
    if (dists.empty()) {
      bandwidth_ = 1.0;
    } else {
      std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                       dists.end());
      // A bandwidth equal to the median pairwise distance oversmooths badly
      // (nearly uniform weights => mean prediction); a fifth of the median
      // keeps the kernel local while still averaging across neighbors.
      bandwidth_ = std::max(1e-6, 0.2 * dists[dists.size() / 2]);
    }
  }
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> KernelRegressionForecaster::Predict(
    const std::vector<double>& window) const {
  if (!fitted_) return Status::FailedPrecondition("KR: Fit not called");
  if (window.size() != opts_.window) {
    return Status::InvalidArgument("KR: window size mismatch");
  }
  double inv_2h2 = 1.0 / (2.0 * bandwidth_ * bandwidth_);
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < windows_.size(); ++i) {
    double w = std::exp(-SquaredDistance(window, windows_[i]) * inv_2h2);
    num += w * targets_[i];
    den += w;
  }
  if (den < 1e-300) return fallback_;
  return num / den;
}

int64_t KernelRegressionForecaster::StorageBytes() const {
  // Stores the full sample table: windows plus targets, as float32.
  int64_t per_sample = static_cast<int64_t>(opts_.window + 1) * 4;
  return static_cast<int64_t>(targets_.size()) * per_sample + 16;
}

namespace {
constexpr uint32_t kKrStateMagic = 0xDBA6AA01;
}  // namespace

StatusOr<std::vector<uint8_t>> KernelRegressionForecaster::SaveState() const {
  if (!fitted_) {
    return Status::FailedPrecondition("KR: SaveState before Fit");
  }
  BufWriter w;
  w.U32(kKrStateMagic);
  w.U64(opts_.window);
  w.F64(bandwidth_);
  w.F64(fallback_);
  w.U64(targets_.size());
  for (size_t i = 0; i < targets_.size(); ++i) {
    for (double v : windows_[i]) w.F64(v);
    w.F64(targets_[i]);
  }
  return w.Take();
}

Status KernelRegressionForecaster::LoadState(
    const std::vector<uint8_t>& buffer) {
  BufReader r(buffer);
  auto corrupt = [] {
    return Status::InvalidArgument("KR: truncated or corrupt state buffer");
  };
  uint32_t magic = 0;
  uint64_t window = 0;
  double bandwidth = 0.0;
  double fallback = 0.0;
  uint64_t samples = 0;
  if (!r.U32(&magic)) return corrupt();
  if (magic != kKrStateMagic) {
    return Status::InvalidArgument("KR: bad state magic");
  }
  if (!r.U64(&window) || !r.F64(&bandwidth) || !r.F64(&fallback) ||
      !r.U64(&samples)) {
    return corrupt();
  }
  if (window != opts_.window) {
    return Status::InvalidArgument(
        "KR: state window length does not match model options");
  }
  if (!(bandwidth > 0.0) || !std::isfinite(bandwidth)) {
    return Status::InvalidArgument("KR: state bandwidth not positive finite");
  }
  // A corrupt sample count must fail cleanly, not allocate gigabytes.
  if (samples > r.remaining() / ((window + 1) * 8)) return corrupt();
  // Parse everything before mutating, so a truncated tail leaves the model
  // unchanged and still usable.
  std::vector<std::vector<double>> windows(samples);
  std::vector<double> targets(samples);
  for (uint64_t i = 0; i < samples; ++i) {
    windows[i].resize(window);
    for (double& v : windows[i]) {
      if (!r.F64(&v)) return corrupt();
    }
    if (!r.F64(&targets[i])) return corrupt();
  }
  if (!r.AtEnd()) return corrupt();
  windows_ = std::move(windows);
  targets_ = std::move(targets);
  bandwidth_ = bandwidth;
  fallback_ = fallback;
  fitted_ = true;
  return Status::OK();
}

}  // namespace dbaugur::models

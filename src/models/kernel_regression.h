// Nadaraya–Watson kernel regression (QB5000's "KR" member): the forecast is a
// Gaussian-kernel-weighted average of training targets whose condition
// windows are close to the query window.

#pragma once

#include "models/forecaster.h"

namespace dbaugur::models {

/// KR-specific knobs.
struct KernelRegressionOptions {
  /// Bandwidth; <= 0 selects the median-heuristic bandwidth at fit time.
  double bandwidth = -1.0;
  /// Cap on stored training samples (uniform subsample beyond this).
  size_t max_samples = 2000;
};

class KernelRegressionForecaster : public Forecaster {
 public:
  KernelRegressionForecaster(const ForecasterOptions& opts,
                             const KernelRegressionOptions& kr)
      : opts_(opts), kr_(kr) {}
  explicit KernelRegressionForecaster(const ForecasterOptions& opts)
      : KernelRegressionForecaster(opts, KernelRegressionOptions{}) {}

  Status Fit(const std::vector<double>& series) override;
  StatusOr<double> Predict(const std::vector<double>& window) const override;
  std::string name() const override { return "KR"; }
  int64_t StorageBytes() const override;

  /// Serializes the full sample table + bandwidth in lossless float64, so a
  /// restored KR reproduces its forecasts bit-for-bit. (KR backs the serving
  /// layer's degraded-mode baseline, which must survive snapshot Save/Load.)
  StatusOr<std::vector<uint8_t>> SaveState() const override;
  Status LoadState(const std::vector<uint8_t>& buffer) override;

  double bandwidth() const { return bandwidth_; }
  size_t stored_samples() const { return targets_.size(); }

 private:
  ForecasterOptions opts_;
  KernelRegressionOptions kr_;
  std::vector<std::vector<double>> windows_;
  std::vector<double> targets_;
  double bandwidth_ = 1.0;
  double fallback_ = 0.0;  // mean target, used when all kernel weights vanish
  bool fitted_ = false;
};

}  // namespace dbaugur::models

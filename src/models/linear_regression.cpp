#include "models/linear_regression.h"

#include "common/math_utils.h"
#include "ts/window_dataset.h"

namespace dbaugur::models {

Status LinearRegressionForecaster::Fit(const std::vector<double>& series) {
  ts::WindowDatasetOptions wopts{opts_.window, opts_.horizon, 1};
  auto samples = ts::MakeWindows(series, wopts);
  if (!samples.ok()) return samples.status();
  size_t rows = samples->size();
  size_t cols = opts_.window + 1;  // + bias
  std::vector<double> x(rows * cols, 0.0);
  std::vector<double> y(rows, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    const auto& s = (*samples)[r];
    for (size_t j = 0; j < opts_.window; ++j) x[r * cols + j] = s.window[j];
    x[r * cols + opts_.window] = 1.0;
    y[r] = s.target;
  }
  auto beta = LeastSquares(x, y, rows, cols, /*ridge=*/1e-6);
  if (!beta.ok()) return beta.status();
  coef_ = std::move(beta).value();
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> LinearRegressionForecaster::Predict(
    const std::vector<double>& window) const {
  if (!fitted_) return Status::FailedPrecondition("LR: Fit not called");
  if (window.size() != opts_.window) {
    return Status::InvalidArgument("LR: window size mismatch");
  }
  double y = coef_.back();
  for (size_t j = 0; j < window.size(); ++j) y += coef_[j] * window[j];
  return y;
}

int64_t LinearRegressionForecaster::StorageBytes() const {
  return static_cast<int64_t>(coef_.size()) * 4 + 8;
}

}  // namespace dbaugur::models

// Linear autoregressive baseline (the paper's "LR"): the target H steps ahead
// is a learned linear function of the trailing window (plus bias), fitted by
// ridge-regularized least squares.

#pragma once

#include "models/forecaster.h"

namespace dbaugur::models {

class LinearRegressionForecaster : public Forecaster {
 public:
  explicit LinearRegressionForecaster(const ForecasterOptions& opts)
      : opts_(opts) {}

  Status Fit(const std::vector<double>& series) override;
  StatusOr<double> Predict(const std::vector<double>& window) const override;
  std::string name() const override { return "LR"; }
  int64_t StorageBytes() const override;
  int64_t ParameterCount() const override {
    return static_cast<int64_t>(coef_.size());
  }

  const std::vector<double>& coefficients() const { return coef_; }

 private:
  ForecasterOptions opts_;
  std::vector<double> coef_;  // window weights followed by bias
  bool fitted_ = false;
};

}  // namespace dbaugur::models

#include "models/lstm_forecaster.h"

#include "models/neural_common.h"
#include "nn/loss.h"
#include "nn/serialize.h"

namespace dbaugur::models {

LstmForecaster::LstmForecaster(const ForecasterOptions& opts,
                               const LstmOptions& lstm)
    : opts_(opts),
      lstm_opts_(lstm),
      rng_(opts.seed),
      lstm_(1, lstm.hidden, &rng_),
      head_(lstm.hidden, 1, nn::Activation::kIdentity, &rng_),
      adam_(opts.learning_rate) {}

Status LstmForecaster::PrepareTraining(const std::vector<double>& series) {
  auto ds = BuildScaledDataset(series, opts_);
  if (!ds.ok()) return ds.status();
  scaler_ = ds->scaler;
  train_samples_ = std::move(ds->samples);
  return Status::OK();
}

Status LstmForecaster::TrainEpoch() {
  if (train_samples_.empty()) {
    return Status::FailedPrecondition("LSTM: PrepareTraining not called");
  }
  std::vector<size_t> order = rng_.Permutation(train_samples_.size());
  std::vector<nn::Param> params = Params();
  for (size_t begin = 0; begin < order.size(); begin += opts_.batch_size) {
    size_t count = std::min(opts_.batch_size, order.size() - begin);
    BatchWindowsInto(train_samples_, order, begin, count, &xb_);
    BatchTargetsInto(train_samples_, order, begin, count, &y_);
    ToTimeMajorInto(xb_, &xs_);
    const std::vector<nn::Matrix>& hs = lstm_.ForwardSequence(xs_);
    const nn::Matrix& pred = head_.Forward(hs.back());
    nn::MSELoss(pred, y_, &grad_);
    for (auto& p : params) p.grad->Fill(0.0);
    const nn::Matrix& dh_last = head_.Backward(grad_);
    grad_hs_.resize(hs.size());
    for (size_t t = 0; t + 1 < grad_hs_.size(); ++t) {
      grad_hs_[t].Resize(count, lstm_opts_.hidden);
      grad_hs_[t].Fill(0.0);
    }
    grad_hs_.back() = dh_last;
    lstm_.BackwardSequence(grad_hs_);
    nn::ClipGradNorm(params, opts_.grad_clip);
    adam_.Step(params);
  }
  return Status::OK();
}

std::vector<nn::Param> LstmForecaster::Params() const {
  std::vector<nn::Param> params = lstm_.Params();
  for (auto& p : head_.Params()) params.push_back(p);
  return params;
}

Status LstmForecaster::Fit(const std::vector<double>& series) {
  DBAUGUR_RETURN_IF_ERROR(PrepareTraining(series));
  for (size_t e = 0; e < opts_.epochs; ++e) {
    DBAUGUR_RETURN_IF_ERROR(TrainEpoch());
  }
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> LstmForecaster::Predict(
    const std::vector<double>& window) const {
  if (!fitted_) return Status::FailedPrecondition("LSTM: Fit not called");
  if (window.size() != opts_.window) {
    return Status::InvalidArgument("LSTM: window size mismatch");
  }
  std::vector<nn::Matrix> xs(window.size(), nn::Matrix(1, 1));
  for (size_t t = 0; t < window.size(); ++t) {
    xs[t](0, 0) = scaler_.Transform(window[t]);
  }
  const std::vector<nn::Matrix>& hs = lstm_.ForwardSequence(xs);
  const nn::Matrix& pred = head_.Forward(hs.back());
  return scaler_.Inverse(pred(0, 0));
}

StatusOr<std::vector<uint8_t>> LstmForecaster::SaveState() const {
  return SerializeNeuralState({&scaler_}, Params());
}

Status LstmForecaster::LoadState(const std::vector<uint8_t>& buffer) {
  DBAUGUR_RETURN_IF_ERROR(DeserializeNeuralState(buffer, {&scaler_}, Params()));
  fitted_ = true;
  return Status::OK();
}

int64_t LstmForecaster::StorageBytes() const {
  return nn::StorageBytes(Params());
}

int64_t LstmForecaster::ParameterCount() const {
  int64_t n = 0;
  for (auto& p : lstm_.Params()) n += static_cast<int64_t>(p.value->size());
  n += head_.ParameterCount();
  return n;
}

}  // namespace dbaugur::models

#include "models/lstm_forecaster.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "models/neural_common.h"
#include "nn/loss.h"
#include "nn/serialize.h"

namespace dbaugur::models {

// Layer graph, optimizer state, and reusable batch workspaces at width T.
// Construction draws the same RNG stream at both widths (init.h casts after
// drawing), so an f32 core starts from the rounded weights of its f64 twin.
template <typename T>
struct LstmForecaster::Core {
  nn::LSTMT<T> lstm;
  nn::DenseT<T> head;
  nn::AdamT<T> adam;
  nn::MatrixT<T> xb, y, grad;
  std::vector<nn::MatrixT<T>> xs, grad_hs;

  Core(size_t hidden, Rng* rng, double lr)
      : lstm(1, hidden, rng),
        head(hidden, 1, nn::Activation::kIdentity, rng),
        adam(lr) {}

  std::vector<nn::ParamT<T>> AllParams() {
    std::vector<nn::ParamT<T>> params = lstm.Params();
    for (auto& p : head.Params()) params.push_back(p);
    return params;
  }
};

namespace {

template <typename T, typename CoreT>
Status TrainEpochWith(CoreT& c, const ForecasterOptions& opts, size_t hidden,
                      const std::vector<ts::WindowSample>& samples, Rng* rng) {
  std::vector<size_t> order = rng->Permutation(samples.size());
  std::vector<nn::ParamT<T>> params = c.AllParams();
  for (size_t begin = 0; begin < order.size(); begin += opts.batch_size) {
    size_t count = std::min(opts.batch_size, order.size() - begin);
    BatchWindowsInto(samples, order, begin, count, &c.xb);
    BatchTargetsInto(samples, order, begin, count, &c.y);
    ToTimeMajorInto(c.xb, &c.xs);
    const std::vector<nn::MatrixT<T>>& hs = c.lstm.ForwardSequence(c.xs);
    const nn::MatrixT<T>& pred = c.head.Forward(hs.back());
    nn::MSELoss(pred, c.y, &c.grad);
    for (auto& p : params) p.grad->Fill(T(0));
    const nn::MatrixT<T>& dh_last = c.head.Backward(c.grad);
    c.grad_hs.resize(hs.size());
    for (size_t t = 0; t + 1 < c.grad_hs.size(); ++t) {
      c.grad_hs[t].Resize(count, hidden);
      c.grad_hs[t].Fill(T(0));
    }
    c.grad_hs.back() = dh_last;
    c.lstm.BackwardSequence(c.grad_hs);
    nn::ClipGradNorm(params, opts.grad_clip);
    c.adam.Step(params);
  }
  return Status::OK();
}

template <typename T, typename CoreT>
double PredictWith(CoreT& c, const ts::MinMaxScaler& scaler,
                   const std::vector<double>& window) {
  std::vector<nn::MatrixT<T>> xs(window.size(), nn::MatrixT<T>(1, 1));
  for (size_t t = 0; t < window.size(); ++t) {
    xs[t](0, 0) = static_cast<T>(scaler.Transform(window[t]));
  }
  const std::vector<nn::MatrixT<T>>& hs = c.lstm.ForwardSequence(xs);
  const nn::MatrixT<T>& pred = c.head.Forward(hs.back());
  return scaler.Inverse(static_cast<double>(pred(0, 0)));
}

}  // namespace

LstmForecaster::LstmForecaster(const ForecasterOptions& opts,
                               const LstmOptions& lstm)
    : opts_(opts), lstm_opts_(lstm), rng_(opts.seed) {
  if (opts.precision == Precision::kF32) {
    core32_ = std::make_unique<Core<float>>(lstm.hidden, &rng_,
                                            opts.learning_rate);
  } else {
    core64_ = std::make_unique<Core<double>>(lstm.hidden, &rng_,
                                             opts.learning_rate);
  }
}

LstmForecaster::~LstmForecaster() = default;

Status LstmForecaster::PrepareTraining(const std::vector<double>& series) {
  auto ds = BuildScaledDataset(series, opts_);
  if (!ds.ok()) return ds.status();
  scaler_ = ds->scaler;
  train_samples_ = std::move(ds->samples);
  return Status::OK();
}

Status LstmForecaster::TrainEpoch() {
  if (train_samples_.empty()) {
    return Status::FailedPrecondition("LSTM: PrepareTraining not called");
  }
  if (core32_ != nullptr) {
    return TrainEpochWith<float>(*core32_, opts_, lstm_opts_.hidden,
                                 train_samples_, &rng_);
  }
  return TrainEpochWith<double>(*core64_, opts_, lstm_opts_.hidden,
                                train_samples_, &rng_);
}

std::vector<nn::Param> LstmForecaster::Params() const {
  DBAUGUR_CHECK(core64_ != nullptr,
                "LSTM::Params requires Precision::kF64 (use ParamsF)");
  return core64_->AllParams();
}

std::vector<nn::ParamF> LstmForecaster::ParamsF() const {
  DBAUGUR_CHECK(core32_ != nullptr,
                "LSTM::ParamsF requires Precision::kF32 (use Params)");
  return core32_->AllParams();
}

Status LstmForecaster::Fit(const std::vector<double>& series) {
  DBAUGUR_RETURN_IF_ERROR(PrepareTraining(series));
  for (size_t e = 0; e < opts_.epochs; ++e) {
    DBAUGUR_RETURN_IF_ERROR(TrainEpoch());
  }
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> LstmForecaster::Predict(
    const std::vector<double>& window) const {
  if (!fitted_) return Status::FailedPrecondition("LSTM: Fit not called");
  if (window.size() != opts_.window) {
    return Status::InvalidArgument("LSTM: window size mismatch");
  }
  if (core32_ != nullptr) {
    return PredictWith<float>(*core32_, scaler_, window);
  }
  return PredictWith<double>(*core64_, scaler_, window);
}

StatusOr<std::vector<uint8_t>> LstmForecaster::SaveState() const {
  if (core32_ != nullptr) return SerializeNeuralState({&scaler_}, ParamsF());
  return SerializeNeuralState({&scaler_}, Params());
}

Status LstmForecaster::LoadState(const std::vector<uint8_t>& buffer) {
  if (core32_ != nullptr) {
    DBAUGUR_RETURN_IF_ERROR(
        DeserializeNeuralState(buffer, {&scaler_}, ParamsF()));
  } else {
    DBAUGUR_RETURN_IF_ERROR(
        DeserializeNeuralState(buffer, {&scaler_}, Params()));
  }
  fitted_ = true;
  return Status::OK();
}

int64_t LstmForecaster::StorageBytes() const {
  if (core32_ != nullptr) return nn::StorageBytes(ParamsF());
  return nn::StorageBytes(Params());
}

int64_t LstmForecaster::ParameterCount() const {
  int64_t n = 0;
  if (core32_ != nullptr) {
    for (auto& p : core32_->AllParams()) {
      n += static_cast<int64_t>(p.value->size());
    }
  } else {
    for (auto& p : core64_->AllParams()) {
      n += static_cast<int64_t>(p.value->size());
    }
  }
  return n;
}

}  // namespace dbaugur::models

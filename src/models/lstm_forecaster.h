// LSTM forecaster baseline (paper setup: input length 30, hidden/output
// dimension 16, dense head producing the final value).
//
// Supports both training precisions (ForecasterOptions::precision): the
// model owns exactly one Core<double> or Core<float> — same layer graph,
// optimizer, and batch schedule, instantiated at the chosen element width.
// The f32 core doubles the SIMD lanes per vector on every dispatch tier.

#pragma once

#include <memory>

#include "common/rng.h"
#include "models/forecaster.h"
#include "nn/dense.h"
#include "nn/lstm.h"
#include "nn/optimizer.h"
#include "ts/scaler.h"
#include "ts/window_dataset.h"

namespace dbaugur::models {

/// LSTM-specific sizes.
struct LstmOptions {
  size_t hidden = 16;
};

class LstmForecaster : public Forecaster {
 public:
  LstmForecaster(const ForecasterOptions& opts, const LstmOptions& lstm);
  explicit LstmForecaster(const ForecasterOptions& opts)
      : LstmForecaster(opts, LstmOptions{}) {}
  ~LstmForecaster() override;

  Status Fit(const std::vector<double>& series) override;
  StatusOr<double> Predict(const std::vector<double>& window) const override;
  std::string name() const override { return "LSTM"; }
  int64_t StorageBytes() const override;
  int64_t ParameterCount() const override;

  Status PrepareTraining(const std::vector<double>& series);
  Status TrainEpoch();

  /// Parameter tensors in layer order (lstm, head) — used by serialization.
  /// Params() requires Precision::kF64, ParamsF() requires Precision::kF32
  /// (checked).
  std::vector<nn::Param> Params() const;
  std::vector<nn::ParamF> ParamsF() const;

  /// Lossless snapshot of weights + scaler (serve/ system snapshots) at
  /// either precision — the float64 wire form is exact for both widths.
  StatusOr<std::vector<uint8_t>> SaveState() const override;
  Status LoadState(const std::vector<uint8_t>& buffer) override;

 private:
  template <typename T>
  struct Core;  // layers + optimizer + batch workspaces at width T

  ForecasterOptions opts_;
  LstmOptions lstm_opts_;
  mutable Rng rng_;
  // Exactly one of the two cores is non-null, per opts_.precision.
  std::unique_ptr<Core<double>> core64_;
  std::unique_ptr<Core<float>> core32_;
  ts::MinMaxScaler scaler_;
  std::vector<ts::WindowSample> train_samples_;
  bool fitted_ = false;
};

}  // namespace dbaugur::models

// LSTM forecaster baseline (paper setup: input length 30, hidden/output
// dimension 16, dense head producing the final value).

#pragma once

#include "common/rng.h"
#include "models/forecaster.h"
#include "nn/dense.h"
#include "nn/lstm.h"
#include "nn/optimizer.h"
#include "ts/scaler.h"
#include "ts/window_dataset.h"

namespace dbaugur::models {

/// LSTM-specific sizes.
struct LstmOptions {
  size_t hidden = 16;
};

class LstmForecaster : public Forecaster {
 public:
  LstmForecaster(const ForecasterOptions& opts, const LstmOptions& lstm);
  explicit LstmForecaster(const ForecasterOptions& opts)
      : LstmForecaster(opts, LstmOptions{}) {}

  Status Fit(const std::vector<double>& series) override;
  StatusOr<double> Predict(const std::vector<double>& window) const override;
  std::string name() const override { return "LSTM"; }
  int64_t StorageBytes() const override;
  int64_t ParameterCount() const override;

  Status PrepareTraining(const std::vector<double>& series);
  Status TrainEpoch();

  /// Parameter tensors in layer order (lstm, head) — used by serialization.
  std::vector<nn::Param> Params() const;

  /// Lossless snapshot of weights + scaler (serve/ system snapshots).
  StatusOr<std::vector<uint8_t>> SaveState() const override;
  Status LoadState(const std::vector<uint8_t>& buffer) override;

 private:
  ForecasterOptions opts_;
  LstmOptions lstm_opts_;
  mutable Rng rng_;
  mutable nn::LSTM lstm_;
  mutable nn::Dense head_;
  nn::Adam adam_;
  ts::MinMaxScaler scaler_;
  std::vector<ts::WindowSample> train_samples_;
  // Batch workspaces reused across batches.
  nn::Matrix xb_, y_, grad_;
  std::vector<nn::Matrix> xs_, grad_hs_;
  bool fitted_ = false;
};

}  // namespace dbaugur::models

#include "models/mlp.h"

#include "models/neural_common.h"
#include "nn/loss.h"
#include "nn/serialize.h"

namespace dbaugur::models {

MlpForecaster::MlpForecaster(const ForecasterOptions& opts,
                             const MlpOptions& mlp)
    : opts_(opts),
      mlp_(mlp),
      rng_(opts.seed),
      l1_(opts.window, mlp.hidden1, nn::Activation::kRelu, &rng_),
      l2_(mlp.hidden1, mlp.hidden2, nn::Activation::kRelu, &rng_),
      l3_(mlp.hidden2, 1, nn::Activation::kIdentity, &rng_),
      adam_(opts.learning_rate) {}

Status MlpForecaster::PrepareTraining(const std::vector<double>& series) {
  auto ds = BuildScaledDataset(series, opts_);
  if (!ds.ok()) return ds.status();
  scaler_ = ds->scaler;
  train_samples_ = std::move(ds->samples);
  return Status::OK();
}

Status MlpForecaster::TrainEpoch() {
  if (train_samples_.empty()) {
    return Status::FailedPrecondition("MLP: PrepareTraining not called");
  }
  std::vector<size_t> order = rng_.Permutation(train_samples_.size());
  std::vector<nn::Param> params = Params();
  for (size_t begin = 0; begin < order.size(); begin += opts_.batch_size) {
    size_t count = std::min(opts_.batch_size, order.size() - begin);
    BatchWindowsInto(train_samples_, order, begin, count, &x_);
    BatchTargetsInto(train_samples_, order, begin, count, &y_);
    const nn::Matrix& pred = l3_.Forward(l2_.Forward(l1_.Forward(x_)));
    nn::MSELoss(pred, y_, &grad_);
    for (auto& p : params) p.grad->Fill(0.0);
    l1_.Backward(l2_.Backward(l3_.Backward(grad_)));
    nn::ClipGradNorm(params, opts_.grad_clip);
    adam_.Step(params);
  }
  return Status::OK();
}

std::vector<nn::Param> MlpForecaster::Params() const {
  std::vector<nn::Param> params = l1_.Params();
  for (auto& p : l2_.Params()) params.push_back(p);
  for (auto& p : l3_.Params()) params.push_back(p);
  return params;
}

Status MlpForecaster::Fit(const std::vector<double>& series) {
  DBAUGUR_RETURN_IF_ERROR(PrepareTraining(series));
  for (size_t e = 0; e < opts_.epochs; ++e) {
    DBAUGUR_RETURN_IF_ERROR(TrainEpoch());
  }
  fitted_ = true;
  return Status::OK();
}

const nn::Matrix& MlpForecaster::ForwardBatch(const nn::Matrix& x) const {
  return l3_.Forward(l2_.Forward(l1_.Forward(x)));
}

StatusOr<double> MlpForecaster::Predict(
    const std::vector<double>& window) const {
  if (!fitted_) return Status::FailedPrecondition("MLP: Fit not called");
  if (window.size() != opts_.window) {
    return Status::InvalidArgument("MLP: window size mismatch");
  }
  nn::Matrix x(1, opts_.window);
  for (size_t j = 0; j < window.size(); ++j) {
    x(0, j) = scaler_.Transform(window[j]);
  }
  const nn::Matrix& pred = ForwardBatch(x);
  return scaler_.Inverse(pred(0, 0));
}

StatusOr<std::vector<uint8_t>> MlpForecaster::SaveState() const {
  return SerializeNeuralState({&scaler_}, Params());
}

Status MlpForecaster::LoadState(const std::vector<uint8_t>& buffer) {
  DBAUGUR_RETURN_IF_ERROR(DeserializeNeuralState(buffer, {&scaler_}, Params()));
  fitted_ = true;
  return Status::OK();
}

int64_t MlpForecaster::StorageBytes() const {
  return nn::StorageBytes(Params());
}

int64_t MlpForecaster::ParameterCount() const {
  return l1_.ParameterCount() + l2_.ParameterCount() + l3_.ParameterCount();
}

}  // namespace dbaugur::models

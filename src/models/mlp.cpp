#include "models/mlp.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "models/neural_common.h"
#include "nn/loss.h"
#include "nn/serialize.h"

namespace dbaugur::models {

// Layer graph, optimizer state, and reusable batch workspaces at width T
// (same RNG-stream weight init at both widths; see lstm_forecaster.cpp).
template <typename T>
struct MlpForecaster::Core {
  nn::DenseT<T> l1, l2, l3;
  nn::AdamT<T> adam;
  nn::MatrixT<T> x, y, grad;

  Core(const ForecasterOptions& opts, const MlpOptions& mlp, Rng* rng)
      : l1(opts.window, mlp.hidden1, nn::Activation::kRelu, rng),
        l2(mlp.hidden1, mlp.hidden2, nn::Activation::kRelu, rng),
        l3(mlp.hidden2, 1, nn::Activation::kIdentity, rng),
        adam(opts.learning_rate) {}

  std::vector<nn::ParamT<T>> AllParams() {
    std::vector<nn::ParamT<T>> params = l1.Params();
    for (auto& p : l2.Params()) params.push_back(p);
    for (auto& p : l3.Params()) params.push_back(p);
    return params;
  }

  const nn::MatrixT<T>& ForwardBatch(const nn::MatrixT<T>& in) {
    return l3.Forward(l2.Forward(l1.Forward(in)));
  }
};

namespace {

template <typename T, typename CoreT>
Status TrainEpochWith(CoreT& c, const ForecasterOptions& opts,
                      const std::vector<ts::WindowSample>& samples, Rng* rng) {
  std::vector<size_t> order = rng->Permutation(samples.size());
  std::vector<nn::ParamT<T>> params = c.AllParams();
  for (size_t begin = 0; begin < order.size(); begin += opts.batch_size) {
    size_t count = std::min(opts.batch_size, order.size() - begin);
    BatchWindowsInto(samples, order, begin, count, &c.x);
    BatchTargetsInto(samples, order, begin, count, &c.y);
    const nn::MatrixT<T>& pred = c.ForwardBatch(c.x);
    nn::MSELoss(pred, c.y, &c.grad);
    for (auto& p : params) p.grad->Fill(T(0));
    c.l1.Backward(c.l2.Backward(c.l3.Backward(c.grad)));
    nn::ClipGradNorm(params, opts.grad_clip);
    c.adam.Step(params);
  }
  return Status::OK();
}

template <typename T, typename CoreT>
double PredictWith(CoreT& c, const ts::MinMaxScaler& scaler,
                   const std::vector<double>& window) {
  nn::MatrixT<T> x(1, window.size());
  for (size_t j = 0; j < window.size(); ++j) {
    x(0, j) = static_cast<T>(scaler.Transform(window[j]));
  }
  const nn::MatrixT<T>& pred = c.ForwardBatch(x);
  return scaler.Inverse(static_cast<double>(pred(0, 0)));
}

}  // namespace

MlpForecaster::MlpForecaster(const ForecasterOptions& opts,
                             const MlpOptions& mlp)
    : opts_(opts), mlp_(mlp), rng_(opts.seed) {
  if (opts.precision == Precision::kF32) {
    core32_ = std::make_unique<Core<float>>(opts, mlp, &rng_);
  } else {
    core64_ = std::make_unique<Core<double>>(opts, mlp, &rng_);
  }
}

MlpForecaster::~MlpForecaster() = default;

Status MlpForecaster::PrepareTraining(const std::vector<double>& series) {
  auto ds = BuildScaledDataset(series, opts_);
  if (!ds.ok()) return ds.status();
  scaler_ = ds->scaler;
  train_samples_ = std::move(ds->samples);
  return Status::OK();
}

Status MlpForecaster::TrainEpoch() {
  if (train_samples_.empty()) {
    return Status::FailedPrecondition("MLP: PrepareTraining not called");
  }
  if (core32_ != nullptr) {
    return TrainEpochWith<float>(*core32_, opts_, train_samples_, &rng_);
  }
  return TrainEpochWith<double>(*core64_, opts_, train_samples_, &rng_);
}

std::vector<nn::Param> MlpForecaster::Params() const {
  DBAUGUR_CHECK(core64_ != nullptr,
                "MLP::Params requires Precision::kF64 (use ParamsF)");
  return core64_->AllParams();
}

std::vector<nn::ParamF> MlpForecaster::ParamsF() const {
  DBAUGUR_CHECK(core32_ != nullptr,
                "MLP::ParamsF requires Precision::kF32 (use Params)");
  return core32_->AllParams();
}

Status MlpForecaster::Fit(const std::vector<double>& series) {
  DBAUGUR_RETURN_IF_ERROR(PrepareTraining(series));
  for (size_t e = 0; e < opts_.epochs; ++e) {
    DBAUGUR_RETURN_IF_ERROR(TrainEpoch());
  }
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> MlpForecaster::Predict(
    const std::vector<double>& window) const {
  if (!fitted_) return Status::FailedPrecondition("MLP: Fit not called");
  if (window.size() != opts_.window) {
    return Status::InvalidArgument("MLP: window size mismatch");
  }
  if (core32_ != nullptr) {
    return PredictWith<float>(*core32_, scaler_, window);
  }
  return PredictWith<double>(*core64_, scaler_, window);
}

StatusOr<std::vector<uint8_t>> MlpForecaster::SaveState() const {
  if (core32_ != nullptr) return SerializeNeuralState({&scaler_}, ParamsF());
  return SerializeNeuralState({&scaler_}, Params());
}

Status MlpForecaster::LoadState(const std::vector<uint8_t>& buffer) {
  if (core32_ != nullptr) {
    DBAUGUR_RETURN_IF_ERROR(
        DeserializeNeuralState(buffer, {&scaler_}, ParamsF()));
  } else {
    DBAUGUR_RETURN_IF_ERROR(
        DeserializeNeuralState(buffer, {&scaler_}, Params()));
  }
  fitted_ = true;
  return Status::OK();
}

int64_t MlpForecaster::StorageBytes() const {
  if (core32_ != nullptr) return nn::StorageBytes(ParamsF());
  return nn::StorageBytes(Params());
}

int64_t MlpForecaster::ParameterCount() const {
  int64_t n = 0;
  if (core32_ != nullptr) {
    for (auto& p : core32_->AllParams()) {
      n += static_cast<int64_t>(p.value->size());
    }
  } else {
    for (auto& p : core64_->AllParams()) {
      n += static_cast<int64_t>(p.value->size());
    }
  }
  return n;
}

}  // namespace dbaugur::models

// MLP forecaster (the paper's short-term "local view" model): two hidden
// layers of 32 and 16 ReLU units over the raw condition window.

#pragma once

#include <memory>

#include "common/rng.h"
#include "models/forecaster.h"
#include "nn/dense.h"
#include "nn/optimizer.h"
#include "ts/scaler.h"
#include "ts/window_dataset.h"

namespace dbaugur::models {

/// MLP-specific sizes (paper: 32 and 16 units).
struct MlpOptions {
  size_t hidden1 = 32;
  size_t hidden2 = 16;
};

class MlpForecaster : public Forecaster {
 public:
  MlpForecaster(const ForecasterOptions& opts, const MlpOptions& mlp);
  explicit MlpForecaster(const ForecasterOptions& opts)
      : MlpForecaster(opts, MlpOptions{}) {}

  Status Fit(const std::vector<double>& series) override;
  StatusOr<double> Predict(const std::vector<double>& window) const override;
  std::string name() const override { return "MLP"; }
  int64_t StorageBytes() const override;
  int64_t ParameterCount() const override;

  /// Runs exactly one training epoch (used by Table II timing); Fit must have
  /// prepared the dataset via PrepareTraining or a prior Fit call.
  Status PrepareTraining(const std::vector<double>& series);
  Status TrainEpoch();

  /// Parameter tensors in layer order (l1, l2, l3) — used by serialization.
  std::vector<nn::Param> Params() const;

  /// Lossless snapshot of weights + scaler (serve/ system snapshots).
  StatusOr<std::vector<uint8_t>> SaveState() const override;
  Status LoadState(const std::vector<uint8_t>& buffer) override;

 private:
  const nn::Matrix& ForwardBatch(const nn::Matrix& x) const;

  ForecasterOptions opts_;
  MlpOptions mlp_;
  mutable Rng rng_;
  mutable nn::Dense l1_, l2_, l3_;
  nn::Adam adam_;
  ts::MinMaxScaler scaler_;
  std::vector<ts::WindowSample> train_samples_;
  nn::Matrix x_, y_, grad_;  // batch workspaces reused across batches
  bool fitted_ = false;
};

}  // namespace dbaugur::models

// MLP forecaster (the paper's short-term "local view" model): two hidden
// layers of 32 and 16 ReLU units over the raw condition window.
//
// Supports both training precisions (ForecasterOptions::precision) via one
// Core<double> or Core<float> — see lstm_forecaster.h for the pattern.

#pragma once

#include <memory>

#include "common/rng.h"
#include "models/forecaster.h"
#include "nn/dense.h"
#include "nn/optimizer.h"
#include "ts/scaler.h"
#include "ts/window_dataset.h"

namespace dbaugur::models {

/// MLP-specific sizes (paper: 32 and 16 units).
struct MlpOptions {
  size_t hidden1 = 32;
  size_t hidden2 = 16;
};

class MlpForecaster : public Forecaster {
 public:
  MlpForecaster(const ForecasterOptions& opts, const MlpOptions& mlp);
  explicit MlpForecaster(const ForecasterOptions& opts)
      : MlpForecaster(opts, MlpOptions{}) {}
  ~MlpForecaster() override;

  Status Fit(const std::vector<double>& series) override;
  StatusOr<double> Predict(const std::vector<double>& window) const override;
  std::string name() const override { return "MLP"; }
  int64_t StorageBytes() const override;
  int64_t ParameterCount() const override;

  /// Runs exactly one training epoch (used by Table II timing); Fit must have
  /// prepared the dataset via PrepareTraining or a prior Fit call.
  Status PrepareTraining(const std::vector<double>& series);
  Status TrainEpoch();

  /// Parameter tensors in layer order (l1, l2, l3) — used by serialization.
  /// Params() requires Precision::kF64, ParamsF() requires Precision::kF32
  /// (checked).
  std::vector<nn::Param> Params() const;
  std::vector<nn::ParamF> ParamsF() const;

  /// Lossless snapshot of weights + scaler (serve/ system snapshots) at
  /// either precision.
  StatusOr<std::vector<uint8_t>> SaveState() const override;
  Status LoadState(const std::vector<uint8_t>& buffer) override;

 private:
  template <typename T>
  struct Core;  // layers + optimizer + batch workspaces at width T

  ForecasterOptions opts_;
  MlpOptions mlp_;
  mutable Rng rng_;
  // Exactly one of the two cores is non-null, per opts_.precision.
  std::unique_ptr<Core<double>> core64_;
  std::unique_ptr<Core<float>> core32_;
  ts::MinMaxScaler scaler_;
  std::vector<ts::WindowSample> train_samples_;
  bool fitted_ = false;
};

}  // namespace dbaugur::models

#include "models/neural_common.h"

namespace dbaugur::models {

StatusOr<ScaledDataset> BuildScaledDataset(const std::vector<double>& series,
                                           const ForecasterOptions& opts) {
  ScaledDataset out;
  DBAUGUR_RETURN_IF_ERROR(out.scaler.Fit(series));
  std::vector<double> scaled = out.scaler.Transform(series);
  ts::WindowDatasetOptions wopts{opts.window, opts.horizon, 1};
  auto samples = ts::MakeWindows(scaled, wopts);
  if (!samples.ok()) return samples.status();
  out.samples = std::move(samples).value();
  return out;
}

nn::Matrix BatchWindows(const std::vector<ts::WindowSample>& samples,
                        const std::vector<size_t>& idx, size_t begin,
                        size_t count) {
  size_t t = samples.empty() ? 0 : samples[0].window.size();
  nn::Matrix m(count, t);
  for (size_t r = 0; r < count; ++r) {
    const auto& w = samples[idx[begin + r]].window;
    for (size_t j = 0; j < t; ++j) m(r, j) = w[j];
  }
  return m;
}

nn::Matrix BatchTargets(const std::vector<ts::WindowSample>& samples,
                        const std::vector<size_t>& idx, size_t begin,
                        size_t count) {
  nn::Matrix m(count, 1);
  for (size_t r = 0; r < count; ++r) {
    m(r, 0) = samples[idx[begin + r]].target;
  }
  return m;
}

std::vector<nn::Matrix> ToTimeMajor(const nn::Matrix& batch) {
  std::vector<nn::Matrix> xs(batch.cols(), nn::Matrix(batch.rows(), 1));
  for (size_t t = 0; t < batch.cols(); ++t) {
    for (size_t r = 0; r < batch.rows(); ++r) xs[t](r, 0) = batch(r, t);
  }
  return xs;
}

nn::Tensor3 ToTensor3(const nn::Matrix& batch) {
  nn::Tensor3 t(batch.rows(), 1, batch.cols());
  for (size_t r = 0; r < batch.rows(); ++r) {
    double* lane = t.lane(r, 0);
    for (size_t j = 0; j < batch.cols(); ++j) lane[j] = batch(r, j);
  }
  return t;
}

}  // namespace dbaugur::models

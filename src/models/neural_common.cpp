#include "models/neural_common.h"

#include <utility>

#include "common/binio.h"
#include "nn/serialize.h"

namespace dbaugur::models {

StatusOr<ScaledDataset> BuildScaledDataset(const std::vector<double>& series,
                                           const ForecasterOptions& opts) {
  ScaledDataset out;
  DBAUGUR_RETURN_IF_ERROR(out.scaler.Fit(series));
  std::vector<double> scaled = out.scaler.Transform(series);
  ts::WindowDatasetOptions wopts{opts.window, opts.horizon, 1};
  auto samples = ts::MakeWindows(scaled, wopts);
  if (!samples.ok()) return samples.status();
  out.samples = std::move(samples).value();
  return out;
}

nn::Matrix BatchWindows(const std::vector<ts::WindowSample>& samples,
                        const std::vector<size_t>& idx, size_t begin,
                        size_t count) {
  nn::Matrix m;
  BatchWindowsInto(samples, idx, begin, count, &m);
  return m;
}

nn::Matrix BatchTargets(const std::vector<ts::WindowSample>& samples,
                        const std::vector<size_t>& idx, size_t begin,
                        size_t count) {
  nn::Matrix m;
  BatchTargetsInto(samples, idx, begin, count, &m);
  return m;
}

namespace {

template <typename T>
void BatchWindowsIntoImpl(const std::vector<ts::WindowSample>& samples,
                          const std::vector<size_t>& idx, size_t begin,
                          size_t count, nn::MatrixT<T>* out) {
  size_t t = samples.empty() ? 0 : samples[0].window.size();
  out->Resize(count, t);
  for (size_t r = 0; r < count; ++r) {
    const auto& w = samples[idx[begin + r]].window;
    T* row = out->row(r);
    for (size_t j = 0; j < t; ++j) row[j] = static_cast<T>(w[j]);
  }
}

template <typename T>
void BatchTargetsIntoImpl(const std::vector<ts::WindowSample>& samples,
                          const std::vector<size_t>& idx, size_t begin,
                          size_t count, nn::MatrixT<T>* out) {
  out->Resize(count, 1);
  for (size_t r = 0; r < count; ++r) {
    (*out)(r, 0) = static_cast<T>(samples[idx[begin + r]].target);
  }
}

template <typename T>
void ToTimeMajorIntoImpl(const nn::MatrixT<T>& batch,
                         std::vector<nn::MatrixT<T>>* xs) {
  xs->resize(batch.cols());
  for (size_t t = 0; t < batch.cols(); ++t) {
    nn::MatrixT<T>& x = (*xs)[t];
    x.Resize(batch.rows(), 1);
    for (size_t r = 0; r < batch.rows(); ++r) x(r, 0) = batch(r, t);
  }
}

}  // namespace

void BatchWindowsInto(const std::vector<ts::WindowSample>& samples,
                      const std::vector<size_t>& idx, size_t begin,
                      size_t count, nn::Matrix* out) {
  BatchWindowsIntoImpl(samples, idx, begin, count, out);
}

void BatchWindowsInto(const std::vector<ts::WindowSample>& samples,
                      const std::vector<size_t>& idx, size_t begin,
                      size_t count, nn::MatrixF* out) {
  BatchWindowsIntoImpl(samples, idx, begin, count, out);
}

void BatchTargetsInto(const std::vector<ts::WindowSample>& samples,
                      const std::vector<size_t>& idx, size_t begin,
                      size_t count, nn::Matrix* out) {
  BatchTargetsIntoImpl(samples, idx, begin, count, out);
}

void BatchTargetsInto(const std::vector<ts::WindowSample>& samples,
                      const std::vector<size_t>& idx, size_t begin,
                      size_t count, nn::MatrixF* out) {
  BatchTargetsIntoImpl(samples, idx, begin, count, out);
}

std::vector<nn::Matrix> ToTimeMajor(const nn::Matrix& batch) {
  std::vector<nn::Matrix> xs;
  ToTimeMajorInto(batch, &xs);
  return xs;
}

void ToTimeMajorInto(const nn::Matrix& batch, std::vector<nn::Matrix>* xs) {
  ToTimeMajorIntoImpl(batch, xs);
}

void ToTimeMajorInto(const nn::MatrixF& batch, std::vector<nn::MatrixF>* xs) {
  ToTimeMajorIntoImpl(batch, xs);
}

nn::Tensor3 ToTensor3(const nn::Matrix& batch) {
  nn::Tensor3 t;
  ToTensor3Into(batch, &t);
  return t;
}

void ToTensor3Into(const nn::Matrix& batch, nn::Tensor3* out) {
  out->Resize(batch.rows(), 1, batch.cols());
  for (size_t r = 0; r < batch.rows(); ++r) {
    double* lane = out->lane(r, 0);
    for (size_t j = 0; j < batch.cols(); ++j) lane[j] = batch(r, j);
  }
}

void CopySequenceWithTail(const std::vector<nn::Matrix>& xs,
                          const nn::Matrix& tail,
                          std::vector<nn::Matrix>* dst) {
  dst->resize(xs.size() + 1);
  for (size_t t = 0; t < xs.size(); ++t) (*dst)[t] = xs[t];
  dst->back() = tail;
}

void LastStepGradSequence(const nn::Matrix& dlast, size_t steps, size_t batch,
                          size_t hidden, std::vector<nn::Matrix>* dst) {
  dst->resize(steps);
  for (size_t t = 0; t + 1 < steps; ++t) {
    (*dst)[t].Resize(batch, hidden);
    (*dst)[t].Fill(0.0);
  }
  dst->back() = dlast;
}

namespace {
// Distinct from the nn parameter magics so a params blob handed to the model
// state path (or vice versa) is rejected, not misparsed.
constexpr uint32_t kModelStateMagic = 0xDBA65AE1;
}  // namespace

namespace {

template <typename T>
std::vector<uint8_t> SerializeNeuralStateImpl(
    const std::vector<const ts::MinMaxScaler*>& scalers,
    const std::vector<nn::ParamT<T>>& params) {
  BufWriter w;
  w.U32(kModelStateMagic);
  w.U32(static_cast<uint32_t>(scalers.size()));
  for (const ts::MinMaxScaler* s : scalers) {
    w.U8(s->fitted() ? 1 : 0);
    w.F64(s->min());
    w.F64(s->max());
  }
  w.Bytes(nn::SerializeParamsF64(params));
  return w.Take();
}

}  // namespace

std::vector<uint8_t> SerializeNeuralState(
    const std::vector<const ts::MinMaxScaler*>& scalers,
    const std::vector<nn::Param>& params) {
  return SerializeNeuralStateImpl(scalers, params);
}

std::vector<uint8_t> SerializeNeuralState(
    const std::vector<const ts::MinMaxScaler*>& scalers,
    const std::vector<nn::ParamF>& params) {
  return SerializeNeuralStateImpl(scalers, params);
}

template <typename T>
static Status DeserializeNeuralStateImpl(
    const std::vector<uint8_t>& buffer,
    const std::vector<ts::MinMaxScaler*>& scalers,
    std::vector<nn::ParamT<T>> params) {
  BufReader r(buffer);
  uint32_t magic = 0, nscalers = 0;
  if (!r.U32(&magic) || magic != kModelStateMagic) {
    return Status::InvalidArgument("bad magic in model state buffer");
  }
  if (!r.U32(&nscalers) || nscalers != scalers.size()) {
    return Status::InvalidArgument("model state scaler count mismatch");
  }
  struct ScalerState {
    bool fitted;
    double lo, hi;
  };
  std::vector<ScalerState> restored;
  restored.reserve(nscalers);
  for (uint32_t i = 0; i < nscalers; ++i) {
    uint8_t fitted = 0;
    double lo = 0.0, hi = 0.0;
    if (!r.U8(&fitted) || !r.F64(&lo) || !r.F64(&hi)) {
      return Status::InvalidArgument("truncated model state scaler section");
    }
    if (fitted != 0 && !(lo <= hi)) {
      return Status::InvalidArgument("model state scaler range invalid");
    }
    restored.push_back({fitted != 0, lo, hi});
  }
  std::vector<uint8_t> param_blob;
  if (!r.Bytes(&param_blob)) {
    return Status::InvalidArgument("truncated model state parameter section");
  }
  // Reuses nn/serialize's magic / count / shape / truncation rejection.
  DBAUGUR_RETURN_IF_ERROR(nn::DeserializeParams(param_blob, params));
  // Scalers are only touched once every fallible step has passed.
  for (size_t i = 0; i < scalers.size(); ++i) {
    if (restored[i].fitted) {
      DBAUGUR_RETURN_IF_ERROR(
          scalers[i]->Restore(restored[i].lo, restored[i].hi));
    }
  }
  return Status::OK();
}

Status DeserializeNeuralState(const std::vector<uint8_t>& buffer,
                              const std::vector<ts::MinMaxScaler*>& scalers,
                              std::vector<nn::Param> params) {
  return DeserializeNeuralStateImpl(buffer, scalers, std::move(params));
}

Status DeserializeNeuralState(const std::vector<uint8_t>& buffer,
                              const std::vector<ts::MinMaxScaler*>& scalers,
                              std::vector<nn::ParamF> params) {
  return DeserializeNeuralStateImpl(buffer, scalers, std::move(params));
}

}  // namespace dbaugur::models

// Shared plumbing for the neural forecasters: min-max-scaled sliding-window
// datasets and batch assembly in the layouts the nn substrate expects.

#pragma once

#include <vector>

#include "models/forecaster.h"
#include "nn/layer.h"
#include "nn/matrix.h"
#include "ts/scaler.h"
#include "ts/window_dataset.h"

namespace dbaugur::models {

/// Window samples in [0,1] scale plus the scaler that maps back to raw scale.
struct ScaledDataset {
  std::vector<ts::WindowSample> samples;
  ts::MinMaxScaler scaler;
};

/// Fits a MinMaxScaler on `series` and extracts scaled (window, target) pairs.
StatusOr<ScaledDataset> BuildScaledDataset(const std::vector<double>& series,
                                           const ForecasterOptions& opts);

/// Packs selected samples' windows into a [batch, T] matrix.
nn::Matrix BatchWindows(const std::vector<ts::WindowSample>& samples,
                        const std::vector<size_t>& idx, size_t begin,
                        size_t count);

/// Packs selected samples' targets into a [batch, 1] matrix.
nn::Matrix BatchTargets(const std::vector<ts::WindowSample>& samples,
                        const std::vector<size_t>& idx, size_t begin,
                        size_t count);

// Into-variants reuse the destination's buffer so training loops can hold one
// batch workspace across all batches of an epoch instead of reallocating.

/// BatchWindows writing into an existing matrix. The MatrixF overloads cast
/// each (double) sample value to float for the f32 training path.
void BatchWindowsInto(const std::vector<ts::WindowSample>& samples,
                      const std::vector<size_t>& idx, size_t begin,
                      size_t count, nn::Matrix* out);
void BatchWindowsInto(const std::vector<ts::WindowSample>& samples,
                      const std::vector<size_t>& idx, size_t begin,
                      size_t count, nn::MatrixF* out);

/// BatchTargets writing into an existing matrix.
void BatchTargetsInto(const std::vector<ts::WindowSample>& samples,
                      const std::vector<size_t>& idx, size_t begin,
                      size_t count, nn::Matrix* out);
void BatchTargetsInto(const std::vector<ts::WindowSample>& samples,
                      const std::vector<size_t>& idx, size_t begin,
                      size_t count, nn::MatrixF* out);

/// Converts a [batch, T] matrix into a time-major sequence of [batch, 1]
/// matrices for recurrent layers.
std::vector<nn::Matrix> ToTimeMajor(const nn::Matrix& batch);

/// ToTimeMajor writing into an existing sequence (per-step buffers reused).
void ToTimeMajorInto(const nn::Matrix& batch, std::vector<nn::Matrix>* xs);
void ToTimeMajorInto(const nn::MatrixF& batch, std::vector<nn::MatrixF>* xs);

/// Converts a [batch, T] matrix into a [batch, 1 channel, T] tensor for
/// convolutional layers.
nn::Tensor3 ToTensor3(const nn::Matrix& batch);

/// ToTensor3 writing into an existing tensor.
void ToTensor3Into(const nn::Matrix& batch, nn::Tensor3* out);

/// dst = xs ++ [tail], reusing dst's buffers (a plain `dst = xs;
/// dst.push_back(tail)` would free and reallocate every batch). Used to build
/// the discriminator's length-(T+1) real/fake sequences.
void CopySequenceWithTail(const std::vector<nn::Matrix>& xs,
                          const nn::Matrix& tail,
                          std::vector<nn::Matrix>* dst);

/// Zero gradient sequence with only the last step set to `dlast`
/// (no-attention ablation path of the WFGAN backward).
void LastStepGradSequence(const nn::Matrix& dlast, size_t steps, size_t batch,
                          size_t hidden, std::vector<nn::Matrix>* dst);

// --- Model state (scalers + weights) for snapshot persistence. -------------
//
// A neural model's Predict path depends on its parameter tensors and the
// min-max scalers fitted on its training series. SerializeNeuralState packs
// `scalers` followed by a lossless float64 nn::SerializeParamsF64 blob;
// DeserializeNeuralState validates magic / scaler count / params (reusing
// nn/serialize's count+shape+truncation rejection) and restores in place.

/// Packs scaler states and parameter values into one self-describing blob.
/// The ParamF overload serves f32 models; the float64 wire form represents
/// every float exactly, so the f32 round trip is also lossless.
std::vector<uint8_t> SerializeNeuralState(
    const std::vector<const ts::MinMaxScaler*>& scalers,
    const std::vector<nn::Param>& params);
std::vector<uint8_t> SerializeNeuralState(
    const std::vector<const ts::MinMaxScaler*>& scalers,
    const std::vector<nn::ParamF>& params);

/// Restores a SerializeNeuralState blob. `scalers` and `params` must match
/// the saving model's layout; corrupt/truncated/mismatched blobs are
/// rejected with InvalidArgument without partially applying scaler state.
Status DeserializeNeuralState(const std::vector<uint8_t>& buffer,
                              const std::vector<ts::MinMaxScaler*>& scalers,
                              std::vector<nn::Param> params);
Status DeserializeNeuralState(const std::vector<uint8_t>& buffer,
                              const std::vector<ts::MinMaxScaler*>& scalers,
                              std::vector<nn::ParamF> params);

}  // namespace dbaugur::models

// Shared plumbing for the neural forecasters: min-max-scaled sliding-window
// datasets and batch assembly in the layouts the nn substrate expects.

#pragma once

#include <vector>

#include "models/forecaster.h"
#include "nn/matrix.h"
#include "ts/scaler.h"
#include "ts/window_dataset.h"

namespace dbaugur::models {

/// Window samples in [0,1] scale plus the scaler that maps back to raw scale.
struct ScaledDataset {
  std::vector<ts::WindowSample> samples;
  ts::MinMaxScaler scaler;
};

/// Fits a MinMaxScaler on `series` and extracts scaled (window, target) pairs.
StatusOr<ScaledDataset> BuildScaledDataset(const std::vector<double>& series,
                                           const ForecasterOptions& opts);

/// Packs selected samples' windows into a [batch, T] matrix.
nn::Matrix BatchWindows(const std::vector<ts::WindowSample>& samples,
                        const std::vector<size_t>& idx, size_t begin,
                        size_t count);

/// Packs selected samples' targets into a [batch, 1] matrix.
nn::Matrix BatchTargets(const std::vector<ts::WindowSample>& samples,
                        const std::vector<size_t>& idx, size_t begin,
                        size_t count);

/// Converts a [batch, T] matrix into a time-major sequence of [batch, 1]
/// matrices for recurrent layers.
std::vector<nn::Matrix> ToTimeMajor(const nn::Matrix& batch);

/// Converts a [batch, T] matrix into a [batch, 1 channel, T] tensor for
/// convolutional layers.
nn::Tensor3 ToTensor3(const nn::Matrix& batch);

}  // namespace dbaugur::models

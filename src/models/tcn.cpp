#include "models/tcn.h"

#include "models/neural_common.h"
#include "nn/loss.h"
#include "nn/serialize.h"

namespace dbaugur::models {

TcnForecaster::TcnForecaster(const ForecasterOptions& opts,
                             const TcnOptions& tcn)
    : opts_(opts),
      tcn_opts_(tcn),
      rng_(opts.seed),
      head_(tcn.channels, 1, nn::Activation::kIdentity, &rng_),
      adam_(opts.learning_rate) {
  size_t in_ch = 1;
  for (size_t d : tcn_opts_.dilations) {
    blocks_.push_back(std::make_unique<nn::TCNBlock>(
        in_ch, tcn_opts_.channels, tcn_opts_.kernel, d, &rng_));
    in_ch = tcn_opts_.channels;
  }
}

size_t TcnForecaster::ReceptiveField() const {
  size_t sum = 0;
  for (size_t d : tcn_opts_.dilations) sum += d;
  return 1 + (tcn_opts_.kernel - 1) * 2 * sum;
}

std::vector<nn::Param> TcnForecaster::Params() const {
  std::vector<nn::Param> params;
  for (auto& b : blocks_) {
    for (auto& p : b->Params()) params.push_back(p);
  }
  for (auto& p : head_.Params()) params.push_back(p);
  return params;
}

Status TcnForecaster::PrepareTraining(const std::vector<double>& series) {
  auto ds = BuildScaledDataset(series, opts_);
  if (!ds.ok()) return ds.status();
  scaler_ = ds->scaler;
  train_samples_ = std::move(ds->samples);
  return Status::OK();
}

Status TcnForecaster::TrainEpoch() {
  if (train_samples_.empty()) {
    return Status::FailedPrecondition("TCN: PrepareTraining not called");
  }
  std::vector<size_t> order = rng_.Permutation(train_samples_.size());
  std::vector<nn::Param> params = Params();
  for (size_t begin = 0; begin < order.size(); begin += opts_.batch_size) {
    size_t count = std::min(opts_.batch_size, order.size() - begin);
    BatchWindowsInto(train_samples_, order, begin, count, &xb_);
    BatchTargetsInto(train_samples_, order, begin, count, &y_);
    ToTensor3Into(xb_, &t_in_);
    // Chain block workspaces by reference; each block owns its output.
    const nn::Tensor3* t = &t_in_;
    for (auto& b : blocks_) t = &b->Forward(*t);
    // Head reads the final time step across channels.
    size_t last = t->time() - 1;
    feats_.Resize(count, tcn_opts_.channels);
    for (size_t r = 0; r < count; ++r) {
      for (size_t c = 0; c < tcn_opts_.channels; ++c) {
        feats_(r, c) = (*t)(r, c, last);
      }
    }
    const nn::Matrix& pred = head_.Forward(feats_);
    nn::MSELoss(pred, y_, &grad_);
    for (auto& p : params) p.grad->Fill(0.0);
    const nn::Matrix& dfeats = head_.Backward(grad_);
    dt_.Resize(count, tcn_opts_.channels, t->time());
    dt_.Fill(0.0);
    for (size_t r = 0; r < count; ++r) {
      for (size_t c = 0; c < tcn_opts_.channels; ++c) {
        dt_(r, c, last) = dfeats(r, c);
      }
    }
    const nn::Tensor3* dt = &dt_;
    for (size_t b = blocks_.size(); b-- > 0;) dt = &blocks_[b]->Backward(*dt);
    nn::ClipGradNorm(params, opts_.grad_clip);
    adam_.Step(params);
  }
  return Status::OK();
}

Status TcnForecaster::Fit(const std::vector<double>& series) {
  DBAUGUR_RETURN_IF_ERROR(PrepareTraining(series));
  for (size_t e = 0; e < opts_.epochs; ++e) {
    DBAUGUR_RETURN_IF_ERROR(TrainEpoch());
  }
  fitted_ = true;
  return Status::OK();
}

const nn::Matrix& TcnForecaster::ForwardBatch(const nn::Matrix& xb) const {
  ToTensor3Into(xb, &t_in_);
  const nn::Tensor3* t = &t_in_;
  for (auto& b : blocks_) t = &b->Forward(*t);
  size_t last = t->time() - 1;
  feats_.Resize(xb.rows(), tcn_opts_.channels);
  for (size_t r = 0; r < xb.rows(); ++r) {
    for (size_t c = 0; c < tcn_opts_.channels; ++c) {
      feats_(r, c) = (*t)(r, c, last);
    }
  }
  return head_.Forward(feats_);
}

StatusOr<double> TcnForecaster::Predict(
    const std::vector<double>& window) const {
  if (!fitted_) return Status::FailedPrecondition("TCN: Fit not called");
  if (window.size() != opts_.window) {
    return Status::InvalidArgument("TCN: window size mismatch");
  }
  nn::Matrix x(1, opts_.window);
  for (size_t j = 0; j < window.size(); ++j) {
    x(0, j) = scaler_.Transform(window[j]);
  }
  const nn::Matrix& pred = ForwardBatch(x);
  return scaler_.Inverse(pred(0, 0));
}

StatusOr<std::vector<uint8_t>> TcnForecaster::SaveState() const {
  return SerializeNeuralState({&scaler_}, Params());
}

Status TcnForecaster::LoadState(const std::vector<uint8_t>& buffer) {
  DBAUGUR_RETURN_IF_ERROR(DeserializeNeuralState(buffer, {&scaler_}, Params()));
  fitted_ = true;
  return Status::OK();
}

int64_t TcnForecaster::StorageBytes() const {
  return nn::StorageBytes(Params());
}

int64_t TcnForecaster::ParameterCount() const {
  int64_t n = 0;
  for (auto& p : Params()) n += static_cast<int64_t>(p.value->size());
  return n;
}

}  // namespace dbaugur::models

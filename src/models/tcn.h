// Temporal Convolutional Network forecaster (paper setup: five residual
// levels with dilation factors 1, 2, 4, 8, 16) — the ensemble's long-term
// "global view" member.

#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "models/forecaster.h"
#include "nn/conv1d.h"
#include "nn/dense.h"
#include "nn/optimizer.h"
#include "ts/scaler.h"
#include "ts/window_dataset.h"

namespace dbaugur::models {

/// TCN sizes; dilations default to the paper's 1,2,4,8,16.
struct TcnOptions {
  size_t channels = 16;
  size_t kernel = 2;
  std::vector<size_t> dilations = {1, 2, 4, 8, 16};
};

class TcnForecaster : public Forecaster {
 public:
  TcnForecaster(const ForecasterOptions& opts, const TcnOptions& tcn);
  explicit TcnForecaster(const ForecasterOptions& opts)
      : TcnForecaster(opts, TcnOptions{}) {}

  Status Fit(const std::vector<double>& series) override;
  StatusOr<double> Predict(const std::vector<double>& window) const override;
  std::string name() const override { return "TCN"; }
  int64_t StorageBytes() const override;
  int64_t ParameterCount() const override;

  Status PrepareTraining(const std::vector<double>& series);
  Status TrainEpoch();

  /// Receptive field in time steps: 1 + (k-1) * 2 * sum(dilations).
  size_t ReceptiveField() const;

  /// Parameter tensors in layer order (blocks, head) — used by serialization.
  std::vector<nn::Param> Params() const;

  /// Lossless snapshot of weights + scaler (serve/ system snapshots).
  StatusOr<std::vector<uint8_t>> SaveState() const override;
  Status LoadState(const std::vector<uint8_t>& buffer) override;

 private:
  const nn::Matrix& ForwardBatch(const nn::Matrix& xb) const;

  ForecasterOptions opts_;
  TcnOptions tcn_opts_;
  mutable Rng rng_;
  mutable std::vector<std::unique_ptr<nn::TCNBlock>> blocks_;
  mutable nn::Dense head_;
  nn::Adam adam_;
  ts::MinMaxScaler scaler_;
  std::vector<ts::WindowSample> train_samples_;
  // Batch workspaces reused across batches (mutable: Predict is const).
  mutable nn::Matrix xb_, y_, grad_, feats_;
  mutable nn::Tensor3 t_in_, dt_;
  bool fitted_ = false;
};

}  // namespace dbaugur::models

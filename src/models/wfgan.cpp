#include "models/wfgan.h"

#include <cmath>

#include "common/math_utils.h"
#include "models/neural_common.h"
#include "nn/loss.h"
#include "nn/serialize.h"

namespace dbaugur::models {

WfganForecaster::WfganForecaster(const ForecasterOptions& opts,
                                 const WfganOptions& gan)
    : opts_(opts),
      gan_(gan),
      rng_(opts.seed),
      g_lstm_(1, gan.hidden, &rng_),
      g_attn_(gan.hidden, gan.attn_dim, &rng_),
      g_head_(gan.hidden, 1, nn::Activation::kIdentity, &rng_),
      d_lstm_(1, gan.hidden, &rng_),
      d_attn_(gan.hidden, gan.attn_dim, &rng_),
      d_head_(gan.hidden, 1, nn::Activation::kIdentity, &rng_),
      g_adam_(opts.learning_rate),
      d_adam_(opts.learning_rate) {}

std::vector<nn::Param> WfganForecaster::GeneratorParams() const {
  std::vector<nn::Param> params = g_lstm_.Params();
  if (gan_.use_attention) {
    for (auto& p : g_attn_.Params()) params.push_back(p);
  }
  for (auto& p : g_head_.Params()) params.push_back(p);
  return params;
}

std::vector<nn::Param> WfganForecaster::DiscriminatorParams() const {
  std::vector<nn::Param> params = d_lstm_.Params();
  if (gan_.use_attention) {
    for (auto& p : d_attn_.Params()) params.push_back(p);
  }
  for (auto& p : d_head_.Params()) params.push_back(p);
  return params;
}

const nn::Matrix& WfganForecaster::GeneratorForward(
    const std::vector<nn::Matrix>& xs) const {
  const std::vector<nn::Matrix>& hs = g_lstm_.ForwardSequence(xs);
  const nn::Matrix& context =
      gan_.use_attention ? g_attn_.Forward(hs) : hs.back();
  return g_head_.Forward(context);
}

void WfganForecaster::GeneratorBackward(const nn::Matrix& grad_pred,
                                        size_t steps, size_t batch) const {
  const nn::Matrix& dcontext = g_head_.Backward(grad_pred);
  if (gan_.use_attention) {
    g_lstm_.BackwardSequence(g_attn_.Backward(dcontext));
  } else {
    LastStepGradSequence(dcontext, steps, batch, gan_.hidden, &g_grad_hs_);
    g_lstm_.BackwardSequence(g_grad_hs_);
  }
}

const nn::Matrix& WfganForecaster::DiscriminatorForward(
    const std::vector<nn::Matrix>& xs) const {
  const std::vector<nn::Matrix>& hs = d_lstm_.ForwardSequence(xs);
  const nn::Matrix& context =
      gan_.use_attention ? d_attn_.Forward(hs) : hs.back();
  return d_head_.Forward(context);
}

const std::vector<nn::Matrix>& WfganForecaster::DiscriminatorBackward(
    const nn::Matrix& grad_logit, size_t steps, size_t batch) const {
  const nn::Matrix& dcontext = d_head_.Backward(grad_logit);
  if (gan_.use_attention) {
    return d_lstm_.BackwardSequence(d_attn_.Backward(dcontext));
  }
  LastStepGradSequence(dcontext, steps, batch, gan_.hidden, &d_grad_hs_);
  return d_lstm_.BackwardSequence(d_grad_hs_);
}

Status WfganForecaster::PrepareTraining(const std::vector<double>& series) {
  auto ds = BuildScaledDataset(series, opts_);
  if (!ds.ok()) return ds.status();
  scaler_ = ds->scaler;
  train_samples_ = std::move(ds->samples);
  return Status::OK();
}

StatusOr<WfganEpochStats> WfganForecaster::TrainEpoch() {
  if (train_samples_.empty()) {
    return Status::FailedPrecondition("WFGAN: PrepareTraining not called");
  }
  std::vector<size_t> order = rng_.Permutation(train_samples_.size());
  std::vector<nn::Param> gparams = GeneratorParams();
  std::vector<nn::Param> dparams = DiscriminatorParams();
  auto zero = [](std::vector<nn::Param>& ps) {
    for (auto& p : ps) p.grad->Fill(0.0);
  };
  WfganEpochStats stats;
  size_t batches = 0;
  for (size_t begin = 0; begin < order.size(); begin += opts_.batch_size) {
    size_t count = std::min(opts_.batch_size, order.size() - begin);
    BatchWindowsInto(train_samples_, order, begin, count, &xb_);
    BatchTargetsInto(train_samples_, order, begin, count, &y_);
    ToTimeMajorInto(xb_, &xs_);

    if (gan_.adversarial) {
      // --- D-steps (Algorithm 2, lines 5-7): fake forecasts are detached.
      const nn::Matrix& fake = GeneratorForward(xs_);
      CopySequenceWithTail(xs_, y_, &xs_real_);
      CopySequenceWithTail(xs_, fake, &xs_fake_);
      real_labels_.Resize(count, 1);
      real_labels_.Fill(gan_.real_label);
      fake_labels_.Resize(count, 1);
      fake_labels_.Fill(0.0);
      for (size_t s = 0; s < gan_.d_steps; ++s) {
        zero(dparams);
        const nn::Matrix& real_logits = DiscriminatorForward(xs_real_);
        double loss_real =
            nn::BCEWithLogitsLoss(real_logits, real_labels_, &grad_real_);
        DiscriminatorBackward(grad_real_, xs_real_.size(), count);
        const nn::Matrix& fake_logits = DiscriminatorForward(xs_fake_);
        double loss_fake =
            nn::BCEWithLogitsLoss(fake_logits, fake_labels_, &grad_fake_);
        DiscriminatorBackward(grad_fake_, xs_fake_.size(), count);
        nn::ClipGradNorm(dparams, opts_.grad_clip);
        d_adam_.Step(dparams);
        stats.d_loss += loss_real + loss_fake;
      }
    }

    // --- G-steps (Algorithm 2, lines 8-10) plus the supervised MSE term.
    for (size_t s = 0; s < gan_.g_steps; ++s) {
      zero(gparams);
      const nn::Matrix& fake = GeneratorForward(xs_);
      grad_pred_.Resize(count, 1);
      grad_pred_.Fill(0.0);

      double mse = nn::MSELoss(fake, y_, &mse_grad_);
      grad_pred_.AddScaled(mse_grad_, gan_.supervised_weight);
      stats.g_mse += mse;

      if (gan_.adversarial) {
        CopySequenceWithTail(xs_, fake, &xs_fake_);
        zero(dparams);  // D grads from this pass are discarded below.
        const nn::Matrix& fake_logits = DiscriminatorForward(xs_fake_);
        double adv =
            gan_.saturating_g_loss
                ? nn::GeneratorGanLossSaturating(fake_logits, &grad_logit_)
                : nn::GeneratorGanLoss(fake_logits, &grad_logit_);
        stats.g_adv += adv;
        const std::vector<nn::Matrix>& dxs =
            DiscriminatorBackward(grad_logit_, xs_fake_.size(), count);
        grad_pred_.AddScaled(dxs.back(), gan_.adversarial_weight);
        zero(dparams);
      }

      GeneratorBackward(grad_pred_, xs_.size(), count);
      nn::ClipGradNorm(gparams, opts_.grad_clip);
      g_adam_.Step(gparams);
    }
    ++batches;
  }
  if (batches > 0) {
    stats.d_loss /= static_cast<double>(batches * std::max<size_t>(1, gan_.d_steps));
    stats.g_adv /= static_cast<double>(batches * gan_.g_steps);
    stats.g_mse /= static_cast<double>(batches * gan_.g_steps);
  }
  last_stats_ = stats;
  return stats;
}

Status WfganForecaster::Fit(const std::vector<double>& series) {
  DBAUGUR_RETURN_IF_ERROR(PrepareTraining(series));
  for (size_t e = 0; e < opts_.epochs; ++e) {
    auto st = TrainEpoch();
    if (!st.ok()) return st.status();
  }
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> WfganForecaster::Predict(
    const std::vector<double>& window) const {
  if (!fitted_) return Status::FailedPrecondition("WFGAN: Fit not called");
  if (window.size() != opts_.window) {
    return Status::InvalidArgument("WFGAN: window size mismatch");
  }
  std::vector<nn::Matrix> xs(window.size(), nn::Matrix(1, 1));
  for (size_t t = 0; t < window.size(); ++t) {
    xs[t](0, 0) = scaler_.Transform(window[t]);
  }
  const nn::Matrix& pred = GeneratorForward(xs);
  return scaler_.Inverse(pred(0, 0));
}

StatusOr<double> WfganForecaster::DiscriminatorScore(
    const std::vector<double>& window, double value) const {
  if (!fitted_) return Status::FailedPrecondition("WFGAN: Fit not called");
  if (window.size() != opts_.window) {
    return Status::InvalidArgument("WFGAN: window size mismatch");
  }
  std::vector<nn::Matrix> xs(window.size() + 1, nn::Matrix(1, 1));
  for (size_t t = 0; t < window.size(); ++t) {
    xs[t](0, 0) = scaler_.Transform(window[t]);
  }
  xs.back()(0, 0) = scaler_.Transform(value);
  const nn::Matrix& logit = DiscriminatorForward(xs);
  return Sigmoid(logit(0, 0));
}

std::vector<nn::Param> WfganForecaster::Params() const {
  std::vector<nn::Param> params = GeneratorParams();
  for (auto& p : DiscriminatorParams()) params.push_back(p);
  return params;
}

StatusOr<std::vector<uint8_t>> WfganForecaster::SaveState() const {
  return SerializeNeuralState({&scaler_}, Params());
}

Status WfganForecaster::LoadState(const std::vector<uint8_t>& buffer) {
  DBAUGUR_RETURN_IF_ERROR(DeserializeNeuralState(buffer, {&scaler_}, Params()));
  fitted_ = true;
  return Status::OK();
}

int64_t WfganForecaster::StorageBytes() const {
  return nn::StorageBytes(Params());
}

int64_t WfganForecaster::ParameterCount() const {
  int64_t n = 0;
  for (auto& p : GeneratorParams()) n += static_cast<int64_t>(p.value->size());
  for (auto& p : DiscriminatorParams()) {
    n += static_cast<int64_t>(p.value->size());
  }
  return n;
}

}  // namespace dbaugur::models

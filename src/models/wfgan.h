// WFGAN: Workload Forecasting GAN (the paper's core contribution, §V-A/V-B).
//
// A conditional GAN where the generator receives the length-T condition
// window X and emits the forecast x̂_{T+H}; the discriminator scores the
// length-(T+1) concatenations X ∘ x_{T+H} (real) and X ∘ x̂_{T+H} (fake).
// Both networks are an LSTM (paper: 30 cells) followed by a temporal
// attention layer (paper Eq. 2-3) and a dense head. Training alternates
// D-steps and G-steps per the paper's Algorithm 2.
//
// Two deliberate implementation choices beyond the paper's text, both
// standard for forecasting GANs and both exposed for ablation:
//  * the generator objective adds a supervised MSE term
//    (supervised_weight); pure adversarial training of a point forecaster
//    is unstable at this scale,
//  * the generator's adversarial term defaults to the non-saturating loss
//    -log D(fake) instead of Eq. 5's log(1 - D(fake)) (Goodfellow et al.'s
//    own recommendation); `saturating_g_loss` restores Eq. 5.

#pragma once

#include <memory>

#include "common/rng.h"
#include "models/forecaster.h"
#include "nn/attention.h"
#include "nn/dense.h"
#include "nn/lstm.h"
#include "nn/optimizer.h"
#include "ts/scaler.h"
#include "ts/window_dataset.h"

namespace dbaugur::models {

/// WFGAN architecture / training knobs.
struct WfganOptions {
  size_t hidden = 30;       ///< LSTM cells (paper: one LSTM layer, 30 cells).
  size_t attn_dim = 16;     ///< Attention projection width.
  size_t d_steps = 1;       ///< Discriminator updates per minibatch.
  size_t g_steps = 1;       ///< Generator updates per minibatch.
  double adversarial_weight = 0.2;  ///< Weight of the GAN term in G's loss.
  double supervised_weight = 1.0;   ///< Weight of the MSE term in G's loss.
  double real_label = 0.9;          ///< Label smoothing for real samples.
  bool use_attention = true;        ///< Disable to ablate Eq. 2-3.
  bool adversarial = true;          ///< Disable to ablate GAN training.
  bool saturating_g_loss = false;   ///< Use the paper's Eq. 5 G loss.
};

/// Per-epoch training diagnostics.
struct WfganEpochStats {
  double d_loss = 0.0;   ///< Mean discriminator BCE.
  double g_adv = 0.0;    ///< Mean generator adversarial loss.
  double g_mse = 0.0;    ///< Mean generator supervised MSE (scaled space).
};

class WfganForecaster : public Forecaster {
 public:
  WfganForecaster(const ForecasterOptions& opts, const WfganOptions& gan);
  explicit WfganForecaster(const ForecasterOptions& opts)
      : WfganForecaster(opts, WfganOptions{}) {}

  Status Fit(const std::vector<double>& series) override;
  StatusOr<double> Predict(const std::vector<double>& window) const override;
  std::string name() const override { return "WFGAN"; }
  int64_t StorageBytes() const override;
  int64_t ParameterCount() const override;

  Status PrepareTraining(const std::vector<double>& series);
  StatusOr<WfganEpochStats> TrainEpoch();

  /// Diagnostics from the most recent TrainEpoch.
  const WfganEpochStats& last_stats() const { return last_stats_; }

  /// Discriminator probability that `window ∘ value` is a real trace
  /// (inputs in raw scale). Exposed for tests and examples.
  StatusOr<double> DiscriminatorScore(const std::vector<double>& window,
                                      double value) const;

  /// All parameter tensors (generator then discriminator) — serialization.
  std::vector<nn::Param> Params() const;

  /// Lossless snapshot of both networks + scaler (serve/ system snapshots).
  StatusOr<std::vector<uint8_t>> SaveState() const override;
  Status LoadState(const std::vector<uint8_t>& buffer) override;

 private:
  /// Generator forward on a time-major batch; returns [batch, 1] forecasts
  /// in scaled space (network-owned workspace, valid until the next call).
  const nn::Matrix& GeneratorForward(const std::vector<nn::Matrix>& xs) const;
  /// Generator backward from dLoss/dForecast.
  void GeneratorBackward(const nn::Matrix& grad_pred, size_t steps,
                         size_t batch) const;
  /// Discriminator forward on a time-major batch of length T+1.
  const nn::Matrix& DiscriminatorForward(
      const std::vector<nn::Matrix>& xs) const;
  /// Discriminator backward; returns dLoss/dInput per step (network-owned
  /// workspace, valid until the next call).
  const std::vector<nn::Matrix>& DiscriminatorBackward(
      const nn::Matrix& grad_logit, size_t steps, size_t batch) const;
  std::vector<nn::Param> GeneratorParams() const;
  std::vector<nn::Param> DiscriminatorParams() const;

  ForecasterOptions opts_;
  WfganOptions gan_;
  mutable Rng rng_;
  // Generator.
  mutable nn::LSTM g_lstm_;
  mutable nn::TemporalAttention g_attn_;
  mutable nn::Dense g_head_;
  // Discriminator.
  mutable nn::LSTM d_lstm_;
  mutable nn::TemporalAttention d_attn_;
  mutable nn::Dense d_head_;
  nn::Adam g_adam_, d_adam_;
  ts::MinMaxScaler scaler_;
  std::vector<ts::WindowSample> train_samples_;
  WfganEpochStats last_stats_;
  // Batch workspaces reused across batches (mutable: used from const paths).
  mutable nn::Matrix xb_, y_, grad_pred_, mse_grad_, grad_real_, grad_fake_,
      grad_logit_, real_labels_, fake_labels_;
  mutable std::vector<nn::Matrix> xs_, xs_real_, xs_fake_;
  mutable std::vector<nn::Matrix> g_grad_hs_, d_grad_hs_;  // no-attention path
  bool fitted_ = false;
};

}  // namespace dbaugur::models

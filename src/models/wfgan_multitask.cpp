#include "models/wfgan_multitask.h"

#include <algorithm>

#include "models/neural_common.h"
#include "nn/loss.h"

namespace dbaugur::models {

MultiTaskWfgan::MultiTaskWfgan(const ForecasterOptions& opts,
                               const WfganOptions& gan)
    : opts_(opts),
      gan_(gan),
      rng_(opts.seed),
      shared_lstm_(1, gan.hidden, &rng_),
      g_adam_(opts.learning_rate),
      d_adams_{nn::Adam(opts.learning_rate), nn::Adam(opts.learning_rate)} {
  for (auto& t : tasks_) {
    t.attn = std::make_unique<nn::TemporalAttention>(gan.hidden, gan.attn_dim,
                                                     &rng_);
    t.head = std::make_unique<nn::Dense>(gan.hidden, 1,
                                         nn::Activation::kIdentity, &rng_);
    t.d_lstm = std::make_unique<nn::LSTM>(1, gan.hidden, &rng_);
    t.d_attn = std::make_unique<nn::TemporalAttention>(gan.hidden,
                                                       gan.attn_dim, &rng_);
    t.d_head = std::make_unique<nn::Dense>(gan.hidden, 1,
                                           nn::Activation::kIdentity, &rng_);
  }
}

const nn::Matrix& MultiTaskWfgan::GenForward(
    TaskNet& t, const std::vector<nn::Matrix>& xs) const {
  const std::vector<nn::Matrix>& hs = shared_lstm_.ForwardSequence(xs);
  const nn::Matrix& context =
      gan_.use_attention ? t.attn->Forward(hs) : hs.back();
  return t.head->Forward(context);
}

void MultiTaskWfgan::GenBackward(TaskNet& t, const nn::Matrix& grad_pred,
                                 size_t steps, size_t batch) const {
  const nn::Matrix& dcontext = t.head->Backward(grad_pred);
  if (gan_.use_attention) {
    shared_lstm_.BackwardSequence(t.attn->Backward(dcontext));
  } else {
    LastStepGradSequence(dcontext, steps, batch, gan_.hidden, &grad_hs_);
    shared_lstm_.BackwardSequence(grad_hs_);
  }
}

const nn::Matrix& MultiTaskWfgan::DiscForward(
    TaskNet& t, const std::vector<nn::Matrix>& xs) const {
  const std::vector<nn::Matrix>& hs = t.d_lstm->ForwardSequence(xs);
  const nn::Matrix& context =
      gan_.use_attention ? t.d_attn->Forward(hs) : hs.back();
  return t.d_head->Forward(context);
}

const std::vector<nn::Matrix>& MultiTaskWfgan::DiscBackward(
    TaskNet& t, const nn::Matrix& grad, size_t steps, size_t batch) const {
  const nn::Matrix& dcontext = t.d_head->Backward(grad);
  if (gan_.use_attention) {
    return t.d_lstm->BackwardSequence(t.d_attn->Backward(dcontext));
  }
  LastStepGradSequence(dcontext, steps, batch, gan_.hidden, &grad_hs_);
  return t.d_lstm->BackwardSequence(grad_hs_);
}

std::vector<nn::Param> MultiTaskWfgan::TaskGenParams(TaskNet& t) const {
  std::vector<nn::Param> params;
  if (gan_.use_attention) {
    for (auto& p : t.attn->Params()) params.push_back(p);
  }
  for (auto& p : t.head->Params()) params.push_back(p);
  return params;
}

std::vector<nn::Param> MultiTaskWfgan::DiscParams(TaskNet& t) const {
  std::vector<nn::Param> params = t.d_lstm->Params();
  if (gan_.use_attention) {
    for (auto& p : t.d_attn->Params()) params.push_back(p);
  }
  for (auto& p : t.d_head->Params()) params.push_back(p);
  return params;
}

Status MultiTaskWfgan::Fit(const std::vector<double>& query_series,
                           const std::vector<double>& resource_series) {
  {
    auto ds = BuildScaledDataset(query_series, opts_);
    if (!ds.ok()) return ds.status();
    tasks_[0].scaler = ds->scaler;
    tasks_[0].samples = std::move(ds->samples);
  }
  {
    auto ds = BuildScaledDataset(resource_series, opts_);
    if (!ds.ok()) return ds.status();
    tasks_[1].scaler = ds->scaler;
    tasks_[1].samples = std::move(ds->samples);
  }
  for (size_t e = 0; e < opts_.epochs; ++e) {
    DBAUGUR_RETURN_IF_ERROR(TrainEpoch());
  }
  fitted_ = true;
  return Status::OK();
}

Status MultiTaskWfgan::TrainEpoch() {
  auto zero = [](std::vector<nn::Param> ps) {
    for (auto& p : ps) p.grad->Fill(0.0);
  };
  // Combined generator parameter set: shared trunk + both task heads.
  std::vector<nn::Param> gparams = shared_lstm_.Params();
  for (auto& t : tasks_) {
    for (auto& p : TaskGenParams(t)) gparams.push_back(p);
  }

  std::array<std::vector<size_t>, 2> orders = {
      rng_.Permutation(tasks_[0].samples.size()),
      rng_.Permutation(tasks_[1].samples.size())};
  size_t batches = std::min(orders[0].size(), orders[1].size()) /
                   std::max<size_t>(1, opts_.batch_size);
  if (batches == 0) return Status::InvalidArgument("MTL: not enough samples");

  for (size_t bidx = 0; bidx < batches; ++bidx) {
    size_t begin = bidx * opts_.batch_size;
    // Per-task minibatch tensors.
    for (size_t ti = 0; ti < 2; ++ti) {
      size_t count =
          std::min(opts_.batch_size, orders[ti].size() - begin);
      BatchWindowsInto(tasks_[ti].samples, orders[ti], begin, count, &xb_);
      BatchTargetsInto(tasks_[ti].samples, orders[ti], begin, count, &ys_[ti]);
      ToTimeMajorInto(xb_, &xs_[ti]);
    }

    // D-steps per task with detached fakes.
    if (gan_.adversarial) {
      for (size_t ti = 0; ti < 2; ++ti) {
        TaskNet& t = tasks_[ti];
        size_t count = ys_[ti].rows();
        const nn::Matrix& fake = GenForward(t, xs_[ti]);
        CopySequenceWithTail(xs_[ti], ys_[ti], &xs_real_);
        CopySequenceWithTail(xs_[ti], fake, &xs_fake_);
        std::vector<nn::Param> dparams = DiscParams(t);
        zero(dparams);
        real_labels_.Resize(count, 1);
        real_labels_.Fill(gan_.real_label);
        fake_labels_.Resize(count, 1);
        fake_labels_.Fill(0.0);
        nn::BCEWithLogitsLoss(DiscForward(t, xs_real_), real_labels_,
                              &grad_real_);
        DiscBackward(t, grad_real_, xs_real_.size(), count);
        nn::BCEWithLogitsLoss(DiscForward(t, xs_fake_), fake_labels_,
                              &grad_fake_);
        DiscBackward(t, grad_fake_, xs_fake_.size(), count);
        nn::ClipGradNorm(dparams, opts_.grad_clip);
        d_adams_[ti].Step(dparams);
      }
    }

    // Joint G-step: both tasks' gradients accumulate into the shared trunk
    // before one optimizer update (multi-task learning).
    zero(gparams);
    for (size_t ti = 0; ti < 2; ++ti) {
      TaskNet& t = tasks_[ti];
      size_t count = ys_[ti].rows();
      const nn::Matrix& fake = GenForward(t, xs_[ti]);
      grad_pred_.Resize(count, 1);
      grad_pred_.Fill(0.0);
      nn::MSELoss(fake, ys_[ti], &mse_grad_);
      grad_pred_.AddScaled(mse_grad_, gan_.supervised_weight);
      if (gan_.adversarial) {
        CopySequenceWithTail(xs_[ti], fake, &xs_fake_);
        std::vector<nn::Param> dparams = DiscParams(t);
        const nn::Matrix& fake_logits = DiscForward(t, xs_fake_);
        if (gan_.saturating_g_loss) {
          nn::GeneratorGanLossSaturating(fake_logits, &grad_logit_);
        } else {
          nn::GeneratorGanLoss(fake_logits, &grad_logit_);
        }
        const std::vector<nn::Matrix>& dxs =
            DiscBackward(t, grad_logit_, xs_fake_.size(), count);
        grad_pred_.AddScaled(dxs.back(), gan_.adversarial_weight);
        zero(dparams);  // discard D grads from the G pass
      }
      GenBackward(t, grad_pred_, xs_[ti].size(), count);
    }
    nn::ClipGradNorm(gparams, opts_.grad_clip);
    g_adam_.Step(gparams);
  }
  return Status::OK();
}

StatusOr<double> MultiTaskWfgan::Predict(
    WorkloadTask task, const std::vector<double>& window) const {
  if (!fitted_) return Status::FailedPrecondition("MTL-WFGAN: Fit not called");
  if (window.size() != opts_.window) {
    return Status::InvalidArgument("MTL-WFGAN: window size mismatch");
  }
  TaskNet& t = tasks_[static_cast<size_t>(task)];
  std::vector<nn::Matrix> xs(window.size(), nn::Matrix(1, 1));
  for (size_t i = 0; i < window.size(); ++i) {
    xs[i](0, 0) = t.scaler.Transform(window[i]);
  }
  const nn::Matrix& pred = GenForward(t, xs);
  return t.scaler.Inverse(pred(0, 0));
}

int64_t MultiTaskWfgan::ParameterCount() const {
  int64_t n = SharedParameterCount();
  for (auto& t : tasks_) {
    for (auto& p : TaskGenParams(const_cast<TaskNet&>(t))) {
      n += static_cast<int64_t>(p.value->size());
    }
    for (auto& p : DiscParams(const_cast<TaskNet&>(t))) {
      n += static_cast<int64_t>(p.value->size());
    }
  }
  return n;
}

int64_t MultiTaskWfgan::SharedParameterCount() const {
  int64_t n = 0;
  for (auto& p : shared_lstm_.Params()) {
    n += static_cast<int64_t>(p.value->size());
  }
  return n;
}

std::vector<nn::Param> MultiTaskWfgan::Params() const {
  std::vector<nn::Param> params = shared_lstm_.Params();
  for (auto& t : tasks_) {
    for (auto& p : TaskGenParams(const_cast<TaskNet&>(t))) params.push_back(p);
    for (auto& p : DiscParams(const_cast<TaskNet&>(t))) params.push_back(p);
  }
  return params;
}

StatusOr<std::vector<uint8_t>> MultiTaskWfgan::SaveState() const {
  return SerializeNeuralState({&tasks_[0].scaler, &tasks_[1].scaler}, Params());
}

Status MultiTaskWfgan::LoadState(const std::vector<uint8_t>& buffer) {
  DBAUGUR_RETURN_IF_ERROR(DeserializeNeuralState(
      buffer, {&tasks_[0].scaler, &tasks_[1].scaler}, Params()));
  fitted_ = true;
  return Status::OK();
}

}  // namespace dbaugur::models

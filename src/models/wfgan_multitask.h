// Multi-task WFGAN (paper §V-A): the query-trace and resource-trace
// forecasting tasks are trained jointly. The shallow network — the generator
// LSTM — is shared between both tasks while each task keeps its own
// attention layer, dense head, and discriminator ("the shallow network
// parameters in the hidden layer will be shared by both forecasting models,
// while their deep network parameters will be optimized separately").

#pragma once

#include <array>

#include "common/rng.h"
#include "models/forecaster.h"
#include "models/wfgan.h"
#include "nn/attention.h"
#include "nn/dense.h"
#include "nn/lstm.h"
#include "nn/optimizer.h"
#include "ts/scaler.h"
#include "ts/window_dataset.h"

namespace dbaugur::models {

/// Task index within the multi-task model.
enum class WorkloadTask { kQuery = 0, kResource = 1 };

class MultiTaskWfgan {
 public:
  MultiTaskWfgan(const ForecasterOptions& opts, const WfganOptions& gan);

  /// Jointly trains on the query trace and the resource trace.
  Status Fit(const std::vector<double>& query_series,
             const std::vector<double>& resource_series);

  /// Predicts the raw-scale value H steps after the window for one task.
  StatusOr<double> Predict(WorkloadTask task,
                           const std::vector<double>& window) const;

  int64_t ParameterCount() const;
  /// Parameters in the shared trunk only (tests assert sharing is real).
  int64_t SharedParameterCount() const;

  /// All parameter tensors (shared trunk, then per-task generator heads and
  /// discriminators in task order) — serialization.
  std::vector<nn::Param> Params() const;

  /// Lossless snapshot of the trunk, both task networks, and both task
  /// scalers, restorable into a same-options MultiTaskWfgan without
  /// retraining (serve/ system snapshots).
  StatusOr<std::vector<uint8_t>> SaveState() const;
  Status LoadState(const std::vector<uint8_t>& buffer);

 private:
  struct TaskNet {
    std::unique_ptr<nn::TemporalAttention> attn;
    std::unique_ptr<nn::Dense> head;
    std::unique_ptr<nn::LSTM> d_lstm;
    std::unique_ptr<nn::TemporalAttention> d_attn;
    std::unique_ptr<nn::Dense> d_head;
    ts::MinMaxScaler scaler;
    std::vector<ts::WindowSample> samples;
  };

  const nn::Matrix& GenForward(TaskNet& t,
                               const std::vector<nn::Matrix>& xs) const;
  void GenBackward(TaskNet& t, const nn::Matrix& grad_pred, size_t steps,
                   size_t batch) const;
  const nn::Matrix& DiscForward(TaskNet& t,
                                const std::vector<nn::Matrix>& xs) const;
  const std::vector<nn::Matrix>& DiscBackward(TaskNet& t,
                                              const nn::Matrix& grad,
                                              size_t steps,
                                              size_t batch) const;
  std::vector<nn::Param> TaskGenParams(TaskNet& t) const;
  std::vector<nn::Param> DiscParams(TaskNet& t) const;

  Status TrainEpoch();

  ForecasterOptions opts_;
  WfganOptions gan_;
  mutable Rng rng_;
  mutable nn::LSTM shared_lstm_;  // shared shallow trunk
  mutable std::array<TaskNet, 2> tasks_;
  nn::Adam g_adam_;
  std::array<nn::Adam, 2> d_adams_;
  // Batch workspaces reused across batches (mutable: used from const paths).
  mutable nn::Matrix xb_, grad_pred_, mse_grad_, grad_real_, grad_fake_,
      grad_logit_, real_labels_, fake_labels_;
  mutable std::array<nn::Matrix, 2> ys_;
  mutable std::array<std::vector<nn::Matrix>, 2> xs_;
  mutable std::vector<nn::Matrix> xs_real_, xs_fake_, grad_hs_;
  bool fitted_ = false;
};

}  // namespace dbaugur::models

#include "nn/attention.h"

#include <cmath>

#include "common/contracts.h"
#include "common/math_utils.h"
#include "nn/init.h"

namespace dbaugur::nn {

TemporalAttention::TemporalAttention(size_t hidden, size_t attn_dim, Rng* rng)
    : hidden_(hidden),
      attn_(attn_dim),
      wa_(hidden, attn_dim),
      ba_(1, attn_dim),
      v_(attn_dim, 1),
      dwa_(hidden, attn_dim),
      dba_(1, attn_dim),
      dv_(attn_dim, 1) {
  DBAUGUR_CHECK(hidden > 0 && attn_dim > 0,
                "TemporalAttention needs positive dims, got hidden=", hidden,
                " attn=", attn_dim);
  XavierInit(&wa_, rng);
  XavierInit(&v_, rng);
}

const Matrix& TemporalAttention::Forward(const std::vector<Matrix>& hs) {
  size_t steps = hs.size();
  size_t batch = steps == 0 ? 0 : hs[0].rows();
  // Contracts hoisted out of the step loop.
  for (const Matrix& h : hs) {
    DBAUGUR_CHECK_EQ(h.cols(), hidden_, "TemporalAttention::Forward step width");
    DBAUGUR_CHECK_EQ(h.rows(), batch,
                     "TemporalAttention::Forward inconsistent batch size");
  }
  hs_ = hs;
  u_.resize(steps);
  scores_.Resize(batch, steps);
  for (size_t t = 0; t < steps; ++t) {
    Matrix& u = u_[t];
    u.MatMulInto(hs[t], wa_);
    u.AddRowVector(ba_);
    double* ud = u.data();
    for (size_t i = 0, n = u.size(); i < n; ++i) ud[i] = std::tanh(ud[i]);
    s_.MatMulInto(u, v_);  // [batch, 1]
    for (size_t r = 0; r < batch; ++r) scores_(r, t) = s_(r, 0);
  }
  // Row-wise softmax over time.
  alpha_.Resize(batch, steps);
  for (size_t r = 0; r < batch; ++r) {
    double mx = -1e300;
    for (size_t t = 0; t < steps; ++t) mx = std::max(mx, scores_(r, t));
    double sum = 0.0;
    for (size_t t = 0; t < steps; ++t) {
      alpha_(r, t) = std::exp(scores_(r, t) - mx);
      sum += alpha_(r, t);
    }
    for (size_t t = 0; t < steps; ++t) alpha_(r, t) /= sum;
  }
  context_.Resize(batch, hidden_);
  context_.Fill(0.0);
  for (size_t t = 0; t < steps; ++t) {
    for (size_t r = 0; r < batch; ++r) {
      double a = alpha_(r, t);
      const double* hrow = hs[t].row(r);
      double* crow = context_.row(r);
      for (size_t j = 0; j < hidden_; ++j) crow[j] += a * hrow[j];
    }
  }
  return context_;
}

const std::vector<Matrix>& TemporalAttention::Backward(
    const Matrix& grad_context) {
  size_t steps = hs_.size();
  size_t batch = steps == 0 ? 0 : hs_[0].rows();
  if (steps > 0) {
    DBAUGUR_CHECK(grad_context.rows() == batch &&
                      grad_context.cols() == hidden_,
                  "TemporalAttention::Backward gradient shape ",
                  grad_context.rows(), "x", grad_context.cols(),
                  " does not match context ", batch, "x", hidden_);
  }
  dhs_.resize(steps);

  // dL/dalpha_{r,t} = grad_context_r . h_t_r ; context term dh = alpha * dc.
  dalpha_.Resize(batch, steps);
  for (size_t t = 0; t < steps; ++t) {
    dhs_[t].Resize(batch, hidden_);
    for (size_t r = 0; r < batch; ++r) {
      const double* hrow = hs_[t].row(r);
      const double* crow = grad_context.row(r);
      const double a = alpha_(r, t);
      double* drow = dhs_[t].row(r);
      double dot = 0.0;
      for (size_t j = 0; j < hidden_; ++j) {
        dot += crow[j] * hrow[j];
        drow[j] = a * crow[j];
      }
      dalpha_(r, t) = dot;
    }
  }
  // Softmax backward: ds_t = alpha_t * (dalpha_t - sum_k alpha_k dalpha_k).
  dscore_.Resize(batch, steps);
  for (size_t r = 0; r < batch; ++r) {
    double dot = 0.0;
    for (size_t t = 0; t < steps; ++t) dot += alpha_(r, t) * dalpha_(r, t);
    for (size_t t = 0; t < steps; ++t) {
      dscore_(r, t) = alpha_(r, t) * (dalpha_(r, t) - dot);
    }
  }
  // Through s_t = u_t . v and u_t = tanh(h_t Wa + ba).
  for (size_t t = 0; t < steps; ++t) {
    s_.Resize(batch, 1);
    for (size_t r = 0; r < batch; ++r) s_(r, 0) = dscore_(r, t);
    // dv += u_t^T ds ; du = ds v^T.
    dv_.AddTransposeMatMul(u_[t], s_);
    du_.MatMulTransposeInto(s_, v_);  // [batch, attn]
    // Through tanh.
    const double* ud = u_[t].data();
    double* dud = du_.data();
    for (size_t i = 0, n = du_.size(); i < n; ++i) {
      dud[i] *= 1.0 - ud[i] * ud[i];
    }
    dwa_.AddTransposeMatMul(hs_[t], du_);
    dba_.AddColSumOf(du_);
    dhs_[t].AddMatMulTranspose(du_, wa_);
  }
  return dhs_;
}

std::vector<Param> TemporalAttention::Params() {
  return {{&wa_, &dwa_, "attn.wa"},
          {&ba_, &dba_, "attn.ba"},
          {&v_, &dv_, "attn.v"}};
}

void TemporalAttention::ZeroGrad() {
  dwa_.Fill(0.0);
  dba_.Fill(0.0);
  dv_.Fill(0.0);
}

}  // namespace dbaugur::nn

#include "nn/attention.h"

#include <cmath>

#include "common/contracts.h"
#include "common/math_utils.h"
#include "nn/init.h"

namespace dbaugur::nn {

TemporalAttention::TemporalAttention(size_t hidden, size_t attn_dim, Rng* rng)
    : hidden_(hidden),
      attn_(attn_dim),
      wa_(hidden, attn_dim),
      ba_(1, attn_dim),
      v_(attn_dim, 1),
      dwa_(hidden, attn_dim),
      dba_(1, attn_dim),
      dv_(attn_dim, 1) {
  DBAUGUR_CHECK(hidden > 0 && attn_dim > 0,
                "TemporalAttention needs positive dims, got hidden=", hidden,
                " attn=", attn_dim);
  XavierInit(&wa_, rng);
  XavierInit(&v_, rng);
}

Matrix TemporalAttention::Forward(const std::vector<Matrix>& hs) {
  hs_ = hs;
  size_t steps = hs.size();
  size_t batch = steps == 0 ? 0 : hs[0].rows();
  u_.assign(steps, Matrix());
  Matrix scores(batch, steps);
  for (size_t t = 0; t < steps; ++t) {
    DBAUGUR_CHECK_EQ(hs[t].cols(), hidden_,
                     "TemporalAttention::Forward step width");
    DBAUGUR_CHECK_EQ(hs[t].rows(), batch,
                     "TemporalAttention::Forward inconsistent batch size");
    Matrix u = hs[t].MatMul(wa_);
    u.AddRowVector(ba_);
    u.Apply([](double x) { return std::tanh(x); });
    Matrix s = u.MatMul(v_);  // [batch, 1]
    for (size_t r = 0; r < batch; ++r) scores(r, t) = s(r, 0);
    u_[t] = std::move(u);
  }
  // Row-wise softmax over time.
  alpha_ = Matrix(batch, steps);
  for (size_t r = 0; r < batch; ++r) {
    double mx = -1e300;
    for (size_t t = 0; t < steps; ++t) mx = std::max(mx, scores(r, t));
    double sum = 0.0;
    for (size_t t = 0; t < steps; ++t) {
      alpha_(r, t) = std::exp(scores(r, t) - mx);
      sum += alpha_(r, t);
    }
    for (size_t t = 0; t < steps; ++t) alpha_(r, t) /= sum;
  }
  Matrix context(batch, hidden_);
  for (size_t t = 0; t < steps; ++t) {
    for (size_t r = 0; r < batch; ++r) {
      double a = alpha_(r, t);
      const double* hrow = hs[t].row(r);
      double* crow = context.row(r);
      for (size_t j = 0; j < hidden_; ++j) crow[j] += a * hrow[j];
    }
  }
  return context;
}

std::vector<Matrix> TemporalAttention::Backward(const Matrix& grad_context) {
  size_t steps = hs_.size();
  size_t batch = steps == 0 ? 0 : hs_[0].rows();
  if (steps > 0) {
    DBAUGUR_CHECK(grad_context.rows() == batch &&
                      grad_context.cols() == hidden_,
                  "TemporalAttention::Backward gradient shape ",
                  grad_context.rows(), "x", grad_context.cols(),
                  " does not match context ", batch, "x", hidden_);
  }
  std::vector<Matrix> dhs(steps, Matrix(batch, hidden_));

  // dL/dalpha_{r,t} = grad_context_r . h_t_r ; context term dh += alpha * dc.
  Matrix dalpha(batch, steps);
  for (size_t t = 0; t < steps; ++t) {
    for (size_t r = 0; r < batch; ++r) {
      const double* hrow = hs_[t].row(r);
      const double* crow = grad_context.row(r);
      double dot = 0.0;
      for (size_t j = 0; j < hidden_; ++j) {
        dot += crow[j] * hrow[j];
        dhs[t](r, j) += alpha_(r, t) * crow[j];
      }
      dalpha(r, t) = dot;
    }
  }
  // Softmax backward: ds_t = alpha_t * (dalpha_t - sum_k alpha_k dalpha_k).
  Matrix dscore(batch, steps);
  for (size_t r = 0; r < batch; ++r) {
    double dot = 0.0;
    for (size_t t = 0; t < steps; ++t) dot += alpha_(r, t) * dalpha(r, t);
    for (size_t t = 0; t < steps; ++t) {
      dscore(r, t) = alpha_(r, t) * (dalpha(r, t) - dot);
    }
  }
  // Through s_t = u_t . v and u_t = tanh(h_t Wa + ba).
  for (size_t t = 0; t < steps; ++t) {
    Matrix ds(batch, 1);
    for (size_t r = 0; r < batch; ++r) ds(r, 0) = dscore(r, t);
    // dv += u_t^T ds ; du = ds v^T.
    dv_.Add(u_[t].TransposeMatMul(ds));
    Matrix du = ds.MatMulTranspose(v_);  // [batch, attn]
    // Through tanh.
    for (size_t r = 0; r < batch; ++r) {
      for (size_t j = 0; j < attn_; ++j) {
        double uv = u_[t](r, j);
        du(r, j) *= 1.0 - uv * uv;
      }
    }
    dwa_.Add(hs_[t].TransposeMatMul(du));
    dba_.Add(du.ColSum());
    dhs[t].Add(du.MatMulTranspose(wa_));
  }
  return dhs;
}

std::vector<Param> TemporalAttention::Params() {
  return {{&wa_, &dwa_, "attn.wa"},
          {&ba_, &dba_, "attn.ba"},
          {&v_, &dv_, "attn.v"}};
}

void TemporalAttention::ZeroGrad() {
  dwa_.Fill(0.0);
  dba_.Fill(0.0);
  dv_.Fill(0.0);
}

}  // namespace dbaugur::nn

// Temporal (additive) attention over per-step LSTM hidden states.
//
// WFGAN summarizes hidden states h_1..h_T into a context vector via learned
// attention weights instead of relying only on h_T (paper Eq. 2-3):
//   u_t = tanh(h_t Wa + ba),  s_t = u_t . v,  alpha = softmax_t(s),
//   context = sum_t alpha_t h_t.

#pragma once

#include <vector>

#include "common/rng.h"
#include "nn/layer.h"
#include "nn/matrix.h"

namespace dbaugur::nn {

/// Additive temporal attention pooling a sequence of [batch, hidden] states
/// into one [batch, hidden] context.
class TemporalAttention {
 public:
  TemporalAttention(size_t hidden, size_t attn_dim, Rng* rng);

  /// Computes the context vector; caches activations for Backward. The
  /// returned matrix is a layer-owned workspace valid until the next Forward
  /// call; steady-state calls with the same shapes do not touch the heap.
  const Matrix& Forward(const std::vector<Matrix>& hs);

  /// Given dLoss/dContext, accumulates parameter gradients and returns
  /// dLoss/dh_t for every step (layer-owned workspace, valid until the next
  /// Backward call).
  const std::vector<Matrix>& Backward(const Matrix& grad_context);

  std::vector<Param> Params();
  void ZeroGrad();

  /// Attention weights of the last Forward call: [batch, T].
  const Matrix& last_weights() const { return alpha_; }

 private:
  size_t hidden_;
  size_t attn_;
  Matrix wa_;  // [hidden, attn]
  Matrix ba_;  // [1, attn]
  Matrix v_;   // [attn, 1]
  Matrix dwa_, dba_, dv_;

  std::vector<Matrix> hs_;  // cached inputs
  std::vector<Matrix> u_;   // cached tanh pre-scores, per step [batch, attn]
  Matrix alpha_;            // [batch, T]

  // Persistent workspaces (capacity survives across calls).
  Matrix scores_;            // [batch, T] pre-softmax
  Matrix context_;           // forward result
  std::vector<Matrix> dhs_;  // backward result
  Matrix dalpha_, dscore_;   // [batch, T]
  Matrix s_;                 // [batch, 1] per-step score column
  Matrix du_;                // [batch, attn]
};

}  // namespace dbaugur::nn

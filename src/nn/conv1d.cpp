#include "nn/conv1d.h"

#include <cmath>

#include "common/contracts.h"
#include "nn/init.h"

namespace dbaugur::nn {

CausalConv1D::CausalConv1D(size_t in_channels, size_t out_channels,
                           size_t kernel, size_t dilation, Rng* rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      dilation_(dilation),
      w_(out_channels, in_channels * kernel),
      b_(1, out_channels),
      dw_(out_channels, in_channels * kernel),
      db_(1, out_channels) {
  DBAUGUR_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 &&
                    dilation > 0,
                "CausalConv1D needs positive dims, got in=", in_channels,
                " out=", out_channels, " kernel=", kernel,
                " dilation=", dilation);
  double limit =
      std::sqrt(6.0 / static_cast<double>(in_channels * kernel + out_channels));
  UniformInit(&w_, rng, limit);
}

Tensor3 CausalConv1D::Forward(const Tensor3& input) {
  DBAUGUR_CHECK_EQ(input.channels(), in_ch_,
                   "CausalConv1D::Forward channel count");
  input_ = input;
  size_t batch = input.batch();
  size_t time = input.time();
  Tensor3 out(batch, out_ch_, time);
  for (size_t bi = 0; bi < batch; ++bi) {
    for (size_t co = 0; co < out_ch_; ++co) {
      double* olane = out.lane(bi, co);
      const double* wrow = w_.row(co);
      double bias = b_(0, co);
      for (size_t t = 0; t < time; ++t) olane[t] = bias;
      for (size_t ci = 0; ci < in_ch_; ++ci) {
        const double* ilane = input.lane(bi, ci);
        for (size_t j = 0; j < kernel_; ++j) {
          double wv = wrow[ci * kernel_ + j];
          if (wv == 0.0) continue;
          size_t shift = (kernel_ - 1 - j) * dilation_;
          for (size_t t = shift; t < time; ++t) {
            olane[t] += wv * ilane[t - shift];
          }
        }
      }
    }
  }
  return out;
}

Tensor3 CausalConv1D::Backward(const Tensor3& grad_output) {
  size_t batch = input_.batch();
  size_t time = input_.time();
  DBAUGUR_CHECK(grad_output.batch() == batch &&
                    grad_output.channels() == out_ch_ &&
                    grad_output.time() == time,
                "CausalConv1D::Backward gradient shape ", grad_output.batch(),
                "x", grad_output.channels(), "x", grad_output.time(),
                " does not match forward output ", batch, "x", out_ch_, "x",
                time);
  Tensor3 dx(batch, in_ch_, time);
  for (size_t bi = 0; bi < batch; ++bi) {
    for (size_t co = 0; co < out_ch_; ++co) {
      const double* glane = grad_output.lane(bi, co);
      double* dwrow = dw_.row(co);
      const double* wrow = w_.row(co);
      double gsum = 0.0;
      for (size_t t = 0; t < time; ++t) gsum += glane[t];
      db_(0, co) += gsum;
      for (size_t ci = 0; ci < in_ch_; ++ci) {
        const double* ilane = input_.lane(bi, ci);
        double* dxlane = dx.lane(bi, ci);
        for (size_t j = 0; j < kernel_; ++j) {
          size_t shift = (kernel_ - 1 - j) * dilation_;
          double wv = wrow[ci * kernel_ + j];
          double dwv = 0.0;
          for (size_t t = shift; t < time; ++t) {
            double g = glane[t];
            dwv += g * ilane[t - shift];
            dxlane[t - shift] += g * wv;
          }
          dwrow[ci * kernel_ + j] += dwv;
        }
      }
    }
  }
  return dx;
}

std::vector<Param> CausalConv1D::Params() {
  return {{&w_, &dw_, "conv.w"}, {&b_, &db_, "conv.b"}};
}

namespace {
void ReluInPlace(Tensor3* t) {
  t->Apply([](double x) { return x > 0.0 ? x : 0.0; });
}

// Zeroes grad entries where the forward activation was clipped.
void ReluBackward(const Tensor3& activated, Tensor3* grad) {
  for (size_t b = 0; b < grad->batch(); ++b) {
    for (size_t c = 0; c < grad->channels(); ++c) {
      const double* alane = activated.lane(b, c);
      double* glane = grad->lane(b, c);
      for (size_t t = 0; t < grad->time(); ++t) {
        if (alane[t] <= 0.0) glane[t] = 0.0;
      }
    }
  }
}
}  // namespace

TCNBlock::TCNBlock(size_t in_channels, size_t channels, size_t kernel,
                   size_t dilation, Rng* rng)
    : conv1_(in_channels, channels, kernel, dilation, rng),
      conv2_(channels, channels, kernel, dilation, rng) {
  if (in_channels != channels) {
    downsample_ =
        std::make_unique<CausalConv1D>(in_channels, channels, 1, 1, rng);
  }
}

Tensor3 TCNBlock::Forward(const Tensor3& input) {
  a1_ = conv1_.Forward(input);
  ReluInPlace(&a1_);
  a2_ = conv2_.Forward(a1_);
  skip_ = downsample_ ? downsample_->Forward(input) : input;
  out_ = a2_;
  out_.Add(skip_);
  ReluInPlace(&out_);
  return out_;
}

Tensor3 TCNBlock::Backward(const Tensor3& grad_output) {
  Tensor3 g = grad_output;
  ReluBackward(out_, &g);
  // Branch into conv path and skip path.
  Tensor3 g2 = conv2_.Backward(g);
  ReluBackward(a1_, &g2);
  Tensor3 dx = conv1_.Backward(g2);
  if (downsample_) {
    Tensor3 dskip = downsample_->Backward(g);
    dx.Add(dskip);
  } else {
    dx.Add(g);
  }
  return dx;
}

std::vector<Param> TCNBlock::Params() {
  std::vector<Param> out = conv1_.Params();
  for (Param& p : conv2_.Params()) out.push_back(p);
  if (downsample_) {
    for (Param& p : downsample_->Params()) out.push_back(p);
  }
  return out;
}

}  // namespace dbaugur::nn

#include "nn/conv1d.h"

#include <cmath>

#include "common/contracts.h"
#include "nn/init.h"

namespace dbaugur::nn {

CausalConv1D::CausalConv1D(size_t in_channels, size_t out_channels,
                           size_t kernel, size_t dilation, Rng* rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      dilation_(dilation),
      w_(out_channels, in_channels * kernel),
      b_(1, out_channels),
      dw_(out_channels, in_channels * kernel),
      db_(1, out_channels) {
  DBAUGUR_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 &&
                    dilation > 0,
                "CausalConv1D needs positive dims, got in=", in_channels,
                " out=", out_channels, " kernel=", kernel,
                " dilation=", dilation);
  double limit =
      std::sqrt(6.0 / static_cast<double>(in_channels * kernel + out_channels));
  UniformInit(&w_, rng, limit);
}

void CausalConv1D::BuildColMatrix() {
  const size_t batch = input_.batch();
  const size_t time = input_.time();
  col_.Resize(batch * time, in_ch_ * kernel_);
  for (size_t bi = 0; bi < batch; ++bi) {
    for (size_t ci = 0; ci < in_ch_; ++ci) {
      const double* ilane = input_.lane(bi, ci);
      for (size_t j = 0; j < kernel_; ++j) {
        const size_t shift = (kernel_ - 1 - j) * dilation_;
        const size_t c = ci * kernel_ + j;
        double* base = col_.data() + bi * time * col_.cols() + c;
        const size_t stride = col_.cols();
        size_t t = 0;
        for (; t < shift && t < time; ++t) base[t * stride] = 0.0;
        for (; t < time; ++t) base[t * stride] = ilane[t - shift];
      }
    }
  }
}

const Tensor3& CausalConv1D::Forward(const Tensor3& input) {
  DBAUGUR_CHECK_EQ(input.channels(), in_ch_,
                   "CausalConv1D::Forward channel count");
  input_ = input;
  const size_t batch = input.batch();
  const size_t time = input.time();
  // im2col: one GEMM against w_ replaces the per-tap scalar loops (and the
  // branchy zero-weight skip) of the direct convolution.
  BuildColMatrix();
  out_mat_.Resize(batch * time, out_ch_);
  const double* bias = b_.data();
  for (size_t r = 0, n = out_mat_.rows(); r < n; ++r) {
    double* orow = out_mat_.row(r);
    for (size_t co = 0; co < out_ch_; ++co) orow[co] = bias[co];
  }
  out_mat_.AddMatMulTranspose(col_, w_);  // [B*T, OC] += col * w^T
  out_.Resize(batch, out_ch_, time);
  for (size_t bi = 0; bi < batch; ++bi) {
    for (size_t co = 0; co < out_ch_; ++co) {
      double* olane = out_.lane(bi, co);
      const double* src = out_mat_.data() + bi * time * out_ch_ + co;
      for (size_t t = 0; t < time; ++t) olane[t] = src[t * out_ch_];
    }
  }
  return out_;
}

const Tensor3& CausalConv1D::Backward(const Tensor3& grad_output) {
  const size_t batch = input_.batch();
  const size_t time = input_.time();
  DBAUGUR_CHECK(grad_output.batch() == batch &&
                    grad_output.channels() == out_ch_ &&
                    grad_output.time() == time,
                "CausalConv1D::Backward gradient shape ", grad_output.batch(),
                "x", grad_output.channels(), "x", grad_output.time(),
                " does not match forward output ", batch, "x", out_ch_, "x",
                time);
  // Gather grad_output into [B*T, OC] so dw/db/dcol are single fused passes.
  go_mat_.Resize(batch * time, out_ch_);
  for (size_t bi = 0; bi < batch; ++bi) {
    for (size_t co = 0; co < out_ch_; ++co) {
      const double* glane = grad_output.lane(bi, co);
      double* dst = go_mat_.data() + bi * time * out_ch_ + co;
      for (size_t t = 0; t < time; ++t) dst[t * out_ch_] = glane[t];
    }
  }
  db_.AddColSumOf(go_mat_);
  dw_.AddTransposeMatMul(go_mat_, col_);  // [OC, IC*K] += go^T * col
  dcol_.MatMulInto(go_mat_, w_);          // [B*T, IC*K]
  // Scatter-add dcol back through the im2col gather (skipping the zero pad).
  dx_.Resize(batch, in_ch_, time);
  dx_.Fill(0.0);
  const size_t stride = dcol_.cols();
  for (size_t bi = 0; bi < batch; ++bi) {
    for (size_t ci = 0; ci < in_ch_; ++ci) {
      double* dxlane = dx_.lane(bi, ci);
      for (size_t j = 0; j < kernel_; ++j) {
        const size_t shift = (kernel_ - 1 - j) * dilation_;
        const double* base = dcol_.data() + bi * time * stride + ci * kernel_ + j;
        for (size_t t = shift; t < time; ++t) {
          dxlane[t - shift] += base[t * stride];
        }
      }
    }
  }
  return dx_;
}

std::vector<Param> CausalConv1D::Params() {
  return {{&w_, &dw_, "conv.w"}, {&b_, &db_, "conv.b"}};
}

namespace {
void ReluInPlace(Tensor3* t) {
  t->Apply([](double x) { return x > 0.0 ? x : 0.0; });
}

// Zeroes grad entries where the forward activation was clipped.
void ReluBackward(const Tensor3& activated, Tensor3* grad) {
  for (size_t b = 0; b < grad->batch(); ++b) {
    for (size_t c = 0; c < grad->channels(); ++c) {
      const double* alane = activated.lane(b, c);
      double* glane = grad->lane(b, c);
      for (size_t t = 0; t < grad->time(); ++t) {
        if (alane[t] <= 0.0) glane[t] = 0.0;
      }
    }
  }
}
}  // namespace

TCNBlock::TCNBlock(size_t in_channels, size_t channels, size_t kernel,
                   size_t dilation, Rng* rng)
    : conv1_(in_channels, channels, kernel, dilation, rng),
      conv2_(channels, channels, kernel, dilation, rng) {
  if (in_channels != channels) {
    downsample_ =
        std::make_unique<CausalConv1D>(in_channels, channels, 1, 1, rng);
  }
}

const Tensor3& TCNBlock::Forward(const Tensor3& input) {
  a1_ = conv1_.Forward(input);
  ReluInPlace(&a1_);
  a2_ = conv2_.Forward(a1_);
  skip_ = downsample_ ? downsample_->Forward(input) : input;
  out_ = a2_;
  out_.Add(skip_);
  ReluInPlace(&out_);
  return out_;
}

const Tensor3& TCNBlock::Backward(const Tensor3& grad_output) {
  g_ = grad_output;
  ReluBackward(out_, &g_);
  // Branch into conv path and skip path. The conv results are copied into
  // block-owned workspaces because each conv reuses its own on the next call.
  g2_ = conv2_.Backward(g_);
  ReluBackward(a1_, &g2_);
  dx_ = conv1_.Backward(g2_);
  if (downsample_) {
    dx_.Add(downsample_->Backward(g_));
  } else {
    dx_.Add(g_);
  }
  return dx_;
}

std::vector<Param> TCNBlock::Params() {
  std::vector<Param> out = conv1_.Params();
  for (Param& p : conv2_.Params()) out.push_back(p);
  if (downsample_) {
    for (Param& p : downsample_->Params()) out.push_back(p);
  }
  return out;
}

}  // namespace dbaugur::nn

// Causal dilated 1-D convolution and the TCN residual block (Bai et al. 2018).
//
// The TCN baseline stacks residual blocks with dilations 1, 2, 4, 8, 16 so the
// receptive field covers the whole condition window — the paper's "global
// view" model for long-term patterns.

#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/layer.h"
#include "nn/matrix.h"

namespace dbaugur::nn {

/// Causal dilated conv: out(b,co,t) = bias[co] +
///   sum_ci sum_j w[co][ci][j] * in(b, ci, t - (k-1-j)*dilation)
/// with implicit zero left-padding, so output length == input length and no
/// future leakage.
class CausalConv1D {
 public:
  CausalConv1D(size_t in_channels, size_t out_channels, size_t kernel,
               size_t dilation, Rng* rng);

  /// Returns a layer-owned workspace valid until the next Forward call;
  /// steady-state calls with the same shapes do not touch the heap.
  const Tensor3& Forward(const Tensor3& input);
  /// Accumulates parameter gradients, returns dLoss/dInput (layer-owned
  /// workspace, valid until the next Backward call).
  const Tensor3& Backward(const Tensor3& grad_output);

  std::vector<Param> Params();

  size_t in_channels() const { return in_ch_; }
  size_t out_channels() const { return out_ch_; }
  size_t kernel() const { return kernel_; }
  size_t dilation() const { return dilation_; }

 private:
  /// Unrolls input_ into col_ ([batch*time, in_ch*kernel]) so forward and
  /// both backward products become single GEMM calls (im2col).
  void BuildColMatrix();

  size_t in_ch_, out_ch_, kernel_, dilation_;
  Matrix w_;   // [out_ch, in_ch * kernel]
  Matrix b_;   // [1, out_ch]
  Matrix dw_, db_;
  Tensor3 input_;  // cached

  // Persistent workspaces (capacity survives across calls).
  Matrix col_;      // im2col unrolled input [batch*time, in_ch*kernel]
  Matrix out_mat_;  // forward product [batch*time, out_ch]
  Matrix go_mat_;   // gathered grad_output [batch*time, out_ch]
  Matrix dcol_;     // grad wrt col_ [batch*time, in_ch*kernel]
  Tensor3 out_;     // forward result
  Tensor3 dx_;      // backward result
};

/// TCN residual block: relu(conv2(relu(conv1(x))) + downsample(x)) where
/// downsample is a 1x1 conv when the channel count changes, identity
/// otherwise.
class TCNBlock {
 public:
  TCNBlock(size_t in_channels, size_t channels, size_t kernel, size_t dilation,
           Rng* rng);

  /// Workspace-returning, like CausalConv1D::Forward/Backward.
  const Tensor3& Forward(const Tensor3& input);
  const Tensor3& Backward(const Tensor3& grad_output);
  std::vector<Param> Params();

 private:
  CausalConv1D conv1_;
  CausalConv1D conv2_;
  std::unique_ptr<CausalConv1D> downsample_;  // null => identity skip
  Tensor3 a1_, a2_, skip_, out_;              // cached activations
  Tensor3 g_, g2_, dx_;                       // backward workspaces
};

}  // namespace dbaugur::nn

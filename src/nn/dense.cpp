#include "nn/dense.h"

#include <cmath>

#include "common/contracts.h"
#include "common/math_utils.h"
#include "nn/init.h"

namespace dbaugur::nn {

void ApplyActivation(Activation act, Matrix* m) {
  switch (act) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      m->Apply([](double x) { return x > 0.0 ? x : 0.0; });
      return;
    case Activation::kTanh:
      m->Apply([](double x) { return std::tanh(x); });
      return;
    case Activation::kSigmoid:
      m->Apply([](double x) { return Sigmoid(x); });
      return;
  }
}

void ApplyActivationGrad(Activation act, const Matrix& pre, const Matrix& post,
                         Matrix* grad) {
  DBAUGUR_CHECK(grad->SameShape(pre) && grad->SameShape(post),
                "ApplyActivationGrad shape mismatch");
  const size_t n = grad->size();
  const double* z = pre.data();
  const double* y = post.data();
  double* g = grad->data();
  switch (act) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (size_t i = 0; i < n; ++i) {
        if (z[i] <= 0.0) g[i] = 0.0;
      }
      return;
    case Activation::kTanh:
      for (size_t i = 0; i < n; ++i) g[i] *= 1.0 - y[i] * y[i];
      return;
    case Activation::kSigmoid:
      for (size_t i = 0; i < n; ++i) g[i] *= y[i] * (1.0 - y[i]);
      return;
  }
}

Dense::Dense(size_t in, size_t out, Activation act, Rng* rng)
    : in_(in), out_(out), act_(act), w_(in, out), b_(1, out),
      dw_(in, out), db_(1, out) {
  DBAUGUR_CHECK(in > 0 && out > 0, "Dense layer needs positive dims, got ", in,
                "x", out);
  XavierInit(&w_, rng);
}

const Matrix& Dense::Forward(const Matrix& input) {
  DBAUGUR_CHECK_EQ(input.cols(), in_, "Dense::Forward input width");
  input_ = input;
  pre_act_.MatMulInto(input_, w_);
  pre_act_.AddRowVector(b_);
  output_ = pre_act_;
  ApplyActivation(act_, &output_);
  return output_;
}

const Matrix& Dense::Backward(const Matrix& grad_output) {
  DBAUGUR_CHECK(grad_output.SameShape(output_),
                "Dense::Backward gradient shape ", grad_output.rows(), "x",
                grad_output.cols(), " does not match forward output ",
                output_.rows(), "x", output_.cols());
  g_ = grad_output;
  ApplyActivationGrad(act_, pre_act_, output_, &g_);
  dw_.AddTransposeMatMul(input_, g_);
  db_.AddColSumOf(g_);
  dx_.MatMulTransposeInto(g_, w_);
  return dx_;
}

std::vector<Param> Dense::Params() {
  return {{&w_, &dw_, "dense.w"}, {&b_, &db_, "dense.b"}};
}

}  // namespace dbaugur::nn

#include "nn/dense.h"

#include <cmath>

#include "common/contracts.h"
#include "common/math_utils.h"
#include "nn/init.h"

namespace dbaugur::nn {

template <typename T>
void ApplyActivation(Activation act, MatrixT<T>* m) {
  switch (act) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      m->Apply([](T x) { return x > T(0) ? x : T(0); });
      return;
    case Activation::kTanh:
      m->Apply([](T x) { return std::tanh(x); });
      return;
    case Activation::kSigmoid:
      m->Apply([](T x) { return Sigmoid(x); });
      return;
  }
}

template <typename T>
void ApplyActivationGrad(Activation act, const MatrixT<T>& pre,
                         const MatrixT<T>& post, MatrixT<T>* grad) {
  DBAUGUR_CHECK(grad->SameShape(pre) && grad->SameShape(post),
                "ApplyActivationGrad shape mismatch");
  const size_t n = grad->size();
  const T* z = pre.data();
  const T* y = post.data();
  T* g = grad->data();
  switch (act) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (size_t i = 0; i < n; ++i) {
        if (z[i] <= T(0)) g[i] = T(0);
      }
      return;
    case Activation::kTanh:
      for (size_t i = 0; i < n; ++i) g[i] *= T(1) - y[i] * y[i];
      return;
    case Activation::kSigmoid:
      for (size_t i = 0; i < n; ++i) g[i] *= y[i] * (T(1) - y[i]);
      return;
  }
}

template <typename T>
DenseT<T>::DenseT(size_t in, size_t out, Activation act, Rng* rng)
    : in_(in), out_(out), act_(act), w_(in, out), b_(1, out),
      dw_(in, out), db_(1, out) {
  DBAUGUR_CHECK(in > 0 && out > 0, "Dense layer needs positive dims, got ", in,
                "x", out);
  XavierInit(&w_, rng);
}

template <typename T>
const MatrixT<T>& DenseT<T>::Forward(const MatrixT<T>& input) {
  DBAUGUR_CHECK_EQ(input.cols(), in_, "Dense::Forward input width");
  input_ = input;
  pre_act_.MatMulInto(input_, w_);
  pre_act_.AddRowVector(b_);
  output_ = pre_act_;
  ApplyActivation(act_, &output_);
  return output_;
}

template <typename T>
const MatrixT<T>& DenseT<T>::Backward(const MatrixT<T>& grad_output) {
  DBAUGUR_CHECK(grad_output.SameShape(output_),
                "Dense::Backward gradient shape ", grad_output.rows(), "x",
                grad_output.cols(), " does not match forward output ",
                output_.rows(), "x", output_.cols());
  g_ = grad_output;
  ApplyActivationGrad(act_, pre_act_, output_, &g_);
  dw_.AddTransposeMatMul(input_, g_);
  db_.AddColSumOf(g_);
  dx_.MatMulTransposeInto(g_, w_);
  return dx_;
}

template <typename T>
std::vector<ParamT<T>> DenseT<T>::Params() {
  return {{&w_, &dw_, "dense.w"}, {&b_, &db_, "dense.b"}};
}

template class DenseT<double>;
template class DenseT<float>;

template void ApplyActivation<double>(Activation, Matrix*);
template void ApplyActivation<float>(Activation, MatrixF*);
template void ApplyActivationGrad<double>(Activation, const Matrix&,
                                          const Matrix&, Matrix*);
template void ApplyActivationGrad<float>(Activation, const MatrixF&,
                                         const MatrixF&, MatrixF*);

}  // namespace dbaugur::nn

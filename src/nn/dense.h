// Fully connected layer with optional fused activation.

#pragma once

#include "common/rng.h"
#include "nn/layer.h"

namespace dbaugur::nn {

/// Supported activations for Dense.
enum class Activation { kIdentity, kRelu, kTanh, kSigmoid };

/// y = act(x W + b); W is (in x out), b is (1 x out).
class Dense : public Layer {
 public:
  Dense(size_t in, size_t out, Activation act, Rng* rng);

  const Matrix& Forward(const Matrix& input) override;
  const Matrix& Backward(const Matrix& grad_output) override;
  std::vector<Param> Params() override;

  size_t in_features() const { return in_; }
  size_t out_features() const { return out_; }
  const Matrix& weight() const { return w_; }
  const Matrix& bias() const { return b_; }

 private:
  size_t in_;
  size_t out_;
  Activation act_;
  Matrix w_, b_;
  Matrix dw_, db_;
  Matrix input_;       // cached for backward
  Matrix pre_act_;     // cached pre-activation (z)
  Matrix output_;      // cached post-activation
  Matrix g_;           // workspace: activation-scaled upstream gradient
  Matrix dx_;          // workspace: returned input gradient
};

/// Applies the activation in place and returns the result.
void ApplyActivation(Activation act, Matrix* m);

/// Given z (pre-activation) and y (post-activation), multiplies `grad` by the
/// activation derivative element-wise.
void ApplyActivationGrad(Activation act, const Matrix& pre, const Matrix& post,
                         Matrix* grad);

}  // namespace dbaugur::nn

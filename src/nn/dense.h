// Fully connected layer with optional fused activation.

#pragma once

#include "common/rng.h"
#include "nn/layer.h"

namespace dbaugur::nn {

/// Supported activations for Dense.
enum class Activation { kIdentity, kRelu, kTanh, kSigmoid };

/// y = act(x W + b); W is (in x out), b is (1 x out).
template <typename T>
class DenseT : public LayerT<T> {
 public:
  DenseT(size_t in, size_t out, Activation act, Rng* rng);

  const MatrixT<T>& Forward(const MatrixT<T>& input) override;
  const MatrixT<T>& Backward(const MatrixT<T>& grad_output) override;
  std::vector<ParamT<T>> Params() override;

  size_t in_features() const { return in_; }
  size_t out_features() const { return out_; }
  const MatrixT<T>& weight() const { return w_; }
  const MatrixT<T>& bias() const { return b_; }

 private:
  size_t in_;
  size_t out_;
  Activation act_;
  MatrixT<T> w_, b_;
  MatrixT<T> dw_, db_;
  MatrixT<T> input_;       // cached for backward
  MatrixT<T> pre_act_;     // cached pre-activation (z)
  MatrixT<T> output_;      // cached post-activation
  MatrixT<T> g_;           // workspace: activation-scaled upstream gradient
  MatrixT<T> dx_;          // workspace: returned input gradient
};

extern template class DenseT<double>;
extern template class DenseT<float>;

using Dense = DenseT<double>;
using DenseF = DenseT<float>;

/// Applies the activation in place and returns the result.
template <typename T>
void ApplyActivation(Activation act, MatrixT<T>* m);

/// Given z (pre-activation) and y (post-activation), multiplies `grad` by the
/// activation derivative element-wise.
template <typename T>
void ApplyActivationGrad(Activation act, const MatrixT<T>& pre,
                         const MatrixT<T>& post, MatrixT<T>* grad);

extern template void ApplyActivation<double>(Activation, Matrix*);
extern template void ApplyActivation<float>(Activation, MatrixF*);
extern template void ApplyActivationGrad<double>(Activation, const Matrix&,
                                                 const Matrix&, Matrix*);
extern template void ApplyActivationGrad<float>(Activation, const MatrixF&,
                                                const MatrixF&, MatrixF*);

}  // namespace dbaugur::nn

#include "nn/gemm.h"

#include <algorithm>
#include <type_traits>

#include "common/simd.h"
#include "common/thread_pool.h"
#include "nn/simd_kernels.h"

namespace dbaugur::nn {
namespace {

ThreadPool* g_gemm_pool = nullptr;

// Minimum multiply-add count before a kernel is worth splitting across the
// pool; below this the ParallelFor handoff costs more than it saves.
constexpr size_t kParallelFlops = size_t{1} << 18;

// --------------------------------------------------------------------------
// Scalar tier: the PR-3 register-tiled kernels, verbatim but templated on the
// element type (the double instantiation is token-identical to the original
// code, so the forced-scalar tier stays bit-identical to the PR-3 kernels).
// All three kernels are built from R x C register tiles: the R*C partial sums
// live in registers for the whole reduction, so C-matrix traffic drops from
// one load+store per multiply-add (the naive loops' bottleneck) to one
// load+store per *tile*. Each partial sum is still a single running
// accumulator over the ascending reduction index, so every output element
// sums in exactly the naive order — bit-identical results, any tile shape.
// R and C are template constants so the compiler fully unrolls the fixed
// loops and promotes acc[][] to registers.
// --------------------------------------------------------------------------

// R x C tile of c = [c +] a * b. `a` points at the tile's first row (stride
// k), `b` at the tile's first column (stride n), `c` at the tile origin.
template <typename T, size_t R, size_t C>
inline void NNTile(const T* a, const T* b, T* c, size_t k, size_t n,
                   bool accumulate) {
  T acc[R][C];
  for (size_t r = 0; r < R; ++r) {
    for (size_t j = 0; j < C; ++j) acc[r][j] = accumulate ? c[r * n + j] : T(0);
  }
  for (size_t kk = 0; kk < k; ++kk) {
    const T* br = b + kk * n;
    for (size_t r = 0; r < R; ++r) {
      const T av = a[r * k + kk];
      for (size_t j = 0; j < C; ++j) acc[r][j] += av * br[j];
    }
  }
  for (size_t r = 0; r < R; ++r) {
    for (size_t j = 0; j < C; ++j) c[r * n + j] = acc[r][j];
  }
}

// Rows [r0, r1) of c = [c +] a (m x k) * b (k x n).
template <typename T>
void GemmNNRowsScalar(size_t r0, size_t r1, size_t k, size_t n, const T* a,
                      const T* b, T* c, bool accumulate) {
  if (k < 8) {
    // Tiny reduction (e.g. the LSTM's 1-wide input projection): the register
    // tile's init/store overhead exceeds its k FMAs per element, so stream C
    // rows axpy-style instead. Still ascending-kk per element.
    for (size_t i = r0; i < r1; ++i) {
      T* cr = c + i * n;
      const T* ar = a + i * k;
      if (!accumulate) std::fill(cr, cr + n, T(0));
      for (size_t kk = 0; kk < k; ++kk) {
        const T av = ar[kk];
        const T* br = b + kk * n;
        for (size_t j = 0; j < n; ++j) cr[j] += av * br[j];
      }
    }
    return;
  }
  size_t i = r0;
  for (; i + 4 <= r1; i += 4) {
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      NNTile<T, 4, 4>(a + i * k, b + j, c + i * n + j, k, n, accumulate);
    }
    for (; j < n; ++j) {
      NNTile<T, 4, 1>(a + i * k, b + j, c + i * n + j, k, n, accumulate);
    }
  }
  for (; i < r1; ++i) {
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      NNTile<T, 1, 4>(a + i * k, b + j, c + i * n + j, k, n, accumulate);
    }
    for (; j < n; ++j) {
      NNTile<T, 1, 1>(a + i * k, b + j, c + i * n + j, k, n, accumulate);
    }
  }
}

// R x C tile of c = [c +] a * b^T. `a` points at the tile's first row (stride
// k), `b` at the first of C rows of b (each length k), `c` at the tile
// origin (stride p).
template <typename T, size_t R, size_t C>
inline void NTTile(const T* a, const T* b, T* c, size_t k, size_t p,
                   bool accumulate) {
  T acc[R][C];
  for (size_t r = 0; r < R; ++r) {
    for (size_t j = 0; j < C; ++j) acc[r][j] = T(0);
  }
  for (size_t kk = 0; kk < k; ++kk) {
    for (size_t r = 0; r < R; ++r) {
      const T av = a[r * k + kk];
      for (size_t j = 0; j < C; ++j) acc[r][j] += av * b[j * k + kk];
    }
  }
  for (size_t r = 0; r < R; ++r) {
    for (size_t j = 0; j < C; ++j) {
      if (accumulate) {
        c[r * p + j] += acc[r][j];
      } else {
        c[r * p + j] = acc[r][j];
      }
    }
  }
}

// Rows [r0, r1) of c = [c +] a (m x k) * b^T, b is (p x k).
template <typename T>
void GemmNTRowsScalar(size_t r0, size_t r1, size_t k, size_t p, const T* a,
                      const T* b, T* c, bool accumulate) {
  size_t i = r0;
  for (; i + 4 <= r1; i += 4) {
    size_t j = 0;
    for (; j + 4 <= p; j += 4) {
      NTTile<T, 4, 4>(a + i * k, b + j * k, c + i * p + j, k, p, accumulate);
    }
    for (; j < p; ++j) {
      NTTile<T, 4, 1>(a + i * k, b + j * k, c + i * p + j, k, p, accumulate);
    }
  }
  for (; i < r1; ++i) {
    size_t j = 0;
    for (; j + 4 <= p; j += 4) {
      NTTile<T, 1, 4>(a + i * k, b + j * k, c + i * p + j, k, p, accumulate);
    }
    for (; j < p; ++j) {
      NTTile<T, 1, 1>(a + i * k, b + j * k, c + i * p + j, k, p, accumulate);
    }
  }
}

// R x C tile of c = [c +] a^T * b, reducing over the m rows of a and b.
// `a` points at column kk0 of a's first row (stride k), `b` at column j0 of
// b's first row (stride n), `c` at the tile origin (stride n).
template <typename T, size_t R, size_t C>
inline void TNTile(const T* a, const T* b, T* c, size_t m, size_t k, size_t n,
                   bool accumulate) {
  T acc[R][C];
  for (size_t r = 0; r < R; ++r) {
    for (size_t j = 0; j < C; ++j) acc[r][j] = accumulate ? c[r * n + j] : T(0);
  }
  for (size_t i = 0; i < m; ++i) {
    const T* ar = a + i * k;
    const T* br = b + i * n;
    for (size_t r = 0; r < R; ++r) {
      const T av = ar[r];
      for (size_t j = 0; j < C; ++j) acc[r][j] += av * br[j];
    }
  }
  for (size_t r = 0; r < R; ++r) {
    for (size_t j = 0; j < C; ++j) c[r * n + j] = acc[r][j];
  }
}

// Rows [k0, k1) of c (k x n) = [c +] a^T * b; a is (m x k), b is (m x n).
template <typename T>
void GemmTNRowsScalar(size_t k0, size_t k1, size_t m, size_t k, size_t n,
                      const T* a, const T* b, T* c, bool accumulate) {
  size_t kk = k0;
  for (; kk + 4 <= k1; kk += 4) {
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      TNTile<T, 4, 4>(a + kk, b + j, c + kk * n + j, m, k, n, accumulate);
    }
    for (; j < n; ++j) {
      TNTile<T, 4, 1>(a + kk, b + j, c + kk * n + j, m, k, n, accumulate);
    }
  }
  for (; kk < k1; ++kk) {
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      TNTile<T, 1, 4>(a + kk, b + j, c + kk * n + j, m, k, n, accumulate);
    }
    for (; j < n; ++j) {
      TNTile<T, 1, 1>(a + kk, b + j, c + kk * n + j, m, k, n, accumulate);
    }
  }
}

// --------------------------------------------------------------------------
// Dispatch: one table of row-range kernels per element type, indexed by the
// runtime tier. The scalar tier is the templated PR-3 code above; vector
// tiers come from the per-ISA TUs declared in simd_kernels.h.
// --------------------------------------------------------------------------

template <typename T>
struct RowKernels {
  void (*nn)(size_t, size_t, size_t, size_t, const T*, const T*, T*, bool);
  void (*tn)(size_t, size_t, size_t, size_t, size_t, const T*, const T*, T*,
             bool);
  void (*nt)(size_t, size_t, size_t, size_t, const T*, const T*, T*, bool);
};

template <typename T>
constexpr RowKernels<T> kScalarKernels = {&GemmNNRowsScalar<T>,
                                          &GemmTNRowsScalar<T>,
                                          &GemmNTRowsScalar<T>};

template <typename T>
const RowKernels<T>& ActiveKernels() {
  switch (simd::ActiveTier()) {
#if defined(DBAUGUR_SIMD_HAS_AVX512)
    case simd::Tier::kAvx512: {
      if constexpr (std::is_same_v<T, double>) {
        static constexpr RowKernels<T> k = {&tier_avx512::GemmNNRowsD,
                                            &tier_avx512::GemmTNRowsD,
                                            &tier_avx512::GemmNTRowsD};
        return k;
      } else {
        static constexpr RowKernels<T> k = {&tier_avx512::GemmNNRowsF,
                                            &tier_avx512::GemmTNRowsF,
                                            &tier_avx512::GemmNTRowsF};
        return k;
      }
    }
#endif
#if defined(DBAUGUR_SIMD_HAS_AVX2)
    case simd::Tier::kAvx2: {
      if constexpr (std::is_same_v<T, double>) {
        static constexpr RowKernels<T> k = {&tier_avx2::GemmNNRowsD,
                                            &tier_avx2::GemmTNRowsD,
                                            &tier_avx2::GemmNTRowsD};
        return k;
      } else {
        static constexpr RowKernels<T> k = {&tier_avx2::GemmNNRowsF,
                                            &tier_avx2::GemmTNRowsF,
                                            &tier_avx2::GemmNTRowsF};
        return k;
      }
    }
#endif
#if defined(DBAUGUR_SIMD_HAS_SSE2)
    case simd::Tier::kSse2: {
      if constexpr (std::is_same_v<T, double>) {
        static constexpr RowKernels<T> k = {&tier_sse2::GemmNNRowsD,
                                            &tier_sse2::GemmTNRowsD,
                                            &tier_sse2::GemmNTRowsD};
        return k;
      } else {
        static constexpr RowKernels<T> k = {&tier_sse2::GemmNNRowsF,
                                            &tier_sse2::GemmTNRowsF,
                                            &tier_sse2::GemmNTRowsF};
        return k;
      }
    }
#endif
    default:
      return kScalarKernels<T>;
  }
}

// True when the kernel is large enough to fan out across `rows` output rows.
bool UsePool(size_t rows, size_t flops2) {
  return g_gemm_pool != nullptr && g_gemm_pool->size() > 1 && rows > 1 &&
         flops2 >= kParallelFlops;
}

size_t Grain(size_t rows) {
  return std::max<size_t>(1, rows / (4 * g_gemm_pool->size()));
}

template <typename T>
void GemmNNImpl(size_t m, size_t k, size_t n, const T* a, const T* b, T* c,
                bool accumulate) {
  const RowKernels<T>& kern = ActiveKernels<T>();
  if (UsePool(m, 2 * m * k * n)) {
    g_gemm_pool->ParallelFor(m, Grain(m), [&](size_t r0, size_t r1) {
      kern.nn(r0, r1, k, n, a, b, c, accumulate);
    });
  } else {
    kern.nn(0, m, k, n, a, b, c, accumulate);
  }
}

template <typename T>
void GemmTNImpl(size_t m, size_t k, size_t n, const T* a, const T* b, T* c,
                bool accumulate) {
  const RowKernels<T>& kern = ActiveKernels<T>();
  if (UsePool(k, 2 * m * k * n)) {
    g_gemm_pool->ParallelFor(k, Grain(k), [&](size_t k0, size_t k1) {
      kern.tn(k0, k1, m, k, n, a, b, c, accumulate);
    });
  } else {
    kern.tn(0, k, m, k, n, a, b, c, accumulate);
  }
}

template <typename T>
void GemmNTImpl(size_t m, size_t k, size_t p, const T* a, const T* b, T* c,
                bool accumulate) {
  const RowKernels<T>& kern = ActiveKernels<T>();
  if (UsePool(m, 2 * m * k * p)) {
    g_gemm_pool->ParallelFor(m, Grain(m), [&](size_t r0, size_t r1) {
      kern.nt(r0, r1, k, p, a, b, c, accumulate);
    });
  } else {
    kern.nt(0, m, k, p, a, b, c, accumulate);
  }
}

}  // namespace

void SetGemmThreadPool(ThreadPool* pool) { g_gemm_pool = pool; }

ThreadPool* GetGemmThreadPool() { return g_gemm_pool; }

void GemmNN(size_t m, size_t k, size_t n, const double* a, const double* b,
            double* c, bool accumulate) {
  GemmNNImpl(m, k, n, a, b, c, accumulate);
}

void GemmTN(size_t m, size_t k, size_t n, const double* a, const double* b,
            double* c, bool accumulate) {
  GemmTNImpl(m, k, n, a, b, c, accumulate);
}

void GemmNT(size_t m, size_t k, size_t p, const double* a, const double* b,
            double* c, bool accumulate) {
  GemmNTImpl(m, k, p, a, b, c, accumulate);
}

void GemmNN(size_t m, size_t k, size_t n, const float* a, const float* b,
            float* c, bool accumulate) {
  GemmNNImpl(m, k, n, a, b, c, accumulate);
}

void GemmTN(size_t m, size_t k, size_t n, const float* a, const float* b,
            float* c, bool accumulate) {
  GemmTNImpl(m, k, n, a, b, c, accumulate);
}

void GemmNT(size_t m, size_t k, size_t p, const float* a, const float* b,
            float* c, bool accumulate) {
  GemmNTImpl(m, k, p, a, b, c, accumulate);
}

}  // namespace dbaugur::nn

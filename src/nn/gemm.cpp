#include "nn/gemm.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace dbaugur::nn {
namespace {

ThreadPool* g_gemm_pool = nullptr;

// Minimum multiply-add count before a kernel is worth splitting across the
// pool; below this the ParallelFor handoff costs more than it saves.
constexpr size_t kParallelFlops = size_t{1} << 18;

// All three kernels are built from R x C register tiles: the R*C partial sums
// live in registers for the whole reduction, so C-matrix traffic drops from
// one load+store per multiply-add (the naive loops' bottleneck) to one
// load+store per *tile*. Each partial sum is still a single running
// accumulator over the ascending reduction index, so every output element
// sums in exactly the naive order — bit-identical results, any tile shape.
// R and C are template constants so the compiler fully unrolls the fixed
// loops and promotes acc[][] to registers.

// R x C tile of c = [c +] a * b. `a` points at the tile's first row (stride
// k), `b` at the tile's first column (stride n), `c` at the tile origin.
template <size_t R, size_t C>
inline void NNTile(const double* a, const double* b, double* c, size_t k,
                   size_t n, bool accumulate) {
  double acc[R][C];
  for (size_t r = 0; r < R; ++r) {
    for (size_t j = 0; j < C; ++j) acc[r][j] = accumulate ? c[r * n + j] : 0.0;
  }
  for (size_t kk = 0; kk < k; ++kk) {
    const double* br = b + kk * n;
    for (size_t r = 0; r < R; ++r) {
      const double av = a[r * k + kk];
      for (size_t j = 0; j < C; ++j) acc[r][j] += av * br[j];
    }
  }
  for (size_t r = 0; r < R; ++r) {
    for (size_t j = 0; j < C; ++j) c[r * n + j] = acc[r][j];
  }
}

// Rows [r0, r1) of c = [c +] a (m x k) * b (k x n).
void GemmNNRows(size_t r0, size_t r1, size_t k, size_t n, const double* a,
                const double* b, double* c, bool accumulate) {
  if (k < 8) {
    // Tiny reduction (e.g. the LSTM's 1-wide input projection): the register
    // tile's init/store overhead exceeds its k FMAs per element, so stream C
    // rows axpy-style instead. Still ascending-kk per element.
    for (size_t i = r0; i < r1; ++i) {
      double* cr = c + i * n;
      const double* ar = a + i * k;
      if (!accumulate) std::fill(cr, cr + n, 0.0);
      for (size_t kk = 0; kk < k; ++kk) {
        const double av = ar[kk];
        const double* br = b + kk * n;
        for (size_t j = 0; j < n; ++j) cr[j] += av * br[j];
      }
    }
    return;
  }
  size_t i = r0;
  for (; i + 4 <= r1; i += 4) {
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      NNTile<4, 4>(a + i * k, b + j, c + i * n + j, k, n, accumulate);
    }
    for (; j < n; ++j) {
      NNTile<4, 1>(a + i * k, b + j, c + i * n + j, k, n, accumulate);
    }
  }
  for (; i < r1; ++i) {
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      NNTile<1, 4>(a + i * k, b + j, c + i * n + j, k, n, accumulate);
    }
    for (; j < n; ++j) {
      NNTile<1, 1>(a + i * k, b + j, c + i * n + j, k, n, accumulate);
    }
  }
}

// R x C tile of c = [c +] a * b^T. `a` points at the tile's first row (stride
// k), `b` at the first of C rows of b (each length k), `c` at the tile
// origin (stride p).
template <size_t R, size_t C>
inline void NTTile(const double* a, const double* b, double* c, size_t k,
                   size_t p, bool accumulate) {
  double acc[R][C];
  for (size_t r = 0; r < R; ++r) {
    for (size_t j = 0; j < C; ++j) acc[r][j] = 0.0;
  }
  for (size_t kk = 0; kk < k; ++kk) {
    for (size_t r = 0; r < R; ++r) {
      const double av = a[r * k + kk];
      for (size_t j = 0; j < C; ++j) acc[r][j] += av * b[j * k + kk];
    }
  }
  for (size_t r = 0; r < R; ++r) {
    for (size_t j = 0; j < C; ++j) {
      if (accumulate) {
        c[r * p + j] += acc[r][j];
      } else {
        c[r * p + j] = acc[r][j];
      }
    }
  }
}

// Rows [r0, r1) of c = [c +] a (m x k) * b^T, b is (p x k).
void GemmNTRows(size_t r0, size_t r1, size_t k, size_t p, const double* a,
                const double* b, double* c, bool accumulate) {
  size_t i = r0;
  for (; i + 4 <= r1; i += 4) {
    size_t j = 0;
    for (; j + 4 <= p; j += 4) {
      NTTile<4, 4>(a + i * k, b + j * k, c + i * p + j, k, p, accumulate);
    }
    for (; j < p; ++j) {
      NTTile<4, 1>(a + i * k, b + j * k, c + i * p + j, k, p, accumulate);
    }
  }
  for (; i < r1; ++i) {
    size_t j = 0;
    for (; j + 4 <= p; j += 4) {
      NTTile<1, 4>(a + i * k, b + j * k, c + i * p + j, k, p, accumulate);
    }
    for (; j < p; ++j) {
      NTTile<1, 1>(a + i * k, b + j * k, c + i * p + j, k, p, accumulate);
    }
  }
}

// R x C tile of c = [c +] a^T * b, reducing over the m rows of a and b.
// `a` points at column kk0 of a's first row (stride k), `b` at column j0 of
// b's first row (stride n), `c` at the tile origin (stride n).
template <size_t R, size_t C>
inline void TNTile(const double* a, const double* b, double* c, size_t m,
                   size_t k, size_t n, bool accumulate) {
  double acc[R][C];
  for (size_t r = 0; r < R; ++r) {
    for (size_t j = 0; j < C; ++j) acc[r][j] = accumulate ? c[r * n + j] : 0.0;
  }
  for (size_t i = 0; i < m; ++i) {
    const double* ar = a + i * k;
    const double* br = b + i * n;
    for (size_t r = 0; r < R; ++r) {
      const double av = ar[r];
      for (size_t j = 0; j < C; ++j) acc[r][j] += av * br[j];
    }
  }
  for (size_t r = 0; r < R; ++r) {
    for (size_t j = 0; j < C; ++j) c[r * n + j] = acc[r][j];
  }
}

// Rows [k0, k1) of c (k x n) = [c +] a^T * b; a is (m x k), b is (m x n).
void GemmTNRows(size_t k0, size_t k1, size_t m, size_t k, size_t n,
                const double* a, const double* b, double* c, bool accumulate) {
  size_t kk = k0;
  for (; kk + 4 <= k1; kk += 4) {
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      TNTile<4, 4>(a + kk, b + j, c + kk * n + j, m, k, n, accumulate);
    }
    for (; j < n; ++j) {
      TNTile<4, 1>(a + kk, b + j, c + kk * n + j, m, k, n, accumulate);
    }
  }
  for (; kk < k1; ++kk) {
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      TNTile<1, 4>(a + kk, b + j, c + kk * n + j, m, k, n, accumulate);
    }
    for (; j < n; ++j) {
      TNTile<1, 1>(a + kk, b + j, c + kk * n + j, m, k, n, accumulate);
    }
  }
}

// True when the kernel is large enough to fan out across `rows` output rows.
bool UsePool(size_t rows, size_t flops2) {
  return g_gemm_pool != nullptr && g_gemm_pool->size() > 1 && rows > 1 &&
         flops2 >= kParallelFlops;
}

size_t Grain(size_t rows) {
  return std::max<size_t>(1, rows / (4 * g_gemm_pool->size()));
}

}  // namespace

void SetGemmThreadPool(ThreadPool* pool) { g_gemm_pool = pool; }

ThreadPool* GetGemmThreadPool() { return g_gemm_pool; }

void GemmNN(size_t m, size_t k, size_t n, const double* a, const double* b,
            double* c, bool accumulate) {
  if (UsePool(m, 2 * m * k * n)) {
    g_gemm_pool->ParallelFor(m, Grain(m), [&](size_t r0, size_t r1) {
      GemmNNRows(r0, r1, k, n, a, b, c, accumulate);
    });
  } else {
    GemmNNRows(0, m, k, n, a, b, c, accumulate);
  }
}

void GemmTN(size_t m, size_t k, size_t n, const double* a, const double* b,
            double* c, bool accumulate) {
  if (UsePool(k, 2 * m * k * n)) {
    g_gemm_pool->ParallelFor(k, Grain(k), [&](size_t k0, size_t k1) {
      GemmTNRows(k0, k1, m, k, n, a, b, c, accumulate);
    });
  } else {
    GemmTNRows(0, k, m, k, n, a, b, c, accumulate);
  }
}

void GemmNT(size_t m, size_t k, size_t p, const double* a, const double* b,
            double* c, bool accumulate) {
  if (UsePool(m, 2 * m * k * p)) {
    g_gemm_pool->ParallelFor(m, Grain(m), [&](size_t r0, size_t r1) {
      GemmNTRows(r0, r1, k, p, a, b, c, accumulate);
    });
  } else {
    GemmNTRows(0, m, k, p, a, b, c, accumulate);
  }
}
}  // namespace dbaugur::nn

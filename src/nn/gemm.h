// Register-blocked GEMM microkernels for the neural training hot path.
//
// Every kernel operates on fully-packed row-major buffers (leading dimension
// == column count) and comes in an overwrite (`accumulate == false`) and an
// accumulate (`accumulate == true`) flavor, so layer code can fuse the
// pervasive "grad.Add(a.TransposeMatMul(b))" pattern into one pass with no
// temporary matrix.
//
// Determinism contract (per dispatch tier — see common/simd.h and the README
// "SIMD kernels & runtime dispatch" section):
//
//  * Scalar tier (`DBAUGUR_SIMD=off`, non-x86 hosts): the PR-3 register-tiled
//    kernels, unchanged. For a fixed output element the floating-point
//    accumulation order is the same as the naive textbook loop (ascending
//    over the reduction index), independent of register blocking and of the
//    thread count, so results are bit-identical to nn::ref at any `threads`
//    setting. The only intended difference from the legacy kernels is the
//    removal of their `if (a == 0.0) continue` branch, which can flip the
//    sign of a ±0.0 result but nothing else.
//
//  * Vector tiers (sse2/avx2/avx512): NN and TN keep the ascending reduction
//    order per output element (they vectorize across output *columns*), so
//    they differ from the scalar tier only by FMA contraction — a few ULP.
//    NT vectorizes the reduction itself with W-wide partial sums and a
//    horizontal reduce, which reassociates the sum; tests bound the error at
//    a documented ULP tolerance. All tiers remain thread-count independent
//    (parallelism still only partitions output rows).
//
// The pre-PR naive kernels are retained under nn::ref as the ground truth for
// equivalence tests and as the baseline timed by bench/nn_kernels.

#pragma once

#include <cstddef>

namespace dbaugur {
class ThreadPool;
}

namespace dbaugur::nn {

/// Installs the pool used to split large GEMMs by output-row block. nullptr
/// (the default) or a pool of size 1 runs every kernel inline on the calling
/// thread. The pool is borrowed, not owned; callers must keep it alive until
/// they reset it. Not thread-safe against concurrent GEMM calls.
void SetGemmThreadPool(ThreadPool* pool);
ThreadPool* GetGemmThreadPool();

/// c (m x n) = [c +] a (m x k) * b (k x n).
void GemmNN(size_t m, size_t k, size_t n, const double* a, const double* b,
            double* c, bool accumulate);

/// c (k x n) = [c +] a^T * b, where a is (m x k) and b is (m x n).
void GemmTN(size_t m, size_t k, size_t n, const double* a, const double* b,
            double* c, bool accumulate);

/// c (m x p) = [c +] a (m x k) * b^T, where b is (p x k).
void GemmNT(size_t m, size_t k, size_t p, const double* a, const double* b,
            double* c, bool accumulate);

/// f32 twins of the three kernels, for the per-model f32 training path.
/// Same tiling, dispatch, pooling, and determinism contract at f32 width
/// (twice the lanes per vector on every tier).
void GemmNN(size_t m, size_t k, size_t n, const float* a, const float* b,
            float* c, bool accumulate);
void GemmTN(size_t m, size_t k, size_t n, const float* a, const float* b,
            float* c, bool accumulate);
void GemmNT(size_t m, size_t k, size_t p, const float* a, const float* b,
            float* c, bool accumulate);

namespace ref {

// Verbatim pre-PR kernels (naive loops, zero-skip branch, fresh allocation
// per call in their Matrix wrappers). Used by tests to pin the fused kernels
// and by bench/nn_kernels to measure the speedup against the old code path.

/// c (m x n) += a * b with the legacy `a == 0.0` skip.
void MatMul(size_t m, size_t k, size_t n, const double* a, const double* b,
            double* c);
/// c (k x n) += a^T * b with the legacy skip; a is (m x k), b is (m x n).
void TransposeMatMul(size_t m, size_t k, size_t n, const double* a,
                     const double* b, double* c);
/// c (m x p) = a * b^T (dot-product form, no skip); b is (p x k).
void MatMulTranspose(size_t m, size_t k, size_t p, const double* a,
                     const double* b, double* c);

}  // namespace ref

}  // namespace dbaugur::nn

// Verbatim pre-PR naive GEMM kernels (see nn/gemm.h). Kept in their own
// translation unit so they are compiled with the repo's stock Release flags:
// they are the measurement baseline for bench/nn_kernels and must not pick up
// the -O3 tuning applied to the fused kernels in gemm.cpp.

#include "nn/gemm.h"

namespace dbaugur::nn::ref {

void MatMul(size_t m, size_t k, size_t n, const double* a, const double* b,
            double* c) {
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (size_t kk = 0; kk < k; ++kk) {
      double av = arow[kk];
      if (av == 0.0) continue;
      const double* brow = b + kk * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void TransposeMatMul(size_t m, size_t k, size_t n, const double* a,
                     const double* b, double* c) {
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    const double* brow = b + i * n;
    for (size_t kk = 0; kk < k; ++kk) {
      double av = arow[kk];
      if (av == 0.0) continue;
      double* crow = c + kk * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTranspose(size_t m, size_t k, size_t p, const double* a,
                     const double* b, double* c) {
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * p;
    for (size_t j = 0; j < p; ++j) {
      const double* brow = b + j * k;
      double s = 0.0;
      for (size_t kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
      crow[j] = s;
    }
  }
}

}  // namespace dbaugur::nn::ref

// Weight initialization helpers.

#pragma once

#include <cmath>

#include "common/rng.h"
#include "nn/matrix.h"

namespace dbaugur::nn {

/// Xavier/Glorot uniform initialization for a (fan_in x fan_out) weight.
inline void XavierInit(Matrix* w, Rng* rng) {
  double fan_in = static_cast<double>(w->rows());
  double fan_out = static_cast<double>(w->cols());
  double limit = std::sqrt(6.0 / (fan_in + fan_out));
  for (size_t i = 0; i < w->rows(); ++i) {
    for (size_t j = 0; j < w->cols(); ++j) {
      (*w)(i, j) = rng->Uniform(-limit, limit);
    }
  }
}

/// Uniform init with explicit limit (conv kernels where fan-in differs from
/// the matrix shape).
inline void UniformInit(Matrix* w, Rng* rng, double limit) {
  for (size_t i = 0; i < w->rows(); ++i) {
    for (size_t j = 0; j < w->cols(); ++j) {
      (*w)(i, j) = rng->Uniform(-limit, limit);
    }
  }
}

}  // namespace dbaugur::nn

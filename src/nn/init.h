// Weight initialization helpers.
//
// Both helpers draw from the RNG in double and cast to the matrix element
// type, so an f32 model initialized from a given seed holds exactly the
// rounded values of its f64 twin (and consumes the same RNG stream).

#pragma once

#include <cmath>

#include "common/rng.h"
#include "nn/matrix.h"

namespace dbaugur::nn {

/// Xavier/Glorot uniform initialization for a (fan_in x fan_out) weight.
template <typename T>
inline void XavierInit(MatrixT<T>* w, Rng* rng) {
  double fan_in = static_cast<double>(w->rows());
  double fan_out = static_cast<double>(w->cols());
  double limit = std::sqrt(6.0 / (fan_in + fan_out));
  for (size_t i = 0; i < w->rows(); ++i) {
    for (size_t j = 0; j < w->cols(); ++j) {
      (*w)(i, j) = static_cast<T>(rng->Uniform(-limit, limit));
    }
  }
}

/// Uniform init with explicit limit (conv kernels where fan-in differs from
/// the matrix shape).
template <typename T>
inline void UniformInit(MatrixT<T>* w, Rng* rng, double limit) {
  for (size_t i = 0; i < w->rows(); ++i) {
    for (size_t j = 0; j < w->cols(); ++j) {
      (*w)(i, j) = static_cast<T>(rng->Uniform(-limit, limit));
    }
  }
}

}  // namespace dbaugur::nn

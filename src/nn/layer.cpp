#include "nn/layer.h"

#include <cmath>

namespace dbaugur::nn {

template <typename T>
void ClipGradNorm(std::vector<ParamT<T>>& params, double max_norm) {
  if (max_norm <= 0.0) return;
  double total = 0.0;
  for (ParamT<T>& p : params) total += p.grad->SquaredNorm();
  double norm = std::sqrt(total);
  if (norm <= max_norm || norm == 0.0) return;
  double scale = max_norm / norm;
  for (ParamT<T>& p : params) p.grad->Scale(static_cast<T>(scale));
}

template void ClipGradNorm<double>(std::vector<Param>&, double);
template void ClipGradNorm<float>(std::vector<ParamF>&, double);

}  // namespace dbaugur::nn

#include "nn/layer.h"

#include <cmath>

namespace dbaugur::nn {

void ClipGradNorm(std::vector<Param>& params, double max_norm) {
  if (max_norm <= 0.0) return;
  double total = 0.0;
  for (Param& p : params) total += p.grad->SquaredNorm();
  double norm = std::sqrt(total);
  if (norm <= max_norm || norm == 0.0) return;
  double scale = max_norm / norm;
  for (Param& p : params) p.grad->Scale(scale);
}

}  // namespace dbaugur::nn

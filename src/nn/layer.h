// Layer and parameter abstractions for the hand-rolled NN substrate.
//
// Layers own their parameters and accumulated gradients. Training code calls
// Forward, then Backward with the loss gradient, then hands the layer's
// parameter list to an Optimizer. Gradients accumulate across Backward calls
// until ZeroGrad().

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/matrix.h"

namespace dbaugur::nn {

/// A trainable parameter: value plus its gradient accumulator.
struct Param {
  Matrix* value = nullptr;
  Matrix* grad = nullptr;
  std::string name;
};

/// Base class for layers mapping [batch, in] -> [batch, out].
///
/// Forward/Backward return references to layer-owned workspaces so a
/// steady-state training step performs no heap allocation inside layer code;
/// the referenced matrix stays valid until the next call on the same layer.
/// Callers that need the value beyond that must copy it.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the output and caches whatever Backward needs.
  virtual const Matrix& Forward(const Matrix& input) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput. Must be called after Forward on the same input.
  virtual const Matrix& Backward(const Matrix& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param> Params() { return {}; }

  /// Resets accumulated gradients to zero.
  void ZeroGrad() {
    for (Param& p : Params()) p.grad->Fill(0.0);
  }

  /// Total number of scalar parameters.
  int64_t ParameterCount() {
    int64_t n = 0;
    for (Param& p : Params()) n += static_cast<int64_t>(p.value->size());
    return n;
  }
};

/// Clips every gradient in `params` so the global L2 norm is at most
/// `max_norm` (no-op if already within bounds). Guards LSTM training against
/// exploding gradients.
void ClipGradNorm(std::vector<Param>& params, double max_norm);

}  // namespace dbaugur::nn

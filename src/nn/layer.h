// Layer and parameter abstractions for the hand-rolled NN substrate.
//
// Layers own their parameters and accumulated gradients. Training code calls
// Forward, then Backward with the loss gradient, then hands the layer's
// parameter list to an Optimizer. Gradients accumulate across Backward calls
// until ZeroGrad().
//
// Everything is templated on the element type (double or float) so the same
// training loops run at either precision; `Param`/`Layer` are the f64
// aliases the bulk of the codebase uses, `ParamF`/`LayerF` the f32 twins.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/matrix.h"

namespace dbaugur::nn {

/// A trainable parameter: value plus its gradient accumulator.
template <typename T>
struct ParamT {
  MatrixT<T>* value = nullptr;
  MatrixT<T>* grad = nullptr;
  std::string name;
};

using Param = ParamT<double>;
using ParamF = ParamT<float>;

/// Base class for layers mapping [batch, in] -> [batch, out].
///
/// Forward/Backward return references to layer-owned workspaces so a
/// steady-state training step performs no heap allocation inside layer code;
/// the referenced matrix stays valid until the next call on the same layer.
/// Callers that need the value beyond that must copy it.
template <typename T>
class LayerT {
 public:
  virtual ~LayerT() = default;

  /// Computes the output and caches whatever Backward needs.
  virtual const MatrixT<T>& Forward(const MatrixT<T>& input) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput. Must be called after Forward on the same input.
  virtual const MatrixT<T>& Backward(const MatrixT<T>& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<ParamT<T>> Params() { return {}; }

  /// Resets accumulated gradients to zero.
  void ZeroGrad() {
    for (ParamT<T>& p : Params()) p.grad->Fill(T(0));
  }

  /// Total number of scalar parameters.
  int64_t ParameterCount() {
    int64_t n = 0;
    for (ParamT<T>& p : Params()) n += static_cast<int64_t>(p.value->size());
    return n;
  }
};

using Layer = LayerT<double>;
using LayerF = LayerT<float>;

/// Clips every gradient in `params` so the global L2 norm is at most
/// `max_norm` (no-op if already within bounds). Guards LSTM training against
/// exploding gradients. The norm is always computed in double (see
/// MatrixT::SquaredNorm) so both precisions clip at the same threshold.
template <typename T>
void ClipGradNorm(std::vector<ParamT<T>>& params, double max_norm);

extern template void ClipGradNorm<double>(std::vector<Param>&, double);
extern template void ClipGradNorm<float>(std::vector<ParamF>&, double);

}  // namespace dbaugur::nn

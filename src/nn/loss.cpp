#include "nn/loss.h"

#include <cmath>

#include "common/contracts.h"
#include "common/math_utils.h"

namespace dbaugur::nn {

namespace {

template <typename T>
double MSELossImpl(const MatrixT<T>& pred, const MatrixT<T>& target,
                   MatrixT<T>* grad) {
  DBAUGUR_CHECK(pred.SameShape(target), "MSELoss shape mismatch: ",
                pred.rows(), "x", pred.cols(), " vs ", target.rows(), "x",
                target.cols());
  DBAUGUR_CHECK_GT(pred.size(), 0u, "MSELoss on empty matrices");
  double n = static_cast<double>(pred.size());
  double loss = 0.0;
  if (grad != nullptr) grad->Resize(pred.rows(), pred.cols());
  for (size_t i = 0; i < pred.size(); ++i) {
    double d = static_cast<double>(pred.data()[i]) -
               static_cast<double>(target.data()[i]);
    loss += d * d;
    if (grad != nullptr) grad->data()[i] = static_cast<T>(2.0 * d / n);
  }
  return loss / n;
}

}  // namespace

double MSELoss(const Matrix& pred, const Matrix& target, Matrix* grad) {
  return MSELossImpl(pred, target, grad);
}

double MSELoss(const MatrixF& pred, const MatrixF& target, MatrixF* grad) {
  return MSELossImpl(pred, target, grad);
}

double BCEWithLogitsLoss(const Matrix& logits, const Matrix& target,
                         Matrix* grad) {
  DBAUGUR_CHECK(logits.SameShape(target), "BCEWithLogitsLoss shape mismatch: ",
                logits.rows(), "x", logits.cols(), " vs ", target.rows(), "x",
                target.cols());
  DBAUGUR_CHECK_GT(logits.size(), 0u, "BCEWithLogitsLoss on empty matrices");
  double n = static_cast<double>(logits.size());
  double loss = 0.0;
  if (grad != nullptr) grad->Resize(logits.rows(), logits.cols());
  for (size_t i = 0; i < logits.size(); ++i) {
    double z = logits.data()[i];
    double y = target.data()[i];
    // max(z,0) - z*y + log(1 + exp(-|z|))
    loss += std::max(z, 0.0) - z * y + std::log1p(std::exp(-std::fabs(z)));
    if (grad != nullptr) grad->data()[i] = (Sigmoid(z) - y) / n;
  }
  return loss / n;
}

double GeneratorGanLoss(const Matrix& fake_logits, Matrix* grad) {
  // -mean(log sigmoid(z)) ; d/dz = sigmoid(z) - 1.
  DBAUGUR_CHECK_GT(fake_logits.size(), 0u, "GeneratorGanLoss on empty matrix");
  double n = static_cast<double>(fake_logits.size());
  double loss = 0.0;
  if (grad != nullptr) grad->Resize(fake_logits.rows(), fake_logits.cols());
  for (size_t i = 0; i < fake_logits.size(); ++i) {
    double z = fake_logits.data()[i];
    // -log sigmoid(z) = log(1 + exp(-z)) computed stably.
    loss += std::max(-z, 0.0) + std::log1p(std::exp(-std::fabs(z)));
    if (grad != nullptr) grad->data()[i] = (Sigmoid(z) - 1.0) / n;
  }
  return loss / n;
}

double GeneratorGanLossSaturating(const Matrix& fake_logits, Matrix* grad) {
  // mean(log(1 - sigmoid(z))) = mean(-z - log(1+exp(-z)))... use stable form:
  // log(1 - sigmoid(z)) = -max(z,0) - log(1 + exp(-|z|)).
  // d/dz log(1 - sigmoid(z)) = -sigmoid(z).
  DBAUGUR_CHECK_GT(fake_logits.size(), 0u,
                   "GeneratorGanLossSaturating on empty matrix");
  double n = static_cast<double>(fake_logits.size());
  double loss = 0.0;
  if (grad != nullptr) grad->Resize(fake_logits.rows(), fake_logits.cols());
  for (size_t i = 0; i < fake_logits.size(); ++i) {
    double z = fake_logits.data()[i];
    loss += -std::max(z, 0.0) - std::log1p(std::exp(-std::fabs(z)));
    if (grad != nullptr) grad->data()[i] = -Sigmoid(z) / n;
  }
  return loss / n;
}

}  // namespace dbaugur::nn

// Loss functions: MSE for regression heads, logit-space binary cross-entropy
// for the WFGAN discriminator.

#pragma once

#include "nn/matrix.h"

namespace dbaugur::nn {

/// Mean squared error over all elements. `grad` (same shape as pred) receives
/// dLoss/dPred; pass nullptr to skip the gradient.
double MSELoss(const Matrix& pred, const Matrix& target, Matrix* grad);

/// f32 twin for the opt-in f32 training path. The loss and per-element
/// residuals are accumulated in double (only the stored gradient entries
/// round to float), so reported losses are comparable across precisions.
double MSELoss(const MatrixF& pred, const MatrixF& target, MatrixF* grad);

/// Numerically stable sigmoid binary cross-entropy taking *logits*.
/// target entries must be 0 or 1. `grad` receives dLoss/dLogit.
double BCEWithLogitsLoss(const Matrix& logits, const Matrix& target,
                         Matrix* grad);

/// Generator-side GAN loss: the *non-saturating* variant
/// -mean(log sigmoid(logit_fake)), which gives the generator strong gradients
/// early in training; `grad` receives dLoss/dLogit_fake.
double GeneratorGanLoss(const Matrix& fake_logits, Matrix* grad);

/// The paper's original saturating generator loss mean(log(1 - D(fake)))
/// (Eq. 5), exposed for the ablation bench. `grad` receives dLoss/dLogit.
double GeneratorGanLossSaturating(const Matrix& fake_logits, Matrix* grad);

}  // namespace dbaugur::nn

#include "nn/lstm.h"

#include <cmath>

#include "common/contracts.h"
#include "common/math_utils.h"
#include "nn/init.h"

namespace dbaugur::nn {

LSTM::LSTM(size_t input_size, size_t hidden_size, Rng* rng)
    : input_(input_size),
      hidden_(hidden_size),
      wx_(input_size, 4 * hidden_size),
      wh_(hidden_size, 4 * hidden_size),
      b_(1, 4 * hidden_size),
      dwx_(input_size, 4 * hidden_size),
      dwh_(hidden_size, 4 * hidden_size),
      db_(1, 4 * hidden_size) {
  DBAUGUR_CHECK(input_size > 0 && hidden_size > 0,
                "LSTM needs positive dims, got input=", input_size,
                " hidden=", hidden_size);
  XavierInit(&wx_, rng);
  XavierInit(&wh_, rng);
  // Forget-gate bias starts at 1 so early training retains state.
  for (size_t j = hidden_; j < 2 * hidden_; ++j) b_(0, j) = 1.0;
}

std::vector<Matrix> LSTM::ForwardSequence(const std::vector<Matrix>& xs) {
  cache_.clear();
  cache_.reserve(xs.size());
  std::vector<Matrix> hs;
  hs.reserve(xs.size());
  if (xs.empty()) return hs;
  size_t batch = xs[0].rows();
  Matrix h(batch, hidden_), c(batch, hidden_);
  for (const Matrix& x : xs) {
    DBAUGUR_CHECK_EQ(x.cols(), input_, "LSTM::ForwardSequence step width");
    DBAUGUR_CHECK_EQ(x.rows(), batch,
                     "LSTM::ForwardSequence inconsistent batch size");
    StepCache sc;
    sc.x = x;
    sc.h_prev = h;
    sc.c_prev = c;
    Matrix z = x.MatMul(wx_);
    z.Add(h.MatMul(wh_));
    z.AddRowVector(b_);
    sc.i = Matrix(batch, hidden_);
    sc.f = Matrix(batch, hidden_);
    sc.g = Matrix(batch, hidden_);
    sc.o = Matrix(batch, hidden_);
    for (size_t r = 0; r < batch; ++r) {
      const double* zr = z.row(r);
      for (size_t j = 0; j < hidden_; ++j) {
        sc.i(r, j) = Sigmoid(zr[j]);
        sc.f(r, j) = Sigmoid(zr[hidden_ + j]);
        sc.g(r, j) = std::tanh(zr[2 * hidden_ + j]);
        sc.o(r, j) = Sigmoid(zr[3 * hidden_ + j]);
      }
    }
    sc.c = Matrix(batch, hidden_);
    sc.tanh_c = Matrix(batch, hidden_);
    Matrix h_new(batch, hidden_);
    for (size_t r = 0; r < batch; ++r) {
      for (size_t j = 0; j < hidden_; ++j) {
        sc.c(r, j) = sc.f(r, j) * c(r, j) + sc.i(r, j) * sc.g(r, j);
        sc.tanh_c(r, j) = std::tanh(sc.c(r, j));
        h_new(r, j) = sc.o(r, j) * sc.tanh_c(r, j);
      }
    }
    c = sc.c;
    h = h_new;
    hs.push_back(h);
    cache_.push_back(std::move(sc));
  }
  return hs;
}

std::vector<Matrix> LSTM::BackwardSequence(const std::vector<Matrix>& grad_hs) {
  size_t steps = cache_.size();
  DBAUGUR_CHECK_EQ(grad_hs.size(), steps,
                   "LSTM::BackwardSequence gradient count does not match the "
                   "cached forward pass");
  std::vector<Matrix> dxs(steps);
  if (steps == 0) return dxs;
  size_t batch = cache_[0].x.rows();
  Matrix dh_next(batch, hidden_);  // carried dL/dh from t+1
  Matrix dc_next(batch, hidden_);  // carried dL/dc from t+1
  for (size_t t = steps; t-- > 0;) {
    const StepCache& sc = cache_[t];
    Matrix dh = grad_hs[t];
    dh.Add(dh_next);
    // h = o * tanh(c)
    Matrix do_gate(batch, hidden_), dc(batch, hidden_);
    for (size_t r = 0; r < batch; ++r) {
      for (size_t j = 0; j < hidden_; ++j) {
        double tc = sc.tanh_c(r, j);
        do_gate(r, j) = dh(r, j) * tc;
        dc(r, j) = dh(r, j) * sc.o(r, j) * (1.0 - tc * tc) + dc_next(r, j);
      }
    }
    // c = f * c_prev + i * g
    Matrix di(batch, hidden_), df(batch, hidden_), dg(batch, hidden_);
    Matrix dc_prev(batch, hidden_);
    for (size_t r = 0; r < batch; ++r) {
      for (size_t j = 0; j < hidden_; ++j) {
        di(r, j) = dc(r, j) * sc.g(r, j);
        df(r, j) = dc(r, j) * sc.c_prev(r, j);
        dg(r, j) = dc(r, j) * sc.i(r, j);
        dc_prev(r, j) = dc(r, j) * sc.f(r, j);
      }
    }
    // Through the gate nonlinearities into the fused pre-activation dz.
    Matrix dz(batch, 4 * hidden_);
    for (size_t r = 0; r < batch; ++r) {
      for (size_t j = 0; j < hidden_; ++j) {
        double iv = sc.i(r, j), fv = sc.f(r, j), gv = sc.g(r, j),
               ov = sc.o(r, j);
        dz(r, j) = di(r, j) * iv * (1.0 - iv);
        dz(r, hidden_ + j) = df(r, j) * fv * (1.0 - fv);
        dz(r, 2 * hidden_ + j) = dg(r, j) * (1.0 - gv * gv);
        dz(r, 3 * hidden_ + j) = do_gate(r, j) * ov * (1.0 - ov);
      }
    }
    dwx_.Add(sc.x.TransposeMatMul(dz));
    dwh_.Add(sc.h_prev.TransposeMatMul(dz));
    db_.Add(dz.ColSum());
    dxs[t] = dz.MatMulTranspose(wx_);
    dh_next = dz.MatMulTranspose(wh_);
    dc_next = dc_prev;
  }
  return dxs;
}

std::vector<Param> LSTM::Params() {
  return {{&wx_, &dwx_, "lstm.wx"},
          {&wh_, &dwh_, "lstm.wh"},
          {&b_, &db_, "lstm.b"}};
}

void LSTM::ZeroGrad() {
  dwx_.Fill(0.0);
  dwh_.Fill(0.0);
  db_.Fill(0.0);
}

}  // namespace dbaugur::nn

#include "nn/lstm.h"

#include <cmath>
#include <utility>

#include "common/contracts.h"
#include "nn/init.h"
#include "nn/lstm_kernels.h"

namespace dbaugur::nn {

template <typename T>
LSTMT<T>::LSTMT(size_t input_size, size_t hidden_size, Rng* rng)
    : input_(input_size),
      hidden_(hidden_size),
      wx_(input_size, 4 * hidden_size),
      wh_(hidden_size, 4 * hidden_size),
      b_(1, 4 * hidden_size),
      dwx_(input_size, 4 * hidden_size),
      dwh_(hidden_size, 4 * hidden_size),
      db_(1, 4 * hidden_size) {
  DBAUGUR_CHECK(input_size > 0 && hidden_size > 0,
                "LSTM needs positive dims, got input=", input_size,
                " hidden=", hidden_size);
  XavierInit(&wx_, rng);
  XavierInit(&wh_, rng);
  // Forget-gate bias starts at 1 so early training retains state.
  for (size_t j = hidden_; j < 2 * hidden_; ++j) b_(0, j) = T(1);
}

template <typename T>
const std::vector<MatrixT<T>>& LSTMT<T>::ForwardSequence(
    const std::vector<MatrixT<T>>& xs) {
  const size_t steps = xs.size();
  steps_ = steps;
  hs_.resize(steps);
  if (cache_.size() < steps) cache_.resize(steps);
  if (steps == 0) return hs_;
  const size_t batch = xs[0].rows();
  // Contracts hoisted out of the step loop: validate the whole sequence once,
  // then run the hot loop contract-free.
  for (const MatrixT<T>& x : xs) {
    DBAUGUR_CHECK_EQ(x.cols(), input_, "LSTM::ForwardSequence step width");
    DBAUGUR_CHECK_EQ(x.rows(), batch,
                     "LSTM::ForwardSequence inconsistent batch size");
  }
  zeros_.Resize(batch, hidden_);
  zeros_.Fill(T(0));
  for (size_t t = 0; t < steps; ++t) {
    StepCache& sc = cache_[t];
    const MatrixT<T>& h_prev = t == 0 ? zeros_ : hs_[t - 1];
    const MatrixT<T>& c_prev = t == 0 ? zeros_ : cache_[t - 1].c;
    sc.x = xs[t];
    // Fused gate pre-activation: z = x Wx + h_prev Wh + b, one workspace.
    z_.MatMulInto(sc.x, wx_);
    z_.AddMatMul(h_prev, wh_);
    z_.AddRowVector(b_);
    sc.i.Resize(batch, hidden_);
    sc.f.Resize(batch, hidden_);
    sc.g.Resize(batch, hidden_);
    sc.o.Resize(batch, hidden_);
    sc.c.Resize(batch, hidden_);
    sc.tanh_c.Resize(batch, hidden_);
    hs_[t].Resize(batch, hidden_);
    // Fused element-wise gate pass, runtime-dispatched per SIMD tier.
    LstmGatesForward(batch, hidden_, z_.data(), c_prev.data(), sc.i.data(),
                     sc.f.data(), sc.g.data(), sc.o.data(), sc.c.data(),
                     sc.tanh_c.data(), hs_[t].data());
  }
  return hs_;
}

template <typename T>
const std::vector<MatrixT<T>>& LSTMT<T>::BackwardSequence(
    const std::vector<MatrixT<T>>& grad_hs) {
  const size_t steps = steps_;
  DBAUGUR_CHECK_EQ(grad_hs.size(), steps,
                   "LSTM::BackwardSequence gradient count does not match the "
                   "cached forward pass");
  dxs_.resize(steps);
  if (steps == 0) return dxs_;
  const size_t batch = cache_[0].x.rows();
  for (const MatrixT<T>& g : grad_hs) {
    DBAUGUR_CHECK(g.rows() == batch && g.cols() == hidden_,
                  "LSTM::BackwardSequence gradient shape ", g.rows(), "x",
                  g.cols(), " does not match hidden states ", batch, "x",
                  hidden_);
  }
  dh_next_.Resize(batch, hidden_);
  dh_next_.Fill(T(0));
  dc_next_.Resize(batch, hidden_);
  dc_next_.Fill(T(0));
  dc_prev_.Resize(batch, hidden_);
  dz_.Resize(batch, 4 * hidden_);
  for (size_t t = steps; t-- > 0;) {
    const StepCache& sc = cache_[t];
    const MatrixT<T>& h_prev = t == 0 ? zeros_ : hs_[t - 1];
    const MatrixT<T>& c_prev = t == 0 ? zeros_ : cache_[t - 1].c;
    dh_ = grad_hs[t];
    dh_.Add(dh_next_);
    // All element-wise gate gradients fuse into one pass producing dz and the
    // carried cell gradient; the per-gate intermediates never materialise.
    LstmGatesBackward(batch, hidden_, dh_.data(), dc_next_.data(),
                      sc.tanh_c.data(), sc.i.data(), sc.f.data(), sc.g.data(),
                      sc.o.data(), c_prev.data(), dz_.data(), dc_prev_.data());
    dwx_.AddTransposeMatMul(sc.x, dz_);
    dwh_.AddTransposeMatMul(h_prev, dz_);
    db_.AddColSumOf(dz_);
    dxs_[t].MatMulTransposeInto(dz_, wx_);
    dh_next_.MatMulTransposeInto(dz_, wh_);
    std::swap(dc_next_, dc_prev_);
  }
  return dxs_;
}

template <typename T>
std::vector<ParamT<T>> LSTMT<T>::Params() {
  return {{&wx_, &dwx_, "lstm.wx"},
          {&wh_, &dwh_, "lstm.wh"},
          {&b_, &db_, "lstm.b"}};
}

template <typename T>
void LSTMT<T>::ZeroGrad() {
  dwx_.Fill(T(0));
  dwh_.Fill(T(0));
  db_.Fill(T(0));
}

template class LSTMT<double>;
template class LSTMT<float>;

}  // namespace dbaugur::nn

#include "nn/lstm.h"

#include <cmath>
#include <utility>

#include "common/contracts.h"
#include "common/math_utils.h"
#include "nn/init.h"

namespace dbaugur::nn {

LSTM::LSTM(size_t input_size, size_t hidden_size, Rng* rng)
    : input_(input_size),
      hidden_(hidden_size),
      wx_(input_size, 4 * hidden_size),
      wh_(hidden_size, 4 * hidden_size),
      b_(1, 4 * hidden_size),
      dwx_(input_size, 4 * hidden_size),
      dwh_(hidden_size, 4 * hidden_size),
      db_(1, 4 * hidden_size) {
  DBAUGUR_CHECK(input_size > 0 && hidden_size > 0,
                "LSTM needs positive dims, got input=", input_size,
                " hidden=", hidden_size);
  XavierInit(&wx_, rng);
  XavierInit(&wh_, rng);
  // Forget-gate bias starts at 1 so early training retains state.
  for (size_t j = hidden_; j < 2 * hidden_; ++j) b_(0, j) = 1.0;
}

const std::vector<Matrix>& LSTM::ForwardSequence(const std::vector<Matrix>& xs) {
  const size_t steps = xs.size();
  steps_ = steps;
  hs_.resize(steps);
  if (cache_.size() < steps) cache_.resize(steps);
  if (steps == 0) return hs_;
  const size_t batch = xs[0].rows();
  // Contracts hoisted out of the step loop: validate the whole sequence once,
  // then run the hot loop contract-free.
  for (const Matrix& x : xs) {
    DBAUGUR_CHECK_EQ(x.cols(), input_, "LSTM::ForwardSequence step width");
    DBAUGUR_CHECK_EQ(x.rows(), batch,
                     "LSTM::ForwardSequence inconsistent batch size");
  }
  zeros_.Resize(batch, hidden_);
  zeros_.Fill(0.0);
  for (size_t t = 0; t < steps; ++t) {
    StepCache& sc = cache_[t];
    const Matrix& h_prev = t == 0 ? zeros_ : hs_[t - 1];
    const Matrix& c_prev = t == 0 ? zeros_ : cache_[t - 1].c;
    sc.x = xs[t];
    // Fused gate pre-activation: z = x Wx + h_prev Wh + b, one workspace.
    z_.MatMulInto(sc.x, wx_);
    z_.AddMatMul(h_prev, wh_);
    z_.AddRowVector(b_);
    sc.i.Resize(batch, hidden_);
    sc.f.Resize(batch, hidden_);
    sc.g.Resize(batch, hidden_);
    sc.o.Resize(batch, hidden_);
    sc.c.Resize(batch, hidden_);
    sc.tanh_c.Resize(batch, hidden_);
    hs_[t].Resize(batch, hidden_);
    for (size_t r = 0; r < batch; ++r) {
      const double* zr = z_.row(r);
      const double* cpr = c_prev.row(r);
      double* ir = sc.i.row(r);
      double* fr = sc.f.row(r);
      double* gr = sc.g.row(r);
      double* og = sc.o.row(r);
      double* cr = sc.c.row(r);
      double* tr = sc.tanh_c.row(r);
      double* hr = hs_[t].row(r);
      for (size_t j = 0; j < hidden_; ++j) {
        ir[j] = Sigmoid(zr[j]);
        fr[j] = Sigmoid(zr[hidden_ + j]);
        gr[j] = std::tanh(zr[2 * hidden_ + j]);
        og[j] = Sigmoid(zr[3 * hidden_ + j]);
        cr[j] = fr[j] * cpr[j] + ir[j] * gr[j];
        tr[j] = std::tanh(cr[j]);
        hr[j] = og[j] * tr[j];
      }
    }
  }
  return hs_;
}

const std::vector<Matrix>& LSTM::BackwardSequence(
    const std::vector<Matrix>& grad_hs) {
  const size_t steps = steps_;
  DBAUGUR_CHECK_EQ(grad_hs.size(), steps,
                   "LSTM::BackwardSequence gradient count does not match the "
                   "cached forward pass");
  dxs_.resize(steps);
  if (steps == 0) return dxs_;
  const size_t batch = cache_[0].x.rows();
  for (const Matrix& g : grad_hs) {
    DBAUGUR_CHECK(g.rows() == batch && g.cols() == hidden_,
                  "LSTM::BackwardSequence gradient shape ", g.rows(), "x",
                  g.cols(), " does not match hidden states ", batch, "x",
                  hidden_);
  }
  dh_next_.Resize(batch, hidden_);
  dh_next_.Fill(0.0);
  dc_next_.Resize(batch, hidden_);
  dc_next_.Fill(0.0);
  dc_prev_.Resize(batch, hidden_);
  dz_.Resize(batch, 4 * hidden_);
  for (size_t t = steps; t-- > 0;) {
    const StepCache& sc = cache_[t];
    const Matrix& h_prev = t == 0 ? zeros_ : hs_[t - 1];
    const Matrix& c_prev = t == 0 ? zeros_ : cache_[t - 1].c;
    dh_ = grad_hs[t];
    dh_.Add(dh_next_);
    // All element-wise gate gradients fuse into one pass producing dz and the
    // carried cell gradient; the per-gate intermediates never materialise.
    for (size_t r = 0; r < batch; ++r) {
      const double* dhr = dh_.row(r);
      const double* dcn = dc_next_.row(r);
      const double* tcr = sc.tanh_c.row(r);
      const double* ir = sc.i.row(r);
      const double* fr = sc.f.row(r);
      const double* gr = sc.g.row(r);
      const double* og = sc.o.row(r);
      const double* cpr = c_prev.row(r);
      double* dzr = dz_.row(r);
      double* dcp = dc_prev_.row(r);
      for (size_t j = 0; j < hidden_; ++j) {
        const double tc = tcr[j];
        const double iv = ir[j], fv = fr[j], gv = gr[j], ov = og[j];
        // h = o * tanh(c); c = f * c_prev + i * g.
        const double dov = dhr[j] * tc;
        const double dcv = dhr[j] * ov * (1.0 - tc * tc) + dcn[j];
        dzr[j] = dcv * gv * iv * (1.0 - iv);
        dzr[hidden_ + j] = dcv * cpr[j] * fv * (1.0 - fv);
        dzr[2 * hidden_ + j] = dcv * iv * (1.0 - gv * gv);
        dzr[3 * hidden_ + j] = dov * ov * (1.0 - ov);
        dcp[j] = dcv * fv;
      }
    }
    dwx_.AddTransposeMatMul(sc.x, dz_);
    dwh_.AddTransposeMatMul(h_prev, dz_);
    db_.AddColSumOf(dz_);
    dxs_[t].MatMulTransposeInto(dz_, wx_);
    dh_next_.MatMulTransposeInto(dz_, wh_);
    std::swap(dc_next_, dc_prev_);
  }
  return dxs_;
}

std::vector<Param> LSTM::Params() {
  return {{&wx_, &dwx_, "lstm.wx"},
          {&wh_, &dwh_, "lstm.wh"},
          {&b_, &db_, "lstm.b"}};
}

void LSTM::ZeroGrad() {
  dwx_.Fill(0.0);
  dwh_.Fill(0.0);
  db_.Fill(0.0);
}

}  // namespace dbaugur::nn

// LSTM layer with backpropagation through time.
//
// The paper's WFGAN generator/discriminator and the LSTM baseline all use a
// single LSTM layer producing per-step hidden states (fed to a temporal
// attention layer or a dense head).

#pragma once

#include <vector>

#include "common/rng.h"
#include "nn/layer.h"
#include "nn/matrix.h"

namespace dbaugur::nn {

/// Single-layer LSTM. Sequences are time-major: xs[t] is a [batch, input]
/// matrix; ForwardSequence returns hs[t] = [batch, hidden].
///
/// Gate layout in the fused weight matrices is [i | f | g | o] where i/f/o are
/// sigmoid gates and g is the tanh candidate.
///
/// The fused element-wise gate math routes through the runtime-dispatched
/// kernels in nn/lstm_kernels.h (see there for the per-tier determinism
/// contract); the matmuls route through nn/gemm.h as before.
template <typename T>
class LSTMT {
 public:
  LSTMT(size_t input_size, size_t hidden_size, Rng* rng);

  /// Runs the full sequence from zero initial state, caching activations for
  /// BackwardSequence. The returned vector is a layer-owned workspace valid
  /// until the next ForwardSequence call; steady-state calls with the same
  /// shapes do not touch the heap.
  const std::vector<MatrixT<T>>& ForwardSequence(
      const std::vector<MatrixT<T>>& xs);

  /// grad_hs[t] = dLoss/dh_t (zero matrices allowed). Accumulates parameter
  /// gradients and returns dLoss/dx_t for each step (layer-owned workspace,
  /// valid until the next BackwardSequence call).
  const std::vector<MatrixT<T>>& BackwardSequence(
      const std::vector<MatrixT<T>>& grad_hs);

  std::vector<ParamT<T>> Params();
  void ZeroGrad();

  size_t input_size() const { return input_; }
  size_t hidden_size() const { return hidden_; }

 private:
  // h_prev/c_prev are not stored per step: backward reads hs_[t-1] /
  // cache_[t-1].c (zeros_ at t == 0) instead of keeping copies.
  struct StepCache {
    MatrixT<T> x;           // input copy (callers may mutate theirs)
    MatrixT<T> i, f, g, o;  // gate activations, each [batch, hidden]
    MatrixT<T> c, tanh_c;
  };

  size_t input_;
  size_t hidden_;
  MatrixT<T> wx_;  // [input, 4*hidden]
  MatrixT<T> wh_;  // [hidden, 4*hidden]
  MatrixT<T> b_;   // [1, 4*hidden]
  MatrixT<T> dwx_, dwh_, db_;
  std::vector<StepCache> cache_;  // persistent; first steps_ entries valid
  size_t steps_ = 0;              // steps of the cached forward pass

  // Persistent workspaces (capacity survives across calls).
  std::vector<MatrixT<T>> hs_;   // per-step hidden states returned by forward
  std::vector<MatrixT<T>> dxs_;  // per-step input grads returned by backward
  MatrixT<T> zeros_;             // [batch, hidden] zero initial h/c
  MatrixT<T> z_;                 // fused gate pre-activation [batch, 4*hidden]
  MatrixT<T> dh_, dz_, dh_next_, dc_next_, dc_prev_;
};

extern template class LSTMT<double>;
extern template class LSTMT<float>;

using LSTM = LSTMT<double>;
using LSTMF = LSTMT<float>;

}  // namespace dbaugur::nn

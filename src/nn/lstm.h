// LSTM layer with backpropagation through time.
//
// The paper's WFGAN generator/discriminator and the LSTM baseline all use a
// single LSTM layer producing per-step hidden states (fed to a temporal
// attention layer or a dense head).

#pragma once

#include <vector>

#include "common/rng.h"
#include "nn/layer.h"
#include "nn/matrix.h"

namespace dbaugur::nn {

/// Single-layer LSTM. Sequences are time-major: xs[t] is a [batch, input]
/// matrix; ForwardSequence returns hs[t] = [batch, hidden].
///
/// Gate layout in the fused weight matrices is [i | f | g | o] where i/f/o are
/// sigmoid gates and g is the tanh candidate.
class LSTM {
 public:
  LSTM(size_t input_size, size_t hidden_size, Rng* rng);

  /// Runs the full sequence from zero initial state, caching activations for
  /// BackwardSequence.
  std::vector<Matrix> ForwardSequence(const std::vector<Matrix>& xs);

  /// grad_hs[t] = dLoss/dh_t (zero matrices allowed). Accumulates parameter
  /// gradients and returns dLoss/dx_t for each step.
  std::vector<Matrix> BackwardSequence(const std::vector<Matrix>& grad_hs);

  std::vector<Param> Params();
  void ZeroGrad();

  size_t input_size() const { return input_; }
  size_t hidden_size() const { return hidden_; }

 private:
  struct StepCache {
    Matrix x, h_prev, c_prev;
    Matrix i, f, g, o;  // gate activations, each [batch, hidden]
    Matrix c, tanh_c;
  };

  size_t input_;
  size_t hidden_;
  Matrix wx_;  // [input, 4*hidden]
  Matrix wh_;  // [hidden, 4*hidden]
  Matrix b_;   // [1, 4*hidden]
  Matrix dwx_, dwh_, db_;
  std::vector<StepCache> cache_;
};

}  // namespace dbaugur::nn

#include "nn/lstm_kernels.h"

#include <cmath>
#include <type_traits>

#include "common/math_utils.h"
#include "common/simd.h"
#include "nn/simd_kernels.h"

namespace dbaugur::nn {
namespace {

// Scalar tier: the PR-3 fused gate loops from lstm.cpp, verbatim modulo the
// template parameter (double instantiation is expression-identical, so the
// forced-scalar tier stays bit-identical to the PR-3 LSTM).
template <typename T>
inline T ScalarSigmoid(T x) {
  return Sigmoid(x);  // common/math_utils.h; overloaded for double and float.
}

template <typename T>
void GatesForwardScalar(std::size_t batch, std::size_t hidden, const T* z,
                        const T* c_prev, T* ig, T* fg, T* gg, T* og, T* c,
                        T* tanh_c, T* h) {
  for (std::size_t r = 0; r < batch; ++r) {
    const T* zr = z + r * 4 * hidden;
    const T* cpr = c_prev + r * hidden;
    T* ir = ig + r * hidden;
    T* fr = fg + r * hidden;
    T* gr = gg + r * hidden;
    T* orow = og + r * hidden;
    T* cr = c + r * hidden;
    T* tr = tanh_c + r * hidden;
    T* hr = h + r * hidden;
    for (std::size_t j = 0; j < hidden; ++j) {
      ir[j] = ScalarSigmoid(zr[j]);
      fr[j] = ScalarSigmoid(zr[hidden + j]);
      gr[j] = std::tanh(zr[2 * hidden + j]);
      orow[j] = ScalarSigmoid(zr[3 * hidden + j]);
      cr[j] = fr[j] * cpr[j] + ir[j] * gr[j];
      tr[j] = std::tanh(cr[j]);
      hr[j] = orow[j] * tr[j];
    }
  }
}

template <typename T>
void GatesBackwardScalar(std::size_t batch, std::size_t hidden, const T* dh,
                         const T* dc_next, const T* tanh_c, const T* ig,
                         const T* fg, const T* gg, const T* og, const T* c_prev,
                         T* dz, T* dc_prev) {
  for (std::size_t r = 0; r < batch; ++r) {
    const T* dhr = dh + r * hidden;
    const T* dcn = dc_next + r * hidden;
    const T* tcr = tanh_c + r * hidden;
    const T* ir = ig + r * hidden;
    const T* fr = fg + r * hidden;
    const T* gr = gg + r * hidden;
    const T* orow = og + r * hidden;
    const T* cpr = c_prev + r * hidden;
    T* dzr = dz + r * 4 * hidden;
    T* dcp = dc_prev + r * hidden;
    for (std::size_t j = 0; j < hidden; ++j) {
      const T tc = tcr[j];
      const T iv = ir[j];
      const T fv = fr[j];
      const T gv = gr[j];
      const T ov = orow[j];
      const T dov = dhr[j] * tc;
      const T dcv = dhr[j] * ov * (T(1) - tc * tc) + dcn[j];
      dzr[j] = dcv * gv * iv * (T(1) - iv);
      dzr[hidden + j] = dcv * cpr[j] * fv * (T(1) - fv);
      dzr[2 * hidden + j] = dcv * iv * (T(1) - gv * gv);
      dzr[3 * hidden + j] = dov * ov * (T(1) - ov);
      dcp[j] = dcv * fv;
    }
  }
}

template <typename T>
struct GateKernels {
  void (*forward)(std::size_t, std::size_t, const T*, const T*, T*, T*, T*, T*,
                  T*, T*, T*);
  void (*backward)(std::size_t, std::size_t, const T*, const T*, const T*,
                   const T*, const T*, const T*, const T*, const T*, T*, T*);
};

template <typename T>
constexpr GateKernels<T> kScalarGates = {&GatesForwardScalar<T>,
                                         &GatesBackwardScalar<T>};

template <typename T>
const GateKernels<T>& ActiveGates() {
  switch (simd::ActiveTier()) {
#if defined(DBAUGUR_SIMD_HAS_AVX512)
    case simd::Tier::kAvx512: {
      if constexpr (std::is_same_v<T, double>) {
        static constexpr GateKernels<T> k = {&tier_avx512::LstmGatesForwardD,
                                             &tier_avx512::LstmGatesBackwardD};
        return k;
      } else {
        static constexpr GateKernels<T> k = {&tier_avx512::LstmGatesForwardF,
                                             &tier_avx512::LstmGatesBackwardF};
        return k;
      }
    }
#endif
#if defined(DBAUGUR_SIMD_HAS_AVX2)
    case simd::Tier::kAvx2: {
      if constexpr (std::is_same_v<T, double>) {
        static constexpr GateKernels<T> k = {&tier_avx2::LstmGatesForwardD,
                                             &tier_avx2::LstmGatesBackwardD};
        return k;
      } else {
        static constexpr GateKernels<T> k = {&tier_avx2::LstmGatesForwardF,
                                             &tier_avx2::LstmGatesBackwardF};
        return k;
      }
    }
#endif
#if defined(DBAUGUR_SIMD_HAS_SSE2)
    case simd::Tier::kSse2: {
      if constexpr (std::is_same_v<T, double>) {
        static constexpr GateKernels<T> k = {&tier_sse2::LstmGatesForwardD,
                                             &tier_sse2::LstmGatesBackwardD};
        return k;
      } else {
        static constexpr GateKernels<T> k = {&tier_sse2::LstmGatesForwardF,
                                             &tier_sse2::LstmGatesBackwardF};
        return k;
      }
    }
#endif
    default:
      return kScalarGates<T>;
  }
}

}  // namespace

void LstmGatesForward(std::size_t batch, std::size_t hidden, const double* z,
                      const double* c_prev, double* ig, double* fg, double* gg,
                      double* og, double* c, double* tanh_c, double* h) {
  ActiveGates<double>().forward(batch, hidden, z, c_prev, ig, fg, gg, og, c,
                                tanh_c, h);
}

void LstmGatesForward(std::size_t batch, std::size_t hidden, const float* z,
                      const float* c_prev, float* ig, float* fg, float* gg,
                      float* og, float* c, float* tanh_c, float* h) {
  ActiveGates<float>().forward(batch, hidden, z, c_prev, ig, fg, gg, og, c,
                               tanh_c, h);
}

void LstmGatesBackward(std::size_t batch, std::size_t hidden, const double* dh,
                       const double* dc_next, const double* tanh_c,
                       const double* ig, const double* fg, const double* gg,
                       const double* og, const double* c_prev, double* dz,
                       double* dc_prev) {
  ActiveGates<double>().backward(batch, hidden, dh, dc_next, tanh_c, ig, fg, gg,
                                 og, c_prev, dz, dc_prev);
}

void LstmGatesBackward(std::size_t batch, std::size_t hidden, const float* dh,
                       const float* dc_next, const float* tanh_c,
                       const float* ig, const float* fg, const float* gg,
                       const float* og, const float* c_prev, float* dz,
                       float* dc_prev) {
  ActiveGates<float>().backward(batch, hidden, dh, dc_next, tanh_c, ig, fg, gg,
                                og, c_prev, dz, dc_prev);
}

}  // namespace dbaugur::nn

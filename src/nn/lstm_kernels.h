// Runtime-dispatched fused LSTM gate kernels (extracted from the PR-3 fused
// loops in lstm.cpp so the elementwise math can be vectorized per tier).
//
// Layouts: `z` is [batch, 4*hidden] in [i|f|g|o] gate order; every other
// buffer is [batch, hidden], fully packed. Buffers must not alias.
//
// Determinism contract: the scalar tier reproduces the PR-3 loop bodies
// exactly (dbaugur::Sigmoid / std::tanh, same expression trees — bit
// identical). Vector tiers use polynomial Exp/Sigmoid/Tanh from
// common/simd.h, accurate to a few ULP of libm; the backward pass contains no
// transcendentals and uses uncontracted mul/add, so it matches the scalar
// tier bit-for-bit given identical inputs.

#pragma once

#include <cstddef>

namespace dbaugur::nn {

/// i/f/o = sigmoid, g = tanh of the four z quarters; c = f*c_prev + i*g;
/// tanh_c = tanh(c); h = o * tanh_c.
void LstmGatesForward(std::size_t batch, std::size_t hidden, const double* z,
                      const double* c_prev, double* ig, double* fg, double* gg,
                      double* og, double* c, double* tanh_c, double* h);
void LstmGatesForward(std::size_t batch, std::size_t hidden, const float* z,
                      const float* c_prev, float* ig, float* fg, float* gg,
                      float* og, float* c, float* tanh_c, float* h);

/// Gate gradients into dz (same [i|f|g|o] layout) and dc_prev, from upstream
/// dh and the carried dc_next.
void LstmGatesBackward(std::size_t batch, std::size_t hidden, const double* dh,
                       const double* dc_next, const double* tanh_c,
                       const double* ig, const double* fg, const double* gg,
                       const double* og, const double* c_prev, double* dz,
                       double* dc_prev);
void LstmGatesBackward(std::size_t batch, std::size_t hidden, const float* dh,
                       const float* dc_next, const float* tanh_c,
                       const float* ig, const float* fg, const float* gg,
                       const float* og, const float* c_prev, float* dz,
                       float* dc_prev);

}  // namespace dbaugur::nn

#include "nn/matrix.h"

#include <cmath>
#include <sstream>
#include <utility>

namespace dbaugur::nn {

Matrix::Matrix(size_t rows, size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  DBAUGUR_CHECK_EQ(data_.size(), rows_ * cols_,
                   "Matrix data does not match shape ", rows_, "x", cols_);
}

void Matrix::Fill(double v) {
  for (double& x : data_) x = v;
}

void Matrix::Add(const Matrix& other) {
  DBAUGUR_CHECK(SameShape(other), "Matrix::Add shape mismatch: ", rows_, "x",
                cols_, " vs ", other.rows_, "x", other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaled(const Matrix& other, double alpha) {
  DBAUGUR_CHECK(SameShape(other), "Matrix::AddScaled shape mismatch: ", rows_,
                "x", cols_, " vs ", other.rows_, "x", other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::Sub(const Matrix& other) {
  DBAUGUR_CHECK(SameShape(other), "Matrix::Sub shape mismatch: ", rows_, "x",
                cols_, " vs ", other.rows_, "x", other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::Hadamard(const Matrix& other) {
  DBAUGUR_CHECK(SameShape(other), "Matrix::Hadamard shape mismatch: ", rows_,
                "x", cols_, " vs ", other.rows_, "x", other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void Matrix::Scale(double alpha) {
  for (double& x : data_) x *= alpha;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  DBAUGUR_CHECK_EQ(cols_, other.rows_, "Matrix::MatMul inner dimensions");
  Matrix out(rows_, other.cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* arow = row(i);
    double* orow = out.row(i);
    for (size_t k = 0; k < cols_; ++k) {
      double a = arow[k];
      if (a == 0.0) continue;
      const double* brow = other.row(k);
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::TransposeMatMul(const Matrix& other) const {
  // (this^T * other): this is (m x n), other is (m x p), result (n x p).
  DBAUGUR_CHECK_EQ(rows_, other.rows_,
                   "Matrix::TransposeMatMul row counts");
  Matrix out(cols_, other.cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* arow = row(i);
    const double* brow = other.row(i);
    for (size_t k = 0; k < cols_; ++k) {
      double a = arow[k];
      if (a == 0.0) continue;
      double* orow = out.row(k);
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::MatMulTranspose(const Matrix& other) const {
  // (this * other^T): this is (m x n), other is (p x n), result (m x p).
  DBAUGUR_CHECK_EQ(cols_, other.cols_,
                   "Matrix::MatMulTranspose column counts");
  Matrix out(rows_, other.rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* arow = row(i);
    double* orow = out.row(i);
    for (size_t j = 0; j < other.rows_; ++j) {
      const double* brow = other.row(j);
      double s = 0.0;
      for (size_t k = 0; k < cols_; ++k) s += arow[k] * brow[k];
      orow[j] = s;
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

void Matrix::AddRowVector(const Matrix& v) {
  DBAUGUR_CHECK_EQ(v.size(), cols_, "Matrix::AddRowVector width mismatch");
  for (size_t i = 0; i < rows_; ++i) {
    double* r = row(i);
    for (size_t j = 0; j < cols_; ++j) r[j] += v.data_[j];
  }
}

Matrix Matrix::ColSum() const {
  Matrix out(1, cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* r = row(i);
    for (size_t j = 0; j < cols_; ++j) out.data()[j] += r[j];
  }
  return out;
}

double Matrix::SquaredNorm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return s;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  for (size_t i = 0; i < rows_; ++i) {
    oss << '[';
    for (size_t j = 0; j < cols_; ++j) {
      oss << (*this)(i, j);
      if (j + 1 < cols_) oss << ", ";
    }
    oss << "]\n";
  }
  return oss.str();
}

void Tensor3::Fill(double v) {
  for (double& x : data_) x = v;
}

void Tensor3::Add(const Tensor3& other) {
  DBAUGUR_CHECK(SameShape(other), "Tensor3::Add shape mismatch: ", batch_,
                "x", channels_, "x", time_, " vs ", other.batch_, "x",
                other.channels_, "x", other.time_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

}  // namespace dbaugur::nn

#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "nn/gemm.h"

namespace dbaugur::nn {

Matrix::Matrix(size_t rows, size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  DBAUGUR_CHECK_EQ(data_.size(), rows_ * cols_,
                   "Matrix data does not match shape ", rows_, "x", cols_);
}

void Matrix::Fill(double v) {
  for (double& x : data_) x = v;
}

void Matrix::Add(const Matrix& other) {
  DBAUGUR_CHECK(SameShape(other), "Matrix::Add shape mismatch: ", rows_, "x",
                cols_, " vs ", other.rows_, "x", other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaled(const Matrix& other, double alpha) {
  DBAUGUR_CHECK(SameShape(other), "Matrix::AddScaled shape mismatch: ", rows_,
                "x", cols_, " vs ", other.rows_, "x", other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::Sub(const Matrix& other) {
  DBAUGUR_CHECK(SameShape(other), "Matrix::Sub shape mismatch: ", rows_, "x",
                cols_, " vs ", other.rows_, "x", other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::Hadamard(const Matrix& other) {
  DBAUGUR_CHECK(SameShape(other), "Matrix::Hadamard shape mismatch: ", rows_,
                "x", cols_, " vs ", other.rows_, "x", other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void Matrix::Scale(double alpha) {
  for (double& x : data_) x *= alpha;
}

namespace {

// Shape/aliasing contracts for the fused kernels, validated once at kernel
// entry (never in inner loops — those stay DCHECK-only via operator()).
void CheckNoAlias(const Matrix& dest, const Matrix& a, const Matrix& b,
                  const char* op) {
  DBAUGUR_CHECK(dest.data() != a.data() && dest.data() != b.data(),
                op, " destination must not alias an operand");
}

}  // namespace

Matrix Matrix::MatMul(const Matrix& other) const {
  Matrix out;
  out.MatMulInto(*this, other);
  return out;
}

Matrix Matrix::TransposeMatMul(const Matrix& other) const {
  Matrix out;
  out.TransposeMatMulInto(*this, other);
  return out;
}

Matrix Matrix::MatMulTranspose(const Matrix& other) const {
  Matrix out;
  out.MatMulTransposeInto(*this, other);
  return out;
}

void Matrix::MatMulInto(const Matrix& a, const Matrix& b) {
  DBAUGUR_CHECK_EQ(a.cols_, b.rows_, "Matrix::MatMul inner dimensions");
  Resize(a.rows_, b.cols_);
  CheckNoAlias(*this, a, b, "Matrix::MatMulInto");
  GemmNN(a.rows_, a.cols_, b.cols_, a.data(), b.data(), data(), false);
}

void Matrix::AddMatMul(const Matrix& a, const Matrix& b) {
  DBAUGUR_CHECK_EQ(a.cols_, b.rows_, "Matrix::AddMatMul inner dimensions");
  DBAUGUR_CHECK(rows_ == a.rows_ && cols_ == b.cols_,
                "Matrix::AddMatMul destination shape ", rows_, "x", cols_,
                " does not match product ", a.rows_, "x", b.cols_);
  CheckNoAlias(*this, a, b, "Matrix::AddMatMul");
  GemmNN(a.rows_, a.cols_, b.cols_, a.data(), b.data(), data(), true);
}

void Matrix::TransposeMatMulInto(const Matrix& a, const Matrix& b) {
  // (a^T * b): a is (m x n), b is (m x p), result (n x p).
  DBAUGUR_CHECK_EQ(a.rows_, b.rows_, "Matrix::TransposeMatMul row counts");
  Resize(a.cols_, b.cols_);
  CheckNoAlias(*this, a, b, "Matrix::TransposeMatMulInto");
  GemmTN(a.rows_, a.cols_, b.cols_, a.data(), b.data(), data(), false);
}

void Matrix::AddTransposeMatMul(const Matrix& a, const Matrix& b) {
  DBAUGUR_CHECK_EQ(a.rows_, b.rows_, "Matrix::AddTransposeMatMul row counts");
  DBAUGUR_CHECK(rows_ == a.cols_ && cols_ == b.cols_,
                "Matrix::AddTransposeMatMul destination shape ", rows_, "x",
                cols_, " does not match product ", a.cols_, "x", b.cols_);
  CheckNoAlias(*this, a, b, "Matrix::AddTransposeMatMul");
  GemmTN(a.rows_, a.cols_, b.cols_, a.data(), b.data(), data(), true);
}

void Matrix::MatMulTransposeInto(const Matrix& a, const Matrix& b) {
  // (a * b^T): a is (m x n), b is (p x n), result (m x p).
  DBAUGUR_CHECK_EQ(a.cols_, b.cols_, "Matrix::MatMulTranspose column counts");
  Resize(a.rows_, b.rows_);
  CheckNoAlias(*this, a, b, "Matrix::MatMulTransposeInto");
  GemmNT(a.rows_, a.cols_, b.rows_, a.data(), b.data(), data(), false);
}

void Matrix::AddMatMulTranspose(const Matrix& a, const Matrix& b) {
  DBAUGUR_CHECK_EQ(a.cols_, b.cols_,
                   "Matrix::AddMatMulTranspose column counts");
  DBAUGUR_CHECK(rows_ == a.rows_ && cols_ == b.rows_,
                "Matrix::AddMatMulTranspose destination shape ", rows_, "x",
                cols_, " does not match product ", a.rows_, "x", b.rows_);
  CheckNoAlias(*this, a, b, "Matrix::AddMatMulTranspose");
  GemmNT(a.rows_, a.cols_, b.rows_, a.data(), b.data(), data(), true);
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  // Blocked so both the read and write side stay within a few cache lines
  // per tile instead of striding the full matrix on one side.
  constexpr size_t kTile = 32;
  const double* src = data();
  double* dst = out.data();
  for (size_t ib = 0; ib < rows_; ib += kTile) {
    const size_t ie = std::min(rows_, ib + kTile);
    for (size_t jb = 0; jb < cols_; jb += kTile) {
      const size_t je = std::min(cols_, jb + kTile);
      for (size_t i = ib; i < ie; ++i) {
        for (size_t j = jb; j < je; ++j) {
          dst[j * rows_ + i] = src[i * cols_ + j];
        }
      }
    }
  }
  return out;
}

void Matrix::AddRowVector(const Matrix& v) {
  DBAUGUR_CHECK_EQ(v.size(), cols_, "Matrix::AddRowVector width mismatch");
  for (size_t i = 0; i < rows_; ++i) {
    double* r = row(i);
    for (size_t j = 0; j < cols_; ++j) r[j] += v.data_[j];
  }
}

Matrix Matrix::ColSum() const {
  Matrix out(1, cols_, 0.0);
  out.AddColSumOf(*this);
  return out;
}

void Matrix::AddColSumOf(const Matrix& other) {
  DBAUGUR_CHECK(rows_ == 1 && cols_ == other.cols_,
                "Matrix::AddColSumOf needs a 1x", other.cols_,
                " destination, got ", rows_, "x", cols_);
  double* acc = data();
  for (size_t i = 0; i < other.rows_; ++i) {
    const double* r = other.row(i);
    for (size_t j = 0; j < cols_; ++j) acc[j] += r[j];
  }
}

double Matrix::SquaredNorm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return s;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  for (size_t i = 0; i < rows_; ++i) {
    oss << '[';
    for (size_t j = 0; j < cols_; ++j) {
      oss << (*this)(i, j);
      if (j + 1 < cols_) oss << ", ";
    }
    oss << "]\n";
  }
  return oss.str();
}

void Tensor3::Fill(double v) {
  for (double& x : data_) x = v;
}

void Tensor3::Add(const Tensor3& other) {
  DBAUGUR_CHECK(SameShape(other), "Tensor3::Add shape mismatch: ", batch_,
                "x", channels_, "x", time_, " vs ", other.batch_, "x",
                other.channels_, "x", other.time_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

}  // namespace dbaugur::nn

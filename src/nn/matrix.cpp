#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "nn/gemm.h"

namespace dbaugur::nn {

template <typename T>
MatrixT<T>::MatrixT(size_t rows, size_t cols, std::vector<T> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  DBAUGUR_CHECK_EQ(data_.size(), rows_ * cols_,
                   "Matrix data does not match shape ", rows_, "x", cols_);
}

template <typename T>
void MatrixT<T>::Fill(T v) {
  for (T& x : data_) x = v;
}

template <typename T>
void MatrixT<T>::Add(const MatrixT& other) {
  DBAUGUR_CHECK(SameShape(other), "Matrix::Add shape mismatch: ", rows_, "x",
                cols_, " vs ", other.rows_, "x", other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

template <typename T>
void MatrixT<T>::AddScaled(const MatrixT& other, T alpha) {
  DBAUGUR_CHECK(SameShape(other), "Matrix::AddScaled shape mismatch: ", rows_,
                "x", cols_, " vs ", other.rows_, "x", other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

template <typename T>
void MatrixT<T>::Sub(const MatrixT& other) {
  DBAUGUR_CHECK(SameShape(other), "Matrix::Sub shape mismatch: ", rows_, "x",
                cols_, " vs ", other.rows_, "x", other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

template <typename T>
void MatrixT<T>::Hadamard(const MatrixT& other) {
  DBAUGUR_CHECK(SameShape(other), "Matrix::Hadamard shape mismatch: ", rows_,
                "x", cols_, " vs ", other.rows_, "x", other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

template <typename T>
void MatrixT<T>::Scale(T alpha) {
  for (T& x : data_) x *= alpha;
}

namespace {

// Shape/aliasing contracts for the fused kernels, validated once at kernel
// entry (never in inner loops — those stay DCHECK-only via operator()).
template <typename T>
void CheckNoAlias(const MatrixT<T>& dest, const MatrixT<T>& a,
                  const MatrixT<T>& b, const char* op) {
  DBAUGUR_CHECK(dest.data() != a.data() && dest.data() != b.data(),
                op, " destination must not alias an operand");
}

}  // namespace

template <typename T>
MatrixT<T> MatrixT<T>::MatMul(const MatrixT& other) const {
  MatrixT out;
  out.MatMulInto(*this, other);
  return out;
}

template <typename T>
MatrixT<T> MatrixT<T>::TransposeMatMul(const MatrixT& other) const {
  MatrixT out;
  out.TransposeMatMulInto(*this, other);
  return out;
}

template <typename T>
MatrixT<T> MatrixT<T>::MatMulTranspose(const MatrixT& other) const {
  MatrixT out;
  out.MatMulTransposeInto(*this, other);
  return out;
}

template <typename T>
void MatrixT<T>::MatMulInto(const MatrixT& a, const MatrixT& b) {
  DBAUGUR_CHECK_EQ(a.cols_, b.rows_, "Matrix::MatMul inner dimensions");
  Resize(a.rows_, b.cols_);
  CheckNoAlias(*this, a, b, "Matrix::MatMulInto");
  GemmNN(a.rows_, a.cols_, b.cols_, a.data(), b.data(), data(), false);
}

template <typename T>
void MatrixT<T>::AddMatMul(const MatrixT& a, const MatrixT& b) {
  DBAUGUR_CHECK_EQ(a.cols_, b.rows_, "Matrix::AddMatMul inner dimensions");
  DBAUGUR_CHECK(rows_ == a.rows_ && cols_ == b.cols_,
                "Matrix::AddMatMul destination shape ", rows_, "x", cols_,
                " does not match product ", a.rows_, "x", b.cols_);
  CheckNoAlias(*this, a, b, "Matrix::AddMatMul");
  GemmNN(a.rows_, a.cols_, b.cols_, a.data(), b.data(), data(), true);
}

template <typename T>
void MatrixT<T>::TransposeMatMulInto(const MatrixT& a, const MatrixT& b) {
  // (a^T * b): a is (m x n), b is (m x p), result (n x p).
  DBAUGUR_CHECK_EQ(a.rows_, b.rows_, "Matrix::TransposeMatMul row counts");
  Resize(a.cols_, b.cols_);
  CheckNoAlias(*this, a, b, "Matrix::TransposeMatMulInto");
  GemmTN(a.rows_, a.cols_, b.cols_, a.data(), b.data(), data(), false);
}

template <typename T>
void MatrixT<T>::AddTransposeMatMul(const MatrixT& a, const MatrixT& b) {
  DBAUGUR_CHECK_EQ(a.rows_, b.rows_, "Matrix::AddTransposeMatMul row counts");
  DBAUGUR_CHECK(rows_ == a.cols_ && cols_ == b.cols_,
                "Matrix::AddTransposeMatMul destination shape ", rows_, "x",
                cols_, " does not match product ", a.cols_, "x", b.cols_);
  CheckNoAlias(*this, a, b, "Matrix::AddTransposeMatMul");
  GemmTN(a.rows_, a.cols_, b.cols_, a.data(), b.data(), data(), true);
}

template <typename T>
void MatrixT<T>::MatMulTransposeInto(const MatrixT& a, const MatrixT& b) {
  // (a * b^T): a is (m x n), b is (p x n), result (m x p).
  DBAUGUR_CHECK_EQ(a.cols_, b.cols_, "Matrix::MatMulTranspose column counts");
  Resize(a.rows_, b.rows_);
  CheckNoAlias(*this, a, b, "Matrix::MatMulTransposeInto");
  GemmNT(a.rows_, a.cols_, b.rows_, a.data(), b.data(), data(), false);
}

template <typename T>
void MatrixT<T>::AddMatMulTranspose(const MatrixT& a, const MatrixT& b) {
  DBAUGUR_CHECK_EQ(a.cols_, b.cols_,
                   "Matrix::AddMatMulTranspose column counts");
  DBAUGUR_CHECK(rows_ == a.rows_ && cols_ == b.rows_,
                "Matrix::AddMatMulTranspose destination shape ", rows_, "x",
                cols_, " does not match product ", a.rows_, "x", b.rows_);
  CheckNoAlias(*this, a, b, "Matrix::AddMatMulTranspose");
  GemmNT(a.rows_, a.cols_, b.rows_, a.data(), b.data(), data(), true);
}

template <typename T>
MatrixT<T> MatrixT<T>::Transposed() const {
  MatrixT out(cols_, rows_);
  // Blocked so both the read and write side stay within a few cache lines
  // per tile instead of striding the full matrix on one side.
  constexpr size_t kTile = 32;
  const T* src = data();
  T* dst = out.data();
  for (size_t ib = 0; ib < rows_; ib += kTile) {
    const size_t ie = std::min(rows_, ib + kTile);
    for (size_t jb = 0; jb < cols_; jb += kTile) {
      const size_t je = std::min(cols_, jb + kTile);
      for (size_t i = ib; i < ie; ++i) {
        for (size_t j = jb; j < je; ++j) {
          dst[j * rows_ + i] = src[i * cols_ + j];
        }
      }
    }
  }
  return out;
}

template <typename T>
void MatrixT<T>::AddRowVector(const MatrixT& v) {
  DBAUGUR_CHECK_EQ(v.size(), cols_, "Matrix::AddRowVector width mismatch");
  for (size_t i = 0; i < rows_; ++i) {
    T* r = row(i);
    for (size_t j = 0; j < cols_; ++j) r[j] += v.data_[j];
  }
}

template <typename T>
MatrixT<T> MatrixT<T>::ColSum() const {
  MatrixT out(1, cols_, T(0));
  out.AddColSumOf(*this);
  return out;
}

template <typename T>
void MatrixT<T>::AddColSumOf(const MatrixT& other) {
  DBAUGUR_CHECK(rows_ == 1 && cols_ == other.cols_,
                "Matrix::AddColSumOf needs a 1x", other.cols_,
                " destination, got ", rows_, "x", cols_);
  T* acc = data();
  for (size_t i = 0; i < other.rows_; ++i) {
    const T* r = other.row(i);
    for (size_t j = 0; j < cols_; ++j) acc[j] += r[j];
  }
}

template <typename T>
double MatrixT<T>::SquaredNorm() const {
  double s = 0.0;
  for (T x : data_) s += static_cast<double>(x) * static_cast<double>(x);
  return s;
}

template <typename T>
std::string MatrixT<T>::ToString(int precision) const {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  for (size_t i = 0; i < rows_; ++i) {
    oss << '[';
    for (size_t j = 0; j < cols_; ++j) {
      oss << (*this)(i, j);
      if (j + 1 < cols_) oss << ", ";
    }
    oss << "]\n";
  }
  return oss.str();
}

template class MatrixT<double>;
template class MatrixT<float>;

void Tensor3::Fill(double v) {
  for (double& x : data_) x = v;
}

void Tensor3::Add(const Tensor3& other) {
  DBAUGUR_CHECK(SameShape(other), "Tensor3::Add shape mismatch: ", batch_,
                "x", channels_, "x", time_, " vs ", other.batch_, "x",
                other.channels_, "x", other.time_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

}  // namespace dbaugur::nn

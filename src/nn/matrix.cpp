#include "nn/matrix.h"

#include <cmath>
#include <sstream>
#include <utility>

namespace dbaugur::nn {

Matrix::Matrix(size_t rows, size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  assert(data_.size() == rows_ * cols_);
}

void Matrix::Fill(double v) {
  for (double& x : data_) x = v;
}

void Matrix::Add(const Matrix& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaled(const Matrix& other, double alpha) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::Sub(const Matrix& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::Hadamard(const Matrix& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void Matrix::Scale(double alpha) {
  for (double& x : data_) x *= alpha;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* arow = row(i);
    double* orow = out.row(i);
    for (size_t k = 0; k < cols_; ++k) {
      double a = arow[k];
      if (a == 0.0) continue;
      const double* brow = other.row(k);
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::TransposeMatMul(const Matrix& other) const {
  // (this^T * other): this is (m x n), other is (m x p), result (n x p).
  assert(rows_ == other.rows_);
  Matrix out(cols_, other.cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* arow = row(i);
    const double* brow = other.row(i);
    for (size_t k = 0; k < cols_; ++k) {
      double a = arow[k];
      if (a == 0.0) continue;
      double* orow = out.row(k);
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::MatMulTranspose(const Matrix& other) const {
  // (this * other^T): this is (m x n), other is (p x n), result (m x p).
  assert(cols_ == other.cols_);
  Matrix out(rows_, other.rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* arow = row(i);
    double* orow = out.row(i);
    for (size_t j = 0; j < other.rows_; ++j) {
      const double* brow = other.row(j);
      double s = 0.0;
      for (size_t k = 0; k < cols_; ++k) s += arow[k] * brow[k];
      orow[j] = s;
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

void Matrix::AddRowVector(const Matrix& v) {
  assert(v.size() == cols_);
  for (size_t i = 0; i < rows_; ++i) {
    double* r = row(i);
    for (size_t j = 0; j < cols_; ++j) r[j] += v.data_[j];
  }
}

Matrix Matrix::ColSum() const {
  Matrix out(1, cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* r = row(i);
    for (size_t j = 0; j < cols_; ++j) out.data()[j] += r[j];
  }
  return out;
}

double Matrix::SquaredNorm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return s;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  for (size_t i = 0; i < rows_; ++i) {
    oss << '[';
    for (size_t j = 0; j < cols_; ++j) {
      oss << (*this)(i, j);
      if (j + 1 < cols_) oss << ", ";
    }
    oss << "]\n";
  }
  return oss.str();
}

void Tensor3::Fill(double v) {
  for (double& x : data_) x = v;
}

void Tensor3::Add(const Tensor3& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

}  // namespace dbaugur::nn

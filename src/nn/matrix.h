// Dense row-major matrix used throughout the neural-net substrate.
//
// Matmuls route through the register-blocked kernels in nn/gemm.h. Every
// product has an allocating convenience form (MatMul & friends) plus
// into/accumulate variants (MatMulInto, AddMatMul, ...) that write into an
// existing matrix, so training loops can run with zero steady-state heap
// allocation: Resize() reuses the underlying buffer whenever capacity
// suffices, exactly like std::vector.
//
// MatrixT is templated on the element type so the same layer/optimizer code
// can train in f64 (the default, bit-stable reference path) or f32 (twice the
// SIMD lanes per vector; see the Precision option on the model wrappers).
// Only double and float are instantiated (explicitly, in matrix.cpp).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/contracts.h"

namespace dbaugur::nn {

/// Row-major dense matrix of T (double or float).
template <typename T>
class MatrixT {
 public:
  using value_type = T;

  MatrixT() = default;
  MatrixT(size_t rows, size_t cols, T fill = T(0))
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  /// Builds from explicit data (size must equal rows*cols).
  MatrixT(size_t rows, size_t cols, std::vector<T> data);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  // Element access is the innermost loop of every kernel, so the bounds
  // checks are DCHECK-tier: free in Release, active in debug and sanitizer
  // builds (which define DBAUGUR_ENABLE_DCHECKS).
  T& operator()(size_t r, size_t c) {
    DBAUGUR_DCHECK(r < rows_ && c < cols_, "Matrix(", r, ",", c,
                   ") out of bounds for ", rows_, "x", cols_);
    return data_[r * cols_ + c];
  }
  T operator()(size_t r, size_t c) const {
    DBAUGUR_DCHECK(r < rows_ && c < cols_, "Matrix(", r, ",", c,
                   ") out of bounds for ", rows_, "x", cols_);
    return data_[r * cols_ + c];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T* row(size_t r) {
    DBAUGUR_DCHECK_LT(r, rows_, "Matrix::row out of bounds");
    return &data_[r * cols_];
  }
  const T* row(size_t r) const {
    DBAUGUR_DCHECK_LT(r, rows_, "Matrix::row out of bounds");
    return &data_[r * cols_];
  }

  /// Sets every element to `v`.
  void Fill(T v);

  /// Reshapes to rows x cols, reusing the existing buffer when its capacity
  /// suffices (no heap traffic in steady-state training). Element values are
  /// unspecified afterwards; callers overwrite or Fill().
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// this += other (shapes must match).
  void Add(const MatrixT& other);
  /// this += alpha * other.
  void AddScaled(const MatrixT& other, T alpha);
  /// this -= other.
  void Sub(const MatrixT& other);
  /// Element-wise multiply in place.
  void Hadamard(const MatrixT& other);
  /// Scale all elements.
  void Scale(T alpha);

  /// Returns this * other.
  MatrixT MatMul(const MatrixT& other) const;
  /// Returns this^T * other (avoids materializing the transpose).
  MatrixT TransposeMatMul(const MatrixT& other) const;
  /// Returns this * other^T.
  MatrixT MatMulTranspose(const MatrixT& other) const;
  /// Returns the transpose.
  MatrixT Transposed() const;

  // Fused into/accumulate products. The destination (this) is resized as
  // needed by the Into forms and must already have the product shape for the
  // Add forms; it must not alias either operand (checked).

  /// this = a * b.
  void MatMulInto(const MatrixT& a, const MatrixT& b);
  /// this += a * b.
  void AddMatMul(const MatrixT& a, const MatrixT& b);
  /// this = a^T * b.
  void TransposeMatMulInto(const MatrixT& a, const MatrixT& b);
  /// this += a^T * b (the dw accumulation pattern, one pass, no temporary).
  void AddTransposeMatMul(const MatrixT& a, const MatrixT& b);
  /// this = a * b^T.
  void MatMulTransposeInto(const MatrixT& a, const MatrixT& b);
  /// this += a * b^T.
  void AddMatMulTranspose(const MatrixT& a, const MatrixT& b);

  /// Adds a row vector (1 x cols or plain cols-length matrix row) to each row.
  void AddRowVector(const MatrixT& v);
  /// Column-wise sum producing a 1 x cols matrix (bias gradients).
  MatrixT ColSum() const;
  /// this (1 x n) += column-wise sum of other (m x n); fuses the
  /// db.Add(g.ColSum()) pattern without the temporary.
  void AddColSumOf(const MatrixT& other);

  /// Applies f element-wise in place.
  template <typename F>
  void Apply(F f) {
    for (T& x : data_) x = f(x);
  }
  /// Returns a copy with f applied element-wise.
  template <typename F>
  MatrixT Map(F f) const {
    MatrixT out = *this;
    out.Apply(f);
    return out;
  }

  /// Frobenius-norm squared (used in tests and gradient clipping). Always
  /// accumulated and returned in double, even for f32 matrices, so gradient
  /// clipping thresholds behave identically across precisions.
  double SquaredNorm() const;

  /// Debug rendering.
  std::string ToString(int precision = 3) const;

  bool SameShape(const MatrixT& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<T> data_;
};

extern template class MatrixT<double>;
extern template class MatrixT<float>;

/// The default (f64) matrix — the name the rest of the codebase uses.
using Matrix = MatrixT<double>;
/// The f32 twin used by the opt-in f32 training path.
using MatrixF = MatrixT<float>;

/// 3-D tensor (batch, channels, time) for convolutional layers; contiguous
/// with time innermost.
class Tensor3 {
 public:
  Tensor3() = default;
  Tensor3(size_t batch, size_t channels, size_t time, double fill = 0.0)
      : batch_(batch),
        channels_(channels),
        time_(time),
        data_(batch * channels * time, fill) {}

  size_t batch() const { return batch_; }
  size_t channels() const { return channels_; }
  size_t time() const { return time_; }
  size_t size() const { return data_.size(); }

  double& operator()(size_t b, size_t c, size_t t) {
    DBAUGUR_DCHECK(b < batch_ && c < channels_ && t < time_, "Tensor3(", b,
                   ",", c, ",", t, ") out of bounds for ", batch_, "x",
                   channels_, "x", time_);
    return data_[(b * channels_ + c) * time_ + t];
  }
  double operator()(size_t b, size_t c, size_t t) const {
    DBAUGUR_DCHECK(b < batch_ && c < channels_ && t < time_, "Tensor3(", b,
                   ",", c, ",", t, ") out of bounds for ", batch_, "x",
                   channels_, "x", time_);
    return data_[(b * channels_ + c) * time_ + t];
  }

  double* lane(size_t b, size_t c) {
    DBAUGUR_DCHECK(b < batch_ && c < channels_, "Tensor3::lane(", b, ",", c,
                   ") out of bounds for ", batch_, "x", channels_);
    return &data_[(b * channels_ + c) * time_];
  }
  const double* lane(size_t b, size_t c) const {
    DBAUGUR_DCHECK(b < batch_ && c < channels_, "Tensor3::lane(", b, ",", c,
                   ") out of bounds for ", batch_, "x", channels_);
    return &data_[(b * channels_ + c) * time_];
  }

  void Fill(double v);
  void Add(const Tensor3& other);

  /// Reshapes, reusing the buffer when capacity suffices; element values are
  /// unspecified afterwards (see Matrix::Resize).
  void Resize(size_t batch, size_t channels, size_t time) {
    batch_ = batch;
    channels_ = channels;
    time_ = time;
    data_.resize(batch * channels * time);
  }

  template <typename F>
  void Apply(F f) {
    for (double& x : data_) x = f(x);
  }

  bool SameShape(const Tensor3& o) const {
    return batch_ == o.batch_ && channels_ == o.channels_ && time_ == o.time_;
  }

 private:
  size_t batch_ = 0;
  size_t channels_ = 0;
  size_t time_ = 0;
  std::vector<double> data_;
};

}  // namespace dbaugur::nn

#include "nn/optimizer.h"

#include <cmath>

namespace dbaugur::nn {

template <typename T>
void SGDT<T>::Step(std::vector<ParamT<T>>& params) {
  for (ParamT<T>& p : params) p.value->AddScaled(*p.grad, static_cast<T>(-lr_));
}

template <typename T>
void AdamT<T>::Step(std::vector<ParamT<T>>& params) {
  bool needs_init = m_.size() != params.size();
  if (!needs_init) {
    for (size_t k = 0; k < params.size(); ++k) {
      if (!m_[k].SameShape(*params[k].value)) {
        needs_init = true;
        break;
      }
    }
  }
  if (needs_init) {
    m_.clear();
    v_.clear();
    for (ParamT<T>& p : params) {
      m_.emplace_back(p.value->rows(), p.value->cols(), T(0));
      v_.emplace_back(p.value->rows(), p.value->cols(), T(0));
    }
    t_ = 0;
  }
  ++t_;
  double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t k = 0; k < params.size(); ++k) {
    MatrixT<T>& value = *params[k].value;
    const MatrixT<T>& grad = *params[k].grad;
    MatrixT<T>& m = m_[k];
    MatrixT<T>& v = v_[k];
    // Moment math in double at both precisions: for T == double this is
    // expression-identical to the pre-template optimizer; for T == float it
    // costs only the rounding of each stored buffer/value.
    for (size_t i = 0; i < value.size(); ++i) {
      double g = static_cast<double>(grad.data()[i]);
      double mi = beta1_ * static_cast<double>(m.data()[i]) + (1.0 - beta1_) * g;
      double vi =
          beta2_ * static_cast<double>(v.data()[i]) + (1.0 - beta2_) * g * g;
      m.data()[i] = static_cast<T>(mi);
      v.data()[i] = static_cast<T>(vi);
      double mhat = mi / bc1;
      double vhat = vi / bc2;
      value.data()[i] = static_cast<T>(static_cast<double>(value.data()[i]) -
                                       lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

template <typename T>
void AdamT<T>::Reset() {
  m_.clear();
  v_.clear();
  t_ = 0;
}

template class SGDT<double>;
template class SGDT<float>;
template class AdamT<double>;
template class AdamT<float>;

}  // namespace dbaugur::nn

#include "nn/optimizer.h"

#include <cmath>

namespace dbaugur::nn {

void SGD::Step(std::vector<Param>& params) {
  for (Param& p : params) p.value->AddScaled(*p.grad, -lr_);
}

void Adam::Step(std::vector<Param>& params) {
  bool needs_init = m_.size() != params.size();
  if (!needs_init) {
    for (size_t k = 0; k < params.size(); ++k) {
      if (!m_[k].SameShape(*params[k].value)) {
        needs_init = true;
        break;
      }
    }
  }
  if (needs_init) {
    m_.clear();
    v_.clear();
    for (Param& p : params) {
      m_.emplace_back(p.value->rows(), p.value->cols(), 0.0);
      v_.emplace_back(p.value->rows(), p.value->cols(), 0.0);
    }
    t_ = 0;
  }
  ++t_;
  double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t k = 0; k < params.size(); ++k) {
    Matrix& value = *params[k].value;
    const Matrix& grad = *params[k].grad;
    Matrix& m = m_[k];
    Matrix& v = v_[k];
    for (size_t i = 0; i < value.size(); ++i) {
      double g = grad.data()[i];
      m.data()[i] = beta1_ * m.data()[i] + (1.0 - beta1_) * g;
      v.data()[i] = beta2_ * v.data()[i] + (1.0 - beta2_) * g * g;
      double mhat = m.data()[i] / bc1;
      double vhat = v.data()[i] / bc2;
      value.data()[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::Reset() {
  m_.clear();
  v_.clear();
  t_ = 0;
}

}  // namespace dbaugur::nn

// Gradient-based optimizers. The paper trains all neural models with Adam.
//
// Templated on the parameter element type; hyperparameters and the Adam
// moment math stay in double at both precisions (an f32 model pays only the
// final rounding on each updated value, and the f64 instantiation is
// expression-identical to the pre-template code).

#pragma once

#include <vector>

#include "nn/layer.h"

namespace dbaugur::nn {

/// Optimizer interface: applies accumulated gradients to parameter values.
template <typename T>
class OptimizerT {
 public:
  virtual ~OptimizerT() = default;
  /// Updates each parameter in place from its gradient. Gradients are NOT
  /// zeroed — callers do that via Layer::ZeroGrad between steps.
  virtual void Step(std::vector<ParamT<T>>& params) = 0;
};

/// Plain stochastic gradient descent (used as a baseline in tests).
template <typename T>
class SGDT : public OptimizerT<T> {
 public:
  explicit SGDT(double lr) : lr_(lr) {}
  void Step(std::vector<ParamT<T>>& params) override;

 private:
  double lr_;
};

/// Adam (Kingma & Ba, 2015) with per-parameter first/second moment buffers.
/// Buffers are keyed by position in the param list, so Step must always be
/// called with the same parameter ordering.
template <typename T>
class AdamT : public OptimizerT<T> {
 public:
  explicit AdamT(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                 double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void Step(std::vector<ParamT<T>>& params) override;

  /// Resets the moment buffers and the step counter.
  void Reset();

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 private:
  double lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::vector<MatrixT<T>> m_, v_;
};

extern template class SGDT<double>;
extern template class SGDT<float>;
extern template class AdamT<double>;
extern template class AdamT<float>;

using Optimizer = OptimizerT<double>;
using OptimizerF = OptimizerT<float>;
using SGD = SGDT<double>;
using SGDF = SGDT<float>;
using Adam = AdamT<double>;
using AdamF = AdamT<float>;

}  // namespace dbaugur::nn

// Gradient-based optimizers. The paper trains all neural models with Adam.

#pragma once

#include <vector>

#include "nn/layer.h"

namespace dbaugur::nn {

/// Optimizer interface: applies accumulated gradients to parameter values.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Updates each parameter in place from its gradient. Gradients are NOT
  /// zeroed — callers do that via Layer::ZeroGrad between steps.
  virtual void Step(std::vector<Param>& params) = 0;
};

/// Plain stochastic gradient descent (used as a baseline in tests).
class SGD : public Optimizer {
 public:
  explicit SGD(double lr) : lr_(lr) {}
  void Step(std::vector<Param>& params) override;

 private:
  double lr_;
};

/// Adam (Kingma & Ba, 2015) with per-parameter first/second moment buffers.
/// Buffers are keyed by position in the param list, so Step must always be
/// called with the same parameter ordering.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void Step(std::vector<Param>& params) override;

  /// Resets the moment buffers and the step counter.
  void Reset();

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 private:
  double lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::vector<Matrix> m_, v_;
};

}  // namespace dbaugur::nn

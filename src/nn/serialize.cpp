#include "nn/serialize.h"

#include <cstring>

namespace dbaugur::nn {

namespace {
constexpr uint32_t kMagicF32 = 0xDBA6A0F1;
constexpr uint32_t kMagicF64 = 0xDBA6A0F2;

void PutU32(std::vector<uint8_t>* buf, uint32_t v) {
  for (int i = 0; i < 4; ++i) buf->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

bool GetU32(const std::vector<uint8_t>& buf, size_t* pos, uint32_t* v) {
  if (*pos + 4 > buf.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(buf[*pos + static_cast<size_t>(i)]) << (8 * i);
  }
  *pos += 4;
  return true;
}

template <typename T>
std::vector<uint8_t> SerializeImpl(const std::vector<ParamT<T>>& params,
                                   bool f64) {
  std::vector<uint8_t> buf;
  PutU32(&buf, f64 ? kMagicF64 : kMagicF32);
  PutU32(&buf, static_cast<uint32_t>(params.size()));
  for (const ParamT<T>& p : params) {
    PutU32(&buf, static_cast<uint32_t>(p.value->rows()));
    PutU32(&buf, static_cast<uint32_t>(p.value->cols()));
    for (size_t i = 0; i < p.value->size(); ++i) {
      if (f64) {
        double d = static_cast<double>(p.value->data()[i]);
        uint8_t bytes[8];
        std::memcpy(bytes, &d, 8);
        buf.insert(buf.end(), bytes, bytes + 8);
      } else {
        float f = static_cast<float>(p.value->data()[i]);
        uint8_t bytes[4];
        std::memcpy(bytes, &f, 4);
        buf.insert(buf.end(), bytes, bytes + 4);
      }
    }
  }
  return buf;
}

template <typename T>
Status DeserializeImpl(const std::vector<uint8_t>& buffer,
                       std::vector<ParamT<T>>& params) {
  size_t pos = 0;
  uint32_t magic = 0, count = 0;
  if (!GetU32(buffer, &pos, &magic) ||
      (magic != kMagicF32 && magic != kMagicF64)) {
    return Status::InvalidArgument("bad magic in parameter buffer");
  }
  const size_t width = magic == kMagicF64 ? 8 : 4;
  if (!GetU32(buffer, &pos, &count) || count != params.size()) {
    return Status::InvalidArgument("parameter count mismatch");
  }
  for (ParamT<T>& p : params) {
    uint32_t rows = 0, cols = 0;
    if (!GetU32(buffer, &pos, &rows) || !GetU32(buffer, &pos, &cols)) {
      return Status::InvalidArgument("truncated parameter header");
    }
    if (rows != p.value->rows() || cols != p.value->cols()) {
      return Status::InvalidArgument("parameter shape mismatch");
    }
    size_t n = static_cast<size_t>(rows) * cols;
    if (pos + width * n > buffer.size()) {
      return Status::InvalidArgument("truncated parameter data");
    }
    for (size_t i = 0; i < n; ++i) {
      if (width == 8) {
        double d;
        std::memcpy(&d, &buffer[pos], 8);
        p.value->data()[i] = static_cast<T>(d);
      } else {
        float f;
        std::memcpy(&f, &buffer[pos], 4);
        p.value->data()[i] = static_cast<T>(f);
      }
      pos += width;
    }
  }
  return Status::OK();
}

template <typename T>
int64_t StorageBytesImpl(const std::vector<ParamT<T>>& params) {
  int64_t bytes = 8;  // magic + count
  for (const ParamT<T>& p : params) {
    bytes += 8 + 4 * static_cast<int64_t>(p.value->size());
  }
  return bytes;
}

}  // namespace

std::vector<uint8_t> SerializeParams(const std::vector<Param>& params) {
  return SerializeImpl(params, /*f64=*/false);
}

std::vector<uint8_t> SerializeParams(const std::vector<ParamF>& params) {
  return SerializeImpl(params, /*f64=*/false);
}

std::vector<uint8_t> SerializeParamsF64(const std::vector<Param>& params) {
  return SerializeImpl(params, /*f64=*/true);
}

std::vector<uint8_t> SerializeParamsF64(const std::vector<ParamF>& params) {
  return SerializeImpl(params, /*f64=*/true);
}

Status DeserializeParams(const std::vector<uint8_t>& buffer,
                         std::vector<Param>& params) {
  return DeserializeImpl(buffer, params);
}

Status DeserializeParams(const std::vector<uint8_t>& buffer,
                         std::vector<ParamF>& params) {
  return DeserializeImpl(buffer, params);
}

int64_t StorageBytes(const std::vector<Param>& params) {
  return StorageBytesImpl(params);
}

int64_t StorageBytes(const std::vector<ParamF>& params) {
  return StorageBytesImpl(params);
}

}  // namespace dbaugur::nn

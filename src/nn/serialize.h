// Parameter (de)serialization. Weights are stored as float32 with a small
// header per tensor — this is what Table II's "Storage" column measures.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "nn/layer.h"

namespace dbaugur::nn {

/// Serializes all parameters (values only) into a compact byte buffer.
std::vector<uint8_t> SerializeParams(const std::vector<Param>& params);

/// Restores parameter values from a buffer produced by SerializeParams.
/// The parameter list must have the same tensors in the same order.
Status DeserializeParams(const std::vector<uint8_t>& buffer,
                         std::vector<Param>& params);

/// Storage footprint in bytes of the serialized form.
int64_t StorageBytes(const std::vector<Param>& params);

}  // namespace dbaugur::nn

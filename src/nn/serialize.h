// Parameter (de)serialization. Two on-wire widths share one header layout
// (magic, tensor count, per-tensor rows/cols) and one validation path:
//
//   * float32 — the compact form Table II's "Storage" column measures,
//   * float64 — lossless, used by system snapshots (serve/) so a restored
//     service reproduces bit-identical forecasts.
//
// DeserializeParams dispatches on the magic, so either buffer restores into
// the same parameter list; corrupt magic / count / shape / truncation are all
// rejected with InvalidArgument.
//
// The ParamF overloads serve the opt-in f32 training path: for f32 models the
// float32 wire form is itself lossless (float values pass through unchanged),
// and a float64 buffer written by an f64 twin restores with one rounding per
// value.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "nn/layer.h"

namespace dbaugur::nn {

/// Serializes all parameters (values only) as float32 — compact; lossy for
/// f64 parameters, lossless for f32 parameters.
std::vector<uint8_t> SerializeParams(const std::vector<Param>& params);
std::vector<uint8_t> SerializeParams(const std::vector<ParamF>& params);

/// Serializes all parameters as float64 — lossless round trip.
std::vector<uint8_t> SerializeParamsF64(const std::vector<Param>& params);
std::vector<uint8_t> SerializeParamsF64(const std::vector<ParamF>& params);

/// Restores parameter values from a buffer produced by either serializer.
/// The parameter list must have the same tensors in the same order.
Status DeserializeParams(const std::vector<uint8_t>& buffer,
                         std::vector<Param>& params);
Status DeserializeParams(const std::vector<uint8_t>& buffer,
                         std::vector<ParamF>& params);

/// Storage footprint in bytes of the serialized float32 form.
int64_t StorageBytes(const std::vector<Param>& params);
int64_t StorageBytes(const std::vector<ParamF>& params);

}  // namespace dbaugur::nn

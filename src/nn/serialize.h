// Parameter (de)serialization. Two on-wire widths share one header layout
// (magic, tensor count, per-tensor rows/cols) and one validation path:
//
//   * float32 — the compact form Table II's "Storage" column measures,
//   * float64 — lossless, used by system snapshots (serve/) so a restored
//     service reproduces bit-identical forecasts.
//
// DeserializeParams dispatches on the magic, so either buffer restores into
// the same parameter list; corrupt magic / count / shape / truncation are all
// rejected with InvalidArgument.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "nn/layer.h"

namespace dbaugur::nn {

/// Serializes all parameters (values only) as float32 — compact, lossy.
std::vector<uint8_t> SerializeParams(const std::vector<Param>& params);

/// Serializes all parameters as float64 — lossless round trip.
std::vector<uint8_t> SerializeParamsF64(const std::vector<Param>& params);

/// Restores parameter values from a buffer produced by either serializer.
/// The parameter list must have the same tensors in the same order.
Status DeserializeParams(const std::vector<uint8_t>& buffer,
                         std::vector<Param>& params);

/// Storage footprint in bytes of the serialized float32 form.
int64_t StorageBytes(const std::vector<Param>& params);

}  // namespace dbaugur::nn

// Declarations of the per-tier vector kernels behind the GEMM and LSTM-gate
// dispatch tables (see gemm.cpp / lstm_kernels.cpp).
//
// Each tier namespace is one translation unit (src/nn/simd_tier_<isa>.cpp)
// compiled with that ISA's -m flags; the bodies are shared via
// simd_kernels.inc against the `simd::best` wrapper types. Keeping the tiers
// in distinct namespaces (instead of one inline helper compiled three ways)
// is what makes the scheme ODR-safe: an AVX-512-codegen'd helper can never be
// linker-merged into a binary that must run on an AVX2-only host.
//
// The suffix is the element type: ...D = f64 lanes, ...F = f32 lanes. All
// buffers are fully packed row-major (leading dimension == column count).

#pragma once

#include <cstddef>

#if defined(DBAUGUR_SIMD_HAS_SSE2) || defined(DBAUGUR_SIMD_HAS_AVX2) || \
    defined(DBAUGUR_SIMD_HAS_AVX512)

// clang-format off
#define DBAUGUR_NN_DECLARE_TIER(ns)                                            \
  namespace ns {                                                               \
  /* Rows [r0, r1) of c (m x n) = [c +] a (m x k) * b (k x n). */              \
  void GemmNNRowsD(std::size_t r0, std::size_t r1, std::size_t k,              \
                   std::size_t n, const double* a, const double* b, double* c, \
                   bool accumulate);                                           \
  void GemmNNRowsF(std::size_t r0, std::size_t r1, std::size_t k,              \
                   std::size_t n, const float* a, const float* b, float* c,    \
                   bool accumulate);                                           \
  /* Rows [k0, k1) of c (k x n) = [c +] a^T * b; a is (m x k), b (m x n). */   \
  void GemmTNRowsD(std::size_t k0, std::size_t k1, std::size_t m,              \
                   std::size_t k, std::size_t n, const double* a,              \
                   const double* b, double* c, bool accumulate);               \
  void GemmTNRowsF(std::size_t k0, std::size_t k1, std::size_t m,              \
                   std::size_t k, std::size_t n, const float* a,               \
                   const float* b, float* c, bool accumulate);                 \
  /* Rows [r0, r1) of c (m x p) = [c +] a (m x k) * b^T; b is (p x k). */      \
  void GemmNTRowsD(std::size_t r0, std::size_t r1, std::size_t k,              \
                   std::size_t p, const double* a, const double* b, double* c, \
                   bool accumulate);                                           \
  void GemmNTRowsF(std::size_t r0, std::size_t r1, std::size_t k,              \
                   std::size_t p, const float* a, const float* b, float* c,    \
                   bool accumulate);                                           \
  /* Fused LSTM gate forward: z is [batch, 4*hidden] in [i|f|g|o] layout,      \
     all other buffers [batch, hidden]. */                                     \
  void LstmGatesForwardD(std::size_t batch, std::size_t hidden,                \
                         const double* z, const double* c_prev, double* ig,    \
                         double* fg, double* gg, double* og, double* c,        \
                         double* tanh_c, double* h);                           \
  void LstmGatesForwardF(std::size_t batch, std::size_t hidden,                \
                         const float* z, const float* c_prev, float* ig,       \
                         float* fg, float* gg, float* og, float* c,            \
                         float* tanh_c, float* h);                             \
  /* Fused LSTM gate backward: writes dz [batch, 4*hidden] and dc_prev. */     \
  void LstmGatesBackwardD(std::size_t batch, std::size_t hidden,               \
                          const double* dh, const double* dc_next,             \
                          const double* tanh_c, const double* ig,              \
                          const double* fg, const double* gg, const double* og,\
                          const double* c_prev, double* dz, double* dc_prev);  \
  void LstmGatesBackwardF(std::size_t batch, std::size_t hidden,               \
                          const float* dh, const float* dc_next,               \
                          const float* tanh_c, const float* ig,                \
                          const float* fg, const float* gg, const float* og,   \
                          const float* c_prev, float* dz, float* dc_prev);     \
  }
// clang-format on

namespace dbaugur::nn {

#if defined(DBAUGUR_SIMD_HAS_SSE2)
DBAUGUR_NN_DECLARE_TIER(tier_sse2)
#endif
#if defined(DBAUGUR_SIMD_HAS_AVX2)
DBAUGUR_NN_DECLARE_TIER(tier_avx2)
#endif
#if defined(DBAUGUR_SIMD_HAS_AVX512)
DBAUGUR_NN_DECLARE_TIER(tier_avx512)
#endif

}  // namespace dbaugur::nn

#undef DBAUGUR_NN_DECLARE_TIER

#endif  // any tier compiled

// AVX2+FMA tier for the nn vector kernels. Compiled with -mavx2 -mfma
// -ffp-contract=off (explicit Fmadd only — no compiler-formed contractions;
// see src/CMakeLists.txt).

#include "common/simd.h"

#if defined(DBAUGUR_SIMD_HAS_AVX2)

#if !defined(__AVX2__) || !defined(__FMA__)
#error "simd_tier_avx2.cpp must be compiled with -mavx2 -mfma"
#endif

#define DBAUGUR_NN_TIER_NS tier_avx2
#include "nn/simd_kernels.inc"

#endif  // DBAUGUR_SIMD_HAS_AVX2

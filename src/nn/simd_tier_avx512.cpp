// AVX-512 tier for the nn vector kernels. Compiled with -mavx512f
// -mavx512dq -mavx512vl -ffp-contract=off (see src/CMakeLists.txt).
//
// Everything here lives in nn::tier_avx512 with internal helpers in an
// anonymous namespace, so no AVX-512 codegen can be ODR-merged into symbols
// reachable on narrower hosts.

#include "common/simd.h"

#if defined(DBAUGUR_SIMD_HAS_AVX512)

#if !defined(__AVX512F__) || !defined(__AVX512DQ__) || !defined(__AVX512VL__)
#error "simd_tier_avx512.cpp must be compiled with -mavx512f -mavx512dq -mavx512vl"
#endif

#define DBAUGUR_NN_TIER_NS tier_avx512
#include "nn/simd_kernels.inc"

#endif  // DBAUGUR_SIMD_HAS_AVX512

// SSE2 tier for the nn vector kernels. Compiled with baseline x86-64 flags
// plus -ffp-contract=off (no FMA on this tier; see src/CMakeLists.txt).

#include "common/simd.h"

#if defined(DBAUGUR_SIMD_HAS_SSE2)

#if !defined(__SSE2__)
#error "simd_tier_sse2.cpp must be compiled for an SSE2 target"
#endif

#define DBAUGUR_NN_TIER_NS tier_sse2
#include "nn/simd_kernels.inc"

#endif  // DBAUGUR_SIMD_HAS_SSE2

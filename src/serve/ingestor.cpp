#include "serve/ingestor.h"

#include <utility>

#include "common/contracts.h"

namespace dbaugur::serve {

TraceIngestor::TraceIngestor(const IngestorOptions& opts) : opts_(opts) {
  DBAUGUR_CHECK(opts_.capacity >= 1, "TraceIngestor capacity must be >= 1");
  queue_.reserve(opts_.capacity);
}

bool TraceIngestor::Offer(const TraceEvent& event) {
  if (event.template_id >= opts_.max_templates) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= opts_.capacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    queue_.push_back(event);
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

size_t TraceIngestor::Drain(std::vector<TraceEvent>* out) {
  std::vector<TraceEvent> batch;
  batch.reserve(opts_.capacity);
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.swap(batch);
  }
  out->insert(out->end(), batch.begin(), batch.end());
  return batch.size();
}

namespace {
// Floor division so pre-epoch timestamps bin consistently.
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}
}  // namespace

TraceBinner::TraceBinner(int64_t interval_seconds)
    : interval_(interval_seconds) {
  DBAUGUR_CHECK(interval_ > 0, "TraceBinner interval must be positive, got ",
                interval_);
}

void TraceBinner::Fold(const TraceEvent& event) {
  int64_t bin = FloorDiv(event.timestamp, interval_);
  bins_[event.template_id][bin] += event.count;
  if (!any_) {
    any_ = true;
    min_bin_ = max_bin_ = bin;
  } else {
    if (bin < min_bin_) min_bin_ = bin;
    if (bin > max_bin_) max_bin_ = bin;
  }
}

size_t TraceBinner::bin_count() const {
  if (!any_) return 0;
  return static_cast<size_t>(max_bin_ - min_bin_ + 1);
}

StatusOr<std::vector<ts::Series>> TraceBinner::Traces() const {
  if (!any_) {
    return Status::FailedPrecondition("TraceBinner: no events folded yet");
  }
  size_t len = bin_count();
  ts::Timestamp start = min_bin_ * interval_;
  std::vector<ts::Series> traces;
  traces.reserve(bins_.size());
  for (const auto& [tid, tbins] : bins_) {
    std::vector<double> values(len, 0.0);
    for (const auto& [bin, count] : tbins) {
      values[static_cast<size_t>(bin - min_bin_)] = count;
    }
    traces.emplace_back(start, interval_, std::move(values),
                        "template" + std::to_string(tid));
  }
  return traces;
}

void TraceBinner::Save(BufWriter* w) const {
  w->I64(interval_);
  w->U8(any_ ? 1 : 0);
  w->I64(min_bin_);
  w->I64(max_bin_);
  w->U64(bins_.size());
  for (const auto& [tid, tbins] : bins_) {
    w->U32(tid);
    w->U64(tbins.size());
    for (const auto& [bin, count] : tbins) {
      w->I64(bin);
      w->F64(count);
    }
  }
}

Status TraceBinner::Load(BufReader* r) {
  auto corrupt = [] {
    return Status::InvalidArgument("TraceBinner: truncated or corrupt state");
  };
  int64_t interval = 0;
  uint8_t any = 0;
  int64_t min_bin = 0;
  int64_t max_bin = 0;
  uint64_t templates = 0;
  if (!r->I64(&interval) || !r->U8(&any) || !r->I64(&min_bin) ||
      !r->I64(&max_bin) || !r->U64(&templates)) {
    return corrupt();
  }
  if (interval <= 0 || any > 1 || (any == 1 && max_bin < min_bin)) {
    return Status::InvalidArgument("TraceBinner: invalid header fields");
  }
  std::map<uint32_t, std::map<int64_t, double>> bins;
  for (uint64_t t = 0; t < templates; ++t) {
    uint32_t tid = 0;
    uint64_t n = 0;
    if (!r->U32(&tid) || !r->U64(&n)) return corrupt();
    auto& tbins = bins[tid];
    for (uint64_t i = 0; i < n; ++i) {
      int64_t bin = 0;
      double count = 0.0;
      if (!r->I64(&bin) || !r->F64(&count)) return corrupt();
      if (any == 1 && (bin < min_bin || bin > max_bin)) {
        return Status::InvalidArgument("TraceBinner: bin outside saved range");
      }
      tbins[bin] = count;
    }
  }
  interval_ = interval;
  any_ = any == 1;
  min_bin_ = min_bin;
  max_bin_ = max_bin;
  bins_ = std::move(bins);
  return Status::OK();
}

}  // namespace dbaugur::serve

#include "serve/ingestor.h"

#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "common/contracts.h"
#include "common/fault_injection.h"

namespace dbaugur::serve {

TraceIngestor::TraceIngestor(const IngestorOptions& opts) : opts_(opts) {
  DBAUGUR_CHECK(opts_.capacity >= 1, "TraceIngestor capacity must be >= 1");
  queue_.reserve(opts_.capacity);
}

bool TraceIngestor::Offer(const TraceEvent& event) {
  TraceEvent e = event;
  if (DBAUGUR_FAULT_POINT("serve.ingest.corrupt")) {
    // Garbage-row simulation: the corrupted count must be caught by the
    // quarantine checks below, never reach the binner.
    e.count = std::numeric_limits<double>::quiet_NaN();
  }
  if (e.template_id >= opts_.max_templates) {
    dropped_template_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (!std::isfinite(e.count)) {
    dropped_nonfinite_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (e.count < 0.0) {
    dropped_negative_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Absolute skew bounds come before the relative lateness check so a
  // garbage timestamp is classified by *what is wrong with it*, and so a
  // far-future event can never poison max_timestamp_ below.
  if (opts_.min_timestamp_seconds >= 0 &&
      e.timestamp < opts_.min_timestamp_seconds) {
    dropped_pre_epoch_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (opts_.max_timestamp_seconds >= 0 &&
      e.timestamp > opts_.max_timestamp_seconds) {
    dropped_future_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  {
    MutexLock lock(&mu_);
    // Overflow-safe cutoff: with the absolute bounds disabled,
    // max_timestamp_ - lateness could wrap (e.g. INT64_MIN reference). A
    // wrapped cutoff means "nothing can be stale", not UB.
    int64_t cutoff = 0;
    if (opts_.max_lateness_seconds >= 0 && any_accepted_ &&
        !__builtin_sub_overflow(max_timestamp_, opts_.max_lateness_seconds,
                                &cutoff) &&
        e.timestamp < cutoff) {
      dropped_stale_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (queue_.size() >= opts_.capacity) {
      dropped_full_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    queue_.push_back(e);
    if (!any_accepted_ || e.timestamp > max_timestamp_) {
      max_timestamp_ = e.timestamp;
      any_accepted_ = true;
    }
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

IngestDropStats TraceIngestor::drop_stats() const {
  IngestDropStats s;
  s.full = dropped_full_.load(std::memory_order_relaxed);
  s.template_id = dropped_template_.load(std::memory_order_relaxed);
  s.nonfinite = dropped_nonfinite_.load(std::memory_order_relaxed);
  s.negative = dropped_negative_.load(std::memory_order_relaxed);
  s.stale = dropped_stale_.load(std::memory_order_relaxed);
  s.pre_epoch = dropped_pre_epoch_.load(std::memory_order_relaxed);
  s.future = dropped_future_.load(std::memory_order_relaxed);
  return s;
}

size_t TraceIngestor::size() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

size_t TraceIngestor::Drain(std::vector<TraceEvent>* out) {
  std::vector<TraceEvent> batch;
  batch.reserve(opts_.capacity);
  {
    MutexLock lock(&mu_);
    queue_.swap(batch);
  }
  out->insert(out->end(), batch.begin(), batch.end());
  return batch.size();
}

namespace {
// Floor division so pre-epoch timestamps bin consistently. The origin is
// fixed at the epoch: binning must not depend on the first event a
// particular service instance happened to see, or indices would shift after
// a Save/Load into a service with a different start (boundary events would
// then land one bin off).
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

// Upper bound on the zero-filled range Traces() will materialize. With
// quarantine upstream this should be unreachable; it is the defense-in-depth
// stop against a garbage timestamp turning one Series into gigabytes.
constexpr size_t kMaxMaterializedBins = 1u << 22;  // ~4M bins per template
}  // namespace

TraceBinner::TraceBinner(int64_t interval_seconds)
    : interval_(interval_seconds) {
  DBAUGUR_CHECK(interval_ > 0, "TraceBinner interval must be positive, got ",
                interval_);
}

int64_t TraceBinner::BinIndex(ts::Timestamp timestamp) const {
  return FloorDiv(timestamp, interval_);
}

void TraceBinner::Fold(const TraceEvent& event) {
  FoldBin(event.template_id, BinIndex(event.timestamp), event.count);
}

void TraceBinner::FoldBin(uint32_t template_id, int64_t bin, double count) {
  bins_[template_id][bin] += count;
  if (!any_) {
    any_ = true;
    min_bin_ = max_bin_ = bin;
  } else {
    if (bin < min_bin_) min_bin_ = bin;
    if (bin > max_bin_) max_bin_ = bin;
  }
}

size_t TraceBinner::bin_count() const {
  if (!any_) return 0;
  // Unsigned subtraction: a pathological [min, max] spread must not be
  // signed-overflow UB, just a huge count that Traces() refuses.
  uint64_t diff =
      static_cast<uint64_t>(max_bin_) - static_cast<uint64_t>(min_bin_);
  return static_cast<size_t>(diff + 1);
}

StatusOr<std::vector<ts::Series>> TraceBinner::Traces() const {
  if (!any_) {
    return Status::FailedPrecondition("TraceBinner: no events folded yet");
  }
  size_t len = bin_count();
  if (len > kMaxMaterializedBins) {
    return Status::FailedPrecondition(
        "TraceBinner: bin range too large to materialize (" +
        std::to_string(len) + " bins) — garbage timestamp in the history?");
  }
  ts::Timestamp start = min_bin_ * interval_;
  std::vector<ts::Series> traces;
  traces.reserve(bins_.size());
  for (const auto& [tid, tbins] : bins_) {
    std::vector<double> values(len, 0.0);
    for (const auto& [bin, count] : tbins) {
      values[static_cast<size_t>(bin - min_bin_)] = count;
    }
    traces.emplace_back(start, interval_, std::move(values),
                        "template" + std::to_string(tid));
  }
  return traces;
}

void TraceBinner::Save(BufWriter* w) const {
  w->I64(interval_);
  w->U8(any_ ? 1 : 0);
  w->I64(min_bin_);
  w->I64(max_bin_);
  w->U64(bins_.size());
  for (const auto& [tid, tbins] : bins_) {
    w->U32(tid);
    w->U64(tbins.size());
    for (const auto& [bin, count] : tbins) {
      w->I64(bin);
      w->F64(count);
    }
  }
}

Status TraceBinner::Load(BufReader* r) {
  auto corrupt = [] {
    return Status::InvalidArgument("TraceBinner: truncated or corrupt state");
  };
  int64_t interval = 0;
  uint8_t any = 0;
  int64_t min_bin = 0;
  int64_t max_bin = 0;
  uint64_t templates = 0;
  if (!r->I64(&interval) || !r->U8(&any) || !r->I64(&min_bin) ||
      !r->I64(&max_bin) || !r->U64(&templates)) {
    return corrupt();
  }
  if (interval <= 0 || any > 1 || (any == 1 && max_bin < min_bin)) {
    return Status::InvalidArgument("TraceBinner: invalid header fields");
  }
  std::map<uint32_t, std::map<int64_t, double>> bins;
  for (uint64_t t = 0; t < templates; ++t) {
    uint32_t tid = 0;
    uint64_t n = 0;
    if (!r->U32(&tid) || !r->U64(&n)) return corrupt();
    auto& tbins = bins[tid];
    for (uint64_t i = 0; i < n; ++i) {
      int64_t bin = 0;
      double count = 0.0;
      if (!r->I64(&bin) || !r->F64(&count)) return corrupt();
      if (any == 1 && (bin < min_bin || bin > max_bin)) {
        return Status::InvalidArgument("TraceBinner: bin outside saved range");
      }
      tbins[bin] = count;
    }
  }
  interval_ = interval;
  any_ = any == 1;
  min_bin_ = min_bin;
  max_bin_ = max_bin;
  bins_ = std::move(bins);
  return Status::OK();
}

}  // namespace dbaugur::serve

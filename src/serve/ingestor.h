// Streaming ingest for the online serving layer.
//
// Producers (query routers, log shippers) hand the service raw
// (template_id, timestamp, count) events from many threads at once.
// TraceIngestor is the bounded MPSC hand-off: Offer() enqueues under a short
// critical section and never blocks — when the queue is full the event is
// counted as dropped and the producer moves on (load shedding beats
// backpressure for telemetry). The retrain thread periodically Drain()s the
// queue and Fold()s the events into a TraceBinner, which accumulates
// per-template arrival counts into fixed-interval bins exactly like the
// offline trace::TraceExtractor does for parsed query logs.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "common/binio.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "ts/series.h"

namespace dbaugur::serve {

/// One workload observation: `count` arrivals of template `template_id`
/// at `timestamp`. Counts are doubles so pre-aggregated sources (per-second
/// rates, sampled logs with weights) can feed the same path.
struct TraceEvent {
  uint32_t template_id = 0;
  ts::Timestamp timestamp = 0;
  double count = 1.0;
};

/// Ingest queue configuration.
struct IngestorOptions {
  size_t capacity = 4096;       ///< Max buffered events before drops.
  size_t max_templates = 4096;  ///< Events with template_id >= this drop.
  /// Quarantine bound for out-of-order timestamps: an event more than this
  /// many seconds older than the newest timestamp already accepted is
  /// dropped (a garbage timestamp would otherwise explode the binner's
  /// zero-filled range). Negative disables the check.
  int64_t max_lateness_seconds = 24 * 3600;
  /// Absolute clock-skew bounds. Events timestamped before
  /// min_timestamp_seconds (default: the epoch) or after
  /// max_timestamp_seconds (default 4102444800 = 2100-01-01T00:00:00Z) are
  /// quarantined. Without the upper bound a single far-future event would
  /// become the lateness reference and stale-drop every honest event after
  /// it, besides exploding the binner's zero-filled range. Negative disables
  /// the respective check.
  int64_t min_timestamp_seconds = 0;
  int64_t max_timestamp_seconds = 4102444800;
};

/// Per-category drop counters (each monotonic since construction).
struct IngestDropStats {
  uint64_t full = 0;         ///< Queue at capacity (load shedding).
  uint64_t template_id = 0;  ///< template_id >= max_templates.
  uint64_t nonfinite = 0;    ///< NaN / ±inf count (quarantined).
  uint64_t negative = 0;     ///< Negative count (quarantined).
  uint64_t stale = 0;        ///< Timestamp older than lateness bound.
  uint64_t pre_epoch = 0;    ///< Timestamp before min_timestamp_seconds.
  uint64_t future = 0;       ///< Timestamp after max_timestamp_seconds.

  uint64_t total() const {
    return full + template_id + nonfinite + negative + stale + pre_epoch +
           future;
  }
  /// Drops caused by malformed input rather than backpressure.
  uint64_t quarantined() const {
    return nonfinite + negative + stale + pre_epoch + future;
  }
};

/// Bounded multi-producer single-consumer event queue. Offer never blocks;
/// Drain moves everything buffered to the consumer in arrival order. Garbage
/// input (non-finite or negative counts, wildly out-of-order timestamps) is
/// quarantined at the door with dedicated counters so one bad producer cannot
/// poison the training history.
class TraceIngestor {
 public:
  /// Aborts (DBAUGUR_CHECK) when opts.capacity == 0.
  explicit TraceIngestor(const IngestorOptions& opts);

  /// Thread-safe, non-blocking enqueue. Returns false (and counts the drop in
  /// its category) when the queue is full, template_id >= max_templates, the
  /// count is non-finite or negative, the timestamp falls outside the
  /// absolute [min_timestamp_seconds, max_timestamp_seconds] skew bounds, or
  /// the timestamp is staler than max_lateness_seconds. Quarantined events
  /// never become the lateness reference.
  bool Offer(const TraceEvent& event) DBAUGUR_EXCLUDES(mu_);

  /// Moves all buffered events into *out (appended), returning how many.
  /// Single consumer: callers serialize Drain externally.
  size_t Drain(std::vector<TraceEvent>* out) DBAUGUR_EXCLUDES(mu_);

  /// Events accepted / dropped since construction (monotonic). dropped() is
  /// the sum over every drop category.
  uint64_t accepted() const { return accepted_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return drop_stats().total(); }
  IngestDropStats drop_stats() const;

  /// Buffered events awaiting Drain (point-in-time; takes the queue lock).
  size_t size() const DBAUGUR_EXCLUDES(mu_);

  size_t capacity() const { return opts_.capacity; }

 private:
  IngestorOptions opts_;
  mutable Mutex mu_;
  std::vector<TraceEvent> queue_ DBAUGUR_GUARDED_BY(mu_);
  bool any_accepted_ DBAUGUR_GUARDED_BY(mu_) = false;
  /// Newest accepted timestamp (lateness quarantine reference point).
  ts::Timestamp max_timestamp_ DBAUGUR_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> dropped_full_{0};
  std::atomic<uint64_t> dropped_template_{0};
  std::atomic<uint64_t> dropped_nonfinite_{0};
  std::atomic<uint64_t> dropped_negative_{0};
  std::atomic<uint64_t> dropped_stale_{0};
  std::atomic<uint64_t> dropped_pre_epoch_{0};
  std::atomic<uint64_t> dropped_future_{0};
};

/// Accumulates drained events into per-template fixed-interval bins and
/// materializes them as equal-length, zero-filled ts::Series traces (the
/// workload collection BuildTrainedState expects). Single-threaded: owned by
/// the retrain loop.
class TraceBinner {
 public:
  /// Aborts (DBAUGUR_CHECK) when interval_seconds <= 0.
  explicit TraceBinner(int64_t interval_seconds);

  /// The bin an event at `timestamp` lands in: floor(timestamp / interval).
  /// The origin is the epoch — never the first event seen — so the mapping is
  /// stable across Save/Load and across services whose first events differ,
  /// including events landing exactly on a bin boundary.
  int64_t BinIndex(ts::Timestamp timestamp) const;

  /// Adds one event's count to its template's bin (BinIndex above).
  void Fold(const TraceEvent& event);

  /// Adds `count` directly to (template_id, bin) — the re-hash migration path
  /// replays another binner's sparse bins without round-tripping through
  /// timestamps (whose bin mapping is already applied). Maintains the same
  /// [min_bin, max_bin] bookkeeping as Fold.
  void FoldBin(uint32_t template_id, int64_t bin, double count);

  /// Number of distinct intervals between the earliest and latest bin seen
  /// (0 before any event). This is the common length Traces() will emit.
  size_t bin_count() const;

  /// Number of distinct template ids seen.
  size_t template_count() const { return bins_.size(); }

  int64_t interval_seconds() const { return interval_; }

  /// Materializes one Series per template ("template<id>"), all covering
  /// [min_bin, max_bin] with zeros where a template had no arrivals.
  /// FailedPrecondition before any event is folded.
  StatusOr<std::vector<ts::Series>> Traces() const;

  /// Appends the binner's full state (interval, bin range, per-template
  /// sparse bins) to *w for service snapshots.
  void Save(BufWriter* w) const;

  /// Restores a Save blob in place; on failure the binner is unchanged.
  Status Load(BufReader* r);

  /// Sparse per-template bins (template id -> bin index -> summed count).
  /// Read-only view for shard-count migration, which re-partitions templates
  /// across binners by re-hashing their ids.
  const std::map<uint32_t, std::map<int64_t, double>>& bins() const {
    return bins_;
  }

 private:
  int64_t interval_ = 600;
  bool any_ = false;
  int64_t min_bin_ = 0;
  int64_t max_bin_ = 0;
  // template id -> (bin index -> summed count); sparse so idle templates
  // cost nothing until Traces() zero-fills.
  std::map<uint32_t, std::map<int64_t, double>> bins_;
};

}  // namespace dbaugur::serve

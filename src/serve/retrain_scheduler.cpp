#include "serve/retrain_scheduler.h"

#include <algorithm>

#include "common/contracts.h"

namespace dbaugur::serve {

uint64_t BackoffCycles(uint64_t consecutive_failures) {
  if (consecutive_failures == 0) return 0;
  uint64_t exp = std::min<uint64_t>(consecutive_failures - 1, 16);
  return uint64_t{1} << exp;
}

std::vector<size_t> ScheduleRetrains(const std::vector<ShardSignal>& signals,
                                     const RetrainSchedulerOptions& opts) {
  DBAUGUR_CHECK(opts.starvation_cycles >= 1,
                "ScheduleRetrains: starvation_cycles must be >= 1");
  struct Candidate {
    size_t shard_id;
    uint64_t waited;
    bool starved;
    unsigned __int128 priority;
  };
  std::vector<Candidate> eligible;
  eligible.reserve(signals.size());
  for (const ShardSignal& s : signals) {
    if (s.pending_events == 0) continue;  // work-conserving
    if (s.cycles_waited < BackoffCycles(s.consecutive_failures)) continue;
    Candidate c;
    c.shard_id = s.shard_id;
    c.waited = s.cycles_waited;
    c.starved = s.cycles_waited >= opts.starvation_cycles;
    c.priority = static_cast<unsigned __int128>(s.pending_events) *
                 (static_cast<unsigned __int128>(s.cycles_waited) + 1);
    eligible.push_back(c);
  }
  std::sort(eligible.begin(), eligible.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.starved != b.starved) return a.starved;
              if (a.starved) {  // both starved: longest wait first
                if (a.waited != b.waited) return a.waited > b.waited;
                return a.shard_id < b.shard_id;
              }
              if (a.priority != b.priority) return a.priority > b.priority;
              return a.shard_id < b.shard_id;
            });
  size_t take = opts.budget == 0 ? eligible.size()
                                 : std::min(opts.budget, eligible.size());
  std::vector<size_t> order;
  order.reserve(take);
  for (size_t i = 0; i < take; ++i) order.push_back(eligible[i].shard_id);
  return order;
}

uint64_t OverloadController::Observe(uint64_t backlog) {
  if (opts_.grow_cycles == 0) return level_;  // adaptation disabled
  bool growing = have_last_ && backlog > last_backlog_;
  last_backlog_ = backlog;
  have_last_ = true;
  if (growing) {
    drain_streak_ = 0;
    if (++growth_streak_ >= opts_.grow_cycles) {
      growth_streak_ = 0;
      if (level_ < opts_.max_level) ++level_;
    }
  } else {
    growth_streak_ = 0;
    if (level_ > 0 && ++drain_streak_ >= opts_.drain_cycles) {
      drain_streak_ = 0;
      --level_;
    }
  }
  return level_;
}

size_t OverloadController::DegradedBudget(size_t base_budget,
                                          size_t shard_count) const {
  size_t base = base_budget == 0 ? shard_count : base_budget;
  if (base == 0) return 0;
  // Halve once per level, never below 1: a fully degraded service still
  // retrains one shard per (widened) cycle, so it always makes progress.
  size_t shift = static_cast<size_t>(
      std::min<uint64_t>(level_, 8 * sizeof(size_t) - 1));
  size_t shrunk = base >> shift;
  return shrunk == 0 ? 1 : shrunk;
}

}  // namespace dbaugur::serve

// Deterministic priority scheduling for sharded retraining.
//
// The sharded service replaces the single global retrain cycle with a
// per-cycle schedule: every cycle it samples each shard's signals (queued
// events, cycles since last retrain, failure streak) and asks
// ScheduleRetrains for the ordered subset of shards to retrain this cycle.
// The function is pure — same signals, same options, same schedule — so the
// retrain order is reproducible run-to-run and testable in isolation.
//
// Policy:
//   - Work-conserving: a shard with no queued events is never scheduled (its
//     published snapshot already reflects everything it has seen; compare
//     ForecastService's wall-clock loop, which re-trains unconditionally).
//   - Priority = pending_events × (cycles_waited + 1): traffic volume scaled
//     by staleness, so hot shards retrain first but waiting inflates cold
//     shards until they win. Computed in 128-bit so extreme queues cannot
//     overflow-invert the order. Ties break toward the lower shard id.
//   - Starvation bound: a shard that has waited >= starvation_cycles with
//     pending traffic is force-promoted ahead of every non-starved shard
//     (longest wait first). With S eligible shards and budget B, every
//     pending shard is therefore scheduled at least once every
//     starvation_cycles + ceil(S/B) cycles.
//   - Failure backoff in cycles, mirroring ForecastService's wall-clock
//     backoff: after f consecutive failures a shard is ineligible until it
//     has waited 2^(f-1) cycles (capped), so a persistently failing shard
//     cannot monopolize the budget — and the starvation promotion never
//     overrides the backoff.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dbaugur::serve {

/// One shard's scheduling inputs, sampled at the top of a cycle.
struct ShardSignal {
  size_t shard_id = 0;
  uint64_t pending_events = 0;        ///< Ingest queue depth.
  uint64_t cycles_waited = 0;         ///< Cycles since last scheduled.
  uint64_t consecutive_failures = 0;  ///< 0 after any successful retrain.
};

struct RetrainSchedulerOptions {
  /// Max shards scheduled per cycle (0 = every eligible shard).
  size_t budget = 0;
  /// Waited-cycle threshold for forced promotion (>= 1).
  uint64_t starvation_cycles = 4;
};

/// Cycles a shard must wait after `consecutive_failures` failures before it
/// is eligible again: 0 for a healthy shard, else 2^(failures-1) capped at
/// 2^16. Pure, so tests can recompute the exact schedule.
uint64_t BackoffCycles(uint64_t consecutive_failures);

/// Returns the shard ids to retrain this cycle, highest priority first.
/// Deterministic: a pure function of (signals, opts) with total ordering
/// (ties broken by shard id).
std::vector<size_t> ScheduleRetrains(const std::vector<ShardSignal>& signals,
                                     const RetrainSchedulerOptions& opts);

/// Overload-adaptation knobs (see OverloadController).
struct OverloadOptions {
  /// Consecutive backlog-growth cycles before escalating one level
  /// (0 disables adaptation entirely — level stays 0).
  uint64_t grow_cycles = 3;
  /// Consecutive non-growth cycles before recovering one level.
  uint64_t drain_cycles = 2;
  /// Ceiling on the degradation level (each level halves the budget and
  /// doubles the cycle interval).
  uint64_t max_level = 3;
};

/// Deterministic overload ladder for the sharded scheduler. Fed the total
/// pending backlog (sum of shard queue depths) once per completed cycle, it
/// tracks whether the service is keeping up: `grow_cycles` consecutive cycles
/// of strictly growing backlog escalate one degradation level; `drain_cycles`
/// consecutive cycles of non-growing backlog recover one. Each level halves
/// the effective per-cycle retrain budget (never below 1) and doubles the
/// scheduler interval (2^level), shedding retrain work before queues blow
/// out; when lag drains the ladder walks back down to full throughput on its
/// own. Pure state machine — no clocks, no randomness — so tests pin exact
/// escalate/recover schedules.
class OverloadController {
 public:
  explicit OverloadController(const OverloadOptions& opts) : opts_(opts) {}

  /// Feeds one completed cycle's backlog sample; returns the level after the
  /// update. Single-threaded by contract (the sharded service calls it under
  /// cycle_mu_).
  uint64_t Observe(uint64_t backlog);

  uint64_t level() const { return level_; }

  /// Budget after degradation: `base_budget` (0 = unbounded, i.e.
  /// `shard_count`) halved once per level, floored at 1 so the scheduler
  /// always stays work-conserving.
  size_t DegradedBudget(size_t base_budget, size_t shard_count) const;

  /// Multiplier on the retrain interval: 2^level.
  double IntervalScale() const {
    return static_cast<double>(uint64_t{1} << level_);
  }

 private:
  OverloadOptions opts_;
  uint64_t level_ = 0;
  uint64_t growth_streak_ = 0;
  uint64_t drain_streak_ = 0;
  uint64_t last_backlog_ = 0;
  bool have_last_ = false;
};

}  // namespace dbaugur::serve

#include "serve/retrain_workers.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/contracts.h"

namespace dbaugur::serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

SteadyClock::duration SecondsToDuration(double seconds) {
  return std::chrono::duration_cast<SteadyClock::duration>(
      std::chrono::duration<double>(seconds));
}

double DurationToSeconds(SteadyClock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

RetrainWorkerPool::RetrainWorkerPool(size_t workers) {
  DBAUGUR_CHECK(workers >= 1, "RetrainWorkerPool needs at least one worker");
  threads_.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

RetrainWorkerPool::~RetrainWorkerPool() {
  {
    MutexLock lock(&mu_);
    // The owning service serializes RunCycle behind its cycle lock and joins
    // its scheduler thread before destroying the pool, so no cycle can be in
    // flight here.
    DBAUGUR_CHECK(!cycle_active_,
                  "RetrainWorkerPool destroyed mid-cycle");
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void RetrainWorkerPool::WorkerLoop(size_t worker_idx) {
  mu_.Lock();
  for (;;) {
    // Explicit predicate loop (not a wait lambda) — see common/mutex.h.
    while (!stop_ && !(cycle_active_ && next_ < tasks_.size())) {
      work_cv_.Wait(&mu_);
    }
    if (stop_) break;
    // Claim the next task in schedule order (shared-FIFO discipline: the
    // priority order is preserved at any worker count).
    Task* task = tasks_[next_++].get();
    task->state = Task::State::kRunning;
    SteadyClock::time_point start = SteadyClock::now();
    if (deadline_seconds_ > 0.0) {
      task->deadline = start + SecondsToDuration(deadline_seconds_);
      task->has_deadline = true;
    }
    const WorkFn* work = work_;
    mu_.Unlock();
    // The retrain itself runs unlocked; the token is the only channel the
    // watchdog needs into it. The status is already recorded shard-side.
    (void)(*work)(task->shard_id, worker_idx, &task->token);
    SteadyClock::duration elapsed = SteadyClock::now() - start;
    mu_.Lock();
    task->seconds = DurationToSeconds(elapsed);
    task->state = Task::State::kDone;
    --remaining_;
    // NotifyAll, not NotifyOne: the watchdog must re-evaluate deadlines on
    // every completion, and a stopping pool may have peers waiting too.
    done_cv_.NotifyAll();
  }
  mu_.Unlock();
}

RetrainCycleReport RetrainWorkerPool::RunCycle(const std::vector<size_t>& order,
                                               double deadline_seconds,
                                               const WorkFn& work) {
  RetrainCycleReport report;
  if (order.empty()) return report;
  MutexLock lock(&mu_);
  DBAUGUR_CHECK(!cycle_active_, "RetrainWorkerPool::RunCycle is not reentrant");
  tasks_.clear();
  tasks_.reserve(order.size());
  for (size_t shard_id : order) {
    auto task = std::make_unique<Task>();
    task->shard_id = shard_id;
    tasks_.push_back(std::move(task));
  }
  work_ = &work;
  deadline_seconds_ = deadline_seconds;
  next_ = 0;
  remaining_ = tasks_.size();
  cycle_active_ = true;
  work_cv_.NotifyAll();

  // Watchdog: supervise from the calling thread until the cycle drains. With
  // no deadline configured this degenerates to a plain completion wait.
  const bool watching = deadline_seconds > 0.0;
  // Poll quantum: an idle-looking cycle still wakes this often, because a
  // pending task may have just started and set a deadline the previous pass
  // never saw. Bounded below at 1ms so sub-millisecond deadlines can't spin.
  const SteadyClock::duration poll =
      watching ? SecondsToDuration(std::max(deadline_seconds / 4.0, 1e-3))
               : SteadyClock::duration::zero();
  while (remaining_ > 0) {
    if (!watching) {
      done_cv_.Wait(&mu_);
      continue;
    }
    SteadyClock::time_point now = SteadyClock::now();
    SteadyClock::time_point wake = now + poll;
    for (const std::unique_ptr<Task>& task : tasks_) {
      if (task->state != Task::State::kRunning || !task->has_deadline) {
        continue;
      }
      if (now >= task->deadline) {
        if (!task->token.cancelled()) {
          std::ostringstream reason;
          reason << "watchdog: shard " << task->shard_id
                 << " retrain exceeded its " << deadline_seconds
                 << "s deadline";
          // Cancel takes only the token's leaf mutex — workers never hold it
          // while acquiring mu_, so latching under mu_ cannot deadlock.
          task->token.Cancel(reason.str());
        }
      } else {
        wake = std::min(wake, task->deadline);
      }
    }
    done_cv_.WaitUntil(&mu_, wake);
  }

  report.tasks.reserve(tasks_.size());
  for (const std::unique_ptr<Task>& task : tasks_) {
    RetrainTaskResult r;
    r.shard_id = task->shard_id;
    r.cancelled = task->token.cancelled();
    r.seconds = task->seconds;
    if (r.cancelled) {
      r.cancel_reason = task->token.reason();
      ++report.cancelled;
    } else {
      ++report.completed;
    }
    report.tasks.push_back(std::move(r));
  }
  tasks_.clear();
  work_ = nullptr;
  cycle_active_ = false;
  return report;
}

}  // namespace dbaugur::serve

// Deadline-supervised worker pool for the sharded retrain scheduler.
//
// PR 9's scheduler computed a deterministic priority order and drained it by
// spawning threads per cycle; this pool makes that execution layer persistent
// and robust. A fixed set of worker threads lives for the service's lifetime;
// each RunCycle hands them one cycle's schedule, and workers claim shard ids
// in exactly the scheduled order (same shared-FIFO discipline as
// common/work_queue.h), so "hot shards first" holds at any worker count.
//
// Deadline + watchdog: every task carries its own CancelToken and, when a
// per-retrain deadline is configured, a deadline measured from the moment its
// worker picks it up. The *calling* thread acts as the watchdog for the
// duration of RunCycle: it sleeps until the earliest running task's deadline
// (or a poll quantum), cancels any task that overran — which covers both slow
// retrains and genuinely hung workers, since a hung retrain simply never
// reports done — and keeps supervising until every task completes. Because
// cancellation is cooperative (tokens are polled at cluster-fit granularity;
// see core::BuildTrainedState), a cancelled worker unwinds at its next
// checkpoint, typically well within one deadline of the overrun, and the
// cycle as a whole can never stall the publish loop behind one stuck shard.
// A workload that ignores its token entirely would still block RunCycle —
// cooperative cancellation bounds stalls at checkpoints, it cannot preempt.
//
// Determinism: the pool adds no scheduling decisions of its own — the order
// workers *start* shards is the scheduler's order, shards share no mutable
// state, and each shard's results depend only on its own persisted seed
// stream. Published snapshots for the shards that complete are therefore
// bit-identical to a sequential drain of the same schedule (pinned by
// tests/serve_workers_test.cpp); only completion timing varies.

#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dbaugur::serve {

/// Outcome of one scheduled shard retrain within a cycle.
struct RetrainTaskResult {
  size_t shard_id = 0;
  /// True when the task's token was latched (watchdog deadline overrun)
  /// before the worker finished — the retrain unwound without publishing.
  bool cancelled = false;
  double seconds = 0.0;        ///< Wall time on the worker, start to unwind.
  std::string cancel_reason;   ///< Token reason; empty unless cancelled.
};

/// One RunCycle's results, in schedule order.
struct RetrainCycleReport {
  std::vector<RetrainTaskResult> tasks;
  size_t completed = 0;  ///< Tasks that ran to completion.
  size_t cancelled = 0;  ///< Tasks the watchdog cancelled.
};

class RetrainWorkerPool {
 public:
  /// Retrains shard `shard_id` on worker `worker_idx`, honoring `cancel`
  /// (never null) at its checkpoints. The returned status is informational —
  /// per-shard failures are recorded shard-side and must not abort the cycle.
  using WorkFn = std::function<Status(size_t shard_id, size_t worker_idx,
                                      const CancelToken* cancel)>;

  /// Spawns `workers` (>= 1, DBAUGUR_CHECK) persistent threads.
  explicit RetrainWorkerPool(size_t workers);
  ~RetrainWorkerPool();
  RetrainWorkerPool(const RetrainWorkerPool&) = delete;
  RetrainWorkerPool& operator=(const RetrainWorkerPool&) = delete;

  size_t workers() const { return threads_.size(); }

  /// Drains `order` across the pool, each task under `deadline_seconds`
  /// (<= 0 disables the watchdog), and blocks until every task has finished
  /// or unwound from cancellation. The calling thread supervises as the
  /// watchdog while it waits. Not reentrant (DBAUGUR_CHECK): one cycle at a
  /// time, matching the scheduler's cycle_mu_ serialization.
  RetrainCycleReport RunCycle(const std::vector<size_t>& order,
                              double deadline_seconds, const WorkFn& work)
      DBAUGUR_EXCLUDES(mu_);

 private:
  /// Per-task supervision record. The token is internally synchronized (the
  /// worker polls it lock-free while the watchdog cancels it); every other
  /// field is accessed under mu_. Heap-allocated so workers can keep a stable
  /// pointer across the unlock around the work callback.
  struct Task {
    size_t shard_id = 0;
    enum class State { kPending, kRunning, kDone };
    State state = State::kPending;
    std::chrono::steady_clock::time_point deadline{};  ///< Set when started.
    bool has_deadline = false;
    CancelToken token;
    double seconds = 0.0;
  };

  void WorkerLoop(size_t worker_idx) DBAUGUR_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar work_cv_;  ///< Workers wait here for tasks (or stop).
  CondVar done_cv_;  ///< The watchdog waits here for completions.
  bool stop_ DBAUGUR_GUARDED_BY(mu_) = false;
  bool cycle_active_ DBAUGUR_GUARDED_BY(mu_) = false;
  std::vector<std::unique_ptr<Task>> tasks_ DBAUGUR_GUARDED_BY(mu_);
  const WorkFn* work_ DBAUGUR_GUARDED_BY(mu_) = nullptr;
  double deadline_seconds_ DBAUGUR_GUARDED_BY(mu_) = 0.0;
  size_t next_ DBAUGUR_GUARDED_BY(mu_) = 0;       ///< Next unclaimed task.
  size_t remaining_ DBAUGUR_GUARDED_BY(mu_) = 0;  ///< Tasks not yet done.
  /// Set in the constructor, joined in the destructor only. (This file and
  /// common/thread_pool are the only places src/ may own raw std::thread —
  /// enforced by the raw-thread lint rule.)
  std::vector<std::thread> threads_;
};

}  // namespace dbaugur::serve

#include "serve/retrainer.h"

#include <string>
#include <utility>

#include "common/logging.h"

namespace dbaugur::serve {

Retrainer::Retrainer(const core::DBAugurOptions& pipeline,
                     int64_t bin_interval_seconds, size_t min_bins,
                     uint64_t seed)
    : pipeline_(pipeline),
      binner_(bin_interval_seconds),
      min_bins_(min_bins != 0
                    ? min_bins
                    : pipeline.forecaster.window + pipeline.forecaster.horizon +
                          1),
      base_seed_(seed),
      seed_rng_(seed) {}

void Retrainer::Fold(const std::vector<TraceEvent>& events) {
  for (const TraceEvent& e : events) binner_.Fold(e);
}

StatusOr<std::shared_ptr<const ServiceSnapshot>> Retrainer::Rebuild(
    uint64_t generation) {
  if (binner_.bin_count() < min_bins_) {
    return std::shared_ptr<const ServiceSnapshot>();
  }
  auto traces = binner_.Traces();
  if (!traces.ok()) return traces.status();
  std::vector<std::string> names;
  names.reserve(traces->size());
  for (const ts::Series& t : *traces) names.push_back(t.name());

  // One seed per completed cycle, drawn from the retrainer's own stream so
  // cycle k trains identically on every run (and on every restart, via the
  // fast-forward in LoadState).
  core::DBAugurOptions opts = pipeline_;
  opts.forecaster.seed = seed_rng_.engine()();

  auto state = core::BuildTrainedState(opts, *traces);
  if (!state.ok()) return state.status();
  auto snap = MakeSnapshot(std::move(state).value(), names,
                           opts.forecaster.window, generation);
  if (!snap.ok()) return snap.status();
  ++cycles_;
  DBAUGUR_INFO("serve: retrain cycle " << cycles_ << " published generation "
                                       << generation << " ("
                                       << (*snap)->cluster_count()
                                       << " clusters, " << names.size()
                                       << " traces)");
  return snap;
}

void Retrainer::SaveState(BufWriter* w) const {
  w->U64(cycles_);
  binner_.Save(w);
}

Status Retrainer::LoadState(BufReader* r) {
  uint64_t cycles = 0;
  if (!r->U64(&cycles)) {
    return Status::InvalidArgument("Retrainer: truncated state");
  }
  TraceBinner binner(binner_.interval_seconds());
  DBAUGUR_RETURN_IF_ERROR(binner.Load(r));
  if (binner.interval_seconds() != binner_.interval_seconds()) {
    return Status::InvalidArgument(
        "Retrainer: saved bin interval does not match service options");
  }
  // Replay the seed stream so the next cycle draws the same seed the saving
  // service would have drawn.
  Rng rng(base_seed_);
  for (uint64_t i = 0; i < cycles; ++i) rng.engine()();
  binner_ = std::move(binner);
  seed_rng_ = std::move(rng);
  cycles_ = cycles;
  return Status::OK();
}

}  // namespace dbaugur::serve

#include "serve/retrainer.h"

#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <utility>

#include "common/cancellation.h"
#include "common/contracts.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/math_utils.h"

namespace dbaugur::serve {

namespace {

// Fault-sleep quantum: small enough that a watchdog cancel is observed within
// a few milliseconds, large enough not to spin.
constexpr auto kFaultSliceMs = std::chrono::milliseconds(2);

// serve.retrain.slow holds the cycle for this long (unless cancelled first) —
// long relative to the sub-100ms deadlines tests arm, short enough that an
// uncancelled slow cycle doesn't stall a suite.
constexpr int kSlowFaultSlices = 100;  // ~200ms

}  // namespace

Retrainer::Retrainer(const core::DBAugurOptions& pipeline,
                     const RetrainerOptions& opts)
    : pipeline_(pipeline),
      opts_(opts),
      binner_(opts.bin_interval_seconds),
      min_bins_(opts.min_bins != 0
                    ? opts.min_bins
                    : pipeline.forecaster.window + pipeline.forecaster.horizon +
                          1),
      seed_rng_(opts.seed) {}

void Retrainer::Fold(const std::vector<TraceEvent>& events) {
  for (const TraceEvent& e : events) binner_.Fold(e);
}

StatusOr<std::shared_ptr<const ServiceSnapshot>> Retrainer::Rebuild(
    uint64_t generation, const ServiceSnapshot* last_good,
    ThreadPool* fit_pool, const CancelToken* cancel) {
  if (binner_.bin_count() < min_bins_) {
    return std::shared_ptr<const ServiceSnapshot>();
  }
  if (cancel != nullptr && cancel->cancelled()) {
    return CancelledStatus(*cancel, "serve: retrain");
  }
  if (DBAUGUR_FAULT_POINT("serve.retrain.build")) {
    return Status::Internal("serve: injected retrain failure");
  }
  // Both stall faults sit before the per-cycle seed draw, so a cancelled hung
  // or slow cycle leaves the seed stream untouched — restart determinism is
  // unaffected no matter how many cycles a storm kills.
  if (DBAUGUR_FAULT_POINT("serve.retrain.hang")) {
    if (cancel == nullptr) {
      // Nothing can ever cancel this cycle (no watchdog above us); hanging
      // for real would deadlock the caller, so fail fast instead.
      return Status::Internal(
          "serve: injected retrain hang with no cancel token");
    }
    // Simulated hang: never finishes on its own. Only the watchdog's cancel
    // releases the worker — exactly the failure mode the deadline exists for.
    while (!cancel->cancelled()) std::this_thread::sleep_for(kFaultSliceMs);
    return CancelledStatus(*cancel, "serve: retrain (hung)");
  }
  if (DBAUGUR_FAULT_POINT("serve.retrain.slow")) {
    // Simulated overrun: the cycle eventually completes unless a deadline
    // shorter than the stall cancels it first.
    for (int i = 0; i < kSlowFaultSlices; ++i) {
      if (cancel != nullptr && cancel->cancelled()) {
        return CancelledStatus(*cancel, "serve: retrain (slow)");
      }
      std::this_thread::sleep_for(kFaultSliceMs);
    }
  }
  auto traces = binner_.Traces();
  if (!traces.ok()) return traces.status();
  std::vector<std::string> names;
  names.reserve(traces->size());
  for (const ts::Series& t : *traces) names.push_back(t.name());

  // Winsorize each trace: clamp values beyond median ± k·1.4826·MAD (the
  // Gaussian-consistent robust sigma) so one corrupt count the quarantine
  // could not prove wrong cannot drag a whole cluster's fit. The binner keeps
  // the raw values — the clamp is per-cycle, so late events can still refine
  // a bin and be re-judged next cycle.
  if (opts_.winsorize_k > 0.0) {
    for (ts::Series& t : *traces) {
      std::vector<double>& vals = t.mutable_values();
      double med = Median(vals);
      std::vector<double> dev;
      dev.reserve(vals.size());
      for (double v : vals) dev.push_back(std::abs(v - med));
      double mad = Median(std::move(dev));
      if (!(mad > 0.0)) continue;
      double radius = opts_.winsorize_k * 1.4826 * mad;
      double lo = med - radius, hi = med + radius;
      uint64_t clamped = 0;
      for (double& v : vals) {
        if (v < lo) {
          v = lo;
          ++clamped;
        } else if (v > hi) {
          v = hi;
          ++clamped;
        }
      }
      if (clamped > 0) {
        values_winsorized_ += clamped;
        winsorized_by_trace_[t.name()] += clamped;
      }
    }
  }

  // Last pre-draw cancellation checkpoint: past this line a cancelled cycle
  // has consumed its seed draw (like any post-draw failure).
  if (cancel != nullptr && cancel->cancelled()) {
    return CancelledStatus(*cancel, "serve: retrain");
  }

  // One seed per completed cycle, drawn from the retrainer's own stream so
  // cycle k trains identically on every run (and on every restart, via the
  // fast-forward in LoadState).
  core::DBAugurOptions opts = pipeline_;
  opts.forecaster.seed = seed_rng_.engine()();
  opts.tolerate_fit_failures = true;

  auto state = core::BuildTrainedState(opts, *traces, fit_pool, cancel);
  if (!state.ok()) return state.status();
  SnapshotFallback fb;
  fb.opts = &opts;
  fb.last_good = (last_good != nullptr && last_good->trained()) ? last_good
                                                                : nullptr;
  fb.divergence_multiple = opts_.divergence_multiple;
  auto snap = MakeSnapshot(std::move(state).value(), names,
                           opts.forecaster.window, generation, fb);
  if (!snap.ok()) return snap.status();
  ++cycles_;
  DBAUGUR_INFO("serve: retrain cycle " << cycles_ << " published generation "
                                       << generation << " ("
                                       << (*snap)->cluster_count()
                                       << " clusters, "
                                       << (*snap)->degraded_count()
                                       << " degraded, " << names.size()
                                       << " traces)");
  return snap;
}

void Retrainer::SaveState(BufWriter* w) const {
  w->U64(cycles_);
  binner_.Save(w);
}

Status Retrainer::LoadState(BufReader* r) {
  uint64_t cycles = 0;
  if (!r->U64(&cycles)) {
    return Status::InvalidArgument("Retrainer: truncated state");
  }
  TraceBinner binner(binner_.interval_seconds());
  DBAUGUR_RETURN_IF_ERROR(binner.Load(r));
  if (binner.interval_seconds() != binner_.interval_seconds()) {
    return Status::InvalidArgument(
        "Retrainer: saved bin interval does not match service options");
  }
  InstallState(std::move(binner), cycles);
  return Status::OK();
}

void Retrainer::InstallState(TraceBinner binner, uint64_t cycles) {
  DBAUGUR_CHECK(binner.interval_seconds() == binner_.interval_seconds(),
                "Retrainer: InstallState interval mismatch");
  // Replay the seed stream so the next cycle draws the same seed the saving
  // service would have drawn.
  Rng rng(opts_.seed);
  for (uint64_t i = 0; i < cycles; ++i) rng.engine()();
  binner_ = std::move(binner);
  seed_rng_ = std::move(rng);
  cycles_ = cycles;
}

}  // namespace dbaugur::serve

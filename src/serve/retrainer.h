// Background retraining for the forecast service.
//
// The Retrainer owns everything the training side of the service touches:
// the TraceBinner accumulating drained events, the pipeline options, and a
// deterministic seed stream. Each successful Rebuild draws one per-cycle seed
// from the stream, runs the full offline pipeline (Descender clustering on
// the PR-2 thread pool + per-cluster ensemble fits) via
// core::BuildTrainedState, and returns a fresh immutable snapshot for the
// service to publish. Restart determinism: the cycle counter is persisted,
// and LoadState fast-forwards the seed stream past the consumed draws, so a
// restored service's *next* retrain uses exactly the seed the original
// service would have used.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/binio.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/dbaugur.h"
#include "serve/ingestor.h"
#include "serve/snapshot.h"

namespace dbaugur::serve {

class Retrainer {
 public:
  /// `min_bins` is the number of complete bins required before training is
  /// attempted; 0 selects window + horizon + 1 (the smallest workload the
  /// sliding-window dataset builder accepts with headroom for one target).
  Retrainer(const core::DBAugurOptions& pipeline, int64_t bin_interval_seconds,
            size_t min_bins, uint64_t seed);

  /// Folds drained ingest events into the binner.
  void Fold(const std::vector<TraceEvent>& events);

  /// Runs one full retrain over the binned traces and returns the snapshot to
  /// publish with the given generation. Returns a null pointer (with OK
  /// status) when fewer than min_bins bins have accumulated — not an error,
  /// the service just keeps serving the previous snapshot. The per-cycle seed
  /// is drawn only when training actually runs.
  StatusOr<std::shared_ptr<const ServiceSnapshot>> Rebuild(uint64_t generation);

  /// Completed training cycles (drives the deterministic seed stream).
  uint64_t cycles() const { return cycles_; }
  const TraceBinner& binner() const { return binner_; }
  size_t min_bins() const { return min_bins_; }

  /// Appends binner contents + cycle count to *w (part of the service blob).
  void SaveState(BufWriter* w) const;

  /// Restores a SaveState section: swaps in the saved binner and replays the
  /// seed stream to the saved cycle count. On failure the retrainer is
  /// unchanged.
  Status LoadState(BufReader* r);

 private:
  core::DBAugurOptions pipeline_;
  TraceBinner binner_;
  size_t min_bins_;
  uint64_t base_seed_;
  Rng seed_rng_;
  uint64_t cycles_ = 0;
};

}  // namespace dbaugur::serve

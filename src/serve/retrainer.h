// Background retraining for the forecast service.
//
// The Retrainer owns everything the training side of the service touches:
// the TraceBinner accumulating drained events, the pipeline options, and a
// deterministic seed stream. Each successful Rebuild draws one per-cycle seed
// from the stream, winsorizes the binned traces (median/MAD outlier clamp),
// runs the full offline pipeline (Descender clustering on the PR-2 thread
// pool + per-cluster ensemble fits) via core::BuildTrainedState, and returns
// a fresh immutable snapshot for the service to publish — substituting a
// last-good or kernel-baseline fallback for any cluster whose fit failed or
// diverged (see serve/snapshot.h). Restart determinism: the cycle counter is
// persisted, and LoadState fast-forwards the seed stream past the consumed
// draws, so a restored service's *next* retrain uses exactly the seed the
// original service would have used.
//
// Thread ownership: a Retrainer has no locks of its own — it is single-
// threaded state owned by the retrain loop. That contract is enforced at the
// owning ForecastService, where the `retrainer_` member is
// DBAUGUR_GUARDED_BY(retrain_mu_): under Clang's -Werror=thread-safety any
// touch of the retrainer outside the retrain/Save/Load critical section is a
// compile error.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/binio.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/dbaugur.h"
#include "serve/ingestor.h"
#include "serve/snapshot.h"

namespace dbaugur {
class CancelToken;
class ThreadPool;
}  // namespace dbaugur

namespace dbaugur::serve {

/// Robustness knobs for the retrain path.
struct RetrainerOptions {
  /// Forecasting interval I (> 0).
  int64_t bin_interval_seconds = 600;
  /// Complete bins required before training is attempted; 0 selects
  /// window + horizon + 1 (the smallest workload the sliding-window dataset
  /// builder accepts with headroom for one target).
  size_t min_bins = 0;
  /// Base seed for the per-cycle seed stream.
  uint64_t seed = 42;
  /// Winsorization threshold: values beyond median ± k·1.4826·MAD are clamped
  /// to the boundary before training. <= 0 disables. Skipped per trace when
  /// MAD is 0 (constant or near-constant data has no robust scale).
  double winsorize_k = 8.0;
  /// Forecast sanity bound passed to MakeSnapshot (multiples of the
  /// representative's observed span). <= 0 disables the range check.
  double divergence_multiple = 10.0;
};

class Retrainer {
 public:
  Retrainer(const core::DBAugurOptions& pipeline, const RetrainerOptions& opts);

  /// Folds drained ingest events into the binner.
  void Fold(const std::vector<TraceEvent>& events);

  /// Runs one full retrain over the binned traces and returns the snapshot to
  /// publish with the given generation. Returns a null pointer (with OK
  /// status) when fewer than min_bins bins have accumulated — not an error,
  /// the service just keeps serving the previous snapshot. The per-cycle seed
  /// is drawn only when training actually runs. `last_good` (may be null) is
  /// the currently published snapshot; a diverged cluster falls back to its
  /// last-good model state, or the kernel baseline on first train.
  /// `fit_pool` (may be null) is a caller-owned thread pool for the
  /// per-cluster ensemble fits — the sharded service passes one per retrain
  /// worker; results are bit-identical with or without it.
  ///
  /// `cancel` (may be null) is a cooperative cancellation token polled at
  /// cluster-fit granularity (see core::BuildTrainedState) and inside the
  /// `serve.retrain.hang` / `serve.retrain.slow` fault sleeps. A cancelled
  /// cycle returns Status::Cancelled with the token's reason; the binner keeps
  /// everything folded so far and the cycle counter does not advance. A
  /// cancellation observed before the per-cycle seed draw (fault sleeps,
  /// trace materialization, winsorize) leaves the seed stream exactly as if
  /// the cycle had never been attempted; one observed inside the build
  /// consumes that cycle's draw, the same as any post-draw failure.
  StatusOr<std::shared_ptr<const ServiceSnapshot>> Rebuild(
      uint64_t generation, const ServiceSnapshot* last_good,
      ThreadPool* fit_pool = nullptr, const CancelToken* cancel = nullptr);

  /// Completed training cycles (drives the deterministic seed stream).
  uint64_t cycles() const { return cycles_; }
  const TraceBinner& binner() const { return binner_; }
  size_t min_bins() const { return min_bins_; }

  /// Total trace values clamped by the winsorizer across all cycles.
  uint64_t values_winsorized() const { return values_winsorized_; }
  /// Cumulative clamp counts keyed by trace name (template / resource).
  const std::map<std::string, uint64_t>& winsorized_by_trace() const {
    return winsorized_by_trace_;
  }

  /// Appends binner contents + cycle count to *w (part of the service blob).
  void SaveState(BufWriter* w) const;

  /// Restores a SaveState section: swaps in the saved binner and replays the
  /// seed stream to the saved cycle count. On failure the retrainer is
  /// unchanged.
  Status LoadState(BufReader* r);

  /// Commits an already-validated state: swaps in `binner` and fast-forwards
  /// the seed stream past `cycles` draws, exactly as LoadState would. The
  /// sharded restore path parses and validates every shard's section first
  /// (all-or-nothing), then installs each; shard-count migration rebuilds the
  /// binner by re-hashing and installs it here. Aborts (DBAUGUR_CHECK) if the
  /// binner's interval does not match this retrainer's — callers construct it
  /// from the same options.
  void InstallState(TraceBinner binner, uint64_t cycles);

 private:
  core::DBAugurOptions pipeline_;
  RetrainerOptions opts_;
  TraceBinner binner_;
  size_t min_bins_;
  Rng seed_rng_;
  uint64_t cycles_ = 0;
  uint64_t values_winsorized_ = 0;
  std::map<std::string, uint64_t> winsorized_by_trace_;
};

}  // namespace dbaugur::serve

#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/contracts.h"
#include "common/hashing.h"
#include "common/logging.h"

namespace dbaugur::serve {

namespace {
constexpr uint32_t kServiceMagic = 0xDBA65EF0;
constexpr uint32_t kServiceVersion = 1;
}  // namespace

ForecastService::ForecastService(const ServeOptions& opts)
    : shard_(opts, /*shard_id=*/0) {
  DBAUGUR_CHECK(opts.retrain_interval_seconds > 0,
                "ForecastService retrain_interval_seconds must be positive");
  DBAUGUR_CHECK(opts.max_backoff_seconds > 0,
                "ForecastService max_backoff_seconds must be positive");
}

ForecastService::~ForecastService() { Stop(); }

void ForecastService::Start() {
  MutexLock lifecycle(&lifecycle_mu_);
  if (worker_.joinable()) return;
  {
    MutexLock lock(&stop_mu_);
    stopping_ = false;
  }
  running_.store(true, std::memory_order_release);
  worker_ = std::thread([this] { RetrainLoop(); });
}

void ForecastService::Stop() {
  // lifecycle_mu_ is held across the join: the retrain thread never touches
  // it, and holding it makes concurrent Start/Stop/dtor calls safe (worker_
  // itself is not a thread-safe object).
  MutexLock lifecycle(&lifecycle_mu_);
  {
    MutexLock lock(&stop_mu_);
    stopping_ = true;
  }
  stop_cv_.NotifyAll();
  if (worker_.joinable()) worker_.join();
  worker_ = std::thread();
  running_.store(false, std::memory_order_release);
}

double ForecastService::ComputeBackoffSeconds(const ServeOptions& opts,
                                              uint64_t consecutive_failures,
                                              uint64_t total_failures) {
  if (consecutive_failures == 0) return opts.retrain_interval_seconds;
  // Capped exponential: interval · 2^(failures-1). ldexp is exact, and the
  // exponent is clamped well below double overflow before the cap applies.
  int exp = static_cast<int>(std::min<uint64_t>(consecutive_failures - 1, 60));
  double delay = std::ldexp(opts.retrain_interval_seconds, exp);
  delay = std::min(delay, opts.max_backoff_seconds);
  // Deterministic ±10% jitter keyed on (seed, failure ordinal): retries of a
  // fleet sharing one fault de-synchronize, yet every run of the same service
  // waits exactly the same schedule. Mix64 is a pure function (SplitMix64
  // finalizer, common/hashing.h) so tests can recompute the exact schedule.
  double unit =
      static_cast<double>(Mix64(opts.seed ^ total_failures) >> 11) * 0x1.0p-53;
  return delay * (0.9 + 0.2 * unit);
}

void ForecastService::RetrainLoop() {
  for (;;) {
    {
      MutexLock lock(&stop_mu_);
      if (stopping_) return;
    }
    // Failures are counted, recorded, and logged inside RetrainOnce; here
    // they only stretch the wait below.
    (void)RetrainOnce();
    double wait = ComputeBackoffSeconds(shard_.options(),
                                        shard_.consecutive_failures(),
                                        shard_.retrains_failed());
    auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(wait));
    // Explicit predicate loop (not a wait_for lambda): the thread-safety
    // analysis checks lambda bodies as unannotated functions, so a predicate
    // reading the guarded stopping_ flag would be rejected.
    MutexLock lock(&stop_mu_);
    while (!stopping_) {
      if (stop_cv_.WaitUntil(&stop_mu_, deadline)) break;  // timed out
    }
    if (stopping_) return;
  }
}

ServiceHealth ForecastService::Health() const {
  ServiceHealth h;
  auto snap = snapshot();
  ServeStats s = shard_.stats();
  h.generation = snap->generation;
  h.consecutive_failures = s.consecutive_failures;
  h.backoff_seconds = ComputeBackoffSeconds(
      shard_.options(), s.consecutive_failures, s.retrains_failed);
  h.last_error = s.last_error;
  h.queue_depth = shard_.queue_depth();
  h.events_quarantined = s.events_quarantined;
  h.values_winsorized = s.values_winsorized;
  h.clusters.reserve(snap->clusters.size());
  for (size_t rank = 0; rank < snap->clusters.size(); ++rank) {
    const SnapshotCluster& c = snap->clusters[rank];
    h.clusters.push_back({c.cluster_id, rank, c.degraded, c.degraded_reason});
  }
  if (h.consecutive_failures > 0) {
    h.state = ServiceHealth::State::kBackoff;
  } else if (snap->degraded_count() > 0) {
    h.state = ServiceHealth::State::kDegraded;
  } else if (snap->trained()) {
    h.state = ServiceHealth::State::kHealthy;
  } else {
    h.state = ServiceHealth::State::kUntrained;
  }
  return h;
}

StatusOr<std::vector<uint8_t>> ForecastService::Save() {
  BufWriter w;
  w.U32(kServiceMagic);
  w.U32(kServiceVersion);
  DBAUGUR_RETURN_IF_ERROR(shard_.SaveStateSection(&w));
  return w.Take();
}

Status ForecastService::Load(const std::vector<uint8_t>& blob) {
  auto corrupt = [] {
    return Status::InvalidArgument("serve: truncated or corrupt service blob");
  };
  BufReader r(blob);
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!r.U32(&magic) || !r.U32(&version)) return corrupt();
  if (magic != kServiceMagic) {
    return Status::InvalidArgument("serve: bad service blob magic");
  }
  if (version != kServiceVersion) {
    return Status::InvalidArgument("serve: unsupported service blob version");
  }
  // Everything is parsed and verified before any mutable state is touched
  // (all-or-nothing); InstallParsedState applies under the retrain lock so an
  // in-flight background cycle can't interleave with the swap.
  auto parsed = shard_.ParseStateSection(&r);
  if (!parsed.ok()) return parsed.status();
  if (!r.AtEnd()) return corrupt();
  shard_.InstallParsedState(std::move(parsed).value());
  return Status::OK();
}

Status ForecastService::SaveToFile(const std::string& path) {
  auto blob = Save();
  if (!blob.ok()) return blob.status();
  return ::dbaugur::SaveToFile(path, *blob);
}

Status ForecastService::LoadFromFile(const std::string& path,
                                     bool* recovered) {
  auto loaded = ::dbaugur::LoadFromFile(path);
  if (!loaded.ok()) return loaded.status();
  Status st = Load(loaded->blob);
  if (st.ok()) {
    if (recovered != nullptr) *recovered = loaded->recovered_from_backup;
    return Status::OK();
  }
  // The primary frame passed its checksum but failed service-level
  // validation; the previous good file may still restore cleanly.
  if (!loaded->recovered_from_backup) {
    auto bak = ::dbaugur::LoadFromFile(path + ".bak");
    if (bak.ok() && Load(bak->blob).ok()) {
      if (recovered != nullptr) *recovered = true;
      return Status::OK();
    }
  }
  return st;
}

}  // namespace dbaugur::serve

#include "serve/service.h"

#include <chrono>
#include <utility>

#include "common/contracts.h"
#include "common/logging.h"

namespace dbaugur::serve {

namespace {
constexpr uint32_t kServiceMagic = 0xDBA65EF0;
constexpr uint32_t kServiceVersion = 1;
}  // namespace

ForecastService::ForecastService(const ServeOptions& opts)
    : opts_(opts),
      ingestor_(IngestorOptions{opts.queue_capacity, opts.max_templates}),
      retrainer_(opts.pipeline, opts.bin_interval_seconds, opts.min_bins,
                 opts.seed) {
  DBAUGUR_CHECK(opts_.queue_capacity >= 1,
                "ForecastService queue_capacity must be >= 1");
  DBAUGUR_CHECK(opts_.retrain_interval_seconds > 0,
                "ForecastService retrain_interval_seconds must be positive");
  DBAUGUR_CHECK(opts_.bin_interval_seconds > 0,
                "ForecastService bin_interval_seconds must be positive");
  // Readers never see a null snapshot: generation 0 is "nothing trained yet".
  Publish(std::make_shared<const ServiceSnapshot>(), 0);
}

void ForecastService::Publish(std::shared_ptr<const ServiceSnapshot> snap,
                              uint64_t gen) {
  // The old snapshot's refcount drop (and possible destruction) happens on
  // this thread after the lock is released, never on a reader.
  std::shared_ptr<const ServiceSnapshot> retired;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    retired = std::exchange(snapshot_ptr_, std::move(snap));
  }
  generation_.store(gen, std::memory_order_release);
}

ForecastService::~ForecastService() { Stop(); }

Status ForecastService::RetrainOnce() {
  std::lock_guard<std::mutex> lock(retrain_mu_);
  std::vector<TraceEvent> events;
  ingestor_.Drain(&events);
  retrainer_.Fold(events);
  uint64_t next_gen = generation_.load(std::memory_order_relaxed) + 1;
  auto snap = retrainer_.Rebuild(next_gen);
  if (!snap.ok()) {
    retrains_failed_.fetch_add(1, std::memory_order_relaxed);
    return snap.status();
  }
  if (*snap == nullptr) {
    retrains_skipped_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  Publish(std::move(snap).value(), next_gen);
  retrains_completed_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void ForecastService::Start() {
  if (worker_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = false;
  }
  running_.store(true, std::memory_order_release);
  worker_ = std::thread([this] { RetrainLoop(); });
}

void ForecastService::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  worker_ = std::thread();
  running_.store(false, std::memory_order_release);
}

void ForecastService::RetrainLoop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stopping_) {
    lock.unlock();
    Status st = RetrainOnce();
    if (!st.ok()) {
      DBAUGUR_WARN("serve: retrain cycle failed: " << st.message());
    }
    lock.lock();
    stop_cv_.wait_for(
        lock, std::chrono::duration<double>(opts_.retrain_interval_seconds),
        [this] { return stopping_; });
  }
}

ServeStats ForecastService::stats() const {
  ServeStats s;
  s.events_accepted = ingestor_.accepted();
  s.events_dropped = ingestor_.dropped();
  s.retrains_completed = retrains_completed_.load(std::memory_order_relaxed);
  s.retrains_skipped = retrains_skipped_.load(std::memory_order_relaxed);
  s.retrains_failed = retrains_failed_.load(std::memory_order_relaxed);
  s.generation = generation();
  return s;
}

StatusOr<std::vector<uint8_t>> ForecastService::Save() {
  std::lock_guard<std::mutex> lock(retrain_mu_);
  // Fold queued events first so in-flight ingest survives the restart.
  std::vector<TraceEvent> events;
  ingestor_.Drain(&events);
  retrainer_.Fold(events);

  BufWriter w;
  w.U32(kServiceMagic);
  w.U32(kServiceVersion);
  w.U64(generation_.load(std::memory_order_acquire));
  BufWriter rw;
  retrainer_.SaveState(&rw);
  w.Bytes(rw.Take());
  auto snap = snapshot();
  w.U8(snap->trained() ? 1 : 0);
  if (snap->trained()) {
    BufWriter sw;
    DBAUGUR_RETURN_IF_ERROR(SerializeSnapshot(*snap, &sw));
    w.Bytes(sw.Take());
  }
  return w.Take();
}

Status ForecastService::Load(const std::vector<uint8_t>& blob) {
  auto corrupt = [] {
    return Status::InvalidArgument("serve: truncated or corrupt service blob");
  };
  BufReader r(blob);
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!r.U32(&magic) || !r.U32(&version)) return corrupt();
  if (magic != kServiceMagic) {
    return Status::InvalidArgument("serve: bad service blob magic");
  }
  if (version != kServiceVersion) {
    return Status::InvalidArgument("serve: unsupported service blob version");
  }
  uint64_t generation = 0;
  std::vector<uint8_t> retr_bytes;
  uint8_t trained = 0;
  if (!r.U64(&generation) || !r.Bytes(&retr_bytes) || !r.U8(&trained)) {
    return corrupt();
  }
  if (trained > 1) return corrupt();
  std::shared_ptr<const ServiceSnapshot> snap;
  if (trained == 1) {
    std::vector<uint8_t> snap_bytes;
    if (!r.Bytes(&snap_bytes)) return corrupt();
    BufReader sr(snap_bytes);
    auto restored = DeserializeSnapshot(opts_.pipeline, &sr);
    if (!restored.ok()) return restored.status();
    if (!sr.AtEnd()) return corrupt();
    snap = std::move(restored).value();
    if (snap->generation != generation) {
      return Status::InvalidArgument(
          "serve: snapshot generation does not match service header");
    }
  } else {
    auto empty = std::make_shared<ServiceSnapshot>();
    empty->generation = generation;
    snap = empty;
  }
  if (!r.AtEnd()) return corrupt();

  // Everything parsed and verified; apply under the retrain lock so an
  // in-flight background cycle can't interleave with the swap.
  std::lock_guard<std::mutex> lock(retrain_mu_);
  BufReader rr(retr_bytes);
  DBAUGUR_RETURN_IF_ERROR(retrainer_.LoadState(&rr));
  if (!rr.AtEnd()) return corrupt();
  Publish(std::move(snap), generation);
  return Status::OK();
}

}  // namespace dbaugur::serve

#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/contracts.h"
#include "common/logging.h"

namespace dbaugur::serve {

namespace {
constexpr uint32_t kServiceMagic = 0xDBA65EF0;
constexpr uint32_t kServiceVersion = 1;

// SplitMix64 finalizer: one well-mixed word from (seed, failure ordinal),
// with no RNG state to carry — the backoff jitter must be a pure function so
// tests can recompute the exact schedule.
uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

ForecastService::ForecastService(const ServeOptions& opts)
    : opts_(opts),
      ingestor_(IngestorOptions{opts.queue_capacity, opts.max_templates,
                                opts.max_lateness_seconds,
                                opts.min_timestamp_seconds,
                                opts.max_timestamp_seconds}),
      retrainer_(opts.pipeline,
                 RetrainerOptions{opts.bin_interval_seconds, opts.min_bins,
                                  opts.seed, opts.winsorize_k,
                                  opts.divergence_multiple}) {
  DBAUGUR_CHECK(opts_.queue_capacity >= 1,
                "ForecastService queue_capacity must be >= 1");
  DBAUGUR_CHECK(opts_.retrain_interval_seconds > 0,
                "ForecastService retrain_interval_seconds must be positive");
  DBAUGUR_CHECK(opts_.bin_interval_seconds > 0,
                "ForecastService bin_interval_seconds must be positive");
  DBAUGUR_CHECK(opts_.max_backoff_seconds > 0,
                "ForecastService max_backoff_seconds must be positive");
  // Readers never see a null snapshot: generation 0 is "nothing trained yet".
  Publish(std::make_shared<const ServiceSnapshot>(), 0);
}

void ForecastService::Publish(std::shared_ptr<const ServiceSnapshot> snap,
                              uint64_t gen) {
  // The old snapshot's refcount drop (and possible destruction) happens on
  // this thread after the lock is released, never on a reader.
  std::shared_ptr<const ServiceSnapshot> retired;
  {
    MutexLock lock(&snapshot_mu_);
    retired = std::exchange(snapshot_ptr_, std::move(snap));
  }
  generation_.store(gen, std::memory_order_release);
}

ForecastService::~ForecastService() { Stop(); }

void ForecastService::RecordFailure(const Status& st) {
  retrains_failed_.fetch_add(1, std::memory_order_relaxed);
  consecutive_failures_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(&error_mu_);
    // retrainer_ access is legal here: DBAUGUR_REQUIRES(retrain_mu_).
    last_error_ = st.message();
    last_error_cycles_ = retrainer_.cycles();
    last_error_generation_ = generation_.load(std::memory_order_acquire);
  }
  // The single log line for this failure: the backoff loop stays silent, so a
  // persistent fault produces one record per attempt, not one per tick.
  DBAUGUR_WARN("serve: retrain cycle failed: " << st.message());
}

Status ForecastService::RetrainOnce() {
  MutexLock lock(&retrain_mu_);
  std::vector<TraceEvent> events;
  ingestor_.Drain(&events);
  retrainer_.Fold(events);
  uint64_t next_gen = generation_.load(std::memory_order_relaxed) + 1;
  auto last_good = snapshot();
  auto snap = retrainer_.Rebuild(next_gen, last_good.get());
  values_winsorized_.store(retrainer_.values_winsorized(),
                           std::memory_order_relaxed);
  if (!snap.ok()) {
    RecordFailure(snap.status());
    return snap.status();
  }
  consecutive_failures_.store(0, std::memory_order_relaxed);
  if (*snap == nullptr) {
    retrains_skipped_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  Publish(std::move(snap).value(), next_gen);
  retrains_completed_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void ForecastService::Start() {
  MutexLock lifecycle(&lifecycle_mu_);
  if (worker_.joinable()) return;
  {
    MutexLock lock(&stop_mu_);
    stopping_ = false;
  }
  running_.store(true, std::memory_order_release);
  worker_ = std::thread([this] { RetrainLoop(); });
}

void ForecastService::Stop() {
  // lifecycle_mu_ is held across the join: the retrain thread never touches
  // it, and holding it makes concurrent Start/Stop/dtor calls safe (worker_
  // itself is not a thread-safe object).
  MutexLock lifecycle(&lifecycle_mu_);
  {
    MutexLock lock(&stop_mu_);
    stopping_ = true;
  }
  stop_cv_.NotifyAll();
  if (worker_.joinable()) worker_.join();
  worker_ = std::thread();
  running_.store(false, std::memory_order_release);
}

double ForecastService::ComputeBackoffSeconds(const ServeOptions& opts,
                                              uint64_t consecutive_failures,
                                              uint64_t total_failures) {
  if (consecutive_failures == 0) return opts.retrain_interval_seconds;
  // Capped exponential: interval · 2^(failures-1). ldexp is exact, and the
  // exponent is clamped well below double overflow before the cap applies.
  int exp = static_cast<int>(std::min<uint64_t>(consecutive_failures - 1, 60));
  double delay = std::ldexp(opts.retrain_interval_seconds, exp);
  delay = std::min(delay, opts.max_backoff_seconds);
  // Deterministic ±10% jitter keyed on (seed, failure ordinal): retries of a
  // fleet sharing one fault de-synchronize, yet every run of the same service
  // waits exactly the same schedule.
  double unit =
      static_cast<double>(Mix64(opts.seed ^ total_failures) >> 11) * 0x1.0p-53;
  return delay * (0.9 + 0.2 * unit);
}

void ForecastService::RetrainLoop() {
  for (;;) {
    {
      MutexLock lock(&stop_mu_);
      if (stopping_) return;
    }
    // Failures are counted, recorded, and logged inside RetrainOnce; here
    // they only stretch the wait below.
    (void)RetrainOnce();
    double wait = ComputeBackoffSeconds(
        opts_, consecutive_failures_.load(std::memory_order_relaxed),
        retrains_failed_.load(std::memory_order_relaxed));
    auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(wait));
    // Explicit predicate loop (not a wait_for lambda): the thread-safety
    // analysis checks lambda bodies as unannotated functions, so a predicate
    // reading the guarded stopping_ flag would be rejected.
    MutexLock lock(&stop_mu_);
    while (!stopping_) {
      if (stop_cv_.WaitUntil(&stop_mu_, deadline)) break;  // timed out
    }
    if (stopping_) return;
  }
}

ServeStats ForecastService::stats() const {
  ServeStats s;
  s.events_accepted = ingestor_.accepted();
  IngestDropStats drops = ingestor_.drop_stats();
  s.events_dropped = drops.total();
  s.events_quarantined = drops.quarantined();
  s.values_winsorized = values_winsorized_.load(std::memory_order_relaxed);
  s.retrains_completed = retrains_completed_.load(std::memory_order_relaxed);
  s.retrains_skipped = retrains_skipped_.load(std::memory_order_relaxed);
  s.retrains_failed = retrains_failed_.load(std::memory_order_relaxed);
  s.consecutive_failures =
      consecutive_failures_.load(std::memory_order_relaxed);
  s.generation = generation();
  {
    MutexLock lock(&error_mu_);
    s.last_error = last_error_;
    s.last_error_cycles = last_error_cycles_;
    s.last_error_generation = last_error_generation_;
  }
  return s;
}

ServiceHealth ForecastService::Health() const {
  ServiceHealth h;
  auto snap = snapshot();
  h.generation = snap->generation;
  h.consecutive_failures =
      consecutive_failures_.load(std::memory_order_relaxed);
  h.backoff_seconds =
      ComputeBackoffSeconds(opts_, h.consecutive_failures,
                            retrains_failed_.load(std::memory_order_relaxed));
  {
    MutexLock lock(&error_mu_);
    h.last_error = last_error_;
  }
  h.queue_depth = ingestor_.size();
  h.events_quarantined = ingestor_.drop_stats().quarantined();
  h.values_winsorized = values_winsorized_.load(std::memory_order_relaxed);
  h.clusters.reserve(snap->clusters.size());
  for (size_t rank = 0; rank < snap->clusters.size(); ++rank) {
    const SnapshotCluster& c = snap->clusters[rank];
    h.clusters.push_back({c.cluster_id, rank, c.degraded, c.degraded_reason});
  }
  if (h.consecutive_failures > 0) {
    h.state = ServiceHealth::State::kBackoff;
  } else if (snap->degraded_count() > 0) {
    h.state = ServiceHealth::State::kDegraded;
  } else if (snap->trained()) {
    h.state = ServiceHealth::State::kHealthy;
  } else {
    h.state = ServiceHealth::State::kUntrained;
  }
  return h;
}

StatusOr<std::vector<uint8_t>> ForecastService::Save() {
  MutexLock lock(&retrain_mu_);
  // Fold queued events first so in-flight ingest survives the restart.
  std::vector<TraceEvent> events;
  ingestor_.Drain(&events);
  retrainer_.Fold(events);

  BufWriter w;
  w.U32(kServiceMagic);
  w.U32(kServiceVersion);
  w.U64(generation_.load(std::memory_order_acquire));
  BufWriter rw;
  retrainer_.SaveState(&rw);
  w.Bytes(rw.Take());
  auto snap = snapshot();
  w.U8(snap->trained() ? 1 : 0);
  if (snap->trained()) {
    BufWriter sw;
    DBAUGUR_RETURN_IF_ERROR(SerializeSnapshot(*snap, &sw));
    w.Bytes(sw.Take());
  }
  return w.Take();
}

Status ForecastService::Load(const std::vector<uint8_t>& blob) {
  auto corrupt = [] {
    return Status::InvalidArgument("serve: truncated or corrupt service blob");
  };
  BufReader r(blob);
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!r.U32(&magic) || !r.U32(&version)) return corrupt();
  if (magic != kServiceMagic) {
    return Status::InvalidArgument("serve: bad service blob magic");
  }
  if (version != kServiceVersion) {
    return Status::InvalidArgument("serve: unsupported service blob version");
  }
  uint64_t generation = 0;
  std::vector<uint8_t> retr_bytes;
  uint8_t trained = 0;
  if (!r.U64(&generation) || !r.Bytes(&retr_bytes) || !r.U8(&trained)) {
    return corrupt();
  }
  if (trained > 1) return corrupt();
  std::shared_ptr<const ServiceSnapshot> snap;
  if (trained == 1) {
    std::vector<uint8_t> snap_bytes;
    if (!r.Bytes(&snap_bytes)) return corrupt();
    BufReader sr(snap_bytes);
    auto restored = DeserializeSnapshot(opts_.pipeline, &sr);
    if (!restored.ok()) return restored.status();
    if (!sr.AtEnd()) return corrupt();
    snap = std::move(restored).value();
    if (snap->generation != generation) {
      return Status::InvalidArgument(
          "serve: snapshot generation does not match service header");
    }
  } else {
    auto empty = std::make_shared<ServiceSnapshot>();
    empty->generation = generation;
    snap = empty;
  }
  if (!r.AtEnd()) return corrupt();

  // Everything parsed and verified; apply under the retrain lock so an
  // in-flight background cycle can't interleave with the swap.
  MutexLock lock(&retrain_mu_);
  BufReader rr(retr_bytes);
  DBAUGUR_RETURN_IF_ERROR(retrainer_.LoadState(&rr));
  if (!rr.AtEnd()) return corrupt();
  Publish(std::move(snap), generation);
  return Status::OK();
}

Status ForecastService::SaveToFile(const std::string& path) {
  auto blob = Save();
  if (!blob.ok()) return blob.status();
  return ::dbaugur::SaveToFile(path, *blob);
}

Status ForecastService::LoadFromFile(const std::string& path,
                                     bool* recovered) {
  auto loaded = ::dbaugur::LoadFromFile(path);
  if (!loaded.ok()) return loaded.status();
  Status st = Load(loaded->blob);
  if (st.ok()) {
    if (recovered != nullptr) *recovered = loaded->recovered_from_backup;
    return Status::OK();
  }
  // The primary frame passed its checksum but failed service-level
  // validation; the previous good file may still restore cleanly.
  if (!loaded->recovered_from_backup) {
    auto bak = ::dbaugur::LoadFromFile(path + ".bak");
    if (bak.ok() && Load(bak->blob).ok()) {
      if (recovered != nullptr) *recovered = true;
      return Status::OK();
    }
  }
  return st;
}

}  // namespace dbaugur::serve

// Online forecast serving: streaming ingest + non-blocking reads + background
// retraining + whole-service snapshots.
//
//   ForecastService svc(options);
//   svc.Start();                          // background retrain loop
//   svc.Offer({template_id, ts, count});  // any thread, never blocks
//   auto snap = svc.snapshot();           // immutable view (pointer copy)
//   snap->ForecastCluster(0);             // pure arithmetic, no locks
//   auto blob = svc.Save();               // versioned full-state blob
//   restarted.Load(*blob);                // resumes with identical forecasts
//   svc.SaveToFile(path);                 // crash-safe on-disk checkpoint
//   svc.Health();                         // liveness + degradation report
//
// Concurrency model: producers Offer() into the bounded ingest queue; the
// single retrain thread drains it, re-runs the clustering + ensemble pipeline,
// and publishes a fresh immutable ServiceSnapshot by swapping a shared_ptr
// under a dedicated pointer-copy mutex. That mutex guards only the
// nanosecond-scale copy/swap of the pointer — readers never hold a lock
// across a forecast call and never contend with the retrain path, so reads
// proceed at full speed while a retrain is in flight; they simply keep
// seeing the previous generation until the swap. (A `std::atomic` of
// `shared_ptr` would make the copy itself lock-free, but libstdc++ 12's
// _Sp_atomic predates the _GLIBCXX_TSAN annotations (GCC PR 101761) and
// reports false races under the TSan preset this repo gates on — tools/lint.py
// rejects the type tree-wide for that reason.)
//
// Every mutex below is a capability-annotated dbaugur::Mutex and every field
// it protects carries DBAUGUR_GUARDED_BY, so the locking discipline described
// above is compile-checked under Clang (-Werror=thread-safety), not just
// prose: retrain_mu_ serializes the training side (and is the outermost
// lock), snapshot_mu_ guards only the pointer swap, error_mu_ the last_error
// record, stop_mu_ the shutdown flag, lifecycle_mu_ the worker thread object.
//
// Failure model: a failed retrain cycle never disturbs the published
// snapshot — readers keep the previous generation. The background loop backs
// off exponentially (capped, deterministically jittered) while failures
// persist, logs each failure exactly once, and records it for stats()/
// Health(). Individual diverged clusters degrade independently inside the
// snapshot build (see serve/snapshot.h).

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/dbaugur.h"
#include "serve/ingestor.h"
#include "serve/retrainer.h"
#include "serve/snapshot.h"

namespace dbaugur::serve {

/// Full serving configuration.
struct ServeOptions {
  core::DBAugurOptions pipeline;        ///< Clustering + forecasting options.
  size_t queue_capacity = 4096;         ///< Ingest queue bound (>= 1).
  size_t max_templates = 4096;          ///< Reject template ids beyond this.
  int64_t bin_interval_seconds = 600;   ///< Forecasting interval I (> 0).
  double retrain_interval_seconds = 1.0;  ///< Background cycle period (> 0).
  size_t min_bins = 0;                  ///< Bins before first train (0: auto).
  uint64_t seed = 42;                   ///< Base seed for the retrain stream.
  /// Events older than the newest accepted timestamp by more than this are
  /// quarantined at ingest (negative disables; see IngestorOptions).
  int64_t max_lateness_seconds = 24 * 3600;
  /// Absolute clock-skew bounds: events timestamped before/after these are
  /// quarantined at ingest (negative disables; see IngestorOptions).
  int64_t min_timestamp_seconds = 0;
  int64_t max_timestamp_seconds = 4102444800;  ///< 2100-01-01T00:00:00Z.
  /// Median/MAD winsorization threshold for the retrain path (<= 0 off).
  double winsorize_k = 8.0;
  /// Per-cluster forecast sanity bound (multiples of the representative's
  /// observed span; <= 0 disables the range check).
  double divergence_multiple = 10.0;
  /// Cap on the failure backoff delay between retrain attempts (> 0).
  double max_backoff_seconds = 60.0;
};

/// Monotonic service counters (relaxed reads; values may trail by an event).
struct ServeStats {
  uint64_t events_accepted = 0;
  uint64_t events_dropped = 0;     ///< All drops, including queue-full.
  uint64_t events_quarantined = 0; ///< Malformed drops only (bad template id,
                                   ///< non-finite / negative count, stale).
  uint64_t values_winsorized = 0;  ///< Trace values clamped before training.
  uint64_t retrains_completed = 0;
  uint64_t retrains_skipped = 0;   ///< Cycles with too little data to train.
  uint64_t retrains_failed = 0;
  uint64_t consecutive_failures = 0;  ///< 0 after any successful cycle.
  uint64_t generation = 0;
  /// Most recent retrain failure (empty message if none yet). The cycle /
  /// generation fields say *when*: the failure was observed after
  /// `last_error_cycles` completed cycles, while generation
  /// `last_error_generation` was being served.
  std::string last_error;
  uint64_t last_error_cycles = 0;
  uint64_t last_error_generation = 0;
};

/// Point-in-time liveness + degradation report (see Health()).
struct ServiceHealth {
  enum class State {
    kUntrained,  ///< No generation published yet.
    kHealthy,    ///< Serving, no degraded clusters, no active failures.
    kDegraded,   ///< Serving, but >= 1 cluster is on a fallback model.
    kBackoff,    ///< Last retrain failed; the loop is backing off.
  };
  struct Cluster {
    int cluster_id = 0;
    size_t rank = 0;          ///< Position in the top-K ordering.
    bool degraded = false;
    std::string reason;       ///< Empty unless degraded.
  };

  State state = State::kUntrained;
  uint64_t generation = 0;
  uint64_t consecutive_failures = 0;
  /// Delay before the next retrain attempt given the current failure count.
  double backoff_seconds = 0.0;
  std::string last_error;     ///< Empty if no retrain has ever failed.
  size_t queue_depth = 0;     ///< Events waiting in the ingest queue.
  uint64_t events_quarantined = 0;
  uint64_t values_winsorized = 0;
  std::vector<Cluster> clusters;  ///< Per-cluster degradation flags.
};

class ForecastService {
 public:
  /// Aborts (DBAUGUR_CHECK) on out-of-range options. Publishes an empty
  /// generation-0 snapshot so readers always have a valid pointer.
  explicit ForecastService(const ServeOptions& opts);
  ~ForecastService();
  ForecastService(const ForecastService&) = delete;
  ForecastService& operator=(const ForecastService&) = delete;

  /// Thread-safe, non-blocking event ingest (see TraceIngestor::Offer).
  bool Offer(const TraceEvent& event) { return ingestor_.Offer(event); }

  /// Copies the current immutable snapshot pointer (the only work done under
  /// snapshot_mu_). The returned pointer stays valid (and frozen) for as long
  /// as the caller holds it, no matter how many retrains publish newer
  /// generations meanwhile.
  std::shared_ptr<const ServiceSnapshot> snapshot() const
      DBAUGUR_EXCLUDES(snapshot_mu_) {
    MutexLock lock(&snapshot_mu_);
    return snapshot_ptr_;
  }

  /// Generation of the latest published snapshot (0 until first train).
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Convenience single-read forecasts against the current snapshot.
  StatusOr<double> ForecastCluster(size_t rank) const {
    return snapshot()->ForecastCluster(rank);
  }
  StatusOr<double> ForecastTrace(size_t trace_index) const {
    return snapshot()->ForecastTrace(trace_index);
  }

  /// Runs one drain → fold → retrain → publish cycle synchronously. OK when
  /// the cycle is skipped for lack of data (the skip is counted in stats).
  /// A failure is recorded (stats + last_error, logged once) and returned;
  /// the published snapshot is untouched.
  /// Serialized against the background loop and Save/Load.
  Status RetrainOnce() DBAUGUR_EXCLUDES(retrain_mu_);

  /// Starts the background retrain thread (idempotent; thread-safe against
  /// concurrent Start/Stop via lifecycle_mu_).
  void Start() DBAUGUR_EXCLUDES(lifecycle_mu_);
  /// Stops and joins the background thread (idempotent; called by dtor).
  void Stop() DBAUGUR_EXCLUDES(lifecycle_mu_);
  bool running() const { return running_.load(std::memory_order_acquire); }

  ServeStats stats() const;

  /// Snapshot of the service's liveness and degradation state.
  ServiceHealth Health() const;

  /// The delay the background loop waits after a cycle, given the current
  /// failure streak: retrain_interval for 0 failures, else capped exponential
  /// backoff with a deterministic ±10% jitter keyed on (seed, total_failures).
  /// Static and pure so tests can recompute the exact schedule.
  static double ComputeBackoffSeconds(const ServeOptions& opts,
                                      uint64_t consecutive_failures,
                                      uint64_t total_failures);

  /// Serializes the whole service — binned history, retrain-cycle position,
  /// and the published snapshot with every model parameter in lossless
  /// float64 — into one versioned blob. Pending queued events are folded in
  /// first so nothing is lost across a restart.
  StatusOr<std::vector<uint8_t>> Save() DBAUGUR_EXCLUDES(retrain_mu_);

  /// Restores a Save blob. All-or-nothing: on any validation failure the
  /// service keeps serving its current snapshot untouched. On success the
  /// restored snapshot (verified to reproduce its saved forecasts bit-for-
  /// bit) is published and the retrain seed stream resumes where it left off.
  Status Load(const std::vector<uint8_t>& blob) DBAUGUR_EXCLUDES(retrain_mu_);

  /// Crash-safe on-disk checkpoint: Save() through common/binio's
  /// write-temp → fsync → atomic-rename path (with CRC framing and the
  /// previous good file kept as `.bak`).
  Status SaveToFile(const std::string& path);

  /// Restores a SaveToFile checkpoint, falling back to the `.bak` previous
  /// good file when the primary is torn or corrupt. `recovered` (optional)
  /// reports whether the fallback was used.
  Status LoadFromFile(const std::string& path, bool* recovered = nullptr);

  const ServeOptions& options() const { return opts_; }

 private:
  void RetrainLoop() DBAUGUR_EXCLUDES(retrain_mu_, stop_mu_);

  /// Swaps in a new snapshot + generation under snapshot_mu_.
  void Publish(std::shared_ptr<const ServiceSnapshot> snap, uint64_t gen)
      DBAUGUR_EXCLUDES(snapshot_mu_);

  /// Records a retrain failure: counters, last_error, one WARN log line.
  /// Reads retrainer_.cycles(), hence the retrain_mu_ requirement.
  void RecordFailure(const Status& st) DBAUGUR_REQUIRES(retrain_mu_);

  ServeOptions opts_;
  TraceIngestor ingestor_;

  /// Serializes the whole training side: RetrainOnce, Save, Load. Outermost
  /// lock — snapshot_mu_ and error_mu_ nest inside it, never the reverse.
  Mutex retrain_mu_ DBAUGUR_ACQUIRED_BEFORE(snapshot_mu_, error_mu_);
  Retrainer retrainer_ DBAUGUR_GUARDED_BY(retrain_mu_);

  /// Guards only the nanosecond-scale snapshot-pointer copy/swap, never work.
  mutable Mutex snapshot_mu_;
  std::shared_ptr<const ServiceSnapshot> snapshot_ptr_
      DBAUGUR_GUARDED_BY(snapshot_mu_);
  std::atomic<uint64_t> generation_{0};

  std::atomic<uint64_t> retrains_completed_{0};
  std::atomic<uint64_t> retrains_skipped_{0};
  std::atomic<uint64_t> retrains_failed_{0};
  std::atomic<uint64_t> consecutive_failures_{0};
  std::atomic<uint64_t> values_winsorized_{0};

  mutable Mutex error_mu_;  ///< Guards the last_error record.
  std::string last_error_ DBAUGUR_GUARDED_BY(error_mu_);
  uint64_t last_error_cycles_ DBAUGUR_GUARDED_BY(error_mu_) = 0;
  uint64_t last_error_generation_ DBAUGUR_GUARDED_BY(error_mu_) = 0;

  /// Serializes Start/Stop/dtor. Previously worker_ was touched by whichever
  /// thread called Start/Stop with no synchronization — a data race on the
  /// std::thread object if two threads raced the calls (found by the
  /// thread-safety sweep; see README "Static analysis").
  Mutex lifecycle_mu_;
  std::thread worker_ DBAUGUR_GUARDED_BY(lifecycle_mu_);

  Mutex stop_mu_;  ///< Guards stopping_, paired with stop_cv_.
  CondVar stop_cv_;
  bool stopping_ DBAUGUR_GUARDED_BY(stop_mu_) = false;
  std::atomic<bool> running_{false};
};

}  // namespace dbaugur::serve

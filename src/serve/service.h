// Online forecast serving: streaming ingest + non-blocking reads + background
// retraining + whole-service snapshots.
//
//   ForecastService svc(options);
//   svc.Start();                          // background retrain loop
//   svc.Offer({template_id, ts, count});  // any thread, never blocks
//   auto snap = svc.snapshot();           // immutable view (pointer copy)
//   snap->ForecastCluster(0);             // pure arithmetic, no locks
//   auto blob = svc.Save();               // versioned full-state blob
//   restarted.Load(*blob);                // resumes with identical forecasts
//   svc.SaveToFile(path);                 // crash-safe on-disk checkpoint
//   svc.Health();                         // liveness + degradation report
//
// Since the sharding refactor the queue / snapshot / retrainer state lives in
// serve/shard.h: ForecastService is exactly one ServiceShard plus the
// wall-clock background loop (capped exponential backoff on failure) and the
// versioned single-blob save/load format. ShardedForecastService
// (serve/sharded_service.h) owns N of the same shards behind a hash router
// and a priority retrain scheduler; with shard_count = 1 it is bit-identical
// to this class (pinned by tests/serve_shard_test.cpp). The concurrency and
// failure model — lock-free-feeling reads, per-field DBAUGUR_GUARDED_BY
// annotations, failed cycles never disturbing the published snapshot — is
// documented on ServiceShard.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "serve/shard.h"

namespace dbaugur::serve {

class ForecastService {
 public:
  /// Aborts (DBAUGUR_CHECK) on out-of-range options. Publishes an empty
  /// generation-0 snapshot so readers always have a valid pointer.
  explicit ForecastService(const ServeOptions& opts);
  ~ForecastService();
  ForecastService(const ForecastService&) = delete;
  ForecastService& operator=(const ForecastService&) = delete;

  /// Thread-safe, non-blocking event ingest (see TraceIngestor::Offer).
  bool Offer(const TraceEvent& event) { return shard_.Offer(event); }

  /// Copies the current immutable snapshot pointer; see ServiceShard.
  std::shared_ptr<const ServiceSnapshot> snapshot() const {
    return shard_.snapshot();
  }

  /// Generation of the latest published snapshot (0 until first train).
  uint64_t generation() const { return shard_.generation(); }

  /// Convenience single-read forecasts against the current snapshot.
  StatusOr<double> ForecastCluster(size_t rank) const {
    return snapshot()->ForecastCluster(rank);
  }
  StatusOr<double> ForecastTrace(size_t trace_index) const {
    return snapshot()->ForecastTrace(trace_index);
  }

  /// Runs one drain → fold → retrain → publish cycle synchronously. OK when
  /// the cycle is skipped for lack of data (the skip is counted in stats).
  /// A failure is recorded (stats + last_error, logged once) and returned;
  /// the published snapshot is untouched.
  /// Serialized against the background loop and Save/Load.
  Status RetrainOnce() { return shard_.RetrainOnce(); }

  /// Starts the background retrain thread (idempotent; thread-safe against
  /// concurrent Start/Stop via lifecycle_mu_).
  void Start() DBAUGUR_EXCLUDES(lifecycle_mu_);
  /// Stops and joins the background thread (idempotent; called by dtor).
  void Stop() DBAUGUR_EXCLUDES(lifecycle_mu_);
  bool running() const { return running_.load(std::memory_order_acquire); }

  ServeStats stats() const { return shard_.stats(); }

  /// Snapshot of the service's liveness and degradation state.
  ServiceHealth Health() const;

  /// The delay the background loop waits after a cycle, given the current
  /// failure streak: retrain_interval for 0 failures, else capped exponential
  /// backoff with a deterministic ±10% jitter keyed on (seed, total_failures).
  /// Static and pure so tests can recompute the exact schedule.
  static double ComputeBackoffSeconds(const ServeOptions& opts,
                                      uint64_t consecutive_failures,
                                      uint64_t total_failures);

  /// Serializes the whole service — binned history, retrain-cycle position,
  /// and the published snapshot with every model parameter in lossless
  /// float64 — into one versioned blob. Pending queued events are folded in
  /// first so nothing is lost across a restart.
  StatusOr<std::vector<uint8_t>> Save();

  /// Restores a Save blob. All-or-nothing: on any validation failure the
  /// service keeps serving its current snapshot untouched. On success the
  /// restored snapshot (verified to reproduce its saved forecasts bit-for-
  /// bit) is published and the retrain seed stream resumes where it left off.
  Status Load(const std::vector<uint8_t>& blob);

  /// Crash-safe on-disk checkpoint: Save() through common/binio's
  /// write-temp → fsync → atomic-rename path (with CRC framing and the
  /// previous good file kept as `.bak`).
  Status SaveToFile(const std::string& path);

  /// Restores a SaveToFile checkpoint, falling back to the `.bak` previous
  /// good file when the primary is torn or corrupt. `recovered` (optional)
  /// reports whether the fallback was used.
  Status LoadFromFile(const std::string& path, bool* recovered = nullptr);

  const ServeOptions& options() const { return shard_.options(); }

 private:
  void RetrainLoop() DBAUGUR_EXCLUDES(stop_mu_);

  ServiceShard shard_;

  /// Serializes Start/Stop/dtor. Previously worker_ was touched by whichever
  /// thread called Start/Stop with no synchronization — a data race on the
  /// std::thread object if two threads raced the calls (found by the
  /// thread-safety sweep; see README "Static analysis").
  Mutex lifecycle_mu_;
  std::thread worker_ DBAUGUR_GUARDED_BY(lifecycle_mu_);

  Mutex stop_mu_;  ///< Guards stopping_, paired with stop_cv_.
  CondVar stop_cv_;
  bool stopping_ DBAUGUR_GUARDED_BY(stop_mu_) = false;
  std::atomic<bool> running_{false};
};

}  // namespace dbaugur::serve

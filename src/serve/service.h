// Online forecast serving: streaming ingest + non-blocking reads + background
// retraining + whole-service snapshots.
//
//   ForecastService svc(options);
//   svc.Start();                          // background retrain loop
//   svc.Offer({template_id, ts, count});  // any thread, never blocks
//   auto snap = svc.snapshot();           // immutable view (pointer copy)
//   snap->ForecastCluster(0);             // pure arithmetic, no locks
//   auto blob = svc.Save();               // versioned full-state blob
//   restarted.Load(*blob);                // resumes with identical forecasts
//
// Concurrency model: producers Offer() into the bounded ingest queue; the
// single retrain thread drains it, re-runs the clustering + ensemble pipeline,
// and publishes a fresh immutable ServiceSnapshot by swapping a shared_ptr
// under a dedicated pointer-copy mutex. That mutex guards only the
// nanosecond-scale copy/swap of the pointer — readers never hold a lock
// across a forecast call and never contend with the retrain path, so reads
// proceed at full speed while a retrain is in flight; they simply keep
// seeing the previous generation until the swap. (A std::atomic<shared_ptr>
// would make the copy itself lock-free, but libstdc++ 12's _Sp_atomic
// predates the _GLIBCXX_TSAN annotations (GCC PR 101761) and reports false
// races under the TSan preset this repo gates on.)

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/dbaugur.h"
#include "serve/ingestor.h"
#include "serve/retrainer.h"
#include "serve/snapshot.h"

namespace dbaugur::serve {

/// Full serving configuration.
struct ServeOptions {
  core::DBAugurOptions pipeline;        ///< Clustering + forecasting options.
  size_t queue_capacity = 4096;         ///< Ingest queue bound (>= 1).
  size_t max_templates = 4096;          ///< Reject template ids beyond this.
  int64_t bin_interval_seconds = 600;   ///< Forecasting interval I (> 0).
  double retrain_interval_seconds = 1.0;  ///< Background cycle period (> 0).
  size_t min_bins = 0;                  ///< Bins before first train (0: auto).
  uint64_t seed = 42;                   ///< Base seed for the retrain stream.
};

/// Monotonic service counters (relaxed reads; values may trail by an event).
struct ServeStats {
  uint64_t events_accepted = 0;
  uint64_t events_dropped = 0;
  uint64_t retrains_completed = 0;
  uint64_t retrains_skipped = 0;   ///< Cycles with too little data to train.
  uint64_t retrains_failed = 0;
  uint64_t generation = 0;
};

class ForecastService {
 public:
  /// Aborts (DBAUGUR_CHECK) on out-of-range options. Publishes an empty
  /// generation-0 snapshot so readers always have a valid pointer.
  explicit ForecastService(const ServeOptions& opts);
  ~ForecastService();
  ForecastService(const ForecastService&) = delete;
  ForecastService& operator=(const ForecastService&) = delete;

  /// Thread-safe, non-blocking event ingest (see TraceIngestor::Offer).
  bool Offer(const TraceEvent& event) { return ingestor_.Offer(event); }

  /// Copies the current immutable snapshot pointer (the only work done under
  /// snapshot_mu_). The returned pointer stays valid (and frozen) for as long
  /// as the caller holds it, no matter how many retrains publish newer
  /// generations meanwhile.
  std::shared_ptr<const ServiceSnapshot> snapshot() const {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    return snapshot_ptr_;
  }

  /// Generation of the latest published snapshot (0 until first train).
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Convenience single-read forecasts against the current snapshot.
  StatusOr<double> ForecastCluster(size_t rank) const {
    return snapshot()->ForecastCluster(rank);
  }
  StatusOr<double> ForecastTrace(size_t trace_index) const {
    return snapshot()->ForecastTrace(trace_index);
  }

  /// Runs one drain → fold → retrain → publish cycle synchronously. OK when
  /// the cycle is skipped for lack of data (the skip is counted in stats).
  /// Serialized against the background loop and Save/Load.
  Status RetrainOnce();

  /// Starts the background retrain thread (idempotent).
  void Start();
  /// Stops and joins the background thread (idempotent; called by dtor).
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  ServeStats stats() const;

  /// Serializes the whole service — binned history, retrain-cycle position,
  /// and the published snapshot with every model parameter in lossless
  /// float64 — into one versioned blob. Pending queued events are folded in
  /// first so nothing is lost across a restart.
  StatusOr<std::vector<uint8_t>> Save();

  /// Restores a Save blob. All-or-nothing: on any validation failure the
  /// service keeps serving its current snapshot untouched. On success the
  /// restored snapshot (verified to reproduce its saved forecasts bit-for-
  /// bit) is published and the retrain seed stream resumes where it left off.
  Status Load(const std::vector<uint8_t>& blob);

  const ServeOptions& options() const { return opts_; }

 private:
  void RetrainLoop();

  /// Swaps in a new snapshot + generation under snapshot_mu_.
  void Publish(std::shared_ptr<const ServiceSnapshot> snap, uint64_t gen);

  ServeOptions opts_;
  TraceIngestor ingestor_;
  Retrainer retrainer_;               // guarded by retrain_mu_
  std::mutex retrain_mu_;             // serializes retrain/Save/Load
  mutable std::mutex snapshot_mu_;    // pointer copy/swap only, never work
  std::shared_ptr<const ServiceSnapshot> snapshot_ptr_;  // guarded ^
  std::atomic<uint64_t> generation_{0};

  std::atomic<uint64_t> retrains_completed_{0};
  std::atomic<uint64_t> retrains_skipped_{0};
  std::atomic<uint64_t> retrains_failed_{0};

  std::thread worker_;                // managed by Start/Stop (owner thread)
  std::mutex stop_mu_;                // guards stopping_ with stop_cv_
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::atomic<bool> running_{false};
};

}  // namespace dbaugur::serve

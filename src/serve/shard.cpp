#include "serve/shard.h"

#include <chrono>
#include <utility>

#include "common/contracts.h"
#include "common/logging.h"

namespace dbaugur::serve {

namespace {
uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ServiceShard::ServiceShard(const ServeOptions& opts, size_t shard_id)
    : opts_(opts),
      shard_id_(shard_id),
      ingestor_(IngestorOptions{opts.queue_capacity, opts.max_templates,
                                opts.max_lateness_seconds,
                                opts.min_timestamp_seconds,
                                opts.max_timestamp_seconds}),
      retrainer_(opts.pipeline,
                 RetrainerOptions{opts.bin_interval_seconds, opts.min_bins,
                                  opts.seed, opts.winsorize_k,
                                  opts.divergence_multiple}) {
  DBAUGUR_CHECK(opts_.queue_capacity >= 1,
                "ServiceShard queue_capacity must be >= 1");
  DBAUGUR_CHECK(opts_.bin_interval_seconds > 0,
                "ServiceShard bin_interval_seconds must be positive");
  // Readers never see a null snapshot: generation 0 is "nothing trained yet".
  Publish(std::make_shared<const ServiceSnapshot>(), 0);
}

void ServiceShard::Publish(std::shared_ptr<const ServiceSnapshot> snap,
                           uint64_t gen) {
  // The old snapshot's refcount drop (and possible destruction) happens on
  // this thread after the lock is released, never on a reader.
  std::shared_ptr<const ServiceSnapshot> retired;
  {
    MutexLock lock(&snapshot_mu_);
    retired = std::exchange(snapshot_ptr_, std::move(snap));
  }
  generation_.store(gen, std::memory_order_release);
  last_publish_stamp_.store(NowNanos(), std::memory_order_relaxed);
  // A fresh publish supersedes any watchdog-cancelled cycle: the shard is no
  // longer serving stale state, so drop the marker and its reason.
  if (degraded_stale_.load(std::memory_order_relaxed)) {
    {
      MutexLock lock(&error_mu_);
      stale_reason_.clear();
    }
    degraded_stale_.store(false, std::memory_order_release);
  }
}

void ServiceShard::RecordFailure(const Status& st) {
  retrains_failed_.fetch_add(1, std::memory_order_relaxed);
  consecutive_failures_.fetch_add(1, std::memory_order_relaxed);
  last_error_stamp_.store(NowNanos(), std::memory_order_relaxed);
  {
    MutexLock lock(&error_mu_);
    // retrainer_ access is legal here: DBAUGUR_REQUIRES(retrain_mu_).
    last_error_ = st.message();
    last_error_cycles_ = retrainer_.cycles();
    last_error_generation_ = generation_.load(std::memory_order_acquire);
  }
  // The single log line for this failure: the backoff machinery stays silent,
  // so a persistent fault produces one record per attempt, not one per tick.
  DBAUGUR_WARN("serve: shard " << shard_id_
                               << " retrain cycle failed: " << st.message());
}

Status ServiceShard::RetrainOnce(ThreadPool* fit_pool,
                                 const CancelToken* cancel) {
  uint64_t t0 = NowNanos();
  MutexLock lock(&retrain_mu_);
  // Drain + fold before any cancellation checkpoint: even a cycle the
  // watchdog kills instantly moves its queued events into the binner, so
  // cancellation never loses data — the next successful cycle trains on them.
  std::vector<TraceEvent> events;
  ingestor_.Drain(&events);
  retrainer_.Fold(events);
  uint64_t next_gen = generation_.load(std::memory_order_relaxed) + 1;
  auto last_good = snapshot();
  auto snap = retrainer_.Rebuild(next_gen, last_good.get(), fit_pool, cancel);
  values_winsorized_.store(retrainer_.values_winsorized(),
                           std::memory_order_relaxed);
  // The "retrain lag" a scheduler cares about: how long drained events take
  // to reach the published snapshot. Recorded for every attempted cycle —
  // skips and failures included — so staleness math never reads a stale 0.
  auto record_duration = [&] {
    last_retrain_nanos_.store(NowNanos() - t0, std::memory_order_relaxed);
  };
  if (!snap.ok()) {
    RecordFailure(snap.status());
    if (snap.status().code() == StatusCode::kCancelled) {
      // Cancellation is a failure (it feeds the backoff streak above) plus a
      // staleness marker: the shard keeps serving last-good, and Health()
      // surfaces why until the next successful publish clears it.
      retrains_cancelled_.fetch_add(1, std::memory_order_relaxed);
      {
        MutexLock elock(&error_mu_);
        stale_reason_ = snap.status().message();
      }
      degraded_stale_.store(true, std::memory_order_release);
    }
    record_duration();
    return snap.status();
  }
  consecutive_failures_.store(0, std::memory_order_relaxed);
  if (*snap == nullptr) {
    retrains_skipped_.fetch_add(1, std::memory_order_relaxed);
    record_duration();
    return Status::OK();
  }
  Publish(std::move(snap).value(), next_gen);
  retrains_completed_.fetch_add(1, std::memory_order_relaxed);
  record_duration();
  return Status::OK();
}

std::string ServiceShard::stale_reason() const {
  MutexLock lock(&error_mu_);
  return stale_reason_;
}

double ServiceShard::last_error_age_seconds() const {
  uint64_t stamp = last_error_stamp_.load(std::memory_order_relaxed);
  if (stamp == 0) return -1.0;
  uint64_t now = NowNanos();
  return now > stamp ? static_cast<double>(now - stamp) * 1e-9 : 0.0;
}

double ServiceShard::last_retrain_seconds() const {
  return static_cast<double>(
             last_retrain_nanos_.load(std::memory_order_relaxed)) *
         1e-9;
}

double ServiceShard::staleness_seconds() const {
  uint64_t stamp = last_publish_stamp_.load(std::memory_order_relaxed);
  if (stamp == 0) return 0.0;
  uint64_t now = NowNanos();
  return now > stamp ? static_cast<double>(now - stamp) * 1e-9 : 0.0;
}

ServeStats ServiceShard::stats() const {
  ServeStats s;
  s.events_accepted = ingestor_.accepted();
  IngestDropStats drops = ingestor_.drop_stats();
  s.events_dropped = drops.total();
  s.events_quarantined = drops.quarantined();
  s.values_winsorized = values_winsorized_.load(std::memory_order_relaxed);
  s.retrains_completed = retrains_completed_.load(std::memory_order_relaxed);
  s.retrains_skipped = retrains_skipped_.load(std::memory_order_relaxed);
  s.retrains_failed = retrains_failed_.load(std::memory_order_relaxed);
  s.consecutive_failures =
      consecutive_failures_.load(std::memory_order_relaxed);
  s.generation = generation();
  {
    MutexLock lock(&error_mu_);
    s.last_error = last_error_;
    s.last_error_cycles = last_error_cycles_;
    s.last_error_generation = last_error_generation_;
  }
  return s;
}

Status ServiceShard::SaveStateSection(BufWriter* w) {
  MutexLock lock(&retrain_mu_);
  // Fold queued events first so in-flight ingest survives the restart.
  std::vector<TraceEvent> events;
  ingestor_.Drain(&events);
  retrainer_.Fold(events);

  w->U64(generation_.load(std::memory_order_acquire));
  BufWriter rw;
  retrainer_.SaveState(&rw);
  w->Bytes(rw.Take());
  auto snap = snapshot();
  w->U8(snap->trained() ? 1 : 0);
  if (snap->trained()) {
    BufWriter sw;
    DBAUGUR_RETURN_IF_ERROR(SerializeSnapshot(*snap, &sw));
    w->Bytes(sw.Take());
  }
  return Status::OK();
}

StatusOr<ServiceShard::ParsedState> ServiceShard::ParseStateSection(
    BufReader* r) const {
  auto corrupt = [] {
    return Status::InvalidArgument("serve: truncated or corrupt service blob");
  };
  ParsedState out;
  std::vector<uint8_t> retr_bytes;
  uint8_t trained = 0;
  if (!r->U64(&out.generation) || !r->Bytes(&retr_bytes) || !r->U8(&trained)) {
    return corrupt();
  }
  if (trained > 1) return corrupt();

  BufReader rr(retr_bytes);
  if (!rr.U64(&out.cycles)) return corrupt();
  TraceBinner binner(opts_.bin_interval_seconds);
  DBAUGUR_RETURN_IF_ERROR(binner.Load(&rr));
  if (!rr.AtEnd()) return corrupt();
  if (binner.interval_seconds() != opts_.bin_interval_seconds) {
    return Status::InvalidArgument(
        "Retrainer: saved bin interval does not match service options");
  }
  out.binner = std::move(binner);

  if (trained == 1) {
    std::vector<uint8_t> snap_bytes;
    if (!r->Bytes(&snap_bytes)) return corrupt();
    BufReader sr(snap_bytes);
    auto restored = DeserializeSnapshot(opts_.pipeline, &sr);
    if (!restored.ok()) return restored.status();
    if (!sr.AtEnd()) return corrupt();
    out.snapshot = std::move(restored).value();
    if (out.snapshot->generation != out.generation) {
      return Status::InvalidArgument(
          "serve: snapshot generation does not match service header");
    }
  } else {
    auto empty = std::make_shared<ServiceSnapshot>();
    empty->generation = out.generation;
    out.snapshot = empty;
  }
  return out;
}

void ServiceShard::InstallParsedState(ParsedState state) {
  // Apply under the retrain lock so an in-flight retrain cycle can't
  // interleave with the swap.
  MutexLock lock(&retrain_mu_);
  retrainer_.InstallState(std::move(state.binner), state.cycles);
  Publish(std::move(state.snapshot), state.generation);
}

std::map<uint32_t, std::map<int64_t, double>> ServiceShard::BinContents() {
  MutexLock lock(&retrain_mu_);
  return retrainer_.binner().bins();
}

}  // namespace dbaugur::serve

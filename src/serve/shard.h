// One serving shard: the single-shard unit behind both ForecastService (which
// wraps exactly one) and ShardedForecastService (which owns N and routes by
// template-key hash — see serve/sharded_service.h).
//
// A ServiceShard owns its own bounded ingest queue, TraceBinner + Retrainer
// with an independently positioned seed stream, published immutable snapshot
// pointer, and failure/degradation counters. Reads are a pointer copy under a
// nanosecond-scale mutex; RetrainOnce drains, folds, retrains, and publishes.
// Shards share no mutable state, so N shards retrain concurrently without
// contending anywhere.
//
// Concurrency model (unchanged from the PR-4/5 single service, now per
// shard): producers Offer() into the bounded ingest queue; one retrain call
// at a time drains it, re-runs the clustering + ensemble pipeline, and
// publishes a fresh immutable ServiceSnapshot by swapping a shared_ptr under
// a dedicated pointer-copy mutex. That mutex guards only the nanosecond-scale
// copy/swap of the pointer — readers never hold a lock across a forecast call
// and never contend with the retrain path. (A `std::atomic` of `shared_ptr`
// would make the copy itself lock-free, but libstdc++ 12's _Sp_atomic
// predates the _GLIBCXX_TSAN annotations (GCC PR 101761) and reports false
// races under the TSan preset this repo gates on — tools/lint.py rejects the
// type tree-wide for that reason.)
//
// Every mutex below is a capability-annotated dbaugur::Mutex and every field
// it protects carries DBAUGUR_GUARDED_BY: retrain_mu_ serializes the training
// side (and is the outermost lock), snapshot_mu_ guards only the pointer
// swap, error_mu_ the last_error record.
//
// Failure model: a failed retrain never disturbs the published snapshot —
// readers keep the previous generation. Failures are counted per shard and
// logged exactly once each; backoff policy lives in the owning service
// (wall-clock backoff in ForecastService's loop, cycle-count backoff in the
// sharded scheduler). Individual diverged clusters degrade independently
// inside the snapshot build (see serve/snapshot.h).

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/dbaugur.h"
#include "serve/ingestor.h"
#include "serve/retrainer.h"
#include "serve/snapshot.h"

namespace dbaugur {
class ThreadPool;
}  // namespace dbaugur

namespace dbaugur::serve {

/// Full serving configuration (per shard; a sharded service applies one
/// ServeOptions uniformly — see ShardedServeOptions).
struct ServeOptions {
  core::DBAugurOptions pipeline;        ///< Clustering + forecasting options.
  size_t queue_capacity = 4096;         ///< Ingest queue bound (>= 1).
  size_t max_templates = 4096;          ///< Reject template ids beyond this.
  int64_t bin_interval_seconds = 600;   ///< Forecasting interval I (> 0).
  double retrain_interval_seconds = 1.0;  ///< Background cycle period (> 0).
  size_t min_bins = 0;                  ///< Bins before first train (0: auto).
  uint64_t seed = 42;                   ///< Base seed for the retrain stream.
  /// Events older than the newest accepted timestamp by more than this are
  /// quarantined at ingest (negative disables; see IngestorOptions).
  int64_t max_lateness_seconds = 24 * 3600;
  /// Absolute clock-skew bounds: events timestamped before/after these are
  /// quarantined at ingest (negative disables; see IngestorOptions).
  int64_t min_timestamp_seconds = 0;
  int64_t max_timestamp_seconds = 4102444800;  ///< 2100-01-01T00:00:00Z.
  /// Median/MAD winsorization threshold for the retrain path (<= 0 off).
  double winsorize_k = 8.0;
  /// Per-cluster forecast sanity bound (multiples of the representative's
  /// observed span; <= 0 disables the range check).
  double divergence_multiple = 10.0;
  /// Cap on the failure backoff delay between retrain attempts (> 0).
  double max_backoff_seconds = 60.0;
};

/// Monotonic service counters (relaxed reads; values may trail by an event).
struct ServeStats {
  uint64_t events_accepted = 0;
  uint64_t events_dropped = 0;     ///< All drops, including queue-full.
  uint64_t events_quarantined = 0; ///< Malformed drops only (bad template id,
                                   ///< non-finite / negative count, stale).
  uint64_t values_winsorized = 0;  ///< Trace values clamped before training.
  uint64_t retrains_completed = 0;
  uint64_t retrains_skipped = 0;   ///< Cycles with too little data to train.
  uint64_t retrains_failed = 0;
  uint64_t consecutive_failures = 0;  ///< 0 after any successful cycle.
  uint64_t generation = 0;
  /// Most recent retrain failure (empty message if none yet). The cycle /
  /// generation fields say *when*: the failure was observed after
  /// `last_error_cycles` completed cycles, while generation
  /// `last_error_generation` was being served.
  std::string last_error;
  uint64_t last_error_cycles = 0;
  uint64_t last_error_generation = 0;
};

/// Point-in-time liveness + degradation report (see Health()).
struct ServiceHealth {
  enum class State {
    kUntrained,  ///< No generation published yet.
    kHealthy,    ///< Serving, no degraded clusters, no active failures.
    kDegraded,   ///< Serving, but >= 1 cluster is on a fallback model.
    kBackoff,    ///< Last retrain failed; the loop is backing off.
  };
  struct Cluster {
    int cluster_id = 0;
    size_t rank = 0;          ///< Position in the top-K ordering.
    bool degraded = false;
    std::string reason;       ///< Empty unless degraded.
  };

  State state = State::kUntrained;
  uint64_t generation = 0;
  uint64_t consecutive_failures = 0;
  /// Delay before the next retrain attempt given the current failure count.
  double backoff_seconds = 0.0;
  std::string last_error;     ///< Empty if no retrain has ever failed.
  size_t queue_depth = 0;     ///< Events waiting in the ingest queue.
  uint64_t events_quarantined = 0;
  uint64_t values_winsorized = 0;
  std::vector<Cluster> clusters;  ///< Per-cluster degradation flags.
};

class ServiceShard {
 public:
  /// Aborts (DBAUGUR_CHECK) on out-of-range options. Publishes an empty
  /// generation-0 snapshot so readers always have a valid pointer.
  ServiceShard(const ServeOptions& opts, size_t shard_id);
  ServiceShard(const ServiceShard&) = delete;
  ServiceShard& operator=(const ServiceShard&) = delete;

  size_t shard_id() const { return shard_id_; }

  /// Thread-safe, non-blocking event ingest (see TraceIngestor::Offer).
  bool Offer(const TraceEvent& event) { return ingestor_.Offer(event); }

  /// Copies the current immutable snapshot pointer (the only work done under
  /// snapshot_mu_). The returned pointer stays valid (and frozen) for as long
  /// as the caller holds it, no matter how many retrains publish newer
  /// generations meanwhile.
  std::shared_ptr<const ServiceSnapshot> snapshot() const
      DBAUGUR_EXCLUDES(snapshot_mu_) {
    MutexLock lock(&snapshot_mu_);
    return snapshot_ptr_;
  }

  /// Generation of the latest published snapshot (0 until first train).
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Runs one drain → fold → retrain → publish cycle synchronously. OK when
  /// the cycle is skipped for lack of data (the skip is counted in stats).
  /// A failure is recorded (stats + last_error, logged once) and returned;
  /// the published snapshot is untouched. Serialized against concurrent
  /// retrains and state install via retrain_mu_. `fit_pool` (may be null) is
  /// a caller-owned pool for the per-cluster ensemble fits.
  ///
  /// `cancel` (may be null) is a cooperative deadline/watchdog token (see
  /// common/cancellation.h) polled at cluster-fit granularity. A cancelled
  /// cycle counts as a failure — it feeds the consecutive_failures backoff
  /// streak and retrains_cancelled — and additionally marks the shard
  /// degraded-stale: it keeps serving the last-good snapshot, with the cancel
  /// reason surfaced through degraded_stale()/stale_reason() until the next
  /// successful publish clears it. Events drained before the cancellation are
  /// already folded into the binner, so no data is lost.
  Status RetrainOnce(ThreadPool* fit_pool = nullptr,
                     const CancelToken* cancel = nullptr)
      DBAUGUR_EXCLUDES(retrain_mu_);

  ServeStats stats() const;

  /// Per-shard scheduler signals / health extras (all cheap; none take
  /// retrain_mu_, so they never block behind an in-flight rebuild).
  size_t queue_depth() const { return ingestor_.size(); }
  uint64_t events_accepted() const { return ingestor_.accepted(); }
  IngestDropStats drop_stats() const { return ingestor_.drop_stats(); }
  uint64_t retrains_failed() const {
    return retrains_failed_.load(std::memory_order_relaxed);
  }
  uint64_t consecutive_failures() const {
    return consecutive_failures_.load(std::memory_order_relaxed);
  }
  /// Retrain cycles that ended in cooperative cancellation (watchdog or
  /// deadline; a subset of retrains_failed).
  uint64_t retrains_cancelled() const {
    return retrains_cancelled_.load(std::memory_order_relaxed);
  }
  /// True while the shard serves a last-good snapshot because its most recent
  /// retrain was cancelled mid-flight. Cleared by the next successful publish
  /// (or state install).
  bool degraded_stale() const {
    return degraded_stale_.load(std::memory_order_acquire);
  }
  /// Why the shard is degraded-stale (empty when it is not).
  std::string stale_reason() const DBAUGUR_EXCLUDES(error_mu_);
  /// Seconds since the most recent retrain failure was recorded (negative
  /// when no retrain has ever failed).
  double last_error_age_seconds() const;
  /// Duration of the most recent RetrainOnce call, seconds (0 before any).
  double last_retrain_seconds() const;
  /// Seconds since the last snapshot publish (since construction before one).
  double staleness_seconds() const;

  /// Serializes this shard's full state — binned history, retrain-cycle
  /// position, and the published snapshot with every model parameter in
  /// lossless float64 — appended to *w. Pending queued events are folded in
  /// first so nothing is lost across a restart. ForecastService prefixes this
  /// with the blob magic/version; the sharded checkpoint wraps it in its
  /// per-shard file header. The section layout is exactly the v1 service
  /// blob payload: U64 generation, Bytes(retrainer state), U8 trained flag,
  /// then Bytes(snapshot) when trained.
  Status SaveStateSection(BufWriter* w) DBAUGUR_EXCLUDES(retrain_mu_);

  /// A fully parsed + validated SaveStateSection, not yet installed. Restore
  /// is two-phase so multi-shard checkpoints are all-or-nothing: parse every
  /// shard's section first, install only if all of them verified.
  struct ParsedState {
    uint64_t generation = 0;
    uint64_t cycles = 0;               ///< Seed-stream position.
    TraceBinner binner{1};             ///< Interval restored by parsing.
    std::shared_ptr<const ServiceSnapshot> snapshot;  ///< Never null.
  };

  /// Parses and validates a SaveStateSection against this shard's options
  /// (bin interval, pipeline shape, snapshot forecast reproduction) without
  /// touching any mutable state. The reader is left positioned after the
  /// section.
  StatusOr<ParsedState> ParseStateSection(BufReader* r) const;

  /// Commits a ParsedState: swaps in the binner, fast-forwards the seed
  /// stream to the saved cycle count, and publishes the restored snapshot.
  void InstallParsedState(ParsedState state) DBAUGUR_EXCLUDES(retrain_mu_);

  /// Copy of the shard's binned history (template id -> bin -> summed count):
  /// the differential-oracle surface of the chaos harness, which checks the
  /// union of per-shard histories against a single-stream reference. Events
  /// still queued (not yet drained by a retrain) are not included.
  std::map<uint32_t, std::map<int64_t, double>> BinContents()
      DBAUGUR_EXCLUDES(retrain_mu_);

  const ServeOptions& options() const { return opts_; }

 private:
  /// Swaps in a new snapshot + generation under snapshot_mu_ and clears any
  /// degraded-stale marker (the shard is fresh again).
  void Publish(std::shared_ptr<const ServiceSnapshot> snap, uint64_t gen)
      DBAUGUR_EXCLUDES(snapshot_mu_, error_mu_);

  /// Records a retrain failure: counters, last_error, one WARN log line.
  /// Reads retrainer_.cycles(), hence the retrain_mu_ requirement.
  void RecordFailure(const Status& st) DBAUGUR_REQUIRES(retrain_mu_);

  ServeOptions opts_;
  size_t shard_id_ = 0;
  TraceIngestor ingestor_;

  /// Serializes the whole training side: RetrainOnce, save, install.
  /// Outermost lock — snapshot_mu_ and error_mu_ nest inside it, never the
  /// reverse.
  Mutex retrain_mu_ DBAUGUR_ACQUIRED_BEFORE(snapshot_mu_, error_mu_);
  Retrainer retrainer_ DBAUGUR_GUARDED_BY(retrain_mu_);

  /// Guards only the nanosecond-scale snapshot-pointer copy/swap, never work.
  mutable Mutex snapshot_mu_;
  std::shared_ptr<const ServiceSnapshot> snapshot_ptr_
      DBAUGUR_GUARDED_BY(snapshot_mu_);
  std::atomic<uint64_t> generation_{0};

  std::atomic<uint64_t> retrains_completed_{0};
  std::atomic<uint64_t> retrains_skipped_{0};
  std::atomic<uint64_t> retrains_failed_{0};
  std::atomic<uint64_t> retrains_cancelled_{0};
  std::atomic<uint64_t> consecutive_failures_{0};
  std::atomic<uint64_t> values_winsorized_{0};
  /// Set when the last retrain was cancelled; cleared on the next publish.
  std::atomic<bool> degraded_stale_{false};

  /// Monotonic-clock nanosecond stamps (steady_clock since-epoch) for the
  /// Health() staleness / duration fields. Stamp 0 means "not yet".
  std::atomic<uint64_t> last_retrain_nanos_{0};
  std::atomic<uint64_t> last_publish_stamp_{0};
  std::atomic<uint64_t> last_error_stamp_{0};

  mutable Mutex error_mu_;  ///< Guards the last_error / stale-reason records.
  std::string last_error_ DBAUGUR_GUARDED_BY(error_mu_);
  uint64_t last_error_cycles_ DBAUGUR_GUARDED_BY(error_mu_) = 0;
  uint64_t last_error_generation_ DBAUGUR_GUARDED_BY(error_mu_) = 0;
  std::string stale_reason_ DBAUGUR_GUARDED_BY(error_mu_);
};

}  // namespace dbaugur::serve

#include "serve/sharded_service.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "common/binio.h"
#include "common/contracts.h"
#include "common/logging.h"

namespace dbaugur::serve {

namespace {
constexpr uint32_t kShardFileMagic = 0xDBA65EF7;
constexpr uint32_t kManifestMagic = 0xDBA65EF8;
constexpr uint32_t kShardedVersion = 1;
}  // namespace

ShardedForecastService::ShardedForecastService(const ShardedServeOptions& opts)
    : opts_(opts), overload_(opts.overload) {
  DBAUGUR_CHECK(opts_.shard_count >= 1,
                "ShardedForecastService shard_count must be >= 1");
  DBAUGUR_CHECK(opts_.retrain_workers >= 1,
                "ShardedForecastService retrain_workers must be >= 1");
  DBAUGUR_CHECK(opts_.starvation_cycles >= 1,
                "ShardedForecastService starvation_cycles must be >= 1");
  DBAUGUR_CHECK(opts_.shard.retrain_interval_seconds > 0,
                "ShardedForecastService retrain_interval_seconds must be "
                "positive");
  shards_.reserve(opts_.shard_count);
  for (size_t i = 0; i < opts_.shard_count; ++i) {
    shards_.push_back(std::make_unique<ServiceShard>(opts_.shard, i));
  }
  {
    MutexLock lock(&cycle_mu_);
    cycles_waited_.assign(shards_.size(), 0);
    effective_budget_.store(
        overload_.DegradedBudget(opts_.retrain_budget, shards_.size()),
        std::memory_order_relaxed);
  }
  // One long-lived fit pool per retrain worker: per-cluster ensemble fits
  // inside a shard rebuild parallelize on the worker's own pool instead of
  // spawning a pool per build (see core::BuildTrainedState). Skipped when the
  // pipeline is configured single-threaded — the serial path is identical.
  size_t fit_threads = opts_.shard.pipeline.clustering.threads;
  if (fit_threads > 1) {
    fit_pools_.reserve(opts_.retrain_workers);
    for (size_t w = 0; w < opts_.retrain_workers; ++w) {
      fit_pools_.push_back(std::make_unique<ThreadPool>(fit_threads));
    }
  }
  worker_pool_ = std::make_unique<RetrainWorkerPool>(opts_.retrain_workers);
}

ShardedForecastService::~ShardedForecastService() { Stop(); }

std::vector<size_t> ShardedForecastService::RetrainCycle() {
  std::vector<size_t> order;
  std::string cycle_line;
  {
    MutexLock lock(&cycle_mu_);
    std::vector<ShardSignal> signals;
    signals.reserve(shards_.size());
    uint64_t total_pending = 0;
    uint64_t max_wait = 0;
    for (size_t i = 0; i < shards_.size(); ++i) {
      ShardSignal s;
      s.shard_id = i;
      s.pending_events = shards_[i]->queue_depth();
      // A cancelled retrain drained its queue into the binner without
      // publishing, so a degraded-stale shard still owes the scheduler a
      // retrain even when no new traffic arrives — otherwise the
      // work-conserving skip would pin it on its last-good snapshot forever.
      if (s.pending_events == 0 && shards_[i]->degraded_stale()) {
        s.pending_events = 1;
      }
      s.cycles_waited = cycles_waited_[i];
      s.consecutive_failures = shards_[i]->consecutive_failures();
      total_pending += s.pending_events;
      if (s.pending_events > 0) max_wait = std::max(max_wait, s.cycles_waited);
      signals.push_back(s);
    }
    // Overload ladder: feed this cycle's backlog sample, then schedule within
    // the (possibly degraded) budget. Deterministic given the same stream of
    // backlog samples, so identical runs degrade identically.
    uint64_t level = overload_.Observe(total_pending);
    size_t budget =
        overload_.DegradedBudget(opts_.retrain_budget, shards_.size());
    overload_level_.store(level, std::memory_order_release);
    effective_budget_.store(budget, std::memory_order_relaxed);
    order = ScheduleRetrains(
        signals, RetrainSchedulerOptions{budget, opts_.starvation_cycles});

    RetrainCycleReport report;
    if (!order.empty()) {
      // The persistent pool's workers claim shards in schedule order, so the
      // priority order is preserved at any worker count; shards share no
      // mutable state, so concurrent RetrainOnce calls are independent. This
      // thread watchdogs the cycle while RunCycle blocks: overrunning or hung
      // retrains are cancelled within ~one deadline and recorded shard-side
      // as cancelled failures (degraded-stale + backoff).
      report = worker_pool_->RunCycle(
          order, opts_.retrain_deadline_seconds,
          [this](size_t shard_id, size_t worker_idx,
                 const CancelToken* cancel) {
            ThreadPool* pool = worker_idx < fit_pools_.size()
                                   ? fit_pools_[worker_idx].get()
                                   : nullptr;
            return shards_[shard_id]->RetrainOnce(pool, cancel);
          });
      if (report.cancelled > 0) {
        retrains_cancelled_.fetch_add(report.cancelled,
                                      std::memory_order_relaxed);
      }
    }

    for (size_t i = 0; i < cycles_waited_.size(); ++i) ++cycles_waited_[i];
    for (size_t id : order) cycles_waited_[id] = 0;
    ++cycle_counter_;
    cycles_done_.store(cycle_counter_, std::memory_order_release);

    if (!order.empty()) {
      // One line per productive cycle (idle ticks stay silent), carrying the
      // overload/watchdog telemetry. Built into a local buffer here and
      // emitted after cycle_mu_ is released — no lock is held while the
      // logging backend runs.
      std::ostringstream line;
      line << "serve: cycle " << cycle_counter_ << " retrained "
           << report.completed << "/" << order.size() << " scheduled ("
           << shards_.size() << " shards) [";
      size_t shown = std::min<size_t>(order.size(), 8);
      for (size_t i = 0; i < shown; ++i) {
        if (i > 0) line << ' ';
        line << order[i];
      }
      if (order.size() > shown) line << " ...";
      line << "] pending=" << total_pending << " max_wait=" << max_wait
           << " overload=" << level << " budget=" << budget;
      if (report.cancelled > 0) {
        line << " watchdog_cancelled=" << report.cancelled;
        for (const RetrainTaskResult& t : report.tasks) {
          if (t.cancelled) {
            line << " [shard " << t.shard_id << ": " << t.cancel_reason << "]";
            break;  // one example reason is enough for the log
          }
        }
      }
      cycle_line = line.str();
    }
  }
  if (!cycle_line.empty()) DBAUGUR_INFO(cycle_line);
  return order;
}

void ShardedForecastService::Start() {
  MutexLock lifecycle(&lifecycle_mu_);
  if (worker_.joinable()) return;
  {
    MutexLock lock(&stop_mu_);
    stopping_ = false;
  }
  running_.store(true, std::memory_order_release);
  worker_ = std::thread([this] { SchedulerLoop(); });
}

void ShardedForecastService::Stop() {
  MutexLock lifecycle(&lifecycle_mu_);
  {
    MutexLock lock(&stop_mu_);
    stopping_ = true;
  }
  stop_cv_.NotifyAll();
  if (worker_.joinable()) worker_.join();
  worker_ = std::thread();
  running_.store(false, std::memory_order_release);
}

void ShardedForecastService::SchedulerLoop() {
  for (;;) {
    {
      MutexLock lock(&stop_mu_);
      if (stopping_) return;
    }
    (void)RetrainCycle();
    // Per-shard failure backoff is in scheduler cycles (see
    // retrain_scheduler.h), so the loop ticks at a constant period instead of
    // stretching globally the way ForecastService's single-shard loop does —
    // except under overload, where the degradation ladder widens the tick by
    // 2^level until backlog drains (see OverloadController).
    double interval = opts_.shard.retrain_interval_seconds *
                      static_cast<double>(
                          uint64_t{1}
                          << overload_level_.load(std::memory_order_acquire));
    auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(interval));
    // Explicit predicate loop (not a wait_for lambda): the thread-safety
    // analysis checks lambda bodies as unannotated functions, so a predicate
    // reading the guarded stopping_ flag would be rejected.
    MutexLock lock(&stop_mu_);
    while (!stopping_) {
      if (stop_cv_.WaitUntil(&stop_mu_, deadline)) break;  // timed out
    }
    if (stopping_) return;
  }
}

ServeStats ShardedForecastService::stats() const {
  ServeStats agg;
  uint64_t best_error_generation = 0;
  for (const auto& shard : shards_) {
    ServeStats s = shard->stats();
    agg.events_accepted += s.events_accepted;
    agg.events_dropped += s.events_dropped;
    agg.events_quarantined += s.events_quarantined;
    agg.values_winsorized += s.values_winsorized;
    agg.retrains_completed += s.retrains_completed;
    agg.retrains_skipped += s.retrains_skipped;
    agg.retrains_failed += s.retrains_failed;
    agg.consecutive_failures =
        std::max(agg.consecutive_failures, s.consecutive_failures);
    agg.generation = std::max(agg.generation, s.generation);
    if (!s.last_error.empty() &&
        (agg.last_error.empty() ||
         s.last_error_generation > best_error_generation)) {
      best_error_generation = s.last_error_generation;
      agg.last_error = s.last_error;
      agg.last_error_cycles = s.last_error_cycles;
      agg.last_error_generation = s.last_error_generation;
    }
  }
  return agg;
}

ShardedServiceHealth ShardedForecastService::Health() const {
  ShardedServiceHealth h;
  std::vector<uint64_t> waited;
  {
    MutexLock lock(&cycle_mu_);
    waited = cycles_waited_;
    h.cycles = cycle_counter_;
  }
  h.retrains_cancelled = retrains_cancelled_.load(std::memory_order_relaxed);
  h.overload_level = overload_level_.load(std::memory_order_acquire);
  h.effective_budget =
      static_cast<size_t>(effective_budget_.load(std::memory_order_relaxed));
  h.interval_multiplier =
      static_cast<double>(uint64_t{1} << h.overload_level);
  bool any_backoff = false;
  bool any_degraded = false;
  bool any_trained = false;
  h.shards.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const ServiceShard& shard = *shards_[i];
    ShardHealth row;
    row.shard_id = i;
    auto snap = shard.snapshot();
    ServeStats s = shard.stats();
    row.generation = snap->generation;
    row.cluster_count = snap->cluster_count();
    row.degraded_clusters = snap->degraded_count();
    row.queue_depth = shard.queue_depth();
    row.events_accepted = s.events_accepted;
    row.drops = shard.drop_stats();
    row.retrains_completed = s.retrains_completed;
    row.retrains_failed = s.retrains_failed;
    row.retrains_cancelled = shard.retrains_cancelled();
    row.consecutive_failures = s.consecutive_failures;
    row.degraded_stale = shard.degraded_stale();
    if (row.degraded_stale) {
      row.stale_reason = shard.stale_reason();
      ++h.stale_shards;
    }
    row.last_retrain_seconds = shard.last_retrain_seconds();
    row.staleness_seconds = shard.staleness_seconds();
    row.last_error_age_seconds = shard.last_error_age_seconds();
    row.cycles_waited = i < waited.size() ? waited[i] : 0;
    row.last_error = s.last_error;
    // Service-wide ingest aggregates (the flat service has always reported
    // these; the sharded Health now sums them across shards).
    h.events_accepted += s.events_accepted;
    h.events_dropped += s.events_dropped;
    h.events_quarantined += s.events_quarantined;
    h.drops.full += row.drops.full;
    h.drops.template_id += row.drops.template_id;
    h.drops.nonfinite += row.drops.nonfinite;
    h.drops.negative += row.drops.negative;
    h.drops.stale += row.drops.stale;
    h.drops.pre_epoch += row.drops.pre_epoch;
    h.drops.future += row.drops.future;
    if (s.consecutive_failures > 0) {
      row.state = ServiceHealth::State::kBackoff;
      any_backoff = true;
    } else if (snap->degraded_count() > 0) {
      row.state = ServiceHealth::State::kDegraded;
      any_degraded = true;
    } else if (snap->trained()) {
      row.state = ServiceHealth::State::kHealthy;
    } else {
      row.state = ServiceHealth::State::kUntrained;
    }
    if (snap->trained()) any_trained = true;
    h.shards.push_back(std::move(row));
  }
  if (any_backoff) {
    h.state = ServiceHealth::State::kBackoff;
  } else if (any_degraded) {
    h.state = ServiceHealth::State::kDegraded;
  } else if (any_trained) {
    h.state = ServiceHealth::State::kHealthy;
  } else {
    h.state = ServiceHealth::State::kUntrained;
  }
  return h;
}

Status ShardedForecastService::SaveToFiles(const std::string& base_path) {
  // Hold cycle_mu_ so a concurrent scheduler cycle cannot retrain a shard
  // between its section being written and the manifest commit.
  MutexLock lock(&cycle_mu_);
  for (size_t i = 0; i < shards_.size(); ++i) {
    BufWriter w;
    w.U32(kShardFileMagic);
    w.U32(kShardedVersion);
    w.U64(static_cast<uint64_t>(shards_.size()));
    w.U64(static_cast<uint64_t>(i));
    DBAUGUR_RETURN_IF_ERROR(shards_[i]->SaveStateSection(&w));
    DBAUGUR_RETURN_IF_ERROR(
        ::dbaugur::SaveToFile(ShardPath(base_path, i), w.Take()));
  }
  // Manifest last: its shard_count tells the loader how many shard files the
  // checkpoint spans.
  BufWriter m;
  m.U32(kManifestMagic);
  m.U32(kShardedVersion);
  m.U64(static_cast<uint64_t>(shards_.size()));
  m.U64(static_cast<uint64_t>(opts_.shard.bin_interval_seconds));
  m.U64(opts_.shard.seed);
  return ::dbaugur::SaveToFile(ManifestPath(base_path), m.Take());
}

Status ShardedForecastService::LoadFromFiles(const std::string& base_path,
                                             bool* migrated) {
  auto corrupt = [] {
    return Status::InvalidArgument(
        "serve: truncated or corrupt sharded checkpoint");
  };
  // --- Phase 1: parse and validate everything; touch no shard state. ------
  auto manifest = ::dbaugur::LoadFromFile(ManifestPath(base_path));
  if (!manifest.ok()) return manifest.status();
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t saved_count = 0;
  uint64_t saved_interval = 0;
  uint64_t saved_seed = 0;
  {
    BufReader r(manifest->blob);
    if (!r.U32(&magic) || !r.U32(&version) || !r.U64(&saved_count) ||
        !r.U64(&saved_interval) || !r.U64(&saved_seed) || !r.AtEnd()) {
      return corrupt();
    }
  }
  if (magic != kManifestMagic) {
    return Status::InvalidArgument("serve: bad sharded manifest magic");
  }
  if (version != kShardedVersion) {
    return Status::InvalidArgument(
        "serve: unsupported sharded checkpoint version");
  }
  if (saved_count == 0) return corrupt();
  if (saved_interval !=
      static_cast<uint64_t>(opts_.shard.bin_interval_seconds)) {
    return Status::InvalidArgument(
        "serve: checkpoint bin interval does not match service options");
  }
  if (saved_seed != opts_.shard.seed) {
    return Status::InvalidArgument(
        "serve: checkpoint seed does not match service options (seed-stream "
        "replay would diverge)");
  }

  std::vector<ServiceShard::ParsedState> parsed;
  parsed.reserve(saved_count);
  for (uint64_t i = 0; i < saved_count; ++i) {
    auto file = ::dbaugur::LoadFromFile(ShardPath(base_path, i));
    if (!file.ok()) return file.status();
    BufReader r(file->blob);
    uint64_t file_count = 0;
    uint64_t file_id = 0;
    if (!r.U32(&magic) || !r.U32(&version) || !r.U64(&file_count) ||
        !r.U64(&file_id)) {
      return corrupt();
    }
    if (magic != kShardFileMagic) {
      return Status::InvalidArgument("serve: bad shard file magic");
    }
    if (version != kShardedVersion || file_count != saved_count ||
        file_id != i) {
      return Status::InvalidArgument(
          "serve: shard file does not match checkpoint manifest");
    }
    // All shards share one option set, so shard 0 can validate any section.
    auto state = shards_[0]->ParseStateSection(&r);
    if (!state.ok()) return state.status();
    if (!r.AtEnd()) return corrupt();
    parsed.push_back(std::move(state).value());
  }

  // --- Phase 2: install (same layout) or migrate by re-hashing. -----------
  MutexLock lock(&cycle_mu_);
  if (saved_count == shards_.size()) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      shards_[i]->InstallParsedState(std::move(parsed[i]));
    }
    if (migrated != nullptr) *migrated = false;
  } else {
    // Re-partition the binned history into the new layout. Every template id
    // re-hashes to exactly one new shard, so no keys are lost or duplicated
    // (set equality pinned by test). A migrated shard's seed-stream position
    // is the max over its contributors; published snapshots cannot be
    // re-keyed across shard boundaries, so shards restart untrained at
    // generation 0 and the first retrain rebuilds them.
    std::vector<TraceBinner> binners(
        shards_.size(), TraceBinner(opts_.shard.bin_interval_seconds));
    std::vector<uint64_t> cycles(shards_.size(), 0);
    for (const ServiceShard::ParsedState& old : parsed) {
      for (const auto& [template_id, bins] : old.binner.bins()) {
        size_t target = ShardOfKey(template_id, shards_.size());
        for (const auto& [bin, count] : bins) {
          binners[target].FoldBin(template_id, bin, count);
        }
        cycles[target] = std::max(cycles[target], old.cycles);
      }
    }
    for (size_t i = 0; i < shards_.size(); ++i) {
      ServiceShard::ParsedState fresh;
      fresh.generation = 0;
      fresh.cycles = cycles[i];
      fresh.binner = std::move(binners[i]);
      fresh.snapshot = std::make_shared<const ServiceSnapshot>();
      shards_[i]->InstallParsedState(std::move(fresh));
    }
    DBAUGUR_INFO("serve: migrated sharded checkpoint from "
                 << saved_count << " to " << shards_.size() << " shards");
    if (migrated != nullptr) *migrated = true;
  }
  // Restored shards start with a clean scheduling slate.
  cycles_waited_.assign(shards_.size(), 0);
  return Status::OK();
}

}  // namespace dbaugur::serve

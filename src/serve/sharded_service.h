// Sharded forecast serving: N independent ServiceShards behind a
// deterministic hash router and a priority retrain scheduler.
//
//   ShardedServeOptions o;
//   o.shard = serve_options;            // applied uniformly to every shard
//   o.shard_count = 16;
//   ShardedForecastService svc(o);
//   svc.Start();                        // background scheduler loop
//   svc.Offer({template_id, ts, n});    // routed by ShardOfKey(template_id)
//   svc.SnapshotForTemplate(id);        // same hash, lock-free-feeling read
//   svc.RetrainCycle();                 // one scheduler cycle, synchronous
//   svc.SaveToFiles(base);              // per-shard checkpoint + manifest
//   svc.LoadFromFiles(base);            // all-or-nothing, migrates on
//                                       //   shard-count change by re-hashing
//
// Routing: template id -> ShardOfKey(id, shard_count) (common/hashing.h), a
// pure function of the key and the shard count — stable across runs, hosts,
// and save/load. Every shard gets the same ServeOptions, including the same
// base seed: shards draw from identically seeded streams at independently
// persisted positions (cycle counters), so a shard_count=1 service is
// bit-identical to ForecastService, and per-cluster forecasts at any shard
// count match a single-shard run fed the same per-shard event interleavings
// (pinned by tests/serve_shard_test.cpp).
//
// Retraining: each RetrainCycle samples per-shard signals (queue depth,
// cycles waited, failure streak), asks serve/retrain_scheduler.h for a
// deterministic priority order (traffic × staleness, starvation-bounded,
// failure-backoff in cycles), and drains that order through a persistent
// RetrainWorkerPool (serve/retrain_workers.h) — workers claim shards in
// schedule order, so hot shards go first regardless of worker count. Reads
// are never blocked: they route to the shard and copy its snapshot pointer.
//
// Deadlines + watchdog: with retrain_deadline_seconds > 0, every shard
// retrain runs under a per-task deadline with a cooperative CancelToken
// polled at cluster-fit granularity. The scheduler thread watchdogs the cycle
// while it waits: an overrunning or hung retrain (exercised by the
// serve.retrain.hang / serve.retrain.slow fault points) is cancelled within
// ~one deadline of the overrun, the shard keeps serving its last-good
// snapshot marked degraded-stale (reason in Health()), and the cancellation
// feeds the shard's failure-backoff streak. One stuck shard can therefore
// never stall the publish loop for the others.
//
// Overload degradation: an OverloadController watches total backlog across
// cycles. Sustained growth (the service is not keeping up) walks a
// deterministic ladder — each level halves the per-cycle retrain budget and
// doubles the scheduler interval — shedding retrain work before queues blow
// out, and walks back down automatically once lag drains. Level, effective
// budget, and interval multiplier are surfaced in Health().
//
// Checkpoint manifest format (all through common/binio's CRC32-framed
// write-temp → fsync → rename path, previous good file kept as `.bak`):
//   <base>.manifest : U32 magic, U32 version, U64 shard_count,
//                     U64 bin_interval_seconds, U64 seed
//   <base>.shard<i> : U32 magic, U32 version, U64 shard_count, U64 shard_id,
//                     then the shard's v1 state section (see
//                     ServiceShard::SaveStateSection)
// Each file is individually crash-safe; restore is all-or-nothing in memory
// (every file parsed and validated before any shard is touched). Because
// shards persist independent seed-stream positions, a crash between shard
// file writes leaves a mixed-epoch but still self-consistent checkpoint.
//
// Shard-count migration: loading a checkpoint written with a different
// shard_count re-partitions the binned history by re-hashing every template
// id into the new layout (bin-for-bin, losing no template keys — set
// equality is pinned by test). Each migrated shard's seed-stream position is
// the max over the old shards that contributed templates to it, so no seed
// that already trained contributed data is replayed. Published snapshots
// cannot be re-keyed across shard boundaries, so migration restores shards
// untrained at generation 0; the first retrain cycle rebuilds them from the
// migrated history.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/hashing.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "serve/retrain_scheduler.h"
#include "serve/retrain_workers.h"
#include "serve/shard.h"

namespace dbaugur::serve {

struct ShardedServeOptions {
  ServeOptions shard;        ///< Per-shard configuration (uniform).
  size_t shard_count = 1;    ///< Number of independent shards (>= 1).
  /// Max shards retrained per scheduler cycle (0 = every eligible shard).
  size_t retrain_budget = 0;
  /// Worker threads draining one cycle's schedule (>= 1).
  size_t retrain_workers = 1;
  /// Cycles a pending shard may wait before forced promotion (>= 1).
  uint64_t starvation_cycles = 4;
  /// Per-shard retrain deadline within a cycle, seconds (<= 0 disables the
  /// watchdog). An overrunning retrain is cooperatively cancelled; the shard
  /// serves last-good and backs off.
  double retrain_deadline_seconds = 0.0;
  /// Overload-adaptive degradation ladder (see OverloadController).
  OverloadOptions overload;
};

/// One shard's row in Health(): identity, serving state, queue pressure,
/// retrain recency. All point-in-time, none block behind a retrain.
struct ShardHealth {
  size_t shard_id = 0;
  ServiceHealth::State state = ServiceHealth::State::kUntrained;
  uint64_t generation = 0;
  size_t cluster_count = 0;
  size_t degraded_clusters = 0;
  size_t queue_depth = 0;
  uint64_t events_accepted = 0;
  IngestDropStats drops;
  uint64_t retrains_completed = 0;
  uint64_t retrains_failed = 0;
  uint64_t retrains_cancelled = 0;    ///< Watchdog/deadline cancellations.
  uint64_t consecutive_failures = 0;
  /// True while the shard serves a last-good snapshot because its most
  /// recent retrain was cancelled mid-flight; `stale_reason` says why.
  bool degraded_stale = false;
  std::string stale_reason;
  double last_retrain_seconds = 0.0;  ///< Duration of the last retrain.
  double staleness_seconds = 0.0;     ///< Since the last snapshot publish.
  /// Wall-clock age of the last recorded retrain failure (< 0: never failed).
  double last_error_age_seconds = -1.0;
  uint64_t cycles_waited = 0;         ///< Scheduler cycles since last pick.
  std::string last_error;
};

struct ShardedServiceHealth {
  /// Worst-of aggregate: kBackoff if any shard is backing off, else
  /// kDegraded if any cluster anywhere is degraded, else kHealthy if any
  /// shard serves a trained snapshot, else kUntrained.
  ServiceHealth::State state = ServiceHealth::State::kUntrained;
  uint64_t cycles = 0;  ///< Completed scheduler cycles.

  /// Service-wide ingest aggregates (previously only per flat service):
  /// accepted events, total drops, the quarantined subset, and the full
  /// per-category drop breakdown summed across shards.
  uint64_t events_accepted = 0;
  uint64_t events_dropped = 0;
  uint64_t events_quarantined = 0;
  IngestDropStats drops;

  /// Watchdog + overload telemetry.
  uint64_t retrains_cancelled = 0;   ///< Total watchdog cancellations.
  size_t stale_shards = 0;           ///< Shards currently degraded-stale.
  uint64_t overload_level = 0;       ///< Current degradation-ladder level.
  size_t effective_budget = 0;       ///< Post-degradation per-cycle budget.
  double interval_multiplier = 1.0;  ///< Scheduler-interval widening factor.

  std::vector<ShardHealth> shards;
};

class ShardedForecastService {
 public:
  /// Aborts (DBAUGUR_CHECK) on out-of-range options. Every shard publishes
  /// an empty generation-0 snapshot, so reads are valid immediately.
  explicit ShardedForecastService(const ShardedServeOptions& opts);
  ~ShardedForecastService();
  ShardedForecastService(const ShardedForecastService&) = delete;
  ShardedForecastService& operator=(const ShardedForecastService&) = delete;

  size_t shard_count() const { return shards_.size(); }

  /// The shard owning `template_id` (pure; same mapping Offer uses).
  size_t ShardOf(uint32_t template_id) const {
    return ShardOfKey(template_id, shards_.size());
  }

  /// Thread-safe, non-blocking ingest, routed to the owning shard.
  bool Offer(const TraceEvent& event) {
    return shards_[ShardOf(event.template_id)]->Offer(event);
  }

  /// Snapshot of one shard by id / of the shard owning a template.
  std::shared_ptr<const ServiceSnapshot> snapshot(size_t shard_id) const {
    return shards_[shard_id]->snapshot();
  }
  std::shared_ptr<const ServiceSnapshot> SnapshotForTemplate(
      uint32_t template_id) const {
    return shards_[ShardOf(template_id)]->snapshot();
  }

  /// Direct shard access (stats, tests, manual RetrainOnce).
  ServiceShard& shard(size_t shard_id) { return *shards_[shard_id]; }
  const ServiceShard& shard(size_t shard_id) const {
    return *shards_[shard_id];
  }

  /// Runs one scheduler cycle synchronously: samples signals, updates the
  /// overload ladder, schedules within the (possibly degraded) budget, and
  /// drains the schedule through the persistent worker pool — each retrain
  /// under the configured deadline, with this thread watchdogging overruns.
  /// Returns the scheduled shard ids in priority order — determinism tests
  /// pin this. Per-shard failures (cancellations included) are recorded in
  /// the shard's stats and backed off in cycles by the scheduler; the cycle
  /// itself always runs to completion. Serialized against concurrent cycles
  /// and LoadFromFiles.
  std::vector<size_t> RetrainCycle() DBAUGUR_EXCLUDES(cycle_mu_);

  /// Starts the background scheduler thread (idempotent).
  void Start() DBAUGUR_EXCLUDES(lifecycle_mu_);
  /// Stops and joins the background thread (idempotent; called by dtor).
  void Stop() DBAUGUR_EXCLUDES(lifecycle_mu_);
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Completed scheduler cycles.
  uint64_t cycles() const { return cycles_done_.load(std::memory_order_acquire); }

  /// Counters summed across shards (generation is the max; the error record
  /// is the most recently observed one by generation).
  ServeStats stats() const;

  /// Per-shard health rows + worst-of aggregate state.
  ShardedServiceHealth Health() const DBAUGUR_EXCLUDES(cycle_mu_);

  /// Writes the sharded checkpoint: one crash-safe file per shard, manifest
  /// last (see the format comment above). Queued events are folded into each
  /// shard's history first, so nothing is lost across a restart.
  Status SaveToFiles(const std::string& base_path) DBAUGUR_EXCLUDES(cycle_mu_);

  /// Restores a SaveToFiles checkpoint. All-or-nothing: every file is parsed
  /// and validated before any shard is mutated. A checkpoint written with a
  /// different shard_count is migrated by re-hashing (see above);
  /// `migrated` (optional) reports whether that happened.
  Status LoadFromFiles(const std::string& base_path, bool* migrated = nullptr)
      DBAUGUR_EXCLUDES(cycle_mu_);

  static std::string ManifestPath(const std::string& base_path) {
    return base_path + ".manifest";
  }
  static std::string ShardPath(const std::string& base_path, size_t shard_id) {
    return base_path + ".shard" + std::to_string(shard_id);
  }

  const ShardedServeOptions& options() const { return opts_; }

 private:
  void SchedulerLoop() DBAUGUR_EXCLUDES(cycle_mu_, stop_mu_);

  ShardedServeOptions opts_;
  /// Immutable after construction (the vector and the shard objects' *
  /// identities; the shards synchronize internally).
  std::vector<std::unique_ptr<ServiceShard>> shards_;
  /// One long-lived fit pool per retrain worker (empty when the pipeline is
  /// single-threaded). Each pool is used by exactly one worker at a time —
  /// worker w owns fit_pools_[w] for the duration of a cycle.
  std::vector<std::unique_ptr<ThreadPool>> fit_pools_;
  /// Persistent deadline-supervised workers draining each cycle's schedule.
  /// RunCycle is only ever called under cycle_mu_ (its non-reentrancy
  /// contract); the pool's internals synchronize themselves.
  std::unique_ptr<RetrainWorkerPool> worker_pool_;

  /// Serializes scheduler cycles and checkpoint restore. Retrain work runs
  /// *under* this lock (on the pool's workers, supervised by this thread);
  /// readers never take it.
  mutable Mutex cycle_mu_;
  std::vector<uint64_t> cycles_waited_ DBAUGUR_GUARDED_BY(cycle_mu_);
  uint64_t cycle_counter_ DBAUGUR_GUARDED_BY(cycle_mu_) = 0;
  OverloadController overload_ DBAUGUR_GUARDED_BY(cycle_mu_);
  std::atomic<uint64_t> cycles_done_{0};
  /// Mirrors of the overload ladder for lock-free Health()/SchedulerLoop
  /// reads; written under cycle_mu_ each cycle.
  std::atomic<uint64_t> overload_level_{0};
  std::atomic<uint64_t> effective_budget_{0};
  std::atomic<uint64_t> retrains_cancelled_{0};

  Mutex lifecycle_mu_;  ///< Serializes Start/Stop/dtor (see ForecastService).
  std::thread worker_ DBAUGUR_GUARDED_BY(lifecycle_mu_);

  Mutex stop_mu_;  ///< Guards stopping_, paired with stop_cv_.
  CondVar stop_cv_;
  bool stopping_ DBAUGUR_GUARDED_BY(stop_mu_) = false;
  std::atomic<bool> running_{false};
};

}  // namespace dbaugur::serve

#include "serve/snapshot.h"

#include <utility>

#include "ensemble/presets.h"

namespace dbaugur::serve {

namespace {
constexpr uint32_t kSnapshotMagic = 0xDBA65E01;
constexpr uint32_t kSnapshotVersion = 1;
}  // namespace

StatusOr<double> ServiceSnapshot::ForecastCluster(size_t rank) const {
  if (!trained()) {
    return Status::FailedPrecondition("serve: no trained snapshot published");
  }
  if (rank >= clusters.size()) {
    return Status::OutOfRange("serve: cluster rank out of range");
  }
  return clusters[rank].next_value;
}

StatusOr<double> ServiceSnapshot::ForecastTrace(size_t trace_index) const {
  if (!trained()) {
    return Status::FailedPrecondition("serve: no trained snapshot published");
  }
  if (trace_index >= trace_cluster.size()) {
    return Status::OutOfRange("serve: trace index out of range");
  }
  int cid = trace_cluster[trace_index];
  for (const SnapshotCluster& c : clusters) {
    if (c.cluster_id == cid) {
      double total = c.next_value * static_cast<double>(c.member_count);
      return total * trace_proportion[trace_index];
    }
  }
  return Status::NotFound(
      "serve: trace's cluster is outside the forecasted top-K");
}

StatusOr<std::shared_ptr<const ServiceSnapshot>> MakeSnapshot(
    core::TrainedState state, const std::vector<std::string>& trace_names,
    size_t window, uint64_t generation) {
  auto snap = std::make_shared<ServiceSnapshot>();
  snap->generation = generation;
  snap->trace_names = trace_names;
  snap->trace_cluster = std::move(state.trace_cluster);
  snap->trace_proportion = std::move(state.trace_proportion);
  snap->clusters.reserve(state.forecasts.size());
  for (core::ClusterForecast& cf : state.forecasts) {
    SnapshotCluster sc;
    sc.cluster_id = cf.cluster_id;
    sc.volume = cf.volume;
    sc.member_count = cf.member_count;
    auto next = core::NextClusterValue(cf, window);
    if (!next.ok()) return next.status();
    sc.next_value = *next;
    sc.representative = std::move(cf.representative);
    sc.model = std::move(cf.model);
    snap->clusters.push_back(std::move(sc));
  }
  return std::shared_ptr<const ServiceSnapshot>(std::move(snap));
}

Status SerializeSnapshot(const ServiceSnapshot& snap, BufWriter* w) {
  w->U32(kSnapshotMagic);
  w->U32(kSnapshotVersion);
  w->U64(snap.generation);
  w->U64(snap.trace_names.size());
  for (size_t i = 0; i < snap.trace_names.size(); ++i) {
    w->Str(snap.trace_names[i]);
    w->I32(snap.trace_cluster[i]);
    w->F64(snap.trace_proportion[i]);
  }
  w->U64(snap.clusters.size());
  for (const SnapshotCluster& c : snap.clusters) {
    w->I32(c.cluster_id);
    w->F64(c.volume);
    w->U64(c.member_count);
    w->I64(c.representative.start());
    w->I64(c.representative.interval_seconds());
    w->Str(c.representative.name());
    w->U64(c.representative.size());
    for (double v : c.representative.values()) w->F64(v);
    w->F64(c.next_value);
    auto model_state = c.model->SaveState();
    if (!model_state.ok()) return model_state.status();
    w->Bytes(*model_state);
  }
  return Status::OK();
}

StatusOr<std::shared_ptr<const ServiceSnapshot>> DeserializeSnapshot(
    const core::DBAugurOptions& opts, BufReader* r) {
  auto corrupt = [] {
    return Status::InvalidArgument("serve: truncated or corrupt snapshot");
  };
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!r->U32(&magic) || !r->U32(&version)) return corrupt();
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("serve: bad snapshot magic");
  }
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument("serve: unsupported snapshot version");
  }
  auto snap = std::make_shared<ServiceSnapshot>();
  uint64_t traces = 0;
  if (!r->U64(&snap->generation) || !r->U64(&traces)) return corrupt();
  snap->trace_names.reserve(traces);
  snap->trace_cluster.reserve(traces);
  snap->trace_proportion.reserve(traces);
  for (uint64_t i = 0; i < traces; ++i) {
    std::string name;
    int32_t cid = 0;
    double prop = 0.0;
    if (!r->Str(&name) || !r->I32(&cid) || !r->F64(&prop)) return corrupt();
    snap->trace_names.push_back(std::move(name));
    snap->trace_cluster.push_back(cid);
    snap->trace_proportion.push_back(prop);
  }
  uint64_t n_clusters = 0;
  if (!r->U64(&n_clusters)) return corrupt();
  snap->clusters.reserve(n_clusters);
  for (uint64_t i = 0; i < n_clusters; ++i) {
    SnapshotCluster c;
    int32_t cid = 0;
    uint64_t members = 0;
    int64_t start = 0;
    int64_t interval = 0;
    std::string rep_name;
    uint64_t rep_len = 0;
    if (!r->I32(&cid) || !r->F64(&c.volume) || !r->U64(&members) ||
        !r->I64(&start) || !r->I64(&interval) || !r->Str(&rep_name) ||
        !r->U64(&rep_len)) {
      return corrupt();
    }
    c.cluster_id = cid;
    c.member_count = members;
    std::vector<double> rep_values(rep_len);
    for (uint64_t j = 0; j < rep_len; ++j) {
      if (!r->F64(&rep_values[j])) return corrupt();
    }
    c.representative = ts::Series(start, interval, std::move(rep_values),
                                  std::move(rep_name));
    std::vector<uint8_t> model_state;
    if (!r->F64(&c.next_value) || !r->Bytes(&model_state)) return corrupt();
    auto model = ensemble::MakeDBAugur(opts.forecaster, opts.delta);
    if (!model.ok()) return model.status();
    DBAUGUR_RETURN_IF_ERROR((*model)->LoadState(model_state));
    c.model = std::move(model).value();

    // Prove the restore: the rebuilt ensemble must reproduce the forecast
    // that was being served when the snapshot was taken, bit for bit.
    core::ClusterForecast cf;
    cf.representative = c.representative;
    cf.model = std::move(c.model);
    auto recomputed = core::NextClusterValue(cf, opts.forecaster.window);
    c.model = std::move(cf.model);
    if (!recomputed.ok()) return recomputed.status();
    if (*recomputed != c.next_value) {
      return Status::InvalidArgument(
          "serve: restored ensemble does not reproduce the saved forecast");
    }
    snap->clusters.push_back(std::move(c));
  }
  return std::shared_ptr<const ServiceSnapshot>(std::move(snap));
}

}  // namespace dbaugur::serve

#include "serve/snapshot.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "ensemble/presets.h"

namespace dbaugur::serve {

namespace {
constexpr uint32_t kSnapshotMagic = 0xDBA65E01;
// v2 added per-cluster model_kind + degraded flag/reason.
constexpr uint32_t kSnapshotVersion = 2;

// Constructs an untrained model of the given preset kind.
StatusOr<std::unique_ptr<ensemble::TimeSensitiveEnsemble>> BuildByKind(
    const core::DBAugurOptions& opts, SnapshotCluster::ModelKind kind) {
  switch (kind) {
    case SnapshotCluster::ModelKind::kEnsemble:
      return ensemble::MakeDBAugur(opts.forecaster, opts.delta);
    case SnapshotCluster::ModelKind::kKernelBaseline:
      return ensemble::MakeKernelBaseline(opts.forecaster);
  }
  return Status::InvalidArgument("serve: unknown snapshot model kind");
}

// Clones a trained ensemble via its lossless state round-trip. The source may
// belong to an immutable published snapshot, so it is never mutated.
StatusOr<std::unique_ptr<ensemble::TimeSensitiveEnsemble>> CloneModel(
    const core::DBAugurOptions& opts, SnapshotCluster::ModelKind kind,
    const ensemble::TimeSensitiveEnsemble& src) {
  auto state = src.SaveState();
  if (!state.ok()) return state.status();
  auto clone = BuildByKind(opts, kind);
  if (!clone.ok()) return clone.status();
  DBAUGUR_RETURN_IF_ERROR((*clone)->LoadState(*state));
  return std::move(clone).value();
}

// A forecast is sane when finite and within `multiple` observed spans beyond
// the representative's min/max (multiple <= 0 checks finiteness only).
bool ForecastSane(double value, const ts::Series& representative,
                  double multiple) {
  if (!std::isfinite(value)) return false;
  if (multiple <= 0.0) return true;
  const auto& vals = representative.values();
  if (vals.empty()) return true;
  auto [lo_it, hi_it] = std::minmax_element(vals.begin(), vals.end());
  double lo = *lo_it, hi = *hi_it;
  double span = hi - lo;
  if (!(span > 0.0)) span = std::max(1.0, std::abs(hi));
  return value >= lo - multiple * span && value <= hi + multiple * span;
}

// Predicts the representative's next value (same windowing as
// core::NextClusterValue, without transferring model ownership).
StatusOr<double> PredictNext(const ensemble::TimeSensitiveEnsemble& model,
                             const ts::Series& representative, size_t window) {
  const auto& vals = representative.values();
  if (vals.size() < window) {
    return Status::FailedPrecondition(
        "serve: representative shorter than window");
  }
  std::vector<double> w(vals.end() - static_cast<ptrdiff_t>(window),
                        vals.end());
  return model.Predict(w);
}
}  // namespace

StatusOr<double> ServiceSnapshot::ForecastCluster(size_t rank) const {
  if (!trained()) {
    return Status::FailedPrecondition("serve: no trained snapshot published");
  }
  if (rank >= clusters.size()) {
    return Status::OutOfRange("serve: cluster rank out of range");
  }
  return clusters[rank].next_value;
}

StatusOr<double> ServiceSnapshot::ForecastTrace(size_t trace_index) const {
  if (!trained()) {
    return Status::FailedPrecondition("serve: no trained snapshot published");
  }
  if (trace_index >= trace_cluster.size()) {
    return Status::OutOfRange("serve: trace index out of range");
  }
  int cid = trace_cluster[trace_index];
  for (const SnapshotCluster& c : clusters) {
    if (c.cluster_id == cid) {
      double total = c.next_value * static_cast<double>(c.member_count);
      return total * trace_proportion[trace_index];
    }
  }
  return Status::NotFound(
      "serve: trace's cluster is outside the forecasted top-K");
}

namespace {
// Fills `sc` with a fallback model for a cluster whose fresh fit failed or
// diverged: first the last-good snapshot's model for the same cluster_id
// (cloned, then revalidated on the new representative), else a freshly fit
// kernel-regression baseline. `cause` describes the original failure.
Status ApplyFallback(const SnapshotFallback& fb, size_t window,
                     const std::string& cause, SnapshotCluster* sc) {
  sc->degraded = true;
  if (fb.last_good != nullptr) {
    for (const SnapshotCluster& prev : fb.last_good->clusters) {
      if (prev.cluster_id != sc->cluster_id || prev.model == nullptr) continue;
      auto clone = CloneModel(*fb.opts, prev.model_kind, *prev.model);
      if (!clone.ok()) break;  // unclonable last-good: fall through to KR
      auto next = PredictNext(**clone, sc->representative, window);
      if (next.ok() &&
          ForecastSane(*next, sc->representative, fb.divergence_multiple)) {
        sc->model = std::move(clone).value();
        sc->model_kind = prev.model_kind;
        sc->next_value = *next;
        sc->degraded_reason =
            cause + "; serving last-good generation " +
            std::to_string(fb.last_good->generation) + " model";
        return Status::OK();
      }
      break;  // last-good also insane on the new data: fall through to KR
    }
  }
  auto baseline = ensemble::MakeKernelBaseline(fb.opts->forecaster);
  if (!baseline.ok()) return baseline.status();
  DBAUGUR_RETURN_IF_ERROR((*baseline)->Fit(sc->representative.values()));
  auto next = PredictNext(**baseline, sc->representative, window);
  if (!next.ok()) return next.status();
  if (!std::isfinite(*next)) {
    return Status::Internal(
        "serve: kernel baseline produced a non-finite forecast");
  }
  sc->model = std::move(baseline).value();
  sc->model_kind = SnapshotCluster::ModelKind::kKernelBaseline;
  sc->next_value = *next;
  sc->degraded_reason = cause + "; serving kernel-regression baseline";
  return Status::OK();
}
}  // namespace

StatusOr<std::shared_ptr<const ServiceSnapshot>> MakeSnapshot(
    core::TrainedState state, const std::vector<std::string>& trace_names,
    size_t window, uint64_t generation, const SnapshotFallback& fallback) {
  auto snap = std::make_shared<ServiceSnapshot>();
  snap->generation = generation;
  snap->trace_names = trace_names;
  snap->trace_cluster = std::move(state.trace_cluster);
  snap->trace_proportion = std::move(state.trace_proportion);
  snap->clusters.reserve(state.forecasts.size());
  for (core::ClusterForecast& cf : state.forecasts) {
    SnapshotCluster sc;
    sc.cluster_id = cf.cluster_id;
    sc.volume = cf.volume;
    sc.member_count = cf.member_count;
    sc.representative = std::move(cf.representative);
    if (fallback.opts == nullptr) {
      // No degraded-mode policy: any failure is the caller's problem.
      if (!cf.fit_status.ok()) return cf.fit_status;
      auto next = PredictNext(*cf.model, sc.representative, window);
      if (!next.ok()) return next.status();
      sc.next_value = *next;
      sc.model = std::move(cf.model);
      snap->clusters.push_back(std::move(sc));
      continue;
    }
    std::string cause;
    if (!cf.fit_status.ok()) {
      cause = std::string("fit failed: ") + cf.fit_status.message();
    } else {
      auto next = PredictNext(*cf.model, sc.representative, window);
      if (!next.ok()) {
        cause = std::string("forecast failed: ") + next.status().message();
      } else if (DBAUGUR_FAULT_POINT("serve.retrain.diverge")) {
        cause = "forecast diverged (injected)";
      } else if (!ForecastSane(*next, sc.representative,
                               fallback.divergence_multiple)) {
        cause = "forecast diverged: " + std::to_string(*next) +
                " outside sane range of representative";
      } else {
        sc.next_value = *next;
        sc.model = std::move(cf.model);
        snap->clusters.push_back(std::move(sc));
        continue;
      }
    }
    DBAUGUR_RETURN_IF_ERROR(ApplyFallback(fallback, window, cause, &sc));
    DBAUGUR_WARN("serve: cluster " << sc.cluster_id << " degraded ("
                                   << sc.degraded_reason << ")");
    snap->clusters.push_back(std::move(sc));
  }
  return std::shared_ptr<const ServiceSnapshot>(std::move(snap));
}

Status SerializeSnapshot(const ServiceSnapshot& snap, BufWriter* w) {
  w->U32(kSnapshotMagic);
  w->U32(kSnapshotVersion);
  w->U64(snap.generation);
  w->U64(snap.trace_names.size());
  for (size_t i = 0; i < snap.trace_names.size(); ++i) {
    w->Str(snap.trace_names[i]);
    w->I32(snap.trace_cluster[i]);
    w->F64(snap.trace_proportion[i]);
  }
  w->U64(snap.clusters.size());
  for (const SnapshotCluster& c : snap.clusters) {
    w->I32(c.cluster_id);
    w->F64(c.volume);
    w->U64(c.member_count);
    w->I64(c.representative.start());
    w->I64(c.representative.interval_seconds());
    w->Str(c.representative.name());
    w->U64(c.representative.size());
    for (double v : c.representative.values()) w->F64(v);
    w->F64(c.next_value);
    w->U8(static_cast<uint8_t>(c.model_kind));
    w->U8(c.degraded ? 1 : 0);
    w->Str(c.degraded_reason);
    auto model_state = c.model->SaveState();
    if (!model_state.ok()) return model_state.status();
    w->Bytes(*model_state);
  }
  return Status::OK();
}

StatusOr<std::shared_ptr<const ServiceSnapshot>> DeserializeSnapshot(
    const core::DBAugurOptions& opts, BufReader* r) {
  auto corrupt = [] {
    return Status::InvalidArgument("serve: truncated or corrupt snapshot");
  };
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!r->U32(&magic) || !r->U32(&version)) return corrupt();
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("serve: bad snapshot magic");
  }
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument("serve: unsupported snapshot version");
  }
  auto snap = std::make_shared<ServiceSnapshot>();
  uint64_t traces = 0;
  if (!r->U64(&snap->generation) || !r->U64(&traces)) return corrupt();
  snap->trace_names.reserve(traces);
  snap->trace_cluster.reserve(traces);
  snap->trace_proportion.reserve(traces);
  for (uint64_t i = 0; i < traces; ++i) {
    std::string name;
    int32_t cid = 0;
    double prop = 0.0;
    if (!r->Str(&name) || !r->I32(&cid) || !r->F64(&prop)) return corrupt();
    snap->trace_names.push_back(std::move(name));
    snap->trace_cluster.push_back(cid);
    snap->trace_proportion.push_back(prop);
  }
  uint64_t n_clusters = 0;
  if (!r->U64(&n_clusters)) return corrupt();
  snap->clusters.reserve(n_clusters);
  for (uint64_t i = 0; i < n_clusters; ++i) {
    SnapshotCluster c;
    int32_t cid = 0;
    uint64_t members = 0;
    int64_t start = 0;
    int64_t interval = 0;
    std::string rep_name;
    uint64_t rep_len = 0;
    if (!r->I32(&cid) || !r->F64(&c.volume) || !r->U64(&members) ||
        !r->I64(&start) || !r->I64(&interval) || !r->Str(&rep_name) ||
        !r->U64(&rep_len)) {
      return corrupt();
    }
    c.cluster_id = cid;
    c.member_count = members;
    std::vector<double> rep_values(rep_len);
    for (uint64_t j = 0; j < rep_len; ++j) {
      if (!r->F64(&rep_values[j])) return corrupt();
    }
    c.representative = ts::Series(start, interval, std::move(rep_values),
                                  std::move(rep_name));
    uint8_t kind = 0;
    uint8_t degraded = 0;
    std::vector<uint8_t> model_state;
    if (!r->F64(&c.next_value) || !r->U8(&kind) || !r->U8(&degraded) ||
        !r->Str(&c.degraded_reason) || !r->Bytes(&model_state)) {
      return corrupt();
    }
    if (kind > static_cast<uint8_t>(SnapshotCluster::ModelKind::kKernelBaseline) ||
        degraded > 1) {
      return corrupt();
    }
    c.model_kind = static_cast<SnapshotCluster::ModelKind>(kind);
    c.degraded = degraded == 1;
    auto model = BuildByKind(opts, c.model_kind);
    if (!model.ok()) return model.status();
    DBAUGUR_RETURN_IF_ERROR((*model)->LoadState(model_state));
    c.model = std::move(model).value();

    // Prove the restore: the rebuilt model must reproduce the forecast that
    // was being served when the snapshot was taken, bit for bit.
    auto recomputed =
        PredictNext(*c.model, c.representative, opts.forecaster.window);
    if (!recomputed.ok()) return recomputed.status();
    if (*recomputed != c.next_value) {
      return Status::InvalidArgument(
          "serve: restored ensemble does not reproduce the saved forecast");
    }
    snap->clusters.push_back(std::move(c));
  }
  return std::shared_ptr<const ServiceSnapshot>(std::move(snap));
}

}  // namespace dbaugur::serve

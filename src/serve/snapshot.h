// Immutable published state of the forecast service.
//
// A ServiceSnapshot is built once by the retrain thread, then published by
// atomically swapping a shared_ptr — readers load the pointer and work with
// a fully immutable object, so forecast reads never take a lock and never
// block on an in-flight retrain. The snapshot carries *precomputed* next-value
// forecasts per cluster: the ensemble Predict path uses mutable layer
// workspaces and prediction caches, so running it from concurrent readers
// would race. Readers instead do pure arithmetic on the frozen numbers
// (cluster forecast × member count × trace proportion), which is race-free by
// construction.
//
// Serialize/Deserialize turn a snapshot into one versioned binary section of
// the full-service blob; restore rebuilds each cluster's ensemble from its
// lossless float64 state and verifies the stored forecast reproduces
// bit-identically, so a restarted service provably resumes with the same
// forecasts it was serving before.
//
// Thread ownership: a ServiceSnapshot is deliberately lock-free — immutable
// after construction, only ever shared as shared_ptr<const ServiceSnapshot>.
// The one mutable hand-off (the service's snapshot pointer) lives in
// ForecastService, where it is DBAUGUR_GUARDED_BY(snapshot_mu_) and
// compile-checked under Clang's -Werror=thread-safety.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/status.h"
#include "core/dbaugur.h"
#include "ensemble/time_sensitive_ensemble.h"
#include "ts/series.h"

namespace dbaugur::serve {

/// One forecasted cluster in a snapshot: provenance plus the frozen forecast.
struct SnapshotCluster {
  /// Which preset `model` is; persisted so deserialization reconstructs the
  /// right architecture before loading weights.
  enum class ModelKind : uint8_t {
    kEnsemble = 0,        ///< Full DBAugur ensemble (WFGAN + TCN + MLP).
    kKernelBaseline = 1,  ///< Degraded-mode kernel-regression fallback.
  };

  int cluster_id = 0;
  double volume = 0.0;
  size_t member_count = 0;
  ts::Series representative;
  /// Trained ensemble, kept for the *next* retrain warm start and for
  /// persistence. Readers must not call into it (mutable caches); they use
  /// next_value below.
  std::unique_ptr<ensemble::TimeSensitiveEnsemble> model;
  /// Precomputed forecast of the representative's next value.
  double next_value = 0.0;
  ModelKind model_kind = ModelKind::kEnsemble;
  /// True when this cluster's fresh fit failed or diverged and `model` is a
  /// fallback (last-good state or the kernel baseline).
  bool degraded = false;
  /// Human-readable cause, empty unless degraded.
  std::string degraded_reason;
};

/// Immutable published state: everything a forecast read needs. Instances are
/// only ever handed out as shared_ptr<const ServiceSnapshot>.
class ServiceSnapshot {
 public:
  /// Monotonic publish counter; 0 is the empty pre-training snapshot.
  uint64_t generation = 0;
  /// Name of each trace in the last trained workload collection.
  std::vector<std::string> trace_names;
  /// Cluster id per trace (parallel to trace_names).
  std::vector<int> trace_cluster;
  /// Trace's share of its cluster's volume (parallel to trace_names).
  std::vector<double> trace_proportion;
  /// Top-K clusters, descending volume.
  std::vector<SnapshotCluster> clusters;

  bool trained() const { return !clusters.empty(); }
  size_t cluster_count() const { return clusters.size(); }
  size_t trace_count() const { return trace_names.size(); }
  size_t degraded_count() const {
    size_t n = 0;
    for (const SnapshotCluster& c : clusters) n += c.degraded ? 1 : 0;
    return n;
  }

  /// Precomputed next value for the rank-th largest cluster.
  /// FailedPrecondition before training, OutOfRange for bad rank.
  StatusOr<double> ForecastCluster(size_t rank) const;

  /// Next value for trace i: cluster forecast scaled to the cluster total and
  /// then by the trace's volume proportion (paper §IV-C). NotFound when the
  /// trace's cluster is outside the top-K.
  StatusOr<double> ForecastTrace(size_t trace_index) const;
};

/// Degraded-mode policy for MakeSnapshot. With `opts` null, validation and
/// fallbacks are disabled and any per-cluster fit failure is a hard error
/// (the pre-robustness behavior).
struct SnapshotFallback {
  /// Pipeline options, needed to rebuild fallback models. Must outlive the
  /// MakeSnapshot call.
  const core::DBAugurOptions* opts = nullptr;
  /// Previously published snapshot whose per-cluster models serve as
  /// last-good fallbacks (matched by cluster_id). May be null (first train).
  const ServiceSnapshot* last_good = nullptr;
  /// A forecast is "sane" when it is finite and within this multiple of the
  /// representative's observed span beyond its min/max. <= 0 disables the
  /// range check (finiteness is always required).
  double divergence_multiple = 10.0;
};

/// Builds a snapshot from a trained pipeline state, precomputing each
/// cluster's next value with core::NextClusterValue. Consumes `state`.
///
/// With a SnapshotFallback carrying non-null `opts`, each cluster's forecast
/// is validated; a cluster whose fit failed (fit_status) or whose forecast is
/// non-finite / outside divergence_multiple × the representative's observed
/// range falls back to its last-good model state (cloned from `last_good`,
/// matched by cluster_id) or, failing that, to a freshly fit
/// kernel-regression baseline — and is marked degraded with a reason. Healthy
/// clusters are unaffected.
StatusOr<std::shared_ptr<const ServiceSnapshot>> MakeSnapshot(
    core::TrainedState state, const std::vector<std::string>& trace_names,
    size_t window, uint64_t generation,
    const SnapshotFallback& fallback = SnapshotFallback{});

/// Appends the snapshot's persistent fields (everything except the Descender,
/// which the retrainer rebuilds from the binner) to *w.
Status SerializeSnapshot(const ServiceSnapshot& snap, BufWriter* w);

/// Restores a SerializeSnapshot section. `opts` must match the saving
/// service's pipeline options (ensembles are reconstructed from them before
/// loading weights). Rejects corrupt blobs and any cluster whose restored
/// ensemble does not reproduce the stored forecast bit-for-bit.
StatusOr<std::shared_ptr<const ServiceSnapshot>> DeserializeSnapshot(
    const core::DBAugurOptions& opts, BufReader* r);

}  // namespace dbaugur::serve

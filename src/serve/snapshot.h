// Immutable published state of the forecast service.
//
// A ServiceSnapshot is built once by the retrain thread, then published by
// atomically swapping a shared_ptr — readers load the pointer and work with
// a fully immutable object, so forecast reads never take a lock and never
// block on an in-flight retrain. The snapshot carries *precomputed* next-value
// forecasts per cluster: the ensemble Predict path uses mutable layer
// workspaces and prediction caches, so running it from concurrent readers
// would race. Readers instead do pure arithmetic on the frozen numbers
// (cluster forecast × member count × trace proportion), which is race-free by
// construction.
//
// Serialize/Deserialize turn a snapshot into one versioned binary section of
// the full-service blob; restore rebuilds each cluster's ensemble from its
// lossless float64 state and verifies the stored forecast reproduces
// bit-identically, so a restarted service provably resumes with the same
// forecasts it was serving before.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/status.h"
#include "core/dbaugur.h"
#include "ensemble/time_sensitive_ensemble.h"
#include "ts/series.h"

namespace dbaugur::serve {

/// One forecasted cluster in a snapshot: provenance plus the frozen forecast.
struct SnapshotCluster {
  int cluster_id = 0;
  double volume = 0.0;
  size_t member_count = 0;
  ts::Series representative;
  /// Trained ensemble, kept for the *next* retrain warm start and for
  /// persistence. Readers must not call into it (mutable caches); they use
  /// next_value below.
  std::unique_ptr<ensemble::TimeSensitiveEnsemble> model;
  /// Precomputed forecast of the representative's next value.
  double next_value = 0.0;
};

/// Immutable published state: everything a forecast read needs. Instances are
/// only ever handed out as shared_ptr<const ServiceSnapshot>.
class ServiceSnapshot {
 public:
  /// Monotonic publish counter; 0 is the empty pre-training snapshot.
  uint64_t generation = 0;
  /// Name of each trace in the last trained workload collection.
  std::vector<std::string> trace_names;
  /// Cluster id per trace (parallel to trace_names).
  std::vector<int> trace_cluster;
  /// Trace's share of its cluster's volume (parallel to trace_names).
  std::vector<double> trace_proportion;
  /// Top-K clusters, descending volume.
  std::vector<SnapshotCluster> clusters;

  bool trained() const { return !clusters.empty(); }
  size_t cluster_count() const { return clusters.size(); }
  size_t trace_count() const { return trace_names.size(); }

  /// Precomputed next value for the rank-th largest cluster.
  /// FailedPrecondition before training, OutOfRange for bad rank.
  StatusOr<double> ForecastCluster(size_t rank) const;

  /// Next value for trace i: cluster forecast scaled to the cluster total and
  /// then by the trace's volume proportion (paper §IV-C). NotFound when the
  /// trace's cluster is outside the top-K.
  StatusOr<double> ForecastTrace(size_t trace_index) const;
};

/// Builds a snapshot from a trained pipeline state, precomputing each
/// cluster's next value with core::NextClusterValue. Consumes `state`.
StatusOr<std::shared_ptr<const ServiceSnapshot>> MakeSnapshot(
    core::TrainedState state, const std::vector<std::string>& trace_names,
    size_t window, uint64_t generation);

/// Appends the snapshot's persistent fields (everything except the Descender,
/// which the retrainer rebuilds from the binner) to *w.
Status SerializeSnapshot(const ServiceSnapshot& snap, BufWriter* w);

/// Restores a SerializeSnapshot section. `opts` must match the saving
/// service's pipeline options (ensembles are reconstructed from them before
/// loading weights). Rejects corrupt blobs and any cluster whose restored
/// ensemble does not reproduce the stored forecast bit-for-bit.
StatusOr<std::shared_ptr<const ServiceSnapshot>> DeserializeSnapshot(
    const core::DBAugurOptions& opts, BufReader* r);

}  // namespace dbaugur::serve

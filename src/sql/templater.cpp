#include "sql/templater.h"

#include <algorithm>

namespace dbaugur::sql {

namespace {

bool IsValueToken(const Token& t) {
  return t.type == TokenType::kNumber || t.type == TokenType::kString;
}

/// Literals -> '?' placeholders.
void ReplaceLiterals(std::vector<Token>* tokens) {
  for (Token& t : *tokens) {
    if (IsValueToken(t)) t = {TokenType::kPlaceholder, "?"};
  }
}

/// IN ( ?, ?, ? ) -> IN (?).
void CollapseInLists(std::vector<Token>* tokens) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < tokens->size()) {
    const Token& t = (*tokens)[i];
    if (t.type == TokenType::kKeyword && t.text == "IN" &&
        i + 1 < tokens->size() && (*tokens)[i + 1].text == "(") {
      // Check the parenthesized list is placeholders/commas only.
      size_t j = i + 2;
      bool all_placeholders = true;
      while (j < tokens->size() && (*tokens)[j].text != ")") {
        const Token& inner = (*tokens)[j];
        if (!(inner.type == TokenType::kPlaceholder || inner.text == ",")) {
          all_placeholders = false;
          break;
        }
        ++j;
      }
      if (all_placeholders && j < tokens->size()) {
        out.push_back(t);
        out.push_back({TokenType::kPunct, "("});
        out.push_back({TokenType::kPlaceholder, "?"});
        out.push_back({TokenType::kPunct, ")"});
        i = j + 1;
        continue;
      }
    }
    out.push_back(t);
    ++i;
  }
  *tokens = std::move(out);
}

const std::string& MirrorOp(const std::string& op) {
  static const std::map<std::string, std::string> kMirror = {
      {"<", ">"}, {">", "<"}, {"<=", ">="}, {">=", "<="},
      {"=", "="}, {"<>", "<>"}, {"!=", "!="}};
  auto it = kMirror.find(op);
  static const std::string kEmpty;
  return it == kMirror.end() ? kEmpty : it->second;
}

bool IsOperand(const Token& t) {
  return t.type == TokenType::kIdentifier || t.type == TokenType::kPlaceholder;
}

/// Puts every simple comparison `X op Y` into canonical operand order:
/// identifier before placeholder; two identifiers sorted lexicographically
/// when the operator is symmetric (=, <>, !=).
void CanonicalizeComparisons(std::vector<Token>* tokens) {
  for (size_t i = 0; i + 2 < tokens->size(); ++i) {
    Token& lhs = (*tokens)[i];
    Token& op = (*tokens)[i + 1];
    Token& rhs = (*tokens)[i + 2];
    if (op.type != TokenType::kOperator || MirrorOp(op.text).empty()) continue;
    if (!IsOperand(lhs) || !IsOperand(rhs)) continue;
    // Ensure the token before lhs doesn't make this a non-comparison context
    // (e.g. arithmetic chains) — a preceding operand or operator means lhs is
    // part of a larger expression; skip those conservatively.
    if (i > 0) {
      const Token& prev = (*tokens)[i - 1];
      if (IsOperand(prev) || prev.type == TokenType::kOperator) continue;
    }
    bool swap = false;
    if (lhs.type == TokenType::kPlaceholder &&
        rhs.type == TokenType::kIdentifier) {
      swap = true;  // "? < a" -> "a > ?"
    } else if (lhs.type == TokenType::kIdentifier &&
               rhs.type == TokenType::kIdentifier &&
               (op.text == "=" || op.text == "<>" || op.text == "!=") &&
               rhs.text < lhs.text) {
      swap = true;  // symmetric operator: order operands
    }
    if (swap) {
      std::swap(lhs, rhs);
      op.text = MirrorOp(op.text);
    }
  }
}

/// Sorts a top-level comma-separated list of single identifiers between
/// SELECT [DISTINCT] and FROM.
void CanonicalizeSelectList(std::vector<Token>* tokens) {
  size_t sel = tokens->size();
  for (size_t i = 0; i < tokens->size(); ++i) {
    if ((*tokens)[i].type == TokenType::kKeyword && (*tokens)[i].text == "SELECT") {
      sel = i;
      break;
    }
  }
  if (sel == tokens->size()) return;
  size_t begin = sel + 1;
  if (begin < tokens->size() && (*tokens)[begin].type == TokenType::kKeyword &&
      (*tokens)[begin].text == "DISTINCT") {
    ++begin;
  }
  size_t end = begin;
  while (end < tokens->size() && !((*tokens)[end].type == TokenType::kKeyword &&
                                   (*tokens)[end].text == "FROM")) {
    ++end;
  }
  if (end == tokens->size() || end == begin) return;
  // Must be identifier (, identifier)* exactly.
  std::vector<std::string> cols;
  for (size_t i = begin; i < end; ++i) {
    bool expect_ident = ((i - begin) % 2 == 0);
    const Token& t = (*tokens)[i];
    if (expect_ident) {
      if (t.type != TokenType::kIdentifier) return;
      cols.push_back(t.text);
    } else if (t.text != ",") {
      return;
    }
  }
  if ((end - begin) % 2 == 0) return;  // trailing comma shape mismatch
  std::sort(cols.begin(), cols.end());
  size_t k = 0;
  for (size_t i = begin; i < end; ++i) {
    if ((i - begin) % 2 == 0) (*tokens)[i].text = cols[k++];
  }
}

/// Reorders `FROM t1 JOIN t2 ON ...` (plain/INNER joins only) so the smaller
/// table name comes first; the ON comparison is canonicalized separately.
void CanonicalizeJoinOrder(std::vector<Token>* tokens) {
  for (size_t i = 0; i + 3 < tokens->size(); ++i) {
    const Token& t = (*tokens)[i];
    if (!(t.type == TokenType::kKeyword && t.text == "FROM")) continue;
    size_t left_pos = i + 1;
    if (left_pos >= tokens->size() ||
        (*tokens)[left_pos].type != TokenType::kIdentifier) {
      continue;
    }
    size_t join_pos = left_pos + 1;
    if (join_pos < tokens->size() && (*tokens)[join_pos].type == TokenType::kKeyword &&
        (*tokens)[join_pos].text == "INNER") {
      ++join_pos;
    }
    if (join_pos >= tokens->size() ||
        !((*tokens)[join_pos].type == TokenType::kKeyword &&
          (*tokens)[join_pos].text == "JOIN")) {
      continue;
    }
    size_t right_pos = join_pos + 1;
    if (right_pos >= tokens->size() ||
        (*tokens)[right_pos].type != TokenType::kIdentifier) {
      continue;
    }
    Token& left = (*tokens)[left_pos];
    Token& right = (*tokens)[right_pos];
    if (right.text < left.text) std::swap(left.text, right.text);
  }
}

/// Sorts top-level AND-connected conditions inside the WHERE clause. Applies
/// only when every top-level connective is AND (mixing with OR would change
/// semantics under naive reordering).
void CanonicalizeWhereConjunction(std::vector<Token>* tokens) {
  size_t where = tokens->size();
  for (size_t i = 0; i < tokens->size(); ++i) {
    if ((*tokens)[i].type == TokenType::kKeyword && (*tokens)[i].text == "WHERE") {
      where = i;
      break;
    }
  }
  if (where == tokens->size()) return;
  size_t begin = where + 1;
  size_t end = begin;
  int depth = 0;
  auto is_clause_end = [](const Token& t) {
    return t.type == TokenType::kKeyword &&
           (t.text == "GROUP" || t.text == "ORDER" || t.text == "LIMIT" ||
            t.text == "HAVING" || t.text == "UNION");
  };
  while (end < tokens->size()) {
    const Token& t = (*tokens)[end];
    if (t.text == "(") ++depth;
    if (t.text == ")") --depth;
    if (t.text == ";" && depth == 0) break;
    if (depth == 0 && is_clause_end(t)) break;
    ++end;
  }
  // Split into AND-separated spans at depth 0; bail on OR/NOT at top level.
  std::vector<std::vector<Token>> terms;
  std::vector<Token> cur;
  depth = 0;
  for (size_t i = begin; i < end; ++i) {
    const Token& t = (*tokens)[i];
    if (t.text == "(") ++depth;
    if (t.text == ")") --depth;
    if (depth == 0 && t.type == TokenType::kKeyword && t.text == "OR") return;
    if (depth == 0 && t.type == TokenType::kKeyword && t.text == "AND") {
      if (cur.empty()) return;  // malformed
      terms.push_back(std::move(cur));
      cur.clear();
      continue;
    }
    cur.push_back(t);
  }
  if (cur.empty()) return;
  terms.push_back(std::move(cur));
  if (terms.size() < 2) return;
  std::sort(terms.begin(), terms.end(),
            [](const std::vector<Token>& a, const std::vector<Token>& b) {
              return Render(a) < Render(b);
            });
  std::vector<Token> rebuilt;
  for (size_t k = 0; k < terms.size(); ++k) {
    if (k > 0) rebuilt.push_back({TokenType::kKeyword, "AND"});
    for (auto& tk : terms[k]) rebuilt.push_back(tk);
  }
  tokens->erase(tokens->begin() + static_cast<ptrdiff_t>(begin),
                tokens->begin() + static_cast<ptrdiff_t>(end));
  tokens->insert(tokens->begin() + static_cast<ptrdiff_t>(begin),
                 rebuilt.begin(), rebuilt.end());
}

}  // namespace

StatusOr<std::string> ToTemplate(const std::string& sql,
                                 const TemplateOptions& opts) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  if (tokens->empty()) return Status::InvalidArgument("empty statement");
  ReplaceLiterals(&tokens.value());
  if (opts.collapse_in_lists) CollapseInLists(&tokens.value());
  if (opts.canonicalize_semantics) {
    CanonicalizeComparisons(&tokens.value());
    CanonicalizeSelectList(&tokens.value());
    CanonicalizeJoinOrder(&tokens.value());
    CanonicalizeWhereConjunction(&tokens.value());
  }
  // Drop a trailing semicolon so "...;" and "..." unify.
  if (!tokens->empty() && tokens->back().text == ";") tokens->pop_back();
  return Render(*tokens);
}

uint64_t Fingerprint(const std::string& tmpl) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (unsigned char c : tmpl) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

StatusOr<size_t> TemplateRegistry::Record(const std::string& sql) {
  auto tmpl = ToTemplate(sql, opts_);
  if (!tmpl.ok()) return tmpl.status();
  auto [it, inserted] = index_.try_emplace(*tmpl, templates_.size());
  if (inserted) {
    templates_.push_back(*tmpl);
    counts_.push_back(0);
  }
  ++counts_[it->second];
  return it->second;
}

StatusOr<size_t> TemplateRegistry::Lookup(const std::string& tmpl) const {
  auto it = index_.find(tmpl);
  if (it == index_.end()) return Status::NotFound("template not registered");
  return it->second;
}

std::vector<size_t> TemplateRegistry::ByFrequency() const {
  std::vector<size_t> ids(templates_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  std::sort(ids.begin(), ids.end(),
            [&](size_t a, size_t b) { return counts_[a] > counts_[b]; });
  return ids;
}

}  // namespace dbaugur::sql

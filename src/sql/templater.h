// SQL2Template (paper §IV-A): converts raw SQL statements into templates by
// (1) normalizing format (spacing, case, bracket placement), (2) replacing
// literals with placeholders, and (3) semantic-equivalence canonicalization
// so statements like "SELECT a, b FROM foo" / "SELECT b, a FROM foo" and
// "A JOIN B ON A.id=B.id" / "B JOIN A ON B.id=A.id" map to one template.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/tokenizer.h"

namespace dbaugur::sql {

/// Template extraction knobs.
struct TemplateOptions {
  bool collapse_in_lists = true;       ///< IN (?, ?, ?) -> IN (?)
  bool canonicalize_semantics = true;  ///< column order, commutativity, joins
};

/// Converts one SQL statement to its template string.
StatusOr<std::string> ToTemplate(const std::string& sql,
                                 const TemplateOptions& opts = TemplateOptions());

/// Stable 64-bit fingerprint of a template string (FNV-1a).
uint64_t Fingerprint(const std::string& tmpl);

/// Registry assigning dense ids to templates and counting occurrences.
class TemplateRegistry {
 public:
  explicit TemplateRegistry(const TemplateOptions& opts = TemplateOptions())
      : opts_(opts) {}

  /// Templates the statement and records one occurrence; returns the
  /// template's dense id.
  StatusOr<size_t> Record(const std::string& sql);

  /// Id for an exact template string, without counting (NotFound if absent).
  StatusOr<size_t> Lookup(const std::string& tmpl) const;

  size_t size() const { return templates_.size(); }
  const std::string& template_text(size_t id) const { return templates_[id]; }
  int64_t count(size_t id) const { return counts_[id]; }

  /// Template ids ordered by descending occurrence count.
  std::vector<size_t> ByFrequency() const;

 private:
  TemplateOptions opts_;
  std::map<std::string, size_t> index_;
  std::vector<std::string> templates_;
  std::vector<int64_t> counts_;
};

}  // namespace dbaugur::sql

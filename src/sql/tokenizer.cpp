#include "sql/tokenizer.h"

#include <array>
#include <cctype>
#include <cstdio>
#include <unordered_set>

namespace dbaugur::sql {

bool IsKeyword(const std::string& upper_word) {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "FROM",   "WHERE",  "AND",    "OR",     "NOT",    "IN",
      "INSERT", "INTO",   "VALUES", "UPDATE", "SET",    "DELETE", "JOIN",
      "INNER",  "LEFT",   "RIGHT",  "FULL",   "OUTER",  "ON",     "AS",
      "GROUP",  "BY",     "ORDER",  "HAVING", "LIMIT",  "OFFSET", "ASC",
      "DESC",   "UNION",  "ALL",    "DISTINCT", "BETWEEN", "LIKE", "IS",
      "NULL",   "EXISTS", "CASE",   "WHEN",   "THEN",   "ELSE",   "END",
      "COUNT",  "SUM",    "AVG",    "MIN",    "MAX",    "CREATE", "TABLE",
      "INDEX",  "DROP",   "ALTER",  "PRIMARY", "KEY",   "FOREIGN", "REFERENCES",
      "BEGIN",  "COMMIT", "ROLLBACK", "TRANSACTION", "CROSS", "USING",
  };
  return kKeywords.count(upper_word) > 0;
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}
std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

// Hex-escapes a byte for error messages so an embedded NUL / control byte /
// non-ASCII byte is never echoed raw into logs or test output.
std::string HexByte(unsigned char uc) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "0x%02X", uc);
  return std::string(buf);
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0, n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Control bytes (embedded NUL from a truncated write, terminal escapes)
    // are rejected outright; isspace above already consumed \t \n \v \f \r.
    unsigned char uc = static_cast<unsigned char>(c);
    if (uc < 0x20 || uc == 0x7F) {
      return Status::InvalidArgument("control character " + HexByte(uc) +
                                     " in SQL");
    }
    // Comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      size_t end = sql.find("*/", i + 2);
      if (end == std::string::npos) {
        return Status::InvalidArgument("unterminated block comment");
      }
      i = end + 2;
      continue;
    }
    // String literals ('' escaping) — double quotes treated as quoted
    // identifiers but kept as string tokens for templating purposes.
    if (c == '\'' || c == '"') {
      char quote = c;
      size_t start = i++;
      while (i < n) {
        if (sql[i] == '\0') {
          // A NUL can only come from a truncated/corrupted log line; letting
          // it live inside a token would silently poison every later string
          // comparison on the template.
          return Status::InvalidArgument("NUL byte inside string literal");
        }
        if (sql[i] == quote) {
          if (i + 1 < n && sql[i + 1] == quote) {
            i += 2;  // escaped quote
            continue;
          }
          break;
        }
        ++i;
      }
      if (i >= n) return Status::InvalidArgument("unterminated string literal");
      ++i;  // consume closing quote
      out.push_back({TokenType::kString, sql.substr(start, i - start)});
      continue;
    }
    // Numbers (integers, decimals, scientific).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.')) {
        ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t save = i++;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) {
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
        } else {
          i = save;  // bare 'e' belongs to a following identifier
        }
      }
      out.push_back({TokenType::kNumber, sql.substr(start, i - start)});
      continue;
    }
    // Identifiers / keywords (allow qualified names with dots).
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      std::string word = sql.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        out.push_back({TokenType::kKeyword, upper});
      } else {
        out.push_back({TokenType::kIdentifier, ToLower(word)});
      }
      continue;
    }
    // Placeholders from templated statements.
    if (c == '?') {
      out.push_back({TokenType::kPlaceholder, "?"});
      ++i;
      continue;
    }
    // Multi-char operators.
    static const std::array<const char*, 6> kTwoChar = {"<=", ">=", "<>",
                                                        "!=", "||", ":="};
    bool matched = false;
    if (i + 1 < n) {
      std::string two = sql.substr(i, 2);
      for (const char* op : kTwoChar) {
        if (two == op) {
          out.push_back({TokenType::kOperator, two});
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (matched) continue;
    if (std::string("=<>+-*/%").find(c) != std::string::npos) {
      out.push_back({TokenType::kOperator, std::string(1, c)});
      ++i;
      continue;
    }
    if (std::string("(),;").find(c) != std::string::npos) {
      out.push_back({TokenType::kPunct, std::string(1, c)});
      ++i;
      continue;
    }
    if (uc >= 0x80) {
      return Status::InvalidArgument("unexpected byte " + HexByte(uc) +
                                     " in SQL");
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' in SQL");
  }
  return out;
}

std::string Render(const std::vector<Token>& tokens) {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    bool glue = false;
    if (!out.empty()) {
      // No space before closing punct / comma / semicolon, none after '('.
      if (t.text == ")" || t.text == "," || t.text == ";") glue = true;
      if (i > 0 && tokens[i - 1].text == "(") glue = true;
    }
    if (!out.empty() && !glue) out += ' ';
    out += t.text;
  }
  return out;
}

}  // namespace dbaugur::sql

// SQL tokenizer used by SQL2Template (paper §IV-A). Handles quoted strings,
// numeric literals, qualified identifiers, multi-character operators, and
// strips both `--` and `/* */` comments.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace dbaugur::sql {

/// Token categories relevant to templating.
enum class TokenType {
  kKeyword,      ///< SQL keyword (SELECT, FROM, ...), uppercased.
  kIdentifier,   ///< Table/column name, possibly qualified (a.b), lowercased.
  kNumber,       ///< Numeric literal.
  kString,       ///< Quoted string literal (quotes included in text).
  kOperator,     ///< = <> <= >= < > != + - * / % ||
  kPunct,        ///< ( ) , ;
  kPlaceholder,  ///< ? — produced by templating, accepted on re-parse.
};

/// One lexical token.
struct Token {
  TokenType type = TokenType::kPunct;
  std::string text;

  bool operator==(const Token& o) const {
    return type == o.type && text == o.text;
  }
};

/// True if `word` (already uppercased) is a recognized SQL keyword.
bool IsKeyword(const std::string& upper_word);

/// Tokenizes a SQL statement. Keywords are uppercased, identifiers
/// lowercased, comments removed. Returns InvalidArgument on unterminated
/// strings/comments, unexpected characters, and control bytes (embedded NUL,
/// escape sequences) — error messages hex-escape non-printable bytes so a
/// malformed input is never echoed raw.
StatusOr<std::vector<Token>> Tokenize(const std::string& sql);

/// Renders tokens back to a normalized single-spaced SQL string.
std::string Render(const std::vector<Token>& tokens);

}  // namespace dbaugur::sql
